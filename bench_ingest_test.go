// Ingest benchmarks: the per-document Publish loop vs PublishBatch over
// the same synthetic CACM corpus, in memory and with the durable store
// (where batching additionally turns N fsyncs into one group-committed
// append per batch). Each iteration ingests the whole corpus into a
// fresh peer — republishing into a warm peer would dedup to a no-op —
// and the suite reports docs/s so the batched-vs-per-doc speedup reads
// straight off one `go test -bench Ingest` run. The acceptance target:
// batch=64 durable ingest at >= 5x the per-document durable rate.
package planetp_test

import (
	"os"
	"testing"

	"planetp"
	"planetp/internal/collection"
	"planetp/internal/ir"
)

// ingestBenchDocs is the number of corpus documents per iteration.
const ingestBenchDocs = 256

// ingestBenchCorpus renders the benchmark corpus once: 256 documents of
// the CACM/8 synthetic collection through ir.DocXML, so the benchmarks
// exercise the real parse/tokenize/stem pipeline on realistic Zipf text.
var ingestBenchCorpus []string

func getIngestBenchCorpus(b *testing.B) []string {
	if ingestBenchCorpus == nil {
		col := collection.Generate(collection.ScaledSpec("CACM", 8), 11)
		ingestBenchCorpus = ir.XMLDocs(col, ingestBenchDocs)
		if len(ingestBenchCorpus) != ingestBenchDocs {
			b.Fatalf("corpus has %d docs, want %d", len(ingestBenchCorpus), ingestBenchDocs)
		}
	}
	return ingestBenchCorpus
}

func benchIngest(b *testing.B, batch int, durable bool) {
	xmls := getIngestBenchCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := planetp.Config{ID: 0, Capacity: 4, Seed: 1}
		dir := ""
		if durable {
			d, err := os.MkdirTemp("", "planetp-ingest-bench-")
			if err != nil {
				b.Fatal(err)
			}
			dir = d
			cfg.DataDir = dir
		}
		p, err := planetp.NewPeer(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		if batch <= 1 {
			for _, xml := range xmls {
				if _, err := p.Publish(xml); err != nil {
					b.Fatal(err)
				}
			}
		} else {
			for lo := 0; lo < len(xmls); lo += batch {
				hi := lo + batch
				if hi > len(xmls) {
					hi = len(xmls)
				}
				if _, err := p.PublishBatch(xmls[lo:hi]); err != nil {
					b.Fatal(err)
				}
			}
		}

		b.StopTimer()
		p.Stop()
		if dir != "" {
			os.RemoveAll(dir)
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(ingestBenchDocs)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
}

// BenchmarkIngestPerDocMem is the seed's ingest path: one Publish call —
// one analysis, one filter diff, one gossip announcement — per document.
func BenchmarkIngestPerDocMem(b *testing.B) { benchIngest(b, 1, false) }

// BenchmarkIngestBatch64Mem ingests 64 documents per PublishBatch call:
// parallel analysis outside the peer lock and one summarization per batch.
func BenchmarkIngestBatch64Mem(b *testing.B) { benchIngest(b, 64, false) }

// BenchmarkIngestPerDocDurable is the per-document loop with the durable
// store attached: every Publish pays its own WAL append and fsync.
func BenchmarkIngestPerDocDurable(b *testing.B) { benchIngest(b, 1, true) }

// BenchmarkIngestBatch64Durable is the acceptance benchmark: 64-document
// batches over the durable store, one group-committed WAL append (one
// fsync) per batch.
func BenchmarkIngestBatch64Durable(b *testing.B) { benchIngest(b, 64, true) }

// BenchmarkIngestBatch16Durable sits between the two extremes, matching
// the gossipsim ingest sweep's middle point.
func BenchmarkIngestBatch16Durable(b *testing.B) { benchIngest(b, 16, true) }
