// Command planetp-node runs a live PlanetP peer with an interactive
// shell. Multiple instances on one machine (or LAN) form a community.
//
//	# first member
//	planetp-node -id 0 -capacity 16 -listen 127.0.0.1:7001
//	# subsequent members
//	planetp-node -id 1 -capacity 16 -listen 127.0.0.1:7002 -join 127.0.0.1:7001
//
// Shell commands:
//
//	publish <xml...>      publish an XML snippet
//	file <path>           publish a local file through PFS
//	search <k> <query>    ranked TFxIPF search
//	all <query>           exhaustive conjunctive search
//	watch <query>         persistent query (prints matches as they appear)
//	mkdir <query>         PFS semantic directory
//	ls <query>            list a semantic directory
//	get <peer> <key>      fetch a document body
//	proxy <k> <query>     delegate a ranked search to a fast peer
//	save <path>           snapshot documents + version counters to a file
//	peers                 show the directory
//	stats                 gossip statistics
//	metrics               dump the metrics registry as JSON
//	quit
//
// Start with -restore <path> to resume a previous incarnation from a
// snapshot (the new epoch supersedes the old one automatically). Queries
// support the structured syntax tag:word when -structured is on.
//
// Start with -data <dir> for crash-safe durability: every publish and
// remove is written to a checksummed write-ahead log before it returns,
// folded into atomic snapshots, and replayed on the next start — no
// operator-managed snapshot files or epoch counters needed. SIGINT and
// SIGTERM shut the peer down gracefully (final snapshot, then exit); a
// kill -9 loses at most the last unsynced append, which recovery
// truncates and reports at the next start.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"planetp"
)

func main() {
	id := flag.Int("id", 0, "peer id (unique, < capacity)")
	capacity := flag.Int("capacity", 64, "community id-space size")
	listen := flag.String("listen", "127.0.0.1:0", "listen address")
	join := flag.String("join", "", "address of an existing member to bootstrap from")
	name := flag.String("name", "", "peer name")
	interval := flag.Duration("interval", 30*time.Second, "base gossip interval (T_g)")
	slow := flag.Bool("slow", false, "mark this peer modem-class for bandwidth-aware gossip")
	structured := flag.Bool("structured", false, "index terms scoped by XML element (tag:word queries)")
	restore := flag.String("restore", "", "restore a previous incarnation from a snapshot file")
	data := flag.String("data", "", "durable data directory (WAL + snapshots; recovers on restart)")
	httpAddr := flag.String("http", "", "serve GET /debug/metrics on this address (\"\" = off)")
	flag.Parse()

	var snapshot []byte
	if *restore != "" {
		data, err := os.ReadFile(*restore)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		snapshot = data
	}

	class := planetp.Fast
	if *slow {
		class = planetp.Slow
	}
	// With a durable data dir the store drives incarnation numbers (the
	// recovered epoch + 1 supersedes the dead incarnation); without one,
	// fall back to a timestamp epoch.
	epoch := uint32(time.Now().Unix() & 0x7fffffff)
	if *data != "" {
		epoch = 0
	}
	peer, err := planetp.NewPeer(planetp.Config{
		ID:              planetp.PeerID(*id),
		Name:            *name,
		ListenAddr:      *listen,
		Capacity:        *capacity,
		Class:           class,
		Gossip:          planetp.GossipConfig{BaseInterval: *interval, MaxInterval: 2 * *interval},
		Seed:            time.Now().UnixNano(),
		BrokerTopFrac:   0.10,
		BrokerDiscard:   10 * time.Minute,
		StructuredIndex: *structured,
		Epoch:           epoch,
		Restore:         snapshot,
		DataDir:         *data,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer peer.Stop()
	if *data != "" {
		fmt.Println(peer.Recovery())
	}

	fs, err := planetp.NewFS(peer)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer fs.Close()

	if *join != "" {
		if err := peer.Join(*join); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	peer.Start()
	fmt.Printf("%s listening on %s (id %d)\n", peer.Name(), peer.Addr(), peer.ID())

	// Graceful shutdown: stop gossiping, fold a final snapshot (when
	// durable), close the transport, and exit.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		fmt.Printf("\n%v: shutting down\n", s)
		fs.Close()
		peer.Stop()
		os.Exit(0)
	}()

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /debug/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			peer.Metrics().WriteJSON(w)
		})
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("metrics on http://%s/debug/metrics\n", ln.Addr())
		go http.Serve(ln, mux)
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("planetp> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch cmd {
		case "quit", "exit":
			return
		case "publish":
			d, err := peer.Publish(rest)
			report(err, func() { fmt.Printf("published %s\n", d.ID) })
		case "file":
			d, err := fs.PublishFile(rest)
			report(err, func() { fmt.Printf("published %s as %s\n", rest, d.ID) })
		case "search":
			kStr, q, _ := strings.Cut(rest, " ")
			k, err := strconv.Atoi(kStr)
			if err != nil || q == "" {
				fmt.Println("usage: search <k> <query>")
				continue
			}
			docs, st := peer.Search(q, k)
			fmt.Printf("%d results (contacted %d/%d peers, stopped early: %v)\n",
				len(docs), st.PeersContacted, st.PeersRanked, st.StoppedEarly)
			for _, d := range docs {
				fmt.Printf("  %.4f  peer %d  %s\n", d.Score, d.Peer, d.Key)
			}
		case "all":
			docs := peer.SearchAll(rest)
			fmt.Printf("%d results\n", len(docs))
			for _, d := range docs {
				fmt.Printf("  peer %d  %s\n", d.Peer, d.Key)
			}
		case "watch":
			q := rest
			peer.PostPersistentQuery(q, func(d planetp.DocResult) {
				fmt.Printf("\n[watch %q] new match: peer %d %s\nplanetp> ", q, d.Peer, d.Key)
			})
			fmt.Printf("watching %q\n", q)
		case "mkdir":
			fs.MkDir(rest)
			fmt.Printf("directory %q created\n", rest)
		case "ls":
			for _, e := range fs.MkDir(rest).Open() {
				fmt.Printf("  %-30s %s\n", e.Name, e.URL)
			}
		case "proxy":
			kStr, q, _ := strings.Cut(rest, " ")
			k, err := strconv.Atoi(kStr)
			if err != nil || q == "" {
				fmt.Println("usage: proxy <k> <query>")
				continue
			}
			proxy, ok := peer.PickProxy()
			if !ok {
				fmt.Println("no fast peer available to proxy through")
				continue
			}
			docs, err := peer.SearchVia(proxy, q, k)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("%d results via proxy %d\n", len(docs), proxy)
			for _, d := range docs {
				fmt.Printf("  %.4f  peer %d  %s\n", d.Score, d.Peer, d.Key)
			}
		case "save":
			data, err := peer.Snapshot()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if err := os.WriteFile(rest, data, 0o600); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("snapshot (%d bytes) written to %s\n", len(data), rest)
		case "get":
			pStr, key, _ := strings.Cut(rest, " ")
			pid, err := strconv.Atoi(pStr)
			if err != nil || key == "" {
				fmt.Println("usage: get <peer> <key>")
				continue
			}
			xml, err := peer.FetchDocument(planetp.PeerID(pid), key)
			report(err, func() { fmt.Println(xml) })
		case "peers":
			dir := peer.Directory()
			fmt.Printf("known %d, online %d\n", dir.NumKnown(), dir.NumOnline())
			for _, pid := range dir.KnownIDs() {
				e, _ := dir.Entry(pid)
				rec, _ := dir.Get(pid)
				status := "online"
				if !e.Online {
					status = "offline"
				}
				fmt.Printf("  %3d  v%-8s %-7s %s\n", pid, e.Ver, status, rec.Addr)
			}
		case "stats":
			st := peer.Node().Stats()
			fmt.Printf("rounds=%d rumors=%d ae=%d pulls=%d news=%d interval=%v\n",
				st.Rounds, st.RumorsSent, st.AERequests, st.PullsSent,
				st.NewsLearned, peer.Node().Interval())
		case "metrics":
			if err := peer.Metrics().WriteJSON(os.Stdout); err != nil {
				fmt.Println("error:", err)
			}
			fmt.Println()
		default:
			fmt.Println("commands: publish file search all proxy watch mkdir ls get save peers stats metrics quit")
		}
	}
}

func report(err error, ok func()) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ok()
}
