// Command planetp-node runs a live PlanetP peer: a gossiping community
// member that fronts its local index and the replicated global directory
// with a JSON-over-HTTP serving API ("every peer is a web server"), plus
// an optional interactive shell. Multiple instances on one machine (or
// LAN) form a community.
//
//	# first member, API on :8081
//	planetp-node -id 0 -capacity 16 -gossip 127.0.0.1:7001 -listen 127.0.0.1:8081
//	# subsequent members: any one live seed address is enough — with
//	# -min-peers the node pulls peer-exchange samples until its directory
//	# sees the whole community
//	planetp-node -id 1 -capacity 16 -gossip 127.0.0.1:7002 -listen 127.0.0.1:8082 \
//	    -seeds 127.0.0.1:7001 -min-peers 16
//
// Flags:
//
//	-id N             peer id (unique, < capacity)
//	-capacity N       community id-space size (default 64)
//	-listen ADDR      HTTP API address; serves POST /v1/search,
//	                  POST /v1/publish, POST /v1/publish-batch,
//	                  GET /v1/doc/{id}, GET /v1/peers, GET /healthz, and
//	                  GET /debug/metrics on one mux ("" = no API)
//	-gossip ADDR      gossip transport address ("" = ephemeral loopback)
//	-seeds ADDRS      comma-separated gossip addresses of existing members;
//	                  tried in rotation with capped exponential backoff
//	                  until one answers (fatal only when all are exhausted)
//	-join ADDR        single-seed alias for -seeds (kept for compatibility)
//	-min-peers N      keep pulling peer-exchange samples from contacts
//	                  until the directory sees at least N members on-line
//	                  (0 = no discovery; rely on gossip alone)
//	-name S           peer name
//	-interval D       base gossip interval T_g (default 30s)
//	-slow             mark this peer modem-class
//	-structured       index terms scoped by XML element (tag:word queries)
//	-restore PATH     restore a previous incarnation from a snapshot file
//	-data DIR         durable data directory (WAL + snapshots)
//	-headless         no interactive shell; run until SIGINT/SIGTERM
//	-max-inflight N   admission limit: concurrent API requests before
//	                  shedding with 429 (default 256)
//	-drain-timeout D  how long SIGTERM waits for in-flight API requests
//	                  (default 10s)
//	-filter-cache N   byte budget for resident peer Bloom filters in the
//	                  query engine's two-tier probe cache (0 = 64 MiB
//	                  default, negative = minimal working set)
//	-replicas K       replicate hot documents to K peers total (owner +
//	                  K-1 ring successors); 0 or 1 disables replication
//	-hoard-budget N   byte budget for hoarded replicas (0 = 64 MiB
//	                  default); least-popular replicas are evicted first
//
// Shell commands (omit -headless):
//
//	publish <xml...>      publish an XML snippet
//	file <path>           publish a local file through PFS
//	search <k> <query>    ranked TFxIPF search
//	all <query>           exhaustive conjunctive search
//	watch <query>         persistent query (prints matches as they appear)
//	mkdir <query>         PFS semantic directory
//	ls <query>            list a semantic directory
//	get <peer> <key>      fetch a document body
//	proxy <k> <query>     delegate a ranked search to a fast peer
//	save <path>           snapshot documents + version counters to a file
//	peers                 show the directory
//	stats                 gossip statistics
//	metrics               dump the metrics registry as JSON
//	quit
//
// Shutdown is graceful in every mode: SIGINT/SIGTERM (or quit) first
// drains the API — new requests get 503, in-flight ones finish under
// -drain-timeout — and then stops the peer, folding the final durable
// snapshot when -data is set. A kill -9 loses at most the last unsynced
// WAL append, which recovery truncates and reports at the next start.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"planetp"
)

func main() {
	id := flag.Int("id", 0, "peer id (unique, < capacity)")
	capacity := flag.Int("capacity", 64, "community id-space size")
	listen := flag.String("listen", "127.0.0.1:0", "HTTP API address serving /v1/* and /debug/metrics (\"\" = no API)")
	gossipAddr := flag.String("gossip", "127.0.0.1:0", "gossip transport listen address")
	seeds := flag.String("seeds", "", "comma-separated gossip addresses of existing members to bootstrap from")
	join := flag.String("join", "", "single-seed alias for -seeds (kept for compatibility)")
	minPeers := flag.Int("min-peers", 0, "pull peer-exchange samples until the directory sees this many members on-line (0 = gossip only)")
	name := flag.String("name", "", "peer name")
	interval := flag.Duration("interval", 30*time.Second, "base gossip interval (T_g)")
	slow := flag.Bool("slow", false, "mark this peer modem-class for bandwidth-aware gossip")
	structured := flag.Bool("structured", false, "index terms scoped by XML element (tag:word queries)")
	restore := flag.String("restore", "", "restore a previous incarnation from a snapshot file")
	data := flag.String("data", "", "durable data directory (WAL + snapshots; recovers on restart)")
	headless := flag.Bool("headless", false, "no interactive shell; serve until SIGINT/SIGTERM")
	maxInflight := flag.Int("max-inflight", 256, "concurrent API requests admitted before shedding with 429")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "SIGTERM wait for in-flight API requests")
	filterCache := flag.Int64("filter-cache", 0, "byte budget for resident peer Bloom filters in the query engine (0 = 64 MiB default, negative = minimal working set)")
	replicas := flag.Int("replicas", 0, "replicate hot documents to this many peers total (0 or 1 = off)")
	hoardBudget := flag.Int64("hoard-budget", 0, "byte budget for hoarded replicas (0 = 64 MiB default)")
	poolConns := flag.Int("pool-conns", 0, "idle transport connections kept per peer (0 = default 4, negative = dial per RPC)")
	poolIdle := flag.Duration("pool-idle", 0, "idle lifetime of pooled transport connections (0 = default 60s)")
	flag.Parse()

	var snapshot []byte
	if *restore != "" {
		data, err := os.ReadFile(*restore)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		snapshot = data
	}

	class := planetp.Fast
	if *slow {
		class = planetp.Slow
	}
	// With a durable data dir the store drives incarnation numbers (the
	// recovered epoch + 1 supersedes the dead incarnation); without one,
	// fall back to a timestamp epoch.
	epoch := uint32(time.Now().Unix() & 0x7fffffff)
	if *data != "" {
		epoch = 0
	}
	peer, err := planetp.NewPeer(planetp.Config{
		ID:         planetp.PeerID(*id),
		Name:       *name,
		ListenAddr: *gossipAddr,
		Capacity:   *capacity,
		Class:      class,
		Gossip: planetp.GossipConfig{
			BaseInterval: *interval, MaxInterval: 2 * *interval,
			DiscoverMin: *minPeers,
		},
		Seed:              time.Now().UnixNano(),
		BrokerTopFrac:     0.10,
		BrokerDiscard:     10 * time.Minute,
		StructuredIndex:   *structured,
		Epoch:             epoch,
		Restore:           snapshot,
		DataDir:           *data,
		FilterCacheBudget: *filterCache,
		Replicas:          *replicas,
		HoardBudget:       *hoardBudget,
		PoolConns:         *poolConns,
		PoolIdle:          *poolIdle,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *data != "" {
		fmt.Println(peer.Recovery())
	}

	fs, err := planetp.NewFS(peer)
	if err != nil {
		peer.Stop()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Bootstrap: rotate through every seed address with capped exponential
	// backoff between passes (a rolling cluster boot may have some seeds
	// not yet bound); fatal only when the whole list is exhausted.
	var seedList []string
	for _, s := range strings.Split(*seeds, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seedList = append(seedList, s)
		}
	}
	if *join != "" {
		seedList = append(seedList, *join)
	}
	if len(seedList) > 0 {
		if err := peer.JoinSeeds(planetp.BootstrapConfig{Seeds: seedList}); err != nil {
			peer.Stop()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	peer.Start()
	fmt.Printf("%s gossiping on %s (id %d)\n", peer.Name(), peer.Addr(), peer.ID())

	// The serving tier: one mux carries the /v1 API, /healthz, and
	// /debug/metrics.
	var server *planetp.Server
	if *listen != "" {
		server = planetp.NewServer(peer, planetp.ServeConfig{MaxInFlight: *maxInflight})
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("api on http://%s/v1 (metrics at /debug/metrics)\n", ln.Addr())
		go func() {
			if err := server.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "api server:", err)
			}
		}()
	}

	// shutdown drains the API (stop accepting, finish in-flight under
	// the deadline), then stops the peer — which folds the final
	// durable snapshot — then closes the PFS mount. Idempotent: the
	// signal handler and the shell's quit path share it.
	var shutdownOnce sync.Once
	shutdown := func() {
		shutdownOnce.Do(func() {
			if server != nil {
				ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
				defer cancel()
				if err := server.Shutdown(ctx); err != nil {
					fmt.Fprintln(os.Stderr, "drain:", err)
				}
			}
			fs.Close()
			peer.Stop()
		})
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if *headless {
		s := <-sigs
		fmt.Printf("%v: draining and shutting down\n", s)
		shutdown()
		return
	}
	go func() {
		s := <-sigs
		fmt.Printf("\n%v: draining and shutting down\n", s)
		shutdown()
		os.Exit(0)
	}()
	defer shutdown()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("planetp> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch cmd {
		case "quit", "exit":
			return
		case "publish":
			d, err := peer.Publish(rest)
			report(err, func() { fmt.Printf("published %s\n", d.ID) })
		case "file":
			d, err := fs.PublishFile(rest)
			report(err, func() { fmt.Printf("published %s as %s\n", rest, d.ID) })
		case "search":
			kStr, q, _ := strings.Cut(rest, " ")
			k, err := strconv.Atoi(kStr)
			if err != nil || q == "" {
				fmt.Println("usage: search <k> <query>")
				continue
			}
			docs, st := peer.Search(q, k)
			fmt.Printf("%d results (contacted %d/%d peers, stopped early: %v)\n",
				len(docs), st.PeersContacted, st.PeersRanked, st.StoppedEarly)
			for _, d := range docs {
				fmt.Printf("  %.4f  peer %d  %s\n", d.Score, d.Peer, d.Key)
			}
		case "all":
			docs := peer.SearchAll(rest)
			fmt.Printf("%d results\n", len(docs))
			for _, d := range docs {
				fmt.Printf("  peer %d  %s\n", d.Peer, d.Key)
			}
		case "watch":
			q := rest
			peer.PostPersistentQuery(q, func(d planetp.DocResult) {
				fmt.Printf("\n[watch %q] new match: peer %d %s\nplanetp> ", q, d.Peer, d.Key)
			})
			fmt.Printf("watching %q\n", q)
		case "mkdir":
			fs.MkDir(rest)
			fmt.Printf("directory %q created\n", rest)
		case "ls":
			for _, e := range fs.MkDir(rest).Open() {
				fmt.Printf("  %-30s %s\n", e.Name, e.URL)
			}
		case "proxy":
			kStr, q, _ := strings.Cut(rest, " ")
			k, err := strconv.Atoi(kStr)
			if err != nil || q == "" {
				fmt.Println("usage: proxy <k> <query>")
				continue
			}
			proxy, ok := peer.PickProxy()
			if !ok {
				fmt.Println("no fast peer available to proxy through")
				continue
			}
			docs, err := peer.SearchVia(proxy, q, k)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("%d results via proxy %d\n", len(docs), proxy)
			for _, d := range docs {
				fmt.Printf("  %.4f  peer %d  %s\n", d.Score, d.Peer, d.Key)
			}
		case "save":
			data, err := peer.Snapshot()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if err := os.WriteFile(rest, data, 0o600); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("snapshot (%d bytes) written to %s\n", len(data), rest)
		case "get":
			pStr, key, _ := strings.Cut(rest, " ")
			pid, err := strconv.Atoi(pStr)
			if err != nil || key == "" {
				fmt.Println("usage: get <peer> <key>")
				continue
			}
			xml, err := peer.FetchDocument(planetp.PeerID(pid), key)
			report(err, func() { fmt.Println(xml) })
		case "peers":
			dir := peer.Directory()
			fmt.Printf("known %d, online %d\n", dir.NumKnown(), dir.NumOnline())
			for _, pid := range dir.KnownIDs() {
				e, _ := dir.Entry(pid)
				rec, _ := dir.Get(pid)
				status := "online"
				if !e.Online {
					status = "offline"
				}
				fmt.Printf("  %3d  v%-8s %-7s %s\n", pid, e.Ver, status, rec.Addr)
			}
		case "stats":
			st := peer.Node().Stats()
			fmt.Printf("rounds=%d rumors=%d ae=%d pulls=%d news=%d interval=%v\n",
				st.Rounds, st.RumorsSent, st.AERequests, st.PullsSent,
				st.NewsLearned, peer.Node().Interval())
		case "metrics":
			if err := peer.Metrics().WriteJSON(os.Stdout); err != nil {
				fmt.Println("error:", err)
			}
			fmt.Println()
		default:
			fmt.Println("commands: publish file search all proxy watch mkdir ls get save peers stats metrics quit")
		}
	}
}

func report(err error, ok func()) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ok()
}
