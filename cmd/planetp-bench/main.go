// Command planetp-bench runs the full experiment suite — every table and
// figure of the paper's evaluation (Section 7) — and prints a structured
// report. It is the generator behind EXPERIMENTS.md.
//
//	planetp-bench             # standard sizes (a few minutes)
//	planetp-bench -quick      # shrunk sizes (seconds; for CI)
//	planetp-bench -full       # paper-scale everywhere (slow)
package main

import (
	"flag"
	"fmt"
	"time"

	"os"

	"planetp"
	"planetp/internal/bloom"
	"planetp/internal/collection"
	"planetp/internal/gossipsim"
	"planetp/internal/index"
	"planetp/internal/ir"
	"planetp/internal/metrics"
)

// reg aggregates every experiment's protocol and wire counters; the
// suite dumps it as JSON at the end of the run.
var reg = metrics.NewRegistry()

// withMetrics threads the suite registry through a scenario.
func withMetrics(sc gossipsim.Scenario) gossipsim.Scenario {
	sc.Metrics = reg
	return sc
}

func main() {
	quick := flag.Bool("quick", false, "shrink everything for a fast smoke run")
	full := flag.Bool("full", false, "paper-scale sizes everywhere (slow)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	sizesFig2 := []int{50, 100, 200, 300, 500, 750, 1000, 1500, 2000, 3000}
	joins := []int{50, 100, 150, 200, 250}
	baseN, churnN, churn2N, arrivals := 1000, 1000, 2000, 100
	colScale, colPeers := 8, 400
	ks := []int{10, 20, 50, 100, 150, 200, 300, 400}
	fig6bSizes := []int{100, 200, 400, 600, 800, 1000}
	ingestDocs, ingestN := 256, 200
	switch {
	case *quick:
		sizesFig2 = []int{50, 100, 200}
		joins = []int{20, 40}
		baseN, churnN, churn2N, arrivals = 200, 150, 200, 20
		colScale, colPeers = 16, 100
		ks = []int{10, 20, 50}
		fig6bSizes = []int{50, 100, 200}
		ingestDocs, ingestN = 64, 60
	case *full:
		sizesFig2 = append(sizesFig2, 4000, 5000)
		colScale = 1
	}

	start := time.Now()
	table1()
	table2()
	fig2(sizesFig2, *seed)
	fig3(baseN, joins, *seed)
	fig4a(baseN, arrivals, *seed)
	fig4bc(churnN, *seed)
	fig5(churn2N, *seed)
	table3(colScale, *seed)
	fig6(colScale, colPeers, ks, fig6bSizes, *seed)
	ingest(ingestDocs, ingestN, *seed)
	fmt.Printf("\n# total wall time: %v\n", time.Since(start).Round(time.Second))

	fmt.Println("\n## Metrics snapshot (aggregate over the whole run)")
	if err := reg.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	fmt.Println()
}

// table1 times the paper's six micro-benchmarked operations.
func table1() {
	fmt.Println("## Table 1: micro-benchmark costs (native Go; the paper measured Java on an 800MHz P-III)")
	keys := make([]string, 20000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}

	timeIt := func(name string, n int, f func()) {
		start := time.Now()
		f()
		el := time.Since(start)
		fmt.Printf("%-28s %10v total, %8.1f ns/key (n=%d)\n",
			name, el.Round(time.Microsecond), float64(el.Nanoseconds())/float64(n), n)
	}

	f := bloom.Default()
	timeIt("bloom insert", len(keys), func() { f.InsertAll(keys) })
	timeIt("bloom search", len(keys), func() {
		for _, k := range keys {
			f.Contains(k)
		}
	})
	var buf []byte
	timeIt("bloom compress", f.SetBits(), func() { buf = f.Compress() })
	timeIt("bloom decompress", f.SetBits(), func() { _, _ = bloom.Decompress(buf) })

	freqs := make(map[string]int, len(keys))
	for _, k := range keys {
		freqs[k] = 1
	}
	ix := index.New()
	timeIt("inverted-index insert", len(keys), func() { ix.AddTermFreqs(freqs) })
	timeIt("inverted-index search", len(keys), func() {
		for _, k := range keys {
			ix.Lookup(k)
		}
	})
}

func table2() {
	fmt.Println("\n## Table 2: simulation constants (asserted in code)")
	fmt.Println("cpu gossip time 5ms | base interval 30s | max interval 60s |")
	fmt.Println("header 3B | peer summary 48B | BF summary 6B | 1000-key BF 3000B | 20000-key BF 16000B")
}

func fig2(sizes []int, seed int64) {
	fmt.Println("\n## Figure 2: propagate one 1000-key Bloom filter (time / volume / per-peer bandwidth)")
	fmt.Println("scenario,peers,prop_time_s,total_bytes,per_peer_Bps")
	for _, sc := range []gossipsim.Scenario{
		gossipsim.LAN, gossipsim.LANAE, gossipsim.DSL10, gossipsim.DSL30,
		gossipsim.DSL60, gossipsim.MIX,
	} {
		sc = withMetrics(sc)
		for _, n := range sizes {
			p := gossipsim.Propagation(sc, n, seed+int64(n))
			fmt.Printf("%s,%d,%.1f,%d,%.1f\n", sc.Name, n, p.Time.Seconds(), p.Bytes, p.PerPeerBW)
		}
	}
}

func fig3(base int, joins []int, seed int64) {
	fmt.Println("\n## Figure 3: simultaneous joins into a stable community (20000 keys each)")
	fmt.Println("scenario,base,joiners,time_s,total_bytes,converged")
	for _, sc := range []gossipsim.Scenario{gossipsim.LAN, gossipsim.DSL30, gossipsim.MIX} {
		sc = withMetrics(sc)
		for _, j := range joins {
			r := gossipsim.Join(sc, base, j, seed+int64(j))
			fmt.Printf("%s,%d,%d,%.1f,%d,%v\n", sc.Name, base, j, r.Time.Seconds(), r.Bytes, r.Converged)
		}
	}
}

func fig4a(n, arrivals int, seed int64) {
	fmt.Println("\n## Figure 4a: arrival convergence CDF, partial anti-entropy ablation")
	fmt.Println("scenario,p50_s,p90_s,p99_s,max_s,unconverged")
	for _, sc := range []gossipsim.Scenario{gossipsim.LAN, gossipsim.LANNPA} {
		cdf := gossipsim.ArrivalCDF(withMetrics(sc), n, arrivals, 90*time.Second, seed)
		fmt.Printf("%s,%.1f,%.1f,%.1f,%.1f,%d\n", sc.Name,
			cdf.Percentile(50).Seconds(), cdf.Percentile(90).Seconds(),
			cdf.Percentile(99).Seconds(), cdf.Percentile(100).Seconds(), cdf.Unconverged)
	}
}

func fig4bc(n int, seed int64) {
	fmt.Println("\n## Figure 4b/4c: dynamic community convergence + aggregate bandwidth")
	fmt.Println("scenario,events,p50_s,p90_s,max_s,unconverged,aggregate_KBps")
	cfg := gossipsim.DefaultChurn(n)
	for _, sc := range []gossipsim.Scenario{gossipsim.LAN, gossipsim.MIX} {
		r := gossipsim.Churn(withMetrics(sc), cfg, seed)
		fmt.Printf("%s,%d,%.1f,%.1f,%.1f,%d,%.1f\n", sc.Name, r.Events,
			r.All.Percentile(50).Seconds(), r.All.Percentile(90).Seconds(),
			r.All.Percentile(100).Seconds(), r.All.Unconverged,
			r.AggregateBandwidth()/1e3)
	}
}

func fig5(n int, seed int64) {
	fmt.Println("\n## Figure 5: 2000-member dynamic community (fast/slow split)")
	fmt.Println("series,events,p50_s,p90_s,max_s,unconverged")
	cfg := gossipsim.DefaultChurn(n)
	for _, sc := range []gossipsim.Scenario{gossipsim.LAN, gossipsim.MIX} {
		r := gossipsim.Churn(withMetrics(sc), cfg, seed)
		fmt.Printf("%s,%d,%.1f,%.1f,%.1f,%d\n", sc.Name, r.Events,
			r.All.Percentile(50).Seconds(), r.All.Percentile(90).Seconds(),
			r.All.Percentile(100).Seconds(), r.All.Unconverged)
	}
	cfgF := cfg
	cfgF.FastOnly = true
	r := gossipsim.Churn(withMetrics(gossipsim.MIX), cfgF, seed)
	for _, row := range []struct {
		name string
		cdf  gossipsim.CDF
	}{{"MIX-F", r.Fast}, {"MIX-S", r.Slow}} {
		fmt.Printf("%s,%d,%.1f,%.1f,%.1f,%d\n", row.name,
			len(row.cdf.Times)+row.cdf.Unconverged,
			row.cdf.Percentile(50).Seconds(), row.cdf.Percentile(90).Seconds(),
			row.cdf.Percentile(100).Seconds(), row.cdf.Unconverged)
	}
}

func table3(scale int, seed int64) {
	fmt.Printf("\n## Table 3: collection characteristics (synthetic, scale 1/%d)\n", scale)
	for _, name := range []string{"CACM", "MED", "CRAN", "CISI", "AP89"} {
		col := collection.Generate(collection.ScaledSpec(name, scale), seed)
		fmt.Println(col.Stats())
	}
}

// ingest measures the batched-publish pipeline two ways: real-peer
// throughput (docs/s for per-document Publish vs PublishBatch, in memory
// and over the durable store) and the gossip cost of the same stream from
// the discrete-event simulator (announcements and bytes to re-converge).
func ingest(docs, simN int, seed int64) {
	col := collection.Generate(collection.ScaledSpec("CACM", 8), seed+13)
	xmls := ir.XMLDocs(col, docs)

	run := func(batch int, durable bool) float64 {
		cfg := planetp.Config{ID: 0, Capacity: 4, Seed: seed}
		if durable {
			dir, err := os.MkdirTemp("", "planetp-bench-ingest-")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 0
			}
			defer os.RemoveAll(dir)
			cfg.DataDir = dir
		}
		p, err := planetp.NewPeer(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 0
		}
		defer p.Stop()
		start := time.Now()
		if batch <= 1 {
			for _, x := range xmls {
				if _, err := p.Publish(x); err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 0
				}
			}
		} else {
			for lo := 0; lo < len(xmls); lo += batch {
				hi := lo + batch
				if hi > len(xmls) {
					hi = len(xmls)
				}
				if _, err := p.PublishBatch(xmls[lo:hi]); err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 0
				}
			}
		}
		return float64(len(xmls)) / time.Since(start).Seconds()
	}

	fmt.Printf("\n## Ingest throughput: %d CACM docs, per-doc Publish vs PublishBatch\n", len(xmls))
	fmt.Println("store,batch,docs_per_s")
	for _, row := range []struct {
		store   string
		batch   int
		durable bool
	}{
		{"mem", 1, false}, {"mem", 64, false},
		{"durable", 1, true}, {"durable", 16, true}, {"durable", 64, true},
	} {
		fmt.Printf("%s,%d,%.0f\n", row.store, row.batch, run(row.batch, row.durable))
	}

	fmt.Printf("\n## Ingest gossip cost: %d docs arriving at one of %d peers, one per gossip round\n", docs, simN)
	fmt.Println("scenario,peers,docs,batch,publishes,time_s,total_bytes,converged")
	for _, sc := range []gossipsim.Scenario{gossipsim.LAN, gossipsim.DSL30} {
		for _, r := range gossipsim.IngestSweep(withMetrics(sc), simN, docs, []int{1, 16, 64}, seed) {
			fmt.Printf("%s,%d,%d,%d,%d,%.1f,%d,%v\n", r.Scenario, r.N, r.Docs,
				r.Batch, r.Publishes, r.Time.Seconds(), r.Bytes, r.Converged)
		}
	}
}

func fig6(scale, peers int, ks, sizes []int, seed int64) {
	col := collection.Generate(collection.ScaledSpec("AP89", scale), seed)
	com := ir.Distribute(col, peers, ir.Weibull, seed+7)
	com.Metrics = reg
	fmt.Printf("\n## Figure 6a/6c: %s over %d peers, Weibull\n", col.Name, peers)
	fmt.Println("k,recall_idf,prec_idf,recall_ipf,prec_ipf,peers_idf,peers_ipf,peers_best")
	for _, pt := range ir.Evaluate(com, ks) {
		fmt.Printf("%d,%.3f,%.3f,%.3f,%.3f,%.1f,%.1f,%.1f\n",
			pt.K, pt.RecallIDF, pt.PrecisionIDF, pt.RecallIPF, pt.PrecisionIPF,
			pt.PeersIDF, pt.PeersIPF, pt.PeersBest)
	}
	fmt.Println("\n## Figure 6b: recall at k=20 vs community size")
	fmt.Println("peers,recall_ipf,recall_idf")
	for _, pt := range ir.RecallVsSize(col, sizes, 20, ir.Weibull, seed+7, reg) {
		fmt.Printf("%d,%.3f,%.3f\n", pt.Peers, pt.RecallIPF, pt.RecallIDF)
	}
}
