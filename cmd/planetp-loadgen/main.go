// Command planetp-loadgen replays a seeded Zipfian query mix (plus a
// configurable publish fraction) against a live PlanetP cluster's
// serving tier at a fixed open-loop arrival rate, and reports QPS,
// shed/error rates, and p50/p99/p999 latency.
//
//	# two nodes serving on :8081/:8082, 300 req/s for 10s, 5% batched publishes
//	planetp-loadgen -targets 127.0.0.1:8081,127.0.0.1:8082 \
//	    -rate 300 -duration 10s -publish-frac 0.05 -out BENCH_serve.json
//
// The arrival process is OPEN LOOP: requests launch on schedule whether
// or not earlier ones have returned, exactly like independent users —
// so an overloaded node cannot hide behind client back-pressure; it
// must shed (429) or its tail latency shows it. Query popularity and
// document vocabulary are Zipf-distributed (-zipf-s), and every run
// with the same -seed replays the same request sequence.
//
// Results go to stdout as a table; -out additionally writes the full
// JSON report (BENCH_serve.json in the repo's bench flow).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// searchReq/publishReq mirror the serve package's wire types (kept
// local: the load generator speaks only the public HTTP API).
type searchReq struct {
	Query string `json:"query"`
	K     int    `json:"k,omitempty"`
}

type publishBatchReq struct {
	XMLs []string `json:"xmls"`
}

// report is the JSON written by -out.
type report struct {
	Targets     []string     `json:"targets"`
	OfferedRate float64      `json:"offered_rate"`
	DurationS   float64      `json:"duration_s"`
	Seed        int64        `json:"seed"`
	ZipfS       float64      `json:"zipf_s"`
	PublishFrac float64      `json:"publish_frac"`
	BatchSize   int          `json:"batch_size"`
	Sent        int64        `json:"sent"`
	AchievedQPS float64      `json:"achieved_qps"`
	OKRate      float64      `json:"ok_rate"`
	ShedRate    float64      `json:"shed_rate"`
	ErrorRate   float64      `json:"error_rate"`
	CacheHits   int64        `json:"cache_hits"`
	Overall     latencyStats `json:"overall"`
	Search      latencyStats `json:"search"`
	Publish     latencyStats `json:"publish"`
}

func main() {
	targets := flag.String("targets", "127.0.0.1:8080", "comma-separated host:port list of node APIs")
	rate := flag.Float64("rate", 100, "open-loop arrival rate (requests/second)")
	duration := flag.Duration("duration", 10*time.Second, "measurement duration")
	k := flag.Int("k", 10, "top-k per search")
	vocabSize := flag.Int("vocab", 2000, "vocabulary size (distinct words)")
	queries := flag.Int("queries", 1000, "distinct query population size")
	queryTerms := flag.Int("query-terms", 2, "terms per query")
	docTerms := flag.Int("doc-terms", 24, "words per published document")
	zipfS := flag.Float64("zipf-s", 1.1, "Zipf skew for query and word popularity (> 1)")
	pubFrac := flag.Float64("publish-frac", 0.05, "fraction of arrivals that are publish-batch requests")
	batch := flag.Int("batch", 16, "documents per publish-batch request")
	preload := flag.Int("preload", 256, "documents published before measuring (0 = none)")
	seed := flag.Int64("seed", 1, "workload seed (same seed = same request sequence)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request timeout")
	wait := flag.Duration("wait", 0, "poll /healthz on every target until ready (0 = no wait)")
	out := flag.String("out", "", "write the JSON report here (\"\" = stdout summary only)")
	flag.Parse()

	urls := make([]string, 0)
	for _, t := range strings.Split(*targets, ",") {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		if !strings.HasPrefix(t, "http") {
			t = "http://" + t
		}
		urls = append(urls, t)
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "no targets")
		os.Exit(2)
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConnsPerHost: 256,
			MaxConnsPerHost:     0,
		},
	}

	if *wait > 0 {
		if err := waitReady(client, urls, *wait); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	w := newWorkload(*seed, *vocabSize, *queries, *queryTerms, *docTerms, *k, *batch, *zipfS, *pubFrac)

	if *preload > 0 {
		if err := preloadDocs(client, urls, w, *preload); err != nil {
			fmt.Fprintln(os.Stderr, "preload:", err)
			os.Exit(1)
		}
	}

	rec := &recorder{}
	sent := dispatch(client, urls, w, rec, *rate, *duration)

	rep := report{
		Targets:     urls,
		OfferedRate: *rate,
		DurationS:   duration.Seconds(),
		Seed:        *seed,
		ZipfS:       *zipfS,
		PublishFrac: *pubFrac,
		BatchSize:   *batch,
		Sent:        sent,
		CacheHits:   rec.cacheHits(),
		Overall:     rec.summarize(""),
		Search:      rec.summarize("search"),
		Publish:     rec.summarize("publish"),
	}
	rep.AchievedQPS = float64(rep.Overall.OK+rep.Overall.Shed+rep.Overall.Errors) / duration.Seconds()
	if rep.Overall.Count > 0 {
		rep.OKRate = float64(rep.Overall.OK) / float64(rep.Overall.Count)
		rep.ShedRate = float64(rep.Overall.Shed) / float64(rep.Overall.Count)
		rep.ErrorRate = float64(rep.Overall.Errors) / float64(rep.Overall.Count)
	}

	printSummary(rep)

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *out)
	}

	// Non-zero exit when the run was all failures, so scripted smoke
	// runs notice a dead cluster.
	if rep.Overall.OK == 0 {
		fmt.Fprintln(os.Stderr, "no request succeeded")
		os.Exit(1)
	}
}

// waitReady polls every target's /healthz until 200 or the deadline.
func waitReady(client *http.Client, urls []string, d time.Duration) error {
	deadline := time.Now().Add(d)
	for _, u := range urls {
		for {
			resp, err := client.Get(u + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("target %s not ready after %v (%v)", u, d, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return nil
}

// preloadDocs publishes n documents round-robin across the targets in
// workload-sized batches, so measured searches run against real content.
func preloadDocs(client *http.Client, urls []string, w *workload, n int) error {
	for i := 0; n > 0; i++ {
		batch := w.batchSize
		if batch > n {
			batch = n
		}
		xmls := make([]string, batch)
		for j := range xmls {
			xmls[j] = w.doc()
		}
		body, _ := json.Marshal(publishBatchReq{XMLs: xmls})
		resp, err := client.Post(urls[i%len(urls)]+"/v1/publish-batch", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("preload batch status %d", resp.StatusCode)
		}
		n -= batch
	}
	return nil
}

// dispatch runs the open-loop arrival process: one request is launched
// at every tick of the fixed schedule, round-robin across targets,
// regardless of how many earlier requests are still in flight. Returns
// the number of requests sent.
func dispatch(client *http.Client, urls []string, w *workload, rec *recorder, rate float64, d time.Duration) int64 {
	interarrival := time.Duration(float64(time.Second) / rate)
	var wg sync.WaitGroup
	var sent int64
	start := time.Now()
	next := start
	deadline := start.Add(d)
	for time.Now().Before(deadline) {
		o := w.next() // sampled single-threaded: deterministic sequence
		target := urls[int(sent)%len(urls)]
		wg.Add(1)
		sent++
		go func() {
			defer wg.Done()
			rec.add(send(client, target, o))
		}()
		next = next.Add(interarrival)
		if sleep := time.Until(next); sleep > 0 {
			time.Sleep(sleep)
		}
		// Behind schedule: launch the next arrival immediately (open
		// loop never queues client-side).
	}
	wg.Wait()
	return sent
}

// send performs one request and classifies the outcome.
func send(client *http.Client, target string, o op) outcome {
	var (
		body []byte
		url  string
	)
	switch o.kind {
	case "publish":
		body, _ = json.Marshal(publishBatchReq{XMLs: o.xmls})
		url = target + "/v1/publish-batch"
	default:
		body, _ = json.Marshal(searchReq{Query: o.query, K: o.k})
		url = target + "/v1/search"
	}
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	us := time.Since(start).Microseconds()
	if err != nil {
		return outcome{kind: o.kind, us: us, status: 0}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return outcome{
		kind: o.kind, us: us, status: resp.StatusCode,
		cacheHit: resp.Header.Get("X-Planetp-Cache") == "hit",
	}
}

// printSummary renders the human-readable table.
func printSummary(r report) {
	fmt.Printf("targets=%d offered=%.0f req/s duration=%.1fs sent=%d achieved=%.1f req/s\n",
		len(r.Targets), r.OfferedRate, r.DurationS, r.Sent, r.AchievedQPS)
	fmt.Printf("ok=%.1f%% shed=%.1f%% errors=%.1f%% cache-hits=%d\n",
		100*r.OKRate, 100*r.ShedRate, 100*r.ErrorRate, r.CacheHits)
	row := func(name string, st latencyStats) {
		fmt.Printf("%-8s n=%-6d ok=%-6d shed=%-5d err=%-4d p50=%s p90=%s p99=%s p999=%s max=%s\n",
			name, st.Count, st.OK, st.Shed, st.Errors,
			fmtUS(st.P50us), fmtUS(st.P90us), fmtUS(st.P99us), fmtUS(st.P999us), fmtUS(st.MaxUs))
	}
	row("overall", r.Overall)
	row("search", r.Search)
	row("publish", r.Publish)
}

// fmtUS renders microseconds human-readably.
func fmtUS(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.1fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dus", us)
	}
}
