package main

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// The workload models what Jaho et al.'s gossip-search analysis assumes
// and the PlanetP paper never measures: a large client population whose
// query popularity is Zipf-distributed. Queries are drawn from a fixed
// population of distinct queries ranked by popularity — rank 0 is asked
// far more often than rank 1000 — so a generation-stamped result cache
// sees realistic re-ask rates, and published documents draw their words
// from the same skewed vocabulary so popular queries actually match
// content.

// workload derives every request deterministically from one seed: the
// dispatcher samples it single-threaded, so runs with equal flags replay
// the same request sequence.
type workload struct {
	rng        *rand.Rand
	queryZipf  *rand.Zipf // query rank ~ Zipf over [0, queries)
	wordZipf   *rand.Zipf // document word rank ~ Zipf over [0, vocab)
	vocab      int
	queryTerms int
	docTerms   int
	k          int
	pubFrac    float64
	batchSize  int
	docSeq     int // unique suffix so every published doc is fresh
}

func newWorkload(seed int64, vocab, queries, queryTerms, docTerms, k, batchSize int, zipfS float64, pubFrac float64) *workload {
	rng := rand.New(rand.NewSource(seed))
	return &workload{
		rng:        rng,
		queryZipf:  rand.NewZipf(rng, zipfS, 1, uint64(queries-1)),
		wordZipf:   rand.NewZipf(rng, zipfS, 1, uint64(vocab-1)),
		vocab:      vocab,
		queryTerms: queryTerms,
		docTerms:   docTerms,
		k:          k,
		pubFrac:    pubFrac,
		batchSize:  batchSize,
	}
}

// word renders vocabulary rank i (rank 0 = most popular).
func word(i int) string { return fmt.Sprintf("w%05d", i) }

// query renders the query of popularity rank r: queryTerms consecutive
// vocabulary words starting at rank r, so hot queries are built from hot
// words and distinct ranks give distinct term sets.
func (w *workload) query(r int) string {
	terms := make([]string, w.queryTerms)
	for t := range terms {
		terms[t] = word((r + t) % w.vocab)
	}
	return strings.Join(terms, " ")
}

// doc renders one fresh document with docTerms Zipf-sampled words (plus
// a unique token so republishing is never an idempotent no-op).
func (w *workload) doc() string {
	var b strings.Builder
	w.docSeq++
	fmt.Fprintf(&b, "<doc>d%08d", w.docSeq)
	for i := 0; i < w.docTerms; i++ {
		b.WriteByte(' ')
		b.WriteString(word(int(w.wordZipf.Uint64())))
	}
	b.WriteString("</doc>")
	return b.String()
}

// op is one sampled request, ready to send.
type op struct {
	kind  string // "search" or "publish"
	query string // search only
	k     int
	xmls  []string // publish only
}

// next samples the next arrival's request.
func (w *workload) next() op {
	if w.rng.Float64() < w.pubFrac {
		xmls := make([]string, w.batchSize)
		for i := range xmls {
			xmls[i] = w.doc()
		}
		return op{kind: "publish", xmls: xmls}
	}
	return op{kind: "search", query: w.query(int(w.queryZipf.Uint64())), k: w.k}
}

// --- result accounting ---

// outcome is one completed request.
type outcome struct {
	kind     string
	us       int64
	status   int // HTTP status; 0 = transport error
	cacheHit bool
}

// recorder accumulates outcomes from the request goroutines.
type recorder struct {
	mu   sync.Mutex
	outs []outcome
}

func (r *recorder) add(o outcome) {
	r.mu.Lock()
	r.outs = append(r.outs, o)
	r.mu.Unlock()
}

// latencyStats summarizes completed-OK latencies for one op kind.
type latencyStats struct {
	Count  int64 `json:"count"`
	OK     int64 `json:"ok"`
	Shed   int64 `json:"shed"`
	Errors int64 `json:"errors"`
	P50us  int64 `json:"p50_us"`
	P90us  int64 `json:"p90_us"`
	P99us  int64 `json:"p99_us"`
	P999us int64 `json:"p999_us"`
	MaxUs  int64 `json:"max_us"`
	MeanUs int64 `json:"mean_us"`
}

// quantile returns the q-quantile of sorted (nearest-rank).
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// summarize folds outcomes of one kind ("" = all).
func (r *recorder) summarize(kind string) latencyStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var st latencyStats
	var okLat []int64
	var sum int64
	for _, o := range r.outs {
		if kind != "" && o.kind != kind {
			continue
		}
		st.Count++
		switch {
		case o.status == 429:
			st.Shed++
		case o.status >= 200 && o.status < 300:
			st.OK++
			okLat = append(okLat, o.us)
			sum += o.us
			if o.us > st.MaxUs {
				st.MaxUs = o.us
			}
		default:
			st.Errors++
		}
	}
	sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
	st.P50us = quantile(okLat, 0.50)
	st.P90us = quantile(okLat, 0.90)
	st.P99us = quantile(okLat, 0.99)
	st.P999us = quantile(okLat, 0.999)
	if st.OK > 0 {
		st.MeanUs = sum / st.OK
	}
	return st
}

// cacheHits counts search outcomes answered from the serving tier's
// result cache.
func (r *recorder) cacheHits() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, o := range r.outs {
		if o.cacheHit {
			n++
		}
	}
	return n
}
