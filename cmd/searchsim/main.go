// Command searchsim reproduces the paper's search and retrieval
// experiments (Section 7.3): Table 3's collection characteristics and
// Figure 6's recall/precision/peers-contacted comparisons between the
// centralized TFxIDF baseline and PlanetP's TFxIPF with adaptive
// stopping.
//
// Usage:
//
//	searchsim -exp table3
//	searchsim -exp fig6a [-collection AP89] [-scale 8] [-peers 400]
//	searchsim -exp fig6b [-k 20] [-sizes 100,200,...,1000]
//	searchsim -exp fig6c [-collection AP89] [-scale 8] [-peers 400]
//
// -scale divides the collection's document and vocabulary counts to keep
// run times interactive; -scale 1 is the paper's full size.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"planetp/internal/collection"
	"planetp/internal/ir"
	"planetp/internal/metrics"
	"planetp/internal/search"
)

func main() {
	exp := flag.String("exp", "fig6a", "experiment: table3|fig6a|fig6b|fig6c")
	colName := flag.String("collection", "AP89", "collection: CACM|MED|CRAN|CISI|AP89")
	scale := flag.Int("scale", 8, "collection scale-down factor (1 = paper size)")
	peers := flag.Int("peers", 400, "community size (fig6a/6c)")
	k := flag.Int("k", 20, "documents requested (fig6b)")
	sizesArg := flag.String("sizes", "100,200,400,600,800,1000", "community sizes for fig6b")
	ksArg := flag.String("ks", "10,20,50,100,150,200,300,400", "k sweep for fig6a/6c")
	dist := flag.String("dist", "weibull", "document distribution: weibull|uniform")
	seed := flag.Int64("seed", 1, "random seed")
	group := flag.Int("group", 0, "contact peers in groups of m (Section 5.2; 0 = one by one)")
	conc := flag.Int("concurrency", 0, "peers of one group contacted at once (0/1 = sequential)")
	cache := flag.Bool("cache", false, "memoize IPF/rankings in an IPF cache across queries")
	flag.Parse()

	distribution := ir.Weibull
	if *dist == "uniform" {
		distribution = ir.Uniform
	}

	opts := search.Options{GroupSize: *group, Concurrency: *conc}
	if *cache {
		opts.Cache = search.NewIPFCache()
	}

	switch *exp {
	case "table3":
		table3(*scale, *seed)
	case "fig6a", "fig6c":
		fig6ac(*colName, *scale, *peers, parseInts(*ksArg), distribution, *seed, opts)
	case "fig6b":
		fig6b(*colName, *scale, *k, parseInts(*sizesArg), distribution, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad integer %q\n", f)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func getCollection(name string, scale int, seed int64) *collection.Collection {
	spec, ok := collection.Specs[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown collection %q\n", name)
		os.Exit(2)
	}
	_ = spec
	return collection.Generate(collection.ScaledSpec(name, scale), seed)
}

// table3 prints the realized characteristics of every generated
// collection next to the paper's numbers.
func table3(scale int, seed int64) {
	fmt.Printf("# Table 3: collection characteristics (synthetic stand-ins, scale 1/%d)\n", scale)
	fmt.Println("collection,queries,documents,words,size_mb")
	for _, name := range []string{"CACM", "MED", "CRAN", "CISI", "AP89"} {
		col := getCollection(name, scale, seed)
		s := col.Stats()
		fmt.Printf("%s,%d,%d,%d,%.1f\n", s.Name, s.Queries, s.Documents, s.Words, s.SizeMB)
	}
}

// fig6ac sweeps k: recall/precision (6a) and peers contacted (6c).
func fig6ac(name string, scale, peers int, ks []int, dist ir.Distribution, seed int64, opts search.Options) {
	col := getCollection(name, scale, seed)
	com := ir.Distribute(col, peers, dist, seed+7)
	com.Metrics = metrics.NewRegistry()
	com.SearchOpts = opts
	fmt.Printf("# Figure 6a/6c: %s over %d peers (%s distribution)\n", col.Name, peers, dist)
	fmt.Println("k,recall_idf,prec_idf,recall_ipf,prec_ipf,peers_idf,peers_ipf,peers_best")
	for _, pt := range ir.Evaluate(com, ks) {
		fmt.Printf("%d,%.3f,%.3f,%.3f,%.3f,%.1f,%.1f,%.1f\n",
			pt.K, pt.RecallIDF, pt.PrecisionIDF, pt.RecallIPF, pt.PrecisionIPF,
			pt.PeersIDF, pt.PeersIPF, pt.PeersBest)
	}
	summarize(com.Metrics)
}

// fig6b: recall at fixed k vs community size.
func fig6b(name string, scale, k int, sizes []int, dist ir.Distribution, seed int64) {
	col := getCollection(name, scale, seed)
	reg := metrics.NewRegistry()
	fmt.Printf("# Figure 6b: %s recall at k=%d vs community size (%s)\n", col.Name, k, dist)
	fmt.Println("peers,recall_ipf,recall_idf")
	for _, pt := range ir.RecallVsSize(col, sizes, k, dist, seed+7, reg) {
		fmt.Printf("%d,%.3f,%.3f\n", pt.Peers, pt.RecallIPF, pt.RecallIDF)
	}
	summarize(reg)
}

// summarize prints the run's aggregate search-cost metrics as CSV
// comment lines.
func summarize(reg *metrics.Registry) {
	s := reg.Snapshot()
	queries := s.Get("search_ranked_queries_total")
	contacted := s.Get("search_peers_contacted_total")
	avg := 0.0
	if queries > 0 {
		avg = float64(contacted) / float64(queries)
	}
	fmt.Printf("# run summary: ranked_queries=%d peers_contacted=%d (%.1f/query) docs_retrieved=%d stop_iterations=%d stopped_early=%d\n",
		queries, contacted, avg, s.Get("search_docs_retrieved_total"),
		s.Get("search_stop_iterations_total"), s.Get("search_stopped_early_total"))
	if h, ok := s.Histograms["search_peers_per_query"]; ok {
		fmt.Printf("# peers/query histogram: bounds=%v counts=%v\n", h.Bounds, h.Counts)
	}
	if hits, misses := s.Get("search_ipf_cache_hits_total"), s.Get("search_ipf_cache_misses_total"); hits+misses > 0 {
		fmt.Printf("# ipf cache: hits=%d misses=%d (%.1f%% hit rate)\n",
			hits, misses, 100*float64(hits)/float64(hits+misses))
	}
	if h, ok := s.Histograms["search_fetch_latency_us"]; ok && h.Count > 0 {
		fmt.Printf("# fetch latency: n=%d mean=%.1fus\n", h.Count, float64(h.Sum)/float64(h.Count))
	}
}
