// Command gossipsim reproduces the paper's gossiping experiments
// (Figures 2-5) on the discrete-event simulator and prints the series the
// paper plots as CSV.
//
// Usage:
//
//	gossipsim -exp fig2  [-sizes 100,200,500,1000] [-seed 1]
//	gossipsim -exp fig3  [-base 1000] [-joins 50,100,150,200,250]
//	gossipsim -exp fig4a [-n 1000] [-arrivals 100]
//	gossipsim -exp fig4b [-n 1000]   (also emits the fig4c timeline)
//	gossipsim -exp fig5  [-n 2000]
//	gossipsim -exp ingest [-n 200] [-docs 256] [-batches 1,16,64,256]
//	gossipsim -exp faults [-n 50] [-drop 0.25] [-dup 0] [-delay 0]
//	          [-partition-at 0s] [-heal-at 0s] [-fault-seed 42]
//	gossipsim -exp restart [-n 50] [-drop 0.25] [-fault-seed 42]
//	gossipsim -exp churn-storm [-n 32] [-rates 0.5,1,2,4] [-seed 7]
//	          [-json BENCH_churn.json]
//	gossipsim -exp replication [-n 32] [-docs 320] [-ks 1,3] [-seed 7]
//	          [-json BENCH_replication.json]
//	gossipsim -exp directory-scale [-sizes 10000,100000] [-terms 1000]
//	          [-cache-budget 67108864] [-converge-max 10000]
//	          [-max-bytes-per-peer 0] [-json BENCH_directory.json]
//	          [-memprofile heap.pprof]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"planetp/internal/gossipsim"
	"planetp/internal/metrics"
)

func main() {
	exp := flag.String("exp", "fig2", "experiment: fig2|fig3|fig4a|fig4b|fig4c|fig5")
	sizesArg := flag.String("sizes", "50,100,200,300,500,750,1000,1500,2000,3000", "community sizes for fig2")
	base := flag.Int("base", 1000, "base community size for fig3")
	joinsArg := flag.String("joins", "50,100,150,200,250", "joiner counts for fig3")
	n := flag.Int("n", 1000, "community size for fig4/fig5")
	arrivals := flag.Int("arrivals", 100, "arrivals for fig4a")
	seed := flag.Int64("seed", 1, "random seed")
	scensArg := flag.String("scenarios", "", "comma-separated scenario subset (default per experiment)")
	drop := flag.Float64("drop", 0.25, "faults: message drop probability")
	dup := flag.Float64("dup", 0, "faults: message duplication probability")
	delay := flag.Float64("delay", 0, "faults: message delay probability")
	partitionAt := flag.Duration("partition-at", 0, "faults: when to split the community in half (with -heal-at)")
	healAt := flag.Duration("heal-at", 0, "faults: when the partition heals (> -partition-at enables the split)")
	faultSeed := flag.Int64("fault-seed", 42, "faults: fault-schedule seed")
	docs := flag.Int("docs", 256, "ingest: documents in the publish burst")
	batchesArg := flag.String("batches", "1,16,64,256", "ingest: batch sizes to sweep")
	ratesArg := flag.String("rates", "0.5,1,2,4", "churn-storm: churn-rate multipliers to sweep")
	ksArg := flag.String("ks", "1,3", "replication: replication factors to sweep")
	repDocs := flag.Int("rep-docs", 320, "replication: modeled document population")
	jsonPath := flag.String("json", "", "churn-storm/directory-scale: also write the full report as JSON to this path")
	terms := flag.Int("terms", 1000, "directory-scale: keys per peer Bloom filter")
	cacheBudget := flag.Int64("cache-budget", 0, "directory-scale: probe-cache byte budget (0 = 64 MiB default)")
	convergeMax := flag.Int("converge-max", 10000, "directory-scale: run the convergence probe only at sizes up to this")
	maxBytesPerPeer := flag.Float64("max-bytes-per-peer", 0, "directory-scale: exit non-zero if directory bytes/peer exceeds this at any size (0 = no guard)")
	memProfile := flag.String("memprofile", "", "directory-scale: write a heap profile at steady state to this path")
	flag.Parse()

	switch *exp {
	case "fig2":
		fig2(parseInts(*sizesArg), pickScenarios(*scensArg, []gossipsim.Scenario{
			gossipsim.LAN, gossipsim.LANAE, gossipsim.DSL10, gossipsim.DSL30,
			gossipsim.DSL60, gossipsim.MIX,
		}), *seed)
	case "fig3":
		fig3(*base, parseInts(*joinsArg), pickScenarios(*scensArg, []gossipsim.Scenario{
			gossipsim.LAN, gossipsim.DSL30, gossipsim.MIX,
		}), *seed)
	case "fig4a":
		fig4a(*n, *arrivals, *seed)
	case "fig4b", "fig4c":
		fig4bc(*n, *seed)
	case "fig5":
		fig5(*n, *seed)
	case "ingest":
		ingest(*n, *docs, parseInts(*batchesArg), pickScenarios(*scensArg, []gossipsim.Scenario{
			gossipsim.LAN, gossipsim.DSL30,
		}), *seed)
	case "faults":
		faults(*n, gossipsim.FaultSpec{
			Drop: *drop, Dup: *dup, Delay: *delay,
			Partition:   *healAt > *partitionAt,
			PartitionAt: *partitionAt, HealAt: *healAt,
			Seed: *faultSeed,
		}, *seed)
	case "churn-storm":
		churnStorm(*n, parseFloats(*ratesArg), *seed, *jsonPath)
	case "replication":
		replication(*n, *repDocs, parseInts(*ksArg), *seed, *jsonPath)
	case "directory-scale":
		sizes := []int{10000, 100000}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "sizes" {
				sizes = parseInts(*sizesArg)
			}
		})
		directoryScale(sizes, gossipsim.ScaleSpec{
			TermsPerFilter: *terms,
			CacheBudget:    *cacheBudget,
			ConvergeMax:    *convergeMax,
			Seed:           *seed,
		}, *maxBytesPerPeer, *jsonPath, *memProfile)
	case "restart":
		restart(*n, gossipsim.FaultSpec{
			Drop: *drop, Dup: *dup, Delay: *delay,
			Partition:   *healAt > *partitionAt,
			PartitionAt: *partitionAt, HealAt: *healAt,
			Seed: *faultSeed,
		}, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad integer %q\n", f)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "bad rate %q\n", f)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func pickScenarios(arg string, def []gossipsim.Scenario) []gossipsim.Scenario {
	if arg == "" {
		return def
	}
	all := map[string]gossipsim.Scenario{
		"LAN": gossipsim.LAN, "LAN-AE": gossipsim.LANAE, "LAN-NPA": gossipsim.LANNPA,
		"DSL-10": gossipsim.DSL10, "DSL-30": gossipsim.DSL30, "DSL-60": gossipsim.DSL60,
		"MIX": gossipsim.MIX,
	}
	var out []gossipsim.Scenario
	for _, name := range strings.Split(arg, ",") {
		sc, ok := all[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q\n", name)
			os.Exit(2)
		}
		out = append(out, sc)
	}
	return out
}

// summarize prints a per-run metrics summary (rounds, messages, bytes)
// as a CSV comment line.
func summarize(reg *metrics.Registry, label string, peers int) {
	s := reg.Snapshot()
	rounds := s.Get("gossip_rounds_total")
	avg := 0.0
	if peers > 0 {
		avg = float64(rounds) / float64(peers)
	}
	fmt.Printf("# run %s: rounds=%d (%.1f/peer) msgs=%d bytes=%d rumors=%d ae=%d pulls=%d news=%d failed_sends=%d\n",
		label, rounds, avg,
		s.Get("simnet_msgs_total"), s.Get("simnet_bytes_total"),
		s.Get("gossip_rumors_sent_total"), s.Get("gossip_ae_requests_total"),
		s.Get("gossip_pulls_sent_total"), s.Get("gossip_news_learned_total"),
		s.Get("simnet_failed_sends_total"))
}

// fig2: propagation time (a), aggregate volume (b), per-peer bandwidth
// (c) of one 1000-key Bloom filter vs community size.
func fig2(sizes []int, scens []gossipsim.Scenario, seed int64) {
	fmt.Println("# Figure 2: propagate one 1000-key Bloom filter through a stable community")
	fmt.Println("scenario,peers,prop_time_s,total_bytes,per_peer_Bps")
	for _, sc := range scens {
		for _, n := range sizes {
			reg := metrics.NewRegistry()
			sc.Metrics = reg
			p := gossipsim.Propagation(sc, n, seed+int64(n))
			fmt.Printf("%s,%d,%.1f,%d,%.1f\n",
				sc.Name, n, p.Time.Seconds(), p.Bytes, p.PerPeerBW)
			summarize(reg, fmt.Sprintf("%s n=%d", sc.Name, n), n)
		}
	}
}

// fig3: time for joiners to merge into a stable base community.
func fig3(base int, joins []int, scens []gossipsim.Scenario, seed int64) {
	fmt.Println("# Figure 3: x-base peers join a stable community (20000 keys each)")
	fmt.Println("scenario,base,joiners,time_s,total_bytes,converged")
	for _, sc := range scens {
		for _, j := range joins {
			reg := metrics.NewRegistry()
			sc.Metrics = reg
			r := gossipsim.Join(sc, base, j, seed+int64(j))
			fmt.Printf("%s,%d,%d,%.1f,%d,%v\n",
				sc.Name, base, j, r.Time.Seconds(), r.Bytes, r.Converged)
			summarize(reg, fmt.Sprintf("%s base=%d joins=%d", sc.Name, base, j), base+j)
		}
	}
}

// fig4a: convergence-time CDF of Poisson arrivals, with vs without the
// partial anti-entropy.
func fig4a(n, arrivals int, seed int64) {
	fmt.Println("# Figure 4a: arrival convergence CDF, with (LAN) and without (LAN-NPA) partial anti-entropy")
	fmt.Println("scenario,percentile,conv_time_s")
	for _, sc := range []gossipsim.Scenario{gossipsim.LAN, gossipsim.LANNPA} {
		reg := metrics.NewRegistry()
		sc.Metrics = reg
		cdf := gossipsim.ArrivalCDF(sc, n, arrivals, 90*time.Second, seed)
		printCDF(sc.Name, cdf)
		summarize(reg, fmt.Sprintf("%s n=%d arrivals=%d", sc.Name, n, arrivals), n+arrivals)
	}
}

func printCDF(name string, cdf gossipsim.CDF) {
	for _, p := range []float64{10, 25, 50, 75, 90, 95, 99, 100} {
		fmt.Printf("%s,%.0f,%.1f\n", name, p, cdf.Percentile(p).Seconds())
	}
	if cdf.Unconverged > 0 {
		fmt.Printf("%s,unconverged,%d\n", name, cdf.Unconverged)
	}
}

// fig4bc: dynamic community (Section 7.2's churn mix) convergence CDF and
// aggregate bandwidth timeline.
func fig4bc(n int, seed int64) {
	fmt.Println("# Figure 4b: dynamic community convergence CDF; Figure 4c: bandwidth timeline")
	cfg := gossipsim.DefaultChurn(n)
	for _, sc := range []gossipsim.Scenario{gossipsim.LAN, gossipsim.MIX} {
		reg := metrics.NewRegistry()
		sc.Metrics = reg
		r := gossipsim.Churn(sc, cfg, seed)
		fmt.Printf("# %s: %d events, aggregate bandwidth %.1f KB/s\n",
			sc.Name, r.Events, r.AggregateBandwidth()/1e3)
		fmt.Println("scenario,percentile,conv_time_s")
		printCDF(sc.Name, r.All)
		fmt.Println("scenario,second,bytes")
		for s := r.MeasureStart; s < r.MeasureEnd && s < len(r.Timeline); s += 30 {
			fmt.Printf("%s,%d,%d\n", sc.Name, s-r.MeasureStart, r.Timeline[s])
		}
		summarize(reg, fmt.Sprintf("%s n=%d churn", sc.Name, n), n)
	}
}

// ingest: one peer publishes a document burst per-doc vs batched; the
// gossip cost of the burst is the announcement count, total bytes, and
// convergence time on the final version.
func ingest(n, docs int, batches []int, scens []gossipsim.Scenario, seed int64) {
	fmt.Printf("# Ingest burst: %d docs published per-doc vs batched (%d keys/doc)\n",
		docs, gossipsim.TermsPerDoc)
	fmt.Println("scenario,peers,docs,batch,publishes,time_s,total_bytes,converged")
	for _, sc := range scens {
		for _, r := range gossipsim.IngestSweep(sc, n, docs, batches, seed) {
			fmt.Printf("%s,%d,%d,%d,%d,%.1f,%d,%v\n",
				r.Scenario, r.N, r.Docs, r.Batch, r.Publishes,
				r.Time.Seconds(), r.Bytes, r.Converged)
		}
	}
}

// faults: convergence of one update through injected faults, with the
// schedule fingerprint so two runs with equal seeds can be diffed.
func faults(n int, spec gossipsim.FaultSpec, seed int64) {
	fmt.Println("# Faults: propagate one 1000-key update through injected message faults")
	fmt.Printf("# drop=%.2f dup=%.2f delay=%.2f partition=%v heal=%v fault_seed=%d seed=%d\n",
		spec.Drop, spec.Dup, spec.Delay, spec.PartitionAt, spec.HealAt, spec.Seed, seed)
	reg := metrics.NewRegistry()
	sc := gossipsim.LAN
	sc.Metrics = reg
	r := gossipsim.ConvergenceUnderFaults(sc, n, spec, seed)
	fmt.Println("peers,converged,time_s,digests_equal,schedule_hash,drops,dups,delays,dial_fails,partition_blocks,messages")
	fmt.Printf("%d,%v,%.1f,%v,%016x,%d,%d,%d,%d,%d,%d\n",
		n, r.Converged, r.Time.Seconds(), r.DigestsEqual, r.ScheduleHash,
		r.Faults.Drops, r.Faults.Dups, r.Faults.Delays, r.Faults.DialFails,
		r.Faults.PartitionBlocks, r.Faults.Messages)
	summarize(reg, fmt.Sprintf("faults n=%d", n), n)
}

// restart: a peer crashes mid-gossip with a torn WAL record, recovers
// from disk, and restarts at a superseding epoch through injected
// network faults.
func restart(n int, spec gossipsim.FaultSpec, seed int64) {
	fmt.Println("# Restart: crash a peer mid-gossip (torn WAL), recover from disk, rejoin under faults")
	fmt.Printf("# drop=%.2f dup=%.2f delay=%.2f fault_seed=%d seed=%d\n",
		spec.Drop, spec.Dup, spec.Delay, spec.Seed, seed)
	reg := metrics.NewRegistry()
	sc := gossipsim.LAN
	sc.Metrics = reg
	r := gossipsim.RestartUnderFaults(sc, n, spec, seed)
	fmt.Println("peers,converged,time_s,old_ver,new_ver,recovered_ops,truncated_records,stale_records,schedule_hash,drops,messages")
	fmt.Printf("%d,%v,%.1f,%d.%d,%d.%d,%d,%d,%d,%016x,%d,%d\n",
		n, r.Converged, r.Time.Seconds(),
		r.OldVer.Epoch, r.OldVer.Seq, r.NewVer.Epoch, r.NewVer.Seq,
		r.RecoveredOps, r.TruncatedRecords, r.StaleRecords,
		r.ScheduleHash, r.Faults.Drops, r.Faults.Messages)
	summarize(reg, fmt.Sprintf("restart n=%d", n), n)
}

// stormReport is the churn-storm experiment's JSON shape (BENCH_churn.json).
type stormReport struct {
	N         int                     `json:"n"`
	Seed      int64                   `json:"seed"`
	Scenarios []gossipsim.StormResult `json:"scenarios"`
	Sweep     []gossipsim.RatePoint   `json:"sweep"`
}

// churnStorm: the storm acceptance trio (flash crowd, mass departure,
// partition-heal mass rejoin) plus the staleness-vs-churn-rate sweep.
// Fully deterministic for equal -n/-seed: rerunning must reproduce every
// number, so a curve change is a protocol change. Sized for tens of
// peers — the horizons scale with n and the measurement is O(n²) per
// sample, so keep -n modest.
func churnStorm(n int, rates []float64, seed int64, jsonPath string) {
	fmt.Println("# Churn storms: directory staleness, T_Dead GC correctness, and bandwidth under scripted membership storms")
	report := stormReport{N: n, Seed: seed}
	fmt.Println("scenario,n,converged,live_drops,dead_violations,dead_cleared_s,stale_incarnations,final_staleness,final_coverage,total_bytes,bytes_per_round")
	for _, spec := range gossipsim.StormScenarios(n) {
		r := gossipsim.Storm(gossipsim.STORM, spec, seed)
		report.Scenarios = append(report.Scenarios, r)
		fmt.Printf("%s,%d,%v,%d,%d,%.0f,%d,%.4f,%.4f,%d,%.0f\n",
			r.Name, r.N, r.Converged, r.LiveDrops, r.DeadViolations,
			r.DeadClearedS, r.StaleIncarnations, r.FinalStaleness,
			r.FinalCoverage, r.TotalBytes, r.BytesPerRound)
	}
	fmt.Println("rate,events,mean_staleness,mean_online,bytes_per_sec,bytes_per_round")
	report.Sweep = gossipsim.ChurnRateSweep(gossipsim.STORM, n, rates, seed)
	for _, pt := range report.Sweep {
		fmt.Printf("%.2f,%d,%.4f,%.1f,%.1f,%.1f\n",
			pt.Rate, pt.Events, pt.MeanStaleness, pt.MeanOnline,
			pt.BytesPerSec, pt.BytesPerRound)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("# wrote %s\n", jsonPath)
	}
}

// replicationReport is the replication experiment's JSON shape
// (BENCH_replication.json).
type replicationReport struct {
	N    int                           `json:"n"`
	Docs int                           `json:"docs"`
	Ks   []int                         `json:"ks"`
	Seed int64                         `json:"seed"`
	Runs []gossipsim.ReplicationResult `json:"runs"`
}

// replication: hit availability vs replication factor under the
// mass-departure and partition-heal storms. At k=1 content dies with its
// owners; at k=3 the hot decile rides out the storm on its replicas.
// Deterministic for equal -n/-docs/-ks/-seed.
func replication(n, docs int, ks []int, seed int64, jsonPath string) {
	fmt.Println("# Replication: hit availability vs replication factor under membership storms")
	report := replicationReport{N: n, Docs: docs, Ks: ks, Seed: seed}
	fmt.Println("scenario,n,k,docs,hot_docs,min_hot_avail,final_hot_avail,final_hit_avail,final_avail,mean_hit_avail,lost_docs,lost_hot_docs,repairs")
	for _, spec := range gossipsim.ReplicationScenarios(n) {
		for _, k := range ks {
			r := gossipsim.Replication(gossipsim.STORM, spec, docs, k, seed)
			report.Runs = append(report.Runs, r)
			fmt.Printf("%s,%d,%d,%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%d,%d,%d\n",
				r.Name, r.N, r.K, r.Docs, r.HotDocs,
				r.MinHotAvailability, r.FinalHotAvailability,
				r.FinalHitAvailability, r.FinalAvailability,
				r.MeanHitAvailability, r.LostDocs, r.LostHotDocs, r.Repairs)
		}
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("# wrote %s\n", jsonPath)
	}
}

// scaleReport is the directory-scale experiment's JSON shape
// (BENCH_directory.json).
type scaleReport struct {
	TermsPerFilter int                    `json:"terms_per_filter"`
	CacheBudget    int64                  `json:"cache_budget"`
	Seed           int64                  `json:"seed"`
	Points         []gossipsim.ScalePoint `json:"points"`
}

// directoryScale: weigh one compressed-resident directory replica at each
// community size against the decompressed-filter baseline, sweep a query
// fan-out through the probe cache cold and warm, and (up to -converge-max)
// tie the numbers to a live propagation-convergence probe. The
// -max-bytes-per-peer guard turns the memory diet into a CI gate.
func directoryScale(sizes []int, spec gossipsim.ScaleSpec, maxBytesPerPeer float64, jsonPath, memProfile string) {
	fmt.Println("# Directory scale: per-replica memory and probe latency of the compressed-resident directory")
	fmt.Println("n,payload_bytes,dir_bytes_per_peer,baseline_bytes_per_peer,ratio,cold_probe_ns,warm_probe_ns,cache_resident_bytes,heap_alloc_bytes,converge_s,build_s")
	report := scaleReport{TermsPerFilter: spec.TermsPerFilter, CacheBudget: spec.CacheBudget, Seed: spec.Seed}
	violated := false
	for _, n := range sizes {
		sp := spec
		sp.N = n
		pt := gossipsim.DirectoryScale(gossipsim.LAN, sp)
		report.Points = append(report.Points, pt)
		fmt.Printf("%d,%d,%.1f,%.1f,%.4f,%.0f,%.0f,%d,%d,%.1f,%.2f\n",
			pt.N, pt.PayloadBytes, pt.BytesPerPeer, pt.BaselineBytesPerPeer,
			pt.Ratio, pt.ColdProbeNS, pt.WarmProbeNS, pt.CacheResidentBytes,
			pt.HeapAllocBytes, pt.ConvergeS, pt.BuildS)
		if maxBytesPerPeer > 0 && pt.BytesPerPeer > maxBytesPerPeer {
			fmt.Fprintf(os.Stderr, "directory-scale: n=%d bytes/peer %.1f exceeds budget %.1f\n",
				n, pt.BytesPerPeer, maxBytesPerPeer)
			violated = true
		}
	}
	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("# wrote %s\n", memProfile)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("# wrote %s\n", jsonPath)
	}
	if violated {
		os.Exit(1)
	}
}

// fig5: 2000-member dynamic community; MIX-F/MIX-S fast/slow-source
// convergence with the fast-peers-only condition.
func fig5(n int, seed int64) {
	fmt.Println("# Figure 5: dynamic community convergence CDF (LAN, MIX, MIX-F, MIX-S)")
	cfg := gossipsim.DefaultChurn(n)
	fmt.Println("scenario,percentile,conv_time_s")
	for _, sc := range []gossipsim.Scenario{gossipsim.LAN, gossipsim.MIX} {
		r := gossipsim.Churn(sc, cfg, seed)
		printCDF(sc.Name, r.All)
	}
	cfgF := cfg
	cfgF.FastOnly = true
	r := gossipsim.Churn(gossipsim.MIX, cfgF, seed)
	printCDF("MIX-F", r.Fast)
	printCDF("MIX-S", r.Slow)
}
