// Modem: PlanetP's accommodations for bandwidth-limited members
// (Section 7.2's future-work items, implemented here). A modem-class peer
// joins a community of fast peers, acquires the directory in small pieces
// (capped anti-entropy pulls), and delegates its ranked searches to a
// fast proxy instead of contacting dozens of candidate peers over its
// slow uplink.
package main

import (
	"fmt"
	"log"
	"time"

	"planetp"
)

const n = 10

func main() {
	fastCfg := planetp.GossipConfig{
		BaseInterval: 30 * time.Millisecond,
		MaxInterval:  120 * time.Millisecond,
		SlowdownStep: 30 * time.Millisecond,
	}
	// The fast community.
	peers := make([]*planetp.Peer, 0, n)
	for i := 0; i < n-1; i++ {
		p, err := planetp.NewPeer(planetp.Config{
			ID: planetp.PeerID(i), Capacity: n,
			Class:  planetp.Fast,
			Gossip: fastCfg, Seed: int64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Stop()
		peers = append(peers, p)
	}
	for _, p := range peers[1:] {
		if err := p.Join(peers[0].Addr()); err != nil {
			log.Fatal(err)
		}
	}
	for _, p := range peers {
		p.Start()
	}
	for i, p := range peers {
		_, err := p.Publish(fmt.Sprintf(
			`<doc n="%d">distributed systems consensus paper number %d shard</doc>`, i, i))
		if err != nil {
			log.Fatal(err)
		}
	}
	waitFor(func() bool {
		for _, p := range peers {
			if p.Directory().NumKnown() != n-1 {
				return false
			}
		}
		return true
	}, "fast community convergence")
	fmt.Printf("fast community of %d peers converged\n", n-1)

	// The modem peer: slow class, chunked directory pulls (3 records per
	// anti-entropy exchange).
	modemCfg := fastCfg
	modemCfg.BandwidthAware = true
	modemCfg.MaxPullBatch = 3
	modem, err := planetp.NewPeer(planetp.Config{
		ID: n - 1, Capacity: n,
		Class:  planetp.Slow,
		Gossip: modemCfg, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer modem.Stop()
	if err := modem.Join(peers[0].Addr()); err != nil {
		log.Fatal(err)
	}
	modem.Start()

	// Watch the directory arrive in pieces.
	last := modem.Directory().NumKnown()
	fmt.Printf("modem peer joins knowing %d records; downloading in batches of 3...\n", last)
	waitFor(func() bool {
		if k := modem.Directory().NumKnown(); k != last {
			fmt.Printf("  directory: %d/%d records\n", k, n)
			last = k
		}
		return modem.Directory().NumKnown() == n
	}, "chunked directory download")

	// Delegate the search to a fast proxy.
	proxy, ok := modem.PickProxy()
	if !ok {
		log.Fatal("no proxy found")
	}
	waitFor(func() bool {
		docs, err := modem.SearchVia(proxy, "consensus shard", 5)
		return err == nil && len(docs) == 5
	}, "proxy search results")
	docs, err := modem.SearchVia(proxy, "consensus shard", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nproxy search via fast peer %d returned %d results over ONE connection:\n",
		proxy, len(docs))
	for _, d := range docs {
		fmt.Printf("  %.3f  peer %d  %s\n", d.Score, d.Peer, d.Key[:12])
	}
	// Compare with what a direct search would have cost the modem.
	_, st := modem.Search("consensus shard", 5)
	fmt.Printf("\n(a direct search would have contacted %d peers over the modem link)\n",
		st.PeersContacted)
}

func waitFor(cond func() bool, what string) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(15 * time.Millisecond)
	}
	log.Fatalf("timeout waiting for %s", what)
}
