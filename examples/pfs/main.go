// PFS: the personal semantic file system of Section 6. Three users share
// files from their local disks; each user's namespace is organized by
// query-defined directories that fill themselves as matching files are
// published anywhere in the community, via PlanetP's persistent-query
// upcalls. Directory listings include per-file URLs served by each
// owner's File Server.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"planetp"
)

const n = 3

func main() {
	gossip := planetp.GossipConfig{
		BaseInterval: 30 * time.Millisecond,
		MaxInterval:  120 * time.Millisecond,
		SlowdownStep: 30 * time.Millisecond,
	}
	peers := make([]*planetp.Peer, n)
	mounts := make([]*planetp.FS, n)
	for i := range peers {
		p, err := planetp.NewPeer(planetp.Config{
			ID: planetp.PeerID(i), Capacity: n,
			Gossip: gossip, Seed: int64(i + 1),
			BrokerTopFrac: 0.10, BrokerDiscard: 10 * time.Minute,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Stop()
		peers[i] = p
		fs, err := planetp.NewFS(p)
		if err != nil {
			log.Fatal(err)
		}
		defer fs.Close()
		mounts[i] = fs
	}
	for _, p := range peers[1:] {
		if err := p.Join(peers[0].Addr()); err != nil {
			log.Fatal(err)
		}
	}
	for _, p := range peers {
		p.Start()
	}
	waitConverged(peers)

	// Each user shares some files from a scratch directory.
	tmp, err := os.MkdirTemp("", "pfs-demo-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	files := []struct {
		owner int
		name  string
		body  string
	}{
		{0, "raft-notes.txt", "consensus log replication leader election terms"},
		{1, "paxos-draft.txt", "consensus proposal quorum acceptor ballot"},
		{1, "soup-recipe.txt", "tomato basil onion simmer gently"},
		{2, "epidemic.txt", "gossip dissemination rumor anti entropy consensus free"},
	}
	byOwner := make([][]string, n)
	for _, f := range files {
		path := filepath.Join(tmp, f.name)
		if err := os.WriteFile(path, []byte(f.body), 0o644); err != nil {
			log.Fatal(err)
		}
		byOwner[f.owner] = append(byOwner[f.owner], path)
	}
	// Each user shares all their files as one batched publish: one WAL
	// commit and one gossiped filter update per user, however many files.
	for owner, paths := range byOwner {
		docs, err := mounts[owner].PublishFiles(paths)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user %d published %d file(s) in one batch\n", owner, len(docs))
	}

	// User 0 creates a semantic directory for "consensus"; it fills with
	// everyone's matching files, then is refined to a subdirectory.
	dir := mounts[0].MkDir("consensus")
	waitFor(func() bool { return dir.Len() >= 3 }, "consensus directory to fill")
	fmt.Println("\n~/consensus:")
	for _, e := range dir.Open() {
		fmt.Printf("  %-18s (peer %d)  %s\n", e.Name, e.Peer, e.URL)
	}

	sub := dir.Refine("quorum")
	waitFor(func() bool { return sub.Len() >= 1 }, "refined directory")
	fmt.Println("\n~/consensus/quorum:")
	for _, e := range sub.Open() {
		fmt.Printf("  %-18s (peer %d)\n", e.Name, e.Peer)
		// Fetch the file's content through the owner's File Server.
		resp, err := http.Get(e.URL)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("    content: %s\n", body)
	}
}

func waitFor(cond func() bool, what string) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatalf("timeout waiting for %s", what)
}

func waitConverged(peers []*planetp.Peer) {
	waitFor(func() bool {
		for _, p := range peers {
			if p.Directory().NumKnown() != len(peers) {
				return false
			}
		}
		return true
	}, "membership convergence")
}
