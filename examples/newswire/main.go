// Newswire: persistent queries plus the information brokerage (Sections 4
// and 5.1). Subscribers post standing queries; publishers push dated
// snippets. Thanks to dual publication — each document's most frequent
// terms go straight to the consistent-hashing brokers with a short
// discard time — subscribers are notified moments after publication,
// long before Bloom-filter gossip would have diffused the new content.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"planetp"
)

const n = 6

func main() {
	// Deliberately SLOW gossip (2 s base interval) to showcase that the
	// brokerage path beats Bloom-filter diffusion.
	gossip := planetp.GossipConfig{
		BaseInterval: 2 * time.Second,
		MaxInterval:  4 * time.Second,
	}
	peers := make([]*planetp.Peer, n)
	for i := range peers {
		p, err := planetp.NewPeer(planetp.Config{
			ID: planetp.PeerID(i), Capacity: n,
			Gossip: gossip, Seed: int64(i + 1),
			BrokerTopFrac: 0.25,             // dual publication
			BrokerDiscard: 10 * time.Minute, // PFS's setting
		})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Stop()
		peers[i] = p
	}
	for _, p := range peers[1:] {
		if err := p.Join(peers[0].Addr()); err != nil {
			log.Fatal(err)
		}
	}
	for _, p := range peers {
		p.Start()
	}
	waitConverged(peers)
	fmt.Println("newswire community of 6 peers ready (gossip interval: 2s)")

	// Subscribers on peers 4 and 5.
	var mu sync.Mutex
	arrivals := map[string]time.Time{}
	subscribe := func(p *planetp.Peer, topic string) {
		p.PostPersistentQuery(topic, func(d planetp.DocResult) {
			mu.Lock()
			arrivals[fmt.Sprintf("peer%d/%s/%s", p.ID(), topic, d.Key[:8])] = time.Now()
			mu.Unlock()
			fmt.Printf("  -> peer %d notified of %q match %s (held by peer %d)\n",
				p.ID(), topic, d.Key[:8], d.Peer)
		})
	}
	subscribe(peers[4], "earthquake chile")
	subscribe(peers[5], "election results")

	// Publishers on peers 1 and 2.
	stories := []struct {
		peer int
		xml  string
	}{
		{1, `<story>earthquake earthquake chile chile magnitude seven coastal towns evacuated</story>`},
		{2, `<story>election election results results landslide victory parliament coalition</story>`},
		{1, `<story>sports cup final penalty shootout drama extra time</story>`}, // no subscriber
	}
	start := time.Now()
	for _, s := range stories {
		if _, err := peers[s.peer].Publish(s.xml); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("3 stories published; waiting for broker notifications...")

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		got := len(arrivals)
		mu.Unlock()
		if got >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(arrivals) < 2 {
		log.Fatal("subscribers were not notified")
	}
	for k, at := range arrivals {
		fmt.Printf("%s delivered %v after publication (gossip alone would need ~1 interval = 2s+)\n",
			k, at.Sub(start).Round(time.Millisecond))
	}
}

func waitConverged(peers []*planetp.Peer) {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, p := range peers {
			if p.Directory().NumKnown() != len(peers) {
				done = false
				break
			}
		}
		if done {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatal("community did not converge")
}
