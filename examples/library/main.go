// Library: the paper's motivating scenario — a community sharing a large
// set of text documents (think scientific publications) with no central
// index. 24 peers share 240 generated abstracts across a handful of
// research topics; ranked TFxIPF searches locate topical documents while
// contacting only a fraction of the community, and the demo reports the
// peers-contacted economics the paper's Figure 6c is about.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"planetp"
)

const (
	numPeers = 24
	docsEach = 10
)

// topics give each synthetic abstract a distinctive vocabulary.
var topics = map[string][]string{
	"gossip":  {"gossip", "epidemic", "rumor", "antientropy", "convergence", "dissemination"},
	"storage": {"filesystem", "block", "journal", "checkpoint", "durability", "snapshot"},
	"network": {"routing", "congestion", "latency", "throughput", "topology", "multicast"},
	"crypto":  {"cipher", "signature", "nonce", "handshake", "certificate", "entropy"},
}

var filler = strings.Fields(`system design evaluation results method analysis
	approach model performance implementation experiment measurement data
	study framework technique protocol service application`)

func makeDoc(rng *rand.Rand, topic string) string {
	words := make([]string, 0, 40)
	tw := topics[topic]
	for i := 0; i < 40; i++ {
		if rng.Intn(3) == 0 {
			words = append(words, tw[rng.Intn(len(tw))])
		} else {
			words = append(words, filler[rng.Intn(len(filler))])
		}
	}
	return fmt.Sprintf(`<abstract topic="%s">%s</abstract>`, topic, strings.Join(words, " "))
}

func main() {
	gossip := planetp.GossipConfig{
		BaseInterval: 30 * time.Millisecond,
		MaxInterval:  120 * time.Millisecond,
		SlowdownStep: 30 * time.Millisecond,
	}
	peers := make([]*planetp.Peer, numPeers)
	for i := range peers {
		p, err := planetp.NewPeer(planetp.Config{
			ID: planetp.PeerID(i), Capacity: numPeers,
			Gossip: gossip, Seed: int64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Stop()
		peers[i] = p
	}
	for _, p := range peers[1:] {
		if err := p.Join(peers[0].Addr()); err != nil {
			log.Fatal(err)
		}
	}
	for _, p := range peers {
		p.Start()
	}

	// Skewed sharing, as observed in real communities: a few peers hold
	// most topical content.
	rng := rand.New(rand.NewSource(7))
	names := []string{"gossip", "storage", "network", "crypto"}
	published := 0
	for i, p := range peers {
		for d := 0; d < docsEach; d++ {
			topic := names[(i/6)%len(names)] // six peers per topic
			if _, err := p.Publish(makeDoc(rng, topic)); err != nil {
				log.Fatal(err)
			}
			published++
		}
		_ = i
	}

	waitConverged(peers)
	fmt.Printf("library of %d documents across %d peers, fully gossip-replicated directory\n\n",
		published, numPeers)

	searcher := peers[numPeers-1]
	for _, q := range []string{
		"epidemic rumor convergence",
		"journal checkpoint durability",
		"congestion latency routing",
		"cipher handshake certificate",
	} {
		results, stats := searcher.Search(q, 8)
		fmt.Printf("query %-32q -> %d docs, contacted %d of %d candidate peers (adaptive stop: %v)\n",
			q, len(results), stats.PeersContacted, stats.PeersRanked, stats.StoppedEarly)
		// Verify the top hits actually come from the right topical shelf.
		hits := map[planetp.PeerID]int{}
		for _, r := range results {
			hits[r.Peer]++
		}
		fmt.Printf("  holders: %v\n", hits)
	}
}

func waitConverged(peers []*planetp.Peer) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, p := range peers {
			if p.Directory().NumKnown() != len(peers) {
				done = false
				break
			}
		}
		if done {
			time.Sleep(400 * time.Millisecond)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatal("community did not converge")
}
