// Quickstart: an eight-peer PlanetP community on TCP loopback. Peers
// publish documents, gossip their Bloom-filter summaries to convergence,
// and answer ranked content searches from any member — no central index
// anywhere.
//
// Gossip intervals are shrunk from the paper's 30 s to 30 ms so the demo
// finishes in seconds; the protocol is otherwise exactly the deployed one.
package main

import (
	"fmt"
	"log"
	"time"

	"planetp"
)

const n = 8

func main() {
	// Build the community: peer 0 is the bootstrap contact.
	gossip := planetp.GossipConfig{
		BaseInterval: 30 * time.Millisecond,
		MaxInterval:  120 * time.Millisecond,
		SlowdownStep: 30 * time.Millisecond,
	}
	peers := make([]*planetp.Peer, n)
	for i := range peers {
		p, err := planetp.NewPeer(planetp.Config{
			ID: planetp.PeerID(i), Capacity: n,
			Gossip: gossip, Seed: int64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Stop()
		peers[i] = p
	}
	for _, p := range peers[1:] {
		if err := p.Join(peers[0].Addr()); err != nil {
			log.Fatal(err)
		}
	}
	for _, p := range peers {
		p.Start()
	}

	// Each peer shares one document.
	docs := []string{
		`<paper title="epidemics">epidemic algorithms for replicated database maintenance</paper>`,
		`<paper title="bloom">space time tradeoffs in hash coding with allowable errors</paper>`,
		`<paper title="chord">a scalable peer to peer lookup service for internet applications</paper>`,
		`<paper title="gloss">text source discovery over the internet with gloss</paper>`,
		`<paper title="bayou">managing update conflicts in bayou a weakly connected replicated storage system</paper>`,
		`<paper title="chash">consistent hashing and random trees for relieving hot spots</paper>`,
		`<paper title="vector">a vector space model for automatic indexing and retrieval</paper>`,
		`<paper title="semantic">semantic file systems for content based access</paper>`,
	}
	for i, p := range peers {
		if _, err := p.Publish(docs[i]); err != nil {
			log.Fatal(err)
		}
	}

	// Wait for the gossip to replicate every directory everywhere.
	waitConverged(peers)
	fmt.Printf("community of %d peers converged; every peer holds %d directory entries\n",
		n, peers[0].Directory().NumKnown())

	// Any peer can now search the whole communal store.
	for _, query := range []string{"replicated database", "peer to peer lookup", "vector space retrieval"} {
		results, stats := peers[7].Search(query, 3)
		fmt.Printf("\npeer 7 searches %q (contacted %d/%d peers):\n",
			query, stats.PeersContacted, stats.PeersRanked)
		for _, r := range results {
			xml, err := peers[7].FetchDocument(r.Peer, r.Key)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %.3f  peer %d: %.60s...\n", r.Score, r.Peer, xml)
		}
	}
}

// waitConverged polls until every peer knows every record.
func waitConverged(peers []*planetp.Peer) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, p := range peers {
			if p.Directory().NumKnown() != len(peers) {
				done = false
				break
			}
		}
		if done {
			// One more beat so the last Bloom filters land too.
			time.Sleep(300 * time.Millisecond)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatal("community did not converge")
}
