// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 7), plus ablations of the design decisions called
// out in DESIGN.md. Each figure bench runs the corresponding simulation
// and reports the paper's quantities as custom metrics (prop-s, MB,
// B/s-per-peer, recall, peers-contacted), so `go test -bench=. -benchmem`
// reproduces the whole evaluation in one command.
//
//	go test -bench=Table1 .      # micro-benchmarks (Table 1)
//	go test -bench=Fig2 .        # propagation time/volume/bandwidth
//	go test -bench=. -benchmem   # everything
package planetp_test

import (
	"fmt"
	"testing"
	"time"

	"planetp/internal/bloom"
	"planetp/internal/collection"
	"planetp/internal/gossip"
	"planetp/internal/gossipsim"
	"planetp/internal/index"
	"planetp/internal/ir"
	"planetp/internal/search"
	"planetp/internal/simnet"
	"planetp/internal/text"
)

// --- Table 1: micro-benchmark costs of basic operations -----------------

func benchKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("term-%d", i)
	}
	return out
}

// BenchmarkTable1BloomInsert measures per-key Bloom insertion (Table 1
// row 1; the paper: 4ms + 0.011ms/key after JIT).
func BenchmarkTable1BloomInsert(b *testing.B) {
	keys := benchKeys(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := bloom.Default()
		f.InsertAll(keys)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1000, "ns/key")
}

// BenchmarkTable1BloomSearch measures membership tests (Table 1 row 2).
func BenchmarkTable1BloomSearch(b *testing.B) {
	f := bloom.Default()
	keys := benchKeys(1000)
	f.InsertAll(keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(keys[i%len(keys)])
	}
}

// BenchmarkTable1BloomCompress measures Golomb compression of a 50000-term
// filter (Table 1 row 3; the paper: ~0.5s with JIT for 50k terms).
func BenchmarkTable1BloomCompress(b *testing.B) {
	f := bloom.Default()
	f.InsertAll(benchKeys(50000))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Compress()
	}
}

// BenchmarkTable1BloomDecompress measures decompression (Table 1 row 4).
func BenchmarkTable1BloomDecompress(b *testing.B) {
	f := bloom.Default()
	f.InsertAll(benchKeys(50000))
	buf := f.Compress()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bloom.Decompress(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1IndexInsert measures inverted-index insertion (Table 1
// row 5).
func BenchmarkTable1IndexInsert(b *testing.B) {
	freqs := make(map[string]int, 1000)
	for _, k := range benchKeys(1000) {
		freqs[k] = 2
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix := index.New()
		ix.AddTermFreqs(freqs)
	}
}

// BenchmarkTable1IndexSearch measures inverted-index lookups (Table 1 row
// 6).
func BenchmarkTable1IndexSearch(b *testing.B) {
	ix := index.New()
	freqs := make(map[string]int, 1000)
	keys := benchKeys(1000)
	for _, k := range keys {
		freqs[k] = 2
	}
	for d := 0; d < 100; d++ {
		ix.AddTermFreqs(freqs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(keys[i%len(keys)])
	}
}

// BenchmarkTable1FiveTermQueryAcross1000Filters reproduces the paper's
// "50 ms to search a query with five terms across 1000 Bloom filters".
func BenchmarkTable1FiveTermQueryAcross1000Filters(b *testing.B) {
	filters := make([]*bloom.Filter, 1000)
	for i := range filters {
		filters[i] = bloom.Default()
		filters[i].InsertAll(benchKeys(1000))
	}
	query := []string{"term-1", "term-2", "term-3", "term-999", "absent"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range filters {
			f.ContainsAll(query)
		}
	}
}

// --- Figure 2: propagation time / volume / per-peer bandwidth -----------

func benchPropagation(b *testing.B, sc gossipsim.Scenario, n int) {
	b.Helper()
	var last gossipsim.PropagationPoint
	for i := 0; i < b.N; i++ {
		last = gossipsim.Propagation(sc, n, int64(i+1))
	}
	b.ReportMetric(last.Time.Seconds(), "prop-s")
	b.ReportMetric(float64(last.Bytes)/1e6, "MB")
	b.ReportMetric(last.PerPeerBW, "B/s-per-peer")
}

// BenchmarkFig2LAN500 etc. regenerate one point of each Figure 2 series.
func BenchmarkFig2LAN500(b *testing.B)   { benchPropagation(b, gossipsim.LAN, 500) }
func BenchmarkFig2LANAE500(b *testing.B) { benchPropagation(b, gossipsim.LANAE, 500) }
func BenchmarkFig2DSL10_500(b *testing.B) {
	benchPropagation(b, gossipsim.DSL10, 500)
}
func BenchmarkFig2DSL30_500(b *testing.B) {
	benchPropagation(b, gossipsim.DSL30, 500)
}
func BenchmarkFig2DSL60_500(b *testing.B) {
	benchPropagation(b, gossipsim.DSL60, 500)
}
func BenchmarkFig2MIX500(b *testing.B) { benchPropagation(b, gossipsim.MIX, 500) }

// BenchmarkFig2DSL30_2000 is the scalability point: propagation stays
// log-like out to thousands of peers.
func BenchmarkFig2DSL30_2000(b *testing.B) { benchPropagation(b, gossipsim.DSL30, 2000) }

// --- Figure 3: mass join -------------------------------------------------

func benchJoin(b *testing.B, sc gossipsim.Scenario, base, joiners int) {
	b.Helper()
	var last gossipsim.JoinResult
	for i := 0; i < b.N; i++ {
		last = gossipsim.Join(sc, base, joiners, int64(i+1))
	}
	b.ReportMetric(last.Time.Seconds(), "join-s")
	b.ReportMetric(float64(last.Bytes)/1e6, "MB")
	if !last.Converged {
		b.Log("warning: did not converge within horizon")
	}
}

func BenchmarkFig3JoinLAN(b *testing.B)   { benchJoin(b, gossipsim.LAN, 500, 50) }
func BenchmarkFig3JoinDSL30(b *testing.B) { benchJoin(b, gossipsim.DSL30, 500, 50) }
func BenchmarkFig3JoinMIX(b *testing.B)   { benchJoin(b, gossipsim.MIX, 500, 50) }

// --- Figure 4a: arrival convergence and the partial-AE ablation ---------

func benchArrivals(b *testing.B, sc gossipsim.Scenario) {
	b.Helper()
	var cdf gossipsim.CDF
	for i := 0; i < b.N; i++ {
		cdf = gossipsim.ArrivalCDF(sc, 500, 50, 90*time.Second, int64(i+1))
	}
	b.ReportMetric(cdf.Percentile(50).Seconds(), "p50-s")
	b.ReportMetric(cdf.Percentile(99).Seconds(), "p99-s")
	b.ReportMetric(float64(cdf.Unconverged), "unconverged")
}

func BenchmarkFig4aArrivalsLAN(b *testing.B) { benchArrivals(b, gossipsim.LAN) }

// BenchmarkAblationPartialAE is the LAN-NPA series: identical workload
// without the rumor-ack piggyback. Compare p99-s against
// BenchmarkFig4aArrivalsLAN — the tail widens markedly.
func BenchmarkAblationPartialAE(b *testing.B) { benchArrivals(b, gossipsim.LANNPA) }

// --- Figure 4b/4c and Figure 5: dynamic communities ----------------------

func benchChurn(b *testing.B, sc gossipsim.Scenario, n int, fastOnly bool) gossipsim.ChurnResult {
	b.Helper()
	cfg := gossipsim.DefaultChurn(n)
	cfg.Warmup = 15 * time.Minute
	cfg.Measure = time.Hour
	cfg.FastOnly = fastOnly
	var r gossipsim.ChurnResult
	for i := 0; i < b.N; i++ {
		r = gossipsim.Churn(sc, cfg, int64(i+1))
	}
	b.ReportMetric(r.All.Percentile(50).Seconds(), "p50-s")
	b.ReportMetric(r.All.Percentile(90).Seconds(), "p90-s")
	b.ReportMetric(r.AggregateBandwidth()/1e3, "agg-KB/s")
	return r
}

func BenchmarkFig4bChurnLAN(b *testing.B) { benchChurn(b, gossipsim.LAN, 500, false) }
func BenchmarkFig4bChurnMIX(b *testing.B) { benchChurn(b, gossipsim.MIX, 500, false) }

// BenchmarkFig5Churn2000 runs the 2000-member dynamic community; MIX-F /
// MIX-S split out fast- and slow-sourced events under the fast-only
// convergence condition.
func BenchmarkFig5Churn2000(b *testing.B) {
	r := benchChurn(b, gossipsim.MIX, 2000, true)
	b.ReportMetric(r.Fast.Percentile(50).Seconds(), "mixF-p50-s")
	b.ReportMetric(r.Slow.Percentile(50).Seconds(), "mixS-p50-s")
}

// BenchmarkAblationBandwidthAware turns off the two-class target
// selection on the MIX profile: compare p90-s with BenchmarkFig4bChurnMIX
// to see what the fast/slow split buys.
func BenchmarkAblationBandwidthAware(b *testing.B) {
	flat := gossipsim.MIX
	flat.Name = "MIX-flat"
	flat.BandwidthAware = false
	benchChurn(b, flat, 500, false)
}

// BenchmarkAblationAdaptiveInterval measures residual gossip bandwidth of
// a fully converged, idle community with and without the adaptive
// slow-down (Section 3's claim: "bandwidth use is negligible after a
// short time").
func BenchmarkAblationAdaptiveInterval(b *testing.B) {
	run := func(maxInterval time.Duration) float64 {
		const n = 300
		cfg := gossip.Config{BaseInterval: 30 * time.Second, MaxInterval: maxInterval}
		s := simnet.New(n, cfg, simnet.DefaultParams(), 77)
		simnet.BuildCommunity(s, n, simnet.UniformProfile(simnet.LAN),
			gossipsim.Diff1000Keys, gossipsim.Full20000Keys)
		s.Run(time.Hour) // settle and adapt
		start := s.TotalBytes
		s.Run(s.Now() + time.Hour)                      // measure an idle hour
		return float64(s.TotalBytes-start) / 3600.0 / n // B/s per peer
	}
	var adaptive, fixed float64
	for i := 0; i < b.N; i++ {
		adaptive = run(60 * time.Second)              // normal adaptive slow-down
		fixed = run(30*time.Second + time.Nanosecond) // effectively no slow-down room
	}
	b.ReportMetric(adaptive, "adaptive-B/s-peer")
	b.ReportMetric(fixed, "fixed-B/s-peer")
}

// --- Table 3 and Figure 6: search quality --------------------------------

// BenchmarkTable3Generate measures synthetic collection generation at the
// default experiment scale.
func BenchmarkTable3Generate(b *testing.B) {
	spec := collection.ScaledSpec("AP89", 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		collection.Generate(spec, int64(i+1))
	}
}

// fig6Community caches the evaluation community across benchmarks.
var fig6Com *ir.Community

func getFig6Community() *ir.Community {
	if fig6Com == nil {
		col := collection.Generate(collection.ScaledSpec("AP89", 8), 1)
		fig6Com = ir.Distribute(col, 400, ir.Weibull, 8)
	}
	return fig6Com
}

// BenchmarkFig6aRecallPrecision regenerates Figure 6a's comparison at
// k=20: recall/precision for TFxIDF vs TFxIPF.
func BenchmarkFig6aRecallPrecision(b *testing.B) {
	com := getFig6Community()
	var pts []ir.RPPoint
	for i := 0; i < b.N; i++ {
		pts = ir.Evaluate(com, []int{20})
	}
	b.ReportMetric(pts[0].RecallIDF, "recall-idf")
	b.ReportMetric(pts[0].RecallIPF, "recall-ipf")
	b.ReportMetric(pts[0].PrecisionIDF, "prec-idf")
	b.ReportMetric(pts[0].PrecisionIPF, "prec-ipf")
}

// BenchmarkFig6bRecallVsSize regenerates Figure 6b: recall at k=20 as the
// community grows.
func BenchmarkFig6bRecallVsSize(b *testing.B) {
	col := collection.Generate(collection.ScaledSpec("AP89", 16), 1)
	var pts []ir.SizePoint
	for i := 0; i < b.N; i++ {
		pts = ir.RecallVsSize(col, []int{100, 400, 1000}, 20, ir.Weibull, 8, nil)
	}
	b.ReportMetric(pts[0].RecallIPF, "recall-100peers")
	b.ReportMetric(pts[len(pts)-1].RecallIPF, "recall-1000peers")
}

// BenchmarkFig6cPeersContacted regenerates Figure 6c at k=100: peers
// contacted by the adaptive rule vs the Best oracle.
func BenchmarkFig6cPeersContacted(b *testing.B) {
	com := getFig6Community()
	var pts []ir.RPPoint
	for i := 0; i < b.N; i++ {
		pts = ir.Evaluate(com, []int{100})
	}
	b.ReportMetric(pts[0].PeersIPF, "peers-ipf")
	b.ReportMetric(pts[0].PeersBest, "peers-best")
	b.ReportMetric(pts[0].PeersIDF, "peers-idf")
}

// BenchmarkAblationStopRule compares the adaptive stopping heuristic
// (equation 4) against the naive contact-until-k rule the paper rejects
// ("this obvious approach leads to terrible retrieval performance"): the
// naive rule stops as soon as k documents are in hand, contacting fewer
// peers but sacrificing recall.
func BenchmarkAblationStopRule(b *testing.B) {
	com := getFig6Community()
	const k = 40
	run := func(naive bool) (peers, recall float64) {
		for qi := range com.Col.Queries {
			q := &com.Col.Queries[qi]
			docs, st := search.Ranked(com, com, q.Terms,
				search.Options{K: k, NoAdaptiveStop: naive})
			retrieved := make([]int, 0, len(docs))
			for _, d := range docs {
				if idx, ok := ir.ParseDocKey(d.Key); ok {
					retrieved = append(retrieved, idx)
				}
			}
			r, _ := ir.RecallPrecision(retrieved, q.Relevant)
			peers += float64(st.PeersContacted)
			recall += r
		}
		nq := float64(len(com.Col.Queries))
		return peers / nq, recall / nq
	}
	var ap, ar, np, nr float64
	for i := 0; i < b.N; i++ {
		ap, ar = run(false)
		np, nr = run(true)
	}
	b.ReportMetric(ap, "adaptive-peers")
	b.ReportMetric(ar, "adaptive-recall")
	b.ReportMetric(np, "naive-peers")
	b.ReportMetric(nr, "naive-recall")
}

// BenchmarkAblationUniformDistribution re-runs the Figure 6 community
// with documents spread uniformly instead of Weibull. The companion
// report's finding: PlanetP "does equally well although it has to contact
// more peers as documents are more spread out".
func BenchmarkAblationUniformDistribution(b *testing.B) {
	col := collection.Generate(collection.ScaledSpec("AP89", 16), 1)
	var wb, un []ir.RPPoint
	for i := 0; i < b.N; i++ {
		wb = ir.Evaluate(ir.Distribute(col, 200, ir.Weibull, 8), []int{20})
		un = ir.Evaluate(ir.Distribute(col, 200, ir.Uniform, 8), []int{20})
	}
	b.ReportMetric(wb[0].RecallIPF, "weibull-recall")
	b.ReportMetric(un[0].RecallIPF, "uniform-recall")
	b.ReportMetric(wb[0].PeersIPF, "weibull-peers")
	b.ReportMetric(un[0].PeersIPF, "uniform-peers")
}

// BenchmarkAblationChunkedPulls measures the paper's proposed modem
// accommodation: capping anti-entropy pulls so a slow joiner acquires the
// directory in pieces "over a much longer period of time". The expected
// trade is visible in the metrics: total convergence takes longer with
// the cap, but no single transfer monopolizes a slow link for minutes
// (the joiner stays responsive and the community reaches it throughout).
func BenchmarkAblationChunkedPulls(b *testing.B) {
	capped := gossipsim.MIX
	capped.Name = "MIX-chunked"
	capped.PullBatch = 50
	var plain, chunked gossipsim.JoinResult
	for i := 0; i < b.N; i++ {
		plain = gossipsim.Join(gossipsim.MIX, 300, 30, int64(i+1))
		chunked = gossipsim.Join(capped, 300, 30, int64(i+1))
	}
	b.ReportMetric(plain.Time.Seconds(), "plain-join-s")
	b.ReportMetric(chunked.Time.Seconds(), "chunked-join-s")
	b.ReportMetric(float64(plain.Bytes)/1e6, "plain-MB")
	b.ReportMetric(float64(chunked.Bytes)/1e6, "chunked-MB")
}

// --- supporting: text pipeline throughput -------------------------------

// BenchmarkTextPipeline measures the indexing pipeline (tokenize + stop
// words + Porter stem), the substrate cost under every Publish.
func BenchmarkTextPipeline(b *testing.B) {
	docText := "PlanetP uses gossiping to replicate directories containing " +
		"Bloom filter summaries of peers inverted indexes enabling ranked " +
		"content searches across dynamic communities of thousands of peers"
	b.SetBytes(int64(len(docText)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		text.Terms(docText)
	}
}
