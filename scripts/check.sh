#!/bin/sh
# check.sh — the repo's pre-merge gate: vet, build, and race-enabled
# tests for every package. Run from anywhere inside the repo.
#
#   scripts/check.sh        # full gate
#   scripts/check.sh bench  # Table 1 + query fast-path benchmarks to
#                           # BENCH_query.json, ingest throughput
#                           # benchmarks to BENCH_ingest.json, serving-tier
#                           # load test (live 2-node cluster + loadgen) to
#                           # BENCH_serve.json
set -eu

cd "$(dirname "$0")/.."

# serve_cluster_run DIR NODES RATE DURATION EXTRA...: build the node and
# load-generator binaries, boot NODES gossiping API nodes under DIR, and
# drive planetp-loadgen at RATE req/s for DURATION (EXTRA flags appended).
# Nodes are torn down (SIGTERM, i.e. graceful drain) on exit.
serve_cluster_run() {
	dir="$1" nodes="$2" rate="$3" dur="$4"
	shift 4
	rm -rf "$dir" && mkdir -p "$dir"
	go build -o "$dir/planetp-node" ./cmd/planetp-node
	go build -o "$dir/planetp-loadgen" ./cmd/planetp-loadgen
	targets="" join=""
	i=0
	while [ "$i" -lt "$nodes" ]; do
		# Fixed ports below the ephemeral range (net.ipv4.ip_local_port_range
		# starts at 32768) so the bind can't collide with a transient
		# outbound socket.
		gport=$((17200 + i)) hport=$((17300 + i))
		# shellcheck disable=SC2086
		"$dir/planetp-node" -id "$i" -capacity 16 \
			-gossip "127.0.0.1:$gport" -listen "127.0.0.1:$hport" \
			-interval 250ms -headless $join -data "$dir/d$i" \
			>"$dir/n$i.log" 2>&1 &
		echo $! >>"$dir/pids"
		if [ -z "$join" ]; then join="-join 127.0.0.1:$gport"; fi
		targets="${targets:+$targets,}127.0.0.1:$hport"
		i=$((i + 1))
	done
	trap 'kill $(cat "'"$dir"'/pids") 2>/dev/null || true' EXIT
	"$dir/planetp-loadgen" -targets "$targets" -wait 10s \
		-rate "$rate" -duration "$dur" "$@"
	kill $(cat "$dir/pids") 2>/dev/null || true
	wait 2>/dev/null || true
	trap - EXIT
}

if [ "${1:-}" = "bench" ]; then
	BENCHTIME="${BENCHTIME:-0.5s}"
	echo "== query benchmarks (benchtime ${BENCHTIME}) -> BENCH_query.json"
	go test -run='^$' -bench='Table1|RankPeers|IPF|RankedAllocs|RankedGroup' \
		-benchtime="$BENCHTIME" -benchmem -json . | tee BENCH_query.json |
		grep -o '"Output":"Benchmark[^"]*' | sed 's/"Output":"//;s/\\t/\t/g;s/\\n$//' || true
	echo "== ingest benchmarks (benchtime ${BENCHTIME}) -> BENCH_ingest.json"
	go test -run='^$' -bench='Ingest' \
		-benchtime="$BENCHTIME" -benchmem -json . | tee BENCH_ingest.json |
		grep -o '"Output":"Benchmark[^"]*' | sed 's/"Output":"//;s/\\t/\t/g;s/\\n$//' || true
	echo "== serving-tier load test (live 2-node cluster) -> BENCH_serve.json"
	serve_cluster_run /tmp/planetp-serve-bench 2 \
		"${SERVE_RATE:-300}" "${SERVE_DURATION:-10s}" \
		-publish-frac 0.05 -out "$(pwd)/BENCH_serve.json"
	echo "== bench OK"
	exit 0
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# Crash-recovery smoke: enumerate every disk crash point in the durable
# store's append/fsync/rename pipeline plus the full peer crash/restart
# cycle (already part of the suite above; rerun by name so a regression
# here is called out explicitly).
echo "== crash-recovery smoke"
go test -race -run 'CrashPoint|Durable|RestartUnderFaults' \
	./internal/store/ ./internal/core/ ./internal/gossipsim/

# Serving-tier smoke: boot a real 2-node cluster and drive it for ~2s —
# proves the node binary, the HTTP API, and the load generator still work
# end to end (loadgen exits non-zero if no request succeeds).
echo "== serving-tier smoke (2 nodes, 2s load)"
serve_cluster_run /tmp/planetp-serve-smoke 2 100 2s -publish-frac 0.05 \
	-preload 64 >/dev/null
echo "   serve smoke OK"

# Bench smoke: every root-package benchmark must still compile and
# survive one iteration (full timings come from `scripts/check.sh bench`).
echo "== bench smoke (one iteration per benchmark)"
go test -run='^$' -bench=. -benchtime=1x . >/dev/null

# Fuzz smoke: run every fuzz target briefly. Go allows only one -fuzz
# pattern per invocation, so iterate target by target; -run='^$' skips
# the unit tests already covered above.
FUZZTIME="${FUZZTIME:-5s}"
echo "== fuzz smoke (${FUZZTIME} per target)"
go test -run='^$' -fuzz=FuzzDecodeGaps -fuzztime="$FUZZTIME" ./internal/golomb/
go test -run='^$' -fuzz=FuzzGapsRoundTrip -fuzztime="$FUZZTIME" ./internal/golomb/
go test -run='^$' -fuzz=FuzzDecompress -fuzztime="$FUZZTIME" ./internal/bloom/
go test -run='^$' -fuzz=FuzzDecodeDiff -fuzztime="$FUZZTIME" ./internal/bloom/
go test -run='^$' -fuzz=FuzzCompressRoundTrip -fuzztime="$FUZZTIME" ./internal/bloom/
go test -run='^$' -fuzz=FuzzEnvelopeDecode -fuzztime="$FUZZTIME" ./internal/transport/
go test -run='^$' -fuzz=FuzzWALRecord -fuzztime="$FUZZTIME" ./internal/store/

echo "== OK"
