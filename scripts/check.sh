#!/bin/sh
# check.sh — the repo's pre-merge gate: vet, build, and race-enabled
# tests for every package. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# Fuzz smoke: run every fuzz target briefly. Go allows only one -fuzz
# pattern per invocation, so iterate target by target; -run='^$' skips
# the unit tests already covered above.
FUZZTIME="${FUZZTIME:-5s}"
echo "== fuzz smoke (${FUZZTIME} per target)"
go test -run='^$' -fuzz=FuzzDecodeGaps -fuzztime="$FUZZTIME" ./internal/golomb/
go test -run='^$' -fuzz=FuzzGapsRoundTrip -fuzztime="$FUZZTIME" ./internal/golomb/
go test -run='^$' -fuzz=FuzzDecompress -fuzztime="$FUZZTIME" ./internal/bloom/
go test -run='^$' -fuzz=FuzzDecodeDiff -fuzztime="$FUZZTIME" ./internal/bloom/
go test -run='^$' -fuzz=FuzzCompressRoundTrip -fuzztime="$FUZZTIME" ./internal/bloom/
go test -run='^$' -fuzz=FuzzEnvelopeDecode -fuzztime="$FUZZTIME" ./internal/transport/

echo "== OK"
