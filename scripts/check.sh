#!/bin/sh
# check.sh — the repo's pre-merge gate: vet, build, and race-enabled
# tests for every package. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== OK"
