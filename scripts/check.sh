#!/bin/sh
# check.sh — the repo's pre-merge gate: vet, build, and race-enabled
# tests for every package. Run from anywhere inside the repo.
#
#   scripts/check.sh        # full gate
#   scripts/check.sh bench  # Table 1 + query fast-path benchmarks to
#                           # BENCH_query.json, ingest throughput
#                           # benchmarks to BENCH_ingest.json
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "bench" ]; then
	BENCHTIME="${BENCHTIME:-0.5s}"
	echo "== query benchmarks (benchtime ${BENCHTIME}) -> BENCH_query.json"
	go test -run='^$' -bench='Table1|RankPeers|IPF|RankedAllocs|RankedGroup' \
		-benchtime="$BENCHTIME" -benchmem -json . | tee BENCH_query.json |
		grep -o '"Output":"Benchmark[^"]*' | sed 's/"Output":"//;s/\\t/\t/g;s/\\n$//' || true
	echo "== ingest benchmarks (benchtime ${BENCHTIME}) -> BENCH_ingest.json"
	go test -run='^$' -bench='Ingest' \
		-benchtime="$BENCHTIME" -benchmem -json . | tee BENCH_ingest.json |
		grep -o '"Output":"Benchmark[^"]*' | sed 's/"Output":"//;s/\\t/\t/g;s/\\n$//' || true
	echo "== bench OK"
	exit 0
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# Crash-recovery smoke: enumerate every disk crash point in the durable
# store's append/fsync/rename pipeline plus the full peer crash/restart
# cycle (already part of the suite above; rerun by name so a regression
# here is called out explicitly).
echo "== crash-recovery smoke"
go test -race -run 'CrashPoint|Durable|RestartUnderFaults' \
	./internal/store/ ./internal/core/ ./internal/gossipsim/

# Bench smoke: every root-package benchmark must still compile and
# survive one iteration (full timings come from `scripts/check.sh bench`).
echo "== bench smoke (one iteration per benchmark)"
go test -run='^$' -bench=. -benchtime=1x . >/dev/null

# Fuzz smoke: run every fuzz target briefly. Go allows only one -fuzz
# pattern per invocation, so iterate target by target; -run='^$' skips
# the unit tests already covered above.
FUZZTIME="${FUZZTIME:-5s}"
echo "== fuzz smoke (${FUZZTIME} per target)"
go test -run='^$' -fuzz=FuzzDecodeGaps -fuzztime="$FUZZTIME" ./internal/golomb/
go test -run='^$' -fuzz=FuzzGapsRoundTrip -fuzztime="$FUZZTIME" ./internal/golomb/
go test -run='^$' -fuzz=FuzzDecompress -fuzztime="$FUZZTIME" ./internal/bloom/
go test -run='^$' -fuzz=FuzzDecodeDiff -fuzztime="$FUZZTIME" ./internal/bloom/
go test -run='^$' -fuzz=FuzzCompressRoundTrip -fuzztime="$FUZZTIME" ./internal/bloom/
go test -run='^$' -fuzz=FuzzEnvelopeDecode -fuzztime="$FUZZTIME" ./internal/transport/
go test -run='^$' -fuzz=FuzzWALRecord -fuzztime="$FUZZTIME" ./internal/store/

echo "== OK"
