#!/bin/sh
# check.sh — the repo's pre-merge gate: vet, build, and race-enabled
# tests for every package. Run from anywhere inside the repo.
#
#   scripts/check.sh        # full gate
#   scripts/check.sh bench  # Table 1 + query fast-path benchmarks to
#                           # BENCH_query.json, ingest throughput
#                           # benchmarks to BENCH_ingest.json, transport
#                           # wire-model micro-bench (pooled vs
#                           # dial-per-RPC) to BENCH_transport.json,
#                           # serving-tier load test (live 2-node cluster
#                           # + loadgen) to BENCH_serve.json, churn-storm
#                           # simulation to BENCH_churn.json, replication
#                           # availability simulation to
#                           # BENCH_replication.json, directory memory
#                           # scaling (10k + 100k peers) to
#                           # BENCH_directory.json
set -eu

cd "$(dirname "$0")/.."

# serve_cluster_run DIR NODES RATE DURATION EXTRA...: build the node and
# load-generator binaries, boot NODES gossiping API nodes under DIR, and
# drive planetp-loadgen at RATE req/s for DURATION (EXTRA flags appended).
# Nodes are torn down (SIGTERM, i.e. graceful drain) on exit.
serve_cluster_run() {
	dir="$1" nodes="$2" rate="$3" dur="$4"
	shift 4
	rm -rf "$dir" && mkdir -p "$dir"
	go build -o "$dir/planetp-node" ./cmd/planetp-node
	go build -o "$dir/planetp-loadgen" ./cmd/planetp-loadgen
	targets="" join=""
	i=0
	while [ "$i" -lt "$nodes" ]; do
		# Fixed ports below the ephemeral range (net.ipv4.ip_local_port_range
		# starts at 32768) so the bind can't collide with a transient
		# outbound socket.
		gport=$((17200 + i)) hport=$((17300 + i))
		# shellcheck disable=SC2086
		"$dir/planetp-node" -id "$i" -capacity 16 \
			-gossip "127.0.0.1:$gport" -listen "127.0.0.1:$hport" \
			-interval 250ms -headless $join -data "$dir/d$i" \
			>"$dir/n$i.log" 2>&1 &
		echo $! >>"$dir/pids"
		if [ -z "$join" ]; then join="-seeds 127.0.0.1:$gport"; fi
		targets="${targets:+$targets,}127.0.0.1:$hport"
		i=$((i + 1))
	done
	trap 'kill $(cat "'"$dir"'/pids") 2>/dev/null || true' EXIT
	"$dir/planetp-loadgen" -targets "$targets" -wait 10s \
		-rate "$rate" -duration "$dur" "$@"
	kill $(cat "$dir/pids") 2>/dev/null || true
	wait 2>/dev/null || true
	trap - EXIT
}

# assembly_smoke DIR NODES: boot NODES real nodes where only node 0 has a
# listening address and every other node gets nothing but that one seed
# address (-seeds + -min-peers). Polls every node's /v1/peers until the
# whole cluster self-assembles: every node reports known==online==NODES
# and all nodes hold the identical id/ver/online view (i.e. zero stale
# incarnation records anywhere).
assembly_smoke() {
	dir="$1" nodes="$2"
	rm -rf "$dir" && mkdir -p "$dir"
	go build -o "$dir/planetp-node" ./cmd/planetp-node
	i=0
	while [ "$i" -lt "$nodes" ]; do
		gport=$((17400 + i)) hport=$((17500 + i))
		seeds=""
		if [ "$i" -gt 0 ]; then seeds="-seeds 127.0.0.1:17400 -min-peers $nodes"; fi
		# shellcheck disable=SC2086
		"$dir/planetp-node" -id "$i" -capacity 16 \
			-gossip "127.0.0.1:$gport" -listen "127.0.0.1:$hport" \
			-interval 250ms -headless $seeds \
			>"$dir/n$i.log" 2>&1 &
		echo $! >>"$dir/pids"
		i=$((i + 1))
	done
	trap 'kill $(cat "'"$dir"'/pids") 2>/dev/null || true' EXIT
	deadline=$(($(date +%s) + 30))
	assembled=""
	while [ "$(date +%s)" -lt "$deadline" ] && [ -z "$assembled" ]; do
		sleep 0.5
		view="" good=1 i=0
		while [ "$i" -lt "$nodes" ]; do
			body="$(curl -sf "http://127.0.0.1:$((17500 + i))/v1/peers")" || { good=0; break; }
			case "$body" in
			*"\"known\":$nodes,\"online\":$nodes"*) ;;
			*) good=0; break ;;
			esac
			# Strip the per-node fields; what remains (the peers array with
			# id/online/ver for every member) must be identical on all nodes.
			stripped="$(printf '%s' "$body" | sed 's/"self":[0-9]*//;s/"generation":[0-9]*//')"
			if [ -z "$view" ]; then view="$stripped"; fi
			if [ "$stripped" != "$view" ]; then good=0; break; fi
			i=$((i + 1))
		done
		if [ "$good" = 1 ]; then assembled=1; fi
	done
	# Connection-reuse guard: by convergence the gossip mesh has run many
	# rounds, and with the pooled transport the overwhelming share of
	# those sends must have reused a pooled conn rather than dialed.
	# Require reuse > misses (ratio above 0.5) on node 0 after two more
	# seconds of steady-state gossip.
	reuse="" miss="" reuse_ok=""
	if [ -n "$assembled" ]; then
		sleep 2
		m="$(curl -sf "http://127.0.0.1:17500/debug/metrics" || true)"
		reuse="$(printf '%s\n' "$m" | sed -n 's/.*"transport_pool_reuse_total": *\([0-9][0-9]*\).*/\1/p' | head -n 1)"
		miss="$(printf '%s\n' "$m" | sed -n 's/.*"transport_pool_misses_total": *\([0-9][0-9]*\).*/\1/p' | head -n 1)"
		if [ -n "$reuse" ] && [ -n "$miss" ] && [ "$reuse" -gt "$miss" ]; then
			reuse_ok=1
		fi
	fi
	kill $(cat "$dir/pids") 2>/dev/null || true
	wait 2>/dev/null || true
	trap - EXIT
	if [ -z "$assembled" ]; then
		echo "assembly smoke FAILED: cluster did not converge in 30s" >&2
		tail -n 5 "$dir"/n*.log >&2 || true
		exit 1
	fi
	if [ -z "$reuse_ok" ]; then
		echo "assembly smoke FAILED: pool reuse ratio below floor (reuse=${reuse:-?} misses=${miss:-?})" >&2
		exit 1
	fi
	echo "   pool reuse guard: reuse=$reuse misses=$miss"
}

# replication_smoke DIR: boot 4 nodes with -replicas 3, publish two
# documents at node 1, heat them with fetches until the hoard loop pushes
# replicas onto other nodes, kill node 1 outright (SIGKILL — no graceful
# handoff), and verify GET /v1/doc/{id} on node 0 still answers 200 from
# a replica.
replication_smoke() {
	dir="$1"
	rm -rf "$dir" && mkdir -p "$dir"
	go build -o "$dir/planetp-node" ./cmd/planetp-node
	join="" origin_pid="" i=0
	while [ "$i" -lt 4 ]; do
		gport=$((17600 + i)) hport=$((17700 + i))
		# shellcheck disable=SC2086
		"$dir/planetp-node" -id "$i" -capacity 16 \
			-gossip "127.0.0.1:$gport" -listen "127.0.0.1:$hport" \
			-interval 250ms -replicas 3 -headless $join \
			>"$dir/n$i.log" 2>&1 &
		echo $! >>"$dir/pids"
		if [ "$i" -eq 1 ]; then origin_pid=$!; fi
		if [ -z "$join" ]; then join="-seeds 127.0.0.1:$gport"; fi
		i=$((i + 1))
	done
	trap 'kill $(cat "'"$dir"'/pids") 2>/dev/null || true' EXIT
	rsfail() {
		echo "replication smoke FAILED: $1" >&2
		tail -n 5 "$dir"/n*.log >&2 || true
		exit 1
	}
	deadline=$(($(date +%s) + 30))
	until curl -sf "http://127.0.0.1:17700/v1/peers" | grep -q '"online":4'; do
		[ "$(date +%s)" -lt "$deadline" ] || rsfail "cluster did not form"
		sleep 0.5
	done
	ids=""
	for word in alpha bravo; do
		id="$(curl -sf -X POST "http://127.0.0.1:17701/v1/publish" \
			-d '{"xml":"<doc><title>replication smoke '"$word"'</title><body>hoarded content '"$word"'</body></doc>"}' |
			sed 's/.*"id":"\([^"]*\)".*/\1/')"
		[ -n "$id" ] || rsfail "publish of $word returned no id"
		ids="$ids $id"
	done
	# Heat each document through node 0's resolver: every successful fetch
	# is a popularity hit at the serving holder, and once a document is hot
	# the next hoard tick replicates it.
	for id in $ids; do
		hits=0
		deadline=$(($(date +%s) + 30))
		while [ "$hits" -lt 24 ]; do
			if curl -sf "http://127.0.0.1:17700/v1/doc/$id" >/dev/null; then
				hits=$((hits + 1))
			else
				sleep 0.25
			fi
			[ "$(date +%s)" -lt "$deadline" ] || rsfail "doc $id never became fetchable"
		done
	done
	# Wait until some node other than the origin answers a pinned fetch —
	# i.e. actually holds a replica.
	for id in $ids; do
		deadline=$(($(date +%s) + 30))
		replicated=""
		while [ -z "$replicated" ]; do
			for p in 0 2 3; do
				if curl -sf "http://127.0.0.1:17700/v1/doc/$id?peer=$p" >/dev/null; then
					replicated=1
					break
				fi
			done
			if [ -z "$replicated" ]; then
				[ "$(date +%s)" -lt "$deadline" ] || rsfail "doc $id never replicated off its origin"
				sleep 0.5
			fi
		done
	done
	kill -9 "$origin_pid" 2>/dev/null || true
	# The origin is gone without warning; the hot documents must still
	# resolve through a surviving replica.
	for id in $ids; do
		deadline=$(($(date +%s) + 15))
		served=""
		while [ -z "$served" ]; do
			if curl -sf "http://127.0.0.1:17700/v1/doc/$id" >/dev/null; then
				served=1
				break
			fi
			[ "$(date +%s)" -lt "$deadline" ] || rsfail "doc $id lost with its origin"
			sleep 0.5
		done
	done
	kill $(cat "$dir/pids") 2>/dev/null || true
	wait 2>/dev/null || true
	trap - EXIT
}

if [ "${1:-}" = "bench" ]; then
	BENCHTIME="${BENCHTIME:-0.5s}"
	echo "== query benchmarks (benchtime ${BENCHTIME}) -> BENCH_query.json"
	go test -run='^$' -bench='Table1|RankPeers|IPF|RankedAllocs|RankedGroup' \
		-benchtime="$BENCHTIME" -benchmem -json . | tee BENCH_query.json |
		grep -o '"Output":"Benchmark[^"]*' | sed 's/"Output":"//;s/\\t/\t/g;s/\\n$//' || true
	echo "== ingest benchmarks (benchtime ${BENCHTIME}) -> BENCH_ingest.json"
	go test -run='^$' -bench='Ingest' \
		-benchtime="$BENCHTIME" -benchmem -json . | tee BENCH_ingest.json |
		grep -o '"Output":"Benchmark[^"]*' | sed 's/"Output":"//;s/\\t/\t/g;s/\\n$//' || true
	echo "== transport wire-model benchmarks (benchtime ${BENCHTIME}) -> BENCH_transport.json"
	go test -run='^$' -bench='Transport' \
		-benchtime="$BENCHTIME" -benchmem -json . | tee BENCH_transport.json |
		grep -o '"Output":"Benchmark[^"]*' | sed 's/"Output":"//;s/\\t/\t/g;s/\\n$//' || true
	echo "== serving-tier load test (live 2-node cluster) -> BENCH_serve.json"
	serve_cluster_run /tmp/planetp-serve-bench 2 \
		"${SERVE_RATE:-300}" "${SERVE_DURATION:-10s}" \
		-publish-frac 0.05 -out "$(pwd)/BENCH_serve.json"
	echo "== churn-storm simulation -> BENCH_churn.json"
	go run ./cmd/gossipsim -exp churn-storm -n "${STORM_N:-32}" -seed 7 \
		-json "$(pwd)/BENCH_churn.json"
	echo "== replication availability simulation -> BENCH_replication.json"
	go run ./cmd/gossipsim -exp replication -n "${STORM_N:-32}" -seed 7 \
		-json "$(pwd)/BENCH_replication.json"
	echo "== directory memory scaling -> BENCH_directory.json"
	go run ./cmd/gossipsim -exp directory-scale \
		-sizes "${SCALE_SIZES:-10000,100000}" -seed 1 \
		-converge-max "${SCALE_CONVERGE_MAX:-10000}" \
		-max-bytes-per-peer "$(cat scripts/directory_budget)" \
		-json "$(pwd)/BENCH_directory.json"
	echo "== bench OK"
	exit 0
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# Crash-recovery smoke: enumerate every disk crash point in the durable
# store's append/fsync/rename pipeline plus the full peer crash/restart
# cycle (already part of the suite above; rerun by name so a regression
# here is called out explicitly).
echo "== crash-recovery smoke"
go test -race -run 'CrashPoint|Durable|RestartUnderFaults|ReplicaStoreCrash' \
	./internal/store/ ./internal/core/ ./internal/gossipsim/

# Churn-storm acceptance suite: flash crowd, mass departure under loss,
# partition-heal rejoin, T_Dead regressions, discovery and peer-exchange
# units (already part of the suite above; rerun by name so a regression
# here is called out explicitly).
echo "== churn-storm acceptance suite"
go test -race -run 'Storm|TDead|Tombstone|Discover|PeerExchange|Sanitize|RotateSeeds|Replication|LiveReplication|HoardPull' \
	./internal/gossipsim/ ./internal/gossip/ ./internal/transport/ \
	./internal/core/ ./internal/directory/

# Serving-tier smoke: boot a real 2-node cluster and drive it for ~2s —
# proves the node binary, the HTTP API, and the load generator still work
# end to end (loadgen exits non-zero if no request succeeds).
echo "== serving-tier smoke (2 nodes, 2s load)"
serve_cluster_run /tmp/planetp-serve-smoke 2 100 2s -publish-frac 0.05 \
	-preload 64 >/dev/null
echo "   serve smoke OK"

# Self-assembly smoke: a 4-node cluster boots from a single seed address
# (peer-exchange discovery fills in the rest) and converges to a uniform
# view with zero stale incarnation records.
echo "== self-assembly smoke (4 nodes, one seed address)"
assembly_smoke /tmp/planetp-assembly-smoke 4
echo "   assembly smoke OK"

# Replication smoke: a 4-node cluster with -replicas 3 hoards two hot
# documents, their origin dies without warning (SIGKILL), and both still
# answer 200 through surviving replicas.
echo "== replication smoke (4 nodes -replicas 3, kill the origin)"
replication_smoke /tmp/planetp-replication-smoke
echo "   replication smoke OK"

# Directory memory budget guard: one 10k-peer compressed-resident replica
# must stay under the checked-in bytes/peer budget (scripts/directory_budget).
# Memory-only (-converge-max 0), so it runs in seconds; a regression that
# reverts to decompressed-resident filters (~56 KB/peer) fails loudly.
echo "== directory memory budget guard (10k peers, $(cat scripts/directory_budget) B/peer)"
go run ./cmd/gossipsim -exp directory-scale -sizes 10000 -seed 1 \
	-converge-max 0 -max-bytes-per-peer "$(cat scripts/directory_budget)" \
	>/dev/null
echo "   directory budget OK"

# Bench smoke: every root-package benchmark must still compile and
# survive one iteration (full timings come from `scripts/check.sh bench`).
echo "== bench smoke (one iteration per benchmark)"
go test -run='^$' -bench=. -benchtime=1x . >/dev/null

# Fuzz smoke: run every fuzz target briefly. Go allows only one -fuzz
# pattern per invocation, so iterate target by target; -run='^$' skips
# the unit tests already covered above.
FUZZTIME="${FUZZTIME:-5s}"
echo "== fuzz smoke (${FUZZTIME} per target)"
go test -run='^$' -fuzz=FuzzDecodeGaps -fuzztime="$FUZZTIME" ./internal/golomb/
go test -run='^$' -fuzz=FuzzGapsRoundTrip -fuzztime="$FUZZTIME" ./internal/golomb/
go test -run='^$' -fuzz=FuzzDecompress -fuzztime="$FUZZTIME" ./internal/bloom/
go test -run='^$' -fuzz=FuzzDecodeDiff -fuzztime="$FUZZTIME" ./internal/bloom/
go test -run='^$' -fuzz=FuzzCompressRoundTrip -fuzztime="$FUZZTIME" ./internal/bloom/
go test -run='^$' -fuzz=FuzzEnvelopeDecode -fuzztime="$FUZZTIME" ./internal/transport/
go test -run='^$' -fuzz=FuzzPeerExchangeDecode -fuzztime="$FUZZTIME" ./internal/transport/
go test -run='^$' -fuzz=FuzzWALRecord -fuzztime="$FUZZTIME" ./internal/store/

echo "== OK"
