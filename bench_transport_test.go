// Transport wire-model benchmarks: pooled persistent streams versus
// dial-per-RPC, over real loopback TCP. The pooled numbers are what
// sustained gossip and query fan-out pay per exchange; the dial-per-RPC
// numbers replicate the pre-pool wire model (a fresh connection and fresh
// gob type descriptors for every RPC — force it with PoolConns = 0).
// check.sh bench mode records these in BENCH_transport.json.
package planetp_test

import (
	"sync/atomic"
	"testing"
	"time"

	"planetp/internal/broker"
	"planetp/internal/directory"
	"planetp/internal/gossip"
	"planetp/internal/replica"
	"planetp/internal/search"
	"planetp/internal/transport"
)

// tbenchHandler answers the minimal canned responses the bench RPCs need.
type tbenchHandler struct{ id directory.PeerID }

func (tbenchHandler) HandleGossip(directory.PeerID, *gossip.Message) {}
func (tbenchHandler) HandleQuery(terms []string, _ bool) []search.DocResult {
	return []search.DocResult{{Key: "doc-1", TermFreqs: map[string]int{terms[0]: 2}, DocLen: 64}}
}
func (tbenchHandler) HandleBrokerPut(string, broker.Snippet, time.Duration)     {}
func (tbenchHandler) HandleBrokerGet(string) []broker.Snippet                   { return nil }
func (tbenchHandler) HandleBrokerWatch([]string, directory.PeerID)              {}
func (tbenchHandler) HandleNotify(broker.Snippet)                               {}
func (tbenchHandler) HandleGetDoc(string) (string, bool)                        { return "", false }
func (tbenchHandler) HandleProxySearch([]string, int) []search.ScoredDoc        { return nil }
func (tbenchHandler) HandlePeerExchange(int) []directory.Record                 { return nil }
func (tbenchHandler) HandleReplicaPut(string, string, directory.PeerID, uint32) {}
func (tbenchHandler) HandleReplicaPurge(string, directory.PeerID, uint32)       {}
func (tbenchHandler) HandleHotDocs(int) []replica.HotDoc                        { return nil }
func (h tbenchHandler) SelfRecord() directory.Record {
	return directory.Record{ID: h.id, Ver: directory.Version{Epoch: 1}}
}

// benchTransports builds a client/server pair on loopback TCP. pooled
// false forces the dial-per-RPC wire model.
func benchTransports(b *testing.B, pooled bool) (*transport.Transport, *transport.Transport) {
	b.Helper()
	var ta, tb *transport.Transport
	resolve := func(id directory.PeerID) (string, bool) {
		if id == 1 {
			return tb.Addr(), true
		}
		return "", false
	}
	var err error
	ta, err = transport.New(0, "", tbenchHandler{0}, resolve, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(ta.Close)
	tb, err = transport.New(1, "", tbenchHandler{1}, resolve, 2, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(tb.Close)
	ta.Retries = 0
	if !pooled {
		ta.PoolConns = 0
	}
	return ta, tb
}

// benchRPCs drives b.N exchanges and reports throughput and wire cost.
func benchRPCs(b *testing.B, ta *transport.Transport, rpc func() error) {
	// One warmup exchange, so the pooled variant measures steady-state
	// reuse rather than the first dial.
	if err := rpc(); err != nil {
		b.Fatal(err)
	}
	sent0 := atomic.LoadInt64(&ta.BytesSent)
	recv0 := atomic.LoadInt64(&ta.BytesRecv)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rpc(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rpcs/s")
	wire := atomic.LoadInt64(&ta.BytesSent) - sent0 + atomic.LoadInt64(&ta.BytesRecv) - recv0
	b.ReportMetric(float64(wire)/float64(b.N), "wire-B/rpc")
}

// smallGossip is the small-envelope case the pool targets: an
// anti-entropy request, a handful of bytes of payload.
func smallGossip() *gossip.Message {
	return &gossip.Message{Type: gossip.MsgAERequest, From: 0, Digest: 42}
}

func BenchmarkTransportOnewayPooled(b *testing.B) {
	ta, _ := benchTransports(b, true)
	benchRPCs(b, ta, func() error { return ta.Send(1, smallGossip()) })
}

func BenchmarkTransportOnewayDialPerRPC(b *testing.B) {
	ta, _ := benchTransports(b, false)
	benchRPCs(b, ta, func() error { return ta.Send(1, smallGossip()) })
}

func BenchmarkTransportQueryPooled(b *testing.B) {
	ta, _ := benchTransports(b, true)
	benchRPCs(b, ta, func() error {
		_, err := ta.Query(1, []string{"gossip"}, false)
		return err
	})
}

func BenchmarkTransportQueryDialPerRPC(b *testing.B) {
	ta, _ := benchTransports(b, false)
	benchRPCs(b, ta, func() error {
		_, err := ta.Query(1, []string{"gossip"}, false)
		return err
	})
}

// Grouped fan-out: 8 concurrent queries per iteration, the query
// engine's group-probe shape.
func BenchmarkTransportFanoutPooled(b *testing.B) {
	benchFanout(b, true)
}

func BenchmarkTransportFanoutDialPerRPC(b *testing.B) {
	benchFanout(b, false)
}

func benchFanout(b *testing.B, pooled bool) {
	ta, _ := benchTransports(b, pooled)
	const width = 8
	run := func() error {
		errs := make(chan error, width)
		for i := 0; i < width; i++ {
			go func() {
				_, err := ta.Query(1, []string{"gossip"}, false)
				errs <- err
			}()
		}
		for i := 0; i < width; i++ {
			if err := <-errs; err != nil {
				return err
			}
		}
		return nil
	}
	if err := run(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*width)/b.Elapsed().Seconds(), "rpcs/s")
}
