module planetp

go 1.22
