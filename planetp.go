// Package planetp is a peer-to-peer content search and retrieval
// infrastructure for communities sharing large sets of text documents —
// a from-scratch Go implementation of PlanetP (Cuenca-Acuna, Peery,
// Martin, Nguyen; Rutgers DCS-TR-487 / HPDC 2003).
//
// Every member replicates a global directory — the membership list plus
// one compressed Bloom filter per peer summarizing that peer's inverted
// index — maintained by randomized gossiping (rumor mongering, periodic
// anti-entropy, and the paper's partial anti-entropy). Queries run
// entirely against the local replica: Bloom filters select candidate
// peers, the TFxIPF ranking orders them, and an adaptive stopping
// heuristic bounds how many are contacted. An optional consistent-hashing
// information brokerage makes brand-new content findable before gossip
// converges.
//
// Quick start:
//
//	alice, _ := planetp.NewPeer(planetp.Config{ID: 0, Capacity: 8})
//	bob, _ := planetp.NewPeer(planetp.Config{ID: 1, Capacity: 8})
//	bob.Join(alice.Addr())
//	alice.Start()
//	bob.Start()
//	alice.Publish(`<paper>epidemic algorithms for replicated databases</paper>`)
//	// ... once gossip converges ...
//	docs, _ := bob.Search("epidemic replicated", 10)
//
// Bulk ingest goes through Peer.PublishBatch (and FS.PublishFiles for
// PFS): a batch is analyzed on all cores, committed to the write-ahead
// log as one group-committed append, and gossiped as a single filter
// update — publishing N documents costs one summarization instead of N.
//
// The internal packages contain the substrates (Bloom filters, Golomb
// coding, the text pipeline, the gossip engine, the discrete-event
// simulator used for the paper's experiments); this package re-exports
// the supported surface.
package planetp

import (
	"planetp/internal/core"
	"planetp/internal/directory"
	"planetp/internal/doc"
	"planetp/internal/gossip"
	"planetp/internal/metrics"
	"planetp/internal/pfs"
	"planetp/internal/search"
	"planetp/internal/serve"
)

// Peer is a live PlanetP community member.
type Peer = core.Peer

// Config describes a peer.
type Config = core.Config

// PeerID identifies a community member.
type PeerID = directory.PeerID

// Class is a connectivity class for bandwidth-aware gossiping.
type Class = directory.Class

// Connectivity classes.
const (
	Fast = directory.Fast
	Slow = directory.Slow
)

// GossipConfig tunes the gossiping protocol (zero values take the
// paper's defaults: 30 s base interval, 60 s max, anti-entropy every 10th
// round, 10 piggybacked rumor ids).
type GossipConfig = gossip.Config

// BootstrapConfig tunes Peer.JoinSeeds: the seed list and the rotation's
// pass count and backoff bounds (zero fields take defaults).
type BootstrapConfig = core.BootstrapConfig

// Document is a parsed published XML document.
type Document = doc.Document

// Resolver fetches linked external files during indexing.
type Resolver = doc.Resolver

// ResolverFunc adapts a function to Resolver.
type ResolverFunc = doc.ResolverFunc

// DocResult is one document returned by a search.
type DocResult = search.DocResult

// ScoredDoc is a ranked search hit.
type ScoredDoc = search.ScoredDoc

// SearchStats reports what a search cost.
type SearchStats = search.Stats

// FS is the PFS semantic file system over a peer.
type FS = pfs.FS

// DirEntry is one file in a semantic directory.
type DirEntry = pfs.Entry

// SemanticDir is a query-defined directory.
type SemanticDir = pfs.Dir

// Snapshot is a peer's durable state for restarts.
type Snapshot = core.Snapshot

// RecoverySummary reports what a durable peer (Config.DataDir) restored
// at startup; see Peer.Recovery.
type RecoverySummary = core.RecoverySummary

// MetricsRegistry collects a peer's counters, gauges, and histograms
// across every layer; Peer.Metrics() returns one (never nil). A nil
// registry is safe everywhere and disables instrumentation.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a point-in-time copy of a registry's values.
type MetricsSnapshot = metrics.Snapshot

// NewMetricsRegistry creates an empty metrics registry (for sharing one
// across peers, or for passing into Config.Metrics explicitly).
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewPeer constructs (but does not start) a peer.
func NewPeer(cfg Config) (*Peer, error) { return core.NewPeer(cfg) }

// DecodeSnapshot parses bytes produced by Peer.Snapshot.
func DecodeSnapshot(data []byte) (Snapshot, error) { return core.DecodeSnapshot(data) }

// NewFS mounts a PFS semantic file system over a peer.
func NewFS(p *Peer) (*FS, error) { return pfs.New(p) }

// Terms runs PlanetP's text pipeline (tokenize, stop words, Porter stem)
// over a raw query or document string.
func Terms(s string) []string { return core.Terms(s) }

// Server is the HTTP serving tier over a peer: the JSON /v1 search and
// publish API with bounded admission control, a generation-stamped
// result cache, and graceful drain. See internal/serve for the route
// list and the shedding/caching contracts.
type Server = serve.Server

// ServeConfig tunes the serving tier (in-flight limit, Retry-After
// hint, cache size, body/batch bounds). The zero value takes defaults.
type ServeConfig = serve.Config

// ErrNoTerms reports a published document with no indexable terms.
var ErrNoTerms = core.ErrNoTerms

// NewServer builds the HTTP serving tier over a peer. Mount
// Server.Handler on any mux, or use Server.Serve/Shutdown for the
// admission-controlled listener with graceful drain.
func NewServer(p *Peer, cfg ServeConfig) *Server { return serve.New(p, cfg) }
