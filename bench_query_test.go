// Query fast-path benchmarks: hash-once digest probing vs the seed's
// hash-per-(peer,term) construction, IPF caching, and concurrent group
// fan-out. BenchmarkRankPeersBaseline1000 / BenchmarkIPFBaseline are
// checked-in replicas of the pre-digest cost model (two fnv hasher
// allocations per probe, exactly what bloom.hashPair used to do), so the
// speedup is measurable from one `go test -bench 'RankPeers|IPF'` run.
package planetp_test

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"testing"
	"time"

	"planetp/internal/bloom"
	"planetp/internal/directory"
	"planetp/internal/search"
)

// queryBenchKeys are word-length keys (search terms are stemmed English
// words, typically 5-20 characters — hashing cost scales with length).
func queryBenchKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("gossip-replication-%04d", i)
	}
	return out
}

// queryBenchFilters builds 1000 real Bloom filters with varied term
// coverage (peer i holds 600+i%400 of the 1000 keys), cached across
// benchmarks.
var queryBenchFilters []*bloom.Filter

func getQueryBenchFilters() []*bloom.Filter {
	if queryBenchFilters == nil {
		queryBenchFilters = make([]*bloom.Filter, 1000)
		keys := queryBenchKeys(1000)
		for i := range queryBenchFilters {
			f := bloom.Default()
			f.InsertAll(keys[:600+i%400])
			queryBenchFilters[i] = f
		}
	}
	return queryBenchFilters
}

// queryBenchTerms is the 4-term query of the acceptance benchmark: two
// terms every peer holds, one that only the larger peers hold, one absent.
var queryBenchTerms = []string{
	"gossip-replication-0010",
	"gossip-replication-0599",
	"gossip-replication-0850",
	"absent-term-never-inserted",
}

// digestView probes filters through the fast path (search detects
// DigestView and hashes each term once).
type digestView struct{ filters []*bloom.Filter }

func (v *digestView) Peers() []directory.PeerID {
	out := make([]directory.PeerID, len(v.filters))
	for i := range out {
		out[i] = directory.PeerID(i)
	}
	return out
}

func (v *digestView) Contains(id directory.PeerID, term string) bool {
	return v.filters[id].Contains(term)
}

func (v *digestView) ContainsDigest(id directory.PeerID, d bloom.Digest) bool {
	return v.filters[id].ContainsDigest(d)
}

// seedHashPair is the pre-digest bloom.hashPair: two fnv.New64a hasher
// allocations and two full passes over the key, per (peer, term) probe.
func seedHashPair(key string) (uint64, uint64) {
	h1 := fnv.New64a()
	h1.Write([]byte(key))
	a := h1.Sum64()
	h2 := fnv.New64a()
	h2.Write([]byte(key))
	h2.Write([]byte{0x9e})
	return a, h2.Sum64() | 1
}

// seedContains is the pre-digest probe: hash the term from scratch, then
// test the filter (what every view.Contains call used to cost).
func seedContains(f *bloom.Filter, term string) bool {
	h1, h2 := seedHashPair(term)
	return f.ContainsDigest(bloom.Digest{H1: h1, H2: h2})
}

// baselineIPF is the seed's IPF verbatim: one full hash of every term per
// peer probed.
func baselineIPF(filters []*bloom.Filter, terms []string) map[string]float64 {
	n := float64(len(filters))
	out := make(map[string]float64, len(terms))
	for _, t := range terms {
		nt := 0
		for _, f := range filters {
			if seedContains(f, t) {
				nt++
			}
		}
		if nt == 0 {
			out[t] = 0
			continue
		}
		out[t] = math.Log(1 + n/float64(nt))
	}
	return out
}

// baselineRankPeers is the seed's RankPeers verbatim: per (peer, term) it
// pays up to two ipf map lookups (each re-hashing the term string) plus a
// full Bloom re-hash inside Contains.
func baselineRankPeers(filters []*bloom.Filter, terms []string, ipf map[string]float64) []search.PeerRank {
	out := make([]search.PeerRank, 0, len(filters))
	for i, f := range filters {
		score := 0.0
		for _, t := range terms {
			if ipf[t] > 0 && seedContains(f, t) {
				score += ipf[t]
			}
		}
		if score > 0 {
			out = append(out, search.PeerRank{Peer: directory.PeerID(i), Score: score})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Peer < out[j].Peer
	})
	return out
}

// BenchmarkIPFDigest measures equation 1 over 1000 peers x 4 terms as the
// deployed engine executes it: hash-once digests with the per-peer
// IPFCache wired in (every core.Peer carries one), at steady state — the
// persistent-query re-evaluation, proxy fan-in, and repeated-query
// workloads that make the local ranking step hot in the first place.
// BenchmarkIPFDigestUncached below isolates the digest win with the cache
// off.
func BenchmarkIPFDigest(b *testing.B) {
	view := &digestView{filters: getQueryBenchFilters()}
	cache := search.NewIPFCache()
	cache.IPFRanked(view, queryBenchTerms, nil) // warm
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cache.IPFRanked(view, queryBenchTerms, nil)
	}
}

// BenchmarkIPFDigestUncached is the digest sweep with no cache: every
// iteration re-probes all 1000 filters, but each term is hashed once per
// query instead of once per (peer, term).
func BenchmarkIPFDigestUncached(b *testing.B) {
	view := &digestView{filters: getQueryBenchFilters()}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		search.IPF(view, queryBenchTerms)
	}
}

// BenchmarkIPFBaseline is the same sweep at the seed's cost model: no
// digests, no cache.
func BenchmarkIPFBaseline(b *testing.B) {
	filters := getQueryBenchFilters()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		baselineIPF(filters, queryBenchTerms)
	}
}

// BenchmarkRankPeers1000 measures the per-query peer-ranking step
// (equations 1+3) over 1000 peers x 4 terms on the deployed fast path —
// digests plus warm IPFCache, i.e. what Ranked's rankedFor costs at steady
// state (the acceptance benchmark: >=5x over the baseline below).
func BenchmarkRankPeers1000(b *testing.B) {
	view := &digestView{filters: getQueryBenchFilters()}
	cache := search.NewIPFCache()
	cache.IPFRanked(view, queryBenchTerms, nil) // warm
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cache.IPFRanked(view, queryBenchTerms, nil)
	}
}

// BenchmarkRankPeersUncached1000 is equation 3 on digests alone (cold
// cache every query).
func BenchmarkRankPeersUncached1000(b *testing.B) {
	view := &digestView{filters: getQueryBenchFilters()}
	ipf := search.IPF(view, queryBenchTerms)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		search.RankPeers(view, queryBenchTerms, ipf)
	}
}

// BenchmarkRankPeersBaseline1000 is the full ranking step at the seed's
// cost: IPF map lookups and a fresh double FNV hash on every single
// (peer, term) probe, re-ranked from scratch per query.
func BenchmarkRankPeersBaseline1000(b *testing.B) {
	filters := getQueryBenchFilters()
	ipf := baselineIPF(filters, queryBenchTerms)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		baselineRankPeers(filters, queryBenchTerms, ipf)
	}
}

// benchFetcher serves canned documents with an optional artificial
// per-contact latency; safe for concurrent use.
type benchFetcher struct {
	docs  map[directory.PeerID][]search.DocResult
	delay time.Duration
}

func (f *benchFetcher) QueryPeer(id directory.PeerID, terms []string) ([]search.DocResult, error) {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return f.docs[id], nil
}

func (f *benchFetcher) QueryPeerAll(id directory.PeerID, terms []string) ([]search.DocResult, error) {
	return f.QueryPeer(id, terms)
}

func benchDocs(view *digestView, terms []string) map[directory.PeerID][]search.DocResult {
	docs := make(map[directory.PeerID][]search.DocResult, len(view.filters))
	for i := range view.filters {
		id := directory.PeerID(i)
		docs[id] = []search.DocResult{{
			Peer: id, Key: "doc-" + string(rune('a'+i%26)) + string(rune('0'+i%10)),
			TermFreqs: map[string]int{terms[0]: 1 + i%5, terms[1]: 1 + i%3},
			DocLen:    40 + i%60,
		}}
	}
	return docs
}

// BenchmarkRankedAllocs runs the full ranked search end to end and reports
// allocations per query (the satellite target: allocs/query drops vs the
// seed's hasher-per-probe path thanks to the preallocated seen map and
// reused group scratch).
func BenchmarkRankedAllocs(b *testing.B) {
	view := &digestView{filters: getQueryBenchFilters()}
	fetch := &benchFetcher{docs: benchDocs(view, queryBenchTerms)}
	opt := search.Options{K: 20, GroupSize: 8}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		search.Ranked(view, fetch, queryBenchTerms, opt)
	}
}

// BenchmarkRankedAllocsCached is the same search at steady state with the
// peer's IPFCache attached: the ranking allocations disappear entirely.
func BenchmarkRankedAllocsCached(b *testing.B) {
	view := &digestView{filters: getQueryBenchFilters()}
	fetch := &benchFetcher{docs: benchDocs(view, queryBenchTerms)}
	opt := search.Options{K: 20, GroupSize: 8, Cache: search.NewIPFCache()}
	search.Ranked(view, fetch, queryBenchTerms, opt)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		search.Ranked(view, fetch, queryBenchTerms, opt)
	}
}

// benchRankedFanout measures wall-clock of a ranked search whose peer
// contacts cost 200us each, at the given concurrency.
func benchRankedFanout(b *testing.B, concurrency int) {
	view := &digestView{filters: getQueryBenchFilters()}
	fetch := &benchFetcher{docs: benchDocs(view, queryBenchTerms), delay: 200 * time.Microsecond}
	opt := search.Options{K: 20, GroupSize: 8, Concurrency: concurrency}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		search.Ranked(view, fetch, queryBenchTerms, opt)
	}
}

// BenchmarkRankedGroupSequential / BenchmarkRankedGroupConcurrent compare
// one-by-one contacts against a fan-out of 8 within each contact group
// (Section 5.2's latency motivation for groups of m).
func BenchmarkRankedGroupSequential(b *testing.B) { benchRankedFanout(b, 1) }
func BenchmarkRankedGroupConcurrent(b *testing.B) { benchRankedFanout(b, 8) }
