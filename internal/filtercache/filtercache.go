// Package filtercache keeps a peer's view of remote Bloom filters
// compressed-resident under a byte budget.
//
// The directory replica stores one Golomb-compressed Bloom filter per
// remote peer. The query engine wants to probe those filters on every
// search, and decompressing each into a full bitset (the pre-cache
// behaviour) costs O(N × filter bytes) resident memory — ~50 KB per peer
// at the paper's geometry, which is what caps a node's community size.
//
// This cache holds two tiers under one budget:
//
//   - Compact tier: every recently probed peer's filter as a
//     bloom.Compact (sorted set-bit positions, ~10× smaller than the
//     bitset for paper-scale term counts), probed by binary search.
//   - Hot tier: a small LRU of fully decompressed filters for peers
//     probed at least PromoteAfter times at their current version, so
//     frequently searched peers keep the O(1) bit-probe fast path.
//
// Entries are (re)built from the Source on demand, invalidated when the
// peer's record version changes, and evicted least-recently-probed first
// when the budget is exceeded. Eviction is cheap to undo — the compressed
// payload still lives in the directory — so the budget can be small
// without correctness risk: a probe of an evicted peer is a miss, never a
// wrong answer.
package filtercache

import (
	"container/list"
	"sync"

	"planetp/internal/bloom"
	"planetp/internal/directory"
	"planetp/internal/metrics"
)

// Source supplies the authoritative compressed filter for a peer: the
// wire payload (bloom.Compress encoding) and the record version it
// belongs to. A false ok means the peer is unknown or carries no filter.
type Source interface {
	Payload(id directory.PeerID) (payload []byte, ver directory.Version, ok bool)
}

// Defaults.
const (
	// DefaultBudget bounds total resident bytes across both tiers.
	// 64 MiB holds the compact form of ~8k paper-geometry peers with
	// 1000 terms each, or ~600 fully hot filters.
	DefaultBudget = 64 << 20
	// DefaultHotFraction is the share of the budget the hot tier may use.
	DefaultHotFraction = 0.5
	// DefaultPromoteAfter is how many probes of one (peer, version) it
	// takes to earn a decompressed filter.
	DefaultPromoteAfter = 4
)

// Config parameterizes a Cache. Zero values select the defaults.
type Config struct {
	// Budget is the maximum resident bytes across both tiers (compact
	// position lists plus hot bitsets). <0 disables the hot tier and
	// keeps only a minimal compact working set (one entry).
	Budget int64
	// HotFraction is the maximum share of Budget spent on decompressed
	// hot filters.
	HotFraction float64
	// PromoteAfter is the probe count at one version that promotes a
	// peer to the hot tier.
	PromoteAfter int
	// Metrics receives core_filter_cache_{hits,misses,evictions,
	// resident_bytes}. nil disables instrumentation.
	Metrics *metrics.Registry
}

// Stats is a point-in-time summary of cache state.
type Stats struct {
	Hits           int64
	Misses         int64
	Evictions      int64
	ResidentBytes  int64
	CompactEntries int
	HotEntries     int
}

type entry struct {
	id      directory.PeerID
	ver     directory.Version
	compact *bloom.Compact
	hot     *bloom.Filter
	probes  int
	cbytes  int64 // compact-tier charge
	hbytes  int64 // hot-tier charge (0 when not hot)
	elem    *list.Element
	hotElem *list.Element
}

// Cache is the two-tier filter cache. All methods are safe for concurrent
// use. Probe results come from immutable snapshots (Compact and promoted
// Filter values are never mutated after construction), so probing itself
// runs outside the cache lock.
type Cache struct {
	src          Source
	budget       int64
	hotBudget    int64
	promoteAfter int

	mu           sync.Mutex
	entries      map[directory.PeerID]*entry
	lru          *list.List // all entries, front = most recently probed
	hotLRU       *list.List // hot entries only
	compactBytes int64
	hotBytes     int64

	hits      *metrics.Counter
	misses    *metrics.Counter
	evictions *metrics.Counter
	resident  *metrics.Gauge
	statHits  int64
	statMiss  int64
	statEvict int64
}

// New returns a cache over src.
func New(src Source, cfg Config) *Cache {
	if cfg.Budget == 0 {
		cfg.Budget = DefaultBudget
	}
	if cfg.HotFraction <= 0 || cfg.HotFraction > 1 {
		cfg.HotFraction = DefaultHotFraction
	}
	if cfg.PromoteAfter <= 0 {
		cfg.PromoteAfter = DefaultPromoteAfter
	}
	hot := int64(float64(cfg.Budget) * cfg.HotFraction)
	if cfg.Budget < 0 {
		cfg.Budget = 0
		hot = 0
	}
	return &Cache{
		src:          src,
		budget:       cfg.Budget,
		hotBudget:    hot,
		promoteAfter: cfg.PromoteAfter,
		entries:      make(map[directory.PeerID]*entry),
		lru:          list.New(),
		hotLRU:       list.New(),
		hits:         cfg.Metrics.Counter("core_filter_cache_hits"),
		misses:       cfg.Metrics.Counter("core_filter_cache_misses"),
		evictions:    cfg.Metrics.Counter("core_filter_cache_evictions"),
		resident:     cfg.Metrics.Gauge("core_filter_cache_resident_bytes"),
	}
}

// hotFilterBytes is the resident charge for a decompressed filter.
func hotFilterBytes(c *bloom.Compact) int64 {
	const structOverhead = 64
	return int64(c.NumBits())/8 + structOverhead
}

// view returns an immutable probe snapshot for id: the compact form and,
// if promoted, the decompressed filter. ok is false when the peer is
// unknown, filterless, or its payload fails to decode.
func (c *Cache) view(id directory.PeerID) (*bloom.Compact, *bloom.Filter, bool) {
	payload, ver, ok := c.src.Payload(id)
	if !ok || payload == nil {
		c.Invalidate(id)
		return nil, nil, false
	}

	c.mu.Lock()
	e := c.entries[id]
	if e != nil && e.ver == ver {
		// Hit: the cached decode is current.
		c.statHits++
		c.hits.Inc()
		c.lru.MoveToFront(e.elem)
		e.probes++
		if e.hot != nil {
			c.hotLRU.MoveToFront(e.hotElem)
			cp, hf := e.compact, e.hot
			c.mu.Unlock()
			return cp, hf, true
		}
		if e.probes >= c.promoteAfter {
			c.promoteLocked(e)
		}
		cp, hf := e.compact, e.hot
		c.mu.Unlock()
		return cp, hf, true
	}

	// Miss (unknown, or version changed under us).
	c.statMiss++
	c.misses.Inc()
	if e != nil {
		// Superseded version: release the stale decode.
		c.removeLocked(e, true)
	}
	compact, err := bloom.DecodeCompact(payload)
	if err != nil {
		c.publishResidentLocked()
		c.mu.Unlock()
		return nil, nil, false
	}
	e = &entry{
		id: id, ver: ver, compact: compact, probes: 1,
		cbytes: int64(compact.SizeBytes()),
	}
	e.elem = c.lru.PushFront(e)
	c.entries[id] = e
	c.compactBytes += e.cbytes
	c.enforceBudgetLocked(e)
	c.publishResidentLocked()
	cp := e.compact
	c.mu.Unlock()
	return cp, nil, true
}

// promoteLocked materializes the full bitset for a hot entry and rebalances
// the hot tier.
func (c *Cache) promoteLocked(e *entry) {
	hb := hotFilterBytes(e.compact)
	if hb > c.hotBudget {
		return // filter alone exceeds the hot tier; stay compact
	}
	e.hot = e.compact.Filter()
	e.hbytes = hb
	e.hotElem = c.hotLRU.PushFront(e)
	c.hotBytes += hb
	// Demote least-recently-probed hot filters (keep their compact form).
	for c.hotBytes > c.hotBudget {
		tail := c.hotLRU.Back()
		if tail == nil || tail == e.hotElem {
			break
		}
		c.demoteLocked(tail.Value.(*entry))
	}
	c.enforceBudgetLocked(e)
	c.publishResidentLocked()
}

// demoteLocked drops an entry's decompressed filter, keeping it probeable
// via its compact form.
func (c *Cache) demoteLocked(e *entry) {
	if e.hot == nil {
		return
	}
	c.hotLRU.Remove(e.hotElem)
	c.hotBytes -= e.hbytes
	e.hot = nil
	e.hotElem = nil
	e.hbytes = 0
	e.probes = 0 // must re-earn promotion
}

// removeLocked discards an entry entirely, optionally counting it as an
// eviction (version churn and budget pressure count; misses that never
// decoded do not).
func (c *Cache) removeLocked(e *entry, countEviction bool) {
	c.demoteLocked(e)
	c.lru.Remove(e.elem)
	c.compactBytes -= e.cbytes
	delete(c.entries, e.id)
	if countEviction {
		c.statEvict++
		c.evictions.Inc()
	}
}

// enforceBudgetLocked evicts least-recently-probed entries until the
// combined tiers fit the budget. keep (the entry just touched) is never
// evicted, so a single oversized filter still works with a tiny budget.
func (c *Cache) enforceBudgetLocked(keep *entry) {
	for c.compactBytes+c.hotBytes > c.budget {
		tail := c.lru.Back()
		if tail == nil || tail.Value.(*entry) == keep {
			break
		}
		c.removeLocked(tail.Value.(*entry), true)
	}
}

// publishResidentLocked pushes the byte gauge.
func (c *Cache) publishResidentLocked() {
	c.resident.Set(c.compactBytes + c.hotBytes)
}

// ContainsDigest probes id's filter with a precomputed digest. Unknown or
// filterless peers report false.
func (c *Cache) ContainsDigest(id directory.PeerID, d bloom.Digest) bool {
	compact, hot, ok := c.view(id)
	if !ok {
		return false
	}
	if hot != nil {
		return hot.ContainsDigest(d)
	}
	return compact.ContainsDigest(d)
}

// ContainsAllDigests probes id's filter with every digest (conjunctive).
func (c *Cache) ContainsAllDigests(id directory.PeerID, ds []bloom.Digest) bool {
	compact, hot, ok := c.view(id)
	if !ok {
		return false
	}
	if hot != nil {
		return hot.ContainsAllDigests(ds)
	}
	return compact.ContainsAllDigests(ds)
}

// Contains probes id's filter with a term.
func (c *Cache) Contains(id directory.PeerID, term string) bool {
	return c.ContainsDigest(id, bloom.MakeDigest(term))
}

// Invalidate discards any cached state for id. Call when the peer's record
// is superseded or dropped — the pre-cache implementation skipped this and
// leaked every churned-out peer's decompressed filter.
func (c *Cache) Invalidate(id directory.PeerID) {
	c.mu.Lock()
	if e := c.entries[id]; e != nil {
		c.removeLocked(e, true)
		c.publishResidentLocked()
	}
	c.mu.Unlock()
}

// ResidentBytes returns the current charge across both tiers.
func (c *Cache) ResidentBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.compactBytes + c.hotBytes
}

// Stats returns a consistent snapshot.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:           c.statHits,
		Misses:         c.statMiss,
		Evictions:      c.statEvict,
		ResidentBytes:  c.compactBytes + c.hotBytes,
		CompactEntries: len(c.entries),
		HotEntries:     c.hotLRU.Len(),
	}
}
