package filtercache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"planetp/internal/bloom"
	"planetp/internal/directory"
	"planetp/internal/metrics"
)

// fakeSource is an in-memory Source for tests.
type fakeSource struct {
	mu       sync.Mutex
	payloads map[directory.PeerID][]byte
	vers     map[directory.PeerID]directory.Version
}

func newFakeSource() *fakeSource {
	return &fakeSource{
		payloads: make(map[directory.PeerID][]byte),
		vers:     make(map[directory.PeerID]directory.Version),
	}
}

func (s *fakeSource) Payload(id directory.PeerID) ([]byte, directory.Version, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.payloads[id]
	return p, s.vers[id], ok
}

func (s *fakeSource) set(id directory.PeerID, f *bloom.Filter, ver directory.Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.payloads[id] = f.Compress()
	s.vers[id] = ver
}

func (s *fakeSource) drop(id directory.PeerID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.payloads, id)
	delete(s.vers, id)
}

// filterWith builds a small filter containing the given terms.
func filterWith(terms ...string) *bloom.Filter {
	f := bloom.New(4096, 2)
	for _, t := range terms {
		f.Insert(t)
	}
	return f
}

func TestCacheProbesMatchFilter(t *testing.T) {
	src := newFakeSource()
	f := filterWith("apple", "banana", "cherry")
	src.set(1, f, directory.Version{Epoch: 1, Seq: 1})
	c := New(src, Config{})

	for _, term := range []string{"apple", "banana", "cherry", "durian", "elderberry"} {
		if got, want := c.Contains(1, term), f.Contains(term); got != want {
			t.Errorf("Contains(1, %q) = %v, want %v", term, got, want)
		}
	}
	ds := bloom.MakeDigests([]string{"apple", "banana"})
	if !c.ContainsAllDigests(1, ds) {
		t.Error("conjunctive probe of present terms failed")
	}
	if c.ContainsAllDigests(1, bloom.MakeDigests([]string{"apple", "absent-term"})) {
		t.Error("conjunctive probe with absent term passed")
	}
	if c.Contains(99, "apple") {
		t.Error("unknown peer reported membership")
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	src := newFakeSource()
	src.set(1, filterWith("x"), directory.Version{Epoch: 1, Seq: 1})
	reg := metrics.NewRegistry()
	c := New(src, Config{Metrics: reg})

	c.Contains(1, "x") // miss + decode
	c.Contains(1, "x") // hit
	c.Contains(1, "x") // hit
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 miss 2 hits", st)
	}
	snap := reg.Snapshot()
	if snap.Counters["core_filter_cache_misses"] != 1 || snap.Counters["core_filter_cache_hits"] != 2 {
		t.Fatalf("metrics = %v", snap.Counters)
	}
	if snap.Gauges["core_filter_cache_resident_bytes"] != st.ResidentBytes {
		t.Fatalf("resident gauge %d != stats %d",
			snap.Gauges["core_filter_cache_resident_bytes"], st.ResidentBytes)
	}
	if st.ResidentBytes <= 0 {
		t.Fatal("no resident bytes after a decode")
	}
}

func TestCacheVersionChangeInvalidates(t *testing.T) {
	src := newFakeSource()
	src.set(1, filterWith("old-term"), directory.Version{Epoch: 1, Seq: 1})
	c := New(src, Config{})

	if !c.Contains(1, "old-term") {
		t.Fatal("old term missing")
	}
	// Version bump with a different filter: probes must see the new one.
	src.set(1, filterWith("new-term"), directory.Version{Epoch: 1, Seq: 2})
	if c.Contains(1, "old-term") {
		t.Error("stale filter served after version bump")
	}
	if !c.Contains(1, "new-term") {
		t.Error("new filter not served after version bump")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1 (the superseded decode)", st.Evictions)
	}
}

func TestCacheInvalidateReleasesBytes(t *testing.T) {
	src := newFakeSource()
	for id := directory.PeerID(0); id < 8; id++ {
		src.set(id, filterWith(fmt.Sprintf("term-%d", id)), directory.Version{Epoch: 1, Seq: 1})
	}
	c := New(src, Config{})
	for id := directory.PeerID(0); id < 8; id++ {
		c.Contains(id, "anything")
	}
	before := c.ResidentBytes()
	if before <= 0 {
		t.Fatal("nothing resident")
	}
	for id := directory.PeerID(0); id < 8; id++ {
		c.Invalidate(id)
	}
	if got := c.ResidentBytes(); got != 0 {
		t.Fatalf("resident bytes after full invalidate = %d, want 0", got)
	}
	st := c.Stats()
	if st.CompactEntries != 0 || st.HotEntries != 0 {
		t.Fatalf("entries remain after invalidate: %+v", st)
	}
}

// TestCacheDroppedPeerReleasesBytes is the leak regression at the cache
// layer: a peer that disappears from the source is released on its next
// probe even without an explicit Invalidate call.
func TestCacheDroppedPeerReleasesBytes(t *testing.T) {
	src := newFakeSource()
	src.set(1, filterWith("x"), directory.Version{Epoch: 1, Seq: 1})
	c := New(src, Config{})
	c.Contains(1, "x")
	if c.ResidentBytes() == 0 {
		t.Fatal("nothing resident")
	}
	src.drop(1)
	if c.Contains(1, "x") {
		t.Error("dropped peer reported membership")
	}
	if got := c.ResidentBytes(); got != 0 {
		t.Fatalf("resident bytes after source drop = %d, want 0", got)
	}
}

func TestCacheBudgetEnforced(t *testing.T) {
	src := newFakeSource()
	const n = 64
	for id := directory.PeerID(0); id < n; id++ {
		src.set(id, filterWith(fmt.Sprintf("term-%d", id)), directory.Version{Epoch: 1, Seq: 1})
	}
	// Budget that holds only a handful of compact entries.
	const budget = 2048
	c := New(src, Config{Budget: budget, PromoteAfter: 1 << 30})
	for id := directory.PeerID(0); id < n; id++ {
		if !c.Contains(id, fmt.Sprintf("term-%d", id)) {
			t.Fatalf("peer %d term missing", id)
		}
		if got := c.ResidentBytes(); got > budget {
			t.Fatalf("resident %d exceeds budget %d", got, budget)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite budget pressure")
	}
	if st.CompactEntries >= n {
		t.Fatalf("all %d entries resident under a %d-byte budget", n, budget)
	}
	// Evicted peers still answer correctly (re-decoded on demand).
	if !c.Contains(0, "term-0") {
		t.Fatal("evicted peer no longer probeable")
	}
}

func TestCacheHotPromotion(t *testing.T) {
	src := newFakeSource()
	src.set(1, filterWith("hot-term"), directory.Version{Epoch: 1, Seq: 1})
	src.set(2, filterWith("cold-term"), directory.Version{Epoch: 1, Seq: 1})
	c := New(src, Config{PromoteAfter: 3})

	c.Contains(2, "cold-term")
	for i := 0; i < 10; i++ {
		c.Contains(1, "hot-term")
	}
	st := c.Stats()
	if st.HotEntries != 1 {
		t.Fatalf("hot entries = %d, want 1 (only the frequently probed peer)", st.HotEntries)
	}
	// The hot filter must keep answering identically.
	if !c.Contains(1, "hot-term") || c.Contains(1, "absent") {
		t.Fatal("hot-tier probe disagrees with filter contents")
	}
	// A version bump demotes and re-earns.
	src.set(1, filterWith("hot-term"), directory.Version{Epoch: 1, Seq: 2})
	c.Contains(1, "hot-term")
	if st := c.Stats(); st.HotEntries != 0 {
		t.Fatalf("hot entries after version bump = %d, want 0", st.HotEntries)
	}
}

func TestCacheHotTierBounded(t *testing.T) {
	src := newFakeSource()
	const n = 16
	for id := directory.PeerID(0); id < n; id++ {
		src.set(id, filterWith(fmt.Sprintf("term-%d", id)), directory.Version{Epoch: 1, Seq: 1})
	}
	// Hot budget fits roughly two 4096-bit filters (512 B + overhead each).
	c := New(src, Config{Budget: 1 << 20, HotFraction: 0.0015, PromoteAfter: 1})
	for round := 0; round < 3; round++ {
		for id := directory.PeerID(0); id < n; id++ {
			c.Contains(id, fmt.Sprintf("term-%d", id))
		}
	}
	st := c.Stats()
	if st.HotEntries == 0 || st.HotEntries >= n {
		t.Fatalf("hot entries = %d, want bounded in (0, %d)", st.HotEntries, n)
	}
}

// TestCacheConcurrentChurn exercises probes against version bumps, drops,
// and budget evictions under -race.
func TestCacheConcurrentChurn(t *testing.T) {
	src := newFakeSource()
	const n = 32
	for id := directory.PeerID(0); id < n; id++ {
		src.set(id, filterWith(fmt.Sprintf("term-%d", id)), directory.Version{Epoch: 1, Seq: 1})
	}
	c := New(src, Config{Budget: 16 << 10, PromoteAfter: 2, Metrics: metrics.NewRegistry()})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := directory.PeerID(rng.Intn(n))
				c.ContainsAllDigests(id, bloom.MakeDigests([]string{fmt.Sprintf("term-%d", id)}))
			}
		}(int64(g))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 2000; i++ {
			id := directory.PeerID(rng.Intn(n))
			switch rng.Intn(3) {
			case 0:
				src.set(id, filterWith(fmt.Sprintf("term-%d", id)),
					directory.Version{Epoch: 1, Seq: uint32(i)})
			case 1:
				src.drop(id)
				c.Invalidate(id)
			case 2:
				src.set(id, filterWith(fmt.Sprintf("term-%d", id)),
					directory.Version{Epoch: 2, Seq: uint32(i)})
			}
		}
		close(stop)
	}()
	wg.Wait()

	if got := c.ResidentBytes(); got > 16<<10 {
		t.Fatalf("resident %d exceeds budget after churn", got)
	}
}
