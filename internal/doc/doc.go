// Package doc implements PlanetP's unit of storage: the published XML
// document (Section 2). A published document contains text and possibly
// links (XPointer-style hrefs) to external files; PlanetP indexes all text
// in the document plus the contents of linked files of known type, and
// stores the XML snippet itself in the publishing peer's local data store
// (external files are not stored by PlanetP).
package doc

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"planetp/internal/text"
)

// ErrNotFound is returned when a document id is absent from a store.
var ErrNotFound = errors.New("doc: not found")

// Link is a reference from a published XML document to an external file.
type Link struct {
	// URL is the link target (href/xpointer attribute value).
	URL string
	// Type is the lowercase extension-derived type ("pdf", "ps", "txt",
	// ...), empty if undeterminable.
	Type string
}

// knownTypes are the external file types PlanetP knows how to extract text
// from (the paper names postscript, PDF, and text).
var knownTypes = map[string]bool{"ps": true, "pdf": true, "txt": true, "text": true}

// KnownType reports whether PlanetP would index the link target's content.
func (l Link) KnownType() bool { return knownTypes[l.Type] }

// Document is a parsed, published XML document.
type Document struct {
	// ID is the content hash of the raw XML, stable across peers.
	ID string
	// Raw is the original XML snippet.
	Raw string
	// Text is all character data extracted from the XML (tags currently
	// index as plain terms, matching the paper's footnote 2 behaviour).
	Text string
	// Scoped maps each element name to the character data appearing
	// directly inside it (innermost element wins) — the structured
	// extension of footnote 2, enabling "tag:term" queries.
	Scoped map[string]string
	// Links are the external references found in the XML.
	Links []Link
}

// Resolver fetches the content of a linked external file. PFS installs a
// filesystem-backed resolver; tests install fakes. Returning an error marks
// the link unresolvable — the document still indexes its own text.
type Resolver interface {
	Resolve(url string) (string, error)
}

// ResolverFunc adapts a function to the Resolver interface.
type ResolverFunc func(url string) (string, error)

// Resolve implements Resolver.
func (f ResolverFunc) Resolve(url string) (string, error) { return f(url) }

// Parse parses an XML snippet into a Document. Malformed XML degrades
// gracefully: whatever character data precedes the error is kept, so peers
// can still share imperfect snippets.
func Parse(raw string) *Document {
	d := &Document{Raw: raw, ID: HashID(raw), Scoped: make(map[string]string)}
	dec := xml.NewDecoder(strings.NewReader(raw))
	var sb strings.Builder
	var tags []string
	var stack []string
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		switch t := tok.(type) {
		case xml.StartElement:
			tags = append(tags, t.Name.Local)
			stack = append(stack, strings.ToLower(t.Name.Local))
			for _, attr := range t.Attr {
				name := strings.ToLower(attr.Name.Local)
				if name == "href" || name == "xpointer" || name == "src" {
					d.Links = append(d.Links, Link{URL: attr.Value, Type: linkType(attr.Value)})
				} else {
					// Attribute values index under the element's scope.
					cur := strings.ToLower(t.Name.Local)
					d.Scoped[cur] += attr.Value + " "
					sb.WriteString(attr.Value)
					sb.WriteByte(' ')
				}
			}
		case xml.EndElement:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		case xml.CharData:
			sb.Write(t)
			sb.WriteByte(' ')
			if len(stack) > 0 {
				cur := stack[len(stack)-1]
				d.Scoped[cur] += string(t) + " "
			}
		}
	}
	for tag, txt := range d.Scoped {
		if strings.TrimSpace(txt) == "" {
			delete(d.Scoped, tag)
		}
	}
	// Footnote 2: XML tags are indexed simply as normal terms.
	for _, tag := range tags {
		sb.WriteString(tag)
		sb.WriteByte(' ')
	}
	d.Text = strings.TrimSpace(sb.String())
	return d
}

// linkType derives the type from the URL extension.
func linkType(url string) string {
	i := strings.LastIndexByte(url, '.')
	if i < 0 || i == len(url)-1 {
		return ""
	}
	ext := strings.ToLower(url[i+1:])
	if j := strings.IndexAny(ext, "?#"); j >= 0 {
		ext = ext[:j]
	}
	return ext
}

// HashID returns the stable content-derived id for a raw XML snippet.
func HashID(raw string) string {
	sum := sha256.Sum256([]byte(raw))
	return hex.EncodeToString(sum[:16])
}

// IndexableText returns the document's own text plus the content of every
// linked file of known type, fetched through r (nil r skips links).
func (d *Document) IndexableText(r Resolver) string {
	if r == nil || len(d.Links) == 0 {
		return d.Text
	}
	var sb strings.Builder
	sb.WriteString(d.Text)
	for _, l := range d.Links {
		if !l.KnownType() {
			continue
		}
		content, err := r.Resolve(l.URL)
		if err != nil {
			continue // unresolvable link: index what we have
		}
		sb.WriteByte(' ')
		sb.WriteString(content)
	}
	return sb.String()
}

// Terms runs the text pipeline over the document's indexable text.
func (d *Document) Terms(r Resolver) []string {
	return text.Terms(d.IndexableText(r))
}

// TermFreqs returns the term-frequency map for the document.
func (d *Document) TermFreqs(r Resolver) map[string]int {
	return d.TermFreqsWith(r, nil, nil)
}

// TermFreqsWith is TermFreqs with a caller-supplied analyzer and
// destination map, the batch-ingest form: a worker reuses one analyzer
// (token buffer + term interning) and pooled maps across documents.
// Both may be nil.
func (d *Document) TermFreqsWith(r Resolver, a *text.Analyzer, dst map[string]int) map[string]int {
	if a == nil {
		a = &text.Analyzer{}
	}
	return a.TermFreqs(d.IndexableText(r), dst)
}

// StructuredTermFreqs returns the term-frequency map including scoped
// "tag:term" entries for every element's own text — the footnote 2
// extension. Bare terms are always present, so structured indexing is a
// strict superset of flat indexing (plain queries behave identically).
func (d *Document) StructuredTermFreqs(r Resolver) map[string]int {
	return d.StructuredTermFreqsWith(r, nil, nil)
}

// StructuredTermFreqsWith is StructuredTermFreqs with a caller-supplied
// analyzer and destination map (both may be nil).
func (d *Document) StructuredTermFreqsWith(r Resolver, a *text.Analyzer, dst map[string]int) map[string]int {
	if a == nil {
		a = &text.Analyzer{}
	}
	freqs := a.TermFreqs(d.IndexableText(r), dst)
	for tag, txt := range d.Scoped {
		for _, term := range a.Terms(txt, nil) {
			// Terms from the pipeline are already stemmed; scope keys
			// are already lowercase — compose directly so the form
			// matches what text.ParseQuery produces for "tag:word".
			freqs[tag+":"+term]++
		}
	}
	return freqs
}

// Store is a peer's local data store of published documents. It is
// thread-safe.
type Store struct {
	mu   sync.RWMutex
	docs map[string]*Document
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{docs: make(map[string]*Document)} }

// Put stores d, returning false if a document with the same id was already
// present (publishing is idempotent on content).
func (s *Store) Put(d *Document) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[d.ID]; ok {
		return false
	}
	s.docs[d.ID] = d
	return true
}

// Get retrieves a document by id.
func (s *Store) Get(id string) (*Document, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.docs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return d, nil
}

// Delete removes a document, reporting whether it was present.
func (s *Store) Delete(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[id]; !ok {
		return false
	}
	delete(s.docs, id)
	return true
}

// Len returns the number of stored documents.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// IDs returns the sorted ids of all stored documents.
func (s *Store) IDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.docs))
	for id := range s.docs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// All returns every stored document (order unspecified).
func (s *Store) All() []*Document {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Document, 0, len(s.docs))
	for _, d := range s.docs {
		out = append(out, d)
	}
	return out
}
