package doc

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

const sample = `<paper title="PlanetP">
  <abstract>Gossiping replicates the global directory.</abstract>
  <file href="/papers/planetp.pdf"/>
  <related src="http://example.org/chord.ps"/>
  <image href="diagram.png"/>
</paper>`

func TestParseExtractsTextAndTags(t *testing.T) {
	d := Parse(sample)
	if !strings.Contains(d.Text, "Gossiping replicates the global directory.") {
		t.Fatalf("text missing char data: %q", d.Text)
	}
	// Footnote 2: tags index as plain terms.
	for _, tag := range []string{"paper", "abstract", "file"} {
		if !strings.Contains(d.Text, tag) {
			t.Errorf("text missing tag %q", tag)
		}
	}
}

func TestParseExtractsLinks(t *testing.T) {
	d := Parse(sample)
	if len(d.Links) != 3 {
		t.Fatalf("links = %v, want 3", d.Links)
	}
	wantTypes := map[string]string{
		"/papers/planetp.pdf":         "pdf",
		"http://example.org/chord.ps": "ps",
		"diagram.png":                 "png",
	}
	for _, l := range d.Links {
		if wantTypes[l.URL] != l.Type {
			t.Errorf("link %q type %q, want %q", l.URL, l.Type, wantTypes[l.URL])
		}
	}
}

func TestKnownType(t *testing.T) {
	if !(Link{Type: "pdf"}).KnownType() || !(Link{Type: "txt"}).KnownType() {
		t.Error("pdf/txt should be known")
	}
	if (Link{Type: "png"}).KnownType() || (Link{Type: ""}).KnownType() {
		t.Error("png/empty should be unknown")
	}
}

func TestLinkType(t *testing.T) {
	cases := map[string]string{
		"a.PDF":          "pdf",
		"a.pdf?x=1":      "pdf",
		"a.txt#frag":     "txt",
		"noext":          "",
		"trailing.":      "",
		"/dir.d/file.ps": "ps",
	}
	for in, want := range cases {
		if got := linkType(in); got != want {
			t.Errorf("linkType(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHashIDStable(t *testing.T) {
	a, b := HashID("same"), HashID("same")
	if a != b {
		t.Fatal("hash not deterministic")
	}
	if HashID("other") == a {
		t.Fatal("distinct content should hash differently")
	}
	if len(a) != 32 {
		t.Fatalf("id length %d, want 32 hex chars", len(a))
	}
}

func TestParseMalformedXMLDegrades(t *testing.T) {
	d := Parse(`<a>early text<b>more`)
	if !strings.Contains(d.Text, "early text") {
		t.Fatalf("lost pre-error text: %q", d.Text)
	}
	if d.ID == "" {
		t.Fatal("malformed doc must still get an id")
	}
}

func TestIndexableTextWithResolver(t *testing.T) {
	d := Parse(sample)
	r := ResolverFunc(func(url string) (string, error) {
		switch {
		case strings.HasSuffix(url, ".pdf"):
			return "resolved pdf content", nil
		case strings.HasSuffix(url, ".ps"):
			return "", errors.New("unreachable")
		}
		return "", errors.New("should not resolve unknown types")
	})
	txt := d.IndexableText(r)
	if !strings.Contains(txt, "resolved pdf content") {
		t.Error("pdf content not indexed")
	}
	if strings.Contains(txt, "unreachable") {
		t.Error("failed resolution leaked into text")
	}
	// png is not a known type: resolver must not be consulted for it —
	// the ResolverFunc above errors if it is, and the error path is
	// silent, so assert directly:
	for _, l := range d.Links {
		if l.Type == "png" && l.KnownType() {
			t.Error("png treated as known type")
		}
	}
}

func TestIndexableTextNilResolver(t *testing.T) {
	d := Parse(sample)
	if d.IndexableText(nil) != d.Text {
		t.Fatal("nil resolver should return own text only")
	}
}

func TestTermsAndTermFreqs(t *testing.T) {
	d := Parse("<note>gossiping gossiping peers</note>")
	freqs := d.TermFreqs(nil)
	if freqs["gossip"] != 2 {
		t.Errorf("gossip freq = %d, want 2", freqs["gossip"])
	}
	terms := d.Terms(nil)
	if len(terms) == 0 {
		t.Fatal("no terms extracted")
	}
}

func TestStorePutGetDelete(t *testing.T) {
	s := NewStore()
	d := Parse("<x>hello world content</x>")
	if !s.Put(d) {
		t.Fatal("first Put failed")
	}
	if s.Put(d) {
		t.Fatal("duplicate Put should return false")
	}
	got, err := s.Get(d.ID)
	if err != nil || got != d {
		t.Fatalf("Get: %v %v", got, err)
	}
	if !s.Delete(d.ID) {
		t.Fatal("Delete failed")
	}
	if s.Delete(d.ID) {
		t.Fatal("double Delete should return false")
	}
	if _, err := s.Get(d.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
}

func TestStoreIDsAndAll(t *testing.T) {
	s := NewStore()
	d1 := Parse("<a>one</a>")
	d2 := Parse("<b>two</b>")
	s.Put(d1)
	s.Put(d2)
	ids := s.IDs()
	if len(ids) != 2 || ids[0] > ids[1] {
		t.Fatalf("IDs = %v", ids)
	}
	if s.Len() != 2 || len(s.All()) != 2 {
		t.Fatal("Len/All mismatch")
	}
}

// Property: Parse is total (never panics) and always assigns a non-empty
// content-stable id.
func TestQuickParseTotal(t *testing.T) {
	f := func(s string) bool {
		d := Parse(s)
		return d.ID != "" && d.ID == HashID(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
