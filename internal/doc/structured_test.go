package doc

import (
	"strings"
	"testing"
)

const structuredSample = `<paper year="2003">
  <title>Gossiping Protocols</title>
  <author>Francisco Cuenca</author>
  <abstract>Replication through randomized epidemics.</abstract>
</paper>`

func TestParseScopedText(t *testing.T) {
	d := Parse(structuredSample)
	if !strings.Contains(d.Scoped["title"], "Gossiping Protocols") {
		t.Fatalf("title scope = %q", d.Scoped["title"])
	}
	if !strings.Contains(d.Scoped["author"], "Cuenca") {
		t.Fatalf("author scope = %q", d.Scoped["author"])
	}
	// Attribute values scope under their element.
	if !strings.Contains(d.Scoped["paper"], "2003") {
		t.Fatalf("paper scope = %q", d.Scoped["paper"])
	}
	// href-style attributes become links, not scoped text.
	d2 := Parse(`<file href="x.pdf">body</file>`)
	if strings.Contains(d2.Scoped["file"], "x.pdf") {
		t.Fatal("link attribute leaked into scoped text")
	}
	if len(d2.Links) != 1 {
		t.Fatal("link not extracted")
	}
}

func TestScopedInnermostWins(t *testing.T) {
	d := Parse(`<outer>before <inner>nested words</inner> after</outer>`)
	if !strings.Contains(d.Scoped["inner"], "nested words") {
		t.Fatalf("inner = %q", d.Scoped["inner"])
	}
	if strings.Contains(d.Scoped["outer"], "nested") {
		t.Fatalf("outer should not contain inner text: %q", d.Scoped["outer"])
	}
	if !strings.Contains(d.Scoped["outer"], "before") || !strings.Contains(d.Scoped["outer"], "after") {
		t.Fatalf("outer = %q", d.Scoped["outer"])
	}
}

func TestScopedEmptyElementsDropped(t *testing.T) {
	d := Parse(`<a><b/></a><c>   </c><d>real</d>`)
	if _, ok := d.Scoped["b"]; ok {
		t.Fatal("empty element retained")
	}
	if _, ok := d.Scoped["c"]; ok {
		t.Fatal("whitespace-only element retained")
	}
	if _, ok := d.Scoped["d"]; !ok {
		t.Fatal("real element lost")
	}
}

func TestStructuredTermFreqs(t *testing.T) {
	d := Parse(structuredSample)
	freqs := d.StructuredTermFreqs(nil)
	// Bare terms are a strict subset: everything flat indexing produced.
	for term, n := range d.TermFreqs(nil) {
		if freqs[term] != n {
			t.Fatalf("bare term %q changed: %d != %d", term, freqs[term], n)
		}
	}
	// Scoped forms exist and match the query pipeline's rendering.
	if freqs["title:gossip"] == 0 {
		t.Fatalf("missing title:gossip; have %v", keysOf(freqs))
	}
	if freqs["abstract:epidem"] == 0 {
		t.Fatal("missing abstract:epidem")
	}
	// Terms outside a scope must not be scoped into it.
	if freqs["title:epidem"] != 0 {
		t.Fatal("abstract text leaked into title scope")
	}
}

func keysOf(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
