package serve

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
)

// resultCache memoizes fully rendered search responses keyed by
// (query terms, search options), stamped with the directory mutation
// generation — the serving-tier sibling of search.IPFCache. A search
// result is a pure function of the community's filter state plus the
// contacted peers' indexes; the directory generation advances on every
// accepted record, on/off-line flip, and local publish (publishes upsert
// the self record), so any event that could change an answer also moves
// the generation and flushes the cache on the next lookup.
//
// Unlike the IPF cache this one stores the marshaled JSON body, not live
// structures: a hit is one map lookup plus one Write, with no risk of a
// handler mutating a shared result slice.
//
// Entries are LRU-evicted beyond cap. All methods are safe for
// concurrent use.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	stamped bool       // gen is meaningful
	gen     uint64     // generation the entries were computed at
	ll      *list.List // front = most recent
	entries map[string]*list.Element
}

// cacheEntry is one memoized response: the key (for eviction) and the
// rendered JSON body.
type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache returns an empty cache holding at most cap responses
// (cap <= 0 disables caching: get always misses, put drops).
func newResultCache(cap int) *resultCache {
	return &resultCache{
		cap:     cap,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// searchCacheKey canonicalizes one search request: the term sequence
// (already tokenized/stemmed, so equivalent spellings collide) plus every
// option that changes the response bytes. K changes truncation,
// group size changes the contact schedule (and therefore Stats), while
// Concurrency is deliberately excluded — the fan-out merge is
// byte-identical to sequential by construction.
func searchCacheKey(terms []string, k, groupSize int) string {
	var b strings.Builder
	for _, t := range terms {
		b.WriteString(t)
		b.WriteByte(0)
	}
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(k))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(groupSize))
	return b.String()
}

// flushIfStaleLocked drops every entry when the generation moved.
func (c *resultCache) flushIfStaleLocked(gen uint64) {
	if c.stamped && c.gen == gen {
		return
	}
	c.ll.Init()
	c.entries = make(map[string]*list.Element)
	c.gen = gen
	c.stamped = true
}

// get returns the cached body for key at generation gen, if fresh.
func (c *resultCache) get(gen uint64, key string) ([]byte, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushIfStaleLocked(gen)
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, but only if the cache is still at
// generation gen — a publish that landed while the search ran has
// already (or will have) moved the directory generation, and storing the
// possibly-stale response would let it outlive its truth.
func (c *resultCache) put(gen uint64, key string, body []byte) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stamped && c.gen != gen {
		return
	}
	c.flushIfStaleLocked(gen)
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// Len returns the number of live entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
