package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"planetp/internal/core"
	"planetp/internal/directory"
	"planetp/internal/gossip"
)

// fastGossip shrinks protocol timers so live tests converge in
// milliseconds.
func fastGossip() gossip.Config {
	return gossip.Config{
		BaseInterval: 25 * time.Millisecond,
		MaxInterval:  100 * time.Millisecond,
		SlowdownStep: 25 * time.Millisecond,
	}
}

// newTestPeer builds (and starts) one standalone peer.
func newTestPeer(t *testing.T, id int) *core.Peer {
	t.Helper()
	p, err := core.NewPeer(core.Config{
		ID: directory.PeerID(id), Capacity: 8,
		Gossip: fastGossip(), Seed: int64(id + 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	p.Start()
	return p
}

// newTestServer mounts a Server for p on an httptest listener.
func newTestServer(t *testing.T, p *core.Peer, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(p, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestPublishSearchFetchRoundTrip: the basic API surface works end to
// end on a single node — publish, search for it, fetch the body.
func TestPublishSearchFetchRoundTrip(t *testing.T) {
	p := newTestPeer(t, 0)
	_, ts := newTestServer(t, p, Config{})

	pub := postJSON(t, ts.URL+"/v1/publish", PublishRequest{XML: `<doc>epidemic gossip algorithms</doc>`})
	if pub.StatusCode != http.StatusOK {
		t.Fatalf("publish status = %d", pub.StatusCode)
	}
	id := decodeBody[PublishResponse](t, pub).ID
	if id == "" {
		t.Fatal("publish returned empty id")
	}

	sr := postJSON(t, ts.URL+"/v1/search", SearchRequest{Query: "gossip", K: 5})
	if sr.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d", sr.StatusCode)
	}
	res := decodeBody[SearchResponse](t, sr)
	if len(res.Hits) != 1 || res.Hits[0].Key != id {
		t.Fatalf("search hits = %+v, want the published doc %s", res.Hits, id)
	}

	dr, err := http.Get(ts.URL + "/v1/doc/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if dr.StatusCode != http.StatusOK {
		t.Fatalf("doc status = %d", dr.StatusCode)
	}
	if got := decodeBody[DocResponse](t, dr).XML; got != `<doc>epidemic gossip algorithms</doc>` {
		t.Fatalf("doc body = %q", got)
	}

	if r, _ := http.Get(ts.URL + "/v1/doc/nope"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("missing doc status = %d, want 404", r.StatusCode)
	}
}

// TestPublishBatchAndPeers: a batch ingests atomically; /v1/peers shows
// the directory.
func TestPublishBatchAndPeers(t *testing.T) {
	p := newTestPeer(t, 0)
	_, ts := newTestServer(t, p, Config{})

	batch := PublishBatchRequest{XMLs: []string{
		`<doc>alpha one</doc>`, `<doc>beta two</doc>`, `<doc>gamma three</doc>`,
	}}
	resp := postJSON(t, ts.URL+"/v1/publish-batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	ids := decodeBody[PublishBatchResponse](t, resp).IDs
	if len(ids) != 3 {
		t.Fatalf("batch ids = %v", ids)
	}
	if p.LocalDocs() != 3 {
		t.Fatalf("LocalDocs = %d, want 3", p.LocalDocs())
	}

	pr, err := http.Get(ts.URL + "/v1/peers")
	if err != nil {
		t.Fatal(err)
	}
	peers := decodeBody[PeersResponse](t, pr)
	if peers.Self != 0 || peers.Known < 1 {
		t.Fatalf("peers = %+v", peers)
	}
}

// TestBadRequests: malformed input is the caller's problem — 400, never
// a 500 or a hang.
func TestBadRequests(t *testing.T) {
	p := newTestPeer(t, 0)
	_, ts := newTestServer(t, p, Config{MaxBatch: 2})

	resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	if r := postJSON(t, ts.URL+"/v1/search", SearchRequest{Query: "the and of"}); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("stop-word query status = %d, want 400", r.StatusCode)
	}
	if r := postJSON(t, ts.URL+"/v1/publish", PublishRequest{XML: "<d></d>"}); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty doc status = %d, want 400", r.StatusCode)
	}
	if r := postJSON(t, ts.URL+"/v1/publish-batch", PublishBatchRequest{}); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d, want 400", r.StatusCode)
	}
	over := PublishBatchRequest{XMLs: []string{"<a>x</a>", "<b>y</b>", "<c>z</c>"}}
	if r := postJSON(t, ts.URL+"/v1/publish-batch", over); r.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status = %d, want 413", r.StatusCode)
	}
}

// TestAdmissionControlShedsWith429: saturate the in-flight pool and
// assert the contract — every extra request is shed instantly with 429 +
// Retry-After (never dropped without a response), admitted requests
// complete normally, and the in-flight gauge returns to zero after the
// pool drains.
func TestAdmissionControlShedsWith429(t *testing.T) {
	p := newTestPeer(t, 0)
	if _, err := p.Publish(`<doc>hello admission</doc>`); err != nil {
		t.Fatal(err)
	}

	const slots = 4
	s := New(p, Config{MaxInFlight: slots, RetryAfter: 2 * time.Second})
	// Park every admitted request on a gate while holding its slot.
	gate := make(chan struct{})
	entered := make(chan string, slots*2)
	s.testHook = func(route string) {
		entered <- route
		<-gate
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	admitted := make([]*http.Response, slots)
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			admitted[i] = postJSON(t, ts.URL+"/v1/search", SearchRequest{Query: "hello"})
		}(i)
	}
	for i := 0; i < slots; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("admitted requests never reached the handler")
		}
	}

	// Pool full: the next wave must shed — instantly, all with a
	// response, all 429 + Retry-After.
	const extra = 8
	for i := 0; i < extra; i++ {
		resp := postJSON(t, ts.URL+"/v1/search", SearchRequest{Query: "hello"})
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overload status = %d, want 429", resp.StatusCode)
		}
		ra := resp.Header.Get("Retry-After")
		if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
			t.Fatalf("Retry-After = %q, want a positive integer", ra)
		}
		resp.Body.Close()
	}
	if got := s.reg.Counter("serve_shed_total").Value(); got != extra {
		t.Fatalf("serve_shed_total = %d, want %d", got, extra)
	}
	if got := s.reg.Gauge("serve_inflight_requests").Value(); got != slots {
		t.Fatalf("in-flight gauge = %d while saturated, want %d", got, slots)
	}

	// Release the gate: admitted requests finish successfully and the
	// gauge returns to zero.
	close(gate)
	wg.Wait()
	for i, resp := range admitted {
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("admitted request %d status = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	waitForCond(t, 2*time.Second, "in-flight gauge to drain", func() bool {
		return s.reg.Gauge("serve_inflight_requests").Value() == 0 && s.InFlight() == 0
	})
}

// TestHealthzBypassesAdmission: /healthz answers 200 even while every
// slot is held.
func TestHealthzBypassesAdmission(t *testing.T) {
	p := newTestPeer(t, 0)
	s := New(p, Config{MaxInFlight: 1})
	gate := make(chan struct{})
	entered := make(chan string, 1)
	s.testHook = func(route string) {
		entered <- route
		<-gate
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/v1/peers")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d while saturated, want 200", resp.StatusCode)
	}
	h := decodeBody[HealthResponse](t, resp)
	if h.Status != "ok" || h.InFlight != 1 {
		t.Fatalf("healthz = %+v", h)
	}
	close(gate)
	<-done
}

// TestGracefulDrain: Shutdown lets in-flight requests finish, rejects
// new ones with 503, flips /healthz to draining, and leaves the
// in-flight gauge at zero.
func TestGracefulDrain(t *testing.T) {
	p := newTestPeer(t, 0)
	if _, err := p.Publish(`<doc>drain me gently</doc>`); err != nil {
		t.Fatal(err)
	}
	s := New(p, Config{MaxInFlight: 4})
	gate := make(chan struct{})
	entered := make(chan string, 1)
	s.testHook = func(route string) {
		entered <- route
		<-gate
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One slow in-flight request...
	inflightResp := make(chan *http.Response, 1)
	go func() {
		inflightResp <- postJSON(t, ts.URL+"/v1/search", SearchRequest{Query: "drain"})
	}()
	<-entered

	// ...then the drain begins concurrently.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitForCond(t, 2*time.Second, "draining flag", s.Draining)

	// New work is refused while the old request is still running (the
	// draining check fires before the slot pool and the test hook, so
	// this request cannot block).
	refused := postJSON(t, ts.URL+"/v1/search", SearchRequest{Query: "drain"})
	if refused.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during drain status = %d, want 503", refused.StatusCode)
	}
	refused.Body.Close()
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", hr.StatusCode)
	}
	if h := decodeBody[HealthResponse](t, hr); h.Status != "draining" {
		t.Fatalf("healthz status = %q, want draining", h.Status)
	}

	// The in-flight request completes successfully despite the drain.
	close(gate)
	resp := <-inflightResp
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request during drain status = %d", resp.StatusCode)
	}
	res := decodeBody[SearchResponse](t, resp)
	if len(res.Hits) != 1 {
		t.Fatalf("in-flight search hits = %+v", res.Hits)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := s.reg.Gauge("serve_inflight_requests").Value(); got != 0 {
		t.Fatalf("in-flight gauge after drain = %d, want 0", got)
	}
}

// TestRouteMetrics: per-route counters and latency histograms fill in.
func TestRouteMetrics(t *testing.T) {
	p := newTestPeer(t, 0)
	s, ts := newTestServer(t, p, Config{})

	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/publish", PublishRequest{XML: fmt.Sprintf("<doc>metric doc %d</doc>", i)})
		resp.Body.Close()
	}
	resp := postJSON(t, ts.URL+"/v1/search", SearchRequest{Query: "metric"})
	resp.Body.Close()

	if got := s.reg.Counter("serve_publish_requests_total").Value(); got != 3 {
		t.Fatalf("publish route counter = %d, want 3", got)
	}
	if got := s.reg.Counter("serve_search_requests_total").Value(); got != 1 {
		t.Fatalf("search route counter = %d, want 1", got)
	}
	if got := s.reg.Histogram("serve_search_latency_us", serveLatencyBounds).Count(); got != 1 {
		t.Fatalf("search latency histogram count = %d, want 1", got)
	}
	if got := s.reg.Counter("serve_requests_total").Value(); got != 4 {
		t.Fatalf("serve_requests_total = %d, want 4", got)
	}
}

// TestServeShutdownWaitsForInFlight exercises the real listener path:
// Serve on a TCP listener, then Shutdown must block until the in-flight
// request finishes, and Serve must return http.ErrServerClosed.
func TestServeShutdownWaitsForInFlight(t *testing.T) {
	p := newTestPeer(t, 0)
	if _, err := p.Publish(`<doc>real listener drain</doc>`); err != nil {
		t.Fatal(err)
	}
	s := New(p, Config{MaxInFlight: 4})
	gate := make(chan struct{})
	entered := make(chan string, 1)
	s.testHook = func(route string) {
		entered <- route
		<-gate
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	inflightResp := make(chan *http.Response, 1)
	go func() {
		inflightResp <- postJSON(t, base+"/v1/search", SearchRequest{Query: "listener"})
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v before the in-flight request finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	resp := <-inflightResp
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
}

// waitForCond polls until cond or the deadline.
func waitForCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
