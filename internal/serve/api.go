package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"planetp/internal/core"
	"planetp/internal/directory"
	"planetp/internal/doc"
	"planetp/internal/search"
)

// --- wire types ---

// SearchRequest asks for a ranked TFxIPF search.
type SearchRequest struct {
	// Query is the raw query string (plain words or tag:word).
	Query string `json:"query"`
	// K is the number of documents wanted (default Config.DefaultK).
	K int `json:"k,omitempty"`
	// GroupSize contacts peers in groups of m (0 = engine default).
	GroupSize int `json:"group_size,omitempty"`
	// Concurrency overlaps per-peer contacts within a group (0 = sequential).
	Concurrency int `json:"concurrency,omitempty"`
	// NoCache bypasses the result cache for this request.
	NoCache bool `json:"no_cache,omitempty"`
}

// SearchHit is one ranked result.
type SearchHit struct {
	Peer  int32   `json:"peer"`
	Key   string  `json:"key"`
	Score float64 `json:"score"`
}

// SearchStats reports what the search cost.
type SearchStats struct {
	PeersRanked    int  `json:"peers_ranked"`
	PeersContacted int  `json:"peers_contacted"`
	DocsRetrieved  int  `json:"docs_retrieved"`
	StoppedEarly   bool `json:"stopped_early"`
}

// SearchResponse is the body of POST /v1/search. Generation is the
// directory mutation generation the answer was computed at — two
// responses with equal generations were served from the same view.
type SearchResponse struct {
	Hits       []SearchHit `json:"hits"`
	Stats      SearchStats `json:"stats"`
	Generation uint64      `json:"generation"`
}

// PublishRequest carries one XML document.
type PublishRequest struct {
	XML string `json:"xml"`
}

// PublishResponse reports the published document id.
type PublishResponse struct {
	ID string `json:"id"`
}

// PublishBatchRequest carries many documents for one atomic ingest batch.
type PublishBatchRequest struct {
	XMLs []string `json:"xmls"`
}

// PublishBatchResponse reports the index-aligned document ids.
type PublishBatchResponse struct {
	IDs []string `json:"ids"`
}

// DocResponse is the body of GET /v1/doc/{id}.
type DocResponse struct {
	Peer int32  `json:"peer"`
	ID   string `json:"id"`
	XML  string `json:"xml"`
}

// PeerInfo is one directory entry.
type PeerInfo struct {
	ID     int32  `json:"id"`
	Addr   string `json:"addr,omitempty"`
	Online bool   `json:"online"`
	Ver    string `json:"ver"`
	Class  string `json:"class"`
}

// PeersResponse is the body of GET /v1/peers.
type PeersResponse struct {
	Self       int32      `json:"self"`
	Known      int        `json:"known"`
	Online     int        `json:"online"`
	Generation uint64     `json:"generation"`
	Peers      []PeerInfo `json:"peers"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status     string `json:"status"` // "ok" or "draining"
	ID         int32  `json:"id"`
	Name       string `json:"name"`
	Docs       int    `json:"docs"`
	Known      int    `json:"known"`
	Online     int    `json:"online"`
	Generation uint64 `json:"generation"`
	InFlight   int    `json:"in_flight"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// --- helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// decode parses a JSON request body, mapping oversized bodies to 413 and
// malformed ones to 400. It reports whether decoding succeeded (on
// failure the response has been written).
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.errors.Inc()
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds "+strconv.FormatInt(tooBig.Limit, 10)+" bytes")
			return false
		}
		s.errors.Inc()
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// --- handlers ---

// handleSearch serves POST /v1/search through the generation-stamped
// result cache. The generation is read BEFORE the search runs: if a
// publish lands mid-search and moves it, put() drops the entry rather
// than caching a response that may straddle two views.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !s.decode(w, r, &req) {
		return
	}
	terms := core.Terms(req.Query)
	if len(terms) == 0 {
		s.errors.Inc()
		writeError(w, http.StatusBadRequest, "query has no searchable terms")
		return
	}
	k := req.K
	if k <= 0 {
		k = s.cfg.DefaultK
	}
	gen := s.peer.Directory().Generation()
	key := searchCacheKey(terms, k, req.GroupSize)
	if !req.NoCache {
		if body, ok := s.cache.get(gen, key); ok {
			s.cacheHits.Inc()
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Planetp-Cache", "hit")
			w.Write(body)
			return
		}
		s.cacheMisses.Inc()
	}
	docs, st := s.peer.SearchWith(req.Query, search.Options{
		K:           k,
		GroupSize:   req.GroupSize,
		Concurrency: req.Concurrency,
	})
	resp := SearchResponse{
		Hits: make([]SearchHit, len(docs)),
		Stats: SearchStats{
			PeersRanked:    st.PeersRanked,
			PeersContacted: st.PeersContacted,
			DocsRetrieved:  st.DocsRetrieved,
			StoppedEarly:   st.StoppedEarly,
		},
		Generation: gen,
	}
	for i, d := range docs {
		resp.Hits[i] = SearchHit{Peer: int32(d.Peer), Key: d.Key, Score: d.Score}
	}
	body, err := json.Marshal(resp)
	if err != nil {
		s.errors.Inc()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	body = append(body, '\n')
	verdict := "bypass"
	if !req.NoCache {
		s.cache.put(gen, key, body)
		verdict = "miss"
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Planetp-Cache", verdict)
	w.Write(body)
}

// handlePublish serves POST /v1/publish.
func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	var req PublishRequest
	if !s.decode(w, r, &req) {
		return
	}
	d, err := s.peer.Publish(req.XML)
	if err != nil {
		s.writePublishError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PublishResponse{ID: d.ID})
}

// handlePublishBatch serves POST /v1/publish-batch: the whole batch is
// one atomic ingest step (one WAL commit, one index pass, one gossiped
// filter diff).
func (s *Server) handlePublishBatch(w http.ResponseWriter, r *http.Request) {
	var req PublishBatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.XMLs) == 0 {
		s.errors.Inc()
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.XMLs) > s.cfg.MaxBatch {
		s.errors.Inc()
		writeError(w, http.StatusRequestEntityTooLarge,
			"batch of "+strconv.Itoa(len(req.XMLs))+" exceeds the "+strconv.Itoa(s.cfg.MaxBatch)+"-document limit")
		return
	}
	docs, err := s.peer.PublishBatch(req.XMLs)
	if err != nil {
		s.writePublishError(w, err)
		return
	}
	resp := PublishBatchResponse{IDs: make([]string, len(docs))}
	for i, d := range docs {
		resp.IDs[i] = d.ID
	}
	writeJSON(w, http.StatusOK, resp)
}

// writePublishError maps ingest failures: un-indexable input is the
// caller's fault (400); anything else (a WAL append failure on a sick
// disk) is the node's (500).
func (s *Server) writePublishError(w http.ResponseWriter, err error) {
	s.errors.Inc()
	if errors.Is(err, core.ErrNoTerms) {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeError(w, http.StatusInternalServerError, err.Error())
}

// handleDoc serves GET /v1/doc/{id}: the document body from any live
// holder. Without ?peer=N the node resolves the holder itself — local
// store, local replicas, then every peer whose gossiped filter announces
// the document, ranked by directory liveness with failover — so the
// fetch succeeds as long as ANY replica is up; 404 means no live holder
// at all. With ?peer=N the fetch goes to exactly that peer (debugging
// and tests pin a holder).
func (s *Server) handleDoc(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var (
		holder directory.PeerID
		xml    string
		err    error
	)
	if pv := r.URL.Query().Get("peer"); pv != "" {
		n, aerr := strconv.Atoi(pv)
		if aerr != nil {
			s.errors.Inc()
			writeError(w, http.StatusBadRequest, "bad peer id: "+pv)
			return
		}
		holder = directory.PeerID(n)
		xml, err = s.peer.FetchDocument(holder, id)
	} else {
		xml, holder, err = s.peer.ResolveDocument(id)
	}
	if err != nil {
		s.errors.Inc()
		if errors.Is(err, doc.ErrNotFound) {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		// A holder exists but none were reachable (or the pinned peer
		// failed us) — a gateway-style error, not this node's.
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, DocResponse{Peer: int32(holder), ID: id, XML: xml})
}

// handlePeers serves GET /v1/peers: the node's directory replica.
func (s *Server) handlePeers(w http.ResponseWriter, r *http.Request) {
	dir := s.peer.Directory()
	resp := PeersResponse{
		Self:       int32(s.peer.ID()),
		Known:      dir.NumKnown(),
		Online:     dir.NumOnline(),
		Generation: dir.Generation(),
	}
	for _, pid := range dir.KnownIDs() {
		e, ok := dir.Entry(pid)
		if !ok {
			continue
		}
		rec, _ := dir.Get(pid)
		class := "fast"
		if e.Class == directory.Slow {
			class = "slow"
		}
		resp.Peers = append(resp.Peers, PeerInfo{
			ID: int32(pid), Addr: rec.Addr, Online: e.Online,
			Ver: e.Ver.String(), Class: class,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz answers even when the node is saturated (it bypasses
// admission): 200 while serving, 503 once draining — load balancers
// stop routing here while in-flight requests finish.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	dir := s.peer.Directory()
	resp := HealthResponse{
		Status:     "ok",
		ID:         int32(s.peer.ID()),
		Name:       s.peer.Name(),
		Docs:       s.peer.LocalDocs(),
		Known:      dir.NumKnown(),
		Online:     dir.NumOnline(),
		Generation: dir.Generation(),
		InFlight:   s.InFlight(),
	}
	status := http.StatusOK
	if s.draining.Load() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}
