package serve

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// TestHandlersConcurrentWithIngest races the full HTTP surface against
// direct ingest on the same peer: searches (cached and uncached), doc
// fetches, directory listings, and health probes while publishes,
// batches, and removals mutate the index, store, filter, and directory
// underneath. Run under -race; any unguarded read path in the handlers
// or in core.Peer shows up here.
func TestHandlersConcurrentWithIngest(t *testing.T) {
	p := newTestPeer(t, 0)
	_, ts := newTestServer(t, p, Config{MaxInFlight: 64})

	if _, err := p.Publish(`<doc>seed corpus lexicon</doc>`); err != nil {
		t.Fatal(err)
	}

	const rounds = 15
	var wg sync.WaitGroup

	// Mutators through the API: publish and publish-batch.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			resp := postJSON(t, ts.URL+"/v1/publish", PublishRequest{
				XML: fmt.Sprintf(`<doc>http solo %d lexicon</doc>`, i)})
			resp.Body.Close()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/3; i++ {
			resp := postJSON(t, ts.URL+"/v1/publish-batch", PublishBatchRequest{XMLs: []string{
				fmt.Sprintf(`<doc>http batch %d one lexicon</doc>`, i),
				fmt.Sprintf(`<doc>http batch %d two lexicon</doc>`, i),
			}})
			resp.Body.Close()
		}
	}()
	// Mutator below the API: remove + compact churn, the path no HTTP
	// route drives but every search must survive.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/3; i++ {
			d, err := p.Publish(fmt.Sprintf(`<doc>churn %d lexicon</doc>`, i))
			if err != nil {
				t.Errorf("churn publish: %v", err)
				return
			}
			p.Remove(d.ID)
			p.Compact()
		}
	}()

	// Readers through the API.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds*2; i++ {
				sr := postJSON(t, ts.URL+"/v1/search", SearchRequest{Query: "lexicon", K: 5, NoCache: r == 0})
				sr.Body.Close()
				if dr, err := http.Get(ts.URL + "/v1/doc/absent"); err == nil {
					dr.Body.Close()
				}
				if pr, err := http.Get(ts.URL + "/v1/peers"); err == nil {
					pr.Body.Close()
				}
				if hr, err := http.Get(ts.URL + "/healthz"); err == nil {
					hr.Body.Close()
				}
				if mr, err := http.Get(ts.URL + "/debug/metrics"); err == nil {
					mr.Body.Close()
				}
			}
		}(r)
	}
	wg.Wait()

	// Nothing deadlocked and the final view is coherent: one more
	// search answers with the full surviving corpus.
	resp := postJSON(t, ts.URL+"/v1/search", SearchRequest{Query: "lexicon", K: 100, NoCache: true})
	res := decodeBody[SearchResponse](t, resp)
	want := 1 + rounds + (rounds/3)*2 // seed + solos + batches (churn docs removed)
	if len(res.Hits) != want {
		t.Fatalf("final search hits = %d, want %d", len(res.Hits), want)
	}
}
