package serve

import (
	"net/http"
	"testing"
)

// TestResultCacheLRUAndGeneration: unit behaviour — LRU eviction at cap,
// flush on generation advance, stale put dropped.
func TestResultCacheLRUAndGeneration(t *testing.T) {
	c := newResultCache(2)
	c.put(1, "a", []byte("A"))
	c.put(1, "b", []byte("B"))
	if _, ok := c.get(1, "a"); !ok {
		t.Fatal("a missing after put")
	}
	// a is now most-recent; inserting c evicts b.
	c.put(1, "c", []byte("C"))
	if _, ok := c.get(1, "b"); ok {
		t.Fatal("b survived past the cap; LRU should have evicted it")
	}
	if _, ok := c.get(1, "a"); !ok {
		t.Fatal("a evicted although most recently used")
	}

	// Generation advance flushes everything.
	if _, ok := c.get(2, "a"); ok {
		t.Fatal("hit across a generation advance")
	}
	if c.Len() != 0 {
		t.Fatalf("len after flush = %d", c.Len())
	}

	// A put stamped with a superseded generation must be dropped: the
	// search it caches ran against a view that has already changed.
	c.put(1, "old", []byte("stale"))
	if _, ok := c.get(2, "old"); ok {
		t.Fatal("stale-generation put was stored")
	}

	// cap<=0 disables caching entirely.
	d := newResultCache(0)
	d.put(1, "x", []byte("X"))
	if _, ok := d.get(1, "x"); ok {
		t.Fatal("disabled cache returned a hit")
	}
}

func cacheHeader(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d", resp.StatusCode)
	}
	return resp.Header.Get("X-Planetp-Cache")
}

// TestSearchCacheHitAndKeying: repeated identical searches hit; changing
// K or the terms misses.
func TestSearchCacheHitAndKeying(t *testing.T) {
	p := newTestPeer(t, 0)
	if _, err := p.Publish(`<doc>cache keying coverage</doc>`); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, p, Config{})

	if got := cacheHeader(t, postJSON(t, ts.URL+"/v1/search", SearchRequest{Query: "cache", K: 5})); got != "miss" {
		t.Fatalf("first search = %q, want miss", got)
	}
	if got := cacheHeader(t, postJSON(t, ts.URL+"/v1/search", SearchRequest{Query: "cache", K: 5})); got != "hit" {
		t.Fatalf("repeat search = %q, want hit", got)
	}
	// Different K → different truncation → separate entry.
	if got := cacheHeader(t, postJSON(t, ts.URL+"/v1/search", SearchRequest{Query: "cache", K: 1})); got != "miss" {
		t.Fatalf("different-K search = %q, want miss", got)
	}
	// Equivalent spelling (stemming + case) canonicalizes to the same
	// terms — and hits.
	if got := cacheHeader(t, postJSON(t, ts.URL+"/v1/search", SearchRequest{Query: "Caches", K: 5})); got != "hit" {
		t.Fatalf("stem-equivalent search = %q, want hit", got)
	}
	// NoCache bypasses without disturbing the entry.
	if got := cacheHeader(t, postJSON(t, ts.URL+"/v1/search", SearchRequest{Query: "cache", K: 5, NoCache: true})); got != "bypass" {
		t.Fatalf("no-cache search header = %q, want bypass", got)
	}
	if hits := s.reg.Counter("serve_cache_hits_total").Value(); hits != 2 {
		t.Fatalf("serve_cache_hits_total = %d, want 2", hits)
	}
}

// TestPublishInvalidatesSearchCache is the end-to-end cache-correctness
// contract, verified through the HTTP handlers alone: a publish bumps
// directory.Generation() (it upserts the self record), so a search that
// was cached before the publish must MISS afterwards and return the new
// document — a stale hit here would mean the serving tier can answer
// from a view the node itself no longer holds.
func TestPublishInvalidatesSearchCache(t *testing.T) {
	p := newTestPeer(t, 0)
	_, ts := newTestServer(t, p, Config{})

	pub := postJSON(t, ts.URL+"/v1/publish", PublishRequest{XML: `<doc>stale bread first</doc>`})
	pub.Body.Close()
	genBefore := p.Directory().Generation()

	q := SearchRequest{Query: "stale", K: 10}
	first := postJSON(t, ts.URL+"/v1/search", q)
	if got := first.Header.Get("X-Planetp-Cache"); got != "miss" {
		t.Fatalf("first search = %q, want miss", got)
	}
	res1 := decodeBody[SearchResponse](t, first)
	if len(res1.Hits) != 1 {
		t.Fatalf("first search hits = %+v, want 1", res1.Hits)
	}
	if got := cacheHeader(t, postJSON(t, ts.URL+"/v1/search", q)); got != "hit" {
		t.Fatalf("warmed search = %q, want hit", got)
	}

	// The invalidating event, through the API like any client.
	pub2 := postJSON(t, ts.URL+"/v1/publish", PublishRequest{XML: `<doc>stale bread second</doc>`})
	if pub2.StatusCode != http.StatusOK {
		t.Fatalf("publish status = %d", pub2.StatusCode)
	}
	pub2.Body.Close()
	if gen := p.Directory().Generation(); gen <= genBefore {
		t.Fatalf("publish did not advance the directory generation (%d -> %d)", genBefore, gen)
	}

	after := postJSON(t, ts.URL+"/v1/search", q)
	if got := after.Header.Get("X-Planetp-Cache"); got != "miss" {
		t.Fatalf("post-publish search = %q, want miss (stale hit!)", got)
	}
	res2 := decodeBody[SearchResponse](t, after)
	if len(res2.Hits) != 2 {
		t.Fatalf("post-publish search hits = %d, want 2 (new doc missing)", len(res2.Hits))
	}
	if res2.Generation <= res1.Generation {
		t.Fatalf("response generation did not advance: %d -> %d", res1.Generation, res2.Generation)
	}

	// And the refreshed answer is itself cacheable again.
	if got := cacheHeader(t, postJSON(t, ts.URL+"/v1/search", q)); got != "hit" {
		t.Fatalf("re-warmed search = %q, want hit", got)
	}
}

// TestBatchPublishInvalidatesSearchCache: the batched ingest route
// invalidates too (one generation bump per batch).
func TestBatchPublishInvalidatesSearchCache(t *testing.T) {
	p := newTestPeer(t, 0)
	_, ts := newTestServer(t, p, Config{})

	if _, err := p.Publish(`<doc>batch invalidation zero</doc>`); err != nil {
		t.Fatal(err)
	}
	q := SearchRequest{Query: "invalidation", K: 10}
	cacheHeader(t, postJSON(t, ts.URL+"/v1/search", q)) // warm
	if got := cacheHeader(t, postJSON(t, ts.URL+"/v1/search", q)); got != "hit" {
		t.Fatalf("warmed search = %q, want hit", got)
	}

	b := postJSON(t, ts.URL+"/v1/publish-batch", PublishBatchRequest{XMLs: []string{
		`<doc>batch invalidation one</doc>`, `<doc>batch invalidation two</doc>`,
	}})
	b.Body.Close()

	after := postJSON(t, ts.URL+"/v1/search", q)
	if got := after.Header.Get("X-Planetp-Cache"); got != "miss" {
		t.Fatalf("post-batch search = %q, want miss", got)
	}
	if res := decodeBody[SearchResponse](t, after); len(res.Hits) != 3 {
		t.Fatalf("post-batch hits = %d, want 3", len(res.Hits))
	}
}
