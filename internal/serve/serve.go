// Package serve is PlanetP's serving tier: a JSON-over-HTTP API fronting
// a live core.Peer, in the "every peer is a web server" style. Each node
// serves its local index and the gossiped global directory to real
// clients:
//
//	POST /v1/search         ranked TFxIPF search
//	POST /v1/publish        publish one XML document
//	POST /v1/publish-batch  publish many documents as one ingest batch
//	GET  /v1/doc/{id}       fetch a document body (local or remote owner)
//	GET  /v1/peers          the directory replica
//	GET  /healthz           liveness + drain status (never sheds)
//	GET  /debug/metrics     the metrics registry as JSON
//
// The tier is built to degrade loudly instead of collapsing:
//
//   - Admission control. A fixed-size in-flight slot pool bounds
//     concurrent request work. When the pool is full, requests are shed
//     immediately with 429 and a Retry-After hint — the goroutine count,
//     memory, and queue delay stay bounded no matter the offered load,
//     and every request receives a response.
//
//   - Result caching. Search responses are memoized keyed on (query
//     terms, options) and stamped with directory.Generation(), exactly
//     like the query engine's IPF cache: any publish, membership change,
//     or on/off-line flip moves the generation and flushes the cache on
//     the next lookup, so a hit can never serve results staler than the
//     node's own view.
//
//   - Graceful drain. Shutdown stops accepting new requests (everything
//     new gets 503, /healthz flips to draining), waits for in-flight
//     requests under a deadline, and returns — after which the caller
//     stops the peer, folding the durable snapshot. No request is
//     abandoned mid-write.
//
// Every route records a latency histogram, and shed/error/cache
// counters plus an in-flight gauge land in the peer's metrics registry
// under serve_* names.
package serve

import (
	"context"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"planetp/internal/core"
	"planetp/internal/metrics"
)

// Config tunes the serving tier. The zero value takes the defaults noted
// on each field.
type Config struct {
	// MaxInFlight bounds concurrently admitted requests across all /v1
	// routes; beyond it requests are shed with 429 (default 256).
	MaxInFlight int
	// RetryAfter is the hint sent with 429 responses (default 1s;
	// rounded up to whole seconds for the header).
	RetryAfter time.Duration
	// CacheEntries bounds the search result cache (default 1024;
	// negative disables caching).
	CacheEntries int
	// DefaultK is the top-k used by searches that do not specify one
	// (default 10).
	DefaultK int
	// MaxBatch bounds documents per publish-batch request (default
	// 1024).
	MaxBatch int
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.DefaultK <= 0 {
		c.DefaultK = 10
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// serveLatencyBounds are the microsecond buckets for per-route
// serve_*_latency_us histograms: spanning sub-millisecond local hits to
// multi-second degraded fan-outs.
var serveLatencyBounds = []int64{
	100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
	100000, 250000, 500000, 1000000, 2500000, 5000000,
}

// Server serves the HTTP API for one peer.
type Server struct {
	peer  *core.Peer
	cfg   Config
	reg   *metrics.Registry
	cache *resultCache

	// slots is the admission semaphore; draining rejects new work
	// before it reaches the pool.
	slots    chan struct{}
	draining atomic.Bool
	httpSrv  *http.Server

	// Instruments are resolved once; handlers do atomic adds only.
	inflight    *metrics.Gauge
	shed        *metrics.Counter
	requests    *metrics.Counter
	errors      *metrics.Counter
	cacheHits   *metrics.Counter
	cacheMisses *metrics.Counter

	// testHook, when set, runs inside every admitted request while its
	// slot is held — a seam for saturating the pool deterministically
	// in tests.
	testHook func(route string)
}

// New builds a server over peer. Metrics go to the peer's registry.
func New(peer *core.Peer, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := peer.Metrics()
	s := &Server{
		peer:        peer,
		cfg:         cfg,
		reg:         reg,
		cache:       newResultCache(cfg.CacheEntries),
		slots:       make(chan struct{}, cfg.MaxInFlight),
		inflight:    reg.Gauge("serve_inflight_requests"),
		shed:        reg.Counter("serve_shed_total"),
		requests:    reg.Counter("serve_requests_total"),
		errors:      reg.Counter("serve_errors_total"),
		cacheHits:   reg.Counter("serve_cache_hits_total"),
		cacheMisses: reg.Counter("serve_cache_misses_total"),
	}
	return s
}

// Handler returns the full route mux (the /v1 API, /healthz, and
// /debug/metrics), ready to mount on any listener.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", s.admit("search", s.handleSearch))
	mux.HandleFunc("POST /v1/publish", s.admit("publish", s.handlePublish))
	mux.HandleFunc("POST /v1/publish-batch", s.admit("publish_batch", s.handlePublishBatch))
	mux.HandleFunc("GET /v1/doc/{id}", s.admit("doc", s.handleDoc))
	mux.HandleFunc("GET /v1/peers", s.admit("peers", s.handlePeers))
	// Liveness and metrics bypass admission: they must answer exactly
	// when the node is saturated or draining — that is what they are
	// for.
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.reg.WriteJSON(w)
	})
	return mux
}

// Serve accepts connections on ln until Shutdown. It always returns a
// non-nil error; after Shutdown the error is http.ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s.httpSrv.Serve(ln)
}

// Shutdown drains the server: new requests are rejected with 503
// immediately, in-flight requests get until the context's deadline to
// finish, then the listener closes. Safe to call without Serve (it then
// only flips the draining flag). The caller stops the peer afterwards —
// draining first means no request can race the peer's final snapshot.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Shutdown(ctx)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight returns the number of currently admitted requests.
func (s *Server) InFlight() int { return len(s.slots) }

// admit wraps a /v1 handler with the admission-control and
// instrumentation envelope: draining → 503; pool full → 429 +
// Retry-After; admitted → per-route counter, in-flight gauge, latency
// histogram. Rejections are instant — no queueing — so under overload
// the node's response time for shed requests stays flat while admitted
// requests keep their normal latency.
func (s *Server) admit(route string, h http.HandlerFunc) http.HandlerFunc {
	routeReqs := s.reg.Counter("serve_" + route + "_requests_total")
	hist := s.reg.Histogram("serve_"+route+"_latency_us", serveLatencyBounds)
	retryAfter := strconv.Itoa(int((s.cfg.RetryAfter + time.Second - 1) / time.Second))
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		routeReqs.Inc()
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		select {
		case s.slots <- struct{}{}:
		default:
			s.shed.Inc()
			w.Header().Set("Retry-After", retryAfter)
			writeError(w, http.StatusTooManyRequests, "overloaded: in-flight limit reached")
			return
		}
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			<-s.slots
		}()
		if s.testHook != nil {
			s.testHook(route)
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		start := time.Now()
		h(w, r)
		hist.Observe(time.Since(start).Microseconds())
	}
}
