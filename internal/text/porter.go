package text

// Porter stemming algorithm (M.F. Porter, "An algorithm for suffix
// stripping", Program 14(3), 1980). This is a from-scratch implementation
// of the original algorithm — the same stemmer the SMART-era collections
// in the paper were evaluated with.
//
// The implementation operates on lowercase ASCII; words containing other
// bytes are returned unchanged.

// Stem returns the Porter stem of a lowercase word.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c < 'a' || c > 'z' {
			return word // digits/mixed tokens pass through unchanged
		}
	}
	w := []byte(word)
	return string(stemSteps(w))
}

// StemBytes stems a lowercase word in place and returns the stem, which
// shares w's storage. No Porter rule ever nets a longer word than its
// input (every replacement suffix is at most as long as the suffix it
// replaces, and step 1b's 'e' restoration follows the removal of a
// longer ending), so the result always fits in w — len(result) <=
// len(w) even when cap(w) == len(w). Words containing bytes outside
// 'a'..'z' are returned unchanged.
func StemBytes(w []byte) []byte {
	if len(w) <= 2 {
		return w
	}
	for i := 0; i < len(w); i++ {
		c := w[i]
		if c < 'a' || c > 'z' {
			return w
		}
	}
	return stemSteps(w)
}

func stemSteps(w []byte) []byte {
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return w
}

// isCons reports whether w[i] is a consonant under Porter's definition:
// a, e, i, o, u are vowels; y is a vowel iff preceded by a consonant.
func isCons(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	default:
		return true
	}
}

// measure computes m, the number of VC sequences in w[:k].
func measure(w []byte) int {
	n, i := 0, 0
	// Skip initial consonants.
	for i < len(w) && isCons(w, i) {
		i++
	}
	for {
		// Skip vowels.
		for i < len(w) && !isCons(w, i) {
			i++
		}
		if i >= len(w) {
			return n
		}
		// Skip consonants: one VC sequence complete.
		for i < len(w) && isCons(w, i) {
			i++
		}
		n++
		if i >= len(w) {
			return n
		}
	}
}

// hasVowel reports whether the stem contains a vowel.
func hasVowel(w []byte) bool {
	for i := range w {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleCons reports whether w ends in a double consonant (e.g. -tt).
func endsDoubleCons(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isCons(w, n-1)
}

// endsCVC reports whether w ends consonant-vowel-consonant where the final
// consonant is not w, x or y (Porter's *o condition).
func endsCVC(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isCons(w, n-3) || isCons(w, n-2) || !isCons(w, n-1) {
		return false
	}
	switch w[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether w ends with s.
func hasSuffix(w []byte, s string) bool {
	if len(w) < len(s) {
		return false
	}
	return string(w[len(w)-len(s):]) == s
}

// replaceSuffix returns w with suffix old replaced by new (caller must have
// checked hasSuffix).
func replaceSuffix(w []byte, old, new string) []byte {
	return append(w[:len(w)-len(old)], new...)
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return replaceSuffix(w, "sses", "ss")
	case hasSuffix(w, "ies"):
		return replaceSuffix(w, "ies", "i")
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w[:len(w)-3]) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	var stem []byte
	switch {
	case hasSuffix(w, "ed") && hasVowel(w[:len(w)-2]):
		stem = w[:len(w)-2]
	case hasSuffix(w, "ing") && hasVowel(w[:len(w)-3]):
		stem = w[:len(w)-3]
	default:
		return w
	}
	// Cleanup after -ed/-ing removal.
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleCons(stem):
		last := stem[len(stem)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return stem[:len(stem)-1]
		}
		return stem
	case measure(stem) == 1 && endsCVC(stem):
		return append(stem, 'e')
	}
	return stem
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w[:len(w)-1]) {
		w[len(w)-1] = 'i'
	}
	return w
}

// suffixRule maps a suffix to its replacement when the stem measure
// condition holds.
type suffixRule struct{ from, to string }

var step2Rules = []suffixRule{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

var step3Rules = []suffixRule{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func applyRules(w []byte, rules []suffixRule, minMeasure int) []byte {
	for _, r := range rules {
		if hasSuffix(w, r.from) {
			stem := w[:len(w)-len(r.from)]
			if measure(stem) > minMeasure-1 {
				return append(stem, r.to...)
			}
			return w
		}
	}
	return w
}

func step2(w []byte) []byte { return applyRules(w, step2Rules, 1) }
func step3(w []byte) []byte { return applyRules(w, step3Rules, 1) }

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stem := w[:len(w)-len(s)]
		if s == "ion" {
			// -ion requires the stem to end in s or t.
			if len(stem) == 0 || (stem[len(stem)-1] != 's' && stem[len(stem)-1] != 't') {
				return w
			}
		}
		if measure(stem) > 1 {
			return stem
		}
		return w
	}
	return w
}

func step5a(w []byte) []byte {
	if !hasSuffix(w, "e") {
		return w
	}
	stem := w[:len(w)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w) > 1 && endsDoubleCons(w) && w[len(w)-1] == 'l' {
		return w[:len(w)-1]
	}
	return w
}
