package text

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseQueryPlain(t *testing.T) {
	got := ParseQuery("the running gossips")
	want := []string{"run", "gossip"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestParseQueryScoped(t *testing.T) {
	got := ParseQuery("title:Gossiping author:smith epidemic")
	want := []string{"title:gossip", "author:smith", "epidem"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestParseQueryScopedStopWordKept(t *testing.T) {
	// Inside a named field, the user said the word deliberately.
	got := ParseQuery("title:the")
	want := []string{"title:the"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestParseQueryDegenerateScopes(t *testing.T) {
	if got := ParseQuery(":word"); len(got) != 1 || got[0] != "word" {
		t.Fatalf("empty tag: %v", got)
	}
	if got := ParseQuery("tag:"); len(got) != 1 || got[0] != "tag" {
		t.Fatalf("empty word: %v", got)
	}
	if got := ParseQuery(":::"); len(got) != 0 {
		t.Fatalf("pure colons: %v", got)
	}
	if got := ParseQuery(""); len(got) != 0 {
		t.Fatalf("empty: %v", got)
	}
}

func TestScopedTermMatchesPipeline(t *testing.T) {
	// The query form must equal the index form: scope lowercased +
	// pipeline-stemmed word.
	if got := ScopedTerm("Title", "Gossiping"); got != "title:gossip" {
		t.Fatalf("ScopedTerm = %q", got)
	}
}

// Property: ParseQuery never returns empty terms and never panics.
func TestQuickParseQueryTotal(t *testing.T) {
	f := func(q string) bool {
		for _, term := range ParseQuery(q) {
			if term == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
