package text

import "strings"

// ScopedTerm renders the index form of a term appearing inside an XML
// element: "tag:stem". This implements the structured extension the paper
// plans in footnote 2 ("We will extend PlanetP to make use of the
// structure provided by XML tags"): documents index each term both bare
// and scoped, so queries can restrict matches to a specific element.
func ScopedTerm(tag, word string) string {
	return strings.ToLower(tag) + ":" + Stem(strings.ToLower(word))
}

// ParseQuery tokenizes a user query, supporting the scoped syntax
// "tag:word" alongside plain words. Plain words pass through the standard
// pipeline (stop-word removal and stemming); scoped words are stemmed but
// kept even if the bare word is a stop word (inside a named field, the
// user said it deliberately).
func ParseQuery(q string) []string {
	var out []string
	for _, field := range strings.Fields(q) {
		tag, word, scoped := strings.Cut(field, ":")
		if scoped && tag != "" && word != "" {
			toks := Tokenize(word)
			tags := Tokenize(tag)
			if len(toks) == 0 || len(tags) == 0 {
				continue
			}
			out = append(out, ScopedTerm(tags[0], toks[0]))
			continue
		}
		for _, tok := range Tokenize(field) {
			if IsStopWord(tok) {
				continue
			}
			if s := Stem(tok); len(s) >= 2 {
				out = append(out, s)
			}
		}
	}
	return out
}
