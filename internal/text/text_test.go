package text

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("Hello, World! Foo-bar baz_42.")
	want := []string{"hello", "world", "foo", "bar", "baz", "42"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestTokenizeDropsShortAndLong(t *testing.T) {
	long := make([]byte, 70)
	for i := range long {
		long[i] = 'a'
	}
	got := Tokenize("a I x ok " + string(long))
	want := []string{"ok"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("Café au Lait; naïve résumé")
	want := []string{"café", "au", "lait", "naïve", "résumé"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// Regression: the 2–64 length bound is in runes, not bytes. A one-rune
// accented token used to slip through (2 bytes >= 2) and a 33..64-rune
// non-ASCII token used to be dropped (>64 bytes).
func TestTokenizeRuneBounds(t *testing.T) {
	if got := Tokenize("é"); len(got) != 0 {
		t.Fatalf("1-rune token %v should be dropped", got)
	}
	long := strings.Repeat("é", 40) // 40 runes, 80 bytes
	if got := Tokenize(long); len(got) != 1 || got[0] != long {
		t.Fatalf("40-rune non-ASCII token mis-filtered: %v", got)
	}
	edge := strings.Repeat("é", 64)
	if got := Tokenize(edge); len(got) != 1 {
		t.Fatalf("64-rune token should be kept: %v", got)
	}
	over := strings.Repeat("é", 65)
	if got := Tokenize(over); len(got) != 0 {
		t.Fatalf("65-rune token should be dropped: %v", got)
	}
	// Uppercase non-ASCII still lowercases.
	if got := Tokenize("ÉTÉ"); len(got) != 1 || got[0] != "été" {
		t.Fatalf("non-ASCII lowercasing broken: %v", got)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("empty input produced %v", got)
	}
	if got := Tokenize("!!! ... ---"); len(got) != 0 {
		t.Fatalf("punctuation produced %v", got)
	}
}

func TestStopWords(t *testing.T) {
	for _, w := range []string{"the", "of", "and", "is", "a"} {
		if !IsStopWord(w) {
			t.Errorf("%q should be a stop word", w)
		}
	}
	for _, w := range []string{"gossip", "bloom", "peer"} {
		if IsStopWord(w) {
			t.Errorf("%q should not be a stop word", w)
		}
	}
	if StopWordCount() < 100 {
		t.Errorf("stop list suspiciously small: %d", StopWordCount())
	}
}

// Porter's published example vectors plus the paper's own example
// (running → run).
func TestPorterVectors(t *testing.T) {
	cases := map[string]string{
		"running":        "run",
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortAndNonASCII(t *testing.T) {
	if got := Stem("at"); got != "at" {
		t.Errorf("short word changed: %q", got)
	}
	if got := Stem("résumé"); got != "résumé" {
		t.Errorf("non-ASCII word changed: %q", got)
	}
	if got := Stem("x86"); got != "x86" {
		t.Errorf("mixed token changed: %q", got)
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	// Stemming is not idempotent in general, but for a realistic
	// vocabulary a second application should rarely change anything.
	words := []string{
		"gossiping", "peers", "communities", "documents", "searching",
		"ranked", "retrieval", "indexes", "replication", "bandwidth",
	}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		if once != twice {
			t.Errorf("Stem not stable for %q: %q -> %q", w, once, twice)
		}
	}
}

// StemBytes must agree with Stem on every vector and work fully in
// place: the stem shares the input's storage and never grows past it.
func TestStemBytesMatchesStem(t *testing.T) {
	words := []string{
		"running", "caresses", "ponies", "relational", "vietnamization",
		"hopping", "filing", "happy", "sensibiliti", "controll",
		"at", "résumé", "x86", "sized", "agreed",
	}
	for _, w := range words {
		buf := []byte(w)
		got := StemBytes(buf)
		if string(got) != Stem(w) {
			t.Errorf("StemBytes(%q) = %q, want %q", w, got, Stem(w))
		}
		if len(got) > len(w) {
			t.Errorf("StemBytes(%q) grew: %d > %d bytes", w, len(got), len(w))
		}
		if len(got) > 0 && &got[0] != &buf[0] {
			t.Errorf("StemBytes(%q) reallocated instead of stemming in place", w)
		}
	}
}

func TestStemBytesProperty(t *testing.T) {
	f := func(raw []byte) bool {
		w := make([]byte, 0, len(raw))
		for _, b := range raw {
			w = append(w, 'a'+b%26)
		}
		if len(w) == 0 {
			return true
		}
		want := Stem(string(w))
		// Full-capacity slice: in-place stemming may not write past len.
		got := StemBytes(w[:len(w):len(w)])
		return string(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// A reused Analyzer must produce the same output as the one-shot
// package functions, and its steady state must not allocate per token.
func TestAnalyzerReuse(t *testing.T) {
	docs := []string{
		"The runners were running quickly through the gossiping communities",
		"Bloom filters summarize each peer's inverted index",
		"café au lait; naïve résumé",
		"running gossip running gossip",
	}
	var a Analyzer
	for _, d := range docs {
		if got, want := a.Terms(d, nil), Terms(d); !reflect.DeepEqual(got, want) {
			t.Fatalf("Analyzer.Terms(%q) = %v, want %v", d, got, want)
		}
		if got, want := a.TermFreqs(d, nil), TermFreqs(d); !reflect.DeepEqual(got, want) {
			t.Fatalf("Analyzer.TermFreqs(%q) = %v, want %v", d, got, want)
		}
	}
	// Steady state: same vocabulary, reused destination map — zero allocs.
	doc := docs[0]
	m := a.TermFreqs(doc, nil)
	allocs := testing.AllocsPerRun(100, func() {
		for k := range m {
			delete(m, k)
		}
		a.TermFreqs(doc, m)
	})
	if allocs > 0 {
		t.Errorf("steady-state TermFreqs allocates %.0f times per doc, want 0", allocs)
	}
}

func TestMeasure(t *testing.T) {
	cases := map[string]int{
		"tr": 0, "ee": 0, "tree": 0, "y": 0, "by": 0,
		"trouble": 1, "oats": 1, "trees": 1, "ivy": 1,
		"troubles": 2, "private": 2, "oaten": 2, "orrery": 2,
	}
	for in, want := range cases {
		if got := measure([]byte(in)); got != want {
			t.Errorf("measure(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestEndsCVC(t *testing.T) {
	if !endsCVC([]byte("hop")) {
		t.Error("hop should be CVC")
	}
	for _, w := range []string{"snow", "box", "tray", "ee"} {
		if endsCVC([]byte(w)) {
			t.Errorf("%q should not satisfy *o", w)
		}
	}
}

func TestTermsPipeline(t *testing.T) {
	got := Terms("The runners were running quickly through the gossiping communities")
	// "the", "were", "through" are stop words; rest are stemmed.
	want := []string{"runner", "run", "quickli", "gossip", "commun"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestTermFreqs(t *testing.T) {
	freqs := TermFreqs("gossip gossip peers peer")
	if freqs["gossip"] != 2 {
		t.Errorf("gossip count = %d, want 2", freqs["gossip"])
	}
	if freqs["peer"] != 2 {
		t.Errorf("peer count = %d (stems of peers+peer), want 2", freqs["peer"])
	}
}

// Property: Stem never panics and never returns the empty string for
// non-empty alphabetic input.
func TestQuickStemTotal(t *testing.T) {
	f := func(raw []byte) bool {
		w := make([]byte, 0, len(raw))
		for _, b := range raw {
			w = append(w, 'a'+b%26)
		}
		if len(w) == 0 {
			return true
		}
		s := Stem(string(w))
		return len(s) > 0 && len(s) <= len(w)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the pipeline output contains no stop words and only non-empty
// terms.
func TestQuickTermsClean(t *testing.T) {
	f := func(s string) bool {
		for _, term := range Terms(s) {
			if term == "" || IsStopWord(term) && Stem(term) == term {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"running", "relational", "gossiping", "communities", "effectiveness"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}

func BenchmarkTerms(b *testing.B) {
	doc := "PlanetP uses gossiping to replicate the global directory and " +
		"Bloom filters summarizing each peer's inverted index across the community"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Terms(doc)
	}
}
