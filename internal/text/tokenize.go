// Package text implements the preprocessing pipeline the paper applies to
// every document collection before indexing (Section 7.3): tokenization,
// stop-word removal, and stemming with the Porter algorithm ("the former
// tries to eliminate frequently used words like the, of, etc. and the
// second tries to conflate words to their root, e.g. running becomes run").
package text

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token length bounds, in runes: single letters carry no retrieval signal
// and unbounded tokens are usually markup debris.
const (
	minTokenRunes = 2
	maxTokenRunes = 64
)

// Analyzer runs the tokenize → stop-word → stem pipeline with a reusable
// token buffer and a term intern table, so a long-lived worker allocates
// once per distinct term it ever sees — not per occurrence. The zero
// value is ready to use. An Analyzer is not safe for concurrent use;
// give each worker its own.
type Analyzer struct {
	tok    []byte            // current-token scratch, lowercase UTF-8
	intern map[string]string // canonical term strings (bounded by vocabulary)
}

// internTerm returns the canonical string for the term bytes. The map
// lookup with a string([]byte) key does not allocate; only the first
// sighting of a term pays for its string.
func (a *Analyzer) internTerm(b []byte) string {
	if s, ok := a.intern[string(b)]; ok {
		return s
	}
	if a.intern == nil {
		a.intern = make(map[string]string)
	}
	s := string(b)
	a.intern[s] = s
	return s
}

// scan splits s into lowercase tokens of minTokenRunes..maxTokenRunes
// runes and calls yield with each. The yielded slice is the analyzer's
// scratch buffer: valid only until yield returns, and safe to mutate or
// shrink in place (stemming does both).
//
// ASCII — the overwhelming majority of indexed text — is handled
// byte-at-a-time with arithmetic lowercasing; only bytes >= 0x80 pay for
// rune decoding and unicode.ToLower.
func (a *Analyzer) scan(s string, yield func(tok []byte)) {
	tok := a.tok[:0]
	runes := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			i++
			switch {
			case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
				tok = append(tok, c)
				runes++
				continue
			case c >= 'A' && c <= 'Z':
				tok = append(tok, c+('a'-'A'))
				runes++
				continue
			}
		} else {
			r, n := utf8.DecodeRuneInString(s[i:])
			i += n
			if unicode.IsLetter(r) || unicode.IsDigit(r) {
				tok = utf8.AppendRune(tok, unicode.ToLower(r))
				runes++
				continue
			}
		}
		// Separator: emit the pending token.
		if runes >= minTokenRunes && runes <= maxTokenRunes {
			yield(tok)
		}
		tok = tok[:0]
		runes = 0
	}
	if runes >= minTokenRunes && runes <= maxTokenRunes {
		yield(tok)
	}
	a.tok = tok[:0] // keep the grown buffer for the next document
}

// Terms appends the document's full term stream — tokenized, stop words
// dropped, stemmed — to dst and returns it. This is the exact stream
// PlanetP feeds into inverted indexes and Bloom filters.
func (a *Analyzer) Terms(s string, dst []string) []string {
	a.scan(s, func(tok []byte) {
		if _, stop := stopWords[string(tok)]; stop {
			return
		}
		st := StemBytes(tok)
		if len(st) >= minTokenRunes {
			dst = append(dst, a.internTerm(st))
		}
	})
	return dst
}

// TermFreqs accumulates the document's term → occurrence counts into dst
// (allocated when nil) and returns it, the unit the inverted index
// stores. Only first occurrences of a term allocate — repeat hits
// resolve through the map's no-copy string([]byte) lookup path.
func (a *Analyzer) TermFreqs(s string, dst map[string]int) map[string]int {
	if dst == nil {
		dst = make(map[string]int)
	}
	a.scan(s, func(tok []byte) {
		if _, stop := stopWords[string(tok)]; stop {
			return
		}
		st := StemBytes(tok)
		if len(st) < minTokenRunes {
			return
		}
		dst[a.internTerm(st)]++
	})
	return dst
}

// Tokenize splits s into lowercase alphanumeric tokens. Everything that is
// not a letter or digit separates tokens; tokens shorter than 2 runes or
// longer than 64 runes are discarded.
func Tokenize(s string) []string {
	var a Analyzer
	var out []string
	a.scan(s, func(tok []byte) {
		out = append(out, string(tok))
	})
	return out
}

// stopWords is the classic SMART-derived short stop list: high-frequency
// function words that carry no content signal.
var stopWords = map[string]struct{}{}

func init() {
	for _, w := range strings.Fields(`
		a about above after again against all am an and any are as at be
		because been before being below between both but by can did do does
		doing down during each few for from further had has have having he
		her here hers herself him himself his how if in into is it its
		itself just me more most my myself no nor not now of off on once
		only or other our ours ourselves out over own same she should so
		some such than that the their theirs them themselves then there
		these they this those through to too under until up very was we
		were what when where which while who whom why will with you your
		yours yourself yourselves shall may might must would could also
		however thus therefore hence upon via et al`) {
		stopWords[w] = struct{}{}
	}
}

// IsStopWord reports whether the (lowercase) token is on the stop list.
func IsStopWord(tok string) bool {
	_, ok := stopWords[tok]
	return ok
}

// StopWordCount returns the size of the built-in stop list (exposed for
// tests and diagnostics).
func StopWordCount() int { return len(stopWords) }

// Terms runs the full pipeline: tokenize, drop stop words, stem.
func Terms(s string) []string {
	var a Analyzer
	return a.Terms(s, nil)
}

// TermFreqs runs the pipeline and returns term → occurrence-count for one
// document.
func TermFreqs(s string) map[string]int {
	var a Analyzer
	return a.TermFreqs(s, nil)
}
