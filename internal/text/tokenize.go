// Package text implements the preprocessing pipeline the paper applies to
// every document collection before indexing (Section 7.3): tokenization,
// stop-word removal, and stemming with the Porter algorithm ("the former
// tries to eliminate frequently used words like the, of, etc. and the
// second tries to conflate words to their root, e.g. running becomes run").
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lowercase alphanumeric tokens. Everything that is
// not a letter or digit separates tokens; tokens shorter than 2 runes or
// longer than 64 are discarded (single letters carry no retrieval signal
// and unbounded tokens are usually markup debris).
func Tokenize(s string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if n := b.Len(); n >= 2 && n <= 64 {
			out = append(out, b.String())
		}
		b.Reset()
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return out
}

// stopWords is the classic SMART-derived short stop list: high-frequency
// function words that carry no content signal.
var stopWords = map[string]struct{}{}

func init() {
	for _, w := range strings.Fields(`
		a about above after again against all am an and any are as at be
		because been before being below between both but by can did do does
		doing down during each few for from further had has have having he
		her here hers herself him himself his how if in into is it its
		itself just me more most my myself no nor not now of off on once
		only or other our ours ourselves out over own same she should so
		some such than that the their theirs them themselves then there
		these they this those through to too under until up very was we
		were what when where which while who whom why will with you your
		yours yourself yourselves shall may might must would could also
		however thus therefore hence upon via et al`) {
		stopWords[w] = struct{}{}
	}
}

// IsStopWord reports whether the (lowercase) token is on the stop list.
func IsStopWord(tok string) bool {
	_, ok := stopWords[tok]
	return ok
}

// StopWordCount returns the size of the built-in stop list (exposed for
// tests and diagnostics).
func StopWordCount() int { return len(stopWords) }

// Terms runs the full pipeline: tokenize, drop stop words, stem. This is
// the exact term stream PlanetP feeds into inverted indexes and Bloom
// filters.
func Terms(s string) []string {
	toks := Tokenize(s)
	out := toks[:0]
	for _, tok := range toks {
		if IsStopWord(tok) {
			continue
		}
		stemmed := Stem(tok)
		if len(stemmed) >= 2 {
			out = append(out, stemmed)
		}
	}
	return out
}

// TermFreqs runs the pipeline and returns term → occurrence-count for one
// document, the unit the inverted index stores.
func TermFreqs(s string) map[string]int {
	freqs := make(map[string]int)
	for _, t := range Terms(s) {
		freqs[t]++
	}
	return freqs
}
