// Package chash implements the consistent-hashing ring PlanetP's
// information brokerage service uses to partition the key space among
// brokers (Section 4): each active member chooses a unique broker ID from
// a predetermined range [0, maxID); members arrange themselves into a ring
// by ID; a key maps to the broker whose ID is the least successor of
// H(key) mod maxID on the ring.
package chash

import (
	"crypto/sha1"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
)

// MaxID is the predetermined ID range (0 to maxID).
const MaxID = uint32(1) << 31

// Hash maps a key into the ID space.
func Hash(key string) uint32 {
	sum := sha1.Sum([]byte(key))
	return binary.BigEndian.Uint32(sum[:4]) % MaxID
}

// IDForMember derives a stable broker ID for a member name (used when
// members do not pick IDs explicitly).
func IDForMember(name string) uint32 {
	sum := sha1.Sum([]byte("broker:" + name))
	return binary.BigEndian.Uint32(sum[4:8]) % MaxID
}

// IDForPeer derives a ring ID from a numeric peer id. The id is rendered
// in decimal — the canonical formatting every layer (brokerage, replica
// placement, the simulators) must share so they compute the same ring. A
// string(rune(id)) conversion here would collapse every id ≥ 0xD800 to
// U+FFFD (all such peers landing on ONE ring point) and alias distinct
// ids mapping to the same code point; see the collision regression test.
func IDForPeer(id int32) uint32 {
	return IDForMember(strconv.Itoa(int(id)) + "#planetp")
}

// Ring is a thread-safe consistent-hashing ring mapping IDs to opaque
// member values.
type Ring[V any] struct {
	mu      sync.RWMutex
	ids     []uint32 // sorted
	members map[uint32]V
}

// NewRing returns an empty ring.
func NewRing[V any]() *Ring[V] {
	return &Ring[V]{members: make(map[uint32]V)}
}

// Join adds a member under id, returning false if the id is taken (the
// paper requires unique broker IDs; callers should rehash on collision).
func (r *Ring[V]) Join(id uint32, v V) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.members[id]; exists {
		return false
	}
	r.members[id] = v
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= id })
	r.ids = append(r.ids, 0)
	copy(r.ids[i+1:], r.ids[i:])
	r.ids[i] = id
	return true
}

// Leave removes a member, reporting whether it was present.
func (r *Ring[V]) Leave(id uint32) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.members[id]; !exists {
		return false
	}
	delete(r.members, id)
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= id })
	r.ids = append(r.ids[:i], r.ids[i+1:]...)
	return true
}

// Len returns the member count.
func (r *Ring[V]) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ids)
}

// successorIndex returns the index of the least id >= h, wrapping.
func (r *Ring[V]) successorIndex(h uint32) (int, bool) {
	if len(r.ids) == 0 {
		return 0, false
	}
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= h })
	if i == len(r.ids) {
		i = 0 // wrap to the smallest id
	}
	return i, true
}

// Successor returns the member owning hash value h (its least successor
// on the ring).
func (r *Ring[V]) Successor(h uint32) (id uint32, v V, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i, ok := r.successorIndex(h)
	if !ok {
		var zero V
		return 0, zero, false
	}
	id = r.ids[i]
	return id, r.members[id], true
}

// Lookup maps a key to its broker.
func (r *Ring[V]) Lookup(key string) (id uint32, v V, ok bool) {
	return r.Successor(Hash(key))
}

// Successors returns up to n distinct members starting at the owner of h
// (used for replication of brokered snippets).
func (r *Ring[V]) Successors(h uint32, n int) []V {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i, ok := r.successorIndex(h)
	if !ok {
		return nil
	}
	if n > len(r.ids) {
		n = len(r.ids)
	}
	out := make([]V, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, r.members[r.ids[(i+k)%len(r.ids)]])
	}
	return out
}

// Range returns the half-open arc (pred, id] owned by member id, i.e. the
// hash values it is responsible for. wrapped reports whether the arc wraps
// through 0. ok is false if id is not a member.
func (r *Ring[V]) Range(id uint32) (lo, hi uint32, wrapped, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if _, exists := r.members[id]; !exists {
		return 0, 0, false, false
	}
	if len(r.ids) == 1 {
		// Sole member owns everything.
		return id + 1, id, true, true
	}
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= id })
	pred := r.ids[(i-1+len(r.ids))%len(r.ids)]
	lo = pred + 1
	hi = id
	return lo, hi, pred > id, true
}

// Owns reports whether member id owns hash value h.
func (r *Ring[V]) Owns(id uint32, h uint32) bool {
	oid, _, ok := r.Successor(h)
	return ok && oid == id
}

// IDs returns the sorted member ids (a copy).
func (r *Ring[V]) IDs() []uint32 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]uint32(nil), r.ids...)
}
