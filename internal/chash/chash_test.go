package chash

import (
	"fmt"
	"strconv"
	"testing"
	"testing/quick"
)

func TestHashStableAndInRange(t *testing.T) {
	if Hash("x") != Hash("x") {
		t.Fatal("hash not deterministic")
	}
	if Hash("x") == Hash("y") && Hash("a") == Hash("b") {
		t.Fatal("suspiciously colliding hash")
	}
	for _, k := range []string{"", "a", "planetp", "key with spaces"} {
		if Hash(k) >= MaxID {
			t.Fatalf("Hash(%q) out of range", k)
		}
		if IDForMember(k) >= MaxID {
			t.Fatalf("IDForMember(%q) out of range", k)
		}
	}
}

// Regression: ring keys for numeric peer ids must be derived from the
// DECIMAL rendering of the id, never string(rune(id)). The rune
// conversion collapses every id in the surrogate range and beyond
// (≥ 0xD800) to U+FFFD — all such peers would land on one ring point —
// and aliases any two ids mapping to the same code point.
func TestIDForPeerNoSurrogateCollisions(t *testing.T) {
	ids := []int32{0xD7FF, 0xD800, 0xD801, 0xDBFF, 0xDC00, 0xDFFF, 0xE000, 0xFFFD, 0x10FFFF, 0x110000}
	seen := make(map[uint32]int32, len(ids))
	for _, id := range ids {
		rid := IDForPeer(id)
		if rid >= MaxID {
			t.Fatalf("IDForPeer(%#x) = %d out of range", id, rid)
		}
		if prev, dup := seen[rid]; dup {
			t.Fatalf("IDForPeer collision: ids %#x and %#x both map to ring id %d", prev, id, rid)
		}
		seen[rid] = id
	}
	// The derivation is pinned to the decimal rendering: every layer
	// (core brokerage, replica placement, the simulators) computes the
	// same ring from the same peer ids.
	for _, id := range ids {
		if IDForPeer(id) != IDForMember(strconv.Itoa(int(id))+"#planetp") {
			t.Fatalf("IDForPeer(%d) diverges from the canonical decimal derivation", id)
		}
	}
}

func TestJoinLeaveLen(t *testing.T) {
	r := NewRing[string]()
	if r.Len() != 0 {
		t.Fatal("fresh ring not empty")
	}
	if !r.Join(10, "a") || !r.Join(20, "b") {
		t.Fatal("join failed")
	}
	if r.Join(10, "dup") {
		t.Fatal("duplicate id accepted")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if !r.Leave(10) || r.Leave(10) {
		t.Fatal("leave semantics broken")
	}
	if r.Len() != 1 {
		t.Fatalf("Len after leave = %d", r.Len())
	}
}

func TestSuccessorLeastSuccessorSemantics(t *testing.T) {
	r := NewRing[string]()
	r.Join(100, "a")
	r.Join(200, "b")
	r.Join(300, "c")
	cases := map[uint32]string{
		0: "a", 100: "a", 101: "b", 200: "b", 250: "c", 300: "c",
		301:       "a", // wraps
		MaxID - 1: "a",
	}
	for h, want := range cases {
		_, v, ok := r.Successor(h)
		if !ok || v != want {
			t.Errorf("Successor(%d) = %q,%v want %q", h, v, ok, want)
		}
	}
}

func TestSuccessorEmpty(t *testing.T) {
	r := NewRing[int]()
	if _, _, ok := r.Successor(5); ok {
		t.Fatal("empty ring returned a successor")
	}
	if _, _, ok := r.Lookup("k"); ok {
		t.Fatal("empty ring lookup succeeded")
	}
	if r.Successors(1, 3) != nil {
		t.Fatal("empty ring successors")
	}
}

func TestSuccessorsReplicas(t *testing.T) {
	r := NewRing[string]()
	r.Join(100, "a")
	r.Join(200, "b")
	r.Join(300, "c")
	got := r.Successors(150, 2)
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("Successors = %v", got)
	}
	// n larger than membership is clamped and wraps.
	got = r.Successors(250, 5)
	if len(got) != 3 || got[0] != "c" || got[1] != "a" || got[2] != "b" {
		t.Fatalf("clamped Successors = %v", got)
	}
}

func TestRangeAndOwns(t *testing.T) {
	r := NewRing[string]()
	r.Join(100, "a")
	r.Join(200, "b")
	lo, hi, wrapped, ok := r.Range(200)
	if !ok || lo != 101 || hi != 200 || wrapped {
		t.Fatalf("Range(200) = %d %d %v %v", lo, hi, wrapped, ok)
	}
	lo, hi, wrapped, ok = r.Range(100)
	if !ok || lo != 201 || hi != 100 || !wrapped {
		t.Fatalf("Range(100) = %d %d %v %v", lo, hi, wrapped, ok)
	}
	if _, _, _, ok := r.Range(999); ok {
		t.Fatal("Range of non-member succeeded")
	}
	if !r.Owns(200, 150) || r.Owns(100, 150) {
		t.Fatal("Owns inconsistent with Successor")
	}
	// Single member owns the whole space.
	solo := NewRing[string]()
	solo.Join(42, "x")
	if _, _, wrapped, ok := solo.Range(42); !ok || !wrapped {
		t.Fatal("solo range should wrap")
	}
	if !solo.Owns(42, 0) || !solo.Owns(42, MaxID-1) {
		t.Fatal("solo member must own everything")
	}
}

func TestIDsSorted(t *testing.T) {
	r := NewRing[int]()
	for _, id := range []uint32{500, 10, 300, 200} {
		r.Join(id, 0)
	}
	ids := r.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatalf("ids not sorted: %v", ids)
		}
	}
}

func TestDistributionRoughlyBalanced(t *testing.T) {
	r := NewRing[int]()
	const members = 64
	for i := 0; i < members; i++ {
		r.Join(IDForMember(fmt.Sprintf("m%d", i)), i)
	}
	counts := make(map[int]int)
	const keys = 20000
	for i := 0; i < keys; i++ {
		_, m, _ := r.Lookup(fmt.Sprintf("key-%d", i))
		counts[m]++
	}
	// No member should own an egregious share (consistent hashing with
	// one virtual node per member is uneven, but bounded in practice).
	for m, c := range counts {
		if c > keys/4 {
			t.Fatalf("member %d owns %d/%d keys", m, c, keys)
		}
	}
}

// Property: every hash value has exactly one owner, and removing that
// owner moves only its keys (the consistent-hashing property).
func TestQuickConsistency(t *testing.T) {
	f := func(idsRaw []uint16, probe uint32) bool {
		if len(idsRaw) == 0 {
			return true
		}
		r := NewRing[uint32]()
		for _, raw := range idsRaw {
			r.Join(uint32(raw), uint32(raw))
		}
		h := probe % MaxID
		owner1, _, ok := r.Successor(h)
		if !ok {
			return false
		}
		// Remove a non-owner: the owner must not change.
		for _, raw := range idsRaw {
			id := uint32(raw)
			if id != owner1 {
				r.Leave(id)
				owner2, _, ok := r.Successor(h)
				if !ok || owner2 != owner1 {
					return false
				}
				r.Join(id, id)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
