package pfs

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"planetp/internal/core"
	"planetp/internal/directory"
	"planetp/internal/gossip"
)

func fastGossip() gossip.Config {
	return gossip.Config{
		BaseInterval: 25 * time.Millisecond,
		MaxInterval:  100 * time.Millisecond,
		SlowdownStep: 25 * time.Millisecond,
	}
}

func livePFS(t *testing.T, n int) []*FS {
	t.Helper()
	out := make([]*FS, n)
	var seedAddr string
	for i := 0; i < n; i++ {
		p, err := core.NewPeer(core.Config{
			ID: directory.PeerID(i), Capacity: n,
			Gossip:        fastGossip(),
			Seed:          int64(i + 1),
			BrokerTopFrac: 0.1,
			BrokerDiscard: 10 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Stop)
		if i == 0 {
			seedAddr = p.Addr()
		} else if err := p.Join(seedAddr); err != nil {
			t.Fatal(err)
		}
		fs, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(fs.Close)
		out[i] = fs
		p.Start()
	}
	// Wait for membership.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, fs := range out {
			if fs.peer.Directory().NumKnown() != n {
				ok = false
			}
		}
		if ok {
			return out
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("membership did not converge")
	return nil
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestPublishFileAndServe(t *testing.T) {
	fss := livePFS(t, 2)
	tmp := t.TempDir()
	path := writeFile(t, tmp, "notes.txt", "gossiping replicates directories everywhere")
	d, err := fss[0].PublishFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID == "" {
		t.Fatal("no doc id")
	}
	// The File Server must serve the exported URL.
	url := fss[0].URLFor(path)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "gossiping replicates directories everywhere" {
		t.Fatalf("served %q", body)
	}
	// Unknown ids 404.
	resp2, err := http.Get(url + "bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d for unknown file", resp2.StatusCode)
	}
}

func TestSemanticDirectoryFills(t *testing.T) {
	fss := livePFS(t, 3)
	tmp := t.TempDir()
	dir := fss[2].MkDir("kernel scheduler")

	// Publish matching and non-matching files at other peers.
	fss[0].PublishFile(writeFile(t, tmp, "sched.txt", "the kernel scheduler balances runqueues"))
	fss[1].PublishFile(writeFile(t, tmp, "recipe.txt", "tomato soup with basil"))

	waitFor(t, 15*time.Second, "directory to fill", func() bool { return dir.Len() >= 1 })
	entries := dir.Open()
	if len(entries) != 1 || entries[0].Name != "sched.txt" {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].URL == "" || entries[0].Peer != 0 {
		t.Fatalf("entry metadata: %+v", entries[0])
	}
	// The listed URL must be fetchable from the owner's File Server.
	resp, err := http.Get(entries[0].URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s -> %d", entries[0].URL, resp.StatusCode)
	}
}

func TestDirectoryStaleRebuildDropsRemoved(t *testing.T) {
	fss := livePFS(t, 2)
	tmp := t.TempDir()
	path := writeFile(t, tmp, "gone.txt", "ephemeral matter vanishes quickly")
	d0, err := fss[0].PublishFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := fss[1].MkDir("ephemeral matter")
	waitFor(t, 15*time.Second, "entry to appear", func() bool { return dir.Len() == 1 })

	// Owner unpublishes; a stale Open must re-run the query and drop it.
	if !fss[0].peer.Remove(d0.ID) {
		t.Fatal("remove failed")
	}
	fss[1].StaleThreshold = 0 // every Open is stale
	waitFor(t, 15*time.Second, "entry to disappear", func() bool {
		return len(dir.Open()) == 0
	})
}

func TestRefineCreatesSubdirectory(t *testing.T) {
	fss := livePFS(t, 2)
	parent := fss[0].MkDir("distributed")
	child := parent.Refine("hashing")
	if child.Query != "distributed hashing" {
		t.Fatalf("refined query = %q", child.Query)
	}
	// Same query returns the same directory object.
	again := fss[0].MkDir("distributed hashing")
	if again != child {
		t.Fatal("MkDir not idempotent per query")
	}
}

func TestMkDirSeesPreexistingFiles(t *testing.T) {
	fss := livePFS(t, 2)
	tmp := t.TempDir()
	fss[0].PublishFile(writeFile(t, tmp, "old.txt", "ancient manuscripts survive digitization"))
	// Wait for gossip so peer 1's directory has the filter.
	waitFor(t, 15*time.Second, "filter propagation", func() bool {
		return len(fss[1].peer.SearchAll("ancient manuscripts")) == 1
	})
	dir := fss[1].MkDir("ancient manuscripts")
	waitFor(t, 15*time.Second, "pre-existing file listed", func() bool {
		return dir.Len() == 1
	})
	if got := dir.Open(); len(got) != 1 || got[0].Name != "old.txt" {
		t.Fatalf("entries = %+v", got)
	}
}

func TestPublishFileErrors(t *testing.T) {
	fss := livePFS(t, 2)
	if _, err := fss[0].PublishFile("/no/such/file.txt"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// PublishFiles shares a whole set of files in one batched publish; every
// file becomes searchable and fetchable, and a missing path fails the
// batch before anything is published.
func TestPublishFilesBatch(t *testing.T) {
	fss := livePFS(t, 2)
	dir := t.TempDir()
	paths := make([]string, 5)
	for i := range paths {
		paths[i] = filepath.Join(dir, "note"+string(rune('a'+i))+".txt")
		body := "batched corpus shared vocabulary item " + string(rune('a'+i))
		if err := os.WriteFile(paths[i], []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	docs, err := fss[0].PublishFiles(paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != len(paths) {
		t.Fatalf("published %d docs for %d paths", len(docs), len(paths))
	}
	if got := fss[0].peer.LocalDocs(); got != len(paths) {
		t.Fatalf("LocalDocs = %d, want %d", got, len(paths))
	}

	// The other peer's semantic directory fills with the whole batch.
	d := fss[1].MkDir("batched corpus")
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && d.Len() < len(paths) {
		time.Sleep(10 * time.Millisecond)
	}
	entries := d.Open()
	if len(entries) != len(paths) {
		t.Fatalf("directory has %d entries, want %d", len(entries), len(paths))
	}
	resp, err := http.Get(entries[0].URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if len(body) == 0 {
		t.Fatal("served file is empty")
	}

	// A missing path fails the whole batch atomically.
	before := fss[1].peer.LocalDocs()
	if _, err := fss[1].PublishFiles([]string{paths[0], "/no/such/file.txt"}); err == nil {
		t.Fatal("batch with a missing file accepted")
	}
	if fss[1].peer.LocalDocs() != before {
		t.Fatal("failed batch published something")
	}
}
