// Package pfs implements PFS, the personal semantic file system of
// Section 6: files live in the local file system; publishing a file makes
// it content-searchable by the whole community; directories are defined
// by queries and fill themselves via PlanetP's persistent-query upcalls.
//
// PFS has the paper's three components: the File Server (a minimal HTTP
// server that maps local paths to URLs and serves file contents), the PFS
// Core (publication and directory logic, this package), and the Explorer
// GUI — which we replace with the programmatic API plus the interactive
// cmd/planetp-node shell, the only substitution in this subsystem.
package pfs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/xml"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"planetp/internal/core"
	"planetp/internal/directory"
	"planetp/internal/doc"
	"planetp/internal/search"
)

// Entry is one file visible in a semantic directory.
type Entry struct {
	// Name is the file's base name as published.
	Name string
	// URL serves the file's content from its owner's File Server.
	URL string
	// Key is the PlanetP document key of the file's snippet.
	Key string
	// Peer is the owner.
	Peer directory.PeerID
}

// FS is one user's PFS instance on top of a PlanetP peer.
type FS struct {
	peer *core.Peer

	// File server state.
	httpLn  net.Listener
	httpSrv *http.Server
	filesMu sync.Mutex
	files   map[string]string // file id -> local path

	dirsMu sync.Mutex
	dirs   map[string]*Dir

	// StaleThreshold forces a full re-query when a directory is opened
	// after being idle this long (the paper's removal strategy).
	StaleThreshold time.Duration
	clock          func() time.Time
}

// New mounts a PFS over peer and starts its File Server on loopback.
func New(peer *core.Peer) (*FS, error) {
	fs := &FS{
		peer:           peer,
		files:          make(map[string]string),
		dirs:           make(map[string]*Dir),
		StaleThreshold: time.Minute,
		clock:          time.Now,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("pfs: file server: %w", err)
	}
	fs.httpLn = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/files/", fs.serveFile)
	fs.httpSrv = &http.Server{Handler: mux}
	go fs.httpSrv.Serve(ln)
	return fs, nil
}

// Close shuts down the File Server (the peer is owned by the caller).
func (fs *FS) Close() {
	_ = fs.httpSrv.Close()
	fs.dirsMu.Lock()
	defer fs.dirsMu.Unlock()
	for _, d := range fs.dirs {
		d.cancel()
	}
}

// fileID derives the stable id a path serves under.
func fileID(path string) string {
	sum := sha256.Sum256([]byte(path))
	return hex.EncodeToString(sum[:8])
}

// URLFor returns the URL the File Server exports path under (the paper's
// "return a URL when given a local pathname").
func (fs *FS) URLFor(path string) string {
	id := fileID(path)
	fs.filesMu.Lock()
	fs.files[id] = path
	fs.filesMu.Unlock()
	return fmt.Sprintf("http://%s/files/%s", fs.httpLn.Addr(), id)
}

// serveFile answers GET /files/<id> with the file's content.
func (fs *FS) serveFile(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/files/")
	fs.filesMu.Lock()
	path, ok := fs.files[id]
	fs.filesMu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	http.ServeFile(w, r, path)
}

// fileSnippet is the XML form a published file takes.
type fileSnippet struct {
	XMLName xml.Name `xml:"pfsfile"`
	Name    string   `xml:"name,attr"`
	Href    string   `xml:"href,attr"`
	Content string   `xml:",chardata"`
}

// snippetXML reads a local file and renders its published XML form.
func (fs *FS) snippetXML(path string) (string, error) {
	content, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("pfs: %w", err)
	}
	sn := fileSnippet{
		Name:    filepath.Base(path),
		Href:    fs.URLFor(path),
		Content: string(content),
	}
	raw, err := xml.Marshal(sn)
	if err != nil {
		return "", fmt.Errorf("pfs: %w", err)
	}
	return string(raw), nil
}

// PublishFile shares a local file: the File Server exports it, an XML
// snippet embedding its URL and content is published to PlanetP (which
// indexes it and, with dual publication enabled on the peer, pushes its
// top terms to the brokerage).
func (fs *FS) PublishFile(path string) (*doc.Document, error) {
	raw, err := fs.snippetXML(path)
	if err != nil {
		return nil, err
	}
	return fs.peer.Publish(raw)
}

// PublishFiles shares many local files as one batched publish: all
// snippets are built first, then committed, indexed, and gossiped as a
// single filter update (core.Peer.PublishBatch) — the fast path for
// sharing a whole directory tree. The returned documents are
// index-aligned with paths; any unreadable file fails the batch before
// anything is published.
func (fs *FS) PublishFiles(paths []string) ([]*doc.Document, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	xmls := make([]string, len(paths))
	for i, path := range paths {
		raw, err := fs.snippetXML(path)
		if err != nil {
			return nil, err
		}
		xmls[i] = raw
	}
	return fs.peer.PublishBatch(xmls)
}

// Dir is a semantic directory: the set of community files matching a
// query, kept current by persistent-query upcalls plus staleness-driven
// re-queries.
type Dir struct {
	// Query defines the directory.
	Query string

	fs     *FS
	mu     sync.Mutex
	byKey  map[string]Entry
	last   time.Time
	cancel func()
}

// MkDir creates (or returns) the semantic directory for query. Matching
// files appear automatically as their publications gossip in.
func (fs *FS) MkDir(query string) *Dir {
	fs.dirsMu.Lock()
	if d, ok := fs.dirs[query]; ok {
		fs.dirsMu.Unlock()
		return d
	}
	d := &Dir{Query: query, fs: fs, byKey: make(map[string]Entry), last: fs.clock()}
	fs.dirs[query] = d
	fs.dirsMu.Unlock()
	d.cancel = fs.peer.PostPersistentQuery(query, d.add)
	return d
}

// Refine creates the subdirectory for an additional query term set —
// equivalent to refining the containing directory's query (Section 6).
func (d *Dir) Refine(subquery string) *Dir {
	return d.fs.MkDir(strings.TrimSpace(d.Query + " " + subquery))
}

// add processes one persistent-query upcall.
func (d *Dir) add(res search.DocResult) {
	entry, ok := d.fs.entryFor(res)
	if !ok {
		return
	}
	d.mu.Lock()
	d.byKey[res.Key] = entry
	d.last = d.fs.clock()
	d.mu.Unlock()
}

// entryFor fetches and parses a result's snippet into an Entry.
func (fs *FS) entryFor(res search.DocResult) (Entry, bool) {
	raw, err := fs.peer.FetchDocument(res.Peer, res.Key)
	if err != nil {
		return Entry{}, false // owner gone: best effort
	}
	var sn fileSnippet
	if err := xml.Unmarshal([]byte(raw), &sn); err != nil || sn.Name == "" {
		return Entry{}, false // not a PFS file snippet
	}
	return Entry{Name: sn.Name, URL: sn.Href, Key: res.Key, Peer: res.Peer}, true
}

// Open lists the directory. If the directory has not been updated within
// the staleness threshold, the entire query is re-run first to drop
// entries for deleted or modified files (the paper's removal strategy).
func (d *Dir) Open() []Entry {
	d.mu.Lock()
	stale := d.fs.clock().Sub(d.last) > d.fs.StaleThreshold
	d.mu.Unlock()
	if stale {
		d.Rebuild()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Entry, 0, len(d.byKey))
	for _, e := range d.byKey {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Rebuild re-runs the full exhaustive query and replaces the entry set.
func (d *Dir) Rebuild() {
	results := d.fs.peer.SearchAll(d.Query)
	fresh := make(map[string]Entry, len(results))
	for _, res := range results {
		if e, ok := d.fs.entryFor(res); ok {
			fresh[res.Key] = e
		}
	}
	d.mu.Lock()
	d.byKey = fresh
	d.last = d.fs.clock()
	d.mu.Unlock()
}

// Len returns the current entry count without refreshing.
func (d *Dir) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.byKey)
}
