// Package replica implements PlanetP's content replication and hoarding
// subsystem: popularity-driven replication of hot documents to k peers
// chosen via the brokerage ring, so search hits stay alive when the
// publishing peer churns out. The paper's community is search-only — a
// hit whose owner is offline is a dead link — and explicitly punts
// availability to replication/hoarding; the Jacobs/Harwood
// popularity-based namespace work supplies the recipe reproduced here:
//
//   - Popularity. Every served fetch feeds an exponentially decayed
//     counter (Popularity). A document is hot once its decayed score
//     reaches HotScore.
//
//   - Target. The replication target grows with popularity and is capped
//     by the configured factor: replicas(score) = min(k-1,
//     floor(score/HotScore)). Cold documents get no replicas; the
//     hottest get k-1 beyond the origin.
//
//   - Budget. Replica bodies are excess-capacity storage, bounded by a
//     byte budget. Adopting past the budget evicts the least popular
//     replicas first (and refuses the adoption if it alone exceeds the
//     budget).
//
//   - Durability. Replicas ride the same WAL + snapshot machinery as the
//     peer's own documents (a second internal/store instance): an
//     adopted replica survives crash/restart, and a purged one can never
//     resurrect from a torn log.
//
//   - Tombstones. Purging a replica because its origin removed the
//     document (or a higher origin incarnation superseded it) records
//     the origin epoch; re-adoption at that epoch or below is refused,
//     so anti-entropy gossip cannot resurrect removed content.
//
// The Manager holds the local replica set and policy; internal/core owns
// the wiring (ring placement, hoard pulls, Bloom announcement, serving).
package replica

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"planetp/internal/metrics"
	"planetp/internal/store"
)

// Entry is one locally held replica.
type Entry struct {
	// Key is the document id (content hash).
	Key string
	// Origin is the publishing peer's community id.
	Origin int32
	// Epoch is the origin incarnation the content was obtained from (or
	// last validated against). A directory record of the origin at a
	// higher epoch means the content may be superseded.
	Epoch uint32
	// XML is the document body.
	XML string
}

// HotDoc advertises one hot document in a hoard exchange: enough for a
// ring-responsible peer to decide whether to pull a copy.
type HotDoc struct {
	Key    string
	Origin int32
	Epoch  uint32
	Score  float64
}

// Config tunes a Manager.
type Config struct {
	// Factor is the replication factor k: the community-wide copy target
	// for the hottest documents, origin included (so at most k-1
	// replicas are placed). 0 or 1 disables replication.
	Factor int
	// Budget bounds resident replica-body bytes (default 64 MiB).
	Budget int64
	// HotScore is the decayed-popularity threshold for the first replica
	// (default 2).
	HotScore float64
	// HalfLife is the popularity decay half-life (default 10 minutes).
	HalfLife time.Duration
	// Now is the clock (required; core passes the transport's monotonic
	// clock, tests a fake).
	Now func() time.Duration
	// Metrics receives replica_* instruments (nil = none).
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = 64 << 20
	}
	if c.HotScore <= 0 {
		c.HotScore = 2
	}
	if c.Now == nil {
		c.Now = func() time.Duration { return 0 }
	}
	return c
}

// ErrOverBudget rejects an adoption whose body alone exceeds the budget.
var ErrOverBudget = errors.New("replica: document exceeds hoard budget")

// Manager is one peer's replica set + popularity state. Thread-safe.
type Manager struct {
	cfg Config

	mu      sync.Mutex
	pop     *Popularity
	entries map[string]Entry
	bytes   int64
	// tombs records purged keys by the origin epoch they were purged
	// under; adoption at or below that epoch is refused forever (the
	// death certificate of the replica layer).
	tombs map[string]uint32
	st    *store.Store // nil = memory-only

	mDocs, mBytes             *metrics.Gauge
	mAdopts, mEvicts, mPurges *metrics.Counter
	mHits                     *metrics.Counter
}

// NewManager builds a Manager (memory-only until AttachStore).
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:     cfg,
		pop:     NewPopularity(cfg.HalfLife),
		entries: make(map[string]Entry),
		tombs:   make(map[string]uint32),
	}
	if r := cfg.Metrics; r != nil {
		m.mDocs = r.Gauge("replica_docs")
		m.mBytes = r.Gauge("replica_resident_bytes")
		m.mAdopts = r.Counter("replica_adopts_total")
		m.mEvicts = r.Counter("replica_evictions_total")
		m.mPurges = r.Counter("replica_purges_total")
		m.mHits = r.Counter("replica_hits_total")
	}
	return m
}

// Factor returns the configured replication factor.
func (m *Manager) Factor() int { return m.cfg.Factor }

// HotScore returns the replication popularity threshold.
func (m *Manager) HotScore() float64 { return m.cfg.HotScore }

// AttachStore mounts the durable store the manager write-aheads replica
// mutations to. Call before any Put/Purge (core attaches during peer
// construction, before the transport serves).
func (m *Manager) AttachStore(st *store.Store) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.st = st
}

// --- popularity ---

// Hit records one served fetch of key (own document or replica).
func (m *Manager) Hit(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pop.Hit(key, m.cfg.Now())
	if m.mHits != nil {
		m.mHits.Inc()
	}
}

// Score returns key's decayed popularity.
func (m *Manager) Score(key string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pop.Score(key, m.cfg.Now())
}

// HotKeys returns the keys at or above the replication threshold, most
// popular first, with their scores.
func (m *Manager) HotKeys() ([]string, []float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Now()
	keys := m.pop.Above(m.cfg.HotScore, now)
	scores := make([]float64, len(keys))
	for i, k := range keys {
		scores[i] = m.pop.Score(k, now)
	}
	return keys, scores
}

// TargetReplicas computes the replication target for a popularity score:
// the number of replicas wanted beyond the origin, growing with
// popularity and capped at factor-1 (the popularity × excess-capacity
// computation of the Jacobs/Harwood scheme, with the budget enforced at
// adoption time).
func (m *Manager) TargetReplicas(score float64) int {
	if m.cfg.Factor <= 1 || score < m.cfg.HotScore {
		return 0
	}
	t := int(score / m.cfg.HotScore)
	if max := m.cfg.Factor - 1; t > max {
		t = max
	}
	return t
}

// ReleaseScore is the GC threshold: a held replica whose popularity
// decays below this (half the adoption threshold — hysteresis) is
// dropped.
func (m *Manager) ReleaseScore() float64 { return m.cfg.HotScore / 2 }

// --- replica set ---

// Get returns the held replica for key.
func (m *Manager) Get(key string) (Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	return e, ok
}

// Has reports whether key is held.
func (m *Manager) Has(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.entries[key]
	return ok
}

// Len returns the held replica count.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Bytes returns the resident replica-body bytes.
func (m *Manager) Bytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// Entries returns the held replicas sorted by key (a copy).
func (m *Manager) Entries() []Entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.entriesLocked()
}

func (m *Manager) entriesLocked() []Entry {
	out := make([]Entry, 0, len(m.entries))
	for _, e := range m.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Accepts reports whether an offered replica would be adopted: not
// already held (at that epoch or newer) and not tombstoned at or above
// the offered epoch.
func (m *Manager) Accepts(key string, epoch uint32) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if te, dead := m.tombs[key]; dead && epoch <= te {
		return false
	}
	if held, ok := m.entries[key]; ok && epoch <= held.Epoch {
		return false
	}
	return true
}

// Put adopts a replica: the mutation (including any budget evictions) is
// write-ahead logged as one durable batch, then applied. seedScore seeds
// the local popularity counter so a fresh adoption is not immediately
// GC-eligible. It returns the entries evicted to make room. Adoption is
// refused (ErrOverBudget) when the body alone exceeds the budget, and is
// a no-op when Accepts would be false.
func (m *Manager) Put(e Entry, seedScore float64) (evicted []Entry, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if te, dead := m.tombs[e.Key]; dead && e.Epoch <= te {
		return nil, nil
	}
	if held, ok := m.entries[e.Key]; ok && e.Epoch <= held.Epoch {
		return nil, nil
	}
	size := int64(len(e.XML))
	if size > m.cfg.Budget {
		return nil, ErrOverBudget
	}
	// Choose evictions: least popular first (ties by key), never the
	// incoming document, until the body fits.
	prior := int64(0)
	if held, ok := m.entries[e.Key]; ok {
		prior = int64(len(held.XML))
	}
	need := m.bytes - prior + size - m.cfg.Budget
	if need > 0 {
		now := m.cfg.Now()
		cands := m.entriesLocked()
		sort.SliceStable(cands, func(i, j int) bool {
			si, sj := m.pop.Score(cands[i].Key, now), m.pop.Score(cands[j].Key, now)
			if si != sj {
				return si < sj
			}
			return cands[i].Key < cands[j].Key
		})
		for _, c := range cands {
			if need <= 0 {
				break
			}
			if c.Key == e.Key {
				continue
			}
			evicted = append(evicted, c)
			need -= int64(len(c.XML))
		}
		if need > 0 {
			return nil, ErrOverBudget
		}
	}
	// Write-ahead: evictions then the adoption, one group-committed
	// batch. A failed append leaves the replica set unchanged.
	ops := make([]store.Op, 0, len(evicted)+1)
	for _, ev := range evicted {
		ops = append(ops, encodeRemoveOp(ev.Key, ev.Epoch, false))
	}
	ops = append(ops, encodePutOp(e))
	if err := m.logBatch(ops); err != nil {
		return nil, err
	}
	for _, ev := range evicted {
		m.dropLocked(ev.Key)
		if m.mEvicts != nil {
			m.mEvicts.Inc()
		}
	}
	m.insertLocked(e)
	m.pop.Seed(e.Key, seedScore, m.cfg.Now())
	if m.mAdopts != nil {
		m.mAdopts.Inc()
	}
	return evicted, nil
}

// Purge drops a held replica. With tomb set, the origin epoch is
// recorded as a death certificate: the purge was caused by removal at
// the origin (or supersession by a higher incarnation), and the content
// must never be re-adopted at that epoch or below — not by a hoard pull,
// not by a replayed announcement. The certificate is WAL-logged with the
// purge, so a restart cannot resurrect the content either.
func (m *Manager) Purge(key string, epoch uint32, tomb bool) (Entry, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, held := m.entries[key]
	if !held && !tomb {
		return Entry{}, false, nil
	}
	if err := m.logBatch([]store.Op{encodeRemoveOp(key, epoch, tomb)}); err != nil {
		return Entry{}, false, err
	}
	if held {
		m.dropLocked(key)
		if m.mPurges != nil {
			m.mPurges.Inc()
		}
	}
	if tomb {
		if te, ok := m.tombs[key]; !ok || epoch > te {
			m.tombs[key] = epoch
		}
	}
	return e, held, nil
}

// ReleaseCandidates returns held replicas whose popularity has decayed
// below the release threshold (the popularity-decay GC rule).
func (m *Manager) ReleaseCandidates() []Entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Now()
	var out []Entry
	for _, e := range m.entriesLocked() {
		if m.pop.Score(e.Key, now) < m.cfg.HotScore/2 {
			out = append(out, e)
		}
	}
	return out
}

// Tombstoned reports whether key carries a death certificate at or above
// epoch.
func (m *Manager) Tombstoned(key string, epoch uint32) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	te, ok := m.tombs[key]
	return ok && epoch <= te
}

// insertLocked/dropLocked maintain the map and byte accounting.
func (m *Manager) insertLocked(e Entry) {
	if held, ok := m.entries[e.Key]; ok {
		m.bytes -= int64(len(held.XML))
	}
	m.entries[e.Key] = e
	m.bytes += int64(len(e.XML))
	m.gauge()
}

func (m *Manager) dropLocked(key string) {
	if held, ok := m.entries[key]; ok {
		m.bytes -= int64(len(held.XML))
		delete(m.entries, key)
	}
	m.gauge()
}

func (m *Manager) gauge() {
	if m.mDocs != nil {
		m.mDocs.Set(int64(len(m.entries)))
		m.mBytes.Set(m.bytes)
	}
}

func (m *Manager) logBatch(ops []store.Op) error {
	if m.st == nil {
		return nil
	}
	_, err := m.st.AppendBatch(ops)
	return err
}

// --- WAL op encoding ---
//
// The replica store reuses the document store's two op kinds (the WAL
// record format admits no others) with a versioned header line inside
// Data:
//
//	OpPublish: "r1 <origin> <epoch> <key>\n<xml>"
//	OpRemove:  "r1 <epoch> <tomb> <key>"

func encodePutOp(e Entry) store.Op {
	return store.Op{
		Kind: store.OpPublish,
		Data: "r1 " + strconv.FormatInt(int64(e.Origin), 10) + " " +
			strconv.FormatUint(uint64(e.Epoch), 10) + " " + e.Key + "\n" + e.XML,
	}
}

func encodeRemoveOp(key string, epoch uint32, tomb bool) store.Op {
	t := "0"
	if tomb {
		t = "1"
	}
	return store.Op{
		Kind: store.OpRemove,
		Data: "r1 " + strconv.FormatUint(uint64(epoch), 10) + " " + t + " " + key,
	}
}

func decodePutOp(data string) (Entry, error) {
	head, xml, ok := strings.Cut(data, "\n")
	if !ok {
		return Entry{}, errors.New("replica: publish op missing body")
	}
	f := strings.Fields(head)
	if len(f) != 4 || f[0] != "r1" {
		return Entry{}, fmt.Errorf("replica: bad publish op header %q", head)
	}
	origin, err := strconv.ParseInt(f[1], 10, 32)
	if err != nil {
		return Entry{}, fmt.Errorf("replica: bad origin: %w", err)
	}
	epoch, err := strconv.ParseUint(f[2], 10, 32)
	if err != nil {
		return Entry{}, fmt.Errorf("replica: bad epoch: %w", err)
	}
	return Entry{Key: f[3], Origin: int32(origin), Epoch: uint32(epoch), XML: xml}, nil
}

func decodeRemoveOp(data string) (key string, epoch uint32, tomb bool, err error) {
	f := strings.Fields(data)
	if len(f) != 4 || f[0] != "r1" {
		return "", 0, false, fmt.Errorf("replica: bad remove op %q", data)
	}
	e, err := strconv.ParseUint(f[1], 10, 32)
	if err != nil {
		return "", 0, false, fmt.Errorf("replica: bad epoch: %w", err)
	}
	return f[3], uint32(e), f[2] == "1", nil
}

// --- snapshot + recovery ---

// snapshotState is the gob-encoded snapshot payload.
type snapshotState struct {
	Entries []Entry
	Tombs   map[string]uint32
}

// SnapshotPayload serializes the replica set + tombstones for the
// store's snapshot/compaction protocol.
func (m *Manager) SnapshotPayload() ([]byte, error) {
	m.mu.Lock()
	st := snapshotState{Entries: m.entriesLocked(), Tombs: make(map[string]uint32, len(m.tombs))}
	for k, v := range m.tombs {
		st.Tombs[k] = v
	}
	m.mu.Unlock()
	return encodeSnapshotState(st)
}

// SnapshotPayloadLSN captures the snapshot payload and the store's fold
// LSN atomically under the manager lock — the same lock every WAL append
// holds — so an adoption racing compaction is either in the payload or
// above the fold position, never stamped folded without being included.
func (m *Manager) SnapshotPayloadLSN() ([]byte, uint64, error) {
	m.mu.Lock()
	st := snapshotState{Entries: m.entriesLocked(), Tombs: make(map[string]uint32, len(m.tombs))}
	for k, v := range m.tombs {
		st.Tombs[k] = v
	}
	var lsn uint64
	if m.st != nil {
		lsn = m.st.LastLSN()
	}
	m.mu.Unlock()
	payload, err := encodeSnapshotState(st)
	return payload, lsn, err
}

func encodeSnapshotState(st snapshotState) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Replay rebuilds the replica set from a store recovery (snapshot +
// WAL suffix, in order). It returns the restored entries so the caller
// can re-announce exactly what is durable — the fsynced prefix, never a
// torn suffix (the store already truncated that).
func (m *Manager) Replay(rec store.Recovery) ([]Entry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rec.Snapshot != nil {
		var st snapshotState
		if err := gob.NewDecoder(bytes.NewReader(rec.Snapshot)).Decode(&st); err != nil {
			return nil, fmt.Errorf("replica: snapshot: %w", err)
		}
		for _, e := range st.Entries {
			m.insertLocked(e)
		}
		for k, v := range st.Tombs {
			m.tombs[k] = v
		}
	}
	for _, op := range rec.Ops {
		switch op.Kind {
		case store.OpPublish:
			e, err := decodePutOp(op.Data)
			if err != nil {
				return nil, fmt.Errorf("replica: replaying op: %w", err)
			}
			if te, dead := m.tombs[e.Key]; dead && e.Epoch <= te {
				continue
			}
			m.insertLocked(e)
		case store.OpRemove:
			key, epoch, tomb, err := decodeRemoveOp(op.Data)
			if err != nil {
				return nil, fmt.Errorf("replica: replaying op: %w", err)
			}
			m.dropLocked(key)
			if tomb {
				if te, ok := m.tombs[key]; !ok || epoch > te {
					m.tombs[key] = epoch
				}
			}
		}
	}
	return m.entriesLocked(), nil
}
