package replica

import (
	"testing"
	"time"

	"planetp/internal/store"
)

// fakeClock is a settable Now() source.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) now() time.Duration { return c.t }

func newTestManager(t *testing.T, clk *fakeClock, mutate func(*Config)) *Manager {
	t.Helper()
	cfg := Config{Factor: 3, Budget: 1 << 20, HotScore: 2, HalfLife: time.Minute, Now: clk.now}
	if mutate != nil {
		mutate(&cfg)
	}
	return NewManager(cfg)
}

func TestPopularityDecayDeterministic(t *testing.T) {
	clk := &fakeClock{}
	p := NewPopularity(time.Minute)
	p.Hit("a", 0)
	p.Hit("a", 0)
	if s := p.Score("a", 0); s != 2 {
		t.Fatalf("score after 2 hits = %v", s)
	}
	// One half-life halves the mass.
	if s := p.Score("a", time.Minute); s < 0.99 || s > 1.01 {
		t.Fatalf("score after one half-life = %v", s)
	}
	// Two managers fed the same schedule agree exactly.
	q := NewPopularity(time.Minute)
	q.Hit("a", 0)
	q.Hit("a", 0)
	if p.Score("a", 5*time.Minute) != q.Score("a", 5*time.Minute) {
		t.Fatal("identical schedules diverged")
	}
	_ = clk
}

func TestTargetReplicasGrowsWithPopularityAndCaps(t *testing.T) {
	m := newTestManager(t, &fakeClock{}, nil)
	cases := []struct {
		score float64
		want  int
	}{
		{0, 0}, {1.9, 0}, {2, 1}, {3.9, 1}, {4, 2}, {100, 2},
	}
	for _, c := range cases {
		if got := m.TargetReplicas(c.score); got != c.want {
			t.Errorf("TargetReplicas(%v) = %d want %d", c.score, got, c.want)
		}
	}
	// Factor 1 = no replication at any popularity.
	m1 := newTestManager(t, &fakeClock{}, func(c *Config) { c.Factor = 1 })
	if m1.TargetReplicas(100) != 0 {
		t.Fatal("factor 1 must disable replication")
	}
}

func TestPutGetPurgeTombstone(t *testing.T) {
	clk := &fakeClock{}
	m := newTestManager(t, clk, nil)
	e := Entry{Key: "k1", Origin: 3, Epoch: 1, XML: "<doc>hello</doc>"}
	if _, err := m.Put(e, 2); err != nil {
		t.Fatal(err)
	}
	got, ok := m.Get("k1")
	if !ok || got != e {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if m.Score("k1") < 2 {
		t.Fatal("adoption did not seed popularity")
	}
	// Purge with a death certificate at epoch 2: re-adoption at <= 2 is
	// refused, at 3 accepted.
	if _, held, err := m.Purge("k1", 2, true); err != nil || !held {
		t.Fatalf("Purge = %v, %v", held, err)
	}
	if m.Has("k1") {
		t.Fatal("purged replica still held")
	}
	if m.Accepts("k1", 2) {
		t.Fatal("tombstoned epoch re-accepted")
	}
	if _, err := m.Put(Entry{Key: "k1", Origin: 3, Epoch: 2, XML: "x"}, 2); err != nil {
		t.Fatal(err)
	}
	if m.Has("k1") {
		t.Fatal("tombstoned Put was applied")
	}
	if !m.Accepts("k1", 3) {
		t.Fatal("higher-epoch offer refused")
	}
	if _, err := m.Put(Entry{Key: "k1", Origin: 3, Epoch: 3, XML: "x"}, 2); err != nil {
		t.Fatal(err)
	}
	if !m.Has("k1") {
		t.Fatal("higher-epoch Put not applied")
	}
}

func TestBudgetEvictsLeastPopular(t *testing.T) {
	clk := &fakeClock{}
	m := newTestManager(t, clk, func(c *Config) { c.Budget = 100 })
	body := make([]byte, 40)
	for i := range body {
		body[i] = 'x'
	}
	if _, err := m.Put(Entry{Key: "cold", Origin: 1, Epoch: 1, XML: string(body)}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put(Entry{Key: "hot", Origin: 1, Epoch: 1, XML: string(body)}, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m.Hit("hot")
	}
	// A third 40-byte body exceeds the 100-byte budget; the least
	// popular replica (cold) must be evicted, not hot.
	evicted, err := m.Put(Entry{Key: "new", Origin: 2, Epoch: 1, XML: string(body)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0].Key != "cold" {
		t.Fatalf("evicted = %+v", evicted)
	}
	if !m.Has("hot") || !m.Has("new") || m.Has("cold") {
		t.Fatal("wrong survivor set")
	}
	if m.Bytes() > 100 {
		t.Fatalf("over budget: %d", m.Bytes())
	}
	// A single body larger than the whole budget is refused outright.
	if _, err := m.Put(Entry{Key: "huge", Origin: 2, Epoch: 1, XML: string(make([]byte, 101))}, 2); err != ErrOverBudget {
		t.Fatalf("oversized Put err = %v", err)
	}
}

func TestReleaseCandidatesByDecay(t *testing.T) {
	clk := &fakeClock{}
	m := newTestManager(t, clk, func(c *Config) { c.HalfLife = time.Minute })
	if _, err := m.Put(Entry{Key: "a", Origin: 1, Epoch: 1, XML: "x"}, 2); err != nil {
		t.Fatal(err)
	}
	if len(m.ReleaseCandidates()) != 0 {
		t.Fatal("fresh adoption already GC-eligible")
	}
	// After two half-lives the seed score of 2 decays to 0.5 < the
	// release threshold (HotScore/2 = 1).
	clk.t = 2 * time.Minute
	rc := m.ReleaseCandidates()
	if len(rc) != 1 || rc[0].Key != "a" {
		t.Fatalf("ReleaseCandidates = %+v", rc)
	}
	// A fetch refreshes popularity and rescues it.
	m.Hit("a")
	m.Hit("a")
	if len(m.ReleaseCandidates()) != 0 {
		t.Fatal("refreshed replica still GC-eligible")
	}
}

func TestOpEncodingRoundTrip(t *testing.T) {
	e := Entry{Key: "abc123", Origin: -7, Epoch: 42, XML: "<doc>\nmulti line\n</doc>"}
	got, err := decodePutOp(encodePutOp(e).Data)
	if err != nil || got != e {
		t.Fatalf("put round trip = %+v, %v", got, err)
	}
	key, epoch, tomb, err := decodeRemoveOp(encodeRemoveOp("k", 9, true).Data)
	if err != nil || key != "k" || epoch != 9 || !tomb {
		t.Fatalf("remove round trip = %q %d %v %v", key, epoch, tomb, err)
	}
	if _, _, tomb, _ := decodeRemoveOp(encodeRemoveOp("k", 9, false).Data); tomb {
		t.Fatal("tomb flag not preserved")
	}
	if _, err := decodePutOp("garbage"); err == nil {
		t.Fatal("garbage publish op decoded")
	}
	if _, _, _, err := decodeRemoveOp("r1 x"); err == nil {
		t.Fatal("garbage remove op decoded")
	}
}

// TestDurableReplayRestoresFsyncedSet drives a manager over a real
// (in-memory) store through adoptions, a purge-with-tombstone, and a
// snapshot, then reopens and asserts the replica set and tombstones
// survive exactly.
func TestDurableReplayRestoresFsyncedSet(t *testing.T) {
	clk := &fakeClock{}
	fs := store.NewMemFS()
	open := func() (*Manager, *store.Store, []Entry) {
		st, rec, err := store.Open(store.Options{Dir: "rep", FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		m := newTestManager(t, clk, nil)
		restored, err := m.Replay(rec)
		if err != nil {
			t.Fatal(err)
		}
		m.AttachStore(st)
		return m, st, restored
	}

	m, st, restored := open()
	if len(restored) != 0 {
		t.Fatalf("fresh store restored %d entries", len(restored))
	}
	if _, err := m.Put(Entry{Key: "a", Origin: 1, Epoch: 1, XML: "<a/>"}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put(Entry{Key: "b", Origin: 2, Epoch: 5, XML: "<b/>"}, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Purge("a", 3, true); err != nil {
		t.Fatal(err)
	}
	st.Close()

	m2, st2, restored := open()
	if len(restored) != 1 || restored[0].Key != "b" || restored[0].Epoch != 5 {
		t.Fatalf("restored = %+v", restored)
	}
	if !m2.Tombstoned("a", 3) || m2.Tombstoned("a", 4) {
		t.Fatal("tombstone not restored")
	}
	// Snapshot + reopen preserves the same state through the compaction
	// path.
	payload, err := m2.SnapshotPayload()
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.SaveSnapshot(store.SnapshotData{
		Payload: payload, Epoch: 1, Seq: 1, FoldLSN: st2.LastLSN(),
	}); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	m3, st3, restored := open()
	if len(restored) != 1 || restored[0].Key != "b" {
		t.Fatalf("post-snapshot restored = %+v", restored)
	}
	if !m3.Tombstoned("a", 3) {
		t.Fatal("tombstone lost through snapshot")
	}
	st3.Close()
}
