package replica

import (
	"math"
	"sort"
	"time"
)

// Popularity tracks per-document fetch popularity as exponentially
// decayed hit counters (the Jacobs/Harwood popularity signal): every
// served fetch adds 1, and the accumulated mass halves once per
// half-life. A document nobody asks for decays toward zero and falls out
// of the hot set; a document served steadily holds a score near its
// hit rate × half-life.
//
// Popularity is NOT thread-safe; the owning Manager serializes access.
type Popularity struct {
	halfLife time.Duration
	counters map[string]*popCounter
}

type popCounter struct {
	mass float64
	last time.Duration
}

// NewPopularity returns a tracker with the given half-life (0 takes the
// 10-minute default).
func NewPopularity(halfLife time.Duration) *Popularity {
	if halfLife <= 0 {
		halfLife = 10 * time.Minute
	}
	return &Popularity{halfLife: halfLife, counters: make(map[string]*popCounter)}
}

// decayTo folds the elapsed decay into the counter.
func (p *Popularity) decayTo(c *popCounter, now time.Duration) {
	if now <= c.last {
		return
	}
	dt := float64(now-c.last) / float64(p.halfLife)
	c.mass *= math.Exp2(-dt)
	c.last = now
}

// Hit records one served fetch of key at now.
func (p *Popularity) Hit(key string, now time.Duration) {
	c := p.counters[key]
	if c == nil {
		c = &popCounter{last: now}
		p.counters[key] = c
	}
	p.decayTo(c, now)
	c.mass++
}

// Seed raises key's score to at least mass (adopting a replica seeds the
// local counter with the advertised popularity so a freshly hoarded copy
// is not garbage-collected before it has served anyone).
func (p *Popularity) Seed(key string, mass float64, now time.Duration) {
	c := p.counters[key]
	if c == nil {
		c = &popCounter{last: now}
		p.counters[key] = c
	}
	p.decayTo(c, now)
	if c.mass < mass {
		c.mass = mass
	}
}

// Score returns key's decayed popularity at now (0 if never hit).
func (p *Popularity) Score(key string, now time.Duration) float64 {
	c := p.counters[key]
	if c == nil {
		return 0
	}
	p.decayTo(c, now)
	return c.mass
}

// Forget drops key's counter.
func (p *Popularity) Forget(key string) { delete(p.counters, key) }

// Above returns the keys whose decayed score at now is at least min,
// sorted by descending score (ties broken by key for determinism).
func (p *Popularity) Above(min float64, now time.Duration) []string {
	type ks struct {
		k string
		s float64
	}
	var hot []ks
	for k, c := range p.counters {
		p.decayTo(c, now)
		if c.mass >= min {
			hot = append(hot, ks{k, c.mass})
		} else if c.mass < 1e-6 {
			// Fully decayed counters are garbage; drop them here so the
			// map does not grow with every document ever fetched.
			delete(p.counters, k)
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].s != hot[j].s {
			return hot[i].s > hot[j].s
		}
		return hot[i].k < hot[j].k
	})
	out := make([]string, len(hot))
	for i, h := range hot {
		out[i] = h.k
	}
	return out
}

// Len returns the number of tracked counters.
func (p *Popularity) Len() int { return len(p.counters) }
