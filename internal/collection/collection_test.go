package collection

import (
	"testing"
)

func TestSpecsMatchTable3(t *testing.T) {
	cases := []struct {
		name          string
		queries, docs int
		words         int
	}{
		{"CACM", 52, 3204, 75493},
		{"MED", 30, 1033, 83451},
		{"CRAN", 152, 1400, 117718},
		{"CISI", 76, 1460, 84957},
		{"AP89", 97, 84678, 129603},
	}
	for _, c := range cases {
		s, ok := Specs[c.name]
		if !ok {
			t.Fatalf("missing spec %s", c.name)
		}
		if s.NumQueries != c.queries || s.NumDocs != c.docs || s.VocabSize != c.words {
			t.Errorf("%s: spec %+v does not match Table 3", c.name, s)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := ScaledSpec("CACM", 8)
	a := Generate(spec, 1)
	b := Generate(spec, 1)
	if len(a.Docs) != len(b.Docs) || len(a.Queries) != len(b.Queries) {
		t.Fatal("shape differs")
	}
	for i := range a.Docs {
		if a.Docs[i].Len != b.Docs[i].Len || a.Docs[i].Topic != b.Docs[i].Topic {
			t.Fatalf("doc %d differs", i)
		}
	}
	c := Generate(spec, 2)
	same := true
	for i := range a.Docs {
		if a.Docs[i].Len != c.Docs[i].Len {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical collections")
	}
}

func TestGeneratedShape(t *testing.T) {
	spec := ScaledSpec("MED", 4)
	col := Generate(spec, 3)
	if len(col.Docs) != spec.NumDocs {
		t.Fatalf("docs = %d, want %d", len(col.Docs), spec.NumDocs)
	}
	if len(col.Queries) != spec.NumQueries {
		t.Fatalf("queries = %d, want %d", len(col.Queries), spec.NumQueries)
	}
	for i, d := range col.Docs {
		if d.Len < 8 {
			t.Fatalf("doc %d too short: %d", i, d.Len)
		}
		sum := 0
		for _, f := range d.Freqs {
			if f <= 0 {
				t.Fatalf("doc %d has non-positive freq", i)
			}
			sum += f
		}
		if sum != d.Len {
			t.Fatalf("doc %d freq sum %d != len %d", i, sum, d.Len)
		}
		if d.Topic < 0 || d.Topic >= spec.NumTopics {
			t.Fatalf("doc %d topic %d out of range", i, d.Topic)
		}
	}
}

func TestQueriesHaveRelevantDocs(t *testing.T) {
	col := Generate(ScaledSpec("CRAN", 4), 5)
	for qi, q := range col.Queries {
		if len(q.Terms) == 0 {
			t.Fatalf("query %d empty", qi)
		}
		if len(q.Relevant) == 0 {
			t.Fatalf("query %d has no relevant docs", qi)
		}
		// Relevance ground truth must agree with topics.
		for d := range q.Relevant {
			if col.Docs[d].Topic != q.Topic {
				t.Fatalf("query %d: doc %d topic mismatch", qi, d)
			}
		}
		// Most relevant docs should actually contain at least one query
		// term (the topic construction guarantees it statistically).
		containing := 0
		for d := range q.Relevant {
			for _, term := range q.Terms {
				if col.Docs[d].Freqs[term] > 0 {
					containing++
					break
				}
			}
		}
		if containing*2 < len(q.Relevant) {
			t.Fatalf("query %d: only %d/%d relevant docs contain query terms",
				qi, containing, len(q.Relevant))
		}
	}
}

func TestQueryTermsAreDiscriminative(t *testing.T) {
	col := Generate(ScaledSpec("CACM", 8), 7)
	// A query's lead term should appear far more often inside its topic
	// than outside (otherwise TFxIDF has no signal to find).
	q := col.Queries[0]
	lead := q.Terms[0]
	in, out := 0, 0
	for d := range col.Docs {
		if col.Docs[d].Freqs[lead] > 0 {
			if q.Relevant[d] {
				in++
			} else {
				out++
			}
		}
	}
	if in == 0 {
		t.Fatal("lead term absent from its own topic")
	}
	inRate := float64(in) / float64(len(q.Relevant))
	outRate := float64(out) / float64(len(col.Docs)-len(q.Relevant))
	if inRate < 4*outRate {
		t.Fatalf("lead term not discriminative: in=%.3f out=%.3f", inRate, outRate)
	}
}

func TestZipfHeavyHead(t *testing.T) {
	col := Generate(ScaledSpec("CISI", 4), 9)
	freq := map[string]int{}
	total := 0
	for _, d := range col.Docs {
		for t, f := range d.Freqs {
			freq[t] += f
			total += f
		}
	}
	// The most frequent term should cover a disproportionate share.
	max := 0
	for _, f := range freq {
		if f > max {
			max = f
		}
	}
	if float64(max)/float64(total) < 0.01 {
		t.Fatalf("head term share %.4f too flat for Zipf", float64(max)/float64(total))
	}
}

func TestStats(t *testing.T) {
	col := Generate(ScaledSpec("MED", 8), 11)
	s := col.Stats()
	if s.Documents != len(col.Docs) || s.Queries != len(col.Queries) {
		t.Fatalf("stats = %+v", s)
	}
	if s.Words == 0 || s.SizeMB <= 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty row")
	}
}

func TestScaledSpec(t *testing.T) {
	s := ScaledSpec("AP89", 16)
	if s.NumDocs != Specs["AP89"].NumDocs/16 {
		t.Fatalf("scaled docs = %d", s.NumDocs)
	}
	if s.NumTopics < 8 {
		t.Fatalf("topics floor violated: %d", s.NumTopics)
	}
	if ScaledSpec("CACM", 1).Name != "CACM" {
		t.Fatal("factor 1 should be identity")
	}
}
