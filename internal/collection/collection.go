// Package collection generates synthetic benchmark document collections
// standing in for the Smart/TREC collections of Table 3 (CACM, MED, CRAN,
// CISI, AP89), which are not redistributable. Each collection is drawn
// from a topic model: a Zipf-distributed background vocabulary plus
// per-topic term distributions; a query samples terms from one topic and
// its relevance judgments are exactly the documents generated from that
// topic. This preserves what the paper's evaluation depends on — skewed
// term statistics, co-occurring discriminative terms, and ground-truth
// relevance — while matching Table 3's document/vocabulary/query counts.
package collection

import (
	"fmt"
	"math/rand"
	"sort"
)

// Doc is one generated document.
type Doc struct {
	// Freqs maps term -> occurrences.
	Freqs map[string]int
	// Len is the total token count (|D|).
	Len int
	// Topic is the generating topic (ground truth; -1 for pure
	// background documents).
	Topic int
}

// Query is a generated query with its relevance judgments.
type Query struct {
	// Terms are the (stemmed-form) query terms.
	Terms []string
	// Topic is the generating topic.
	Topic int
	// Relevant indexes the relevant documents in Collection.Docs.
	Relevant map[int]bool
}

// Collection is a generated benchmark collection.
type Collection struct {
	Name    string
	Docs    []Doc
	Queries []Query
	Spec    Spec
}

// Spec parameterizes generation. The named tables below reproduce Table
// 3's shapes.
type Spec struct {
	Name string
	// NumDocs, VocabSize, NumQueries mirror Table 3 columns.
	NumDocs    int
	VocabSize  int
	NumQueries int
	// NumTopics controls relevance-set sizes (~NumDocs/NumTopics).
	NumTopics int
	// MeanDocLen is the average tokens per document (derived from Table
	// 3's collection sizes at ~6 bytes/token).
	MeanDocLen int
	// TopicTermCount is the number of discriminative terms per topic.
	TopicTermCount int
	// TopicMix is the fraction of a topical document's tokens drawn
	// from its topic distribution (the rest is background Zipf).
	TopicMix float64
	// QueryLen is the number of terms per query.
	QueryLen int
}

// Specs reproduces Table 3: documents, vocabulary and query counts per
// collection; mean lengths derived from the reported megabyte sizes.
var Specs = map[string]Spec{
	"CACM": {Name: "CACM", NumDocs: 3204, VocabSize: 75493, NumQueries: 52, NumTopics: 64, MeanDocLen: 110, TopicTermCount: 32, TopicMix: 0.35, QueryLen: 4},
	"MED":  {Name: "MED", NumDocs: 1033, VocabSize: 83451, NumQueries: 30, NumTopics: 30, MeanDocLen: 160, TopicTermCount: 32, TopicMix: 0.35, QueryLen: 4},
	"CRAN": {Name: "CRAN", NumDocs: 1400, VocabSize: 117718, NumQueries: 152, NumTopics: 70, MeanDocLen: 190, TopicTermCount: 32, TopicMix: 0.35, QueryLen: 4},
	"CISI": {Name: "CISI", NumDocs: 1460, VocabSize: 84957, NumQueries: 76, NumTopics: 38, MeanDocLen: 270, TopicTermCount: 32, TopicMix: 0.35, QueryLen: 4},
	"AP89": {Name: "AP89", NumDocs: 84678, VocabSize: 129603, NumQueries: 97, NumTopics: 400, MeanDocLen: 520, TopicTermCount: 48, TopicMix: 0.30, QueryLen: 5},
}

// ScaledSpec returns a spec shrunk by factor (docs, vocabulary, topics and
// queries divided; lengths kept), for tests and fast experiment runs.
func ScaledSpec(name string, factor int) Spec {
	s := Specs[name]
	if factor <= 1 {
		return s
	}
	s.Name = fmt.Sprintf("%s/%d", s.Name, factor)
	s.NumDocs /= factor
	s.VocabSize /= factor
	if s.NumTopics > 1 {
		s.NumTopics /= factor
		if s.NumTopics < 8 {
			s.NumTopics = 8
		}
	}
	if s.NumDocs < s.NumTopics*4 {
		s.NumTopics = s.NumDocs / 4
	}
	return s
}

// term returns the string form of vocabulary index i.
func term(i int) string { return fmt.Sprintf("w%d", i) }

// Generate builds a collection from spec, deterministically from seed.
func Generate(spec Spec, seed int64) *Collection {
	rng := rand.New(rand.NewSource(seed))
	// Background vocabulary: Zipf over [0, VocabSize). s=1.1 gives the
	// classic heavy head with a long rare tail (realistic text).
	zipf := rand.NewZipf(rng, 1.1, 1, uint64(spec.VocabSize-1))

	// Topic terms come from the middle/rare band so they carry IDF
	// signal. Adjacent topics overlap by half their vocabulary (stride
	// = count/2): real collections are not cleanly separable, so some
	// retrieved documents are near-topic rather than relevant — this is
	// what gives the precision-vs-k falloff of Figure 6a.
	topicTerms := make([][]int, spec.NumTopics)
	band := spec.VocabSize / 3 // skip the most common third
	stride := spec.TopicTermCount / 2
	if stride < 1 {
		stride = 1
	}
	for k := range topicTerms {
		tt := make([]int, spec.TopicTermCount)
		for j := range tt {
			tt[j] = band + (k*stride+j)%(spec.VocabSize-band)
		}
		topicTerms[k] = tt
	}
	// Within a topic, term weights fall off geometrically so the head
	// terms are the topic's signature.
	topicWeights := make([]float64, spec.TopicTermCount)
	total := 0.0
	for j := range topicWeights {
		topicWeights[j] = 1.0 / float64(j+2)
		total += topicWeights[j]
	}
	cum := make([]float64, spec.TopicTermCount)
	acc := 0.0
	for j, w := range topicWeights {
		acc += w / total
		cum[j] = acc
	}
	sampleTopicTerm := func(k int) int {
		u := rng.Float64()
		j := sort.SearchFloat64s(cum, u)
		if j >= spec.TopicTermCount {
			j = spec.TopicTermCount - 1
		}
		return topicTerms[k][j]
	}

	col := &Collection{Name: spec.Name, Spec: spec}
	col.Docs = make([]Doc, spec.NumDocs)
	topicDocs := make([][]int, spec.NumTopics)
	for i := range col.Docs {
		topic := i % spec.NumTopics // even topical coverage
		// Document length: uniform in [0.5, 1.5) of the mean.
		length := spec.MeanDocLen/2 + rng.Intn(spec.MeanDocLen)
		if length < 8 {
			length = 8
		}
		freqs := make(map[string]int, length/2)
		for t := 0; t < length; t++ {
			var idx int
			if rng.Float64() < spec.TopicMix {
				idx = sampleTopicTerm(topic)
			} else {
				idx = int(zipf.Uint64())
			}
			freqs[term(idx)]++
		}
		col.Docs[i] = Doc{Freqs: freqs, Len: length, Topic: topic}
		topicDocs[topic] = append(topicDocs[topic], i)
	}

	col.Queries = make([]Query, spec.NumQueries)
	for qi := range col.Queries {
		topic := qi % spec.NumTopics
		// Query terms: the topic's signature head terms plus one sampled
		// deeper term, mimicking specific-but-topical user queries.
		terms := make([]string, 0, spec.QueryLen)
		seen := map[int]bool{}
		for len(terms) < spec.QueryLen {
			var idx int
			if len(terms) < spec.QueryLen-1 {
				idx = topicTerms[topic][len(terms)]
			} else {
				idx = sampleTopicTerm(topic)
			}
			if seen[idx] {
				idx = sampleTopicTerm(topic)
			}
			if seen[idx] {
				continue
			}
			seen[idx] = true
			terms = append(terms, term(idx))
		}
		// Relevance judgments are a strict subset of the topic's
		// documents — those that actually discuss the query's specific
		// aspect (contain its sampled deep term). Human judgments on
		// real collections behave the same way: topical-but-off-aspect
		// documents are retrieved yet judged non-relevant, which is
		// what makes precision fall below 1 at small k (Figure 6a).
		aspect := terms[len(terms)-1]
		rel := make(map[int]bool)
		for _, d := range topicDocs[topic] {
			if col.Docs[d].Freqs[aspect] > 0 {
				rel[d] = true
			}
		}
		if len(rel) == 0 {
			// Degenerate tiny collections: fall back to the topic.
			for _, d := range topicDocs[topic] {
				rel[d] = true
			}
		}
		col.Queries[qi] = Query{Terms: terms, Topic: topic, Relevant: rel}
	}
	return col
}

// Stats summarizes a collection for the Table 3 report.
type Stats struct {
	Name      string
	Queries   int
	Documents int
	// Words is the realized distinct-term count.
	Words int
	// SizeMB approximates the raw text size at ~6 bytes/token.
	SizeMB float64
}

// Stats computes the collection's Table 3 row.
func (c *Collection) Stats() Stats {
	distinct := make(map[string]struct{})
	tokens := 0
	for i := range c.Docs {
		for t := range c.Docs[i].Freqs {
			distinct[t] = struct{}{}
		}
		tokens += c.Docs[i].Len
	}
	return Stats{
		Name: c.Name, Queries: len(c.Queries), Documents: len(c.Docs),
		Words: len(distinct), SizeMB: float64(tokens) * 6 / 1e6,
	}
}

// String renders the Table 3 row.
func (s Stats) String() string {
	return fmt.Sprintf("%-8s queries=%-4d docs=%-6d words=%-7d size=%.1fMB",
		s.Name, s.Queries, s.Documents, s.Words, s.SizeMB)
}
