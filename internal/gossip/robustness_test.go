package gossip

import (
	"math/rand"
	"testing"

	"planetp/internal/directory"
)

// TestMaxPullBatchChunks verifies that a node with a pull cap acquires a
// large directory in pieces across successive anti-entropy exchanges.
func TestMaxPullBatchChunks(t *testing.T) {
	f := newFakeNet(20)
	full := f.addNode(0, 64, Config{})
	// The full node knows 40 peers.
	for i := directory.PeerID(2); i < 42; i++ {
		full.Directory().Upsert(directory.Record{
			ID: i, Ver: directory.Version{Epoch: 1}, PayloadSize: 100,
		})
	}
	limited := f.addNode(1, 64, Config{MaxPullBatch: 10})
	limited.Directory().Upsert(full.SelfRecord())

	summary := func() *Message {
		return &Message{
			Type: MsgAESummary, From: 0,
			Digest:   full.Directory().Digest(),
			Summary:  full.Directory().Summary(),
			NumKnown: full.Directory().NumKnown(),
		}
	}
	// One exchange: at most 10 new records (plus the ones it had).
	before := limited.Directory().NumKnown()
	limited.Receive(0, summary())
	after := limited.Directory().NumKnown()
	if after-before > 10 {
		t.Fatalf("single exchange pulled %d records, cap is 10", after-before)
	}
	if after == before {
		t.Fatal("nothing pulled at all")
	}
	// Enough exchanges converge completely (limited also knows itself,
	// which full does not).
	want := full.Directory().NumKnown() + 1
	for i := 0; i < 10 && limited.Directory().NumKnown() < want; i++ {
		limited.Receive(0, summary())
	}
	if got := limited.Directory().NumKnown(); got != want {
		t.Fatalf("chunked pulls never converged: %d vs %d", got, want)
	}
}

// Receive must be total: arbitrary (adversarial or corrupt) messages must
// never panic or corrupt the node.
func TestReceiveArbitraryMessagesNoPanic(t *testing.T) {
	f := newFakeNet(30)
	n := f.addNode(0, 16, Config{})
	f.addNode(1, 16, Config{})
	f.connect()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		m := &Message{
			Type: MsgType(rng.Intn(8)), // includes invalid types
			From: directory.PeerID(rng.Intn(20) - 2),
		}
		if rng.Intn(2) == 0 {
			for i := 0; i < rng.Intn(4); i++ {
				m.Updates = append(m.Updates, directory.Record{
					ID:          directory.PeerID(rng.Intn(40) - 4),
					Ver:         directory.Version{Epoch: uint32(rng.Intn(3)), Seq: uint32(rng.Intn(3))},
					PayloadSize: int32(rng.Intn(1000) - 100),
					DiffSize:    int32(rng.Intn(1000) - 100),
				})
			}
		}
		if rng.Intn(2) == 0 {
			k := rng.Intn(5)
			for i := 0; i < k; i++ {
				m.Acked = append(m.Acked, RumorID{
					Peer: directory.PeerID(rng.Intn(20) - 2),
					Ver:  directory.Version{Epoch: uint32(rng.Intn(3))},
				})
			}
			// Known deliberately mismatched in length sometimes.
			for i := 0; i < rng.Intn(7); i++ {
				m.Known = append(m.Known, rng.Intn(2) == 0)
			}
		}
		if rng.Intn(2) == 0 {
			for i := 0; i < rng.Intn(4); i++ {
				m.Recent = append(m.Recent, RumorID{
					Peer: directory.PeerID(rng.Intn(40) - 4),
					Ver:  directory.Version{Epoch: uint32(rng.Intn(4)), Seq: uint32(rng.Intn(4))},
				})
			}
		}
		if rng.Intn(2) == 0 {
			for i := 0; i < rng.Intn(4); i++ {
				m.Need = append(m.Need, directory.NeedEntry{
					ID: directory.PeerID(rng.Intn(40) - 4),
				})
			}
		}
		if rng.Intn(3) == 0 {
			// Short or oversized summaries relative to capacity.
			sz := rng.Intn(40)
			m.Summary = make([]directory.Version, sz)
			for i := range m.Summary {
				m.Summary[i] = directory.Version{Epoch: uint32(rng.Intn(3)), Seq: uint32(rng.Intn(3))}
			}
			m.NumKnown = rng.Intn(50)
			m.Digest = rng.Uint64()
		}
		n.Receive(directory.PeerID(rng.Intn(6)-1), m)
	}
	// The node must still believe in itself.
	rec, ok := n.Directory().Get(0)
	if !ok || rec.Ver.Epoch != 1 {
		t.Fatalf("self record corrupted: %+v %v", rec, ok)
	}
}

// WireSize must be total and non-negative on arbitrary messages.
func TestWireSizeTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := DefaultSizes()
	for trial := 0; trial < 2000; trial++ {
		m := &Message{
			Type:     MsgType(rng.Intn(10)),
			NumKnown: rng.Intn(10000) - 100,
		}
		for i := 0; i < rng.Intn(5); i++ {
			m.Updates = append(m.Updates, directory.Record{
				DiffSize: int32(rng.Intn(100000)), PayloadSize: int32(rng.Intn(100000)),
			})
			m.AsDiff = append(m.AsDiff, rng.Intn(2) == 0)
		}
		if m.WireSize(sizes) < 0 {
			t.Fatalf("negative wire size for %+v", m)
		}
	}
}
