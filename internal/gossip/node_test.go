package gossip

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"planetp/internal/directory"
)

// fakeNet is a synchronous in-memory message fabric for unit-testing Node
// logic: Send delivers immediately (recursively), which is fine for the
// request/reply shapes the protocol uses.
type fakeNet struct {
	nodes   map[directory.PeerID]*Node
	offline map[directory.PeerID]bool
	// failNext fails the next n sends to a peer (transient faults),
	// decrementing per attempt.
	failNext map[directory.PeerID]int
	now      time.Duration
	rng      *rand.Rand
	sent     []sentMsg
	drop     func(to directory.PeerID, m *Message) bool
}

type sentMsg struct {
	from, to directory.PeerID
	msg      *Message
}

func newFakeNet(seed int64) *fakeNet {
	return &fakeNet{
		nodes:    make(map[directory.PeerID]*Node),
		offline:  make(map[directory.PeerID]bool),
		failNext: make(map[directory.PeerID]int),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// env binds a fakeNet to one node id.
type fakeEnv struct {
	net *fakeNet
	id  directory.PeerID
}

func (e *fakeEnv) Now() time.Duration            { return e.net.now }
func (e *fakeEnv) Rand() *rand.Rand              { return e.net.rng }
func (e *fakeEnv) IntervalChanged(time.Duration) {}

func (e *fakeEnv) Send(to directory.PeerID, m *Message) error {
	if e.net.offline[to] {
		return errors.New("offline")
	}
	if e.net.failNext[to] > 0 {
		e.net.failNext[to]--
		return errors.New("transient failure")
	}
	if e.net.drop != nil && e.net.drop(to, m) {
		return nil // silently dropped (lost in transit)
	}
	e.net.sent = append(e.net.sent, sentMsg{from: e.id, to: to, msg: m})
	if n, ok := e.net.nodes[to]; ok {
		n.Receive(e.id, m)
	}
	return nil
}

func (f *fakeNet) addNode(id directory.PeerID, capacity int, cfg Config) *Node {
	rec := directory.Record{ID: id, Class: directory.Fast, DiffSize: 100, PayloadSize: 1000}
	dir := directory.New(id, capacity)
	n := NewNode(rec, dir, cfg, &fakeEnv{net: f, id: id})
	f.nodes[id] = n
	return n
}

// connect makes every node know every other's record and quiesces.
func (f *fakeNet) connect() {
	var recs []directory.Record
	for _, n := range f.nodes {
		recs = append(recs, n.SelfRecord())
	}
	for _, n := range f.nodes {
		for _, r := range recs {
			n.Directory().Upsert(r)
		}
		n.Quiesce()
	}
}

func TestNewNodeActivatesJoinRumor(t *testing.T) {
	f := newFakeNet(1)
	n := f.addNode(0, 4, Config{})
	if n.ActiveRumors() != 1 {
		t.Fatalf("ActiveRumors = %d, want 1 (join announcement)", n.ActiveRumors())
	}
	rec, ok := n.Directory().Get(0)
	if !ok || rec.Ver != (directory.Version{Epoch: 1, Seq: 0}) {
		t.Fatalf("self record = %+v %v", rec, ok)
	}
}

func TestRumorPropagatesAndAcks(t *testing.T) {
	f := newFakeNet(2)
	a := f.addNode(0, 4, Config{})
	b := f.addNode(1, 4, Config{})
	f.connect()

	a.Publish(300, 3000, nil)
	if a.ActiveRumors() != 1 {
		t.Fatalf("publish did not activate rumor")
	}
	a.Tick() // only possible target is b
	if got := b.Directory().VersionOf(0); got != (directory.Version{Epoch: 1, Seq: 1}) {
		t.Fatalf("b's view of a = %v", got)
	}
	// b should now itself be spreading the rumor.
	if b.ActiveRumors() != 1 {
		t.Fatalf("b.ActiveRumors = %d, want 1", b.ActiveRumors())
	}
	// Repeated known-acks from the same peer must NOT retire the rumor
	// (Demers counts distinct "peers in a row").
	for i := 0; i < 10; i++ {
		a.Tick()
	}
	if a.ActiveRumors() != 1 {
		t.Fatalf("rumor retired against a single repeated contact: %d active", a.ActiveRumors())
	}
	// Three distinct already-knowing ackers do retire it.
	rid := RumorID{Peer: 0, Ver: directory.Version{Epoch: 1, Seq: 1}}
	// (b == peer 1 was the last acker, so start with other peers.)
	for _, from := range []directory.PeerID{2, 3, 1} {
		a.Receive(from, &Message{Type: MsgRumorAck, From: from,
			Acked: []RumorID{rid}, Known: []bool{true}})
	}
	if a.ActiveRumors() != 0 {
		t.Fatalf("rumor did not retire after 3 distinct known-acks: %d active", a.ActiveRumors())
	}
	if a.Stats().Retired != 1 {
		t.Fatalf("Retired = %d, want 1", a.Stats().Retired)
	}
}

func TestSupersededRumorReplaced(t *testing.T) {
	f := newFakeNet(3)
	a := f.addNode(0, 4, Config{})
	f.addNode(1, 4, Config{})
	f.connect()
	a.Publish(10, 100, nil)
	a.Publish(20, 200, nil)
	if a.ActiveRumors() != 1 {
		t.Fatalf("superseding publish should keep one active rumor, got %d", a.ActiveRumors())
	}
}

func TestAntiEntropyCuresResidual(t *testing.T) {
	f := newFakeNet(4)
	a := f.addNode(0, 8, Config{})
	b := f.addNode(1, 8, Config{})
	c := f.addNode(2, 8, Config{})
	f.connect()

	// a learns something new but never rumors to c.
	a.Publish(50, 500, nil)
	// Deliver the rumor to b only, manually.
	b.Receive(0, &Message{Type: MsgRumor, From: 0, Updates: []directory.Record{mustGet(t, a, 0)}})
	if c.Directory().VersionOf(0).Seq != 0 {
		t.Fatal("c should not know yet")
	}
	// c runs an anti-entropy round against b: request -> summary -> pull
	// -> records, all synchronous in fakeNet.
	c.Receive(1, &Message{
		Type: MsgAESummary, From: 1,
		Digest:   b.Directory().Digest(),
		Summary:  b.Directory().Summary(),
		NumKnown: b.Directory().NumKnown(),
	})
	if got := c.Directory().VersionOf(0); got.Seq != 1 {
		t.Fatalf("anti-entropy did not cure residual: c's view = %v", got)
	}
}

func TestPartialAntiEntropyPull(t *testing.T) {
	f := newFakeNet(5)
	a := f.addNode(0, 8, Config{})
	b := f.addNode(1, 8, Config{})
	f.connect()

	// b learns and fully retires a rumor about peer 0's update without a
	// ever... construct directly: feed b a record for a newer version of
	// a fake peer record (peer id 2 known to both via connect? add it).
	rec := directory.Record{ID: 2, Ver: directory.Version{Epoch: 1, Seq: 5}, DiffSize: 10, PayloadSize: 100}
	b.Directory().Upsert(rec)
	b.mu.Lock()
	b.retireLocked(2, rec.Ver) // as if the rumor died at b
	b.mu.Unlock()

	// a sends b a rumor; b's ack piggybacks the retired id; a pulls.
	a.Publish(10, 100, nil)
	a.Tick()
	if got := a.Directory().VersionOf(2); got != rec.Ver {
		t.Fatalf("partial anti-entropy failed: a's view of 2 = %v, want %v", got, rec.Ver)
	}
	if a.Stats().PullsSent == 0 {
		t.Fatal("no pull was sent")
	}
}

func TestPiggybackDisabled(t *testing.T) {
	f := newFakeNet(6)
	cfg := Config{PiggybackCount: -1} // LAN-NPA ablation
	a := f.addNode(0, 8, cfg)
	b := f.addNode(1, 8, cfg)
	f.connect()
	rec := directory.Record{ID: 2, Ver: directory.Version{Epoch: 1, Seq: 5}}
	b.Directory().Upsert(rec)
	b.mu.Lock()
	b.retireLocked(2, rec.Ver)
	b.mu.Unlock()
	if len(b.retired) != 0 {
		t.Fatal("retired ring should stay empty when piggyback disabled")
	}
	a.Publish(10, 100, nil)
	a.Tick()
	if a.Directory().VersionOf(2) == rec.Ver {
		t.Fatal("update leaked without partial anti-entropy")
	}
}

func TestAdaptiveIntervalSlowsAndResets(t *testing.T) {
	f := newFakeNet(7)
	a := f.addNode(0, 4, Config{})
	b := f.addNode(1, 4, Config{})
	f.connect()
	base := a.Interval()
	if base != 30*time.Second {
		t.Fatalf("base interval = %v", base)
	}
	// Converged: ticks are all AE (no rumors) and directories identical.
	// Two gossip-less contacts -> one slow-down step (+5s).
	for i := 0; i < 4; i++ {
		a.Tick()
	}
	if got := a.Interval(); got != 40*time.Second {
		t.Fatalf("after 4 identical AE contacts interval = %v, want 40s", got)
	}
	// Keep going: capped at MaxInterval.
	for i := 0; i < 40; i++ {
		a.Tick()
	}
	if got := a.Interval(); got != 60*time.Second {
		t.Fatalf("interval cap = %v, want 60s", got)
	}
	// News resets to base.
	b.Publish(10, 100, nil)
	b.Tick()
	if got := a.Interval(); got != base {
		t.Fatalf("interval after news = %v, want %v", got, base)
	}
}

func TestOfflineDetectionOnSendFailure(t *testing.T) {
	f := newFakeNet(8)
	a := f.addNode(0, 4, Config{})
	f.addNode(1, 4, Config{})
	f.connect()
	f.offline[1] = true
	a.Publish(10, 100, nil)
	// With the default suspicion threshold (2), the first failure only
	// opens a streak; the peer stays on-line.
	a.Tick()
	e, ok := a.Directory().Entry(1)
	if !ok || !e.Online {
		t.Fatalf("one failed send must not mark peer offline: %+v", e)
	}
	// The second consecutive failure crosses the threshold.
	a.Tick()
	e, _ = a.Directory().Entry(1)
	if e.Online {
		t.Fatalf("two failed sends should mark peer offline: %+v", e)
	}
	if a.Stats().FailedSends != 2 {
		t.Fatalf("FailedSends = %d", a.Stats().FailedSends)
	}
	if a.Stats().Suspected != 1 {
		t.Fatalf("Suspected = %d", a.Stats().Suspected)
	}
	// Hearing from the peer again flips it back.
	f.offline[1] = false
	a.Receive(1, &Message{Type: MsgAERequest, From: 1, Digest: 0})
	e, _ = a.Directory().Entry(1)
	if !e.Online {
		t.Fatal("receive should mark peer online")
	}
}

func TestOneStrikeModeRestoresOldBehavior(t *testing.T) {
	f := newFakeNet(8)
	a := f.addNode(0, 4, Config{SuspicionThreshold: -1})
	f.addNode(1, 4, Config{SuspicionThreshold: -1})
	f.connect()
	f.offline[1] = true
	a.Publish(10, 100, nil)
	a.Tick()
	if e, _ := a.Directory().Entry(1); e.Online {
		t.Fatalf("SuspicionThreshold -1 should mark offline on first failure: %+v", e)
	}
}

// Regression for the one-strike flakiness the suspicion state machine
// replaces: a live peer that suffers a single transient dial failure must
// not be marked off-line, and must still receive the rumor when the next
// round retries it.
func TestTransientFailureSurvivedAndRumorRetried(t *testing.T) {
	f := newFakeNet(11)
	a := f.addNode(0, 4, Config{})
	b := f.addNode(1, 4, Config{})
	f.connect()

	rec := a.Publish(10, 100, nil)
	f.failNext[1] = 1 // exactly one transient failure
	a.Tick()
	if e, _ := a.Directory().Entry(1); !e.Online {
		t.Fatal("peer exiled after one transient failure")
	}
	if got := b.Directory().VersionOf(0); !got.Less(rec.Ver) {
		t.Fatalf("rumor should not have arrived yet (got %v)", got)
	}
	if a.ActiveRumors() == 0 {
		t.Fatal("failed push must leave the rumor enqueued")
	}
	// Next round retries and delivers.
	a.Tick()
	if got := b.Directory().VersionOf(0); got != rec.Ver {
		t.Fatalf("rumor not delivered after retry: have %v, want %v", got, rec.Ver)
	}
	if e, _ := a.Directory().Entry(1); !e.Online {
		t.Fatal("peer should remain online after successful retry")
	}
}

func TestSuccessResetsSuspicionStreak(t *testing.T) {
	f := newFakeNet(12)
	a := f.addNode(0, 4, Config{})
	f.addNode(1, 4, Config{})
	f.connect()
	a.Publish(10, 100, nil)
	// fail, succeed, fail: never two consecutive failures.
	f.failNext[1] = 1
	a.Tick()
	a.Tick()
	f.failNext[1] = 1
	a.Tick()
	if e, _ := a.Directory().Entry(1); !e.Online {
		t.Fatal("non-consecutive failures must not mark peer offline")
	}
	if a.Stats().FailedSends != 2 {
		t.Fatalf("FailedSends = %d, want 2", a.Stats().FailedSends)
	}
}

// A failed pull send must release the pull-in-flight gate so the next
// opportunity can re-issue it, instead of silently dropping the pull and
// stalling partial anti-entropy for 20 base intervals.
func TestFailedPullReleasesInFlightGate(t *testing.T) {
	f := newFakeNet(13)
	a := f.addNode(0, 8, Config{})
	b := f.addNode(1, 8, Config{})
	c := f.addNode(2, 8, Config{})
	f.connect()

	// b learns a new version of c that a lacks.
	rec := c.Publish(10, 100, nil)
	b.Directory().Upsert(rec)

	// a hears b's summary, tries to pull, but the send fails.
	f.failNext[1] = 1
	a.Receive(1, &Message{Type: MsgAESummary, From: 1, Digest: b.Directory().Digest(), Summary: b.Directory().Summary(), NumKnown: b.Directory().NumKnown()})
	if got := a.Stats().PullsSent; got != 1 {
		t.Fatalf("PullsSent = %d, want 1", got)
	}
	if a.Directory().VersionOf(2) == rec.Ver {
		t.Fatal("pull should have failed")
	}
	// A second summary must be able to pull immediately (gate released).
	a.Receive(1, &Message{Type: MsgAESummary, From: 1, Digest: b.Directory().Digest(), Summary: b.Directory().Summary(), NumKnown: b.Directory().NumKnown()})
	if got := a.Stats().PullsSent; got != 2 {
		t.Fatalf("PullsSent = %d, want 2 (gate not released)", got)
	}
	if got := a.Directory().VersionOf(2); got != rec.Ver {
		t.Fatalf("record not pulled after retry: %v", got)
	}
}

// Probing recovers peers wrongly believed off-line: after the suspicion
// threshold exiles an unreachable peer, a later probe round re-contacts
// it and the answer flips it back on-line.
func TestProbeRecoversOfflinePeer(t *testing.T) {
	f := newFakeNet(14)
	a := f.addNode(0, 4, Config{ProbeEvery: 4})
	f.addNode(1, 4, Config{ProbeEvery: 4})
	f.connect()

	a.Publish(10, 100, nil)
	f.offline[1] = true
	a.Tick()
	a.Tick()
	if e, _ := a.Directory().Entry(1); e.Online {
		t.Fatal("setup: peer should be suspected offline")
	}
	// Peer comes back. Ticks continue; every 4th round probes it.
	f.offline[1] = false
	for i := 0; i < 8; i++ {
		a.Tick()
	}
	if e, _ := a.Directory().Entry(1); !e.Online {
		t.Fatal("probe should have rediscovered the live peer")
	}
	if a.Stats().ProbesSent == 0 {
		t.Fatal("no probes were sent")
	}
}

func TestRejoinSupersedes(t *testing.T) {
	f := newFakeNet(9)
	a := f.addNode(0, 4, Config{})
	b := f.addNode(1, 4, Config{})
	f.connect()
	a.Publish(10, 100, nil) // ver 1.1
	rec := a.Rejoin(0, 0, nil)
	if rec.Ver != (directory.Version{Epoch: 2, Seq: 0}) {
		t.Fatalf("rejoin version = %v", rec.Ver)
	}
	// Old version must lose to the rejoin announcement.
	b.Directory().Upsert(rec)
	if b.Directory().Upsert(directory.Record{ID: 0, Ver: directory.Version{Epoch: 1, Seq: 1}}) {
		t.Fatal("stale pre-rejoin record accepted")
	}
}

func TestAEOnlyModeNeverRumors(t *testing.T) {
	f := newFakeNet(10)
	cfg := Config{Mode: ModeAEOnly}
	a := f.addNode(0, 4, cfg)
	b := f.addNode(1, 4, cfg)
	f.connect()
	a.Publish(10, 100, nil)
	for i := 0; i < 5; i++ {
		a.Tick()
	}
	if a.Stats().RumorsSent != 0 {
		t.Fatalf("AE-only node sent %d rumors", a.Stats().RumorsSent)
	}
	if a.Stats().AESummaries == 0 {
		t.Fatal("AE-only node sent no summaries")
	}
	// The push-AE still propagates the update (b pulls from a).
	if got := b.Directory().VersionOf(0); got.Seq != 1 {
		t.Fatalf("push AE did not propagate: %v", got)
	}
}

func TestSelfRecordImmuneToGossip(t *testing.T) {
	f := newFakeNet(11)
	a := f.addNode(0, 4, Config{})
	f.connect()
	// A (bogus) newer record about ourselves must be ignored.
	a.Receive(1, &Message{Type: MsgRecords, From: 1, Updates: []directory.Record{
		{ID: 0, Ver: directory.Version{Epoch: 99, Seq: 0}},
	}})
	if got := a.SelfRecord().Ver; got.Epoch != 1 {
		t.Fatalf("self record mutated: %v", got)
	}
}

func TestTDeadDropsLongOfflinePeers(t *testing.T) {
	f := newFakeNet(12)
	cfg := Config{TDead: time.Hour, SuspicionThreshold: -1}
	a := f.addNode(0, 8, cfg)
	f.addNode(1, 8, cfg)
	f.connect()
	// Peer 1 goes silent; a discovers it via a failed send.
	f.offline[1] = true
	a.Publish(10, 100, nil)
	a.Tick()
	if e, _ := a.Directory().Entry(1); e.Online {
		t.Fatal("not marked offline")
	}
	// Within T_Dead the record survives the periodic sweep.
	f.now = 30 * time.Minute
	for i := 0; i < 20; i++ {
		a.Tick()
	}
	if _, ok := a.Directory().Get(1); !ok {
		t.Fatal("record dropped before T_Dead")
	}
	// Past T_Dead it is garbage collected (Section 3: assumed to have
	// left permanently).
	f.now = 2 * time.Hour
	for i := 0; i < 20; i++ {
		a.Tick()
	}
	if _, ok := a.Directory().Get(1); ok {
		t.Fatal("record survived past T_Dead")
	}
}

func TestWireSizes(t *testing.T) {
	s := DefaultSizes()
	rumor := &Message{Type: MsgRumor, Updates: []directory.Record{{DiffSize: 3000}}}
	if got := rumor.WireSize(s); got != 3+48+3000 {
		t.Fatalf("rumor size = %d", got)
	}
	ack := &Message{Type: MsgRumorAck,
		Acked: make([]RumorID, 2), Known: make([]bool, 2), Recent: make([]RumorID, 10)}
	if got := ack.WireSize(s); got != 3+1+2*6+10*6 {
		t.Fatalf("ack size = %d", got)
	}
	// The paper promises the piggyback is "in order of tens of bytes".
	if got := ack.WireSize(s) - 3 - 1 - 2*6; got > 100 {
		t.Fatalf("piggyback too big: %d", got)
	}
	summ := &Message{Type: MsgAESummary, NumKnown: 1000}
	if got := summ.WireSize(s); got != 3+8+1000*6 {
		t.Fatalf("summary size = %d (must be proportional to community)", got)
	}
	ident := &Message{Type: MsgAESummary, NumKnown: 1000, Identical: true}
	if got := ident.WireSize(s); got != 3+8 {
		t.Fatalf("identical summary size = %d (checksum-only)", got)
	}
	req := &Message{Type: MsgAERequest}
	if got := req.WireSize(s); got != 11 {
		t.Fatalf("request size = %d", got)
	}
	recs := &Message{Type: MsgRecords,
		Updates: []directory.Record{{DiffSize: 100, PayloadSize: 1000}, {DiffSize: 100, PayloadSize: 1000}},
		AsDiff:  []bool{true, false}}
	if got := recs.WireSize(s); got != 3+48+100+48+1000 {
		t.Fatalf("records size = %d", got)
	}
	pull := &Message{Type: MsgPull, Need: make([]directory.NeedEntry, 3)}
	if got := pull.WireSize(s); got != 3+18 {
		t.Fatalf("pull size = %d", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.BaseInterval != 30*time.Second || c.MaxInterval != 60*time.Second ||
		c.SlowdownStep != 5*time.Second || c.GossiplessThreshold != 2 ||
		c.AEEvery != 10 || c.RumorTTL != 3 || c.PiggybackCount != 10 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.Sizes != DefaultSizes() {
		t.Fatalf("sizes = %+v", c.Sizes)
	}
}

func TestMsgTypeString(t *testing.T) {
	for mt := MsgRumor; mt <= MsgAESummary; mt++ {
		if mt.String() == "unknown" {
			t.Fatalf("missing String for %d", mt)
		}
	}
	if MsgType(99).String() != "unknown" {
		t.Fatal("unknown type should say so")
	}
}

func mustGet(t *testing.T, n *Node, id directory.PeerID) directory.Record {
	t.Helper()
	rec, ok := n.Directory().Get(id)
	if !ok {
		t.Fatalf("record %d missing", id)
	}
	return rec
}
