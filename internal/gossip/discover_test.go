package gossip

import (
	"errors"
	"testing"

	"planetp/internal/directory"
)

// exchEnv is a fakeEnv whose transport also answers peer-exchange pulls,
// like the live transport and the simulator do.
type exchEnv struct {
	*fakeEnv
	sample []directory.Record
	calls  int
	maxes  []int
	err    error
}

func (e *exchEnv) ExchangePeers(to directory.PeerID, max int) ([]directory.Record, error) {
	e.calls++
	e.maxes = append(e.maxes, max)
	if e.err != nil {
		return nil, e.err
	}
	if len(e.sample) > max {
		return e.sample[:max], nil
	}
	return e.sample, nil
}

func newExchNode(t *testing.T, cfg Config, sample []directory.Record) (*Node, *exchEnv) {
	t.Helper()
	f := newFakeNet(1)
	env := &exchEnv{fakeEnv: &fakeEnv{net: f, id: 0}, sample: sample}
	rec := directory.Record{ID: 0, Class: directory.Fast, DiffSize: 100, PayloadSize: 1000}
	n := NewNode(rec, directory.New(0, 16), cfg, env)
	f.nodes[0] = n
	// The joiner starts knowing exactly one member, like a node booted
	// with a single seed address.
	n.Directory().Upsert(directory.Record{ID: 1, Ver: directory.Version{Epoch: 1}, Class: directory.Fast})
	return n, env
}

func sampleRecs(ids ...directory.PeerID) []directory.Record {
	recs := make([]directory.Record, 0, len(ids))
	for _, id := range ids {
		recs = append(recs, directory.Record{ID: id, Ver: directory.Version{Epoch: 1}})
	}
	return recs
}

// TestDiscoverPullsUntilMin: a node below DiscoverMin pulls a peer-
// exchange sample each round and stops as soon as its on-line view
// reaches the threshold.
func TestDiscoverPullsUntilMin(t *testing.T) {
	n, env := newExchNode(t, Config{DiscoverMin: 5}, sampleRecs(2, 3, 4))
	n.Tick()
	if env.calls != 1 {
		t.Fatalf("exchange calls = %d, want 1", env.calls)
	}
	if env.maxes[0] != 16 {
		t.Errorf("requested sample size %d, want the ExchangeMax default 16", env.maxes[0])
	}
	if got := n.Directory().NumOnline(); got != 5 {
		t.Fatalf("NumOnline = %d after discovery, want 5", got)
	}
	if s := n.Stats(); s.Exchanges != 1 || s.ExchangeRecs != 3 {
		t.Errorf("stats = %+v, want 1 exchange / 3 records", s)
	}
	// At the threshold the discovery loop goes quiet.
	n.Tick()
	if env.calls != 1 {
		t.Errorf("exchange calls = %d after reaching min, want still 1", env.calls)
	}
}

// TestDiscoverOffByDefault: without DiscoverMin the node never pulls,
// even though the env supports it.
func TestDiscoverOffByDefault(t *testing.T) {
	n, env := newExchNode(t, Config{}, sampleRecs(2, 3))
	for i := 0; i < 5; i++ {
		n.Tick()
	}
	if env.calls != 0 {
		t.Fatalf("exchange calls = %d, want 0", env.calls)
	}
}

// TestDiscoverNeedsCapableEnv: an env without peer exchange (e.g. a
// transport predating the RPC) degrades to plain gossip, no panic.
func TestDiscoverNeedsCapableEnv(t *testing.T) {
	f := newFakeNet(1)
	n := f.addNode(0, 8, Config{DiscoverMin: 5})
	n.Directory().Upsert(directory.Record{ID: 1, Ver: directory.Version{Epoch: 1}})
	n.Tick()
	if s := n.Stats(); s.Exchanges != 0 {
		t.Fatalf("stats = %+v, want no exchanges", s)
	}
}

// TestDiscoverFailureCountsAsSuspicion: failed exchange pulls feed the
// same suspicion streak as failed gossip sends. Against a dead peer the
// round's regular send and its exchange pull each add a strike, so the
// default threshold of two is reached within a single round instead of
// two — the exchange failure must not be swallowed.
func TestDiscoverFailureCountsAsSuspicion(t *testing.T) {
	n, env := newExchNode(t, Config{DiscoverMin: 5}, nil)
	env.err = errors.New("refused")
	env.net.offline[1] = true
	n.Tick()
	if env.calls != 1 {
		t.Fatalf("exchange calls = %d, want 1", env.calls)
	}
	if got := n.Directory().NumOnline(); got != 1 {
		t.Fatalf("NumOnline = %d after one round, want 1 (send + exchange strikes)", got)
	}
}
