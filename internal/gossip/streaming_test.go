package gossip

import (
	"testing"

	"planetp/internal/directory"
)

// streamSetup builds two nodes in a 20-id space where b knows 18 synthetic
// members and a knows only b — the worst case for summary exchange.
func streamSetup(t *testing.T, cfg Config) (*fakeNet, *Node, *Node) {
	t.Helper()
	f := newFakeNet(5)
	a := f.addNode(0, 20, cfg)
	b := f.addNode(1, 20, cfg)
	for id := directory.PeerID(2); id < 20; id++ {
		b.Directory().Upsert(directory.Record{
			ID: id, Ver: directory.Version{Epoch: 1, Seq: uint32(id)},
			Class: directory.Fast, DiffSize: 100, PayloadSize: 1000,
		})
	}
	a.Directory().Upsert(b.SelfRecord())
	b.Directory().Upsert(a.SelfRecord())
	a.Quiesce()
	b.Quiesce()
	return f, a, b
}

// TestStreamingAEConverges: with a 4-id summary chunk, one anti-entropy
// exchange streams the whole 20-id space through continuation cursors and
// the requester ends up with every record.
func TestStreamingAEConverges(t *testing.T) {
	f, a, b := streamSetup(t, Config{SummaryChunk: 4})
	a.Tick() // AE round (no active rumors after Quiesce)

	if got, want := a.Directory().NumKnown(), 20; got != want {
		t.Fatalf("a knows %d records after streamed AE, want %d", got, want)
	}
	if a.Directory().Digest() != b.Directory().Digest() {
		t.Fatal("digests differ after streamed exchange")
	}

	// The exchange must actually have streamed: multiple bounded chunks
	// and continuation requests, never a full summary in one message.
	chunks, continuations := 0, 0
	for _, s := range f.sent {
		switch s.msg.Type {
		case MsgAESummary:
			if s.msg.Identical {
				continue
			}
			chunks++
			if len(s.msg.Summary) > 4 {
				t.Fatalf("summary message carries %d entries, chunk limit is 4", len(s.msg.Summary))
			}
			if s.msg.NumKnown > 4 {
				t.Fatalf("NumKnown %d exceeds chunk limit", s.msg.NumKnown)
			}
		case MsgAERequest:
			if s.msg.Cursor > 0 {
				continuations++
			}
		}
	}
	if chunks != 5 {
		t.Fatalf("chunks sent = %d, want 5 (20 ids / 4 per chunk)", chunks)
	}
	if continuations != 4 {
		t.Fatalf("continuation requests = %d, want 4", continuations)
	}
}

// TestStreamingAEIdenticalFastPath: converged directories still settle the
// exchange with one Identical reply — the stream never starts.
func TestStreamingAEIdenticalFastPath(t *testing.T) {
	f, a, b := streamSetup(t, Config{SummaryChunk: 4})
	a.Tick()
	before := len(f.sent)
	b.Receive(0, &Message{Type: MsgAERequest, From: 0, Digest: a.Directory().Digest()})
	reply := f.sent[len(f.sent)-1]
	if reply.msg.Type != MsgAESummary || !reply.msg.Identical {
		t.Fatalf("converged request answered with %+v, want Identical summary", reply.msg)
	}
	if len(f.sent) != before+1 {
		t.Fatalf("converged exchange sent %d messages, want 1", len(f.sent)-before)
	}
}

// TestStreamingAEWireAccounting: chunked replies charge per-chunk known
// counts plus the cursor fields; continuations charge the extra cursor.
func TestStreamingAEWireAccounting(t *testing.T) {
	s := DefaultSizes()
	full := &Message{Type: MsgAESummary, NumKnown: 20}
	if got, want := full.WireSize(s), s.Header+8+20*s.BFSummary; got != want {
		t.Fatalf("full summary wire = %d, want %d", got, want)
	}
	chunk := &Message{Type: MsgAESummary, NumKnown: 4, SummaryFrom: 8, Next: 12}
	if got, want := chunk.WireSize(s), s.Header+8+4*s.BFSummary+4; got != want {
		t.Fatalf("chunk wire = %d, want %d", got, want)
	}
	first := &Message{Type: MsgAESummary, NumKnown: 4, SummaryFrom: 0, Next: 4}
	if got, want := first.WireSize(s), s.Header+8+4*s.BFSummary+4; got != want {
		t.Fatalf("first chunk wire = %d, want %d", got, want)
	}
	req := &Message{Type: MsgAERequest}
	if got, want := req.WireSize(s), s.Header+8; got != want {
		t.Fatalf("request wire = %d, want %d", got, want)
	}
	cont := &Message{Type: MsgAERequest, Cursor: 12}
	if got, want := cont.WireSize(s), s.Header+8+4; got != want {
		t.Fatalf("continuation wire = %d, want %d", got, want)
	}
}

// TestStreamingAEDisabled: a negative SummaryChunk restores the one-shot
// full-summary exchange.
func TestStreamingAEDisabled(t *testing.T) {
	f, a, b := streamSetup(t, Config{SummaryChunk: -1})
	a.Tick()
	if a.Directory().Digest() != b.Directory().Digest() {
		t.Fatal("digests differ after unchunked exchange")
	}
	for _, s := range f.sent {
		if s.msg.Type == MsgAESummary && s.msg.Next > 0 {
			t.Fatal("chunked reply sent despite SummaryChunk < 0")
		}
		if s.msg.Type == MsgAERequest && s.msg.Cursor > 0 {
			t.Fatal("continuation sent despite SummaryChunk < 0")
		}
	}
}
