// Package gossip implements PlanetP's gossiping algorithm (Section 3): a
// combination of push rumor mongering, periodic pull anti-entropy, and the
// paper's novel partial anti-entropy (rumor-ack piggybacking), with the
// dynamically adaptive gossip interval and the bandwidth-aware two-class
// target selection of Section 7.2.
//
// The engine is transport-agnostic: a Node is a passive state machine
// driven through Tick (the gossip timer fired) and Receive (a message
// arrived), sending through an Env. The discrete-event simulator
// (internal/simnet) and the live TCP transport (internal/transport) both
// drive the same code.
package gossip

import (
	"time"

	"planetp/internal/directory"
	"planetp/internal/metrics"
)

// MsgType enumerates protocol messages.
type MsgType uint8

// Protocol message types.
const (
	// MsgRumor pushes the sender's active rumors (record updates).
	MsgRumor MsgType = iota
	// MsgRumorAck acknowledges a rumor, reporting which updates were
	// already known and piggybacking recently retired rumor ids (the
	// partial anti-entropy of Section 3).
	MsgRumorAck
	// MsgPull requests specific records (by id + version held).
	MsgPull
	// MsgRecords delivers requested records.
	MsgRecords
	// MsgAERequest asks the target for its directory summary (pull
	// anti-entropy). Carries the requester's digest so an identical
	// directory can be detected without shipping the summary contents
	// in-process (wire accounting still charges the full summary).
	MsgAERequest
	// MsgAESummary carries a directory summary, either as a reply to
	// MsgAERequest or unsolicited (the push-anti-entropy baseline,
	// LAN-AE in Figure 2).
	MsgAESummary
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgRumor:
		return "rumor"
	case MsgRumorAck:
		return "rumor-ack"
	case MsgPull:
		return "pull"
	case MsgRecords:
		return "records"
	case MsgAERequest:
		return "ae-request"
	case MsgAESummary:
		return "ae-summary"
	}
	return "unknown"
}

// RumorID identifies one rumor: a peer record at a specific version.
type RumorID struct {
	Peer directory.PeerID
	Ver  directory.Version
}

// Message is the single wire unit. Fields are populated according to Type;
// a single struct keeps gob encoding simple for the live transport.
type Message struct {
	Type MsgType
	From directory.PeerID

	// Updates carries records for MsgRumor and MsgRecords.
	Updates []directory.Record
	// AsDiff marks, per update in MsgRecords, whether the responder
	// could satisfy the pull with a Bloom-filter diff (affects only
	// wire-size accounting in simulation; live mode always sends full
	// payloads).
	AsDiff []bool

	// Acked and Known echo the rumor ids received and whether each was
	// already known (MsgRumorAck).
	Acked []RumorID
	Known []bool
	// Recent piggybacks the receiver's recently retired rumor ids on
	// the ack — the partial anti-entropy.
	Recent []RumorID

	// Need lists the records the sender wants (MsgPull).
	Need []directory.NeedEntry

	// Digest is the sender's directory digest (MsgAERequest,
	// MsgAESummary).
	Digest uint64
	// Identical reports the responder's digest matched the requester's,
	// so Summary is omitted in-process (MsgAESummary). The wire size is
	// charged as a full summary regardless — the real protocol always
	// ships it.
	Identical bool
	// Summary is a dense version vector (MsgAESummary): either the whole
	// directory (index = PeerID) or, when streaming, one bounded chunk
	// whose index 0 corresponds to peer SummaryFrom. Shared read-only
	// slice for full summaries; receivers must not modify it.
	Summary []directory.Version
	// NumKnown is the number of known entries the summary (or chunk)
	// covers (wire accounting).
	NumKnown int

	// Cursor asks the responder to start its summary at this peer id
	// (MsgAERequest). <= 0 starts from the beginning; a positive cursor
	// marks a streaming continuation, which skips the identical-digest
	// fast path (the stream is already in progress).
	Cursor directory.PeerID
	// SummaryFrom is the peer id Summary[0] corresponds to
	// (MsgAESummary). <= 0 for full summaries.
	SummaryFrom directory.PeerID
	// Next is the cursor of the following chunk (MsgAESummary), <= 0
	// when this chunk reaches the end of the id space. The zero value
	// therefore reads as "complete", keeping unchunked messages (and
	// everything recorded before streaming existed) valid.
	Next directory.PeerID
}

// Sizes holds the wire-size constants from Table 2 of the paper, used by
// the simulator to charge bandwidth. Live mode uses real encoded bytes and
// ignores these.
type Sizes struct {
	// Header is the fixed per-message overhead (Table 2: 3 bytes).
	Header int
	// PeerSummary is the size of one peer record sans Bloom payload
	// (Table 2: 48 bytes). Used per entry in directory summaries and
	// per record in rumors/pull replies.
	PeerSummary int
	// BFSummary is the compact per-filter summary (Table 2: 6 bytes),
	// used for piggybacked rumor ids and pull-request entries — this is
	// what makes the partial anti-entropy cost "tens of bytes".
	BFSummary int
}

// DefaultSizes returns Table 2's constants.
func DefaultSizes() Sizes {
	return Sizes{Header: 3, PeerSummary: 48, BFSummary: 6}
}

// WireSize computes the simulated on-the-wire size of m in bytes.
func (m *Message) WireSize(s Sizes) int {
	n := s.Header
	switch m.Type {
	case MsgRumor:
		for i := range m.Updates {
			n += s.PeerSummary + int(m.Updates[i].DiffSize)
		}
	case MsgRumorAck:
		n += (len(m.Known) + 7) / 8
		n += len(m.Acked) * s.BFSummary
		n += len(m.Recent) * s.BFSummary
	case MsgPull:
		n += len(m.Need) * s.BFSummary
	case MsgRecords:
		for i := range m.Updates {
			n += s.PeerSummary
			if i < len(m.AsDiff) && m.AsDiff[i] {
				n += int(m.Updates[i].DiffSize)
			} else {
				n += int(m.Updates[i].PayloadSize)
			}
		}
	case MsgAERequest:
		n += 8 // digest
		if m.Cursor > 0 {
			n += 4 // streaming continuation cursor
		}
	case MsgAESummary:
		// Demers-style anti-entropy exchanges checksums first and ships
		// the per-peer summary (one BFSummary entry per known peer)
		// only on mismatch; this is what makes converged-community
		// bandwidth "negligible" (Section 3) while keeping the AE-only
		// baseline's volume proportional to community size (its pushes
		// are unsolicited, so they always carry the summary). Streamed
		// replies charge only the chunk they carry (NumKnown counts the
		// chunk's known records) plus the two cursor fields.
		n += 8
		if !m.Identical && m.NumKnown > 0 {
			n += m.NumKnown * s.BFSummary
		}
		if m.SummaryFrom > 0 || m.Next > 0 {
			n += 4 // chunk base + next cursor (packed)
		}
	}
	return n
}

// Mode selects the protocol variant.
type Mode uint8

// Protocol variants.
const (
	// ModeRumor is PlanetP's full algorithm: rumor mongering + periodic
	// pull anti-entropy + partial anti-entropy.
	ModeRumor Mode = iota
	// ModeAEOnly is the push-anti-entropy-only baseline (LAN-AE in
	// Figure 2), in the style of Name Dropper/Bayou/Deno.
	ModeAEOnly
)

// Config parameterizes a Node. Zero fields are replaced by defaults from
// the paper (Section 3 and Table 2).
type Config struct {
	// BaseInterval is T_g, the base gossiping interval (30 s).
	BaseInterval time.Duration
	// MaxInterval caps the adaptive slow-down (Table 2: 60 s).
	MaxInterval time.Duration
	// SlowdownStep is the slow-down constant (5 s).
	SlowdownStep time.Duration
	// GossiplessThreshold is how many identical-directory contacts
	// trigger one slow-down step (2).
	GossiplessThreshold int
	// AEEvery makes every AEEvery-th round an anti-entropy round (10).
	AEEvery int
	// RumorTTL stops spreading a rumor after this many consecutive
	// already-knew contacts (Demers' n; the paper leaves it unnamed —
	// default 3).
	RumorTTL int
	// PiggybackCount is m, the number of recently retired rumor ids
	// piggybacked on rumor acks (default 10). Zero disables the partial
	// anti-entropy (the LAN-NPA ablation of Figure 4a) — use -1 for
	// "default".
	PiggybackCount int
	// TDead drops peers continuously off-line this long (0 = never).
	TDead time.Duration
	// SuspicionThreshold is how many consecutive failed sends to a peer
	// are needed before it is marked off-line (default 2, so one
	// transient dial failure is forgiven). -1 restores the original
	// one-strike behavior. Any success, or hearing from the peer, resets
	// its streak.
	SuspicionThreshold int
	// ProbeEvery makes every ProbeEvery-th round additionally probe one
	// random peer currently believed off-line with an anti-entropy
	// request (default 8; -1 disables). A live peer answers, flipping
	// the local opinion back on-line — the recovery path for suspected
	// peers and healed partitions.
	ProbeEvery int
	// DiscoverMin, when positive, enables bootstrap discovery: while the
	// directory believes fewer than DiscoverMin peers (including self)
	// are on-line, every round additionally pulls a bounded random
	// sample of known-on-line records from one contact — provided the
	// Env also implements PeerExchanger. Records learned this way are
	// applied like anti-entropy pulls (news, but never re-rumored). Zero
	// disables discovery; established members whose directory already
	// meets the minimum pay nothing.
	DiscoverMin int
	// ExchangeMax bounds how many records one discovery pull requests
	// (default 16).
	ExchangeMax int
	// OnDrop, if non-nil, is invoked (outside the node's lock) after
	// DropDead garbage-collects records, with the dropped ids and the
	// collection time. Experiment harnesses use it to audit the T_Dead
	// invariants — no live peer collected, no dead record kept forever.
	OnDrop func(dropped []directory.PeerID, now time.Duration)
	// MaxPullBatch caps how many records one anti-entropy pull requests
	// (0 = unlimited). Bandwidth-limited peers set this to acquire a
	// large directory in pieces across successive exchanges instead of
	// one multi-minute transfer (the paper's proposed accommodation for
	// modem users joining large communities).
	MaxPullBatch int
	// SummaryChunk bounds how many peer ids one anti-entropy summary
	// reply covers (default 4096). Requested summaries stream in chunks:
	// the responder answers [Cursor, Cursor+SummaryChunk) of the id
	// space and the requester issues continuation requests, so neither
	// side ever materializes a full []Version per exchange at 100k-peer
	// scale. Negative disables chunking (one full-summary reply). The
	// AE-only baseline's unsolicited pushes always carry the full
	// summary — that cost is the point of the baseline.
	SummaryChunk int
	// Mode selects the protocol variant.
	Mode Mode
	// BandwidthAware enables the two-class target selection.
	BandwidthAware bool
	// SlowPeerProb is the probability a fast peer rumors to a slow one
	// (0.01).
	SlowPeerProb float64
	// Sizes are the wire-accounting constants.
	Sizes Sizes
	// OnNews, if non-nil, is invoked (outside the node's lock) for
	// every record accepted as fresh — the hook applications use to
	// re-evaluate persistent queries when a new Bloom filter arrives
	// (Section 5.1).
	OnNews func(directory.Record)
	// Metrics, if non-nil, receives the node's protocol counters
	// (gossip_* names). The same registry is shared with the transport
	// or simulator driving the node, so one snapshot covers a whole
	// peer. Nil disables instrumentation at zero cost.
	Metrics *metrics.Registry
}

// WithDefaults fills zero fields with the paper's values.
func (c Config) WithDefaults() Config {
	if c.BaseInterval == 0 {
		c.BaseInterval = 30 * time.Second
	}
	if c.MaxInterval == 0 {
		c.MaxInterval = 60 * time.Second
	}
	if c.SlowdownStep == 0 {
		c.SlowdownStep = 5 * time.Second
	}
	if c.GossiplessThreshold == 0 {
		c.GossiplessThreshold = 2
	}
	if c.AEEvery == 0 {
		c.AEEvery = 10
	}
	if c.RumorTTL == 0 {
		c.RumorTTL = 3
	}
	if c.PiggybackCount == 0 {
		c.PiggybackCount = 10
	}
	if c.SuspicionThreshold == 0 {
		c.SuspicionThreshold = 2
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = 8
	}
	if c.ExchangeMax == 0 {
		c.ExchangeMax = 16
	}
	if c.SummaryChunk == 0 {
		c.SummaryChunk = 4096
	}
	// Negative stays negative: the explicit "disabled" marker (LAN-NPA)
	// must survive repeated normalization.
	if c.SlowPeerProb == 0 {
		c.SlowPeerProb = 0.01
	}
	if c.Sizes == (Sizes{}) {
		c.Sizes = DefaultSizes()
	}
	return c
}
