package gossip

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"planetp/internal/directory"
	"planetp/internal/metrics"
)

// Env is the node's window to its runtime: a clock, a transport, and a
// source of randomness. The simulator provides virtual implementations;
// the live transport provides real ones.
type Env interface {
	// Now returns the current (possibly virtual) time.
	Now() time.Duration
	// Send transmits m to peer to. An error means the peer could not be
	// reached (the node marks it off-line, per Section 3).
	Send(to directory.PeerID, m *Message) error
	// Rand returns the node's random source. Must be stable across
	// calls (the node assumes a single stream).
	Rand() *rand.Rand
	// IntervalChanged notifies the driver that the node's desired
	// gossip interval changed (so a pending timer can be rescheduled —
	// the paper resets the interval to base immediately on news).
	IntervalChanged(d time.Duration)
}

// PeerExchanger is an optional Env extension: a synchronous peer-exchange
// RPC returning a bounded random sample of the target's known-on-line
// records. Envs that implement it enable Config.DiscoverMin bootstrap
// discovery — a joiner that knows only its seed pulls the rest of the
// membership in address-book-sized samples instead of waiting for rumors
// to find it.
type PeerExchanger interface {
	ExchangePeers(to directory.PeerID, max int) ([]directory.Record, error)
}

// rumorState tracks one actively spread rumor.
type rumorState struct {
	ver directory.Version
	// consecKnown counts consecutive *distinct* contacts that already
	// knew the rumor; at RumorTTL the rumor retires. Repeated acks from
	// the same peer count once — Demers' rule is "contacts n peers in a
	// row", and a joiner that only knows its bootstrap contact yet must
	// not retire its own join announcement against it.
	consecKnown int
	lastAcker   directory.PeerID
	anyAck      bool
}

// Stats counts a node's protocol activity.
type Stats struct {
	Rounds       int
	RumorsSent   int
	AcksSent     int
	AERequests   int
	AESummaries  int
	PullsSent    int
	RecordsSent  int
	NewsLearned  int // records accepted as fresh
	Retired      int
	FailedSends  int
	ProbesSent   int // recovery probes to suspected-off-line peers
	Suspected    int // peers marked off-line after reaching the threshold
	Gossipless   int // identical-directory contacts observed
	IntervalUps  int // adaptive slow-downs applied
	IntervalDrop int // resets to base interval
	Exchanges    int // bootstrap-discovery peer-exchange pulls issued
	ExchangeRecs int // records accepted as news from those pulls
	Dropped      int // records garbage-collected by DropDead
}

// nodeMetrics holds the node's registry instruments, resolved once at
// construction so the hot path is a single atomic add. All fields are
// nil (a no-op) when Config.Metrics is nil.
type nodeMetrics struct {
	rounds      *metrics.Counter
	rumorsSent  *metrics.Counter
	acksSent    *metrics.Counter
	aeRequests  *metrics.Counter
	aeSummaries *metrics.Counter
	pullsSent   *metrics.Counter
	recordsSent *metrics.Counter
	newsLearned *metrics.Counter
	retired     *metrics.Counter
	failedSends *metrics.Counter
	probesSent  *metrics.Counter
	suspected   *metrics.Counter
	gossipless  *metrics.Counter
	diffBytes   *metrics.Counter
	exchanges   *metrics.Counter
	exchangeRec *metrics.Counter
	dropped     *metrics.Counter
}

func newNodeMetrics(r *metrics.Registry) nodeMetrics {
	return nodeMetrics{
		rounds:      r.Counter("gossip_rounds_total"),
		rumorsSent:  r.Counter("gossip_rumors_sent_total"),
		acksSent:    r.Counter("gossip_acks_sent_total"),
		aeRequests:  r.Counter("gossip_ae_requests_total"),
		aeSummaries: r.Counter("gossip_ae_summaries_total"),
		pullsSent:   r.Counter("gossip_pulls_sent_total"),
		recordsSent: r.Counter("gossip_records_sent_total"),
		newsLearned: r.Counter("gossip_news_learned_total"),
		retired:     r.Counter("gossip_rumors_retired_total"),
		failedSends: r.Counter("gossip_failed_sends_total"),
		probesSent:  r.Counter("gossip_probes_sent_total"),
		suspected:   r.Counter("gossip_peers_suspected_total"),
		gossipless:  r.Counter("gossip_gossipless_contacts_total"),
		diffBytes:   r.Counter("gossip_diff_bytes_sent_total"),
		exchanges:   r.Counter("gossip_exchanges_total"),
		exchangeRec: r.Counter("gossip_exchange_records_total"),
		dropped:     r.Counter("gossip_records_dropped_total"),
	}
}

// Node is one peer's gossip engine. All methods are safe for concurrent
// use (the live transport delivers from multiple goroutines; the simulator
// is single-threaded).
type Node struct {
	mu   sync.Mutex
	id   directory.PeerID
	dir  *directory.Directory
	cfg  Config
	env  Env
	self directory.Record

	active  map[directory.PeerID]*rumorState
	retired []RumorID // most recent last; capped at PiggybackCount

	rounds     int
	interval   time.Duration
	gossipless int
	// pullInFlight gates record pulls: at most one outstanding pull at
	// a time, so a slow link does not accumulate duplicate multi-
	// megabyte responses for the same missing records while the first
	// is still in transit. Cleared when records arrive or after
	// pullTimeout.
	pullInFlight bool
	pullStarted  time.Duration
	// localFresh marks a locally originated rumor not yet pushed: a
	// slow peer sources its first push to a fast peer (Section 7.2).
	localFresh bool

	// sendFails counts consecutive failed sends per peer; reaching
	// Config.SuspicionThreshold marks the peer off-line. Any successful
	// send to — or message from — the peer clears its streak, so a
	// single transient dial failure no longer exiles a live peer.
	sendFails map[directory.PeerID]int

	stats Stats
	m     nodeMetrics
}

// NewNode creates a gossip node for the peer described by self. The
// self record is inserted into dir and becomes the node's first rumor
// (its join announcement).
func NewNode(self directory.Record, dir *directory.Directory, cfg Config, env Env) *Node {
	cfg = cfg.WithDefaults()
	if self.Ver.IsZero() {
		self.Ver = directory.Version{Epoch: 1, Seq: 0}
	}
	n := &Node{
		id:        self.ID,
		dir:       dir,
		cfg:       cfg,
		env:       env,
		self:      self,
		active:    make(map[directory.PeerID]*rumorState),
		sendFails: make(map[directory.PeerID]int),
		interval:  cfg.BaseInterval,
		// A joining member's first round is anti-entropy: it downloads
		// the directory from its bootstrap contact before spreading its
		// own announcement (Section 7.2's join model), which also
		// ensures its first rumor pushes have real targets to pick
		// from.
		rounds: cfg.AEEvery - 1,
		m:      newNodeMetrics(cfg.Metrics),
	}
	dir.Upsert(self)
	n.activateLocked(RumorID{Peer: self.ID, Ver: self.Ver})
	n.localFresh = true
	return n
}

// ID returns the node's peer id.
func (n *Node) ID() directory.PeerID { return n.id }

// Directory returns the node's directory replica.
func (n *Node) Directory() *directory.Directory { return n.dir }

// Interval returns the node's current gossip interval.
func (n *Node) Interval() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.interval
}

// Stats returns a snapshot of protocol counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// SelfRecord returns the node's current own record.
func (n *Node) SelfRecord() directory.Record {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.self
}

// ActiveRumors returns the number of rumors being spread.
func (n *Node) ActiveRumors() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.active)
}

// Publish announces a change to the node's own Bloom filter: Seq is
// bumped, sizes updated, and the new record becomes an active rumor.
// diffSize is the wire size of the filter diff (the rumor payload);
// payloadSize the full compressed filter; payload the actual bytes (live
// mode, may be nil in simulation).
func (n *Node) Publish(diffSize, payloadSize int, payload []byte) directory.Record {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.self.Ver.Seq++
	n.self.DiffSize = int32(diffSize)
	n.self.PayloadSize = int32(payloadSize)
	if payload != nil {
		n.self.Payload = payload
	}
	n.dir.Upsert(n.self)
	n.activateLocked(RumorID{Peer: n.id, Ver: n.self.Ver})
	n.localFresh = true
	n.resetIntervalLocked()
	return n.self
}

// Rejoin announces the node's return after an off-line period: Epoch is
// bumped (a new incarnation) so the announcement supersedes any version
// gossiped before. If the node also has new content, pass the new sizes;
// otherwise pass the previous ones with diffSize 0.
func (n *Node) Rejoin(diffSize, payloadSize int, payload []byte) directory.Record {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.self.Ver.Epoch++
	n.self.Ver.Seq = 0
	n.self.DiffSize = int32(diffSize)
	if payloadSize > 0 {
		n.self.PayloadSize = int32(payloadSize)
	}
	if payload != nil {
		n.self.Payload = payload
	}
	n.dir.Upsert(n.self)
	n.activateLocked(RumorID{Peer: n.id, Ver: n.self.Ver})
	n.localFresh = true
	n.resetIntervalLocked()
	return n.self
}

// Quiesce drops all active rumors and retired-rumor state, as if every
// rumor had been fully spread. Experiment harnesses use it to construct a
// converged, quiet community as a starting point.
func (n *Node) Quiesce() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id := range n.active {
		delete(n.active, id)
	}
	n.retired = n.retired[:0]
	n.localFresh = false
	n.rounds = 0 // an established member, not a fresh joiner
}

// activateLocked starts (or supersedes) the active rumor for id.Peer.
func (n *Node) activateLocked(id RumorID) {
	n.active[id.Peer] = &rumorState{ver: id.Ver}
}

// retireLocked stops spreading the rumor for peer and remembers it for
// piggybacking.
func (n *Node) retireLocked(peer directory.PeerID, ver directory.Version) {
	delete(n.active, peer)
	n.stats.Retired++
	n.m.retired.Inc()
	if n.cfg.PiggybackCount <= 0 {
		return
	}
	n.retired = append(n.retired, RumorID{Peer: peer, Ver: ver})
	if len(n.retired) > n.cfg.PiggybackCount {
		n.retired = n.retired[len(n.retired)-n.cfg.PiggybackCount:]
	}
}

// tryStartPullLocked reports whether a new pull may be issued, marking it
// in flight. A stuck pull (responder died mid-transfer) expires after
// 20 base intervals.
func (n *Node) tryStartPullLocked() bool {
	now := n.env.Now()
	if n.pullInFlight && now-n.pullStarted < 20*n.cfg.BaseInterval {
		return false
	}
	n.pullInFlight = true
	n.pullStarted = now
	return true
}

// resetIntervalLocked snaps the gossip interval back to base (on news).
func (n *Node) resetIntervalLocked() {
	n.gossipless = 0
	if n.interval != n.cfg.BaseInterval {
		n.interval = n.cfg.BaseInterval
		n.stats.IntervalDrop++
		n.env.IntervalChanged(n.interval)
	}
}

// gossiplessContactLocked records an identical-directory contact and
// applies the adaptive slow-down when the threshold is reached.
func (n *Node) gossiplessContactLocked() {
	n.stats.Gossipless++
	n.m.gossipless.Inc()
	n.gossipless++
	if n.gossipless < n.cfg.GossiplessThreshold {
		return
	}
	n.gossipless = 0
	if n.interval < n.cfg.MaxInterval {
		n.interval += n.cfg.SlowdownStep
		if n.interval > n.cfg.MaxInterval {
			n.interval = n.cfg.MaxInterval
		}
		n.stats.IntervalUps++
		n.env.IntervalChanged(n.interval)
	}
}

// chooseTarget applies the bandwidth-aware selection rules of Section 7.2
// (or uniform selection when disabled).
func (n *Node) chooseTarget(doAE bool) (directory.PeerID, bool) {
	rng := n.env.Rand()
	notSelf := func(id directory.PeerID, _ directory.Entry) bool { return id != n.id }
	if !n.cfg.BandwidthAware {
		return n.dir.PickOnline(rng, notSelf)
	}
	classIs := func(c directory.Class) directory.PickFilter {
		return func(id directory.PeerID, e directory.Entry) bool {
			return id != n.id && e.Class == c
		}
	}
	var id directory.PeerID
	var ok bool
	if n.self.Class == directory.Fast {
		if doAE {
			// Fast anti-entropy always targets fast peers.
			id, ok = n.dir.PickOnline(rng, classIs(directory.Fast))
		} else if rng.Float64() < n.cfg.SlowPeerProb {
			id, ok = n.dir.PickOnline(rng, classIs(directory.Slow))
		} else {
			id, ok = n.dir.PickOnline(rng, classIs(directory.Fast))
		}
	} else { // slow peer
		switch {
		case doAE:
			// Slow anti-entropy chooses uniformly.
			id, ok = n.dir.PickOnline(rng, notSelf)
		case n.localFresh:
			// Source of a rumor: initial push goes to a fast peer.
			id, ok = n.dir.PickOnline(rng, classIs(directory.Fast))
		default:
			id, ok = n.dir.PickOnline(rng, classIs(directory.Slow))
		}
	}
	if !ok {
		// Degenerate communities (e.g. no slow peers at all): fall back
		// to anyone rather than stalling.
		id, ok = n.dir.PickOnline(rng, notSelf)
	}
	return id, ok
}

// Tick runs one gossip round: pick a target and either push rumors or run
// an anti-entropy exchange. Drivers call it every Interval().
func (n *Node) Tick() {
	n.mu.Lock()
	n.rounds++
	n.stats.Rounds++
	n.m.rounds.Inc()
	var dropped []directory.PeerID
	if n.cfg.TDead > 0 && n.rounds%16 == 0 {
		dropped = n.dir.DropDead(n.cfg.TDead, n.env.Now())
		if len(dropped) > 0 {
			n.stats.Dropped += len(dropped)
			n.m.dropped.Add(int64(len(dropped)))
		}
	}
	doAE := n.cfg.Mode == ModeAEOnly ||
		len(n.active) == 0 ||
		(n.cfg.AEEvery > 0 && n.rounds%n.cfg.AEEvery == 0)
	target, ok := n.chooseTarget(doAE)
	if !ok {
		// No reachable target — possibly everyone is suspected off-line
		// (a partition in force). Probing is the only way back.
		probe := n.cfg.ProbeEvery > 0 && n.rounds%n.cfg.ProbeEvery == 0
		n.mu.Unlock()
		n.notifyDrops(dropped)
		if probe {
			n.probeOffline()
		}
		n.discover()
		return
	}
	var msg *Message
	clearFresh := false
	if n.cfg.Mode == ModeAEOnly {
		// Push anti-entropy baseline: ship our summary unsolicited.
		msg = &Message{
			Type: MsgAESummary, From: n.id,
			Digest:   n.dir.Digest(),
			Summary:  n.dir.Summary(),
			NumKnown: n.dir.NumKnown(),
		}
		n.stats.AESummaries++
		n.m.aeSummaries.Inc()
	} else if doAE {
		msg = &Message{Type: MsgAERequest, From: n.id, Digest: n.dir.Digest()}
		n.stats.AERequests++
		n.m.aeRequests.Inc()
	} else {
		msg = &Message{Type: MsgRumor, From: n.id, Updates: n.activeUpdatesLocked()}
		n.stats.RumorsSent++
		n.m.rumorsSent.Inc()
		var diffBytes int64
		for i := range msg.Updates {
			diffBytes += int64(msg.Updates[i].DiffSize)
		}
		n.m.diffBytes.Add(diffBytes)
		// The source of a rumor keeps aiming its initial push at a fast
		// peer until one is actually reached (Section 7.2); without
		// bandwidth awareness any push satisfies it. The flag clears
		// only after the push verifiably left (failed sends re-enqueue:
		// the rumors stay active and the source keeps sourcing).
		if !n.cfg.BandwidthAware {
			clearFresh = true
		} else if e, ok := n.dir.Entry(target); ok && e.Class == directory.Fast {
			clearFresh = true
		}
	}
	probe := n.cfg.ProbeEvery > 0 && n.rounds%n.cfg.ProbeEvery == 0
	n.mu.Unlock()
	n.notifyDrops(dropped)

	if n.sendOrSuspect(target, msg) && clearFresh {
		n.mu.Lock()
		n.localFresh = false
		n.mu.Unlock()
	}
	if probe {
		n.probeOffline()
	}
	n.discover()
}

// notifyDrops fires the OnDrop hook (outside the node's lock) for records
// garbage-collected this round.
func (n *Node) notifyDrops(dropped []directory.PeerID) {
	if len(dropped) > 0 && n.cfg.OnDrop != nil {
		n.cfg.OnDrop(dropped, n.env.Now())
	}
}

// discover runs one bootstrap-discovery step: while the directory believes
// fewer than DiscoverMin peers (including self) are on-line and the Env
// supports peer exchange, pull a bounded random sample of known-on-line
// records from one contact and apply them like anti-entropy pulls. This is
// what lets a joiner that was given a single seed address assemble the
// whole membership in a few rounds instead of waiting for rumors and
// anti-entropy picks to stumble onto it.
func (n *Node) discover() {
	if n.cfg.DiscoverMin <= 0 || n.dir.NumOnline() >= n.cfg.DiscoverMin {
		return
	}
	ex, ok := n.env.(PeerExchanger)
	if !ok {
		return
	}
	notSelf := func(id directory.PeerID, _ directory.Entry) bool { return id != n.id }
	target, ok := n.dir.PickOnline(n.env.Rand(), notSelf)
	if !ok {
		return
	}
	n.mu.Lock()
	n.stats.Exchanges++
	n.mu.Unlock()
	n.m.exchanges.Inc()
	recs, err := ex.ExchangePeers(target, n.cfg.ExchangeMax)
	if err != nil {
		n.noteSendFailure(target)
		return
	}
	n.noteSendSuccess(target)
	n.dir.MarkOnline(target)
	accepted := 0
	for i := range recs {
		if n.applyRecord(recs[i], false) {
			accepted++
		}
	}
	if accepted > 0 {
		n.mu.Lock()
		n.stats.ExchangeRecs += accepted
		n.mu.Unlock()
		n.m.exchangeRec.Add(int64(accepted))
	}
}

// probeOffline attempts to recontact one peer currently believed
// off-line. Failed-contact state is only a local opinion (Section 3); a
// live peer answers the anti-entropy request, and either direction of
// that exchange flips the opinion back. This is what re-merges a healed
// partition: both sides marked each other off-line while it stood, so
// without probing no one would ever pick a cross-partition target again.
func (n *Node) probeOffline() {
	target, ok := n.dir.PickOffline(n.env.Rand())
	if !ok {
		return
	}
	n.mu.Lock()
	n.stats.ProbesSent++
	n.mu.Unlock()
	n.m.probesSent.Inc()
	// A failed probe carries no new suspicion — the peer is already
	// off-line — so this bypasses sendOrSuspect.
	_ = n.env.Send(target, &Message{Type: MsgAERequest, From: n.id, Digest: n.dir.Digest()})
}

// activeUpdatesLocked snapshots the active rumors as records, in sorted
// peer order for determinism.
func (n *Node) activeUpdatesLocked() []directory.Record {
	ids := make([]directory.PeerID, 0, len(n.active))
	for id := range n.active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ups := make([]directory.Record, 0, len(ids))
	for _, id := range ids {
		if rec, ok := n.dir.Get(id); ok {
			// Guard against the directory having advanced past the
			// rumor (shouldn't happen — activation tracks upserts).
			ups = append(ups, rec)
		}
	}
	return ups
}

// applyRecord upserts rec, returning true when it was news. Only records
// that arrive as rumors become active rumors at the receiver (Demers'
// rumor mongering); records learned through anti-entropy or partial-AE
// pulls are recorded without re-spreading — otherwise a joiner pulling
// the whole directory would re-rumor every record in it. Either way, any
// news resets the adaptive interval (Section 3).
func (n *Node) applyRecord(rec directory.Record, viaRumor bool) bool {
	if rec.ID == n.id {
		return false // no one knows more about us than we do
	}
	if !n.dir.Upsert(rec) {
		return false
	}
	n.mu.Lock()
	n.stats.NewsLearned++
	n.m.newsLearned.Inc()
	if viaRumor && n.cfg.Mode == ModeRumor {
		n.activateLocked(RumorID{Peer: rec.ID, Ver: rec.Ver})
	}
	n.resetIntervalLocked()
	n.mu.Unlock()
	if n.cfg.OnNews != nil {
		n.cfg.OnNews(rec)
	}
	return true
}

// Receive processes an incoming message. reply messages are sent through
// the Env.
func (n *Node) Receive(from directory.PeerID, m *Message) {
	// Hearing from a peer directly proves it is on-line — and absolves
	// any failure streak it had accumulated.
	n.dir.MarkOnline(from)
	n.noteSendSuccess(from)
	switch m.Type {
	case MsgRumor:
		n.receiveRumor(from, m)
	case MsgRumorAck:
		n.receiveAck(from, m)
	case MsgPull:
		n.receivePull(from, m)
	case MsgRecords:
		n.mu.Lock()
		n.pullInFlight = false
		n.mu.Unlock()
		for i := range m.Updates {
			n.applyRecord(m.Updates[i], false)
		}
	case MsgAERequest:
		n.receiveAERequest(from, m)
	case MsgAESummary:
		n.receiveAESummary(from, m)
	}
}

func (n *Node) receiveRumor(from directory.PeerID, m *Message) {
	known := make([]bool, len(m.Updates))
	acked := make([]RumorID, len(m.Updates))
	for i := range m.Updates {
		rec := m.Updates[i]
		acked[i] = RumorID{Peer: rec.ID, Ver: rec.Ver}
		known[i] = !n.applyRecord(rec, true)
	}
	n.mu.Lock()
	ack := &Message{
		Type: MsgRumorAck, From: n.id,
		Acked: acked, Known: known,
		Recent: append([]RumorID(nil), n.retired...),
	}
	n.stats.AcksSent++
	n.m.acksSent.Inc()
	n.mu.Unlock()
	n.sendOrSuspect(from, ack)
}

func (n *Node) receiveAck(from directory.PeerID, m *Message) {
	n.mu.Lock()
	for i := range m.Acked {
		id := m.Acked[i]
		st, ok := n.active[id.Peer]
		if !ok || st.ver != id.Ver {
			continue // superseded or already retired
		}
		if i < len(m.Known) && m.Known[i] {
			if st.anyAck && st.lastAcker == from {
				continue // same contact again: not a new "peer in a row"
			}
			st.anyAck = true
			st.lastAcker = from
			st.consecKnown++
			if st.consecKnown >= n.cfg.RumorTTL {
				n.retireLocked(id.Peer, id.Ver)
			}
		} else {
			st.consecKnown = 0
			st.anyAck = true
			st.lastAcker = from
		}
	}
	n.mu.Unlock()
	// Partial anti-entropy: pull anything the acker recently learned
	// that we have not.
	var need []directory.NeedEntry
	for _, rid := range m.Recent {
		if n.dir.VersionOf(rid.Peer).Less(rid.Ver) {
			need = append(need, directory.NeedEntry{ID: rid.Peer, Have: n.dir.VersionOf(rid.Peer)})
		}
	}
	if len(need) > 0 {
		n.mu.Lock()
		ok := n.tryStartPullLocked()
		if ok {
			n.stats.PullsSent++
			n.m.pullsSent.Inc()
		}
		n.mu.Unlock()
		if ok && !n.sendOrSuspect(from, &Message{Type: MsgPull, From: n.id, Need: need}) {
			// The pull never left; release the gate so the next
			// opportunity can re-issue it instead of waiting out the
			// in-flight timeout.
			n.mu.Lock()
			n.pullInFlight = false
			n.mu.Unlock()
		}
	}
}

func (n *Node) receivePull(from directory.PeerID, m *Message) {
	ups := make([]directory.Record, 0, len(m.Need))
	asDiff := make([]bool, 0, len(m.Need))
	for _, ne := range m.Need {
		rec, ok := n.dir.Get(ne.ID)
		if !ok {
			continue
		}
		// A requester exactly one Seq behind (same Epoch) can be served
		// with the last diff; anyone further behind needs the full
		// filter. Affects wire accounting only.
		diffOK := ne.Have.Epoch == rec.Ver.Epoch && ne.Have.Seq+1 == rec.Ver.Seq
		ups = append(ups, rec)
		asDiff = append(asDiff, diffOK)
	}
	if len(ups) == 0 {
		return
	}
	n.mu.Lock()
	n.stats.RecordsSent += len(ups)
	n.mu.Unlock()
	n.m.recordsSent.Add(int64(len(ups)))
	n.sendOrSuspect(from, &Message{Type: MsgRecords, From: n.id, Updates: ups, AsDiff: asDiff})
}

func (n *Node) receiveAERequest(from directory.PeerID, m *Message) {
	cursor := m.Cursor
	if cursor < 0 {
		cursor = 0
	}
	digest := n.dir.Digest()
	reply := &Message{Type: MsgAESummary, From: n.id, Digest: digest}
	switch {
	case cursor == 0 && digest == m.Digest:
		// Converged fast path — only valid at the start of a stream; a
		// continuation request means the exchange already found a
		// difference and must run to the end of the id space.
		reply.Identical = true
		reply.NumKnown = n.dir.NumKnown()
	case n.cfg.SummaryChunk > 0:
		// Streaming: answer one bounded chunk of the id space and tell
		// the requester where to continue. Neither side materializes the
		// full version vector.
		chunk, next, known := n.dir.SummaryRange(cursor, n.cfg.SummaryChunk)
		reply.Summary = chunk
		reply.SummaryFrom = cursor
		reply.Next = next // directory.None (<= 0) when complete
		reply.NumKnown = known
	default:
		reply.Summary = n.dir.Summary()
		reply.NumKnown = n.dir.NumKnown()
	}
	n.mu.Lock()
	n.stats.AESummaries++
	n.mu.Unlock()
	n.m.aeSummaries.Inc()
	n.sendOrSuspect(from, reply)
}

func (n *Node) receiveAESummary(from directory.PeerID, m *Message) {
	if m.Identical || (m.SummaryFrom <= 0 && m.Digest == n.dir.Digest()) {
		// Identical directories: count a gossip-less contact if we had
		// nothing to rumor (Section 3's condition for slowing down). The
		// digest shortcut covers the whole remote directory, so it also
		// ends a just-started stream; mid-stream chunks (SummaryFrom > 0)
		// run to completion on their own cursor.
		n.mu.Lock()
		if len(n.active) == 0 {
			n.gossiplessContactLocked()
		}
		n.mu.Unlock()
		return
	}
	base := m.SummaryFrom
	if base < 0 {
		base = 0
	}
	need := n.dir.MissingRange(m.Summary, base)
	if m.Next > 0 {
		// Streaming continuation: ask for the next chunk before pulling
		// this one's records, so the stream advances even while a pull
		// is in flight.
		n.mu.Lock()
		n.stats.AERequests++
		n.mu.Unlock()
		n.m.aeRequests.Inc()
		n.sendOrSuspect(from, &Message{
			Type: MsgAERequest, From: n.id,
			Digest: n.dir.Digest(), Cursor: m.Next,
		})
	}
	if len(need) == 0 {
		// We are strictly ahead on this span; nothing to pull. (The
		// remote will catch up through its own exchanges.)
		return
	}
	if n.cfg.MaxPullBatch > 0 && len(need) > n.cfg.MaxPullBatch {
		// Acquire the directory in pieces: the rest comes on later
		// exchanges (Missing is deterministic, so batches progress).
		need = need[:n.cfg.MaxPullBatch]
	}
	n.mu.Lock()
	ok := n.tryStartPullLocked()
	if ok {
		n.stats.PullsSent++
		n.m.pullsSent.Inc()
	}
	n.mu.Unlock()
	if ok && !n.sendOrSuspect(from, &Message{Type: MsgPull, From: n.id, Need: need}) {
		n.mu.Lock()
		n.pullInFlight = false
		n.mu.Unlock()
	}
}

// sendOrSuspect sends m, reporting success. A failure increments the
// target's consecutive-failure streak; only at SuspicionThreshold is the
// peer marked off-line (replacing the original one-strike behavior, which
// exiled live peers on a single transient dial failure).
func (n *Node) sendOrSuspect(to directory.PeerID, m *Message) bool {
	if err := n.env.Send(to, m); err != nil {
		n.noteSendFailure(to)
		return false
	}
	n.noteSendSuccess(to)
	return true
}

// noteSendFailure advances to's failure streak and applies the suspicion
// verdict when the threshold is reached.
func (n *Node) noteSendFailure(to directory.PeerID) {
	thr := n.cfg.SuspicionThreshold
	if thr < 1 {
		thr = 1
	}
	n.mu.Lock()
	n.stats.FailedSends++
	n.sendFails[to]++
	mark := n.sendFails[to] >= thr
	if mark {
		delete(n.sendFails, to)
		n.stats.Suspected++
	}
	n.mu.Unlock()
	n.m.failedSends.Inc()
	if mark {
		n.m.suspected.Inc()
		n.dir.MarkOffline(to, n.env.Now())
	}
}

// noteSendSuccess clears to's failure streak.
func (n *Node) noteSendSuccess(to directory.PeerID) {
	n.mu.Lock()
	if len(n.sendFails) > 0 {
		delete(n.sendFails, to)
	}
	n.mu.Unlock()
}
