package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestAddAndLookup(t *testing.T) {
	ix := New()
	d1 := ix.AddDocument("gossip protocols replicate directories")
	d2 := ix.AddDocument("gossip spreads rumors")
	if d1 == d2 {
		t.Fatal("doc ids must be distinct")
	}
	post := ix.Lookup("gossip")
	if len(post) != 2 {
		t.Fatalf("gossip postings = %v, want 2 entries", post)
	}
	if post[0].Doc != d1 || post[1].Doc != d2 {
		t.Fatalf("postings not sorted by doc: %v", post)
	}
}

func TestTermFrequencies(t *testing.T) {
	ix := New()
	d := ix.AddTermFreqs(map[string]int{"alpha": 3, "beta": 1})
	if got := ix.Freq(d, "alpha"); got != 3 {
		t.Errorf("Freq(alpha) = %d, want 3", got)
	}
	if got := ix.Freq(d, "gamma"); got != 0 {
		t.Errorf("Freq(gamma) = %d, want 0", got)
	}
	if got := ix.DocLen(d); got != 4 {
		t.Errorf("DocLen = %d, want 4", got)
	}
	if got := ix.CollectionFreq("alpha"); got != 3 {
		t.Errorf("CollectionFreq(alpha) = %d, want 3", got)
	}
}

func TestZeroAndNegativeFreqsIgnored(t *testing.T) {
	ix := New()
	d := ix.AddTermFreqs(map[string]int{"ok": 1, "zero": 0, "neg": -5})
	if ix.Freq(d, "zero") != 0 || ix.Freq(d, "neg") != 0 {
		t.Fatal("zero/negative freqs should be ignored")
	}
	if ix.NumTerms() != 1 {
		t.Fatalf("NumTerms = %d, want 1", ix.NumTerms())
	}
}

func TestRemoveDocument(t *testing.T) {
	ix := New()
	d1 := ix.AddTermFreqs(map[string]int{"shared": 1, "only1": 2})
	d2 := ix.AddTermFreqs(map[string]int{"shared": 4})
	if !ix.RemoveDocument(d1) {
		t.Fatal("remove existing doc failed")
	}
	if ix.RemoveDocument(d1) {
		t.Fatal("double remove should report false")
	}
	if ix.DocFreq("only1") != 0 {
		t.Error("only1 should be gone")
	}
	if ix.DocFreq("shared") != 1 {
		t.Errorf("shared DocFreq = %d, want 1", ix.DocFreq("shared"))
	}
	if ix.CollectionFreq("shared") != 4 {
		t.Errorf("shared CollectionFreq = %d, want 4", ix.CollectionFreq("shared"))
	}
	if ix.NumDocs() != 1 || ix.DocLen(d2) != 4 {
		t.Error("surviving doc corrupted")
	}
}

func TestSearchAll(t *testing.T) {
	ix := New()
	d1 := ix.AddTermFreqs(map[string]int{"bloom": 1, "filter": 1})
	d2 := ix.AddTermFreqs(map[string]int{"bloom": 1})
	d3 := ix.AddTermFreqs(map[string]int{"filter": 1, "bloom": 2, "gossip": 1})
	got := ix.SearchAll([]string{"bloom", "filter"})
	want := []DocID{d1, d3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SearchAll = %v, want %v", got, want)
	}
	if got := ix.SearchAll([]string{"bloom", "missing"}); got != nil {
		t.Fatalf("conjunction with absent term = %v, want nil", got)
	}
	if got := ix.SearchAll(nil); got != nil {
		t.Fatalf("empty query = %v, want nil", got)
	}
	_ = d2
}

func TestSearchAny(t *testing.T) {
	ix := New()
	d1 := ix.AddTermFreqs(map[string]int{"bloom": 1})
	d2 := ix.AddTermFreqs(map[string]int{"gossip": 1})
	ix.AddTermFreqs(map[string]int{"other": 1})
	got := ix.SearchAny([]string{"bloom", "gossip"})
	want := []DocID{d1, d2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SearchAny = %v, want %v", got, want)
	}
}

func TestTermsSortedAndDocs(t *testing.T) {
	ix := New()
	ix.AddTermFreqs(map[string]int{"zeta": 1, "alpha": 1, "mid": 1})
	terms := ix.Terms()
	want := []string{"alpha", "mid", "zeta"}
	if !reflect.DeepEqual(terms, want) {
		t.Fatalf("Terms = %v, want %v", terms, want)
	}
	if len(ix.Docs()) != 1 {
		t.Fatalf("Docs = %v", ix.Docs())
	}
}

func TestStats(t *testing.T) {
	ix := New()
	ix.AddTermFreqs(map[string]int{"a": 1, "b": 1})
	ix.AddTermFreqs(map[string]int{"b": 2, "c": 3})
	s := ix.Stats()
	if s.Docs != 2 || s.Terms != 3 || s.Postings != 4 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestConcurrentAccess(t *testing.T) {
	ix := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ix.AddTermFreqs(map[string]int{fmt.Sprintf("t%d", i%10): 1})
				ix.Lookup(fmt.Sprintf("t%d", i%10))
				ix.Stats()
			}
		}(g)
	}
	wg.Wait()
	if ix.NumDocs() != 800 {
		t.Fatalf("NumDocs = %d, want 800", ix.NumDocs())
	}
}

// Property: for any set of documents, every (doc, term, freq) inserted is
// recoverable and DocLen equals the sum of its term freqs.
func TestQuickInvariants(t *testing.T) {
	f := func(docsRaw [][]uint8) bool {
		ix := New()
		type docSpec struct {
			id    DocID
			freqs map[string]int
		}
		var specs []docSpec
		for _, raw := range docsRaw {
			freqs := map[string]int{}
			for _, b := range raw {
				freqs[fmt.Sprintf("term%d", b%30)]++
			}
			specs = append(specs, docSpec{ix.AddTermFreqs(freqs), freqs})
		}
		for _, s := range specs {
			total := 0
			for term, f := range s.freqs {
				if ix.Freq(s.id, term) != f {
					return false
				}
				total += f
			}
			if ix.DocLen(s.id) != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: SearchAll results always contain every query term.
func TestQuickSearchAllSound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ix := New()
	for d := 0; d < 200; d++ {
		freqs := map[string]int{}
		for j := 0; j < 5+rng.Intn(10); j++ {
			freqs[fmt.Sprintf("w%d", rng.Intn(50))]++
		}
		ix.AddTermFreqs(freqs)
	}
	for trial := 0; trial < 100; trial++ {
		q := []string{
			fmt.Sprintf("w%d", rng.Intn(50)),
			fmt.Sprintf("w%d", rng.Intn(50)),
		}
		for _, d := range ix.SearchAll(q) {
			for _, term := range q {
				if ix.Freq(d, term) == 0 {
					t.Fatalf("doc %d missing term %q", d, term)
				}
			}
		}
	}
}

func BenchmarkAddTermFreqs1000Keys(b *testing.B) {
	freqs := map[string]int{}
	for i := 0; i < 1000; i++ {
		freqs[fmt.Sprintf("key-%d", i)] = 1 + i%5
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix := New()
		ix.AddTermFreqs(freqs)
	}
}

func BenchmarkLookup(b *testing.B) {
	ix := New()
	rng := rand.New(rand.NewSource(5))
	for d := 0; d < 5000; d++ {
		freqs := map[string]int{}
		for j := 0; j < 20; j++ {
			freqs[fmt.Sprintf("w%d", rng.Intn(2000))]++
		}
		ix.AddTermFreqs(freqs)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Lookup(fmt.Sprintf("w%d", i%2000))
	}
}

// AddTermFreqsBatch must behave exactly like a sequence of AddTermFreqs
// calls: same ids, same statistics.
func TestAddTermFreqsBatch(t *testing.T) {
	batch := []map[string]int{
		{"gossip": 2, "peer": 1},
		{"bloom": 3},
		{"gossip": 1, "filter": 4},
	}
	seq := New()
	var wantIDs []DocID
	for _, f := range batch {
		wantIDs = append(wantIDs, seq.AddTermFreqs(f))
	}
	got := New()
	ids := got.AddTermFreqsBatch(batch)
	if !reflect.DeepEqual(ids, wantIDs) {
		t.Fatalf("batch ids %v, want %v", ids, wantIDs)
	}
	if got.Stats() != seq.Stats() {
		t.Fatalf("batch stats %v, want %v", got.Stats(), seq.Stats())
	}
	for _, term := range []string{"gossip", "peer", "bloom", "filter"} {
		if !reflect.DeepEqual(got.Lookup(term), seq.Lookup(term)) {
			t.Fatalf("postings for %q diverge: %v vs %v", term, got.Lookup(term), seq.Lookup(term))
		}
	}
	for _, id := range ids {
		if got.DocLen(id) != seq.DocLen(id) {
			t.Fatalf("doc %d length diverges", id)
		}
	}
	// Batch after batch keeps ids consecutive.
	more := got.AddTermFreqsBatch([]map[string]int{{"tail": 1}})
	if more[0] != ids[len(ids)-1]+1 {
		t.Fatalf("ids not consecutive across batches: %d after %d", more[0], ids[len(ids)-1])
	}
}
