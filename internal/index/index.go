// Package index implements the per-peer inverted index PlanetP maintains
// over its local data store (Section 2). The index maps terms to postings
// (document id, term frequency) and tracks the per-document statistics the
// vector-space ranker needs: |D| (the number of terms in each document) and
// f_{D,t} (occurrences of t in D).
//
// The same structure, instantiated once over the whole collection, is the
// "optimistic" global index the paper's TFxIDF baseline assumes every peer
// has (Section 7.3).
package index

import (
	"fmt"
	"sort"
	"sync"

	"planetp/internal/text"
)

// DocID identifies a document within one index.
type DocID uint32

// Posting records one document containing a term.
type Posting struct {
	Doc  DocID
	Freq int // f_{D,t}: occurrences of the term in the document
}

// Index is a thread-safe inverted index. The zero value is not usable;
// construct with New.
type Index struct {
	mu       sync.RWMutex
	postings map[string][]Posting // term -> postings, sorted by Doc
	docLen   map[DocID]int        // |D|: total term occurrences per doc
	docs     map[DocID]bool
	nextID   DocID
	totFreq  map[string]int // f_t: collection frequency per term
}

// New returns an empty index.
func New() *Index {
	return &Index{
		postings: make(map[string][]Posting),
		docLen:   make(map[DocID]int),
		docs:     make(map[DocID]bool),
		totFreq:  make(map[string]int),
	}
}

// AddDocument runs the text pipeline over content, assigns a fresh DocID,
// and indexes the resulting terms.
func (ix *Index) AddDocument(content string) DocID {
	return ix.AddTermFreqs(text.TermFreqs(content))
}

// AddTermFreqs indexes a pre-computed term-frequency map under a fresh
// DocID. It is the entry point for callers that tokenize themselves (the
// synthetic collection generator, for instance).
func (ix *Index) AddTermFreqs(freqs map[string]int) DocID {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id := ix.nextID
	ix.nextID++
	ix.docs[id] = true
	ix.insertLocked(id, freqs)
	return id
}

// AddTermFreqsBatch indexes several pre-computed term-frequency maps
// under consecutive fresh DocIDs, taking the index lock once for the
// whole batch. The returned ids are index-aligned with batch.
func (ix *Index) AddTermFreqsBatch(batch []map[string]int) []DocID {
	ids := make([]DocID, len(batch))
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for i, freqs := range batch {
		id := ix.nextID
		ix.nextID++
		ix.docs[id] = true
		ix.insertLocked(id, freqs)
		ids[i] = id
	}
	return ids
}

// insertLocked adds freqs for doc id. Caller holds ix.mu.
func (ix *Index) insertLocked(id DocID, freqs map[string]int) {
	total := 0
	for term, f := range freqs {
		if f <= 0 {
			continue
		}
		ix.postings[term] = insertPosting(ix.postings[term], Posting{Doc: id, Freq: f})
		ix.totFreq[term] += f
		total += f
	}
	ix.docLen[id] += total
}

// insertPosting inserts p into the Doc-sorted list, merging on equal Doc.
func insertPosting(list []Posting, p Posting) []Posting {
	i := sort.Search(len(list), func(i int) bool { return list[i].Doc >= p.Doc })
	if i < len(list) && list[i].Doc == p.Doc {
		list[i].Freq += p.Freq
		return list
	}
	list = append(list, Posting{})
	copy(list[i+1:], list[i:])
	list[i] = p
	return list
}

// RemoveDocument deletes doc id and all its postings. It reports whether
// the document existed.
func (ix *Index) RemoveDocument(id DocID) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ix.docs[id] {
		return false
	}
	delete(ix.docs, id)
	delete(ix.docLen, id)
	for term, list := range ix.postings {
		i := sort.Search(len(list), func(i int) bool { return list[i].Doc >= id })
		if i < len(list) && list[i].Doc == id {
			ix.totFreq[term] -= list[i].Freq
			list = append(list[:i], list[i+1:]...)
			if len(list) == 0 {
				delete(ix.postings, term)
				delete(ix.totFreq, term)
			} else {
				ix.postings[term] = list
			}
		}
	}
	return true
}

// Lookup returns the postings for term (nil if absent). The returned slice
// must not be modified.
func (ix *Index) Lookup(term string) []Posting {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.postings[term]
}

// Freq returns f_{D,t} for one document, 0 if absent.
func (ix *Index) Freq(id DocID, term string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	list := ix.postings[term]
	i := sort.Search(len(list), func(i int) bool { return list[i].Doc >= id })
	if i < len(list) && list[i].Doc == id {
		return list[i].Freq
	}
	return 0
}

// DocLen returns |D|, the total number of term occurrences in doc id.
func (ix *Index) DocLen(id DocID) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docLen[id]
}

// NumDocs returns N, the number of documents indexed.
func (ix *Index) NumDocs() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// NumTerms returns the vocabulary size.
func (ix *Index) NumTerms() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}

// DocFreq returns the number of documents containing term.
func (ix *Index) DocFreq(term string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings[term])
}

// CollectionFreq returns f_t, the total occurrences of term across the
// collection (the statistic the paper's IDF formula uses).
func (ix *Index) CollectionFreq(term string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.totFreq[term]
}

// Terms returns the sorted vocabulary. The slice is freshly allocated.
func (ix *Index) Terms() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Docs returns the sorted document ids.
func (ix *Index) Docs() []DocID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]DocID, 0, len(ix.docs))
	for d := range ix.docs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SearchAll returns the ids of documents containing every query term
// (conjunctive/exhaustive semantics, Section 5.1), in ascending order.
func (ix *Index) SearchAll(terms []string) []DocID {
	if len(terms) == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	// Start from the rarest term to keep the intersection small.
	lists := make([][]Posting, len(terms))
	for i, t := range terms {
		lists[i] = ix.postings[t]
		if len(lists[i]) == 0 {
			return nil
		}
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	var out []DocID
	for _, p := range lists[0] {
		ok := true
		for _, list := range lists[1:] {
			i := sort.Search(len(list), func(i int) bool { return list[i].Doc >= p.Doc })
			if i >= len(list) || list[i].Doc != p.Doc {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, p.Doc)
		}
	}
	return out
}

// SearchAny returns ids of documents containing at least one query term.
func (ix *Index) SearchAny(terms []string) []DocID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	seen := make(map[DocID]bool)
	for _, t := range terms {
		for _, p := range ix.postings[t] {
			seen[p.Doc] = true
		}
	}
	out := make([]DocID, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DocTerms returns the sorted distinct terms of document id (empty if the
// document is unknown). It scans the vocabulary, so it is meant for
// infrequent operations such as unpublishing.
func (ix *Index) DocTerms(id DocID) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if !ix.docs[id] {
		return nil
	}
	var out []string
	for term, list := range ix.postings {
		i := sort.Search(len(list), func(i int) bool { return list[i].Doc >= id })
		if i < len(list) && list[i].Doc == id {
			out = append(out, term)
		}
	}
	sort.Strings(out)
	return out
}

// Stats summarizes an index for logging and the Table 3 report.
type Stats struct {
	Docs     int
	Terms    int
	Postings int
}

// Stats returns collection statistics.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	for _, list := range ix.postings {
		n += len(list)
	}
	return Stats{Docs: len(ix.docs), Terms: len(ix.postings), Postings: n}
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("docs=%d terms=%d postings=%d", s.Docs, s.Terms, s.Postings)
}
