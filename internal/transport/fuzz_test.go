package transport

import (
	"bytes"
	"encoding/gob"
	"testing"

	"planetp/internal/directory"
	"planetp/internal/gossip"
)

// FuzzEnvelopeDecode feeds arbitrary bytes to the gob envelope decoder —
// exactly what a hostile peer can put on a transport connection. It must
// error or decode, never panic (the server's serve loop has no recover).
func FuzzEnvelopeDecode(f *testing.F) {
	seed := func(env *Envelope) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(env); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(&Envelope{Kind: KindGossip, From: 1, Gossip: &gossip.Message{
		Type: gossip.MsgRumor, From: 1,
		Updates: []directory.Record{{ID: 1, Ver: directory.Version{Epoch: 1, Seq: 2},
			Addr: "127.0.0.1:9", Payload: []byte{1, 2, 3}}},
	}}))
	f.Add(seed(&Envelope{Kind: KindQuery, From: 0, Terms: []string{"a", "b"}, All: true}))
	f.Add(seed(&Envelope{Kind: KindRecord, From: 3}))
	f.Add([]byte{})
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		var env Envelope
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
			return
		}
		// A decoded envelope must survive re-encoding (the fields are
		// all gob-encodable values, whatever the input was).
		if err := gob.NewEncoder(&bytes.Buffer{}).Encode(&env); err != nil {
			t.Fatalf("re-encode of decoded envelope: %v", err)
		}
	})
}

// FuzzPeerExchangeDecode feeds arbitrary bytes through the peer-exchange
// reply path: gob-decode the envelope, then sanitize the record sample
// exactly as PeerExchange does. Whatever a hostile seed sends, sanitizing
// must not panic, and every surviving record must honor the bounds the
// directory relies on (wire bounds are checked before anything is
// trusted or allocated).
func FuzzPeerExchangeDecode(f *testing.F) {
	seed := func(env *Envelope) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(env); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(&Envelope{Kind: KindPeers, From: 2, K: 8, Records: []directory.Record{
		{ID: 1, Ver: directory.Version{Epoch: 1, Seq: 3}, Addr: "127.0.0.1:9001"},
		{ID: 2, Ver: directory.Version{Epoch: 2}, Addr: "127.0.0.1:9002", Payload: []byte{7}},
	}}))
	f.Add(seed(&Envelope{Kind: KindPeers, K: -4, Records: []directory.Record{
		{ID: -9, Addr: ""},
	}}))
	f.Add(seed(&Envelope{Kind: KindPeerExchange, From: 1, K: 1 << 30}))
	f.Add([]byte{})
	f.Add([]byte{0x42, 0xff, 0x81, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		var env Envelope
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
			return
		}
		recs := SanitizePeerSample(env.Records, env.K)
		if len(recs) > MaxExchangeRecords {
			t.Fatalf("sanitized sample has %d records, hard bound is %d",
				len(recs), MaxExchangeRecords)
		}
		for _, rec := range recs {
			if rec.ID < 0 || rec.Ver.IsZero() {
				t.Fatalf("invalid record survived sanitizing: %+v", rec)
			}
			if rec.Addr == "" || len(rec.Addr) > maxExchangeAddr {
				t.Fatalf("bad address survived sanitizing: %q", rec.Addr)
			}
			if rec.Payload != nil {
				t.Fatal("payload survived sanitizing")
			}
			if rec.PayloadSize < 0 || rec.DiffSize < 0 {
				t.Fatalf("negative sizes survived sanitizing: %+v", rec)
			}
		}
	})
}
