package transport

import (
	"bytes"
	"encoding/gob"
	"testing"

	"planetp/internal/directory"
	"planetp/internal/gossip"
)

// FuzzEnvelopeDecode feeds arbitrary bytes to the gob envelope decoder —
// exactly what a hostile peer can put on a transport connection. It must
// error or decode, never panic (the server's serve loop has no recover).
func FuzzEnvelopeDecode(f *testing.F) {
	seed := func(env *Envelope) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(env); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(&Envelope{Kind: KindGossip, From: 1, Gossip: &gossip.Message{
		Type: gossip.MsgRumor, From: 1,
		Updates: []directory.Record{{ID: 1, Ver: directory.Version{Epoch: 1, Seq: 2},
			Addr: "127.0.0.1:9", Payload: []byte{1, 2, 3}}},
	}}))
	f.Add(seed(&Envelope{Kind: KindQuery, From: 0, Terms: []string{"a", "b"}, All: true}))
	f.Add(seed(&Envelope{Kind: KindRecord, From: 3}))
	f.Add([]byte{})
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		var env Envelope
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
			return
		}
		// A decoded envelope must survive re-encoding (the fields are
		// all gob-encodable values, whatever the input was).
		if err := gob.NewEncoder(&bytes.Buffer{}).Encode(&env); err != nil {
			t.Fatalf("re-encode of decoded envelope: %v", err)
		}
	})
}
