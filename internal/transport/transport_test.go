package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"planetp/internal/broker"
	"planetp/internal/directory"
	"planetp/internal/gossip"
	"planetp/internal/metrics"
	"planetp/internal/replica"
	"planetp/internal/search"
)

// recordingHandler captures everything the transport delivers.
type recordingHandler struct {
	mu      sync.Mutex
	gossips []*gossip.Message
	puts    []string
	watches [][]string
	notices []broker.Snippet
	docs    map[string]string
	self    directory.Record
	sample  []directory.Record // served by HandlePeerExchange
	reps    []string           // "key@origin:epoch" adopted via HandleReplicaPut
	purges  []string           // same encoding, via HandleReplicaPurge
	hot     []replica.HotDoc   // served by HandleHotDocs
}

func newHandler(id directory.PeerID) *recordingHandler {
	return &recordingHandler{
		docs: map[string]string{},
		self: directory.Record{ID: id, Ver: directory.Version{Epoch: 1}},
	}
}

func (h *recordingHandler) HandleGossip(from directory.PeerID, m *gossip.Message) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.gossips = append(h.gossips, m)
}

func (h *recordingHandler) HandleQuery(terms []string, all bool) []search.DocResult {
	out := []search.DocResult{{Key: "doc-1", TermFreqs: map[string]int{terms[0]: 2}, DocLen: 10}}
	if all {
		out = append(out, search.DocResult{Key: "doc-all", DocLen: 5})
	}
	return out
}

func (h *recordingHandler) HandleBrokerPut(key string, sn broker.Snippet, _ time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.puts = append(h.puts, key+":"+sn.ID)
}

func (h *recordingHandler) HandleBrokerGet(key string) []broker.Snippet {
	return []broker.Snippet{{ID: "sn-" + key, Keys: []string{key}}}
}

func (h *recordingHandler) HandleBrokerWatch(keys []string, watcher directory.PeerID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.watches = append(h.watches, keys)
}

func (h *recordingHandler) HandleNotify(sn broker.Snippet) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.notices = append(h.notices, sn)
}

func (h *recordingHandler) HandleGetDoc(key string) (string, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	xml, ok := h.docs[key]
	return xml, ok
}

func (h *recordingHandler) HandleProxySearch(terms []string, k int) []search.ScoredDoc {
	return []search.ScoredDoc{{
		DocResult: search.DocResult{Key: "proxied-" + terms[0]},
		Score:     float64(k),
	}}
}

func (h *recordingHandler) HandlePeerExchange(max int) []directory.Record {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.sample) > max {
		return h.sample[:max]
	}
	return h.sample
}

func (h *recordingHandler) HandleReplicaPut(key, xml string, origin directory.PeerID, epoch uint32) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.docs[key] = xml
	h.reps = append(h.reps, fmt.Sprintf("%s@%d:%d", key, origin, epoch))
}

func (h *recordingHandler) HandleReplicaPurge(key string, origin directory.PeerID, epoch uint32) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.docs, key)
	h.purges = append(h.purges, fmt.Sprintf("%s@%d:%d", key, origin, epoch))
}

func (h *recordingHandler) HandleHotDocs(max int) []replica.HotDoc {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.hot) > max {
		return h.hot[:max]
	}
	return h.hot
}

func (h *recordingHandler) SelfRecord() directory.Record { return h.self }

// pair builds two connected transports.
func pair(t *testing.T) (*Transport, *recordingHandler, *Transport, *recordingHandler) {
	t.Helper()
	ha, hb := newHandler(0), newHandler(1)
	var ta, tb *Transport
	resolve := func(id directory.PeerID) (string, bool) {
		switch id {
		case 0:
			return ta.Addr(), true
		case 1:
			return tb.Addr(), true
		}
		return "", false
	}
	var err error
	ta, err = New(0, "", ha, resolve, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ta.Close)
	tb, err = New(1, "", hb, resolve, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	return ta, ha, tb, hb
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestGossipOneWay(t *testing.T) {
	ta, _, _, hb := pair(t)
	msg := &gossip.Message{Type: gossip.MsgAERequest, From: 0, Digest: 42}
	if err := ta.Send(1, msg); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "gossip delivery", func() bool {
		hb.mu.Lock()
		defer hb.mu.Unlock()
		return len(hb.gossips) == 1
	})
	hb.mu.Lock()
	got := hb.gossips[0]
	hb.mu.Unlock()
	if got.Type != gossip.MsgAERequest || got.Digest != 42 {
		t.Fatalf("got %+v", got)
	}
}

func TestGossipCarriesRecordsWithPayload(t *testing.T) {
	ta, _, _, hb := pair(t)
	msg := &gossip.Message{
		Type: gossip.MsgRumor, From: 0,
		Updates: []directory.Record{{
			ID: 0, Ver: directory.Version{Epoch: 1, Seq: 3},
			Addr: "somewhere:1", Payload: []byte{1, 2, 3},
		}},
	}
	if err := ta.Send(1, msg); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rumor delivery", func() bool {
		hb.mu.Lock()
		defer hb.mu.Unlock()
		return len(hb.gossips) == 1
	})
	hb.mu.Lock()
	rec := hb.gossips[0].Updates[0]
	hb.mu.Unlock()
	if rec.Addr != "somewhere:1" || len(rec.Payload) != 3 || rec.Ver.Seq != 3 {
		t.Fatalf("record mangled: %+v", rec)
	}
}

func TestQueryRPC(t *testing.T) {
	ta, _, _, _ := pair(t)
	docs, err := ta.Query(1, []string{"gossip"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0].Key != "doc-1" || docs[0].TermFreqs["gossip"] != 2 {
		t.Fatalf("docs = %+v", docs)
	}
	docs, err = ta.Query(1, []string{"gossip"}, true)
	if err != nil || len(docs) != 2 {
		t.Fatalf("all-query: %v %v", docs, err)
	}
}

func TestBrokerRPCs(t *testing.T) {
	ta, _, _, hb := pair(t)
	if err := ta.BrokerPut(1, "key1", broker.Snippet{ID: "s1", Keys: []string{"key1"}}, time.Minute); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "broker put", func() bool {
		hb.mu.Lock()
		defer hb.mu.Unlock()
		return len(hb.puts) == 1 && hb.puts[0] == "key1:s1"
	})
	snips, err := ta.BrokerGet(1, "zzz")
	if err != nil || len(snips) != 1 || snips[0].ID != "sn-zzz" {
		t.Fatalf("BrokerGet: %v %v", snips, err)
	}
	if err := ta.BrokerWatch(1, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "watch", func() bool {
		hb.mu.Lock()
		defer hb.mu.Unlock()
		return len(hb.watches) == 1
	})
	if err := ta.Notify(1, broker.Snippet{ID: "n1"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "notify", func() bool {
		hb.mu.Lock()
		defer hb.mu.Unlock()
		return len(hb.notices) == 1 && hb.notices[0].ID == "n1"
	})
}

func TestProxySearchRPC(t *testing.T) {
	ta, _, _, _ := pair(t)
	docs, err := ta.ProxySearch(1, []string{"gossip"}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0].Key != "proxied-gossip" || docs[0].Score != 7 {
		t.Fatalf("proxy result = %+v", docs)
	}
}

func TestGetDoc(t *testing.T) {
	ta, _, _, hb := pair(t)
	hb.mu.Lock()
	hb.docs["k"] = "<x>body</x>"
	hb.mu.Unlock()
	xml, err := ta.GetDoc(1, "k")
	if err != nil || xml != "<x>body</x>" {
		t.Fatalf("GetDoc: %q %v", xml, err)
	}
	if _, err := ta.GetDoc(1, "missing"); !errors.Is(err, ErrDocNotFound) {
		t.Fatalf("missing doc error = %v, want ErrDocNotFound", err)
	}
}

func TestReplicaRPCs(t *testing.T) {
	ta, _, _, hb := pair(t)
	if err := ta.ReplicaPut(1, "k1", "<x/>", 7, 3); err != nil {
		t.Fatal(err)
	}
	if err := ta.ReplicaPurge(1, "k1", 7, 4); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		hb.mu.Lock()
		reps, purges := len(hb.reps), len(hb.purges)
		hb.mu.Unlock()
		if reps == 1 && purges == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica ops not delivered: %d puts %d purges", reps, purges)
		}
		time.Sleep(5 * time.Millisecond)
	}
	hb.mu.Lock()
	if hb.reps[0] != "k1@7:3" || hb.purges[0] != "k1@7:4" {
		t.Fatalf("reps=%v purges=%v", hb.reps, hb.purges)
	}
	hb.hot = []replica.HotDoc{{Key: "a", Origin: 7, Epoch: 1, Score: 3.5}, {Key: "b", Origin: 8, Epoch: 2, Score: 1}}
	hb.mu.Unlock()
	hot, err := ta.HotDocs(1, 8)
	if err != nil || len(hot) != 2 || hot[0].Key != "a" || hot[0].Score != 3.5 {
		t.Fatalf("HotDocs = %+v, %v", hot, err)
	}
	if hot, _ := ta.HotDocs(1, 1); len(hot) != 1 {
		t.Fatalf("max not honored: %+v", hot)
	}
}

func TestFetchRecord(t *testing.T) {
	ta, _, tb, _ := pair(t)
	rec, err := ta.FetchRecord(tb.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID != 1 || rec.Ver.Epoch != 1 {
		t.Fatalf("record = %+v", rec)
	}
	if _, err := ta.FetchRecord("127.0.0.1:1"); err == nil {
		t.Fatal("unreachable address should error")
	}
}

func TestSendToUnknownPeerFails(t *testing.T) {
	ta, _, _, _ := pair(t)
	if err := ta.Send(7, &gossip.Message{Type: gossip.MsgAERequest}); err == nil {
		t.Fatal("send to unresolvable peer should fail")
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	ta, _, tb, _ := pair(t)
	tb.Close()
	// Dial will be refused (or the message dropped); either way the
	// caller must see an error so off-line detection works.
	if err := ta.Send(1, &gossip.Message{Type: gossip.MsgAERequest}); err == nil {
		t.Fatal("send to closed transport should fail")
	}
}

func TestRefusedConnectionCountsDialFailure(t *testing.T) {
	reg := metrics.NewRegistry()
	h := newHandler(0)
	// Grab a port that refuses connections: listen, note the address,
	// close the listener.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()
	resolve := func(id directory.PeerID) (string, bool) {
		if id == 1 {
			return dead, true
		}
		return "", false
	}
	ta, err := New(0, "", h, resolve, 1, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ta.Close)
	ta.DialTimeout = 2 * time.Second

	done := make(chan error, 1)
	go func() { done <- ta.Send(1, &gossip.Message{Type: gossip.MsgAERequest}) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("send to refusing peer should fail")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("send to refusing peer hung")
	}
	snap := reg.Snapshot()
	if got := snap.Get("transport_dial_failures_total"); got < 1 {
		t.Fatalf("transport_dial_failures_total = %d, want >= 1", got)
	}
	if got := snap.Get("transport_dials_total"); got < 1 {
		t.Fatalf("transport_dials_total = %d, want >= 1", got)
	}
}

func TestRPCCountsBytesAndLatency(t *testing.T) {
	reg := metrics.NewRegistry()
	ha, hb := newHandler(0), newHandler(1)
	var ta, tb *Transport
	resolve := func(id directory.PeerID) (string, bool) {
		switch id {
		case 0:
			return ta.Addr(), true
		case 1:
			return tb.Addr(), true
		}
		return "", false
	}
	var err error
	ta, err = New(0, "", ha, resolve, 1, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ta.Close)
	tb, err = New(1, "", hb, resolve, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)

	if _, err := ta.Query(1, []string{"gossip"}, false); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Get("transport_tx_bytes_query"); got <= 0 {
		t.Fatalf("transport_tx_bytes_query = %d, want > 0", got)
	}
	if got := snap.Get("transport_rx_bytes_query"); got <= 0 {
		t.Fatalf("transport_rx_bytes_query = %d, want > 0", got)
	}
	hs, ok := snap.Histograms["transport_rpc_latency_us"]
	if !ok || hs.Count != 1 {
		t.Fatalf("transport_rpc_latency_us = %+v, want one observation", hs)
	}
}

func TestGarbageBytesDoNotCrashServer(t *testing.T) {
	ta, _, tb, _ := pair(t)
	for _, payload := range [][]byte{
		{},
		{0x00},
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		bytesOf(0xFF, 4096),
	} {
		conn, err := net.Dial("tcp", tb.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(payload)
		conn.Close()
	}
	// The server must still answer real RPCs afterwards.
	if _, err := ta.FetchRecord(tb.Addr()); err != nil {
		t.Fatalf("server wedged by garbage: %v", err)
	}
}

func bytesOf(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func TestConcurrentRPCs(t *testing.T) {
	ta, _, _, _ := pair(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ta.Query(1, []string{"x"}, false); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestNowMonotonic(t *testing.T) {
	ta, _, _, _ := pair(t)
	a := ta.Now()
	time.Sleep(5 * time.Millisecond)
	if ta.Now() <= a {
		t.Fatal("Now not monotonic")
	}
}

func TestIntervalChangedNonBlocking(t *testing.T) {
	ta, _, _, _ := pair(t)
	// Fill the buffer beyond capacity: must never block.
	for i := 0; i < 100; i++ {
		ta.IntervalChanged(time.Second)
	}
	select {
	case d := <-ta.IntervalCh():
		if d != time.Second {
			t.Fatalf("d = %v", d)
		}
	default:
		t.Fatal("no interval delivered")
	}
}
