//go:build !(linux || darwin || freebsd || netbsd || openbsd)

package transport

import "net"

// connStale: without a non-blocking raw-fd peek, staleness cannot be
// checked cheaply at checkout; assume fresh and let the transparent
// re-dial absorb dead conns mid-RPC.
func connStale(net.Conn) bool { return false }
