// Peer-exchange RPC: the live transport's side of bootstrap discovery.
// A joiner that knows only its seed asks it (and then anyone it learns
// about) for a bounded random sample of known-on-line records, applying
// them like anti-entropy pulls until the directory reaches the configured
// minimum. The reply is hard-bounded and sanitized before use — it
// crosses a trust boundary, so malformed records (absurd sample sizes,
// oversized addresses, junk versions) must die here, not inside the
// directory.
package transport

import (
	"planetp/internal/directory"
	"planetp/internal/gossip"
)

// MaxExchangeRecords is the hard upper bound on records in one
// peer-exchange reply, whatever the request asked for.
const MaxExchangeRecords = 64

// maxExchangeAddr bounds the Addr field of an exchanged record; a dialable
// host:port is far shorter, so anything bigger is garbage or an attack.
const maxExchangeAddr = 256

// clampExchange normalizes a requested sample size into [1,
// MaxExchangeRecords]. Applied server-side before touching the directory,
// so a hostile request cannot size an allocation.
func clampExchange(max int) int {
	if max < 1 {
		return 1
	}
	if max > MaxExchangeRecords {
		return MaxExchangeRecords
	}
	return max
}

// SanitizePeerSample validates a peer-exchange reply, returning at most
// max well-formed records. Records with a negative id, zero version, an
// empty or oversized address, negative sizes, or a Bloom payload (samples
// are payload-free by construction) are dropped; payloads on surviving
// records are stripped rather than trusted. The input slice is not
// modified.
func SanitizePeerSample(recs []directory.Record, max int) []directory.Record {
	max = clampExchange(max)
	if len(recs) > MaxExchangeRecords {
		recs = recs[:MaxExchangeRecords]
	}
	out := make([]directory.Record, 0, len(recs))
	for i := range recs {
		rec := recs[i]
		if rec.ID < 0 || rec.Ver.IsZero() {
			continue
		}
		if rec.Addr == "" || len(rec.Addr) > maxExchangeAddr {
			continue
		}
		if rec.PayloadSize < 0 || rec.DiffSize < 0 {
			continue
		}
		rec.Payload = nil
		out = append(out, rec)
		if len(out) == max {
			break
		}
	}
	return out
}

// PeerExchange asks peer to for a sample of at most max known-on-line
// records. The reply is sanitized before return.
func (t *Transport) PeerExchange(to directory.PeerID, max int) ([]directory.Record, error) {
	resp, err := t.call(to, &Envelope{Kind: KindPeerExchange, From: t.id, K: max})
	if err != nil {
		return nil, err
	}
	return SanitizePeerSample(resp.Records, max), nil
}

// PeerExchangeAddr is like PeerExchange but dials a raw address
// (bootstrap, before the seed is in the directory).
func (t *Transport) PeerExchangeAddr(addr string, max int) ([]directory.Record, error) {
	resp, err := t.callAddr(addr, &Envelope{Kind: KindPeerExchange, From: t.id, K: max})
	if err != nil {
		return nil, err
	}
	return SanitizePeerSample(resp.Records, max), nil
}

// ExchangePeers implements gossip.PeerExchanger, making the transport a
// discovery-capable Env: a gossip.Node configured with DiscoverMin pulls
// membership samples through this method.
func (t *Transport) ExchangePeers(to directory.PeerID, max int) ([]directory.Record, error) {
	return t.PeerExchange(to, max)
}

var _ gossip.PeerExchanger = (*Transport)(nil)
