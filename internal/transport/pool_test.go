package transport

import (
	"encoding/gob"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"planetp/internal/broker"
	"planetp/internal/directory"
	"planetp/internal/faultnet"
	"planetp/internal/gossip"
	"planetp/internal/metrics"
)

// pairReg is pair with a metrics registry on the client side, for
// asserting pool behavior through its counters.
func pairReg(t *testing.T) (*Transport, *metrics.Registry, *Transport, *recordingHandler) {
	t.Helper()
	ha, hb := newHandler(0), newHandler(1)
	reg := metrics.NewRegistry()
	var ta, tb *Transport
	resolve := func(id directory.PeerID) (string, bool) {
		switch id {
		case 0:
			return ta.Addr(), true
		case 1:
			return tb.Addr(), true
		}
		return "", false
	}
	var err error
	ta, err = New(0, "", ha, resolve, 1, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ta.Close)
	tb, err = New(1, "", hb, resolve, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	return ta, reg, tb, hb
}

func TestPooledConnReusedAcrossRPCs(t *testing.T) {
	ta, reg, _, hb := pairReg(t)
	for i := 0; i < 3; i++ {
		if _, err := ta.Query(1, []string{"x"}, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := ta.Send(1, &gossip.Message{Type: gossip.MsgAERequest, Digest: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "gossip delivery", func() bool {
		hb.mu.Lock()
		defer hb.mu.Unlock()
		return len(hb.gossips) == 2
	})
	snap := reg.Snapshot()
	if got := snap.Get("transport_dials_total"); got != 1 {
		t.Fatalf("dials = %d, want 1 (all five RPCs on one conn)", got)
	}
	if got := snap.Get("transport_pool_reuse_total"); got != 4 {
		t.Fatalf("pool reuse = %d, want 4", got)
	}
	if got := snap.Get("transport_pool_misses_total"); got != 1 {
		t.Fatalf("pool misses = %d, want 1", got)
	}
	if got := snap.Gauges["transport_pool_idle_conns"]; got != 1 {
		t.Fatalf("idle conns gauge = %d, want 1", got)
	}
}

// Byte accounting must stay truthful per kind when many exchanges share
// one conn: each RPC's delta lands on its own kind, and the totals match
// the per-kind sums.
func TestByteAccountingAccurateUnderReuse(t *testing.T) {
	ta, reg, _, _ := pairReg(t)
	if _, err := ta.Query(1, []string{"x"}, false); err != nil {
		t.Fatal(err)
	}
	if err := ta.BrokerPut(1, "k", broker.Snippet{ID: "s1"}, time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := ta.GetDoc(1, "missing"); !errors.Is(err, ErrDocNotFound) {
		t.Fatal("expected definitive miss")
	}
	snap := reg.Snapshot()
	var txSum, rxSum int64
	for k := Kind(0); k < numKinds; k++ {
		txSum += snap.Get("transport_tx_bytes_" + k.String())
		rxSum += snap.Get("transport_rx_bytes_" + k.String())
	}
	for _, kind := range []string{"query", "broker_put", "get_doc"} {
		if snap.Get("transport_tx_bytes_"+kind) <= 0 {
			t.Fatalf("tx bytes for %s not counted", kind)
		}
		if snap.Get("transport_rx_bytes_"+kind) <= 0 {
			t.Fatalf("rx bytes for %s not counted (acks/responses share the conn)", kind)
		}
	}
	sent, recv := atomic.LoadInt64(&ta.BytesSent), atomic.LoadInt64(&ta.BytesRecv)
	if sent != txSum || recv != rxSum {
		t.Fatalf("totals (%d tx, %d rx) != per-kind sums (%d, %d)", sent, recv, txSum, rxSum)
	}
}

// slowFirstWriteConn stalls the first write — a slow-but-healthy send
// (large summary over a thin link).
type slowFirstWriteConn struct {
	net.Conn
	stall   time.Duration
	stalled bool
}

func (c *slowFirstWriteConn) Write(p []byte) (int, error) {
	if !c.stalled {
		c.stalled = true
		time.Sleep(c.stall)
	}
	return c.Conn.Write(p)
}

// Regression for the deadline bug where oneway sends armed SetDeadline
// with DialTimeout: a send slower than the dial budget but well inside
// the RPC budget must succeed.
func TestOnewaySlowerThanDialBudgetSucceeds(t *testing.T) {
	ta, _, _, hb := pairReg(t)
	ta.DialTimeout = 50 * time.Millisecond
	ta.RPCTimeout = 5 * time.Second
	ta.Retries = 0
	ta.DialHook = func(_ directory.PeerID, addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return &slowFirstWriteConn{Conn: c, stall: 200 * time.Millisecond}, nil
	}
	if err := ta.Send(1, &gossip.Message{Type: gossip.MsgAERequest}); err != nil {
		t.Fatalf("slow-but-healthy oneway killed: %v (deadline armed from DialTimeout?)", err)
	}
	waitFor(t, "slow gossip delivery", func() bool {
		hb.mu.Lock()
		defer hb.mu.Unlock()
		return len(hb.gossips) == 1
	})
}

// The converse: the RPC deadline must still be armed at all, so a send
// slower than the RPC budget fails.
func TestOnewayBoundByRPCTimeout(t *testing.T) {
	ta, _, _, _ := pairReg(t)
	ta.RPCTimeout = 60 * time.Millisecond
	ta.Retries = 0
	ta.DialHook = func(_ directory.PeerID, addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return &slowFirstWriteConn{Conn: c, stall: 400 * time.Millisecond}, nil
	}
	if err := ta.Send(1, &gossip.Message{Type: gossip.MsgAERequest}); err == nil {
		t.Fatal("send past the RPC deadline should fail")
	}
}

// A rejoining peer comes back on a new port: conns pooled against the old
// address must be dropped at the resolver switch, and the next RPC must
// dial the new one.
func TestAddressChangeInvalidatesPooledConns(t *testing.T) {
	ha, hb, hc := newHandler(0), newHandler(1), newHandler(1)
	reg := metrics.NewRegistry()
	var ta, tb, tc *Transport
	var mu sync.Mutex
	current := func() *Transport { mu.Lock(); defer mu.Unlock(); return tb }
	resolve := func(id directory.PeerID) (string, bool) {
		if id == 1 {
			return current().Addr(), true
		}
		return "", false
	}
	var err error
	ta, err = New(0, "", ha, resolve, 1, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ta.Close)
	tb, err = New(1, "", hb, resolve, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	tc, err = New(1, "", hc, resolve, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tc.Close)

	if err := ta.Send(1, &gossip.Message{Type: gossip.MsgAERequest, Digest: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery to old address", func() bool {
		hb.mu.Lock()
		defer hb.mu.Unlock()
		return len(hb.gossips) == 1
	})
	// Peer 1 "rejoins" at tc's address.
	mu.Lock()
	tb = tc
	mu.Unlock()
	if err := ta.Send(1, &gossip.Message{Type: gossip.MsgAERequest, Digest: 2}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery to new address", func() bool {
		hc.mu.Lock()
		defer hc.mu.Unlock()
		return len(hc.gossips) == 1
	})
	snap := reg.Snapshot()
	if got := snap.Get("transport_pool_stale_total"); got != 1 {
		t.Fatalf("stale = %d, want 1 (old-address conn dropped)", got)
	}
	if got := snap.Get("transport_dials_total"); got != 2 {
		t.Fatalf("dials = %d, want 2 (one per address)", got)
	}
	if got := snap.Get("transport_pool_reuse_total"); got != 0 {
		t.Fatalf("reuse = %d, want 0 (the old conn must not be reused)", got)
	}
}

// InvalidatePeer is the directory-eviction hook (incarnation bump,
// declared dead): pooled conns for the peer vanish immediately.
func TestInvalidatePeerDropsPooledConns(t *testing.T) {
	ta, reg, _, _ := pairReg(t)
	if _, err := ta.Query(1, []string{"x"}, false); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Gauges["transport_pool_idle_conns"]; got != 1 {
		t.Fatalf("idle = %d before invalidation, want 1", got)
	}
	ta.InvalidatePeer(1)
	snap := reg.Snapshot()
	if got := snap.Gauges["transport_pool_idle_conns"]; got != 0 {
		t.Fatalf("idle = %d after invalidation, want 0", got)
	}
	if _, err := ta.Query(1, []string{"x"}, false); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Get("transport_dials_total"); got != 2 {
		t.Fatalf("dials = %d, want 2 (fresh dial after invalidation)", got)
	}
}

// killableHook dials real TCP and wraps every conn in a KillableConn,
// recording them so the test can tear a specific one mid-stream.
func killableHook(conns *[]*faultnet.KillableConn, mu *sync.Mutex) DialHook {
	return func(_ directory.PeerID, addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		kc := &faultnet.KillableConn{Conn: c}
		mu.Lock()
		*conns = append(*conns, kc)
		mu.Unlock()
		return kc, nil
	}
}

// A pooled conn torn mid-request-write: the envelope provably never
// decoded at the server, so exactly one transparent re-dial delivers it —
// no outer retry, no suppression signal, no double delivery.
func TestTornWriteOnewayTransparentRedial(t *testing.T) {
	ta, reg, _, hb := pairReg(t)
	var mu sync.Mutex
	var conns []*faultnet.KillableConn
	ta.DialHook = killableHook(&conns, &mu)
	ta.Retries = 0 // any outer retry would fail the test via the error

	if err := ta.BrokerPut(1, "k1", broker.Snippet{ID: "s1"}, time.Minute); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	conns[0].Kill(faultnet.KillWrite, 3)
	mu.Unlock()
	if err := ta.BrokerPut(1, "k2", broker.Snippet{ID: "s2"}, time.Minute); err != nil {
		t.Fatalf("torn write not recovered: %v", err)
	}
	waitFor(t, "both puts delivered once", func() bool {
		hb.mu.Lock()
		defer hb.mu.Unlock()
		return len(hb.puts) == 2
	})
	hb.mu.Lock()
	puts := append([]string(nil), hb.puts...)
	hb.mu.Unlock()
	if puts[0] != "k1:s1" || puts[1] != "k2:s2" {
		t.Fatalf("puts = %v (double delivery?)", puts)
	}
	snap := reg.Snapshot()
	if got := snap.Get("transport_pool_redials_total"); got != 1 {
		t.Fatalf("redials = %d, want exactly 1", got)
	}
	if got := snap.Get("transport_send_retries_total"); got != 0 {
		t.Fatalf("outer retries = %d, want 0 (redial must be invisible)", got)
	}
	if ta.PeerSuppressed(1) {
		t.Fatal("transparent redial must not feed suppression")
	}
}

// A pooled conn whose response read fails under a call: calls are
// idempotent reads, so one transparent re-dial re-asks.
func TestTornReadCallTransparentRedial(t *testing.T) {
	ta, reg, _, _ := pairReg(t)
	var mu sync.Mutex
	var conns []*faultnet.KillableConn
	ta.DialHook = killableHook(&conns, &mu)
	ta.Retries = 0

	if _, err := ta.Query(1, []string{"x"}, false); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	conns[0].Kill(faultnet.KillRead, 0)
	mu.Unlock()
	docs, err := ta.Query(1, []string{"x"}, false)
	if err != nil || len(docs) != 1 {
		t.Fatalf("torn read not recovered: %v %v", docs, err)
	}
	snap := reg.Snapshot()
	if got := snap.Get("transport_pool_redials_total"); got != 1 {
		t.Fatalf("redials = %d, want exactly 1", got)
	}
	if got := snap.Get("transport_send_retries_total"); got != 0 {
		t.Fatalf("outer retries = %d, want 0", got)
	}
}

// A oneway whose request went out but whose ack never came back must NOT
// be transparently retried — the envelope may have been delivered, and a
// blind resend would double-deliver. The failure surfaces to the normal
// retry machinery instead.
func TestTornReadOnewayNotRedialed(t *testing.T) {
	ta, reg, _, hb := pairReg(t)
	var mu sync.Mutex
	var conns []*faultnet.KillableConn
	ta.DialHook = killableHook(&conns, &mu)
	ta.Retries = 0

	if err := ta.Send(1, &gossip.Message{Type: gossip.MsgAERequest, Digest: 1}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	conns[0].Kill(faultnet.KillRead, 0)
	mu.Unlock()
	if err := ta.Send(1, &gossip.Message{Type: gossip.MsgAERequest, Digest: 2}); err == nil {
		t.Fatal("ack-less oneway should surface an error with retries off")
	}
	// The envelope itself did reach the server — exactly once.
	waitFor(t, "both gossips delivered", func() bool {
		hb.mu.Lock()
		defer hb.mu.Unlock()
		return len(hb.gossips) == 2
	})
	if got := reg.Snapshot().Get("transport_pool_redials_total"); got != 0 {
		t.Fatalf("redials = %d, want 0 (possible double delivery)", got)
	}
}

// A server restart FINs every pooled conn; the checkout-time staleness
// probe discards them before they can eat an RPC, so the next call just
// dials fresh — no redial, no outer retry.
func TestServerRestartCaughtByStalenessProbe(t *testing.T) {
	ha, hb, hb2 := newHandler(0), newHandler(1), newHandler(1)
	reg := metrics.NewRegistry()
	var ta, tb *Transport
	var addr string
	resolve := func(id directory.PeerID) (string, bool) {
		if id == 1 {
			return addr, true
		}
		return "", false
	}
	var err error
	ta, err = New(0, "", ha, resolve, 1, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ta.Close)
	ta.Retries = 0
	tb, err = New(1, "", hb, resolve, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr = tb.Addr()

	if _, err := ta.Query(1, []string{"x"}, false); err != nil {
		t.Fatal(err)
	}
	tb.Close()
	tb2, err := New(1, addr, hb2, resolve, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb2.Close)
	// Let the FIN from the dead server reach the client's pooled conn.
	time.Sleep(100 * time.Millisecond)

	if _, err := ta.Query(1, []string{"x"}, false); err != nil {
		t.Fatalf("query after server restart: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Get("transport_pool_stale_total"); got != 1 {
		t.Fatalf("stale = %d, want 1 (probe should catch the dead conn)", got)
	}
	if got := snap.Get("transport_pool_redials_total"); got != 0 {
		t.Fatalf("redials = %d, want 0 (probe should fire before the RPC)", got)
	}
	if got := snap.Get("transport_send_retries_total"); got != 0 {
		t.Fatalf("outer retries = %d, want 0", got)
	}
}

func TestPoolIdleReap(t *testing.T) {
	ta, reg, _, _ := pairReg(t)
	ta.PoolIdle = 30 * time.Millisecond
	if _, err := ta.Query(1, []string{"x"}, false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "idle conn reaped", func() bool {
		snap := reg.Snapshot()
		return snap.Get("transport_pool_reaped_total") == 1 &&
			snap.Gauges["transport_pool_idle_conns"] == 0
	})
	if _, err := ta.Query(1, []string{"x"}, false); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Get("transport_dials_total"); got != 2 {
		t.Fatalf("dials = %d, want 2 (reaped conn forces a fresh dial)", got)
	}
}

// Direct pool-bound checks: per-address cap and the global LRU cap, using
// synthetic pipes so no server is involved.
func TestPoolCapsEvictOldest(t *testing.T) {
	reg := metrics.NewRegistry()
	tt, err := New(9, "", newHandler(9), func(directory.PeerID) (string, bool) { return "", false }, 1, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tt.Close)
	tt.PoolConns = 1

	mk := func(addr string) *pconn {
		a, b := net.Pipe()
		t.Cleanup(func() { a.Close(); b.Close() })
		return newPconn(a, addr)
	}
	p1 := mk("a")
	tt.pool.put(p1)
	time.Sleep(2 * time.Millisecond)
	tt.pool.put(mk("a")) // over the per-addr cap: p1 (oldest) evicted
	snap := reg.Snapshot()
	if got := snap.Get("transport_pool_evicted_total"); got != 1 {
		t.Fatalf("evicted = %d, want 1", got)
	}
	if got := snap.Gauges["transport_pool_idle_conns"]; got != 1 {
		t.Fatalf("idle = %d, want 1", got)
	}

	tt.PoolConns = 1
	tt.PoolMaxIdle = 2
	time.Sleep(2 * time.Millisecond)
	tt.pool.put(mk("b"))
	time.Sleep(2 * time.Millisecond)
	tt.pool.put(mk("c")) // over the global cap: oldest across addrs goes
	snap = reg.Snapshot()
	if got := snap.Get("transport_pool_evicted_total"); got != 2 {
		t.Fatalf("evicted = %d, want 2", got)
	}
	if got := snap.Gauges["transport_pool_idle_conns"]; got != 2 {
		t.Fatalf("idle = %d, want 2 (global cap)", got)
	}
}

func TestPoolDisabledDialsPerRPC(t *testing.T) {
	ta, reg, _, _ := pairReg(t)
	ta.PoolConns = 0
	for i := 0; i < 3; i++ {
		if _, err := ta.Query(1, []string{"x"}, false); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Get("transport_dials_total"); got != 3 {
		t.Fatalf("dials = %d, want 3 (pool disabled)", got)
	}
	if got := snap.Get("transport_pool_reuse_total"); got != 0 {
		t.Fatalf("reuse = %d, want 0", got)
	}
	if got := snap.Gauges["transport_pool_idle_conns"]; got != 0 {
		t.Fatalf("idle = %d, want 0", got)
	}
}

// FateHook verdicts: err fails the attempt like a refused dial, drop
// loses the message after an apparently clean send, kill tears the
// pooled conn under the RPC (recovered by one transparent re-dial).
func TestFateHookVerdicts(t *testing.T) {
	ta, reg, _, hb := pairReg(t)
	ta.Retries = 0

	// Warm the pool.
	if err := ta.Send(1, &gossip.Message{Type: gossip.MsgAERequest, Digest: 1}); err != nil {
		t.Fatal(err)
	}

	// drop: oneway reports success, nothing is transmitted.
	ta.FateHook = func(directory.PeerID) (error, bool, time.Duration, bool) {
		return nil, true, 0, false
	}
	if err := ta.Send(1, &gossip.Message{Type: gossip.MsgAERequest, Digest: 2}); err != nil {
		t.Fatalf("dropped oneway must look clean to the sender: %v", err)
	}
	if _, err := ta.Query(1, []string{"x"}, false); err == nil {
		t.Fatal("dropped call must fail (response never comes)")
	}

	// err: fails and is accounted like a dial failure.
	ta.FateHook = func(directory.PeerID) (error, bool, time.Duration, bool) {
		return errors.New("injected"), false, 0, false
	}
	if err := ta.Send(1, &gossip.Message{Type: gossip.MsgAERequest, Digest: 3}); err == nil {
		t.Fatal("fate error must fail the send")
	}
	if got := reg.Snapshot().Get("transport_dial_failures_total"); got != 1 {
		t.Fatalf("dial failures = %d, want 1 (fate error counts as one)", got)
	}

	// kill: the pooled conn dies under the RPC; delivery still happens
	// via exactly one transparent re-dial.
	ta.FateHook = func(directory.PeerID) (error, bool, time.Duration, bool) {
		return nil, false, 0, true
	}
	if err := ta.Send(1, &gossip.Message{Type: gossip.MsgAERequest, Digest: 4}); err != nil {
		t.Fatalf("conn-kill fate not recovered: %v", err)
	}
	ta.FateHook = nil
	waitFor(t, "digests 1 and 4 delivered", func() bool {
		hb.mu.Lock()
		defer hb.mu.Unlock()
		return len(hb.gossips) == 2
	})
	hb.mu.Lock()
	d0, d1 := hb.gossips[0].Digest, hb.gossips[1].Digest
	hb.mu.Unlock()
	if d0 != 1 || d1 != 4 {
		t.Fatalf("delivered digests = %d,%d, want 1,4 (drop leaked or kill double-delivered)", d0, d1)
	}
	if got := reg.Snapshot().Get("transport_pool_redials_total"); got != 1 {
		t.Fatalf("redials = %d, want 1", got)
	}
}

// A faultnet Plan mounts on the FateHook seam: ConnKill=1 tears the
// pooled conn under every send, and every send still lands via exactly
// one transparent re-dial per kill.
func TestFaultnetConnKillOnPooledStream(t *testing.T) {
	ta, reg, _, hb := pairReg(t)
	ta.Retries = 0
	if err := ta.Send(1, &gossip.Message{Type: gossip.MsgAERequest, Digest: 0}); err != nil {
		t.Fatal(err)
	}
	plan := faultnet.New(faultnet.Config{Seed: 7, ConnKill: 1}, nil)
	ta.FateHook = plan.SendFate(0, ta.Now)
	for i := 1; i <= 3; i++ {
		if err := ta.Send(1, &gossip.Message{Type: gossip.MsgAERequest, Digest: uint64(i)}); err != nil {
			t.Fatalf("send %d under ConnKill: %v", i, err)
		}
	}
	waitFor(t, "all four gossips delivered once", func() bool {
		hb.mu.Lock()
		defer hb.mu.Unlock()
		return len(hb.gossips) == 4
	})
	if got := reg.Snapshot().Get("transport_pool_redials_total"); got != 3 {
		t.Fatalf("redials = %d, want 3 (one per killed conn)", got)
	}
	if c := plan.Counts(); c.ConnKills != 3 {
		t.Fatalf("plan ConnKills = %d, want 3", c.ConnKills)
	}
}

// An old-style one-shot client (encode one envelope, close) must still be
// served by the session loop: the handler runs, the unread ack dies with
// the conn harmlessly.
func TestOneShotClientInterop(t *testing.T) {
	_, _, tb, hb := pairReg(t)
	conn, err := net.Dial("tcp", tb.Addr())
	if err != nil {
		t.Fatal(err)
	}
	env := &Envelope{Kind: KindGossip, From: 5, Gossip: &gossip.Message{Type: gossip.MsgAERequest, Digest: 9}}
	if err := gob.NewEncoder(conn).Encode(env); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitFor(t, "one-shot gossip delivery", func() bool {
		hb.mu.Lock()
		defer hb.mu.Unlock()
		return len(hb.gossips) == 1 && hb.gossips[0].Digest == 9
	})
}
