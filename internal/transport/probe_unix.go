//go:build linux || darwin || freebsd || netbsd || openbsd

package transport

import (
	"net"
	"syscall"
)

// connStale reports whether an idle pooled conn is known-dead, by peeking
// the socket without blocking (MSG_PEEK|MSG_DONTWAIT): a healthy idle
// conn has nothing to read (EAGAIN); a conn the far side closed returns
// EOF immediately; stray bytes outside an exchange mean the stream
// desynced. Conns that expose no raw fd (test wrappers, synthetic fault
// conns) cannot be peeked and report not-stale — if such a conn is dead
// it is caught mid-RPC and absorbed by the transparent re-dial instead.
func connStale(conn net.Conn) bool {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return false
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return true
	}
	stale := false
	var buf [1]byte
	cerr := rc.Read(func(fd uintptr) bool {
		n, _, err := syscall.Recvfrom(int(fd), buf[:], syscall.MSG_PEEK|syscall.MSG_DONTWAIT)
		switch {
		case err == syscall.EAGAIN || err == syscall.EWOULDBLOCK:
			// Healthy and quiet.
		case err == nil && n == 0:
			stale = true // orderly EOF: the far side hung up
		default:
			stale = true // bytes outside an exchange, reset, or error
		}
		return true // one peek decides; never wait for readiness
	})
	return stale || cerr != nil
}
