package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"planetp/internal/directory"
)

// ErrSuppressed reports that a send was skipped without touching the
// network because the peer is inside its failure-suppression window.
// Callers see it as any other failed send (gossip counts it toward its
// suspicion streak), but no dial is burned on a peer already believed
// dead.
var ErrSuppressed = errors.New("transport: peer suppressed after repeated failures")

// RemoteError is an application-level error returned by a live peer
// (e.g. "unknown kind"). It is never retried and counts as a healthy
// contact: the peer answered, it just said no.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// DialHook overrides connection establishment for peer-addressed sends —
// the seam internal/faultnet mounts to inject dial failures, partitions,
// black holes, and delays under the real gob-over-TCP stack. addr is the
// resolved address; a nil hook dials TCP directly.
type DialHook func(to directory.PeerID, addr string, timeout time.Duration) (net.Conn, error)

// Backoff computes capped exponential delays with multiplicative jitter.
// The zero value is not ready; use NewBackoff. Safe for concurrent use.
type Backoff struct {
	// Base is the first delay (default 100 ms).
	Base time.Duration
	// Max caps the growth (default 5 s).
	Max time.Duration
	// Factor multiplies the delay each attempt (default 2).
	Factor float64
	// Jitter spreads each delay uniformly over ±Jitter of its nominal
	// value (default 0.2), so peers retrying the same dead target do not
	// synchronize.
	Jitter float64

	mu      sync.Mutex
	rng     *rand.Rand
	attempt int
}

// NewBackoff returns a Backoff with the given bounds (zero values take
// the defaults) and a private rng for jitter.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if max < base {
		max = base
	}
	return &Backoff{
		Base: base, Max: max, Factor: 2, Jitter: 0.2,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Next returns the delay to wait before the next attempt and advances
// the sequence: Base, Base·Factor, Base·Factor², … capped at Max, each
// jittered by ±Jitter.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	raw := float64(b.Base)
	for i := 0; i < b.attempt; i++ {
		raw *= b.Factor
		if raw >= float64(b.Max) {
			raw = float64(b.Max)
			break
		}
	}
	b.attempt++
	if b.Jitter > 0 {
		raw *= 1 + b.Jitter*(2*b.rng.Float64()-1)
	}
	d := time.Duration(raw)
	if d > b.Max {
		d = b.Max
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Reset rewinds the sequence to Base (call after a success).
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.attempt = 0
	b.mu.Unlock()
}

// Attempts returns how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempts() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}

// retrySeed draws one seed for a new Backoff from the retry layer's
// dedicated rng. The transport's main rng is reserved for the gossip
// node (see Rand) and must not be shared with send goroutines.
func (t *Transport) retrySeed() int64 {
	t.rngMu.Lock()
	defer t.rngMu.Unlock()
	return t.retryRng.Int63()
}

// peerHealth tracks one peer's consecutive-failure streak and its
// suppression window. The streak is bound to the address it was built
// against: failures describe a dead endpoint, so a peer that rejoins at
// a new address (a new incarnation) starts with a clean slate.
type peerHealth struct {
	addr  string
	fails int
	bo    *Backoff
	until time.Duration // transport-clock instant the window expires
}

// admit decides whether a send to the peer may touch the network. Inside
// an active suppression window it returns ErrSuppressed immediately;
// once the window has expired the attempt is admitted as a recovery
// probe (counted, and the window is re-armed so concurrent senders do
// not stampede a possibly-dead peer).
func (t *Transport) admit(to directory.PeerID) error {
	if t.FailThreshold <= 0 {
		return nil
	}
	addr, _ := t.resolve(to)
	t.healthMu.Lock()
	defer t.healthMu.Unlock()
	h, ok := t.health[to]
	if !ok {
		return nil
	}
	if addr != "" && h.addr != addr {
		// The peer moved; its failure streak belongs to the old
		// endpoint.
		delete(t.health, to)
		return nil
	}
	if h.fails < t.FailThreshold {
		return nil
	}
	now := t.nowFn()
	if now < h.until {
		t.m.suppressed.Inc()
		return fmt.Errorf("%w (peer %d)", ErrSuppressed, to)
	}
	h.until = now + h.bo.Next()
	t.m.probes.Inc()
	return nil
}

// noteResult folds one send outcome into the peer's health. Success (or
// a RemoteError — the peer answered) clears the streak; failure extends
// it and, at FailThreshold, opens or lengthens the suppression window.
func (t *Transport) noteResult(to directory.PeerID, err error) {
	if t.FailThreshold <= 0 {
		return
	}
	var remote *RemoteError
	healthy := err == nil || errors.As(err, &remote)
	addr, _ := t.resolve(to)
	t.healthMu.Lock()
	defer t.healthMu.Unlock()
	if healthy {
		delete(t.health, to)
		return
	}
	h := t.health[to]
	if h == nil || (addr != "" && h.addr != addr) {
		h = &peerHealth{addr: addr, bo: NewBackoff(t.RetryBase, t.RetryMax, t.retrySeed())}
		t.health[to] = h
	}
	h.fails++
	if h.fails >= t.FailThreshold {
		h.until = t.nowFn() + h.bo.Next()
	}
}

// PeerSuppressed reports whether sends to the peer are currently being
// suppressed (its streak reached FailThreshold and the window is open).
func (t *Transport) PeerSuppressed(to directory.PeerID) bool {
	if t.FailThreshold <= 0 {
		return false
	}
	t.healthMu.Lock()
	defer t.healthMu.Unlock()
	h, ok := t.health[to]
	return ok && h.fails >= t.FailThreshold && t.nowFn() < h.until
}

// withRetry runs op against a peer with the transport's per-send retry
// policy: suppressed peers fail fast, transient errors are retried up to
// Retries extra times with capped jittered backoff between attempts, and
// the final outcome updates the peer's health. RemoteErrors pass through
// unretried — the peer is alive.
func (t *Transport) withRetry(to directory.PeerID, op func() error) error {
	if err := t.admit(to); err != nil {
		return err
	}
	bo := NewBackoff(t.RetryBase, t.RetryMax, t.retrySeed())
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		var remote *RemoteError
		if err == nil || errors.As(err, &remote) {
			break
		}
		if attempt >= t.Retries {
			break
		}
		t.m.retries.Inc()
		t.sleep(bo.Next())
	}
	t.noteResult(to, err)
	return err
}
