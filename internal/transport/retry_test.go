package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"planetp/internal/directory"
	"planetp/internal/faultnet"
	"planetp/internal/gossip"
	"planetp/internal/metrics"
)

func TestBackoffCappedGrowth(t *testing.T) {
	b := NewBackoff(100*time.Millisecond, time.Second, 1)
	b.Jitter = 0 // exact sequence
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second, time.Second,
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("Next()[%d] = %v, want %v", i, got, w)
		}
	}
	if got := b.Attempts(); got != len(want) {
		t.Fatalf("Attempts = %d, want %d", got, len(want))
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		b := NewBackoff(100*time.Millisecond, 10*time.Second, seed)
		nominal := 100 * time.Millisecond
		for i := 0; i < 8; i++ {
			d := b.Next()
			lo := time.Duration(float64(nominal) * (1 - b.Jitter))
			hi := time.Duration(float64(nominal) * (1 + b.Jitter))
			if d < lo || d > hi {
				t.Fatalf("seed %d attempt %d: %v outside [%v, %v]", seed, i, d, lo, hi)
			}
			if nominal < b.Max {
				nominal *= 2
				if nominal > b.Max {
					nominal = b.Max
				}
			}
		}
	}
}

func TestBackoffNeverExceedsMax(t *testing.T) {
	b := NewBackoff(time.Second, 2*time.Second, 7)
	for i := 0; i < 50; i++ {
		if d := b.Next(); d > b.Max {
			t.Fatalf("attempt %d: %v > Max %v", i, d, b.Max)
		}
	}
}

func TestBackoffResetOnSuccess(t *testing.T) {
	b := NewBackoff(100*time.Millisecond, time.Second, 3)
	b.Jitter = 0
	b.Next()
	b.Next()
	b.Next()
	b.Reset()
	if got := b.Attempts(); got != 0 {
		t.Fatalf("Attempts after Reset = %d", got)
	}
	if got := b.Next(); got != 100*time.Millisecond {
		t.Fatalf("first delay after Reset = %v, want Base", got)
	}
}

func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(0, 0, 1)
	if b.Base != 100*time.Millisecond || b.Max != 5*time.Second || b.Factor != 2 || b.Jitter != 0.2 {
		t.Fatalf("defaults = %+v", b)
	}
	if b := NewBackoff(time.Minute, time.Second, 1); b.Max != time.Minute {
		t.Fatalf("Max < Base not raised: %v", b.Max)
	}
}

// fakeClockTransport builds a transport whose retry layer runs on a fake
// clock: sleeps advance virtual time instantly, and dials are answered
// by a scripted hook.
func fakeClockTransport(t *testing.T, hook DialHook, reg *metrics.Registry) (*Transport, *time.Duration) {
	t.Helper()
	h := newHandler(0)
	resolve := func(id directory.PeerID) (string, bool) { return "10.0.0.1:1", true }
	tr, err := New(0, "", h, resolve, 1, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	now := new(time.Duration)
	var mu sync.Mutex
	tr.nowFn = func() time.Duration { mu.Lock(); defer mu.Unlock(); return *now }
	tr.sleep = func(d time.Duration) { mu.Lock(); *now += d; mu.Unlock() }
	tr.DialHook = hook
	return tr, now
}

// failNTimes returns a DialHook erroring on the first n attempts, then
// delegating to a live transport at liveAddr, and a counter of attempts.
func failNTimes(n int, liveAddr string) (DialHook, *int32) {
	var mu sync.Mutex
	count := new(int32)
	return func(to directory.PeerID, addr string, timeout time.Duration) (net.Conn, error) {
		mu.Lock()
		*count++
		c := *count
		mu.Unlock()
		if int(c) <= n {
			return nil, fmt.Errorf("injected dial failure %d", c)
		}
		return net.DialTimeout("tcp", liveAddr, timeout)
	}, count
}

func TestTransientDialFailureRetriedWithinOneSend(t *testing.T) {
	// One transient failure, then the real peer: a single Send must
	// succeed via its in-call retry, and the message must arrive.
	_, _, tb, hb := pair(t)
	reg := metrics.NewRegistry()
	hook, attempts := failNTimes(1, tb.Addr())
	tr, _ := fakeClockTransport(t, hook, reg)

	if err := tr.Send(1, &gossip.Message{Type: gossip.MsgAERequest, From: 0, Digest: 9}); err != nil {
		t.Fatalf("send with one transient failure: %v", err)
	}
	if *attempts != 2 {
		t.Fatalf("attempts = %d, want 2", *attempts)
	}
	waitFor(t, "retried delivery", func() bool {
		hb.mu.Lock()
		defer hb.mu.Unlock()
		return len(hb.gossips) == 1
	})
	if got := reg.Snapshot().Get("transport_send_retries_total"); got != 1 {
		t.Fatalf("transport_send_retries_total = %d, want 1", got)
	}
	if tr.PeerSuppressed(1) {
		t.Fatal("peer suppressed after successful retry")
	}
}

func TestSuppressionAfterThresholdAndRecoveryProbe(t *testing.T) {
	reg := metrics.NewRegistry()
	var dead bool
	var mu sync.Mutex
	dials := 0
	hook := func(to directory.PeerID, addr string, timeout time.Duration) (net.Conn, error) {
		mu.Lock()
		defer mu.Unlock()
		dials++
		if dead {
			return nil, errors.New("injected: peer down")
		}
		return nil, nil // never reached while dead in this test
	}
	tr, now := fakeClockTransport(t, hook, reg)
	tr.Retries = 0 // isolate the suppression state machine
	tr.FailThreshold = 2
	mu.Lock()
	dead = true
	mu.Unlock()

	msg := &gossip.Message{Type: gossip.MsgAERequest, From: 0}
	// Two failed sends reach the threshold.
	for i := 0; i < 2; i++ {
		if err := tr.Send(1, msg); err == nil {
			t.Fatal("send to dead peer should fail")
		}
	}
	if !tr.PeerSuppressed(1) {
		t.Fatal("peer not suppressed at threshold")
	}
	// Inside the window: fail fast, no dial burned.
	mu.Lock()
	before := dials
	mu.Unlock()
	err := tr.Send(1, msg)
	if !errors.Is(err, ErrSuppressed) {
		t.Fatalf("suppressed send error = %v, want ErrSuppressed", err)
	}
	mu.Lock()
	if dials != before {
		t.Fatalf("suppressed send dialed (dials %d -> %d)", before, dials)
	}
	mu.Unlock()
	if got := reg.Snapshot().Get("transport_suppressed_sends_total"); got != 1 {
		t.Fatalf("transport_suppressed_sends_total = %d, want 1", got)
	}

	// Past the window one attempt is admitted as a probe; the peer is
	// still dead, so the window re-arms.
	*now += tr.RetryMax
	if err := tr.Send(1, msg); errors.Is(err, ErrSuppressed) {
		t.Fatal("probe not admitted after window expiry")
	}
	if got := reg.Snapshot().Get("transport_recovery_probes_total"); got != 1 {
		t.Fatalf("transport_recovery_probes_total = %d, want 1", got)
	}
	if !tr.PeerSuppressed(1) {
		t.Fatal("failed probe should re-arm suppression")
	}
}

func TestProbeSuccessClearsSuppression(t *testing.T) {
	_, _, tb, _ := pair(t)
	var dead bool
	var mu sync.Mutex
	hook := func(to directory.PeerID, addr string, timeout time.Duration) (net.Conn, error) {
		mu.Lock()
		d := dead
		mu.Unlock()
		if d {
			return nil, errors.New("injected: peer down")
		}
		return net.DialTimeout("tcp", tb.Addr(), timeout)
	}
	tr, now := fakeClockTransport(t, hook, nil)
	tr.Retries = 0
	tr.FailThreshold = 2
	mu.Lock()
	dead = true
	mu.Unlock()

	msg := &gossip.Message{Type: gossip.MsgAERequest, From: 0}
	for i := 0; i < 2; i++ {
		_ = tr.Send(1, msg)
	}
	if !tr.PeerSuppressed(1) {
		t.Fatal("peer not suppressed")
	}
	// Peer comes back; the next admitted probe succeeds and clears the
	// suppression entirely.
	mu.Lock()
	dead = false
	mu.Unlock()
	*now += tr.RetryMax
	if err := tr.Send(1, msg); err != nil {
		t.Fatalf("probe to recovered peer: %v", err)
	}
	if tr.PeerSuppressed(1) {
		t.Fatal("suppression not cleared by successful probe")
	}
}

func TestRemoteErrorNotRetriedAndCountsHealthy(t *testing.T) {
	// An application-level error from a live peer must not be retried
	// and must not advance the failure streak.
	_, _, tb, _ := pair(t)
	reg := metrics.NewRegistry()
	hook, attempts := failNTimes(0, tb.Addr())
	tr, _ := fakeClockTransport(t, hook, reg)
	tr.FailThreshold = 1

	// KindDoc is not a request kind the server understands; it answers
	// with Err = "unknown kind".
	_, err := tr.call(1, &Envelope{Kind: KindDoc, From: 0})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if *attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry on RemoteError)", *attempts)
	}
	if got := reg.Snapshot().Get("transport_send_retries_total"); got != 0 {
		t.Fatalf("retries = %d, want 0", got)
	}
	if tr.PeerSuppressed(1) {
		t.Fatal("RemoteError advanced the failure streak")
	}
}

func TestZeroFailThresholdDisablesSuppression(t *testing.T) {
	hook, _ := failNTimes(1000, "")
	tr, _ := fakeClockTransport(t, hook, nil)
	tr.Retries = 0
	tr.FailThreshold = 0
	msg := &gossip.Message{Type: gossip.MsgAERequest, From: 0}
	for i := 0; i < 10; i++ {
		if err := tr.Send(1, msg); errors.Is(err, ErrSuppressed) {
			t.Fatal("suppression engaged with FailThreshold = 0")
		}
	}
	if tr.PeerSuppressed(1) {
		t.Fatal("PeerSuppressed with FailThreshold = 0")
	}
}

func TestFaultnetDialerMountsOnDialHook(t *testing.T) {
	// The faultnet conn-level shim must compose with the transport's
	// DialHook seam: injected dial failures surface as send errors and
	// count dial-failure metrics; a clean plan passes traffic through.
	_, _, tb, hb := pair(t)
	reg := metrics.NewRegistry()
	h := newHandler(0)
	resolve := func(id directory.PeerID) (string, bool) { return tb.Addr(), true }
	tr, err := New(0, "", h, resolve, 3, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	tr.Retries = 0
	clock := func() time.Duration { return tr.Now() }

	failing := faultnet.New(faultnet.Config{Seed: 1, DialFail: 1}, nil)
	tr.DialHook = DialHook(failing.Dialer(0, clock, nil))
	err = tr.Send(1, &gossip.Message{Type: gossip.MsgAERequest, From: 0})
	if !errors.Is(err, faultnet.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if got := reg.Snapshot().Get("transport_dial_failures_total"); got != 1 {
		t.Fatalf("transport_dial_failures_total = %d, want 1", got)
	}

	clean := faultnet.New(faultnet.Config{Seed: 1}, nil)
	tr.DialHook = DialHook(clean.Dialer(0, clock, nil))
	if err := tr.Send(1, &gossip.Message{Type: gossip.MsgAERequest, From: 0, Digest: 5}); err != nil {
		t.Fatalf("send through clean plan: %v", err)
	}
	waitFor(t, "delivery through clean plan", func() bool {
		hb.mu.Lock()
		defer hb.mu.Unlock()
		return len(hb.gossips) == 1
	})
}

// A peer that reappears at a new address is a new incarnation (live
// peers rejoin on a fresh ephemeral port): the failure streak built
// against the dead endpoint must not suppress sends to the new one, and
// the streak must restart from zero there.
func TestNewAddressResetsFailureStreak(t *testing.T) {
	var mu sync.Mutex
	addr := "10.0.0.1:1"
	resolve := func(id directory.PeerID) (string, bool) {
		mu.Lock()
		defer mu.Unlock()
		return addr, true
	}
	hook := func(to directory.PeerID, a string, timeout time.Duration) (net.Conn, error) {
		return nil, fmt.Errorf("injected: dial %s refused", a)
	}
	tr, err := New(0, "", newHandler(0), resolve, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	tr.DialHook = hook
	tr.Retries = 0
	tr.FailThreshold = 2

	msg := &gossip.Message{Type: gossip.MsgAERequest, From: 0}
	for i := 0; i < 2; i++ {
		if err := tr.Send(1, msg); err == nil {
			t.Fatal("send to dead peer should fail")
		}
	}
	if err := tr.Send(1, msg); !errors.Is(err, ErrSuppressed) {
		t.Fatalf("err at old address = %v, want ErrSuppressed", err)
	}

	// The peer reincarnates elsewhere: the next two sends must be
	// admitted (dialed, failing with the injected error), and only the
	// third — a fresh streak reaching the threshold — suppressed.
	mu.Lock()
	addr = "10.0.0.2:1"
	mu.Unlock()
	for i := 0; i < 2; i++ {
		if err := tr.Send(1, msg); errors.Is(err, ErrSuppressed) {
			t.Fatalf("send %d after address change suppressed", i)
		}
	}
	if err := tr.Send(1, msg); !errors.Is(err, ErrSuppressed) {
		t.Fatalf("err after new streak = %v, want ErrSuppressed", err)
	}
}
