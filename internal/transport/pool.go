// Client-side connection pool. Pooled connections carry long-lived gob
// encoder/decoder streams, so a reused conn pays neither a dial
// round-trip nor re-transmitted type descriptors — the two per-RPC costs
// that dominate small exchanges (gossip pushes, query fan-out legs).
//
// The pool holds only idle connections: a checkout transfers ownership to
// the caller, who either returns the conn with put (stream still in a
// clean frame boundary) or closes it. Retention is bounded three ways —
// per-address (PoolConns), across all addresses (PoolMaxIdle, oldest-idle
// evicted first), and by idle age (PoolIdle, swept by a real-time reaper;
// the retry layer's fake clock must not stall reaping, so the reaper
// deliberately bypasses the nowFn/sleep seams).
//
// A checkout re-validates the conn with a zero-cost staleness probe: a
// read with an already-expired deadline. A healthy idle conn has nothing
// buffered, so the read returns a timeout; a conn the far side closed
// (server restart, idle reap on their end) returns EOF or buffered bytes
// immediately and is discarded before it can eat an RPC.
package transport

import (
	"encoding/gob"
	"net"
	"sync"
	"time"

	"planetp/internal/directory"
)

// pconn is one pooled connection: the conn, its byte counter, and the
// per-stream codec state (gob descriptors already exchanged). The mark
// fields record how far the current exchange progressed, which decides
// whether a failed RPC can be transparently re-dialed without risking
// double delivery.
type pconn struct {
	conn net.Conn
	cc   *countingConn
	enc  *gob.Encoder
	dec  *gob.Decoder
	addr string

	idleSince time.Time

	// wroteReq: the current exchange's request was fully encoded onto
	// the stream. recvMark: bytes read before the current exchange, so
	// gotRespByte can tell whether any response byte arrived.
	wroteReq bool
	recvMark int64
}

func newPconn(conn net.Conn, addr string) *pconn {
	cc := &countingConn{Conn: conn}
	return &pconn{
		conn: conn, cc: cc,
		enc:  gob.NewEncoder(cc),
		dec:  gob.NewDecoder(cc),
		addr: addr,
	}
}

// beginExchange resets the delivery marks for a fresh RPC.
func (pc *pconn) beginExchange() {
	pc.wroteReq = false
	pc.recvMark = pc.cc.recv
}

// gotRespByte reports whether any response byte arrived for the current
// exchange.
func (pc *pconn) gotRespByte() bool { return pc.cc.recv > pc.recvMark }

// undelivered reports whether the current exchange's request provably
// never took effect at the peer, making one transparent re-dial safe. For
// oneways that means the request encode itself failed — a torn request
// never decodes server-side, so it was not delivered. For calls it means
// zero response bytes arrived; the request may have executed, but every
// call kind is an idempotent read, so re-asking is harmless.
func (pc *pconn) undelivered(oneway bool) bool {
	if oneway {
		return !pc.wroteReq
	}
	return !pc.gotRespByte()
}

// stale probes an idle conn for death with a non-blocking socket peek
// (see connStale in probe_unix.go). A dead conn discarded here never
// costs an RPC; one that slips through is absorbed by the transparent
// re-dial.
func (pc *pconn) stale() bool { return connStale(pc.conn) }

// connPool keeps idle pconns keyed by dial address. lastAddr remembers
// which address each peer's conns were pooled against, so a directory
// address change (rejoin on a new port, incarnation bump) invalidates the
// now-orphaned conns instead of leaving them to fail an RPC first.
type connPool struct {
	t *Transport

	// mu is the pool's own lock (not Transport.mu: put runs inside the
	// RPC path and must not contend with accept/close bookkeeping).
	mu       sync.Mutex
	idle     map[string][]*pconn // per addr, oldest first
	total    int
	lastAddr map[directory.PeerID]string
	reapOn   bool
	reaper   *time.Timer
	closed   bool
}

func newConnPool(t *Transport) *connPool {
	return &connPool{
		t:        t,
		idle:     make(map[string][]*pconn),
		lastAddr: make(map[directory.PeerID]string),
	}
}

// noteAddr records that to resolves to addr, discarding conns pooled
// against a previous address for the same peer.
func (p *connPool) noteAddr(to directory.PeerID, addr string) {
	p.mu.Lock()
	prev, ok := p.lastAddr[to]
	p.lastAddr[to] = addr
	if !ok || prev == addr {
		p.mu.Unlock()
		return
	}
	orphans := p.idle[prev]
	delete(p.idle, prev)
	p.total -= len(orphans)
	p.t.m.poolIdleConns.Set(int64(p.total))
	p.mu.Unlock()
	for _, pc := range orphans {
		pc.conn.Close()
		p.t.m.poolStale.Inc()
	}
}

// InvalidatePeer drops every pooled conn for a peer. Core calls this when
// the directory supersedes or evicts the peer's record (incarnation bump,
// address change, declared dead): the pooled streams point at a previous
// life of the peer and must not carry another RPC.
func (t *Transport) InvalidatePeer(id directory.PeerID) {
	p := t.pool
	p.mu.Lock()
	addr, ok := p.lastAddr[id]
	if ok {
		delete(p.lastAddr, id)
	}
	var orphans []*pconn
	if ok {
		orphans = p.idle[addr]
		delete(p.idle, addr)
		p.total -= len(orphans)
		p.t.m.poolIdleConns.Set(int64(p.total))
	}
	p.mu.Unlock()
	for _, pc := range orphans {
		pc.conn.Close()
		p.t.m.poolStale.Inc()
	}
}

// get checks out an idle conn for addr, newest first, discarding stale
// ones. Returns nil on a pool miss.
func (p *connPool) get(addr string) *pconn {
	for {
		p.mu.Lock()
		list := p.idle[addr]
		if len(list) == 0 {
			p.mu.Unlock()
			return nil
		}
		pc := list[len(list)-1]
		if len(list) == 1 {
			delete(p.idle, addr)
		} else {
			p.idle[addr] = list[:len(list)-1]
		}
		p.total--
		p.t.m.poolIdleConns.Set(int64(p.total))
		p.mu.Unlock()
		if pc.stale() {
			pc.conn.Close()
			p.t.m.poolStale.Inc()
			continue
		}
		p.t.m.poolReuse.Inc()
		return pc
	}
}

// put returns a healthy conn to the pool, enforcing the per-address and
// global caps (oldest idle evicted first) and arming the idle reaper.
func (p *connPool) put(pc *pconn) {
	per := p.t.PoolConns
	if per <= 0 {
		pc.conn.Close()
		return
	}
	maxIdle := p.t.PoolMaxIdle
	if maxIdle <= 0 {
		maxIdle = defaultPoolMaxIdle
	}
	pc.idleSince = time.Now()
	var evicted []*pconn
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		pc.conn.Close()
		return
	}
	list := append(p.idle[pc.addr], pc)
	p.total++
	for len(list) > per {
		evicted, list = append(evicted, list[0]), list[1:]
		p.total--
	}
	p.idle[pc.addr] = list
	for p.total > maxIdle {
		old := p.evictOldestLocked()
		if old == nil {
			break
		}
		evicted = append(evicted, old)
	}
	p.t.m.poolIdleConns.Set(int64(p.total))
	p.armReaperLocked()
	p.mu.Unlock()
	for _, e := range evicted {
		e.conn.Close()
		p.t.m.poolEvicted.Inc()
	}
}

// evictOldestLocked removes the globally oldest idle conn (LRU across
// addresses; each per-addr list is oldest-first).
func (p *connPool) evictOldestLocked() *pconn {
	var oldAddr string
	var old *pconn
	for addr, list := range p.idle {
		if old == nil || list[0].idleSince.Before(old.idleSince) {
			old, oldAddr = list[0], addr
		}
	}
	if old == nil {
		return nil
	}
	if len(p.idle[oldAddr]) == 1 {
		delete(p.idle, oldAddr)
	} else {
		p.idle[oldAddr] = p.idle[oldAddr][1:]
	}
	p.total--
	return old
}

// armReaperLocked schedules the next idle sweep. Real time on purpose:
// tests that fake the transport clock still want idle conns reaped.
func (p *connPool) armReaperLocked() {
	if p.reapOn || p.closed || p.total == 0 {
		return
	}
	p.reapOn = true
	d := p.t.poolIdle()/2 + time.Millisecond
	if p.reaper == nil {
		p.reaper = time.AfterFunc(d, p.reap)
	} else {
		p.reaper.Reset(d)
	}
}

// reap closes conns idle past PoolIdle and re-arms while any remain.
func (p *connPool) reap() {
	cutoff := time.Now().Add(-p.t.poolIdle())
	var dead []*pconn
	p.mu.Lock()
	p.reapOn = false
	if p.closed {
		p.mu.Unlock()
		return
	}
	for addr, list := range p.idle {
		n := 0
		for n < len(list) && list[n].idleSince.Before(cutoff) {
			n++
		}
		if n == 0 {
			continue
		}
		dead = append(dead, list[:n]...)
		if n == len(list) {
			delete(p.idle, addr)
		} else {
			p.idle[addr] = append([]*pconn(nil), list[n:]...)
		}
		p.total -= n
	}
	p.t.m.poolIdleConns.Set(int64(p.total))
	p.armReaperLocked()
	p.mu.Unlock()
	for _, pc := range dead {
		pc.conn.Close()
		p.t.m.poolReaped.Inc()
	}
}

// closeAll shuts the pool down: every idle conn closed, the reaper
// stopped, later puts refused.
func (p *connPool) closeAll() {
	p.mu.Lock()
	p.closed = true
	if p.reaper != nil {
		p.reaper.Stop()
	}
	var all []*pconn
	for _, list := range p.idle {
		all = append(all, list...)
	}
	p.idle = make(map[string][]*pconn)
	p.total = 0
	p.t.m.poolIdleConns.Set(0)
	p.mu.Unlock()
	for _, pc := range all {
		pc.conn.Close()
	}
}
