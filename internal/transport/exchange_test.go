package transport

import (
	"strings"
	"testing"

	"planetp/internal/directory"
)

func exRec(id directory.PeerID, addr string) directory.Record {
	return directory.Record{ID: id, Ver: directory.Version{Epoch: 1, Seq: 1}, Addr: addr}
}

// TestPeerExchangeRoundTrip: the RPC carries the served sample across the
// wire, both by peer id and by raw address (the bootstrap path).
func TestPeerExchangeRoundTrip(t *testing.T) {
	ta, _, tb, hb := pair(t)
	hb.mu.Lock()
	hb.sample = []directory.Record{exRec(1, "127.0.0.1:9001"), exRec(2, "127.0.0.1:9002")}
	hb.mu.Unlock()

	recs, err := ta.PeerExchange(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != 1 || recs[1].ID != 2 {
		t.Fatalf("recs = %+v", recs)
	}
	recs, err = ta.PeerExchangeAddr(tb.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("addr exchange recs = %+v, want the server-side clamp to 1", recs)
	}
}

// TestPeerExchangeServerClamp: the request's sample size is clamped
// server-side before it touches the handler — a hostile K cannot size an
// allocation or pull an unbounded sample.
func TestPeerExchangeServerClamp(t *testing.T) {
	ta, _, _, hb := pair(t)
	big := make([]directory.Record, 2*MaxExchangeRecords)
	for i := range big {
		big[i] = exRec(directory.PeerID(i), "127.0.0.1:9000")
	}
	hb.mu.Lock()
	hb.sample = big
	hb.mu.Unlock()

	recs, err := ta.PeerExchange(1, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != MaxExchangeRecords {
		t.Fatalf("got %d records, want the hard bound %d", len(recs), MaxExchangeRecords)
	}
}

func TestClampExchange(t *testing.T) {
	cases := [][2]int{{-5, 1}, {0, 1}, {1, 1}, {16, 16}, {MaxExchangeRecords, MaxExchangeRecords}, {1 << 20, MaxExchangeRecords}}
	for _, c := range cases {
		if got := clampExchange(c[0]); got != c[1] {
			t.Errorf("clampExchange(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestSanitizePeerSample(t *testing.T) {
	good := exRec(3, "127.0.0.1:9003")
	withPayload := exRec(4, "127.0.0.1:9004")
	withPayload.Payload = []byte{1, 2, 3}
	bad := []directory.Record{
		{ID: -1, Ver: directory.Version{Epoch: 1}, Addr: "x:1"},  // negative id
		{ID: 5, Addr: "x:1"},                                     // zero version
		{ID: 6, Ver: directory.Version{Epoch: 1}},                // no address
		exRec(7, strings.Repeat("a", maxExchangeAddr+1)),         // oversized address
		{ID: 8, Ver: directory.Version{Epoch: 1}, Addr: "x:1", PayloadSize: -1},
		{ID: 9, Ver: directory.Version{Epoch: 1}, Addr: "x:1", DiffSize: -9},
	}
	in := append([]directory.Record{good, withPayload}, bad...)
	out := SanitizePeerSample(in, 16)
	if len(out) != 2 || out[0].ID != 3 || out[1].ID != 4 {
		t.Fatalf("out = %+v, want only records 3 and 4", out)
	}
	if out[1].Payload != nil {
		t.Fatal("payload not stripped from surviving record")
	}
	if in[1].Payload == nil {
		t.Fatal("input slice modified")
	}

	// max truncates the survivors, and the hard bound truncates the input.
	if out := SanitizePeerSample(in, 1); len(out) != 1 {
		t.Fatalf("max=1 gave %d records", len(out))
	}
	huge := make([]directory.Record, 3*MaxExchangeRecords)
	for i := range huge {
		huge[i] = exRec(directory.PeerID(i), "127.0.0.1:9000")
	}
	if out := SanitizePeerSample(huge, 1<<30); len(out) != MaxExchangeRecords {
		t.Fatalf("hard bound gave %d records", len(out))
	}
}
