package transport

import (
	"testing"
	"time"

	"planetp/internal/directory"
)

// Regression test: a peer's handler dependencies are wired only after
// the transport exists (the self record embeds the bound address), so a
// join request racing construction used to dereference a half-built
// handler. NewDeferred must reserve the port immediately but serve
// nothing until StartAccepting.
func TestDeferredServesOnlyAfterStartAccepting(t *testing.T) {
	h := newHandler(7)
	srv, err := NewDeferred(7, "", h, func(directory.PeerID) (string, bool) { return "", false }, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := New(1, "", newHandler(1), func(directory.PeerID) (string, bool) { return "", false }, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// The request must connect (port is reserved) but sit unanswered in
	// the backlog until the server starts accepting.
	done := make(chan error, 1)
	go func() {
		rec, err := cli.FetchRecord(srv.Addr())
		if err == nil && rec.ID != 7 {
			t.Errorf("FetchRecord returned record for peer %d, want 7", rec.ID)
		}
		done <- err
	}()

	select {
	case err := <-done:
		t.Fatalf("request served before StartAccepting (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}

	srv.StartAccepting()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("FetchRecord after StartAccepting: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request not served after StartAccepting")
	}

	srv.StartAccepting() // idempotent
}

// Close on a deferred transport that never started accepting must not
// hang, and StartAccepting afterwards must be a no-op.
func TestDeferredCloseWithoutAccepting(t *testing.T) {
	srv, err := NewDeferred(3, "", newHandler(3), func(directory.PeerID) (string, bool) { return "", false }, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung on never-accepting deferred transport")
	}
	srv.StartAccepting() // must not panic or leak an accept loop
}
