// Package transport is PlanetP's live network layer: gob-over-TCP
// messaging that carries gossip (one-way), search RPCs, brokerage
// operations, and document fetches between peers. It implements
// gossip.Env, so the exact protocol engine that runs in the simulator
// runs over real sockets here.
//
// The wire model is a persistent framed stream: each connection carries a
// long-lived gob encoder/decoder pair on both ends, and every RPC —
// including the protocol's one-way sends, which receive a small KindAck
// receipt — is one request/response frame on that stream, bounded by a
// per-exchange deadline. The client side pools idle connections per peer
// address (see pool.go), so sustained gossip and query fan-out amortize
// both the dial round-trip and gob's type descriptors across thousands of
// exchanges; a reused conn that proves dead under an RPC is transparently
// re-dialed once, but only when delivery provably did not happen, before
// the failure reaches the retry/suppression machinery.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"planetp/internal/broker"
	"planetp/internal/directory"
	"planetp/internal/gossip"
	"planetp/internal/metrics"
	"planetp/internal/replica"
	"planetp/internal/search"
)

// Kind tags an envelope.
type Kind uint8

// Envelope kinds.
const (
	// KindGossip carries a one-way gossip message.
	KindGossip Kind = iota
	// KindQuery asks the target to run a local query; KindQueryResp
	// answers.
	KindQuery
	// KindBrokerPut stores a snippet at the target's broker.
	KindBrokerPut
	// KindBrokerGet fetches snippets for a key; answered by
	// KindSnippets.
	KindBrokerGet
	// KindBrokerWatch registers a persistent-query watch at the
	// target's broker; matches come back as KindNotify one-ways.
	KindBrokerWatch
	// KindNotify delivers a matched snippet to a watcher.
	KindNotify
	// KindGetDoc fetches a document body by key; answered by KindDoc.
	KindGetDoc
	// KindRecord requests the target's self record (bootstrap);
	// answered by KindRecordResp.
	KindRecord
	// KindProxySearch asks the target to run a full ranked search on
	// the requester's behalf (the paper's proxy-search accommodation
	// for bandwidth-limited peers); answered by KindProxyResp.
	KindProxySearch

	// Response kinds.
	KindQueryResp
	KindSnippets
	KindDoc
	KindRecordResp
	KindProxyResp

	// KindPeerExchange requests a bounded random sample of the target's
	// known-on-line directory records (bootstrap discovery); answered by
	// KindPeers. New kinds append here so earlier gob values stay stable
	// across versions.
	KindPeerExchange
	KindPeers

	// KindReplicaPut pushes a replica of a hot document to a
	// ring-responsible peer (one-way, best effort — the hoarding loop
	// repairs what a lost push misses).
	KindReplicaPut
	// KindReplicaPurge tells a replica holder the origin removed (or
	// superseded) a document (one-way).
	KindReplicaPurge
	// KindHotDocs asks a peer for its hottest served documents (the
	// hoard exchange); answered by KindHotList.
	KindHotDocs
	KindHotList

	// KindAck is the server's receipt for a one-way envelope. On a
	// pooled stream a sender cannot tell a delivered oneway from one
	// written into a dead connection without it; the ack closes that gap
	// and keeps offline detection (send failures drive suspicion)
	// truthful under connection reuse.
	KindAck

	numKinds
)

// String implements fmt.Stringer; the names also suffix the per-kind
// byte counters (transport_tx_bytes_<kind>).
func (k Kind) String() string {
	switch k {
	case KindGossip:
		return "gossip"
	case KindQuery:
		return "query"
	case KindBrokerPut:
		return "broker_put"
	case KindBrokerGet:
		return "broker_get"
	case KindBrokerWatch:
		return "broker_watch"
	case KindNotify:
		return "notify"
	case KindGetDoc:
		return "get_doc"
	case KindRecord:
		return "record"
	case KindProxySearch:
		return "proxy_search"
	case KindQueryResp:
		return "query_resp"
	case KindSnippets:
		return "snippets"
	case KindDoc:
		return "doc"
	case KindRecordResp:
		return "record_resp"
	case KindProxyResp:
		return "proxy_resp"
	case KindPeerExchange:
		return "peer_exchange"
	case KindPeers:
		return "peers"
	case KindReplicaPut:
		return "replica_put"
	case KindReplicaPurge:
		return "replica_purge"
	case KindHotDocs:
		return "hot_docs"
	case KindHotList:
		return "hot_list"
	case KindAck:
		return "ack"
	}
	return "unknown"
}

// Envelope is the single gob wire unit.
type Envelope struct {
	Kind Kind
	From directory.PeerID

	Gossip  *gossip.Message
	Terms   []string
	All     bool
	K       int
	Docs    []search.DocResult
	Scored  []search.ScoredDoc
	Snippet *broker.Snippet
	Snips   []broker.Snippet
	Discard time.Duration
	Key     string
	XML     string
	Found   bool
	Record  *directory.Record
	Records []directory.Record
	Err     string
	// Replica fields (appended for gob stability across versions):
	// Origin/Epoch identify the publishing incarnation of a pushed or
	// purged replica; Hot carries a hoard exchange's advertisement.
	Origin directory.PeerID
	Epoch  uint32
	Hot    []replica.HotDoc
}

// Handler is the application side of the transport (implemented by
// core.Peer).
type Handler interface {
	// HandleGossip delivers a gossip message.
	HandleGossip(from directory.PeerID, m *gossip.Message)
	// HandleQuery runs a local query (all = conjunctive).
	HandleQuery(terms []string, all bool) []search.DocResult
	// HandleBrokerPut stores a brokered snippet locally under key.
	HandleBrokerPut(key string, sn broker.Snippet, discard time.Duration)
	// HandleBrokerGet returns local snippets for key.
	HandleBrokerGet(key string) []broker.Snippet
	// HandleBrokerWatch registers a remote watcher.
	HandleBrokerWatch(keys []string, watcher directory.PeerID)
	// HandleNotify delivers a matched snippet to this (watching) peer.
	HandleNotify(sn broker.Snippet)
	// HandleGetDoc returns a stored document's XML.
	HandleGetDoc(key string) (string, bool)
	// HandleProxySearch runs a ranked search on behalf of a
	// bandwidth-limited requester.
	HandleProxySearch(terms []string, k int) []search.ScoredDoc
	// HandlePeerExchange returns a random sample of at most max
	// known-on-line directory records (bootstrap discovery).
	HandlePeerExchange(max int) []directory.Record
	// HandleReplicaPut offers this peer a replica of a hot document
	// published by origin at epoch (best-effort push replication).
	HandleReplicaPut(key, xml string, origin directory.PeerID, epoch uint32)
	// HandleReplicaPurge tells this peer the origin removed (or
	// superseded) a document it may hold a replica of.
	HandleReplicaPurge(key string, origin directory.PeerID, epoch uint32)
	// HandleHotDocs returns up to max of this peer's hottest served
	// documents (the hoard exchange).
	HandleHotDocs(max int) []replica.HotDoc
	// SelfRecord returns the peer's current record (bootstrap).
	SelfRecord() directory.Record
}

// Resolver maps peer ids to dialable addresses (the directory's Addr
// field).
type Resolver func(id directory.PeerID) (string, bool)

// Transport is one peer's network endpoint.
type Transport struct {
	id      directory.PeerID
	ln      net.Listener
	handler Handler
	resolve Resolver
	start   time.Time
	// rng is handed out via Rand() for the gossip node's exclusive,
	// externally synchronized use; transport internals must not touch it.
	rng *rand.Rand
	// retryRng seeds the retry layer's per-peer Backoffs; guarded by
	// rngMu because sends retry from many goroutines.
	retryRng *rand.Rand
	rngMu    sync.Mutex

	// intervalCh wakes the gossip loop when the node's interval
	// changes.
	intervalCh chan time.Duration

	mu        sync.Mutex
	closed    bool
	accepting bool
	sessions  map[net.Conn]struct{}
	wg        sync.WaitGroup

	pool *connPool

	// DialTimeout bounds connection attempts (drives off-line
	// detection). Default 2 s.
	DialTimeout time.Duration
	// RPCTimeout bounds a whole request/response exchange (encode,
	// server work, decode) once the connection is up. Zero means
	// 5 × DialTimeout, preserving the historical behavior of scaling
	// with the dial budget.
	RPCTimeout time.Duration
	// ServeTimeout bounds one inbound request on the server side, so a
	// client that connects and stalls cannot pin a handler goroutine
	// forever. Default 30 s.
	ServeTimeout time.Duration
	// ServeIdleTimeout bounds how long an inbound session may sit
	// between requests before the server hangs up (the client pool's
	// staleness probe absorbs the hangup without losing an RPC).
	// Default 2 min.
	ServeIdleTimeout time.Duration
	// PoolConns caps the idle connections retained per peer address;
	// checkout prefers the most recently used. 0 retains none —
	// dial-per-RPC, the pre-pool behavior, with the same framed wire
	// protocol. Default 4.
	PoolConns int
	// PoolMaxIdle caps idle connections across all addresses; beyond it
	// the longest-idle conn is evicted, whoever owns it. Default 128.
	PoolMaxIdle int
	// PoolIdle is how long an unused pooled conn survives before the
	// reaper closes it. Default 60 s.
	PoolIdle time.Duration
	// Retries is how many extra attempts one peer-addressed send makes
	// after the first fails, with capped jittered backoff between
	// attempts (default 1). Protocol operations tolerate the resulting
	// duplicates: gossip messages are idempotent and broker puts
	// overwrite. Negative disables retrying.
	Retries int
	// RetryBase and RetryMax bound the backoff between retry attempts
	// and between recovery probes to a suppressed peer (defaults 100 ms
	// and 5 s).
	RetryBase, RetryMax time.Duration
	// FailThreshold is how many consecutive failed sends to one peer
	// suppress further attempts: once reached, sends to that peer fail
	// fast (ErrSuppressed) until a backoff window expires, at which
	// point exactly one attempt is admitted as a recovery probe.
	// Default 3; 0 disables suppression.
	FailThreshold int
	// DialHook, when non-nil, replaces TCP dialing for peer-addressed
	// sends (fault injection; see internal/faultnet). Set before use;
	// not synchronized.
	DialHook DialHook
	// FateHook, when non-nil, is consulted once per peer-addressed send
	// attempt, before the pool is touched — the per-message fault seam
	// for pooled streams, where most sends never dial (see
	// faultnet.Plan.SendFate). Set before use; not synchronized.
	FateHook FateHook
	// BytesSent/BytesRecv count real encoded bytes (approximate:
	// counted at the net.Conn boundary). Read with atomic.LoadInt64.
	BytesSent, BytesRecv int64

	// nowFn and sleep are the retry layer's clock, swappable so backoff
	// and suppression tests run on a fake clock without sleeping.
	nowFn func() time.Duration
	sleep func(time.Duration)

	healthMu sync.Mutex
	health   map[directory.PeerID]*peerHealth

	m tpMetrics
}

// tpMetrics holds the transport's registry instruments, resolved once at
// construction (all nil — a no-op — when no registry is supplied).
type tpMetrics struct {
	dials        *metrics.Counter
	dialFailures *metrics.Counter
	timeouts     *metrics.Counter
	rpcLatencyUS *metrics.Histogram
	retries      *metrics.Counter
	suppressed   *metrics.Counter
	probes       *metrics.Counter

	// Pool instrumentation: reuse/misses give the connection-reuse
	// ratio; stale counts conns discarded at checkout or invalidation;
	// redials counts transparent re-dials after a reused conn died
	// mid-RPC; evicted/reaped count cap- and idle-driven closes.
	poolReuse     *metrics.Counter
	poolMisses    *metrics.Counter
	poolStale     *metrics.Counter
	poolRedials   *metrics.Counter
	poolEvicted   *metrics.Counter
	poolReaped    *metrics.Counter
	poolIdleConns *metrics.Gauge

	txBytes [numKinds]*metrics.Counter
	rxBytes [numKinds]*metrics.Counter
}

func newTpMetrics(r *metrics.Registry) tpMetrics {
	m := tpMetrics{
		dials:        r.Counter("transport_dials_total"),
		dialFailures: r.Counter("transport_dial_failures_total"),
		timeouts:     r.Counter("transport_timeouts_total"),
		rpcLatencyUS: r.Histogram("transport_rpc_latency_us",
			[]int64{100, 500, 1000, 5000, 10000, 50000, 100000, 500000, 1000000}),
		retries:    r.Counter("transport_send_retries_total"),
		suppressed: r.Counter("transport_suppressed_sends_total"),
		probes:     r.Counter("transport_recovery_probes_total"),

		poolReuse:     r.Counter("transport_pool_reuse_total"),
		poolMisses:    r.Counter("transport_pool_misses_total"),
		poolStale:     r.Counter("transport_pool_stale_total"),
		poolRedials:   r.Counter("transport_pool_redials_total"),
		poolEvicted:   r.Counter("transport_pool_evicted_total"),
		poolReaped:    r.Counter("transport_pool_reaped_total"),
		poolIdleConns: r.Gauge("transport_pool_idle_conns"),
	}
	for k := Kind(0); k < numKinds; k++ {
		m.txBytes[k] = r.Counter("transport_tx_bytes_" + k.String())
		m.rxBytes[k] = r.Counter("transport_rx_bytes_" + k.String())
	}
	return m
}

// countTimeout records err in the timeout counter when it is a deadline
// expiry.
func (t *Transport) countTimeout(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		t.m.timeouts.Inc()
	}
}

// countingConn counts bytes crossing a net.Conn so the transport can
// attribute real wire volume to an envelope kind. On a pooled stream the
// conn outlives many exchanges, so take drains per-exchange deltas
// instead of the conn being read once at close.
type countingConn struct {
	net.Conn
	sent, recv           int64
	takenSent, takenRecv int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.recv += int64(n)
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent += int64(n)
	return n, err
}

// take returns the bytes transferred since the previous take — the
// current exchange's share of the stream.
func (c *countingConn) take() (sent, recv int64) {
	sent, recv = c.sent-c.takenSent, c.recv-c.takenRecv
	c.takenSent, c.takenRecv = c.sent, c.recv
	return sent, recv
}

// account charges one exchange's byte delta to the transport totals and
// the per-kind counters. kind is the request kind; responses (and acks)
// are charged to the same kind — the exchange that caused them.
func (t *Transport) account(kind Kind, sent, recv int64) {
	atomic.AddInt64(&t.BytesSent, sent)
	atomic.AddInt64(&t.BytesRecv, recv)
	if kind < numKinds {
		t.m.txBytes[kind].Add(sent)
		t.m.rxBytes[kind].Add(recv)
	}
}

// New starts listening on listenAddr ("" or "127.0.0.1:0" for an
// ephemeral port). reg, when non-nil, receives the transport's metrics
// (transport_* names); nil disables instrumentation.
func New(id directory.PeerID, listenAddr string, handler Handler, resolve Resolver, seed int64, reg *metrics.Registry) (*Transport, error) {
	t, err := NewDeferred(id, listenAddr, handler, resolve, seed, reg)
	if err != nil {
		return nil, err
	}
	t.StartAccepting()
	return t, nil
}

// NewDeferred binds the listener like New but does not serve inbound
// requests until StartAccepting. A peer under construction needs this:
// its handler's dependencies (the gossip node in particular) are wired
// only after the transport exists — because the self record embeds the
// bound address — and a join request racing that window would hit them
// half-built. The port is still reserved immediately, so remote dials
// queue in the accept backlog rather than failing.
func NewDeferred(id directory.PeerID, listenAddr string, handler Handler, resolve Resolver, seed int64, reg *metrics.Registry) (*Transport, error) {
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	t := &Transport{
		id: id, ln: ln, handler: handler, resolve: resolve,
		start:            time.Now(),
		rng:              rand.New(rand.NewSource(seed)),
		retryRng:         rand.New(rand.NewSource(seed ^ 0x7265747279)), // "retry"
		intervalCh:       make(chan time.Duration, 4),
		sessions:         make(map[net.Conn]struct{}),
		DialTimeout:      2 * time.Second,
		ServeTimeout:     30 * time.Second,
		ServeIdleTimeout: 2 * time.Minute,
		PoolConns:        defaultPoolConns,
		PoolMaxIdle:      defaultPoolMaxIdle,
		PoolIdle:         time.Minute,
		Retries:          1,
		RetryBase:        100 * time.Millisecond,
		RetryMax:         5 * time.Second,
		FailThreshold:    3,
		health:           make(map[directory.PeerID]*peerHealth),
		m:                newTpMetrics(reg),
	}
	t.pool = newConnPool(t)
	t.nowFn = t.Now
	t.sleep = time.Sleep
	return t, nil
}

// Pool sizing defaults: a peer's working set of correspondents per gossip
// round is small, so a handful of conns per address and a bounded global
// budget cover the hot paths.
const (
	defaultPoolConns   = 4
	defaultPoolMaxIdle = 128
)

// poolIdle resolves the effective idle lifetime for pooled conns.
func (t *Transport) poolIdle() time.Duration {
	if t.PoolIdle > 0 {
		return t.PoolIdle
	}
	return time.Minute
}

// serveIdle resolves the effective between-requests deadline for inbound
// sessions.
func (t *Transport) serveIdle() time.Duration {
	if t.ServeIdleTimeout > 0 {
		return t.ServeIdleTimeout
	}
	return 2 * time.Minute
}

// StartAccepting begins serving inbound connections. Idempotent, and a
// no-op after Close — so an aborted construction can Close a deferred
// transport without leaking the accept loop.
func (t *Transport) StartAccepting() {
	t.mu.Lock()
	if t.accepting || t.closed {
		t.mu.Unlock()
		return
	}
	t.accepting = true
	t.wg.Add(1)
	t.mu.Unlock()
	go t.acceptLoop()
}

// rpcTimeout resolves the effective request/response deadline.
func (t *Transport) rpcTimeout() time.Duration {
	if t.RPCTimeout > 0 {
		return t.RPCTimeout
	}
	return 5 * t.DialTimeout
}

// Addr returns the bound listen address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// Close shuts the endpoint down: the listener stops, live inbound
// sessions are severed (their goroutines unblock on the closed conn), the
// client pool drains, and every server goroutine is awaited.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	open := make([]net.Conn, 0, len(t.sessions))
	for c := range t.sessions {
		open = append(open, c)
	}
	t.mu.Unlock()
	t.ln.Close()
	for _, c := range open {
		c.Close()
	}
	t.pool.closeAll()
	t.wg.Wait()
}

// IntervalCh exposes interval-change wakeups for the gossip driver loop.
func (t *Transport) IntervalCh() <-chan time.Duration { return t.intervalCh }

// --- gossip.Env ---

// Now implements gossip.Env as monotonic time since transport start.
func (t *Transport) Now() time.Duration { return time.Since(t.start) }

// Rand implements gossip.Env.
func (t *Transport) Rand() *rand.Rand { return t.rng }

// IntervalChanged implements gossip.Env.
func (t *Transport) IntervalChanged(d time.Duration) {
	select {
	case t.intervalCh <- d:
	default:
	}
}

// Send implements gossip.Env: one-way delivery of a gossip message.
func (t *Transport) Send(to directory.PeerID, m *gossip.Message) error {
	return t.oneway(to, &Envelope{Kind: KindGossip, From: t.id, Gossip: m})
}

// --- client operations ---

// FateHook decides one send attempt's injected fate (see
// faultnet.Plan.SendFate): err fails the attempt outright (counted and
// suppressed like a refused dial); drop loses the message after an
// apparently clean send; delay stalls before transmission; kill tears the
// connection carrying the exchange.
type FateHook func(to directory.PeerID) (err error, drop bool, delay time.Duration, kill bool)

// dialPeer connects to a resolved peer address, through DialHook when one
// is mounted.
func (t *Transport) dialPeer(to directory.PeerID, addr string) (net.Conn, error) {
	if t.DialHook != nil {
		t.m.dials.Inc()
		conn, err := t.DialHook(to, addr, t.DialTimeout)
		if err != nil {
			t.m.dialFailures.Inc()
			t.countTimeout(err)
			return nil, err
		}
		return conn, nil
	}
	return t.dialAddr(addr)
}

// dialAddr connects to a raw address, counting the attempt and its
// outcome.
func (t *Transport) dialAddr(addr string) (net.Conn, error) {
	t.m.dials.Inc()
	conn, err := net.DialTimeout("tcp", addr, t.DialTimeout)
	if err != nil {
		t.m.dialFailures.Inc()
		t.countTimeout(err)
		return nil, err
	}
	return conn, nil
}

// oneway sends an envelope and waits for the server's ack, retrying per
// the transport's retry policy.
func (t *Transport) oneway(to directory.PeerID, env *Envelope) error {
	return t.withRetry(to, func() error {
		_, err := t.roundTrip(to, env, true)
		return err
	})
}

// call sends an envelope and reads one reply, retrying per the
// transport's retry policy.
func (t *Transport) call(to directory.PeerID, env *Envelope) (*Envelope, error) {
	var resp *Envelope
	err := t.withRetry(to, func() error {
		r, err := t.roundTrip(to, env, false)
		if err != nil {
			return err
		}
		resp = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// callAddr is like call but dials a raw address (bootstrap, before the
// peer is in the directory). Conns pool under the raw address like any
// other.
func (t *Transport) callAddr(addr string, env *Envelope) (*Envelope, error) {
	return t.exchangePooled(addr, func() (net.Conn, error) { return t.dialAddr(addr) }, env, false, false)
}

// roundTrip is one peer-addressed send attempt: resolve, consult the
// fault seam, then run the exchange over a pooled conn.
func (t *Transport) roundTrip(to directory.PeerID, env *Envelope, oneway bool) (*Envelope, error) {
	addr, ok := t.resolve(to)
	if !ok || addr == "" {
		t.m.dialFailures.Inc()
		return nil, fmt.Errorf("transport: no address for peer %d", to)
	}
	kill := false
	if t.FateHook != nil {
		ferr, drop, delay, k := t.FateHook(to)
		if ferr != nil {
			// Injected dial failure / partition: account it exactly
			// like a refused dial so suppression sees the same signal.
			t.m.dials.Inc()
			t.m.dialFailures.Inc()
			t.countTimeout(ferr)
			return nil, ferr
		}
		if delay > 0 {
			t.sleep(delay)
		}
		if drop {
			// The message is lost after a clean send: oneways succeed
			// from the sender's view, calls never hear back.
			if oneway {
				return nil, nil
			}
			return nil, fmt.Errorf("faultnet: response from peer %d dropped", to)
		}
		kill = k
	}
	t.pool.noteAddr(to, addr)
	return t.exchangePooled(addr, func() (net.Conn, error) { return t.dialPeer(to, addr) }, env, oneway, kill)
}

// exchangePooled runs one framed RPC against addr over a pooled conn,
// dialing on a pool miss. A reused conn that fails under the RPC is
// closed and — only when delivery provably did not happen (see
// pconn.undelivered) — transparently re-dialed once; all other failures
// surface to the caller's retry/suppression machinery. kill injects a
// conn death just before the exchange (faultnet's ConnKill fate).
func (t *Transport) exchangePooled(addr string, dial func() (net.Conn, error), env *Envelope, oneway, kill bool) (*Envelope, error) {
	pc, reused := t.pool.get(addr), true
	if pc == nil {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		t.m.poolMisses.Inc()
		pc, reused = newPconn(conn, addr), false
	}
	if kill {
		pc.conn.Close()
	}
	resp, err := t.exchangeOn(pc, env, oneway)
	if err == nil {
		t.pool.put(pc)
		return resp, nil
	}
	if isRemote(err) {
		// The peer answered; the stream is intact and reusable.
		t.pool.put(pc)
		return nil, err
	}
	pc.conn.Close()
	if !reused || !pc.undelivered(oneway) {
		return nil, err
	}
	// The conn was healthy when pooled but dead under this RPC, and the
	// request cannot have taken effect: re-dial once, invisibly to the
	// retry layer.
	t.m.poolRedials.Inc()
	conn, derr := dial()
	if derr != nil {
		return nil, derr
	}
	pc = newPconn(conn, addr)
	resp, err = t.exchangeOn(pc, env, oneway)
	if err != nil {
		if isRemote(err) {
			t.pool.put(pc)
		} else {
			pc.conn.Close()
		}
		return nil, err
	}
	t.pool.put(pc)
	return resp, nil
}

// isRemote reports whether err is the peer answering with an application
// error — a healthy exchange as far as the wire is concerned.
func isRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// exchangeOn runs one request/response frame on a pooled conn: arm the
// per-exchange deadline, encode the request, decode the reply (an ack,
// for oneways). Byte deltas and latency are recorded per exchange.
func (t *Transport) exchangeOn(pc *pconn, env *Envelope, oneway bool) (*Envelope, error) {
	start := time.Now()
	pc.beginExchange()
	defer func() {
		sent, recv := pc.cc.take()
		t.account(env.Kind, sent, recv)
		t.m.rpcLatencyUS.Observe(time.Since(start).Microseconds())
	}()
	_ = pc.conn.SetDeadline(time.Now().Add(t.rpcTimeout()))
	if err := pc.enc.Encode(env); err != nil {
		t.countTimeout(err)
		return nil, err
	}
	pc.wroteReq = true
	var resp Envelope
	if err := pc.dec.Decode(&resp); err != nil {
		t.countTimeout(err)
		return nil, err
	}
	_ = pc.conn.SetDeadline(time.Time{})
	if resp.Err != "" {
		return nil, &RemoteError{Msg: resp.Err}
	}
	if oneway {
		return nil, nil
	}
	return &resp, nil
}

// Query runs a search RPC against a peer.
func (t *Transport) Query(to directory.PeerID, terms []string, all bool) ([]search.DocResult, error) {
	resp, err := t.call(to, &Envelope{Kind: KindQuery, From: t.id, Terms: terms, All: all})
	if err != nil {
		return nil, err
	}
	return resp.Docs, nil
}

// BrokerPut stores a snippet under key at the owning peer's broker.
func (t *Transport) BrokerPut(to directory.PeerID, key string, sn broker.Snippet, discard time.Duration) error {
	return t.oneway(to, &Envelope{Kind: KindBrokerPut, From: t.id, Key: key, Snippet: &sn, Discard: discard})
}

// BrokerGet fetches live snippets for key from a broker.
func (t *Transport) BrokerGet(to directory.PeerID, key string) ([]broker.Snippet, error) {
	resp, err := t.call(to, &Envelope{Kind: KindBrokerGet, From: t.id, Key: key})
	if err != nil {
		return nil, err
	}
	return resp.Snips, nil
}

// BrokerWatch registers this peer as a watcher for keys at a broker.
func (t *Transport) BrokerWatch(to directory.PeerID, keys []string) error {
	return t.oneway(to, &Envelope{Kind: KindBrokerWatch, From: t.id, Terms: keys})
}

// Notify delivers a matched snippet to a watcher.
func (t *Transport) Notify(to directory.PeerID, sn broker.Snippet) error {
	return t.oneway(to, &Envelope{Kind: KindNotify, From: t.id, Snippet: &sn})
}

// ErrDocNotFound reports that the remote peer answered the fetch but
// does not hold the document — a definitive miss (stale filter bit,
// purged replica), distinct from a transport failure where the peer may
// well still hold it. Callers resolving replicas failover differently on
// the two: a miss moves on to the next candidate, an unreachable peer is
// marked off-line.
var ErrDocNotFound = errors.New("document not found")

// GetDoc fetches a document body from a peer.
func (t *Transport) GetDoc(to directory.PeerID, key string) (string, error) {
	resp, err := t.call(to, &Envelope{Kind: KindGetDoc, From: t.id, Key: key})
	if err != nil {
		return "", err
	}
	if !resp.Found {
		return "", fmt.Errorf("transport: document %s on peer %d: %w", key, to, ErrDocNotFound)
	}
	return resp.XML, nil
}

// ReplicaPut pushes a replica of a hot document to a chosen holder
// (one-way, best effort: the holder may refuse silently if the epoch is
// stale or its budget disagrees).
func (t *Transport) ReplicaPut(to directory.PeerID, key, xml string, origin directory.PeerID, epoch uint32) error {
	return t.oneway(to, &Envelope{Kind: KindReplicaPut, From: t.id, Key: key, XML: xml, Origin: origin, Epoch: epoch})
}

// ReplicaPurge tells a holder that the origin removed the document at
// epoch; the holder drops its replica and records a death certificate.
func (t *Transport) ReplicaPurge(to directory.PeerID, key string, origin directory.PeerID, epoch uint32) error {
	return t.oneway(to, &Envelope{Kind: KindReplicaPurge, From: t.id, Key: key, Origin: origin, Epoch: epoch})
}

// HotDocs asks a peer for its hottest documents (hoarding pull): key,
// origin, epoch and current popularity score of up to max docs.
func (t *Transport) HotDocs(to directory.PeerID, max int) ([]replica.HotDoc, error) {
	resp, err := t.call(to, &Envelope{Kind: KindHotDocs, From: t.id, K: max})
	if err != nil {
		return nil, err
	}
	return resp.Hot, nil
}

// ProxySearch asks a better-connected peer to run the whole ranked
// search and return the top-k results.
func (t *Transport) ProxySearch(to directory.PeerID, terms []string, k int) ([]search.ScoredDoc, error) {
	resp, err := t.call(to, &Envelope{Kind: KindProxySearch, From: t.id, Terms: terms, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Scored, nil
}

// FetchRecord asks an address for its peer's current self record
// (bootstrap).
func (t *Transport) FetchRecord(addr string) (directory.Record, error) {
	resp, err := t.callAddr(addr, &Envelope{Kind: KindRecord, From: t.id})
	if err != nil {
		return directory.Record{}, err
	}
	if resp.Record == nil {
		return directory.Record{}, errors.New("transport: empty record response")
	}
	return *resp.Record, nil
}

// --- server side ---

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.sessions[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go func() {
			defer t.wg.Done()
			t.serve(conn)
		}()
	}
}

// serve handles one inbound session: a loop of request/response frames on
// a persistent stream (the codec pair lives as long as the conn, so gob
// type descriptors cross once). Between requests the conn may idle up to
// ServeIdleTimeout; each accepted request gets ServeTimeout to finish.
// The session ends when the client hangs up (or its pool reaps the conn),
// the idle deadline fires, a frame fails to decode, or a response fails
// to write.
func (t *Transport) serve(conn net.Conn) {
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.sessions, conn)
		t.mu.Unlock()
	}()
	cc := &countingConn{Conn: conn}
	dec := gob.NewDecoder(cc)
	enc := gob.NewEncoder(cc)
	for {
		_ = conn.SetReadDeadline(time.Now().Add(t.serveIdle()))
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			// End of session — client gone, idle expiry, or garbage.
			// Stray bytes still land in the totals (kind unknown, so
			// no per-kind charge).
			sent, recv := cc.take()
			atomic.AddInt64(&t.BytesSent, sent)
			atomic.AddInt64(&t.BytesRecv, recv)
			return
		}
		_ = conn.SetDeadline(time.Now().Add(t.ServeTimeout))
		err := t.dispatch(enc, &env)
		sent, recv := cc.take()
		t.account(env.Kind, sent, recv)
		if err != nil {
			t.countTimeout(err)
			return
		}
		_ = conn.SetWriteDeadline(time.Time{})
	}
}

// dispatch handles one decoded request and writes exactly one response
// frame — oneway kinds get a KindAck receipt, so a pooled sender can tell
// a delivered envelope from one written into a dead conn. The returned
// error is the response write's.
func (t *Transport) dispatch(enc *gob.Encoder, env *Envelope) error {
	switch env.Kind {
	case KindGossip:
		if env.Gossip != nil {
			t.handler.HandleGossip(env.From, env.Gossip)
		}
		return t.ack(enc)
	case KindQuery:
		docs := t.handler.HandleQuery(env.Terms, env.All)
		return enc.Encode(&Envelope{Kind: KindQueryResp, From: t.id, Docs: docs})
	case KindBrokerPut:
		if env.Snippet != nil {
			t.handler.HandleBrokerPut(env.Key, *env.Snippet, env.Discard)
		}
		return t.ack(enc)
	case KindBrokerGet:
		snips := t.handler.HandleBrokerGet(env.Key)
		return enc.Encode(&Envelope{Kind: KindSnippets, From: t.id, Snips: snips})
	case KindBrokerWatch:
		t.handler.HandleBrokerWatch(env.Terms, env.From)
		return t.ack(enc)
	case KindNotify:
		if env.Snippet != nil {
			t.handler.HandleNotify(*env.Snippet)
		}
		return t.ack(enc)
	case KindGetDoc:
		xml, found := t.handler.HandleGetDoc(env.Key)
		return enc.Encode(&Envelope{Kind: KindDoc, From: t.id, XML: xml, Found: found})
	case KindRecord:
		rec := t.handler.SelfRecord()
		return enc.Encode(&Envelope{Kind: KindRecordResp, From: t.id, Record: &rec})
	case KindProxySearch:
		scored := t.handler.HandleProxySearch(env.Terms, env.K)
		return enc.Encode(&Envelope{Kind: KindProxyResp, From: t.id, Scored: scored})
	case KindPeerExchange:
		recs := t.handler.HandlePeerExchange(clampExchange(env.K))
		return enc.Encode(&Envelope{Kind: KindPeers, From: t.id, Records: recs})
	case KindReplicaPut:
		t.handler.HandleReplicaPut(env.Key, env.XML, env.Origin, env.Epoch)
		return t.ack(enc)
	case KindReplicaPurge:
		t.handler.HandleReplicaPurge(env.Key, env.Origin, env.Epoch)
		return t.ack(enc)
	case KindHotDocs:
		hot := t.handler.HandleHotDocs(clampExchange(env.K))
		return enc.Encode(&Envelope{Kind: KindHotList, From: t.id, Hot: hot})
	default:
		return enc.Encode(&Envelope{Kind: env.Kind, From: t.id, Err: "unknown kind"})
	}
}

// ack writes the oneway receipt frame.
func (t *Transport) ack(enc *gob.Encoder) error {
	return enc.Encode(&Envelope{Kind: KindAck, From: t.id})
}
