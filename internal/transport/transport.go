// Package transport is PlanetP's live network layer: gob-over-TCP
// messaging that carries gossip (one-way), search RPCs, brokerage
// operations, and document fetches between peers. It implements
// gossip.Env, so the exact protocol engine that runs in the simulator
// runs over real sockets here.
//
// The wire model is deliberately simple — one connection per exchange
// (send, optionally read one reply, close). PlanetP's message rates are a
// few per peer per gossip interval, so connection reuse buys nothing at
// the scales the system targets.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"planetp/internal/broker"
	"planetp/internal/directory"
	"planetp/internal/gossip"
	"planetp/internal/metrics"
	"planetp/internal/replica"
	"planetp/internal/search"
)

// Kind tags an envelope.
type Kind uint8

// Envelope kinds.
const (
	// KindGossip carries a one-way gossip message.
	KindGossip Kind = iota
	// KindQuery asks the target to run a local query; KindQueryResp
	// answers.
	KindQuery
	// KindBrokerPut stores a snippet at the target's broker.
	KindBrokerPut
	// KindBrokerGet fetches snippets for a key; answered by
	// KindSnippets.
	KindBrokerGet
	// KindBrokerWatch registers a persistent-query watch at the
	// target's broker; matches come back as KindNotify one-ways.
	KindBrokerWatch
	// KindNotify delivers a matched snippet to a watcher.
	KindNotify
	// KindGetDoc fetches a document body by key; answered by KindDoc.
	KindGetDoc
	// KindRecord requests the target's self record (bootstrap);
	// answered by KindRecordResp.
	KindRecord
	// KindProxySearch asks the target to run a full ranked search on
	// the requester's behalf (the paper's proxy-search accommodation
	// for bandwidth-limited peers); answered by KindProxyResp.
	KindProxySearch

	// Response kinds.
	KindQueryResp
	KindSnippets
	KindDoc
	KindRecordResp
	KindProxyResp

	// KindPeerExchange requests a bounded random sample of the target's
	// known-on-line directory records (bootstrap discovery); answered by
	// KindPeers. New kinds append here so earlier gob values stay stable
	// across versions.
	KindPeerExchange
	KindPeers

	// KindReplicaPut pushes a replica of a hot document to a
	// ring-responsible peer (one-way, best effort — the hoarding loop
	// repairs what a lost push misses).
	KindReplicaPut
	// KindReplicaPurge tells a replica holder the origin removed (or
	// superseded) a document (one-way).
	KindReplicaPurge
	// KindHotDocs asks a peer for its hottest served documents (the
	// hoard exchange); answered by KindHotList.
	KindHotDocs
	KindHotList

	numKinds
)

// String implements fmt.Stringer; the names also suffix the per-kind
// byte counters (transport_tx_bytes_<kind>).
func (k Kind) String() string {
	switch k {
	case KindGossip:
		return "gossip"
	case KindQuery:
		return "query"
	case KindBrokerPut:
		return "broker_put"
	case KindBrokerGet:
		return "broker_get"
	case KindBrokerWatch:
		return "broker_watch"
	case KindNotify:
		return "notify"
	case KindGetDoc:
		return "get_doc"
	case KindRecord:
		return "record"
	case KindProxySearch:
		return "proxy_search"
	case KindQueryResp:
		return "query_resp"
	case KindSnippets:
		return "snippets"
	case KindDoc:
		return "doc"
	case KindRecordResp:
		return "record_resp"
	case KindProxyResp:
		return "proxy_resp"
	case KindPeerExchange:
		return "peer_exchange"
	case KindPeers:
		return "peers"
	case KindReplicaPut:
		return "replica_put"
	case KindReplicaPurge:
		return "replica_purge"
	case KindHotDocs:
		return "hot_docs"
	case KindHotList:
		return "hot_list"
	}
	return "unknown"
}

// Envelope is the single gob wire unit.
type Envelope struct {
	Kind Kind
	From directory.PeerID

	Gossip  *gossip.Message
	Terms   []string
	All     bool
	K       int
	Docs    []search.DocResult
	Scored  []search.ScoredDoc
	Snippet *broker.Snippet
	Snips   []broker.Snippet
	Discard time.Duration
	Key     string
	XML     string
	Found   bool
	Record  *directory.Record
	Records []directory.Record
	Err     string
	// Replica fields (appended for gob stability across versions):
	// Origin/Epoch identify the publishing incarnation of a pushed or
	// purged replica; Hot carries a hoard exchange's advertisement.
	Origin directory.PeerID
	Epoch  uint32
	Hot    []replica.HotDoc
}

// Handler is the application side of the transport (implemented by
// core.Peer).
type Handler interface {
	// HandleGossip delivers a gossip message.
	HandleGossip(from directory.PeerID, m *gossip.Message)
	// HandleQuery runs a local query (all = conjunctive).
	HandleQuery(terms []string, all bool) []search.DocResult
	// HandleBrokerPut stores a brokered snippet locally under key.
	HandleBrokerPut(key string, sn broker.Snippet, discard time.Duration)
	// HandleBrokerGet returns local snippets for key.
	HandleBrokerGet(key string) []broker.Snippet
	// HandleBrokerWatch registers a remote watcher.
	HandleBrokerWatch(keys []string, watcher directory.PeerID)
	// HandleNotify delivers a matched snippet to this (watching) peer.
	HandleNotify(sn broker.Snippet)
	// HandleGetDoc returns a stored document's XML.
	HandleGetDoc(key string) (string, bool)
	// HandleProxySearch runs a ranked search on behalf of a
	// bandwidth-limited requester.
	HandleProxySearch(terms []string, k int) []search.ScoredDoc
	// HandlePeerExchange returns a random sample of at most max
	// known-on-line directory records (bootstrap discovery).
	HandlePeerExchange(max int) []directory.Record
	// HandleReplicaPut offers this peer a replica of a hot document
	// published by origin at epoch (best-effort push replication).
	HandleReplicaPut(key, xml string, origin directory.PeerID, epoch uint32)
	// HandleReplicaPurge tells this peer the origin removed (or
	// superseded) a document it may hold a replica of.
	HandleReplicaPurge(key string, origin directory.PeerID, epoch uint32)
	// HandleHotDocs returns up to max of this peer's hottest served
	// documents (the hoard exchange).
	HandleHotDocs(max int) []replica.HotDoc
	// SelfRecord returns the peer's current record (bootstrap).
	SelfRecord() directory.Record
}

// Resolver maps peer ids to dialable addresses (the directory's Addr
// field).
type Resolver func(id directory.PeerID) (string, bool)

// Transport is one peer's network endpoint.
type Transport struct {
	id      directory.PeerID
	ln      net.Listener
	handler Handler
	resolve Resolver
	start   time.Time
	// rng is handed out via Rand() for the gossip node's exclusive,
	// externally synchronized use; transport internals must not touch it.
	rng *rand.Rand
	// retryRng seeds the retry layer's per-peer Backoffs; guarded by
	// rngMu because sends retry from many goroutines.
	retryRng *rand.Rand
	rngMu    sync.Mutex

	// intervalCh wakes the gossip loop when the node's interval
	// changes.
	intervalCh chan time.Duration

	mu        sync.Mutex
	closed    bool
	accepting bool
	wg        sync.WaitGroup

	// DialTimeout bounds connection attempts (drives off-line
	// detection). Default 2 s.
	DialTimeout time.Duration
	// RPCTimeout bounds a whole request/response exchange (encode,
	// server work, decode) once the connection is up. Zero means
	// 5 × DialTimeout, preserving the historical behavior of scaling
	// with the dial budget.
	RPCTimeout time.Duration
	// ServeTimeout bounds one inbound request on the server side, so a
	// client that connects and stalls cannot pin a handler goroutine
	// forever. Default 30 s.
	ServeTimeout time.Duration
	// Retries is how many extra attempts one peer-addressed send makes
	// after the first fails, with capped jittered backoff between
	// attempts (default 1). Protocol operations tolerate the resulting
	// duplicates: gossip messages are idempotent and broker puts
	// overwrite. Negative disables retrying.
	Retries int
	// RetryBase and RetryMax bound the backoff between retry attempts
	// and between recovery probes to a suppressed peer (defaults 100 ms
	// and 5 s).
	RetryBase, RetryMax time.Duration
	// FailThreshold is how many consecutive failed sends to one peer
	// suppress further attempts: once reached, sends to that peer fail
	// fast (ErrSuppressed) until a backoff window expires, at which
	// point exactly one attempt is admitted as a recovery probe.
	// Default 3; 0 disables suppression.
	FailThreshold int
	// DialHook, when non-nil, replaces TCP dialing for peer-addressed
	// sends (fault injection; see internal/faultnet). Set before use;
	// not synchronized.
	DialHook DialHook
	// BytesSent/BytesRecv count real encoded bytes (approximate:
	// counted at the net.Conn boundary). Read with atomic.LoadInt64.
	BytesSent, BytesRecv int64

	// nowFn and sleep are the retry layer's clock, swappable so backoff
	// and suppression tests run on a fake clock without sleeping.
	nowFn func() time.Duration
	sleep func(time.Duration)

	healthMu sync.Mutex
	health   map[directory.PeerID]*peerHealth

	m tpMetrics
}

// tpMetrics holds the transport's registry instruments, resolved once at
// construction (all nil — a no-op — when no registry is supplied).
type tpMetrics struct {
	dials        *metrics.Counter
	dialFailures *metrics.Counter
	timeouts     *metrics.Counter
	rpcLatencyUS *metrics.Histogram
	retries      *metrics.Counter
	suppressed   *metrics.Counter
	probes       *metrics.Counter
	txBytes      [numKinds]*metrics.Counter
	rxBytes      [numKinds]*metrics.Counter
}

func newTpMetrics(r *metrics.Registry) tpMetrics {
	m := tpMetrics{
		dials:        r.Counter("transport_dials_total"),
		dialFailures: r.Counter("transport_dial_failures_total"),
		timeouts:     r.Counter("transport_timeouts_total"),
		rpcLatencyUS: r.Histogram("transport_rpc_latency_us",
			[]int64{100, 500, 1000, 5000, 10000, 50000, 100000, 500000, 1000000}),
		retries:    r.Counter("transport_send_retries_total"),
		suppressed: r.Counter("transport_suppressed_sends_total"),
		probes:     r.Counter("transport_recovery_probes_total"),
	}
	for k := Kind(0); k < numKinds; k++ {
		m.txBytes[k] = r.Counter("transport_tx_bytes_" + k.String())
		m.rxBytes[k] = r.Counter("transport_rx_bytes_" + k.String())
	}
	return m
}

// countTimeout records err in the timeout counter when it is a deadline
// expiry.
func (t *Transport) countTimeout(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		t.m.timeouts.Inc()
	}
}

// countingConn counts bytes crossing a net.Conn so the transport can
// attribute real wire volume to an envelope kind.
type countingConn struct {
	net.Conn
	sent, recv int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.recv += int64(n)
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent += int64(n)
	return n, err
}

// account charges a finished exchange's bytes to the transport totals and
// the per-kind counters. kind is the request kind; responses are charged
// to the same kind (the exchange that caused them).
func (t *Transport) account(kind Kind, cc *countingConn) {
	atomic.AddInt64(&t.BytesSent, cc.sent)
	atomic.AddInt64(&t.BytesRecv, cc.recv)
	if kind < numKinds {
		t.m.txBytes[kind].Add(cc.sent)
		t.m.rxBytes[kind].Add(cc.recv)
	}
}

// New starts listening on listenAddr ("" or "127.0.0.1:0" for an
// ephemeral port). reg, when non-nil, receives the transport's metrics
// (transport_* names); nil disables instrumentation.
func New(id directory.PeerID, listenAddr string, handler Handler, resolve Resolver, seed int64, reg *metrics.Registry) (*Transport, error) {
	t, err := NewDeferred(id, listenAddr, handler, resolve, seed, reg)
	if err != nil {
		return nil, err
	}
	t.StartAccepting()
	return t, nil
}

// NewDeferred binds the listener like New but does not serve inbound
// requests until StartAccepting. A peer under construction needs this:
// its handler's dependencies (the gossip node in particular) are wired
// only after the transport exists — because the self record embeds the
// bound address — and a join request racing that window would hit them
// half-built. The port is still reserved immediately, so remote dials
// queue in the accept backlog rather than failing.
func NewDeferred(id directory.PeerID, listenAddr string, handler Handler, resolve Resolver, seed int64, reg *metrics.Registry) (*Transport, error) {
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	t := &Transport{
		id: id, ln: ln, handler: handler, resolve: resolve,
		start:         time.Now(),
		rng:           rand.New(rand.NewSource(seed)),
		retryRng:      rand.New(rand.NewSource(seed ^ 0x7265747279)), // "retry"
		intervalCh:    make(chan time.Duration, 4),
		DialTimeout:   2 * time.Second,
		ServeTimeout:  30 * time.Second,
		Retries:       1,
		RetryBase:     100 * time.Millisecond,
		RetryMax:      5 * time.Second,
		FailThreshold: 3,
		health:        make(map[directory.PeerID]*peerHealth),
		m:             newTpMetrics(reg),
	}
	t.nowFn = t.Now
	t.sleep = time.Sleep
	return t, nil
}

// StartAccepting begins serving inbound connections. Idempotent, and a
// no-op after Close — so an aborted construction can Close a deferred
// transport without leaking the accept loop.
func (t *Transport) StartAccepting() {
	t.mu.Lock()
	if t.accepting || t.closed {
		t.mu.Unlock()
		return
	}
	t.accepting = true
	t.wg.Add(1)
	t.mu.Unlock()
	go t.acceptLoop()
}

// rpcTimeout resolves the effective request/response deadline.
func (t *Transport) rpcTimeout() time.Duration {
	if t.RPCTimeout > 0 {
		return t.RPCTimeout
	}
	return 5 * t.DialTimeout
}

// Addr returns the bound listen address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// Close shuts the endpoint down and waits for the accept loop.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.mu.Unlock()
	t.ln.Close()
	t.wg.Wait()
}

// IntervalCh exposes interval-change wakeups for the gossip driver loop.
func (t *Transport) IntervalCh() <-chan time.Duration { return t.intervalCh }

// --- gossip.Env ---

// Now implements gossip.Env as monotonic time since transport start.
func (t *Transport) Now() time.Duration { return time.Since(t.start) }

// Rand implements gossip.Env.
func (t *Transport) Rand() *rand.Rand { return t.rng }

// IntervalChanged implements gossip.Env.
func (t *Transport) IntervalChanged(d time.Duration) {
	select {
	case t.intervalCh <- d:
	default:
	}
}

// Send implements gossip.Env: one-way delivery of a gossip message.
func (t *Transport) Send(to directory.PeerID, m *gossip.Message) error {
	return t.oneway(to, &Envelope{Kind: KindGossip, From: t.id, Gossip: m})
}

// --- client operations ---

// dial resolves and connects to a peer, through DialHook when one is
// mounted.
func (t *Transport) dial(to directory.PeerID) (net.Conn, error) {
	addr, ok := t.resolve(to)
	if !ok || addr == "" {
		t.m.dialFailures.Inc()
		return nil, fmt.Errorf("transport: no address for peer %d", to)
	}
	if t.DialHook != nil {
		t.m.dials.Inc()
		conn, err := t.DialHook(to, addr, t.DialTimeout)
		if err != nil {
			t.m.dialFailures.Inc()
			t.countTimeout(err)
			return nil, err
		}
		return conn, nil
	}
	return t.dialAddr(addr)
}

// dialAddr connects to a raw address, counting the attempt and its
// outcome.
func (t *Transport) dialAddr(addr string) (net.Conn, error) {
	t.m.dials.Inc()
	conn, err := net.DialTimeout("tcp", addr, t.DialTimeout)
	if err != nil {
		t.m.dialFailures.Inc()
		t.countTimeout(err)
		return nil, err
	}
	return conn, nil
}

// oneway sends an envelope without waiting for a reply, retrying per the
// transport's retry policy.
func (t *Transport) oneway(to directory.PeerID, env *Envelope) error {
	return t.withRetry(to, func() error { return t.onewayOnce(to, env) })
}

func (t *Transport) onewayOnce(to directory.PeerID, env *Envelope) error {
	conn, err := t.dial(to)
	if err != nil {
		return err
	}
	cc := &countingConn{Conn: conn}
	defer func() {
		conn.Close()
		t.account(env.Kind, cc)
	}()
	_ = conn.SetDeadline(time.Now().Add(t.DialTimeout))
	if err := gob.NewEncoder(cc).Encode(env); err != nil {
		t.countTimeout(err)
		return err
	}
	return nil
}

// call sends an envelope and reads one reply, retrying per the
// transport's retry policy.
func (t *Transport) call(to directory.PeerID, env *Envelope) (*Envelope, error) {
	var resp *Envelope
	err := t.withRetry(to, func() error {
		conn, err := t.dial(to)
		if err != nil {
			return err
		}
		r, err := t.exchange(conn, env)
		if err != nil {
			return err
		}
		resp = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// callAddr is like call but dials a raw address (bootstrap, before the
// peer is in the directory).
func (t *Transport) callAddr(addr string, env *Envelope) (*Envelope, error) {
	conn, err := t.dialAddr(addr)
	if err != nil {
		return nil, err
	}
	return t.exchange(conn, env)
}

// exchange runs one request/response round trip on an open connection,
// closing it when done.
func (t *Transport) exchange(conn net.Conn, env *Envelope) (*Envelope, error) {
	start := time.Now()
	cc := &countingConn{Conn: conn}
	defer func() {
		conn.Close()
		t.account(env.Kind, cc)
		t.m.rpcLatencyUS.Observe(time.Since(start).Microseconds())
	}()
	_ = conn.SetDeadline(time.Now().Add(t.rpcTimeout()))
	if err := gob.NewEncoder(cc).Encode(env); err != nil {
		t.countTimeout(err)
		return nil, err
	}
	var resp Envelope
	if err := gob.NewDecoder(cc).Decode(&resp); err != nil {
		t.countTimeout(err)
		return nil, err
	}
	if resp.Err != "" {
		return nil, &RemoteError{Msg: resp.Err}
	}
	return &resp, nil
}

// Query runs a search RPC against a peer.
func (t *Transport) Query(to directory.PeerID, terms []string, all bool) ([]search.DocResult, error) {
	resp, err := t.call(to, &Envelope{Kind: KindQuery, From: t.id, Terms: terms, All: all})
	if err != nil {
		return nil, err
	}
	return resp.Docs, nil
}

// BrokerPut stores a snippet under key at the owning peer's broker.
func (t *Transport) BrokerPut(to directory.PeerID, key string, sn broker.Snippet, discard time.Duration) error {
	return t.oneway(to, &Envelope{Kind: KindBrokerPut, From: t.id, Key: key, Snippet: &sn, Discard: discard})
}

// BrokerGet fetches live snippets for key from a broker.
func (t *Transport) BrokerGet(to directory.PeerID, key string) ([]broker.Snippet, error) {
	resp, err := t.call(to, &Envelope{Kind: KindBrokerGet, From: t.id, Key: key})
	if err != nil {
		return nil, err
	}
	return resp.Snips, nil
}

// BrokerWatch registers this peer as a watcher for keys at a broker.
func (t *Transport) BrokerWatch(to directory.PeerID, keys []string) error {
	return t.oneway(to, &Envelope{Kind: KindBrokerWatch, From: t.id, Terms: keys})
}

// Notify delivers a matched snippet to a watcher.
func (t *Transport) Notify(to directory.PeerID, sn broker.Snippet) error {
	return t.oneway(to, &Envelope{Kind: KindNotify, From: t.id, Snippet: &sn})
}

// ErrDocNotFound reports that the remote peer answered the fetch but
// does not hold the document — a definitive miss (stale filter bit,
// purged replica), distinct from a transport failure where the peer may
// well still hold it. Callers resolving replicas failover differently on
// the two: a miss moves on to the next candidate, an unreachable peer is
// marked off-line.
var ErrDocNotFound = errors.New("document not found")

// GetDoc fetches a document body from a peer.
func (t *Transport) GetDoc(to directory.PeerID, key string) (string, error) {
	resp, err := t.call(to, &Envelope{Kind: KindGetDoc, From: t.id, Key: key})
	if err != nil {
		return "", err
	}
	if !resp.Found {
		return "", fmt.Errorf("transport: document %s on peer %d: %w", key, to, ErrDocNotFound)
	}
	return resp.XML, nil
}

// ReplicaPut pushes a replica of a hot document to a chosen holder
// (one-way, best effort: the holder may refuse silently if the epoch is
// stale or its budget disagrees).
func (t *Transport) ReplicaPut(to directory.PeerID, key, xml string, origin directory.PeerID, epoch uint32) error {
	return t.oneway(to, &Envelope{Kind: KindReplicaPut, From: t.id, Key: key, XML: xml, Origin: origin, Epoch: epoch})
}

// ReplicaPurge tells a holder that the origin removed the document at
// epoch; the holder drops its replica and records a death certificate.
func (t *Transport) ReplicaPurge(to directory.PeerID, key string, origin directory.PeerID, epoch uint32) error {
	return t.oneway(to, &Envelope{Kind: KindReplicaPurge, From: t.id, Key: key, Origin: origin, Epoch: epoch})
}

// HotDocs asks a peer for its hottest documents (hoarding pull): key,
// origin, epoch and current popularity score of up to max docs.
func (t *Transport) HotDocs(to directory.PeerID, max int) ([]replica.HotDoc, error) {
	resp, err := t.call(to, &Envelope{Kind: KindHotDocs, From: t.id, K: max})
	if err != nil {
		return nil, err
	}
	return resp.Hot, nil
}

// ProxySearch asks a better-connected peer to run the whole ranked
// search and return the top-k results.
func (t *Transport) ProxySearch(to directory.PeerID, terms []string, k int) ([]search.ScoredDoc, error) {
	resp, err := t.call(to, &Envelope{Kind: KindProxySearch, From: t.id, Terms: terms, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Scored, nil
}

// FetchRecord asks an address for its peer's current self record
// (bootstrap).
func (t *Transport) FetchRecord(addr string) (directory.Record, error) {
	resp, err := t.callAddr(addr, &Envelope{Kind: KindRecord, From: t.id})
	if err != nil {
		return directory.Record{}, err
	}
	if resp.Record == nil {
		return directory.Record{}, errors.New("transport: empty record response")
	}
	return *resp.Record, nil
}

// --- server side ---

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serve(conn)
		}()
	}
}

// serve handles one inbound connection (one request).
func (t *Transport) serve(conn net.Conn) {
	cc := &countingConn{Conn: conn}
	var env Envelope
	defer func() {
		conn.Close()
		t.account(env.Kind, cc)
	}()
	_ = conn.SetDeadline(time.Now().Add(t.ServeTimeout))
	if err := gob.NewDecoder(cc).Decode(&env); err != nil {
		t.countTimeout(err)
		return
	}
	enc := gob.NewEncoder(cc)
	switch env.Kind {
	case KindGossip:
		if env.Gossip != nil {
			t.handler.HandleGossip(env.From, env.Gossip)
		}
	case KindQuery:
		docs := t.handler.HandleQuery(env.Terms, env.All)
		_ = enc.Encode(&Envelope{Kind: KindQueryResp, From: t.id, Docs: docs})
	case KindBrokerPut:
		if env.Snippet != nil {
			t.handler.HandleBrokerPut(env.Key, *env.Snippet, env.Discard)
		}
	case KindBrokerGet:
		snips := t.handler.HandleBrokerGet(env.Key)
		_ = enc.Encode(&Envelope{Kind: KindSnippets, From: t.id, Snips: snips})
	case KindBrokerWatch:
		t.handler.HandleBrokerWatch(env.Terms, env.From)
	case KindNotify:
		if env.Snippet != nil {
			t.handler.HandleNotify(*env.Snippet)
		}
	case KindGetDoc:
		xml, found := t.handler.HandleGetDoc(env.Key)
		_ = enc.Encode(&Envelope{Kind: KindDoc, From: t.id, XML: xml, Found: found})
	case KindRecord:
		rec := t.handler.SelfRecord()
		_ = enc.Encode(&Envelope{Kind: KindRecordResp, From: t.id, Record: &rec})
	case KindProxySearch:
		scored := t.handler.HandleProxySearch(env.Terms, env.K)
		_ = enc.Encode(&Envelope{Kind: KindProxyResp, From: t.id, Scored: scored})
	case KindPeerExchange:
		recs := t.handler.HandlePeerExchange(clampExchange(env.K))
		_ = enc.Encode(&Envelope{Kind: KindPeers, From: t.id, Records: recs})
	case KindReplicaPut:
		t.handler.HandleReplicaPut(env.Key, env.XML, env.Origin, env.Epoch)
	case KindReplicaPurge:
		t.handler.HandleReplicaPurge(env.Key, env.Origin, env.Epoch)
	case KindHotDocs:
		hot := t.handler.HandleHotDocs(clampExchange(env.K))
		_ = enc.Encode(&Envelope{Kind: KindHotList, From: t.id, Hot: hot})
	default:
		_ = enc.Encode(&Envelope{Kind: env.Kind, From: t.id, Err: "unknown kind"})
	}
}
