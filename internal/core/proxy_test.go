package core

import (
	"testing"
	"time"

	"planetp/internal/directory"
	"planetp/internal/gossip"
)

// mixedCommunity builds a community where peer 0 is modem-class and the
// rest are fast.
func mixedCommunity(t *testing.T, n int) []*Peer {
	t.Helper()
	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		class := directory.Fast
		if i == 0 {
			class = directory.Slow
		}
		p, err := NewPeer(Config{
			ID: directory.PeerID(i), Capacity: n,
			Gossip: fastGossip(), Seed: int64(i + 1), Class: class,
		})
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
		t.Cleanup(p.Stop)
	}
	for i := 0; i < n-1; i++ {
		if err := peers[i].Join(peers[n-1].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range peers {
		p.Start()
	}
	waitFor(t, 15*time.Second, "membership", func() bool {
		for _, p := range peers {
			if p.Directory().NumKnown() != n {
				return false
			}
		}
		return true
	})
	return peers
}

func TestProxySearchMatchesLocal(t *testing.T) {
	peers := mixedCommunity(t, 4)
	peers[1].Publish(`<p>quantum cryptography entangled keys</p>`)
	peers[2].Publish(`<p>quantum computing error correction</p>`)
	waitFor(t, 15*time.Second, "filters", func() bool {
		docs, _ := peers[3].Search("quantum", 5)
		return len(docs) == 2
	})
	// The slow peer delegates to a fast proxy; results must match what
	// the proxy would return itself.
	proxy, ok := peers[0].PickProxy()
	if !ok {
		t.Fatal("no proxy available")
	}
	if proxy == 0 {
		t.Fatal("picked self/slow peer as proxy")
	}
	viaProxy, err := peers[0].SearchVia(proxy, "quantum", 5)
	if err != nil {
		t.Fatal(err)
	}
	local, _ := peers[int(proxy)].Search("quantum", 5)
	if len(viaProxy) != len(local) {
		t.Fatalf("proxy returned %d docs, proxy's own search %d", len(viaProxy), len(local))
	}
	for i := range viaProxy {
		if viaProxy[i].Key != local[i].Key {
			t.Fatalf("result %d differs: %s vs %s", i, viaProxy[i].Key, local[i].Key)
		}
	}
}

func TestSearchViaSelfFallsBackToLocal(t *testing.T) {
	peers := mixedCommunity(t, 2)
	peers[1].Publish(`<p>selfsearch content here</p>`)
	waitFor(t, 15*time.Second, "filters", func() bool {
		docs, _ := peers[0].Search("selfsearch", 2)
		return len(docs) == 1
	})
	docs, err := peers[0].SearchVia(peers[0].ID(), "selfsearch", 2)
	if err != nil || len(docs) != 1 {
		t.Fatalf("self proxy: %v %v", docs, err)
	}
}

func TestSearchViaDeadProxyErrors(t *testing.T) {
	peers := mixedCommunity(t, 3)
	peers[2].Stop()
	if _, err := peers[0].SearchVia(2, "anything", 3); err == nil {
		t.Fatal("dead proxy should error")
	}
	// And the failure marks the proxy off-line.
	e, ok := peers[0].Directory().Entry(2)
	if !ok || e.Online {
		t.Fatal("dead proxy not marked offline")
	}
}

func TestMaxPullBatchChunksDirectoryDownload(t *testing.T) {
	// A node with MaxPullBatch must converge anyway — in pieces.
	// (Protocol-level test via the live stack would be slow; use the
	// gossip fake instead — see gossip package for the unit test. Here
	// we just confirm the config plumbs through a live peer.)
	p, err := NewPeer(Config{
		ID: 0, Capacity: 4,
		Gossip: gossip.Config{
			BaseInterval: 20 * time.Millisecond,
			MaxInterval:  80 * time.Millisecond,
			MaxPullBatch: 2,
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	q, err := NewPeer(Config{ID: 1, Capacity: 4, Gossip: fastGossip(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Stop()
	r, err := NewPeer(Config{ID: 2, Capacity: 4, Gossip: fastGossip(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := q.Join(r.Addr()); err != nil {
		t.Fatal(err)
	}
	q.Start()
	r.Start()
	waitFor(t, 15*time.Second, "base community", func() bool {
		return q.Directory().NumKnown() == 2 && r.Directory().NumKnown() == 2
	})
	if err := p.Join(q.Addr()); err != nil {
		t.Fatal(err)
	}
	p.Start()
	waitFor(t, 15*time.Second, "chunked join", func() bool {
		return p.Directory().NumKnown() == 3
	})
}
