package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"planetp/internal/directory"
	"planetp/internal/doc"
	"planetp/internal/replica"
	"planetp/internal/store"
)

// replicatingCommunity spins up n live peers with replication factor k
// and a fast hoarding loop.
func replicatingCommunity(t *testing.T, n, k int) []*Peer {
	t.Helper()
	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		p, err := NewPeer(Config{
			ID: directory.PeerID(i), Capacity: n,
			Gossip:        fastGossip(),
			Seed:          int64(i + 1),
			Replicas:      k,
			HoardInterval: 30 * time.Millisecond,
			HoardHalfLife: 10 * time.Minute, // no decay within the test
		})
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
		t.Cleanup(p.Stop)
	}
	for i := 1; i < n; i++ {
		if err := peers[i].Join(peers[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range peers {
		p.Start()
	}
	waitFor(t, 15*time.Second, "membership", func() bool {
		for _, p := range peers {
			if p.Directory().NumKnown() != n {
				return false
			}
		}
		return true
	})
	return peers
}

// replicaHolderCount counts community members (excluding the origin)
// holding a replica of key.
func replicaHolderCount(peers []*Peer, origin directory.PeerID, key string) int {
	n := 0
	for _, p := range peers {
		if p.ID() == origin {
			continue
		}
		if p.rep != nil && p.rep.Has(key) {
			n++
		}
	}
	return n
}

// TestLiveReplicationServesHitsAfterOwnerDeparts is the tentpole
// end-to-end: a hot document is replicated to ring successors by the
// hoarding loop, and after the owner departs both bare-id resolution and
// ranked search keep returning the content from a replica.
func TestLiveReplicationServesHitsAfterOwnerDeparts(t *testing.T) {
	peers := replicatingCommunity(t, 4, 3)
	d, err := peers[1].Publish(`<paper>replicated heron survives departures</paper>`)
	if err != nil {
		t.Fatal(err)
	}
	// Heat the document: remote fetches feed the owner's popularity
	// counter (score 6 → target min(k-1, 3) = 2 replicas).
	for i := 0; i < 6; i++ {
		if _, err := peers[(i%3)+1].FetchDocument(1, d.ID); err != nil && peers[(i%3)+1].ID() != 1 {
			// peer 1 fetching its own doc is local; remote errors are real.
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, "2 replicas placed", func() bool {
		return replicaHolderCount(peers, 1, d.ID) >= 2
	})

	// A non-holder resolves the bare id while the owner is still up.
	if xml, _, err := peers[0].ResolveDocument(d.ID); err != nil || !strings.Contains(xml, "heron") {
		t.Fatalf("resolve with owner up: %q %v", xml, err)
	}

	// Owner departs. Resolution must fail over to a live replica.
	peers[1].Stop()
	waitFor(t, 15*time.Second, "failover to replica", func() bool {
		xml, holder, err := peers[0].ResolveDocument(d.ID)
		return err == nil && holder != 1 && strings.Contains(xml, "heron")
	})

	// Ranked search also returns the hit from a replica holder, and the
	// body is fetchable from that holder.
	waitFor(t, 15*time.Second, "search hit from replica", func() bool {
		docs, _ := peers[0].Search("replicated heron", 4)
		for _, sd := range docs {
			if sd.Key == d.ID && sd.Peer != 1 {
				xml, err := peers[0].FetchDocument(sd.Peer, sd.Key)
				return err == nil && strings.Contains(xml, "heron")
			}
		}
		return false
	})
}

// TestHoardPullAdoptsRingResponsibleDocs exercises the pull path: a
// peer that never received a push adopts a hot document advertised by a
// holder once it is ring-responsible for it.
func TestHoardPullAdoptsRingResponsibleDocs(t *testing.T) {
	peers := replicatingCommunity(t, 3, 3)
	d, err := peers[0].Publish(`<paper>hoarded kestrel spreads by pulling</paper>`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := peers[1].FetchDocument(0, d.ID); err != nil {
			t.Fatal(err)
		}
	}
	// With k=3 and 3 peers, every non-origin peer is in the placement;
	// push or pull, both must end up holding it.
	waitFor(t, 15*time.Second, "both peers hold replicas", func() bool {
		return replicaHolderCount(peers, 0, d.ID) == 2
	})
	// The replica is searchable at the holder (terms were ingested).
	for _, p := range peers[1:] {
		docs := p.localQuery([]string{"kestrel"}, false)
		found := false
		for _, r := range docs {
			if r.Key == d.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("peer %d holds replica but does not serve it in search", p.ID())
		}
	}
}

// TestTombstonePurgeNeverResurrects is the satellite-4 suite: removing a
// document at its origin purges every replica, and no later push or pull
// may resurrect it at or below the tombstoned epoch.
func TestTombstonePurgeNeverResurrects(t *testing.T) {
	peers := replicatingCommunity(t, 3, 3)
	d, err := peers[1].Publish(`<paper>doomed lemming will be removed</paper>`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := peers[2].FetchDocument(1, d.ID); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, "replicas placed", func() bool {
		return replicaHolderCount(peers, 1, d.ID) == 2
	})
	purgeEpoch := peers[1].node.SelfRecord().Ver.Epoch
	if !peers[1].Remove(d.ID) {
		t.Fatal("remove failed")
	}
	waitFor(t, 15*time.Second, "replicas purged", func() bool {
		return replicaHolderCount(peers, 1, d.ID) == 0
	})
	// Anti-entropy replay: an old-epoch push must be refused forever.
	for _, p := range []*Peer{peers[0], peers[2]} {
		(*handler)(p).HandleReplicaPut(d.ID, `<paper>doomed lemming will be removed</paper>`, 1, purgeEpoch)
		if p.rep.Has(d.ID) {
			t.Fatalf("peer %d resurrected a tombstoned replica", p.ID())
		}
		if !p.rep.Tombstoned(d.ID, purgeEpoch) {
			t.Fatalf("peer %d lost the death certificate", p.ID())
		}
	}
	// Resolution reports a definitive miss, not a transport failure.
	if _, _, err := peers[0].ResolveDocument(d.ID); !errors.Is(err, doc.ErrNotFound) {
		t.Fatalf("resolve after purge = %v, want ErrNotFound", err)
	}
	// The purged content no longer appears in the holders' search index.
	for _, p := range peers {
		if docs := p.localQuery([]string{"lemming"}, false); len(docs) != 0 {
			t.Fatalf("peer %d still serves purged content: %+v", p.ID(), docs)
		}
	}
}

// durableReplicaPeer builds a durable peer with replication enabled on
// the given filesystem.
func durableReplicaPeer(t *testing.T, fs store.FS) *Peer {
	t.Helper()
	p, err := NewPeer(Config{
		ID: 0, Capacity: 8, Gossip: fastGossip(),
		DataDir: "data", Store: store.Options{FS: fs},
		Replicas:      3,
		HoardHalfLife: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// testReplicaEntries is the deterministic adoption workload for the
// crash suite.
func testReplicaEntries() []replica.Entry {
	out := make([]replica.Entry, 4)
	for i := range out {
		out[i] = replica.Entry{
			Key:    fmt.Sprintf("rep-doc-%d", i),
			Origin: int32(i + 1),
			Epoch:  1,
			XML:    fmt.Sprintf(`<paper>replica payload number %d falcon</paper>`, i),
		}
	}
	return out
}

// TestReplicaStoreCrashSuite is the satellite-3 suite: for every disk
// operation index during a deterministic adopt/purge workload, crash the
// replica store there, restart, and assert the peer re-announces exactly
// a consistent fsynced replica set — every acknowledged op is applied,
// at most the one in-flight op may additionally have reached disk, and
// the Bloom filter's doc markers match the held set exactly (zero
// torn-state announcements). The workload stops at the first failure,
// mirroring a crashing process.
func TestReplicaStoreCrashSuite(t *testing.T) {
	entries := testReplicaEntries()

	// The logical op sequence and the replica set after each prefix.
	// states[i] is the set after the first i ops; the last op is the
	// tombstoned purge of entries[0].
	numOps := len(entries) + 1
	states := make([]map[string]bool, numOps+1)
	states[0] = map[string]bool{}
	for i, e := range entries {
		states[i+1] = map[string]bool{}
		for k := range states[i] {
			states[i+1][k] = true
		}
		states[i+1][e.Key] = true
	}
	states[numOps] = map[string]bool{}
	for k := range states[numOps-1] {
		if k != entries[0].Key {
			states[numOps][k] = true
		}
	}
	keysOf := func(s map[string]bool) []string {
		out := make([]string, 0, len(s))
		for k := range s {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}

	// workload applies ops until the first failure (the crash), returning
	// how many were acknowledged.
	workload := func(p *Peer) int {
		for i, e := range entries {
			p.adoptReplica(e, 5)
			if !p.rep.Has(e.Key) {
				return i
			}
		}
		p.purgeReplica(entries[0].Key, 2, true)
		if p.rep.Has(entries[0].Key) {
			return numOps - 1
		}
		return numOps
	}

	// Dry run: learn the workload's disk-op budget.
	dry := store.NewFaultFS(store.NewMemFS(), 1)
	p := durableReplicaPeer(t, dry)
	start := dry.Ops()
	if got := workload(p); got != numOps {
		t.Fatalf("dry run acked %d of %d ops", got, numOps)
	}
	budget := dry.Ops() - start
	p.tp.Close()
	if budget <= 0 {
		t.Fatalf("workload performed no disk ops (%d)", budget)
	}

	for mode, name := range map[store.CrashMode]string{
		store.CrashStop: "stop", store.CrashTorn: "torn",
	} {
		for i := int64(1); i <= budget; i++ {
			t.Run(fmt.Sprintf("%s-op%d", name, i), func(t *testing.T) {
				mem := store.NewMemFS()
				ffs := store.NewFaultFS(mem, 4242+i)
				p := durableReplicaPeer(t, ffs)
				ffs.CrashAt(ffs.Ops()+i, mode)
				acked := workload(p)
				p.tp.Close() // process dies; no graceful snapshot
				mem.Crash(i)

				q := durableReplicaPeer(t, mem)
				defer q.Stop()
				got := fmt.Sprint(q.ReplicaKeys())
				// Every acked op is applied; the single in-flight op may
				// or may not have reached disk intact. Anything else is
				// torn state.
				valid := got == fmt.Sprint(keysOf(states[acked]))
				if !valid && acked < numOps {
					valid = got == fmt.Sprint(keysOf(states[acked+1]))
				}
				if !valid {
					t.Fatalf("restored replica set %s after %d acked ops; want %v or the next prefix",
						got, acked, keysOf(states[acked]))
				}
				// Announcements must match the held set exactly: every
				// restored key's marker is in the filter, every
				// non-restored key's is absent.
				held := make(map[string]bool)
				for _, k := range q.ReplicaKeys() {
					held[k] = true
				}
				q.mu.Lock()
				defer q.mu.Unlock()
				for _, e := range entries {
					if q.filter.Contains(docMarker(e.Key)) != held[e.Key] {
						t.Fatalf("marker announcement for %s disagrees with held set %s", e.Key, got)
					}
				}
			})
		}
	}
}

// TestDurableReplicaRestartServesAgain: a graceful restart re-announces
// and re-serves the replica set from the final snapshot.
func TestDurableReplicaRestartServesAgain(t *testing.T) {
	mem := store.NewMemFS()
	p := durableReplicaPeer(t, mem)
	for _, e := range testReplicaEntries() {
		p.adoptReplica(e, 5)
	}
	if p.ReplicaDocs() != 4 {
		t.Fatalf("adopted %d replicas, want 4", p.ReplicaDocs())
	}
	p.Stop()

	q := durableReplicaPeer(t, mem)
	defer q.Stop()
	if q.ReplicaDocs() != 4 {
		t.Fatalf("restored %d replicas, want 4", q.ReplicaDocs())
	}
	xml, holder, err := q.ResolveDocument("rep-doc-2")
	if err != nil || holder != 0 || !strings.Contains(xml, "number 2") {
		t.Fatalf("restored replica not served: %q %d %v", xml, holder, err)
	}
	// Restored replicas are searchable.
	if docs := q.localQuery([]string{"falcon"}, false); len(docs) != 4 {
		t.Fatalf("restored replicas not searchable: %d hits", len(docs))
	}
}
