package core

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"planetp/internal/directory"
	"planetp/internal/store"
)

// durablePeer builds a peer whose store lives on the given MemFS (or a
// FaultFS over it) so restarts and crashes are fully simulated.
func durablePeer(t *testing.T, fs store.FS, opts store.Options) *Peer {
	t.Helper()
	opts.FS = fs
	p, err := NewPeer(Config{
		ID: 0, Capacity: 4, Gossip: fastGossip(),
		DataDir: "data", Store: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDurablePeerRestartsFromDisk(t *testing.T) {
	mem := store.NewMemFS()
	p := durablePeer(t, mem, store.Options{})
	if _, err := p.Publish(`<a>durable walrus one</a>`); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Publish(`<b>durable walrus two</b>`); err != nil {
		t.Fatal(err)
	}
	d, err := p.Publish(`<c>ephemeral heron three</c>`)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Remove(d.ID) {
		t.Fatal("remove failed")
	}
	oldVer := p.node.SelfRecord().Ver
	p.Stop() // graceful: folds a final snapshot

	q := durablePeer(t, mem, store.Options{})
	defer q.Stop()
	rec := q.Recovery()
	if !rec.Enabled {
		t.Fatal("recovery summary not enabled")
	}
	if q.LocalDocs() != 2 || rec.DocsRestored != 2 {
		t.Fatalf("restored %d docs (summary %d), want 2", q.LocalDocs(), rec.DocsRestored)
	}
	// Graceful shutdown folded everything into the snapshot: no WAL
	// replay needed.
	if rec.OpsReplayed != 0 {
		t.Fatalf("replayed %d WAL ops after graceful shutdown, want 0", rec.OpsReplayed)
	}
	newVer := q.node.SelfRecord().Ver
	if !oldVer.Less(newVer) {
		t.Fatalf("restarted version %v does not supersede %v", newVer, oldVer)
	}
	docs, _ := q.Search("durable walrus", 4)
	if len(docs) != 2 {
		t.Fatalf("restored docs not searchable: %d hits", len(docs))
	}
	docs, _ = q.Search("ephemeral heron", 4)
	if len(docs) != 0 {
		t.Fatal("removed doc resurrected after restart")
	}
}

// Kill -9: no graceful shutdown, the last WAL append is torn mid-write,
// unsynced bytes are lost. Recovery must keep every fully committed
// publish, truncate the tear, and bump the epoch past the recovered
// counters.
func TestDurablePeerCrashRecovery(t *testing.T) {
	mem := store.NewMemFS()
	ffs := store.NewFaultFS(mem, 4242)
	p := durablePeer(t, ffs, store.Options{})
	for _, body := range []string{
		`<a>committed kestrel alpha</a>`,
		`<b>committed kestrel beta</b>`,
		`<c>committed kestrel gamma</c>`,
	} {
		if _, err := p.Publish(body); err != nil {
			t.Fatal(err)
		}
	}
	oldVer := p.node.SelfRecord().Ver
	// The very next disk write tears mid-record and the process dies.
	ffs.CrashAt(ffs.Ops(), store.CrashTorn)
	if _, err := p.Publish(`<d>lost lemming delta</d>`); err == nil {
		t.Fatal("publish with a torn WAL write reported success")
	}
	p.tp.Close() // simulate process death without graceful Stop
	mem.Crash(99)

	q := durablePeer(t, mem, store.Options{})
	defer q.Stop()
	rec := q.Recovery()
	if q.LocalDocs() != 3 {
		t.Fatalf("recovered %d docs, want the 3 committed ones", q.LocalDocs())
	}
	if rec.OpsReplayed != 3 {
		t.Fatalf("replayed %d ops, want 3", rec.OpsReplayed)
	}
	if rec.TruncatedRecords == 0 {
		t.Fatal("torn tail not truncated")
	}
	newVer := q.node.SelfRecord().Ver
	if !oldVer.Less(newVer) {
		t.Fatalf("recovered version %v does not supersede %v", newVer, oldVer)
	}
	if newVer.Epoch != rec.RecoveredEpoch+1 {
		t.Fatalf("epoch %d, want recovered %d + 1", newVer.Epoch, rec.RecoveredEpoch)
	}
	docs, _ := q.Search("committed kestrel", 4)
	if len(docs) != 3 {
		t.Fatalf("committed docs not searchable: %d hits", len(docs))
	}
}

// Compaction happens transparently under sustained publishing, and the
// final state still recovers exactly.
func TestDurablePeerCompaction(t *testing.T) {
	mem := store.NewMemFS()
	p := durablePeer(t, mem, store.Options{CompactBytes: 2048})
	for i := 0; i < 30; i++ {
		if _, err := p.Publish(`<d>compaction fodder document body with enough words to matter ` +
			strings.Repeat("pad ", 10) + string(rune('a'+i%26)) + `</d>`); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Metrics().Counter("store_compactions_total").Value(); got == 0 {
		t.Fatal("no compaction under sustained publishing")
	}
	p.Stop()

	q := durablePeer(t, mem, store.Options{})
	defer q.Stop()
	// The 30 bodies differ only in one rune; doc ids dedup identical
	// bodies, so compare against what the writer actually held.
	if q.LocalDocs() == 0 {
		t.Fatal("nothing recovered after compaction")
	}
}

// Regression for the compaction/append race: a publish acknowledged
// while a compaction is capturing its snapshot payload must never be
// rotated away. Hammer the store from many goroutines with an aggressive
// compaction threshold, then restart ungracefully (no final snapshot)
// and require every acknowledged document back.
func TestDurableConcurrentPublishSurvivesCompaction(t *testing.T) {
	mem := store.NewMemFS()
	p := durablePeer(t, mem, store.Options{CompactBytes: 512})
	const goroutines, docs = 8, 12
	var wg sync.WaitGroup
	acked := make([][]string, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < docs; i++ {
				d, err := p.Publish(fmt.Sprintf(`<d>concurrent compaction %d %d %s</d>`,
					g, i, strings.Repeat("pad ", 8)))
				if err != nil {
					t.Error(err)
					return
				}
				acked[g] = append(acked[g], d.ID)
			}
		}()
	}
	wg.Wait()
	if p.Metrics().Counter("store_compactions_total").Value() == 0 {
		t.Fatal("workload never compacted — the race was not exercised")
	}
	p.tp.Close() // process death: no graceful Stop, no final snapshot

	q := durablePeer(t, mem, store.Options{})
	defer q.Stop()
	for g, ids := range acked {
		for i, id := range ids {
			if _, err := q.store.Get(id); err != nil {
				t.Fatalf("goroutine %d doc %d (%s) acknowledged before the crash but lost: %v", g, i, id, err)
			}
		}
	}
}

// Regression: WAL order must match in-memory apply order. Concurrent
// Publish/Remove of the same documents must never be logged in the
// opposite order they were applied (which would resurrect removed
// documents on replay). After an ungraceful restart the recovered doc
// set must equal the pre-crash doc set exactly.
func TestDurablePublishRemoveOrderSurvivesRestart(t *testing.T) {
	mem := store.NewMemFS()
	p := durablePeer(t, mem, store.Options{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				// Shared bodies across goroutines: the same document is
				// concurrently published and removed by different workers.
				d, err := p.Publish(fmt.Sprintf(`<d>order hammer shared %d</d>`, i%7))
				if err != nil {
					t.Error(err)
					return
				}
				if (g+i)%2 == 0 {
					p.Remove(d.ID)
				}
			}
		}()
	}
	wg.Wait()
	wantIDs := p.store.IDs()
	p.tp.Close() // ungraceful: recovery replays the WAL verbatim

	q := durablePeer(t, mem, store.Options{})
	defer q.Stop()
	if gotIDs := q.store.IDs(); !reflect.DeepEqual(gotIDs, wantIDs) {
		t.Fatalf("replayed doc set diverged from pre-crash state:\n got %v\nwant %v", gotIDs, wantIDs)
	}
}

func TestOversizedSnapshotRejected(t *testing.T) {
	big := make([]byte, 4096)
	if _, err := DecodeSnapshotLimit(big, 1024); err == nil {
		t.Fatal("oversized snapshot accepted")
	}
	if _, err := DecodeSnapshotLimit(nil, 0); err == nil {
		// nil decodes as garbage — must error, not panic.
		t.Fatal("empty snapshot accepted")
	}
	// The default bound also applies through Config.Restore.
	if _, err := NewPeer(Config{
		ID: 0, Capacity: 2, Gossip: fastGossip(),
		Restore: big, Store: store.Options{MaxSnapshotBytes: 1024},
	}); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized restore accepted: %v", err)
	}
}

// A snapshot whose gob payload claims different version counters than
// the checksummed store header must be rejected, not adopted: the epoch
// bump is derived from the header, and a disagreeing payload could
// announce versions the bump does not supersede.
func TestSnapshotHeaderMismatchRejected(t *testing.T) {
	mem := store.NewMemFS()
	p := durablePeer(t, mem, store.Options{})
	p.Publish(`<a>header check body</a>`)
	data, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ver := p.node.SelfRecord().Ver
	p.Stop()

	// Rewrite the snapshot with a header claiming a LOWER version than
	// the payload carries.
	st, _, err := store.Open(store.Options{Dir: "data", FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSnapshot(store.SnapshotData{
		Payload: data, Epoch: ver.Epoch, Seq: ver.Seq + 7, FoldLSN: st.LastLSN(),
	}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	if _, err := NewPeer(Config{
		ID: 0, Capacity: 4, Gossip: fastGossip(),
		DataDir: "data", Store: store.Options{FS: mem},
	}); err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Fatalf("header/payload version mismatch accepted: %v", err)
	}
}

// Full-circle community test: a durable peer crashes without a snapshot
// file ever being managed by the operator, restarts purely from its data
// directory, and the community converges on the new incarnation.
func TestDurableRestartRejoinsCommunity(t *testing.T) {
	mem := store.NewMemFS()
	var peers []*Peer
	for i := 0; i < 3; i++ {
		cfg := Config{
			ID: directory.PeerID(i), Capacity: 3,
			Gossip: fastGossip(), Seed: int64(i + 1),
		}
		if i == 1 {
			cfg.DataDir = "data"
			cfg.Store = store.Options{FS: mem}
		}
		p, err := NewPeer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, p)
	}
	t.Cleanup(peers[0].Stop)
	t.Cleanup(peers[2].Stop)
	for i := 1; i < 3; i++ {
		if err := peers[i].Join(peers[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range peers {
		p.Start()
	}
	durable := peers[1]
	if _, err := durable.Publish(`<d>durable community pelican</d>`); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "initial propagation", func() bool {
		docs, _ := peers[0].Search("pelican", 2)
		return len(docs) == 1
	})
	durable.Stop()
	waitFor(t, 15*time.Second, "death detection", func() bool {
		docs, _ := peers[0].Search("pelican", 2)
		return len(docs) == 0
	})

	reborn, err := NewPeer(Config{
		ID: 1, Capacity: 3, Gossip: fastGossip(), Seed: 32,
		DataDir: "data", Store: store.Options{FS: mem},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reborn.Stop)
	if reborn.Recovery().DocsRestored != 1 {
		t.Fatalf("recovered %d docs", reborn.Recovery().DocsRestored)
	}
	if err := reborn.Join(peers[0].Addr()); err != nil {
		t.Fatal(err)
	}
	reborn.Start()
	waitFor(t, 15*time.Second, "content restored to community", func() bool {
		docs, _ := peers[0].Search("pelican", 2)
		return len(docs) == 1 && docs[0].Peer == 1
	})
}
