package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestServingReadPathsConcurrentWithMutators is the serving-tier
// concurrency audit: every read path the HTTP handlers use — ranked
// search, exhaustive search (broker ring + local query), document
// lookup, directory snapshot walks, snapshot encoding, health
// counters — hammered against concurrent publishes, batched publishes,
// removals, and filter compactions. Run under -race; the assertions are
// secondary to the detector.
func TestServingReadPathsConcurrentWithMutators(t *testing.T) {
	peers := community(t, 3, 0.1)
	p := peers[0]

	const rounds = 20
	var wg sync.WaitGroup

	// Mutators: solo publishes, batches, remove+republish churn, and
	// periodic filter compaction (the rebuild that swaps p.filter).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := p.Publish(fmt.Sprintf(`<d>audit solo %d lexicon</d>`, i)); err != nil {
				t.Errorf("publish %d: %v", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/2; i++ {
			batch := []string{
				fmt.Sprintf(`<d>audit batch %d alpha lexicon</d>`, i),
				fmt.Sprintf(`<d>audit batch %d beta lexicon</d>`, i),
			}
			if _, err := p.PublishBatch(batch); err != nil {
				t.Errorf("batch %d: %v", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/2; i++ {
			d, err := p.Publish(fmt.Sprintf(`<d>audit ephemeral %d lexicon</d>`, i))
			if err != nil {
				t.Errorf("ephemeral publish %d: %v", i, err)
				return
			}
			p.Remove(d.ID)
			if i%3 == 0 {
				p.Compact()
			}
		}
	}()

	// Readers: the handler-facing surface.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds*2; i++ {
			p.Search("lexicon", 4)
			peers[1].Search("audit lexicon", 4)
			p.SearchAll("lexicon")
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds*2; i++ {
			// Doc lookup: present, absent, and remote-owner paths.
			for _, key := range p.store.IDs() {
				p.FetchDocument(p.ID(), key)
				break
			}
			p.FetchDocument(p.ID(), "absent-doc")
			peers[1].FetchDocument(p.ID(), "absent-doc")
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds*2; i++ {
			// Directory snapshot walk, exactly as GET /v1/peers does.
			dir := p.Directory()
			dir.Generation()
			dir.NumKnown()
			dir.NumOnline()
			for _, pid := range dir.KnownIDs() {
				dir.Entry(pid)
				dir.Get(pid)
			}
			p.LocalDocs()
			p.StaleFraction()
			p.PickProxy()
			if _, err := p.Snapshot(); err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	want := rounds + rounds/2*2 // solo + batches (ephemerals were removed or remain; count separately)
	if got := p.LocalDocs(); got < want {
		t.Fatalf("LocalDocs = %d, want >= %d", got, want)
	}
}
