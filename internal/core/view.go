package core

import (
	"planetp/internal/bloom"
	"planetp/internal/broker"
	"planetp/internal/chash"
	"planetp/internal/directory"
	"planetp/internal/filtercache"
	"planetp/internal/gossip"
	"planetp/internal/replica"
	"planetp/internal/search"
	"planetp/internal/transport"
	"time"
)

// dirView adapts the peer's directory replica to search.FilterView:
// candidate peers are the on-line members, and Contains probes the
// gossiped (compressed) Bloom filters through a byte-budgeted two-tier
// cache — every peer probeable via its compact decoded form, hot peers
// promoted to fully decompressed filters. The directory's eviction hook
// (supersede / DropDead) invalidates entries so churned-out peers
// release their resident bytes instead of leaking until process exit.
type dirView struct {
	p     *Peer
	cache *filtercache.Cache
}

// dirSource feeds the filter cache from the directory's compressed
// payload column.
type dirSource struct{ dir *directory.Directory }

func (s dirSource) Payload(id directory.PeerID) ([]byte, directory.Version, bool) {
	return s.dir.Payload(id)
}

// Peers implements search.FilterView.
func (v *dirView) Peers() []directory.PeerID {
	return v.p.dir.OnlineIDs()
}

// Contains implements search.FilterView.
func (v *dirView) Contains(id directory.PeerID, term string) bool {
	if id == v.p.id {
		v.p.mu.Lock()
		defer v.p.mu.Unlock()
		return v.p.filter.Contains(term)
	}
	return v.cache.Contains(id, term)
}

// ContainsDigest implements search.DigestView: the query engine hashes
// each term once and probes every peer's decompressed filter with the
// digest.
func (v *dirView) ContainsDigest(id directory.PeerID, d bloom.Digest) bool {
	if id == v.p.id {
		v.p.mu.Lock()
		defer v.p.mu.Unlock()
		return v.p.filter.ContainsDigest(d)
	}
	return v.cache.ContainsDigest(id, d)
}

// ViewVersion implements search.VersionedView with the directory's
// mutation generation, which advances on every accepted record,
// on/off-line flip, and drop — including the local peer's own publishes
// (they upsert the self record).
func (v *dirView) ViewVersion() (uint64, bool) {
	return v.p.dir.Generation(), true
}

// fetcher adapts the transport to search.Fetcher.
type fetcher struct{ p *Peer }

// QueryPeer implements search.Fetcher.
func (f fetcher) QueryPeer(id directory.PeerID, terms []string) ([]search.DocResult, error) {
	if id == f.p.id {
		return f.p.localQuery(terms, false), nil
	}
	docs, err := f.p.tp.Query(id, terms, false)
	if err != nil {
		f.p.dir.MarkOffline(id, f.p.tp.Now())
	}
	return docs, err
}

// QueryPeerAll implements search.Fetcher.
func (f fetcher) QueryPeerAll(id directory.PeerID, terms []string) ([]search.DocResult, error) {
	if id == f.p.id {
		return f.p.localQuery(terms, true), nil
	}
	docs, err := f.p.tp.Query(id, terms, true)
	if err != nil {
		f.p.dir.MarkOffline(id, f.p.tp.Now())
	}
	return docs, err
}

// --- brokerage routing ---
//
// Every on-line member hosts a broker; the ring is computed locally from
// the directory (ids derived from peer ids), so converged peers agree on
// key ownership without coordination. Ring churn does not migrate data —
// the brokerage is best-effort by design (Section 4).

// brokerRing builds the current ring view.
func (p *Peer) brokerRing() *chash.Ring[directory.PeerID] {
	ring := chash.NewRing[directory.PeerID]()
	for _, id := range p.dir.OnlineIDs() {
		bid := brokerID(id)
		for !ring.Join(bid, id) {
			bid = (bid + 1) % chash.MaxID
		}
	}
	return ring
}

// brokerID derives a ring id from a peer id via the canonical decimal
// derivation, now owned by chash.IDForPeer so the replica placement and
// the simulators compute the identical ring. (The previous
// string(rune(id)) conversion collapsed every id ≥ 0xD800 to U+FFFD —
// all such peers landed on ONE ring point — and aliased distinct ids
// mapping to the same code point; the chash package carries the
// regression test.)
func brokerID(id directory.PeerID) uint32 {
	return chash.IDForPeer(int32(id))
}

// brokerPublish routes a snippet's keys to their owning brokers.
func (p *Peer) brokerPublish(sn broker.Snippet, discard time.Duration) {
	ring := p.brokerRing()
	for _, key := range sn.Keys {
		_, ownerPeer, ok := ring.Successor(chash.Hash(key))
		if !ok {
			continue
		}
		if ownerPeer == p.id {
			p.putLocalSnippet(sn, key, discard)
		} else if err := p.tp.BrokerPut(ownerPeer, key, sn, discard); err != nil {
			p.dir.MarkOffline(ownerPeer, p.tp.Now())
		}
	}
}

// putLocalSnippet stores one key of a snippet in the local broker and
// fires remote watches.
func (p *Peer) putLocalSnippet(sn broker.Snippet, key string, discard time.Duration) {
	p.broker.Put(key, sn, discard)
	p.mu.Lock()
	var fire []remoteWatch
	for _, w := range p.watchers {
		if sn.HasAllKeys(w.keys) {
			fire = append(fire, w)
		}
	}
	p.mu.Unlock()
	for _, w := range fire {
		if w.watcher == p.id {
			p.registry.NotifyDoc(snippetResult(sn, w.keys))
		} else if err := p.tp.Notify(w.watcher, sn); err != nil {
			p.dir.MarkOffline(w.watcher, p.tp.Now())
		}
	}
}

// brokerSearch queries the owning broker of each term.
func (p *Peer) brokerSearch(terms []string) []broker.Snippet {
	ring := p.brokerRing()
	seen := make(map[string]broker.Snippet)
	for _, key := range terms {
		_, ownerPeer, ok := ring.Successor(chash.Hash(key))
		if !ok {
			continue
		}
		var snips []broker.Snippet
		if ownerPeer == p.id {
			snips = p.broker.Get(key)
		} else {
			var err error
			snips, err = p.tp.BrokerGet(ownerPeer, key)
			if err != nil {
				p.dir.MarkOffline(ownerPeer, p.tp.Now())
				continue
			}
		}
		for _, sn := range snips {
			if sn.HasAllKeys(terms) {
				seen[sn.ID] = sn
			}
		}
	}
	out := make([]broker.Snippet, 0, len(seen))
	for _, sn := range seen {
		out = append(out, sn)
	}
	return out
}

// brokerWatch registers this peer as watcher for terms at the broker
// owning the first term.
func (p *Peer) brokerWatch(terms []string) {
	if len(terms) == 0 {
		return
	}
	ring := p.brokerRing()
	_, ownerPeer, ok := ring.Successor(chash.Hash(terms[0]))
	if !ok {
		return
	}
	if ownerPeer == p.id {
		p.addWatcher(terms, p.id)
		return
	}
	if err := p.tp.BrokerWatch(ownerPeer, terms); err != nil {
		p.dir.MarkOffline(ownerPeer, p.tp.Now())
	}
}

// addWatcher records a watch registration.
func (p *Peer) addWatcher(keys []string, watcher directory.PeerID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.watchers = append(p.watchers, remoteWatch{keys: keys, watcher: watcher})
}

// --- transport.Handler ---

// handler implements transport.Handler on top of Peer without widening
// Peer's public surface.
type handler Peer

var _ transport.Handler = (*handler)(nil)

// HandleGossip implements transport.Handler.
func (h *handler) HandleGossip(from directory.PeerID, m *gossip.Message) {
	(*Peer)(h).node.Receive(from, m)
}

// HandleQuery implements transport.Handler.
func (h *handler) HandleQuery(terms []string, all bool) []search.DocResult {
	return (*Peer)(h).localQuery(terms, all)
}

// HandleBrokerPut implements transport.Handler.
func (h *handler) HandleBrokerPut(key string, sn broker.Snippet, discard time.Duration) {
	(*Peer)(h).putLocalSnippet(sn, key, discard)
}

// HandleBrokerGet implements transport.Handler.
func (h *handler) HandleBrokerGet(key string) []broker.Snippet {
	return (*Peer)(h).broker.Get(key)
}

// HandleBrokerWatch implements transport.Handler.
func (h *handler) HandleBrokerWatch(keys []string, watcher directory.PeerID) {
	(*Peer)(h).addWatcher(keys, watcher)
}

// HandleNotify implements transport.Handler: a watched snippet arrived.
func (h *handler) HandleNotify(sn broker.Snippet) {
	p := (*Peer)(h)
	// Offer the snippet to all persistent queries; frequencies of 1 per
	// advertised key (brokers store keys, not counts).
	freqs := make(map[string]int, len(sn.Keys))
	for _, k := range sn.Keys {
		freqs[k] = 1
	}
	p.registry.NotifyDoc(search.DocResult{
		Peer: directory.PeerID(sn.Owner), Key: sn.ID,
		TermFreqs: freqs, DocLen: len(sn.Keys),
	})
}

// HandleProxySearch implements transport.Handler: run the full ranked
// search locally on behalf of a bandwidth-limited requester (the paper's
// proxy-search accommodation for modem peers).
func (h *handler) HandleProxySearch(terms []string, k int) []search.ScoredDoc {
	p := (*Peer)(h)
	docs, _ := search.Ranked(p.view, fetcher{p}, terms,
		search.Options{K: k, Metrics: p.reg, Cache: p.searchCache})
	return docs
}

// HandleGetDoc implements transport.Handler: answer from the own store
// or the replica set, feeding the popularity signal either way (a
// replica serving fetches is exactly as hot as the original).
func (h *handler) HandleGetDoc(key string) (string, bool) {
	p := (*Peer)(h)
	if d, err := p.store.Get(key); err == nil {
		p.recordHit(key)
		return d.Raw, true
	}
	if p.rep != nil {
		if e, ok := p.rep.Get(key); ok {
			p.recordHit(key)
			return e.XML, true
		}
	}
	return "", false
}

// HandleReplicaPut implements transport.Handler: the origin (or a
// hoarding peer) pushed a hot document here for safekeeping. The seed
// score is the adoption threshold — hot enough to survive until it
// serves its first fetch.
func (h *handler) HandleReplicaPut(key, xml string, origin directory.PeerID, epoch uint32) {
	p := (*Peer)(h)
	if p.rep == nil {
		return
	}
	p.adoptReplica(replica.Entry{Key: key, Origin: int32(origin), Epoch: epoch, XML: xml}, p.rep.HotScore())
}

// HandleReplicaPurge implements transport.Handler: the origin removed
// the document at epoch; drop the replica and record the death
// certificate so no later exchange resurrects it.
func (h *handler) HandleReplicaPurge(key string, origin directory.PeerID, epoch uint32) {
	(*Peer)(h).purgeReplica(key, epoch, true)
}

// HandleHotDocs implements transport.Handler: serve this peer's hottest
// held documents for a hoarding pull.
func (h *handler) HandleHotDocs(max int) []replica.HotDoc {
	return (*Peer)(h).hotDocs(max)
}

// HandlePeerExchange implements transport.Handler: serve a bounded random
// sample of known-on-line records to a bootstrapping peer. The transport
// has already clamped max; the sample is payload-free (Bloom filters come
// later through normal anti-entropy pulls).
func (h *handler) HandlePeerExchange(max int) []directory.Record {
	p := (*Peer)(h)
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dir.SampleOnline(p.userRandLocked(), max)
}

// SelfRecord implements transport.Handler.
func (h *handler) SelfRecord() directory.Record {
	return (*Peer)(h).node.SelfRecord()
}
