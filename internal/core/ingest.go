package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"planetp/internal/broker"
	"planetp/internal/doc"
	"planetp/internal/store"
	"planetp/internal/text"
)

// Batched ingest. PublishBatch amortizes every per-document cost of
// Publish across a whole batch: text analysis runs on a bounded worker
// pool outside the peer mutex, the WAL commits all records with one
// append (and, with fsync batching, one flush), the index is locked once,
// and a single filter diff + compressed payload is gossiped for the
// batch instead of one per document.

// ErrNoTerms is the single-document Publish failure — the input yields
// no indexable terms after parsing and stemming; batches wrap it with
// the offending position. It marks a caller-input problem (the serving
// tier maps it to 400, not 500).
var ErrNoTerms = errors.New("core: document has no indexable terms")

// ingestLatencyBounds buckets batch latency in microseconds.
var ingestLatencyBounds = []int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}

// freqPool recycles term-frequency maps across batches. The index copies
// postings out and the brokerage snapshot copies its keys, so a map's
// lifetime ends with the batch that analyzed it.
var freqPool = sync.Pool{
	New: func() any { return make(map[string]int, 64) },
}

func releaseFreqs(m map[string]int) {
	if m == nil {
		return
	}
	clear(m)
	freqPool.Put(m)
}

// analyzed pairs a parsed document with its term-frequency map (pooled;
// released once indexed and brokered).
type analyzed struct {
	doc   *doc.Document
	freqs map[string]int
}

// analyzeOne runs parse + tokenize + stem for one document with the
// worker's reusable analyzer and a pooled map.
func (p *Peer) analyzeOne(xml string, a *text.Analyzer) analyzed {
	d := doc.Parse(xml)
	freqs := freqPool.Get().(map[string]int)
	if p.cfg.StructuredIndex {
		freqs = d.StructuredTermFreqsWith(p.cfg.Resolver, a, freqs)
	} else {
		freqs = d.TermFreqsWith(p.cfg.Resolver, a, freqs)
	}
	return analyzed{doc: d, freqs: freqs}
}

// analyzeBatch fans the CPU-bound analysis over up to GOMAXPROCS
// workers, each with its own Analyzer (token buffer + intern table).
// Results are index-aligned with xmls. It runs without p.mu — analysis
// never touches peer state.
func (p *Peer) analyzeBatch(xmls []string) ([]analyzed, error) {
	out := make([]analyzed, len(xmls))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(xmls) {
		workers = len(xmls)
	}
	if workers <= 1 {
		var a text.Analyzer
		for i, xml := range xmls {
			out[i] = p.analyzeOne(xml, &a)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var a text.Analyzer
				for {
					i := int(next.Add(1)) - 1
					if i >= len(xmls) {
						return
					}
					out[i] = p.analyzeOne(xmls[i], &a)
				}
			}()
		}
		wg.Wait()
	}
	for i := range out {
		if len(out[i].freqs) == 0 {
			for j := range out {
				releaseFreqs(out[j].freqs)
			}
			if len(xmls) == 1 {
				return nil, ErrNoTerms
			}
			return nil, fmt.Errorf("core: batch document %d: %w", i, ErrNoTerms)
		}
	}
	return out, nil
}

// PublishBatch publishes many XML documents as one atomic ingest step:
// all are analyzed in parallel, committed to the WAL as a single batch
// (write-ahead — a failed commit leaves the peer completely unchanged),
// indexed under one lock acquisition, and summarized into ONE gossiped
// filter diff and compressed payload. Documents already published (or
// repeated within the batch) are skipped idempotently, exactly like
// Publish. The returned documents are index-aligned with xmls.
//
// Any document with no indexable terms fails the whole batch before any
// state changes.
func (p *Peer) PublishBatch(xmls []string) ([]*doc.Document, error) {
	if len(xmls) == 0 {
		return nil, nil
	}
	start := time.Now()
	ana, err := p.analyzeBatch(xmls)
	if err != nil {
		return nil, err
	}
	docs := make([]*doc.Document, len(ana))
	for i := range ana {
		docs[i] = ana[i].doc
	}
	ver := p.selfVer()

	p.mu.Lock()
	// Drop documents already stored and intra-batch repeats; only fresh
	// ones are logged, indexed, and summarized.
	fresh := make([]analyzed, 0, len(ana))
	inBatch := make(map[string]bool, len(ana))
	for _, ad := range ana {
		if inBatch[ad.doc.ID] {
			releaseFreqs(ad.freqs)
			continue
		}
		inBatch[ad.doc.ID] = true
		if _, err := p.store.Get(ad.doc.ID); err == nil {
			releaseFreqs(ad.freqs) // idempotent republish
			continue
		}
		// Publishing a document this peer holds as a replica converts it
		// to an owned copy: the replica is released (no tombstone — the
		// content lives on) so the two never double-index.
		if p.rep != nil && p.rep.Has(ad.doc.ID) {
			if _, _, err := p.rep.Purge(ad.doc.ID, 0, false); err != nil {
				releaseFreqs(ad.freqs)
				continue
			}
			p.unIngestReplicaLocked(ad.doc.ID)
		}
		fresh = append(fresh, ad)
	}
	if len(fresh) == 0 {
		p.mu.Unlock()
		return docs, nil
	}
	// Write-ahead, as in Publish, but one WAL append covers the batch:
	// record order matches apply order, and the batch is acknowledged
	// durable as a unit. On failure nothing was stored, indexed, or
	// gossiped.
	ops := make([]store.Op, len(fresh))
	for i, ad := range fresh {
		ops[i] = store.Op{Kind: store.OpPublish, Data: ad.doc.Raw, Epoch: ver.Epoch, Seq: ver.Seq}
	}
	if err := p.logBatch(ops); err != nil {
		p.mu.Unlock()
		for _, ad := range fresh {
			releaseFreqs(ad.freqs)
		}
		return nil, fmt.Errorf("core: batch publish not committed to WAL: %w", err)
	}
	batchFreqs := make([]map[string]int, len(fresh))
	for i, ad := range fresh {
		p.store.Put(ad.doc)
		batchFreqs[i] = ad.freqs
	}
	ids := p.index.AddTermFreqsBatch(batchFreqs)
	for i, ad := range fresh {
		p.docOf[ad.doc.ID] = ids[i]
		for t := range ad.freqs {
			p.summary.Insert(t)
			p.counting.Add(t)
		}
		// The doc marker lets any peer resolve a bare document id to its
		// live holders by probing gossiped filters (replica failover).
		p.summary.Insert(docMarker(ad.doc.ID))
		p.counting.Add(docMarker(ad.doc.ID))
	}
	diff, payload, err := p.summary.Flush()
	p.mu.Unlock()
	if err != nil {
		return nil, err
	}

	p.node.Publish(len(diff), len(payload), payload)
	p.maybeCompact()

	if p.cfg.BrokerTopFrac > 0 {
		discard := p.cfg.BrokerDiscard
		if discard <= 0 {
			discard = 10 * time.Minute
		}
		for _, ad := range fresh {
			keys := topTerms(ad.freqs, p.cfg.BrokerTopFrac)
			p.brokerPublish(broker.Snippet{ID: ad.doc.ID, Owner: int32(p.id), XML: ad.doc.Raw, Keys: keys}, discard)
		}
	}
	for _, ad := range fresh {
		releaseFreqs(ad.freqs)
	}

	p.reg.Counter("ingest_docs_total").Add(int64(len(fresh)))
	p.reg.Counter("ingest_batches_total").Inc()
	p.reg.Gauge("ingest_batch_size").Set(int64(len(xmls)))
	p.reg.Histogram("ingest_batch_latency_us", ingestLatencyBounds).
		Observe(time.Since(start).Microseconds())
	return docs, nil
}
