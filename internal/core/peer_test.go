package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"planetp/internal/directory"
	"planetp/internal/gossip"
	"planetp/internal/search"
)

// fastGossip shrinks the protocol timers so live tests converge in
// milliseconds.
func fastGossip() gossip.Config {
	return gossip.Config{
		BaseInterval: 25 * time.Millisecond,
		MaxInterval:  100 * time.Millisecond,
		SlowdownStep: 25 * time.Millisecond,
	}
}

// community spins up n live peers on loopback TCP, all bootstrapped via
// peer 0.
func community(t *testing.T, n int, brokerFrac float64) []*Peer {
	t.Helper()
	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		p, err := NewPeer(Config{
			ID: directory.PeerID(i), Capacity: n,
			Gossip:        fastGossip(),
			Seed:          int64(i + 1),
			BrokerTopFrac: brokerFrac,
			BrokerDiscard: time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
		t.Cleanup(p.Stop)
	}
	for i := 1; i < n; i++ {
		if err := peers[i].Join(peers[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range peers {
		p.Start()
	}
	return peers
}

// waitFor polls until cond or the deadline.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestLiveCommunityConverges(t *testing.T) {
	peers := community(t, 6, 0)
	waitFor(t, 15*time.Second, "full membership", func() bool {
		for _, p := range peers {
			if p.Directory().NumKnown() != len(peers) {
				return false
			}
		}
		return true
	})
}

func TestLivePublishAndRankedSearch(t *testing.T) {
	peers := community(t, 5, 0)
	waitFor(t, 15*time.Second, "membership", func() bool {
		for _, p := range peers {
			if p.Directory().NumKnown() != len(peers) {
				return false
			}
		}
		return true
	})
	// Publish distinct documents at different peers.
	if _, err := peers[1].Publish(`<paper>epidemic gossip protocols replicate directories</paper>`); err != nil {
		t.Fatal(err)
	}
	if _, err := peers[2].Publish(`<paper>bloom filters summarize inverted indexes compactly</paper>`); err != nil {
		t.Fatal(err)
	}
	if _, err := peers[3].Publish(`<paper>consistent hashing partitions the key space</paper>`); err != nil {
		t.Fatal(err)
	}

	// Wait for the publishers' new filters to reach peer 4.
	waitFor(t, 15*time.Second, "filter gossip", func() bool {
		docs, _ := peers[4].Search("gossip protocols", 5)
		return len(docs) >= 1
	})
	docs, st := peers[4].Search("gossip protocols", 5)
	if len(docs) == 0 || st.PeersContacted == 0 {
		t.Fatalf("search returned nothing: %+v", st)
	}
	found := false
	for _, d := range docs {
		if d.Peer == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected doc from peer 1, got %+v", docs)
	}

	// Fetch the actual document body from its owner.
	xml, err := peers[4].FetchDocument(docs[0].Peer, docs[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	if xml == "" {
		t.Fatal("empty document body")
	}
}

func TestLiveExhaustiveSearch(t *testing.T) {
	peers := community(t, 4, 0)
	waitFor(t, 15*time.Second, "membership", func() bool {
		for _, p := range peers {
			if p.Directory().NumKnown() != len(peers) {
				return false
			}
		}
		return true
	})
	peers[1].Publish(`<note>alpha beta gamma</note>`)
	peers[2].Publish(`<note>alpha delta</note>`)
	waitFor(t, 15*time.Second, "exhaustive results", func() bool {
		return len(peers[3].SearchAll("alpha beta")) == 1
	})
	res := peers[3].SearchAll("alpha beta")
	if len(res) != 1 || res[0].Peer != 1 {
		t.Fatalf("SearchAll = %+v", res)
	}
}

func TestLivePersistentQueryViaGossip(t *testing.T) {
	peers := community(t, 4, 0)
	waitFor(t, 15*time.Second, "membership", func() bool {
		for _, p := range peers {
			if p.Directory().NumKnown() != len(peers) {
				return false
			}
		}
		return true
	})
	var hits int32
	cancel := peers[0].PostPersistentQuery("distributed hashing", func(d search.DocResult) {
		atomic.AddInt32(&hits, 1)
	})
	defer cancel()
	peers[2].Publish(`<paper>distributed consistent hashing rings</paper>`)
	waitFor(t, 15*time.Second, "persistent query upcall", func() bool {
		return atomic.LoadInt32(&hits) >= 1
	})
}

func TestLiveBrokerDualPublication(t *testing.T) {
	peers := community(t, 5, 0.5)
	waitFor(t, 15*time.Second, "membership", func() bool {
		for _, p := range peers {
			if p.Directory().NumKnown() != len(peers) {
				return false
			}
		}
		return true
	})
	// Publish a doc whose head terms go to the brokers; a search from
	// another peer should find it through the brokerage even before
	// considering gossip timing.
	doc, err := peers[1].Publish(`<news>earthquake earthquake earthquake report</news>`)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "broker hit", func() bool {
		for _, d := range peers[3].SearchAll("earthquake") {
			if d.Key == doc.ID {
				return true
			}
		}
		return false
	})
}

func TestNewPeerValidation(t *testing.T) {
	if _, err := NewPeer(Config{ID: 0, Capacity: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewPeer(Config{ID: 9, Capacity: 4}); err == nil {
		t.Fatal("out-of-range id accepted")
	}
}

func TestPublishRejectsEmpty(t *testing.T) {
	p, err := NewPeer(Config{ID: 0, Capacity: 2, Gossip: fastGossip()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if _, err := p.Publish("<x/>"); err == nil {
		t.Fatal("empty document accepted")
	}
}

func TestPublishIdempotentAndRemove(t *testing.T) {
	p, err := NewPeer(Config{ID: 0, Capacity: 2, Gossip: fastGossip()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	d1, err := p.Publish("<x>some content here</x>")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := p.Publish("<x>some content here</x>")
	if err != nil || d1.ID != d2.ID {
		t.Fatalf("republish: %v %v", d2, err)
	}
	if p.LocalDocs() != 1 {
		t.Fatalf("LocalDocs = %d", p.LocalDocs())
	}
	if !p.Remove(d1.ID) || p.Remove(d1.ID) {
		t.Fatal("Remove semantics")
	}
	if p.LocalDocs() != 0 {
		t.Fatal("doc not removed")
	}
	// Removed doc no longer matches local queries.
	if res := p.localQuery(Terms("content"), false); len(res) != 0 {
		t.Fatalf("removed doc still indexed: %v", res)
	}
}

func TestTopTerms(t *testing.T) {
	freqs := map[string]int{"a": 10, "b": 5, "c": 5, "d": 1}
	top := topTerms(freqs, 0.5)
	if len(top) != 2 || top[0] != "a" || top[1] != "b" {
		t.Fatalf("topTerms = %v", top)
	}
	if got := topTerms(map[string]int{"only": 1}, 0.01); len(got) != 1 {
		t.Fatalf("floor of one term: %v", got)
	}
}

func TestSelfSearchWithoutNetwork(t *testing.T) {
	p, err := NewPeer(Config{ID: 0, Capacity: 1, Gossip: fastGossip()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if _, err := p.Publish("<m>solitary searchable document</m>"); err != nil {
		t.Fatal(err)
	}
	docs, _ := p.Search("solitary document", 3)
	if len(docs) != 1 || docs[0].Peer != 0 {
		t.Fatalf("self search = %+v", docs)
	}
}

func TestOfflinePeerSkippedInSearch(t *testing.T) {
	peers := community(t, 4, 0)
	waitFor(t, 15*time.Second, "membership", func() bool {
		for _, p := range peers {
			if p.Directory().NumKnown() != len(peers) {
				return false
			}
		}
		return true
	})
	peers[1].Publish(`<d>unique zebra document</d>`)
	waitFor(t, 15*time.Second, "gossip", func() bool {
		docs, _ := peers[0].Search("zebra", 2)
		return len(docs) == 1
	})
	// Kill peer 1; searches must degrade gracefully (skip it), and the
	// searcher marks it off-line.
	peers[1].Stop()
	waitFor(t, 15*time.Second, "offline detection via search", func() bool {
		docs, _ := peers[0].Search("zebra", 2)
		if len(docs) != 0 {
			return false
		}
		e, ok := peers[0].Directory().Entry(1)
		return ok && !e.Online
	})
}

func TestNamesAndAccessors(t *testing.T) {
	p, err := NewPeer(Config{ID: 1, Capacity: 4, Name: "alice", Gossip: fastGossip()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if p.Name() != "alice" || p.ID() != 1 {
		t.Fatal("accessors")
	}
	if p.Addr() == "" || p.Node() == nil || p.Directory() == nil {
		t.Fatal("nil accessors")
	}
	// Default name.
	q, err := NewPeer(Config{ID: 2, Capacity: 4, Gossip: fastGossip()})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Stop()
	if q.Name() != fmt.Sprintf("peer-%d", 2) {
		t.Fatalf("default name = %q", q.Name())
	}
}
