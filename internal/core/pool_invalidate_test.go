package core

import (
	"testing"
	"time"
)

// A superseded directory record (rejoin with a bumped epoch on a new
// address) must invalidate the transport's pooled conns for that peer:
// the old streams point at a previous incarnation and may not carry
// another RPC.
func TestDirectoryEvictionInvalidatesPooledConns(t *testing.T) {
	peers := community(t, 2, 0)
	waitFor(t, 5*time.Second, "directories converge", func() bool {
		_, ok := peers[0].Directory().Get(1)
		return ok
	})
	// Pool a conn from 0 to 1.
	if _, err := peers[0].tp.Query(1, []string{"x"}, false); err != nil {
		t.Fatal(err)
	}
	before := peers[0].Metrics().Snapshot().Get("transport_pool_stale_total")

	// Peer 1 "rejoins" elsewhere: a superseding record lands in 0's
	// directory, which must evict the cached state — pooled conns
	// included.
	rec, ok := peers[0].Directory().Get(1)
	if !ok {
		t.Fatal("peer 1 missing from directory")
	}
	rec.Ver.Epoch++
	rec.Ver.Seq = 0
	rec.Addr = "127.0.0.1:1"
	peers[0].Directory().Upsert(rec)

	waitFor(t, 5*time.Second, "pooled conns invalidated", func() bool {
		return peers[0].Metrics().Snapshot().Get("transport_pool_stale_total") > before
	})
}
