package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestRotateSeedsOrderAndBackoff: within a pass every seed is tried back
// to back (a dead seed must not delay a live one), only a fully failed
// pass sleeps, and the sleep doubles from Base up to the Max cap.
func TestRotateSeedsOrderAndBackoff(t *testing.T) {
	var tried []string
	var slept []time.Duration
	cfg := BootstrapConfig{
		Seeds:  []string{"a", "b", "c"},
		Passes: 5,
		Base:   100 * time.Millisecond,
		Max:    400 * time.Millisecond,
		sleep:  func(d time.Duration) { slept = append(slept, d) },
	}
	err := rotateSeeds(cfg, func(addr string) error {
		tried = append(tried, addr)
		// c comes up on the third pass.
		if addr == "c" && len(slept) >= 2 {
			return nil
		}
		return fmt.Errorf("dial %s: refused", addr)
	})
	if err != nil {
		t.Fatalf("rotateSeeds: %v", err)
	}
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	if strings.Join(tried, ",") != strings.Join(want, ",") {
		t.Errorf("tried %v, want %v", tried, want)
	}
	if len(slept) != 2 || slept[0] != 100*time.Millisecond || slept[1] != 200*time.Millisecond {
		t.Errorf("slept %v, want [100ms 200ms]", slept)
	}
}

func TestRotateSeedsBackoffCap(t *testing.T) {
	var slept []time.Duration
	cfg := BootstrapConfig{
		Seeds:  []string{"a"},
		Passes: 6,
		Base:   100 * time.Millisecond,
		Max:    300 * time.Millisecond,
		sleep:  func(d time.Duration) { slept = append(slept, d) },
	}
	boom := errors.New("down")
	err := rotateSeeds(cfg, func(string) error { return boom })
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("want exhaustion error wrapping the last failure, got %v", err)
	}
	want := []time.Duration{100, 200, 300, 300, 300}
	for i := range want {
		want[i] *= time.Millisecond
	}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}

func TestRotateSeedsFirstSeedWinsNoSleep(t *testing.T) {
	calls := 0
	cfg := BootstrapConfig{
		Seeds: []string{"a", "b"},
		sleep: func(time.Duration) { t.Fatal("slept on a successful first pass") },
	}
	if err := rotateSeeds(cfg, func(string) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestRotateSeedsEmptyList(t *testing.T) {
	err := rotateSeeds(BootstrapConfig{}, func(string) error { return nil })
	if err == nil {
		t.Fatal("want error for empty seed list")
	}
}
