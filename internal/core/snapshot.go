package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"planetp/internal/directory"
)

// Snapshot is a peer's durable state: everything needed to restart with
// the same identity and content. The version counters matter as much as
// the documents — a restarted incarnation must announce itself with an
// epoch that supersedes everything the previous one gossiped, or the
// community will discard its records as stale.
type Snapshot struct {
	// ID is the peer's community id.
	ID int32
	// Epoch and Seq are the last gossiped version counters.
	Epoch, Seq uint32
	// Docs are the raw XML documents in the local store.
	Docs []string
}

// Snapshot serializes the peer's durable state.
func (p *Peer) Snapshot() ([]byte, error) {
	ver := p.node.SelfRecord().Ver
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.encodeSnapshot(ver)
}

// encodeSnapshot gob-encodes the peer's durable state at the given
// version. The caller holds p.mu, so the document set is a consistent
// cut with respect to Publish/Remove (and, for durable peers, with the
// WAL append order — see snapshotSource).
func (p *Peer) encodeSnapshot(ver directory.Version) ([]byte, error) {
	snap := Snapshot{ID: int32(p.id), Epoch: ver.Epoch, Seq: ver.Seq}
	for _, d := range p.store.All() {
		snap.Docs = append(snap.Docs, d.Raw)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// MaxSnapshotBytes is the default DecodeSnapshot input bound. Snapshots
// come from disk or from operator-supplied files; a corrupt or hostile
// length must fail fast instead of ballooning memory during decode.
const MaxSnapshotBytes = 256 << 20

// DecodeSnapshot parses a Snapshot, bounding input at MaxSnapshotBytes.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	return DecodeSnapshotLimit(data, MaxSnapshotBytes)
}

// DecodeSnapshotLimit parses a Snapshot, rejecting inputs over limit
// bytes (limit <= 0 means MaxSnapshotBytes).
func DecodeSnapshotLimit(data []byte, limit int64) (Snapshot, error) {
	if limit <= 0 {
		limit = MaxSnapshotBytes
	}
	if int64(len(data)) > limit {
		return Snapshot{}, fmt.Errorf("core: snapshot: %d bytes exceeds the %d-byte limit", len(data), limit)
	}
	var snap Snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return Snapshot{}, fmt.Errorf("core: snapshot: %w", err)
	}
	return snap, nil
}

// restore republishes a snapshot's documents into a freshly constructed
// peer (called before Start, so nothing goes on the wire; the final
// filter gossips as one announcement once gossiping begins).
func (p *Peer) restore(snap Snapshot) error {
	if int32(p.id) != snap.ID {
		return fmt.Errorf("core: snapshot belongs to peer %d, not %d", snap.ID, p.id)
	}
	for _, raw := range snap.Docs {
		if _, err := p.Publish(raw); err != nil {
			return fmt.Errorf("core: restoring document: %w", err)
		}
	}
	return nil
}
