package core

import (
	"testing"
	"time"
)

func TestStaleFractionAndCompact(t *testing.T) {
	p, err := NewPeer(Config{ID: 0, Capacity: 2, Gossip: fastGossip()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	d1, err := p.Publish(`<a>alpha bravo charlie delta echo foxtrot</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Publish(`<b>golf hotel india juliett kilo lima</b>`); err != nil {
		t.Fatal(err)
	}
	if got := p.StaleFraction(); got != 0 {
		t.Fatalf("fresh peer StaleFraction = %v", got)
	}

	// Removing one of two similar-size docs makes roughly half the
	// gossiped filter stale.
	if !p.Remove(d1.ID) {
		t.Fatal("remove failed")
	}
	frac := p.StaleFraction()
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("StaleFraction after removing half the content = %v", frac)
	}
	// The bloated filter still claims the removed terms (false
	// positives by design).
	if !p.view.Contains(0, "alpha") {
		t.Fatal("pre-compact filter should still hit removed terms")
	}

	verBefore := p.node.SelfRecord().Ver
	cleaned := p.Compact()
	if cleaned <= 0 {
		t.Fatalf("Compact cleaned %d bits", cleaned)
	}
	if p.StaleFraction() != 0 {
		t.Fatalf("StaleFraction after Compact = %v", p.StaleFraction())
	}
	if p.view.Contains(0, "alpha") {
		t.Fatal("compacted filter still hits removed term")
	}
	if !p.view.Contains(0, "golf") {
		t.Fatal("compacted filter lost live term")
	}
	if !verBefore.Less(p.node.SelfRecord().Ver) {
		t.Fatal("Compact must gossip a new version")
	}
}

func TestCompactPropagatesToCommunity(t *testing.T) {
	peers := community(t, 3, 0)
	waitFor(t, 15*time.Second, "membership", func() bool {
		for _, p := range peers {
			if p.Directory().NumKnown() != len(peers) {
				return false
			}
		}
		return true
	})
	d, err := peers[1].Publish(`<z>xylophone zephyr quixotic</z>`)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "publication gossip", func() bool {
		docs, _ := peers[0].Search("xylophone", 2)
		return len(docs) == 1
	})
	peers[1].Remove(d.ID)
	peers[1].Compact()
	// After the compacted filter gossips, peer 0's candidate selection
	// no longer even contacts peer 1 for the dead term.
	waitFor(t, 15*time.Second, "compaction gossip", func() bool {
		_, st := peers[0].Search("xylophone", 2)
		return st.PeersRanked == 0
	})
}
