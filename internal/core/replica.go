package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"planetp/internal/chash"
	"planetp/internal/directory"
	"planetp/internal/doc"
	"planetp/internal/replica"
	"planetp/internal/store"
	"planetp/internal/text"
	"planetp/internal/transport"
)

// Content replication + hoarding wiring (Section 4 of the replication
// design, DESIGN §4j). The replica.Manager owns policy (popularity,
// budget, tombstones, durability); this file owns placement and serving:
//
//   - Placement rides the brokerage ring: the replica holders of a
//     document are the first target ring successors of Hash(key),
//     excluding the origin. Every converged peer computes the same set
//     locally, so pushes and pulls agree without coordination.
//
//   - Announcement rides the Bloom path: an adopted replica's terms AND
//     a per-document marker term ("doc#<key>") are inserted into the
//     gossiped filter, so remote peers both find replica-held content in
//     searches and resolve a bare document id to its live holders by
//     probing cached filters for the marker.
//
//   - Serving: HandleGetDoc answers from the own store or the replica
//     set and feeds the popularity signal; ResolveDocument ranks
//     candidate holders by directory liveness and fails over, so a fetch
//     succeeds as long as ANY replica is up.

// docMarkerPrefix scopes marker terms; the tokenizer only emits letters
// and digits, so no document term can collide with a marker.
const docMarkerPrefix = "doc#"

func docMarker(key string) string { return docMarkerPrefix + key }

// hoardPullMax bounds one hoard pull's advertisement size.
const hoardPullMax = 32

// setupReplica builds the replica manager and, for durable peers, mounts
// and replays the replica store. Runs inside NewPeer after the main
// store's recovery: restored replicas are re-ingested and re-announced
// exactly as recovered — the fsynced set, never a torn suffix.
func (p *Peer) setupReplica() error {
	p.rep = replica.NewManager(replica.Config{
		Factor:   p.cfg.Replicas,
		Budget:   p.cfg.HoardBudget,
		HalfLife: p.cfg.HoardHalfLife,
		Now:      p.tp.Now,
		Metrics:  p.reg,
	})
	if p.cfg.DataDir == "" {
		return nil
	}
	so := p.cfg.Store
	so.Dir = filepath.Join(p.cfg.DataDir, "replicas")
	// The replica store shares no gauges with the document store; a
	// second registry client would clobber the main store's instruments.
	so.Metrics = nil
	st, rec, err := store.Open(so)
	if err != nil {
		return fmt.Errorf("core: opening replica store: %w", err)
	}
	restored, err := p.rep.Replay(rec)
	if err != nil {
		st.Close()
		return fmt.Errorf("core: replaying replica store: %w", err)
	}
	p.repStore = st
	p.rep.AttachStore(st)
	if len(restored) > 0 {
		p.mu.Lock()
		for _, e := range restored {
			p.ingestReplicaLocked(e)
		}
		diff, payload, err := p.summary.Flush()
		p.mu.Unlock()
		if err != nil {
			return err
		}
		p.node.Publish(len(diff), len(payload), payload)
	}
	st.SetSnapshotSource(p.replicaSnapshotSource)
	return nil
}

// replicaSnapshotSource feeds the replica store's compaction. The
// manager captures payload and fold LSN under its own lock, so an
// adoption racing compaction is either in the payload or above FoldLSN.
func (p *Peer) replicaSnapshotSource() (store.SnapshotData, error) {
	ver := p.node.SelfRecord().Ver
	payload, lsn, err := p.rep.SnapshotPayloadLSN()
	if err != nil {
		return store.SnapshotData{}, err
	}
	return store.SnapshotData{
		Payload: payload, Epoch: ver.Epoch, Seq: ver.Seq, FoldLSN: lsn,
	}, nil
}

// ReplicaDocs returns the number of locally held replicas.
func (p *Peer) ReplicaDocs() int {
	if p.rep == nil {
		return 0
	}
	return p.rep.Len()
}

// ReplicaKeys returns the held replica keys, sorted.
func (p *Peer) ReplicaKeys() []string {
	if p.rep == nil {
		return nil
	}
	entries := p.rep.Entries()
	keys := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
	}
	return keys
}

// recordHit feeds one served fetch into the popularity tracker.
func (p *Peer) recordHit(key string) {
	if p.rep != nil {
		p.rep.Hit(key)
	}
}

// ingestReplicaLocked indexes a replica's terms for search and announces
// them — plus the doc marker — through the Bloom summary. The summary is
// NOT flushed; callers flush once per batch and gossip the diff. Caller
// holds p.mu.
func (p *Peer) ingestReplicaLocked(e replica.Entry) {
	if _, ok := p.docOf[e.Key]; ok {
		return // already indexed (epoch refresh)
	}
	var a text.Analyzer
	ad := p.analyzeOne(e.XML, &a)
	id := p.index.AddTermFreqs(ad.freqs)
	p.docOf[e.Key] = id
	for t := range ad.freqs {
		p.summary.Insert(t)
		p.counting.Add(t)
	}
	p.summary.Insert(docMarker(e.Key))
	p.counting.Add(docMarker(e.Key))
	releaseFreqs(ad.freqs)
}

// unIngestReplicaLocked removes a replica's terms from the index and the
// counting filter (the gossiped plain filter keeps stale bits until the
// next Compact, exactly like Remove). Caller holds p.mu.
func (p *Peer) unIngestReplicaLocked(key string) {
	id, ok := p.docOf[key]
	if !ok {
		return
	}
	for _, t := range p.index.DocTerms(id) {
		p.counting.Remove(t)
	}
	p.index.RemoveDocument(id)
	delete(p.docOf, key)
	p.counting.Remove(docMarker(key))
}

// adoptReplica durably stores an offered replica and ingests it for
// serving; seed seeds the local popularity counter so a fresh adoption
// is not immediately GC-eligible. Own documents are never shadowed by a
// replica of themselves.
func (p *Peer) adoptReplica(e replica.Entry, seed float64) {
	if p.rep == nil {
		return
	}
	if _, err := p.store.Get(e.Key); err == nil {
		return
	}
	if !p.rep.Accepts(e.Key, e.Epoch) {
		return
	}
	evicted, err := p.rep.Put(e, seed)
	if err != nil {
		p.reg.Counter("replica_adopt_errors_total").Inc()
		return
	}
	if !p.rep.Has(e.Key) {
		return // refused (raced tombstone)
	}
	p.mu.Lock()
	for _, ev := range evicted {
		p.unIngestReplicaLocked(ev.Key)
	}
	p.ingestReplicaLocked(e)
	pending := p.summary.Pending()
	var diff, payload []byte
	if pending > 0 {
		diff, payload, err = p.summary.Flush()
	}
	p.mu.Unlock()
	if pending > 0 && err == nil {
		p.node.Publish(len(diff), len(payload), payload)
	}
}

// purgeReplica drops a held replica (and, with tomb, records the death
// certificate even if the replica is not held — a purge can arrive
// before the adoption it forbids).
func (p *Peer) purgeReplica(key string, epoch uint32, tomb bool) {
	if p.rep == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	_, held, err := p.rep.Purge(key, epoch, tomb)
	if err != nil {
		p.reg.Counter("replica_purge_errors_total").Inc()
		return
	}
	if held {
		p.unIngestReplicaLocked(key)
	}
}

// replicaHolders computes the replica placement for key: the first n
// distinct ring successors of Hash(key), excluding the origin. Every
// converged peer computes the identical set.
func replicaHolders(ring *chash.Ring[directory.PeerID], key string, origin directory.PeerID, n int) []directory.PeerID {
	if n <= 0 {
		return nil
	}
	out := make([]directory.PeerID, 0, n)
	for _, id := range ring.Successors(chash.Hash(key), n+1) {
		if id == origin {
			continue
		}
		out = append(out, id)
		if len(out) == n {
			break
		}
	}
	return out
}

// ResolveDocument fetches a document body from any live holder: the own
// store, the local replica set, then every candidate holder ranked by
// directory liveness — on-line peers whose gossiped filter announces the
// doc marker first, known-off-line holders as a last resort (the
// directory's view may be stale; a "dead" replica that answers is a
// hit). A definitive miss moves to the next candidate; a transport
// failure marks the holder off-line and fails over. It returns
// doc.ErrNotFound only when no candidate holds the document.
func (p *Peer) ResolveDocument(key string) (string, directory.PeerID, error) {
	if d, err := p.store.Get(key); err == nil {
		p.recordHit(key)
		return d.Raw, p.id, nil
	}
	if p.rep != nil {
		if e, ok := p.rep.Get(key); ok {
			p.recordHit(key)
			return e.XML, p.id, nil
		}
	}
	marker := docMarker(key)
	online := p.dir.OnlineIDs()
	isOnline := make(map[directory.PeerID]bool, len(online))
	for _, id := range online {
		isOnline[id] = true
	}
	candidates := make([]directory.PeerID, 0, len(online))
	for _, id := range online {
		if id != p.id && p.view.Contains(id, marker) {
			candidates = append(candidates, id)
		}
	}
	for _, id := range p.dir.KnownIDs() {
		if id != p.id && !isOnline[id] && p.view.Contains(id, marker) {
			candidates = append(candidates, id)
		}
	}
	var lastErr error
	for _, id := range candidates {
		xml, err := p.tp.GetDoc(id, key)
		switch {
		case err == nil:
			return xml, id, nil
		case errors.Is(err, transport.ErrDocNotFound):
			// Stale filter bit or an already-purged replica: definitive
			// miss on this holder, try the next.
		default:
			p.dir.MarkOffline(id, p.tp.Now())
			lastErr = err
		}
	}
	if lastErr != nil {
		return "", 0, fmt.Errorf("core: no reachable holder for %s: %w", key, lastErr)
	}
	return "", 0, fmt.Errorf("%w: %s", doc.ErrNotFound, key)
}

// hotDocs serves a hoard pull: the hottest locally held documents (own
// or replica) with their origin coordinates and scores.
func (p *Peer) hotDocs(max int) []replica.HotDoc {
	if p.rep == nil || max <= 0 {
		return nil
	}
	keys, scores := p.rep.HotKeys()
	selfEpoch := p.node.SelfRecord().Ver.Epoch
	out := make([]replica.HotDoc, 0, max)
	for i, k := range keys {
		if len(out) == max {
			break
		}
		if _, err := p.store.Get(k); err == nil {
			out = append(out, replica.HotDoc{Key: k, Origin: int32(p.id), Epoch: selfEpoch, Score: scores[i]})
		} else if e, ok := p.rep.Get(k); ok {
			out = append(out, replica.HotDoc{Key: e.Key, Origin: e.Origin, Epoch: e.Epoch, Score: scores[i]})
		}
	}
	return out
}

// broadcastPurge pushes death certificates for a removed document to its
// replica placement (best effort; the hoard GC's epoch-supersession
// check catches holders the push misses).
func (p *Peer) broadcastPurge(key string) {
	if p.rep == nil || p.rep.Factor() <= 1 || p.replaying {
		return
	}
	epoch := p.node.SelfRecord().Ver.Epoch
	ring := p.brokerRing()
	for _, succ := range replicaHolders(ring, key, p.id, p.rep.Factor()-1) {
		if succ == p.id {
			continue
		}
		_ = p.tp.ReplicaPurge(succ, key, p.id, epoch)
	}
}

// --- hoarding loop ---

// hoardLoop drives the replication maintenance cycle: push own hot
// documents to their placement, pull hot documents this peer is
// ring-responsible for, and garbage-collect cooled or superseded
// replicas.
func (p *Peer) hoardLoop() {
	defer close(p.hoardDone)
	iv := p.cfg.HoardInterval
	if iv <= 0 {
		iv = 2 * p.node.Interval()
	}
	ticker := time.NewTicker(iv)
	defer ticker.Stop()
	for {
		select {
		case <-p.stopCh:
			return
		case <-ticker.C:
			p.hoardTick()
		}
	}
}

// hoardTick runs one maintenance cycle.
func (p *Peer) hoardTick() {
	p.pushHotDocs()
	p.pullHotDocs()
	p.gcReplicas()
}

// pushHotDocs replicates this peer's own hot documents to ring
// successors that do not yet announce them. The push carries the body —
// the origin is up now; by the time it is not, the copies exist.
func (p *Peer) pushHotDocs() {
	keys, scores := p.rep.HotKeys()
	if len(keys) == 0 {
		return
	}
	ring := p.brokerRing()
	selfEpoch := p.node.SelfRecord().Ver.Epoch
	for i, key := range keys {
		d, err := p.store.Get(key)
		if err != nil {
			continue // only the origin pushes
		}
		target := p.rep.TargetReplicas(scores[i])
		if target == 0 {
			continue
		}
		marker := docMarker(key)
		for _, succ := range replicaHolders(ring, key, p.id, target) {
			if succ == p.id || p.view.Contains(succ, marker) {
				continue
			}
			if err := p.tp.ReplicaPut(succ, key, d.Raw, p.id, selfEpoch); err != nil {
				p.dir.MarkOffline(succ, p.tp.Now())
			}
		}
	}
}

// pullHotDocs asks one random on-line peer for its hot documents and
// adopts those this peer is ring-responsible for (the hoarding pull:
// popularity spreads through exchanges even when the origin never pushed
// here, e.g. after ring churn reassigned the placement).
func (p *Peer) pullHotDocs() {
	p.mu.Lock()
	q, ok := p.dir.PickOnline(p.userRandLocked(), func(id directory.PeerID, e directory.Entry) bool {
		return id != p.id
	})
	p.mu.Unlock()
	if !ok {
		return
	}
	hot, err := p.tp.HotDocs(q, hoardPullMax)
	if err != nil {
		p.dir.MarkOffline(q, p.tp.Now())
		return
	}
	if len(hot) == 0 {
		return
	}
	ring := p.brokerRing()
	for _, h := range hot {
		origin := directory.PeerID(h.Origin)
		if origin == p.id {
			continue
		}
		if _, err := p.store.Get(h.Key); err == nil {
			continue
		}
		target := p.rep.TargetReplicas(h.Score)
		if target == 0 || !p.rep.Accepts(h.Key, h.Epoch) {
			continue
		}
		responsible := false
		for _, id := range replicaHolders(ring, h.Key, origin, target) {
			if id == p.id {
				responsible = true
				break
			}
		}
		if !responsible {
			continue
		}
		xml, err := p.tp.GetDoc(q, h.Key)
		if err != nil {
			continue // the advertiser lost it or churned; next cycle
		}
		p.adoptReplica(replica.Entry{Key: h.Key, Origin: h.Origin, Epoch: h.Epoch, XML: xml}, h.Score)
	}
}

// gcReplicas releases cooled replicas and revalidates replicas whose
// origin has gossiped a higher incarnation (the content may have been
// removed while this holder was not looking).
func (p *Peer) gcReplicas() {
	for _, e := range p.rep.ReleaseCandidates() {
		p.purgeReplica(e.Key, e.Epoch, false)
	}
	for _, e := range p.rep.Entries() {
		origin := directory.PeerID(e.Origin)
		cur := p.dir.VersionOf(origin)
		if cur.Epoch <= e.Epoch {
			continue
		}
		xml, err := p.tp.GetDoc(origin, e.Key)
		switch {
		case err == nil && xml == e.XML:
			// Still current under the new incarnation: refresh the
			// validated epoch so the check does not repeat every cycle.
			p.adoptReplica(replica.Entry{Key: e.Key, Origin: e.Origin, Epoch: cur.Epoch, XML: xml}, p.rep.Score(e.Key))
		case err == nil:
			// Same key, different content: superseded.
			p.purgeReplica(e.Key, cur.Epoch, true)
		case errors.Is(err, transport.ErrDocNotFound):
			// The origin restarted without the document: removed.
			p.purgeReplica(e.Key, cur.Epoch, true)
		default:
			// Origin unreachable: keep serving — that is the point.
		}
	}
}
