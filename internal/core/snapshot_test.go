package core

import (
	"fmt"
	"testing"
	"time"
)

func TestSnapshotRoundTrip(t *testing.T) {
	p, err := NewPeer(Config{ID: 0, Capacity: 2, Gossip: fastGossip()})
	if err != nil {
		t.Fatal(err)
	}
	p.Publish(`<a>first document body</a>`)
	p.Publish(`<b>second document body</b>`)
	data, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	verBefore := p.node.SelfRecord().Ver
	p.Stop()

	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != 0 || len(snap.Docs) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Epoch != verBefore.Epoch || snap.Seq != verBefore.Seq {
		t.Fatalf("versions not captured: %+v vs %v", snap, verBefore)
	}

	// Restore under a fresh incarnation.
	q, err := NewPeer(Config{ID: 0, Capacity: 2, Gossip: fastGossip(), Restore: data})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Stop()
	if q.LocalDocs() != 2 {
		t.Fatalf("restored %d docs", q.LocalDocs())
	}
	if got := q.node.SelfRecord().Ver.Epoch; got != snap.Epoch+1 {
		t.Fatalf("restored epoch = %d, want %d", got, snap.Epoch+1)
	}
	// Restored content is locally searchable.
	docs, _ := q.Search("second document", 3)
	if len(docs) == 0 {
		t.Fatal("restored docs not searchable")
	}
}

// A restored incarnation must gossip from a version that strictly
// supersedes everything the previous incarnation announced, or the
// community discards its records as stale. Publish enough documents
// that Seq advances well past zero before the snapshot is taken.
func TestSnapshotRestoredVersionSupersedes(t *testing.T) {
	p, err := NewPeer(Config{ID: 0, Capacity: 4, Gossip: fastGossip()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := p.Publish(fmt.Sprintf(`<doc%d>body number %d walrus</doc%d>`, i, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	oldVer := p.node.SelfRecord().Ver
	if oldVer.Seq == 0 {
		t.Fatal("publishing did not advance Seq; test needs a non-trivial version")
	}
	data, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	p.Stop()

	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != oldVer.Epoch || snap.Seq != oldVer.Seq {
		t.Fatalf("snapshot counters %d/%d, want %d/%d",
			snap.Epoch, snap.Seq, oldVer.Epoch, oldVer.Seq)
	}

	q, err := NewPeer(Config{ID: 0, Capacity: 4, Gossip: fastGossip(), Restore: data})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Stop()
	newVer := q.node.SelfRecord().Ver
	if newVer.Epoch != snap.Epoch+1 {
		t.Fatalf("restored epoch = %d, want %d", newVer.Epoch, snap.Epoch+1)
	}
	if !oldVer.Less(newVer) {
		t.Fatalf("restored version %v does not supersede %v", newVer, oldVer)
	}
	if q.LocalDocs() != 5 {
		t.Fatalf("restored %d docs, want 5", q.LocalDocs())
	}
}

func TestSnapshotWrongPeerRejected(t *testing.T) {
	p, err := NewPeer(Config{ID: 0, Capacity: 4, Gossip: fastGossip()})
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	p.Stop()
	if _, err := NewPeer(Config{ID: 2, Capacity: 4, Gossip: fastGossip(), Restore: data}); err == nil {
		t.Fatal("foreign snapshot accepted")
	}
}

func TestSnapshotGarbageRejected(t *testing.T) {
	if _, err := DecodeSnapshot([]byte("not a snapshot")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := NewPeer(Config{ID: 0, Capacity: 2, Gossip: fastGossip(), Restore: []byte{1, 2, 3}}); err == nil {
		t.Fatal("garbage restore accepted")
	}
}

// Full cycle: a peer crashes, restarts from its snapshot, and the
// community accepts the new incarnation and finds its content again.
func TestSnapshotRestartRejoinsCommunity(t *testing.T) {
	peers := community(t, 3, 0)
	waitFor(t, 15*time.Second, "membership", func() bool {
		for _, p := range peers {
			if p.Directory().NumKnown() != len(peers) {
				return false
			}
		}
		return true
	})
	peers[1].Publish(`<d>persistent walrus knowledge</d>`)
	waitFor(t, 15*time.Second, "initial propagation", func() bool {
		docs, _ := peers[0].Search("walrus", 2)
		return len(docs) == 1
	})
	data, err := peers[1].Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	peers[1].Stop()
	waitFor(t, 15*time.Second, "death detection", func() bool {
		docs, _ := peers[0].Search("walrus", 2)
		return len(docs) == 0
	})

	reborn, err := NewPeer(Config{
		ID: 1, Capacity: 3, Gossip: fastGossip(), Seed: 77, Restore: data,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reborn.Stop)
	if err := reborn.Join(peers[0].Addr()); err != nil {
		t.Fatal(err)
	}
	reborn.Start()
	waitFor(t, 15*time.Second, "content restored to community", func() bool {
		docs, _ := peers[0].Search("walrus", 2)
		return len(docs) == 1 && docs[0].Peer == 1
	})
}
