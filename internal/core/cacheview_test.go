package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"planetp/internal/bloom"
	"planetp/internal/directory"
)

// cachePayload builds a small compressed Bloom filter over terms.
func cachePayload(terms ...string) []byte {
	f := bloom.New(4096, 2)
	for _, t := range terms {
		f.Insert(t)
	}
	return f.Compress()
}

// TestViewCacheReleasesDroppedPeerBytes is the leak regression test: the
// pre-existing dirView cached decompressed filters in an unbounded map
// keyed by peer id and never removed entries for churned-out peers. With
// the eviction hook wired through Directory.SetOnEvict, dropping a dead
// peer must release its resident filter bytes immediately.
func TestViewCacheReleasesDroppedPeerBytes(t *testing.T) {
	p, err := NewPeer(Config{ID: 0, Capacity: 16, Gossip: fastGossip()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	pay := cachePayload("gossip", "bloom")
	for id := directory.PeerID(1); id <= 3; id++ {
		p.dir.Upsert(directory.Record{
			ID: id, Ver: directory.Version{Epoch: 1, Seq: 1},
			Payload: pay, PayloadSize: int32(len(pay)),
		})
	}
	d := bloom.MakeDigest("gossip")
	for id := directory.PeerID(1); id <= 3; id++ {
		if !p.view.ContainsDigest(id, d) {
			t.Fatalf("peer %d filter lost inserted term", id)
		}
	}
	before := p.view.cache.ResidentBytes()
	if before <= 0 {
		t.Fatal("no resident bytes after probing three peers")
	}

	// Peer 2 churns out: off-line past T_Dead, then dropped.
	p.dir.MarkOffline(2, time.Minute)
	dropped := p.dir.DropDead(time.Second, 2*time.Minute)
	if len(dropped) != 1 || dropped[0] != 2 {
		t.Fatalf("DropDead = %v, want [2]", dropped)
	}
	after := p.view.cache.ResidentBytes()
	if after >= before {
		t.Fatalf("resident bytes %d not released by drop (before %d)", after, before)
	}
	st := p.view.cache.Stats()
	if st.Evictions == 0 {
		t.Fatal("drop fired no cache eviction")
	}
	if p.view.ContainsDigest(2, d) {
		t.Fatal("dropped peer still probeable")
	}

	// Supersede path: a new filter version invalidates the old entry.
	evBefore := p.view.cache.Stats().Evictions
	pay2 := cachePayload("fresh")
	p.dir.Upsert(directory.Record{
		ID: 1, Ver: directory.Version{Epoch: 1, Seq: 2},
		Payload: pay2, PayloadSize: int32(len(pay2)),
	})
	if p.view.cache.Stats().Evictions <= evBefore {
		t.Fatal("supersede fired no cache eviction")
	}
	if p.view.ContainsDigest(1, d) {
		t.Fatal("superseded filter still answers old terms")
	}
	if !p.view.ContainsDigest(1, bloom.MakeDigest("fresh")) {
		t.Fatal("new filter version not probeable")
	}
}

// TestViewCacheConcurrentChurn races the query fast path (IPF ranking +
// digest probes through the two-tier cache) against directory churn:
// version bumps, off-line flips, and T_Dead drops. Run with -race; the
// assertions only check crash-freedom and that probes never observe a
// peer the directory dropped.
func TestViewCacheConcurrentChurn(t *testing.T) {
	p, err := NewPeer(Config{
		ID: 0, Capacity: 64, Gossip: fastGossip(),
		FilterCacheBudget: 16 << 10, // tiny: force constant eviction
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	terms := []string{"alpha", "bravo", "charlie"}
	digests := make([]bloom.Digest, len(terms))
	for i, s := range terms {
		digests[i] = bloom.MakeDigest(s)
	}
	payOf := func(seq uint32) []byte {
		return cachePayload("alpha", "bravo", "charlie", fmt.Sprintf("v%d", seq))
	}
	for id := directory.PeerID(1); id < 32; id++ {
		pay := payOf(1)
		p.dir.Upsert(directory.Record{
			ID: id, Ver: directory.Version{Epoch: 1, Seq: 1},
			Payload: pay, PayloadSize: int32(len(pay)),
		})
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := directory.PeerID(1 + (i+g)%32)
				p.view.ContainsDigest(id, digests[i%len(digests)])
				if i%7 == 0 {
					p.searchCache.IPFRanked(p.view, terms, p.reg)
				}
			}
		}(g)
	}

	for i := 0; i < 1500; i++ {
		id := directory.PeerID(1 + i%31)
		switch i % 5 {
		case 0, 1, 2: // version bump
			seq := uint32(2 + i/5)
			pay := payOf(seq)
			p.dir.Upsert(directory.Record{
				ID: id, Ver: directory.Version{Epoch: 1, Seq: seq},
				Payload: pay, PayloadSize: int32(len(pay)),
			})
		case 3: // churn out...
			p.dir.MarkOffline(id, time.Duration(i)*time.Millisecond)
			p.dir.DropDead(time.Nanosecond, time.Hour)
		case 4: // ...and rejoin with a fresh epoch
			pay := payOf(1)
			p.dir.Upsert(directory.Record{
				ID: id, Ver: directory.Version{Epoch: uint32(2 + i/5), Seq: 1},
				Payload: pay, PayloadSize: int32(len(pay)),
			})
		}
	}
	close(stop)
	wg.Wait()

	if rb := p.view.cache.ResidentBytes(); rb > 16<<10 {
		t.Fatalf("resident bytes %d exceed the 16KiB budget after churn", rb)
	}
}
