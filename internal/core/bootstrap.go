package core

import (
	"errors"
	"fmt"
	"time"
)

// BootstrapConfig tunes JoinSeeds' rotation through a seed list. Zero
// fields take defaults sized for a cluster whose seeds may still be
// starting up: 8 passes with backoff doubling from 250 ms and capped at
// 5 s waits ≈ 18 s worst case — more forgiving than the old single-seed
// loop's hard 10 s deadline, and it gives up only when every seed has
// failed on every pass.
type BootstrapConfig struct {
	// Seeds are the candidate member addresses, tried in order within
	// each pass.
	Seeds []string
	// Passes is how many full rotations through the list to attempt
	// before giving up (default 8).
	Passes int
	// Base is the delay after the first full failed pass; it doubles
	// each pass, capped at Max (defaults 250 ms and 5 s).
	Base, Max time.Duration
	// sleep replaces time.Sleep in tests.
	sleep func(time.Duration)
}

func (c BootstrapConfig) withDefaults() BootstrapConfig {
	if c.Passes <= 0 {
		c.Passes = 8
	}
	if c.Base <= 0 {
		c.Base = 250 * time.Millisecond
	}
	if c.Max <= 0 {
		c.Max = 5 * time.Second
	}
	if c.sleep == nil {
		c.sleep = time.Sleep
	}
	return c
}

// JoinSeeds bootstraps into an existing community via any of the given
// member addresses, rotating through the list with capped exponential
// backoff between passes. The first seed that answers wins; an error is
// returned only when every seed failed on every pass.
func (p *Peer) JoinSeeds(cfg BootstrapConfig) error {
	return rotateSeeds(cfg, p.Join)
}

// rotateSeeds runs the seed-rotation policy over an arbitrary join
// attempt (factored out so the policy is unit-testable without sockets).
// Within one pass every seed is tried back to back — a dead seed must not
// delay a live one behind it — and only a fully failed pass sleeps.
func rotateSeeds(cfg BootstrapConfig, try func(addr string) error) error {
	cfg = cfg.withDefaults()
	if len(cfg.Seeds) == 0 {
		return errors.New("core: no seed addresses")
	}
	var lastErr error
	delay := cfg.Base
	for pass := 0; pass < cfg.Passes; pass++ {
		if pass > 0 {
			cfg.sleep(delay)
			delay *= 2
			if delay > cfg.Max {
				delay = cfg.Max
			}
		}
		for _, addr := range cfg.Seeds {
			if err := try(addr); err != nil {
				lastErr = err
				continue
			}
			return nil
		}
	}
	return fmt.Errorf("core: all %d seeds exhausted after %d passes: %w",
		len(cfg.Seeds), cfg.Passes, lastErr)
}
