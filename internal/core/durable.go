package core

import (
	"fmt"

	"planetp/internal/directory"
	"planetp/internal/store"
)

// Durable peer state. When Config.DataDir is set, every Publish/Remove
// is appended to a write-ahead log before the call returns, the log is
// periodically folded into checksummed snapshots (temp + fsync + rename),
// and NewPeer replays snapshot + WAL on startup. The recovered version
// counters floor the restarted incarnation's epoch bump, so the
// community discards everything the dead incarnation gossiped — the
// paper's epoch-supersession requirement, now with something durable to
// stand on.

// RecoverySummary reports what a durable peer restored at startup
// (planetp-node logs it; tests assert on it).
type RecoverySummary struct {
	// Enabled reports whether the peer runs with a durable store.
	Enabled bool
	// DocsRestored is how many documents recovery republished.
	DocsRestored int
	// OpsReplayed is how many WAL operations were replayed on top of the
	// snapshot.
	OpsReplayed int
	// TruncatedRecords / TruncatedBytes count the torn WAL tail dropped.
	TruncatedRecords int
	TruncatedBytes   int64
	// Quarantined lists unreadable files moved aside (never deleted).
	Quarantined []string
	// RecoveredEpoch and RecoveredSeq are the highest version counters
	// found on disk; NewEpoch is what this incarnation announces.
	RecoveredEpoch, RecoveredSeq uint32
	NewEpoch                     uint32
}

// String renders the one-line startup log.
func (r RecoverySummary) String() string {
	if !r.Enabled {
		return "durable store disabled"
	}
	s := fmt.Sprintf("recovered %d docs (%d WAL ops replayed), epoch %d -> %d",
		r.DocsRestored, r.OpsReplayed, r.RecoveredEpoch, r.NewEpoch)
	if r.TruncatedRecords > 0 {
		s += fmt.Sprintf(", truncated %d torn record(s) / %d bytes", r.TruncatedRecords, r.TruncatedBytes)
	}
	if len(r.Quarantined) > 0 {
		s += fmt.Sprintf(", quarantined %v", r.Quarantined)
	}
	return s
}

// Recovery returns what the durable store restored at startup (zero
// value when DataDir is unset).
func (p *Peer) Recovery() RecoverySummary { return p.recovery }

// openStore mounts the durable store and computes the epoch floor. It
// runs before the gossip node exists (the recovered epoch feeds the
// node's initial record).
func openStore(cfg *Config) (*store.Store, store.Recovery, error) {
	so := cfg.Store
	so.Dir = cfg.DataDir
	so.Metrics = cfg.Metrics
	st, rec, err := store.Open(so)
	if err != nil {
		return nil, store.Recovery{}, fmt.Errorf("core: opening data dir %s: %w", cfg.DataDir, err)
	}
	return st, rec, nil
}

// replayRecovery rebuilds the peer's documents from the recovered
// snapshot and WAL suffix. It runs inside NewPeer, after the gossip node
// exists but before Start, with p.replaying set so Publish/Remove do not
// re-log the operations they replay.
func (p *Peer) replayRecovery(rec store.Recovery) error {
	p.replaying = true
	defer func() { p.replaying = false }()

	summary := RecoverySummary{
		Enabled:          true,
		TruncatedRecords: rec.TruncatedRecords,
		TruncatedBytes:   rec.TruncatedBytes,
		Quarantined:      rec.Quarantined,
		RecoveredEpoch:   rec.Epoch,
		RecoveredSeq:     rec.Seq,
		NewEpoch:         p.node.SelfRecord().Ver.Epoch,
	}
	if rec.Snapshot != nil {
		limit := p.cfg.Store.MaxSnapshotBytes
		snap, err := DecodeSnapshotLimit(rec.Snapshot, limit)
		if err != nil {
			return fmt.Errorf("core: recovered snapshot: %w", err)
		}
		// Monotonicity validation: the checksummed store header records
		// the version the writer captured; a payload claiming different
		// counters is inconsistent and must not be adopted — it would
		// undermine the epoch bump derived from the header.
		if snap.Epoch != rec.SnapshotHeader.Epoch || snap.Seq != rec.SnapshotHeader.Seq {
			return fmt.Errorf("core: snapshot payload version %d.%d disagrees with store header %d.%d",
				snap.Epoch, snap.Seq, rec.SnapshotHeader.Epoch, rec.SnapshotHeader.Seq)
		}
		if err := p.restore(snap); err != nil {
			return err
		}
	}
	for _, op := range rec.Ops {
		switch op.Kind {
		case store.OpPublish:
			if _, err := p.Publish(op.Data); err != nil {
				return fmt.Errorf("core: replaying %v: %w", op, err)
			}
		case store.OpRemove:
			// Removing a document the truncated tail published is a
			// no-op, not an error — Remove is naturally idempotent.
			p.Remove(op.Data)
		}
		summary.OpsReplayed++
	}
	summary.DocsRestored = p.LocalDocs()
	p.recovery = summary
	p.reg.Gauge("store_recovered_docs").Set(int64(summary.DocsRestored))
	return nil
}

// snapshotSource feeds the store's compaction: a fresh full-state
// snapshot, the gossip version it captures, and the WAL position it
// folds through. Payload and fold LSN are captured under p.mu — the
// same lock every WAL append holds — so an op is in the payload if and
// only if its LSN is at or below FoldLSN; a Publish racing with
// compaction can never be stamped as folded in without being in the
// snapshot.
func (p *Peer) snapshotSource() (store.SnapshotData, error) {
	ver := p.node.SelfRecord().Ver
	p.mu.Lock()
	defer p.mu.Unlock()
	payload, err := p.encodeSnapshot(ver)
	if err != nil {
		return store.SnapshotData{}, err
	}
	return store.SnapshotData{
		Payload: payload,
		Epoch:   ver.Epoch,
		Seq:     ver.Seq,
		FoldLSN: p.st.LastLSN(),
	}, nil
}

// logOp appends one operation to the WAL (no-op while replaying or when
// the peer is not durable). The caller holds p.mu and appends BEFORE
// applying the operation in memory — write-ahead — so WAL order always
// matches in-memory apply order (a concurrent Remove/Publish of the
// same document can never replay in the opposite order), and a failed
// append leaves the peer unchanged.
func (p *Peer) logOp(kind store.OpKind, data string, ver directory.Version) error {
	if p.st == nil || p.replaying {
		return nil
	}
	_, err := p.st.Append(store.Op{Kind: kind, Data: data, Epoch: ver.Epoch, Seq: ver.Seq})
	return err
}

// logBatch appends a batch of operations to the WAL as one group-
// committed append (no-op while replaying or when the peer is not
// durable). Like logOp, the caller holds p.mu and appends BEFORE
// applying — a failed batch leaves the peer unchanged, and a successful
// one is durable as a unit.
func (p *Peer) logBatch(ops []store.Op) error {
	if p.st == nil || p.replaying || len(ops) == 0 {
		return nil
	}
	_, err := p.st.AppendBatch(ops)
	return err
}

// maybeCompact folds the WAL into a snapshot once it passes the size
// threshold. Called after p.mu is released (the snapshot source
// re-takes it). A compaction failure never fails the operation that
// triggered it — the record is already durably committed; the WAL just
// keeps growing until a later compaction succeeds — so it is only
// counted.
func (p *Peer) maybeCompact() {
	if p.st == nil || p.replaying {
		return
	}
	if err := p.st.MaybeCompact(); err != nil {
		p.reg.Counter("store_compaction_errors_total").Inc()
	}
}

// finalSnapshot folds the entire state into a snapshot at shutdown so
// the next start replays no WAL (best-effort: a failure here still
// leaves the synced WAL to recover from).
func (p *Peer) finalSnapshot() {
	if p.repStore != nil {
		if data, err := p.replicaSnapshotSource(); err == nil {
			p.repStore.SaveSnapshot(data)
		}
		p.repStore.Close()
	}
	if p.st == nil {
		return
	}
	if data, err := p.snapshotSource(); err == nil {
		p.st.SaveSnapshot(data)
	}
	p.st.Close()
}
