package core

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"planetp/internal/store"
)

func soloPeer(t *testing.T, cfg Config) *Peer {
	t.Helper()
	if cfg.Capacity == 0 {
		cfg.Capacity = 4
	}
	cfg.Gossip = fastGossip()
	p, err := NewPeer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	return p
}

// ingestCorpus builds n distinct documents with overlapping vocabulary.
func ingestCorpus(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf(`<doc><title>batch corpus %d</title>shared lexicon plus unique token%d</doc>`, i, i)
	}
	return out
}

// A batch publish must be observably identical to publishing the same
// documents one at a time: same documents, same index statistics, same
// Bloom filter, same search results.
func TestPublishBatchMatchesSequential(t *testing.T) {
	corpus := ingestCorpus(20)

	seq := soloPeer(t, Config{ID: 0})
	for _, xml := range corpus {
		if _, err := seq.Publish(xml); err != nil {
			t.Fatal(err)
		}
	}
	bat := soloPeer(t, Config{ID: 1})
	docs, err := bat.PublishBatch(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != len(corpus) {
		t.Fatalf("returned %d docs for %d inputs", len(docs), len(corpus))
	}
	for i, d := range docs {
		if d == nil || d.Raw != corpus[i] {
			t.Fatalf("doc %d misaligned with input", i)
		}
	}

	if seq.LocalDocs() != bat.LocalDocs() {
		t.Fatalf("doc counts diverge: %d vs %d", seq.LocalDocs(), bat.LocalDocs())
	}
	if a, b := seq.index.Stats(), bat.index.Stats(); a != b {
		t.Fatalf("index stats diverge: %v vs %v", a, b)
	}
	if !seq.filter.Equal(bat.filter) {
		t.Fatal("Bloom filters diverge between sequential and batched publish")
	}
	for _, q := range []string{"shared lexicon", "token7", "corpus"} {
		a := seq.localQuery(Terms(q), false)
		b := bat.localQuery(Terms(q), false)
		if len(a) != len(b) {
			t.Fatalf("query %q: %d vs %d hits", q, len(a), len(b))
		}
	}
	if got := bat.Metrics().Counter("ingest_docs_total").Value(); got != int64(len(corpus)) {
		t.Fatalf("ingest_docs_total = %d, want %d", got, len(corpus))
	}
}

// Batches are idempotent exactly like Publish: intra-batch repeats and
// already-published documents are skipped, and an all-duplicate batch
// gossips nothing new.
func TestPublishBatchIdempotent(t *testing.T) {
	p := soloPeer(t, Config{ID: 0})
	if _, err := p.Publish(`<a>already present heron</a>`); err != nil {
		t.Fatal(err)
	}
	batch := []string{
		`<a>already present heron</a>`, // stored before the batch
		`<b>fresh batch walrus</b>`,
		`<b>fresh batch walrus</b>`, // intra-batch repeat
	}
	docs, err := p.PublishBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if docs[1].ID != docs[2].ID {
		t.Fatal("identical bodies parsed to different ids")
	}
	if p.LocalDocs() != 2 {
		t.Fatalf("LocalDocs = %d, want 2", p.LocalDocs())
	}
	if got := p.Metrics().Counter("ingest_docs_total").Value(); got != 2 {
		t.Fatalf("ingest_docs_total = %d, want 2 (dups must not count)", got)
	}

	// A fully duplicate batch changes nothing — filter included.
	before := p.filter.Clone()
	if _, err := p.PublishBatch(batch); err != nil {
		t.Fatal(err)
	}
	if !p.filter.Equal(before) {
		t.Fatal("all-duplicate batch mutated the filter")
	}
}

// A term-free document fails the whole batch before any state changes,
// and the single-document error keeps its historical message.
func TestPublishBatchNoIndexableTerms(t *testing.T) {
	p := soloPeer(t, Config{ID: 0})
	if _, err := p.Publish(``); err == nil || err.Error() != "core: document has no indexable terms" {
		t.Fatalf("single-doc error = %v", err)
	}
	_, err := p.PublishBatch([]string{`<a>good capybara content</a>`, `<b>!!!</b>`})
	if !errors.Is(err, ErrNoTerms) {
		t.Fatalf("batch with a term-free doc: err = %v", err)
	}
	if p.LocalDocs() != 0 {
		t.Fatal("failed batch left documents behind")
	}
}

// topTerms must take ceil(frac * |terms|) exactly: no phantom extra term
// from the old +0.999 rounding hack, no missing term when the fractional
// part is tiny.
func TestTopTermsCeil(t *testing.T) {
	mkFreqs := func(n int) map[string]int {
		m := make(map[string]int, n)
		for i := 0; i < n; i++ {
			m[fmt.Sprintf("t%04d", i)] = n - i // distinct freqs: t0000 is hottest
		}
		return m
	}
	cases := []struct {
		n    int
		frac float64
		want int
	}{
		{5, 0.2, 1},   // 0.2*5 = 1.0000000000000002 in floats; must stay 1
		{10, 0.1, 1},  // exact integral product
		{10, 0.25, 3}, // 2.5 rounds up
		{10, 0.11, 2}, // 1.1 rounds up (old hack also got this)
		{1000, 0.001, 1},
		{3, 0.0001, 1}, // clamp to at least one
		{4, 2.0, 4},    // clamp to all
	}
	for _, c := range cases {
		got := topTerms(mkFreqs(c.n), c.frac)
		if len(got) != c.want {
			t.Errorf("topTerms(n=%d, frac=%v) returned %d terms, want %d", c.n, c.frac, len(got), c.want)
		}
	}
	// Determinism and ordering: hottest first, ties lexicographic.
	top := topTerms(map[string]int{"bb": 2, "aa": 2, "zz": 5}, 0.5)
	if !reflect.DeepEqual(top, []string{"zz", "aa"}) {
		t.Fatalf("topTerms order = %v", top)
	}
}

// Publishers (single and batched) racing searches, gossip summary reads,
// and removals must be data-race free; run under -race.
func TestPublishBatchConcurrentWithSearch(t *testing.T) {
	peers := community(t, 2, 0.1)
	p := peers[0]
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			batch := make([]string, 8)
			for j := range batch {
				batch[j] = fmt.Sprintf(`<d>race corpus %d %d shared vocabulary</d>`, i, j)
			}
			if _, err := p.PublishBatch(batch); err != nil {
				t.Errorf("batch %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if _, err := p.Publish(fmt.Sprintf(`<s>solo race doc %d</s>`, i)); err != nil {
				t.Errorf("publish %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			p.Search("shared vocabulary", 4)
			peers[1].Search("race corpus", 4)
			p.StaleFraction()
		}
	}()
	wg.Wait()
	if p.LocalDocs() != 8*8+30 {
		t.Fatalf("LocalDocs = %d, want %d", p.LocalDocs(), 8*8+30)
	}
}

// Durable batched ingest: every acknowledged batch survives an
// ungraceful restart, a crash mid-batch loses the whole un-acked batch
// or keeps a prefix of it, and recovery replays the records in order.
func TestDurableBatchedIngestRecovery(t *testing.T) {
	mem := store.NewMemFS()
	p := durablePeer(t, mem, store.Options{})
	var acked []string
	for b := 0; b < 5; b++ {
		batch := make([]string, 6)
		for i := range batch {
			batch[i] = fmt.Sprintf(`<d>durable batch %d doc %d</d>`, b, i)
		}
		docs, err := p.PublishBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range docs {
			acked = append(acked, d.ID)
		}
	}
	p.tp.Close() // process death: no graceful Stop, no final snapshot
	mem.Crash(7)

	q := durablePeer(t, mem, store.Options{})
	defer q.Stop()
	if q.LocalDocs() != len(acked) {
		t.Fatalf("recovered %d docs, want %d", q.LocalDocs(), len(acked))
	}
	for _, id := range acked {
		if _, err := q.store.Get(id); err != nil {
			t.Fatalf("acked doc %s lost: %v", id, err)
		}
	}
}

// A WAL crash during a batched append fails the batch atomically: no
// document from the failed batch is stored, indexed, or searchable, and
// the error surfaces to the caller.
func TestPublishBatchWALFailureLeavesPeerUnchanged(t *testing.T) {
	mem := store.NewMemFS()
	ffs := store.NewFaultFS(mem, 99)
	p := durablePeer(t, ffs, store.Options{})
	if _, err := p.PublishBatch(ingestCorpus(4)); err != nil {
		t.Fatal(err)
	}
	before := p.LocalDocs()
	stats := p.index.Stats()

	ffs.CrashAt(ffs.Ops(), store.CrashTorn)
	batch := []string{`<x>doomed batch one</x>`, `<y>doomed batch two</y>`}
	if _, err := p.PublishBatch(batch); err == nil ||
		!strings.Contains(err.Error(), "not committed to WAL") {
		t.Fatalf("batch over a torn WAL: err = %v", err)
	}
	if p.LocalDocs() != before {
		t.Fatalf("failed batch changed LocalDocs: %d -> %d", before, p.LocalDocs())
	}
	if got := p.index.Stats(); got != stats {
		t.Fatalf("failed batch changed the index: %v -> %v", stats, got)
	}
	if hits := p.localQuery(Terms("doomed"), false); len(hits) != 0 {
		t.Fatalf("documents from a failed batch are searchable: %v", hits)
	}
	p.tp.Close()
}
