package core

import (
	"testing"
	"time"

	"planetp/internal/directory"
	"planetp/internal/search"
)

// communityStructured spins up peers with structured indexing enabled.
func communityStructured(t *testing.T, n int) []*Peer {
	t.Helper()
	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		p, err := NewPeer(Config{
			ID: directory.PeerID(i), Capacity: n,
			Gossip:          fastGossip(),
			Seed:            int64(i + 1),
			StructuredIndex: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
		t.Cleanup(p.Stop)
	}
	for i := 1; i < n; i++ {
		if err := peers[i].Join(peers[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range peers {
		p.Start()
	}
	return peers
}

func TestStructuredQueryRestrictsToTag(t *testing.T) {
	peers := communityStructured(t, 3)
	waitFor(t, 15*time.Second, "membership", func() bool {
		for _, p := range peers {
			if p.Directory().NumKnown() != len(peers) {
				return false
			}
		}
		return true
	})
	// Two docs: "gossip" in the title of one, only in the body of the
	// other.
	peers[1].Publish(`<paper><title>gossip epidemics</title><body>filler text</body></paper>`)
	peers[1].Publish(`<paper><title>storage systems</title><body>gossip mentioned in passing</body></paper>`)

	waitFor(t, 15*time.Second, "filters", func() bool {
		return len(peers[2].SearchAll("gossip")) == 2
	})
	// The plain query matches both; the scoped query only the title hit.
	plain := peers[2].SearchAll("gossip")
	if len(plain) != 2 {
		t.Fatalf("plain query = %d docs", len(plain))
	}
	scoped := peers[2].SearchAll("title:gossip")
	if len(scoped) != 1 {
		t.Fatalf("scoped query = %d docs, want 1", len(scoped))
	}
	// Ranked search with a scoped term behaves too.
	docs, _ := peers[2].Search("title:storage", 5)
	if len(docs) != 1 {
		t.Fatalf("ranked scoped query = %d docs", len(docs))
	}
}

// The paper's Section 2, advantage (4): a filter hit on an off-line peer
// means relevant documents may exist there; a persistent query
// effectively rendezvouses with the peer when it reconnects (its rejoin
// announcement re-triggers evaluation).
func TestPersistentQueryRendezvousWithRejoiningPeer(t *testing.T) {
	peers := community(t, 3, 0)
	waitFor(t, 15*time.Second, "membership", func() bool {
		for _, p := range peers {
			if p.Directory().NumKnown() != len(peers) {
				return false
			}
		}
		return true
	})
	peers[1].Publish(`<d>rendezvous target document</d>`)
	waitFor(t, 15*time.Second, "filter propagation", func() bool {
		docs, _ := peers[0].Search("rendezvous target", 2)
		return len(docs) == 1
	})

	// Peer 1 goes away; its documents are unreachable.
	addr1 := peers[1].Addr()
	_ = addr1
	peers[1].Stop()
	waitFor(t, 15*time.Second, "offline detection", func() bool {
		docs, _ := peers[0].Search("rendezvous target", 2)
		e, ok := peers[0].Directory().Entry(1)
		return len(docs) == 0 && ok && !e.Online
	})

	// Post the persistent query while the holder is off-line.
	got := make(chan search.DocResult, 4)
	cancel := peers[0].PostPersistentQuery("rendezvous target", func(d search.DocResult) {
		got <- d
	})
	defer cancel()
	select {
	case <-got:
		t.Fatal("match fired while holder offline")
	case <-time.After(200 * time.Millisecond):
	}

	// The holder reincarnates (same identity, new epoch) and republishes
	// its documents; the rejoin gossip triggers the rendezvous upcall.
	// Epoch 2: the reborn incarnation must supersede everything the old
	// one gossiped.
	reborn, err := NewPeer(Config{
		ID: 1, Capacity: 3, Gossip: fastGossip(), Seed: 99, Epoch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reborn.Stop)
	if err := reborn.Join(peers[0].Addr()); err != nil {
		t.Fatal(err)
	}
	reborn.Start()
	if _, err := reborn.Publish(`<d>rendezvous target document</d>`); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got:
		if d.Peer != 1 {
			t.Fatalf("match from peer %d, want 1", d.Peer)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("rendezvous upcall never fired after rejoin")
	}
}
