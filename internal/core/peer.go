// Package core implements the live PlanetP peer: the public object that
// ties together the local data store and inverted index, the Bloom-filter
// summary, gossip-based directory replication, the information brokerage,
// and content search and retrieval (Sections 1-5 of the paper).
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"planetp/internal/bloom"
	"planetp/internal/broker"
	"planetp/internal/directory"
	"planetp/internal/doc"
	"planetp/internal/filtercache"
	"planetp/internal/gossip"
	"planetp/internal/index"
	"planetp/internal/metrics"
	"planetp/internal/replica"
	"planetp/internal/search"
	"planetp/internal/store"
	"planetp/internal/text"
	"planetp/internal/transport"
)

// Config describes a live peer.
type Config struct {
	// ID is this peer's community id; ids must be unique within the
	// community and below Capacity.
	ID directory.PeerID
	// Name is a human-readable label (also salts the broker ring id).
	Name string
	// ListenAddr is the TCP listen address ("" = ephemeral loopback).
	ListenAddr string
	// Capacity is the community id-space size.
	Capacity int
	// Gossip tunes the protocol; zero fields take paper defaults. Tests
	// shrink the intervals to milliseconds.
	Gossip gossip.Config
	// Class is the peer's connectivity class (for bandwidth-aware
	// communities).
	Class directory.Class
	// Resolver fetches linked external files during indexing (nil =
	// index snippet text only).
	Resolver doc.Resolver
	// Seed makes the peer's randomized choices reproducible.
	Seed int64
	// BrokerTopFrac publishes this fraction of a document's most
	// frequent terms to the brokerage on Publish (PFS uses 0.10); 0
	// disables dual publication.
	BrokerTopFrac float64
	// BrokerDiscard is the snippet discard time for dual publication
	// (PFS uses 10 minutes).
	BrokerDiscard time.Duration
	// StructuredIndex additionally indexes every term scoped by its XML
	// element ("title:gossip"), enabling tag-restricted queries — the
	// extension the paper plans in footnote 2. Plain queries behave
	// identically; the cost is a larger term set per document.
	StructuredIndex bool
	// Epoch is this peer's incarnation number (default 1). A peer that
	// restarts without its previous in-memory state MUST supply a
	// larger epoch than any it gossiped before — a persisted boot
	// counter or a timestamp — or the community will reject its
	// announcements as stale gossip. When Restore is set, the epoch is
	// taken from the snapshot instead (and bumped automatically).
	Epoch uint32
	// Restore rebuilds the peer from a Snapshot (see Peer.Snapshot):
	// the stored documents are republished and the announced epoch
	// supersedes the previous incarnation's.
	Restore []byte
	// DataDir, when non-empty, makes the peer crash-safe durable: every
	// Publish/Remove is appended to a checksummed write-ahead log under
	// this directory, periodically folded into atomic snapshots, and
	// replayed on the next start. A restarted peer recovers its
	// documents and automatically announces an epoch superseding
	// everything its previous incarnation gossiped — no operator-managed
	// snapshot files or epoch counters needed. See Peer.Recovery for the
	// startup summary.
	DataDir string
	// Store fine-tunes the durable store (filesystem seam for fault
	// injection, compaction threshold, fsync batching). Dir and Metrics
	// are taken from DataDir and Metrics; only meaningful with DataDir.
	Store store.Options
	// Metrics receives the peer's counters across every layer (gossip,
	// transport, broker, search). Nil gets a fresh registry, so
	// Peer.Metrics() is always usable.
	Metrics *metrics.Registry
	// PoolConns caps the transport's idle pooled connections per peer
	// address. 0 takes the transport default (4); negative disables
	// pooling entirely (dial-per-RPC, same framed wire protocol).
	PoolConns int
	// PoolIdle is how long an unused pooled connection survives before
	// the transport reaps it. 0 takes the transport default (60 s).
	PoolIdle time.Duration
	// FilterCacheBudget bounds the resident bytes of decoded peer Bloom
	// filters held by the query engine's two-tier cache (compact
	// set-bit-position arrays for every probed peer, fully decompressed
	// filters for the hottest). 0 takes the 64 MiB default; negative
	// keeps only a minimal single-probe working set (for memory-starved
	// deployments). See metrics core_filter_cache_*.
	FilterCacheBudget int64
	// Replicas is the replication factor k for hot documents: the
	// community-wide copy target, origin included (the hottest document
	// gets k-1 replicas placed on its ring successors). 0 or 1 disables
	// replication — hits die with their owner, the paper's baseline.
	Replicas int
	// HoardBudget bounds the excess-capacity bytes this peer donates to
	// replica bodies (default 64 MiB). Adoption past the budget evicts
	// the least popular replicas first.
	HoardBudget int64
	// HoardInterval paces the hoarding loop (push hot docs, pull hot
	// docs, GC cooled replicas). 0 defaults to twice the gossip interval.
	HoardInterval time.Duration
	// HoardHalfLife is the popularity decay half-life (default 10
	// minutes; tests shrink it).
	HoardHalfLife time.Duration
}

// Peer is a live PlanetP community member.
type Peer struct {
	cfg  Config
	id   directory.PeerID
	dir  *directory.Directory
	node *gossip.Node
	tp   *transport.Transport

	mu          sync.Mutex
	store       *doc.Store
	index       *index.Index
	docOf       map[string]index.DocID // doc key -> local index id
	filter      *bloom.Filter
	counting    *bloom.Counting // deletion-aware twin of filter
	summary     *bloom.Summary  // incremental gossip summarization of filter
	broker      *broker.Broker
	watchers    []remoteWatch
	registry    *search.Registry
	searchCache *search.IPFCache
	view        *dirView
	userRng     *rand.Rand
	reg         *metrics.Registry
	stopCh      chan struct{}
	loopDone    chan struct{}
	started     bool
	closed      bool

	// Durable state (nil/zero unless Config.DataDir is set). replaying
	// is only true inside NewPeer while recovery republishes logged
	// operations; it suppresses re-logging them.
	st        *store.Store
	recovery  RecoverySummary
	replaying bool

	// Replication state: the replica manager is always constructed (it
	// also carries the popularity signal); repStore is its durable store
	// (nil without DataDir); hoardDone closes when the hoarding loop
	// exits.
	rep       *replica.Manager
	repStore  *store.Store
	hoardDone chan struct{}
	hoarding  bool
}

// remoteWatch is a brokerage watch registered by another peer.
type remoteWatch struct {
	keys    []string
	watcher directory.PeerID
}

// NewPeer constructs (but does not start) a peer.
func NewPeer(cfg Config) (*Peer, error) {
	if cfg.Capacity <= 0 {
		return nil, errors.New("core: Capacity must be positive")
	}
	if int(cfg.ID) < 0 || int(cfg.ID) >= cfg.Capacity {
		return nil, fmt.Errorf("core: ID %d outside capacity %d", cfg.ID, cfg.Capacity)
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("peer-%d", cfg.ID)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	p := &Peer{
		cfg:       cfg,
		id:        cfg.ID,
		dir:       directory.New(cfg.ID, cfg.Capacity),
		store:     doc.NewStore(),
		index:     index.New(),
		docOf:     make(map[string]index.DocID),
		filter:    bloom.Default(),
		counting:  bloom.DefaultCounting(),
		reg:       cfg.Metrics,
		stopCh:    make(chan struct{}),
		loopDone:  make(chan struct{}),
		hoardDone: make(chan struct{}),
	}
	p.summary = bloom.NewSummary(p.filter)
	p.view = &dirView{p: p, cache: filtercache.New(dirSource{p.dir}, filtercache.Config{
		Budget:  cfg.FilterCacheBudget,
		Metrics: cfg.Metrics,
	})}
	// Churned-out and superseded peers must release their cached filter
	// bytes immediately — without this hook they stayed resident until
	// the next probe of the same id (dropped peers: forever).
	p.dir.SetOnEvict(func(ids []directory.PeerID) {
		for _, id := range ids {
			p.view.cache.Invalidate(id)
			// An evicted or superseded record means the peer's old
			// address (or incarnation) is gone: pooled conns to it
			// must not carry another RPC. p.tp is nil only during
			// construction, before any eviction can fire.
			if tp := p.tp; tp != nil {
				tp.InvalidatePeer(id)
			}
		}
	})
	p.registry = search.NewRegistry(p.view, fetcher{p})
	// Shared IPF/rank cache for the query fast path: keyed by the
	// directory generation (via dirView.ViewVersion) and additionally
	// flushed on every filter notification through the registry.
	p.searchCache = search.NewIPFCache()
	p.registry.SetCache(p.searchCache)

	// Deferred: the transport reserves its port now (the self record
	// needs the bound address) but serves no inbound request until the
	// handler's dependencies — above all p.node — are wired. Without
	// this, a neighbor's join RPC racing peer construction dereferences
	// a nil gossip node.
	tp, err := transport.NewDeferred(cfg.ID, cfg.ListenAddr, (*handler)(p), p.resolveAddr, cfg.Seed, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	if cfg.PoolConns != 0 {
		tp.PoolConns = cfg.PoolConns
		if tp.PoolConns < 0 {
			tp.PoolConns = 0
		}
	}
	if cfg.PoolIdle > 0 {
		tp.PoolIdle = cfg.PoolIdle
	}
	p.tp = tp
	p.broker = broker.NewBroker(tp.Now)
	p.broker.SetMetrics(cfg.Metrics)

	gcfg := cfg.Gossip
	gcfg.Metrics = cfg.Metrics
	userOnNews := gcfg.OnNews
	gcfg.OnNews = func(rec directory.Record) {
		p.onNews(rec)
		if userOnNews != nil {
			userOnNews(rec)
		}
	}
	epoch := max32(1, cfg.Epoch)
	var snap Snapshot
	haveSnap := false
	if cfg.Restore != nil {
		var err error
		snap, err = DecodeSnapshotLimit(cfg.Restore, cfg.Store.MaxSnapshotBytes)
		if err != nil {
			tp.Close()
			return nil, err
		}
		// The restored incarnation supersedes the one that wrote the
		// snapshot.
		epoch = max32(epoch, snap.Epoch+1)
		haveSnap = true
	}
	var durableRec store.Recovery
	if cfg.DataDir != "" {
		st, rec, err := openStore(&cfg)
		if err != nil {
			tp.Close()
			return nil, err
		}
		p.st = st
		durableRec = rec
		// The restarted incarnation must supersede everything the dead
		// one could have gossiped: its durable version counters floor
		// the epoch bump.
		epoch = max32(epoch, rec.Epoch+1)
	}
	self := directory.Record{
		ID: cfg.ID, Class: cfg.Class, Addr: tp.Addr(),
		Ver:     directory.Version{Epoch: epoch},
		Payload: p.summary.Payload(),
	}
	self.PayloadSize = int32(len(self.Payload))
	p.node = gossip.NewNode(self, p.dir, gcfg, tp)
	if haveSnap {
		if err := p.restore(snap); err != nil {
			p.closeOnInitErr(tp)
			return nil, err
		}
	}
	if p.st != nil {
		if err := p.replayRecovery(durableRec); err != nil {
			p.closeOnInitErr(tp)
			return nil, err
		}
		p.st.SetSnapshotSource(p.snapshotSource)
	}
	// Replication mounts after the main store's recovery (restored own
	// documents must win any own-doc-vs-replica conflict) and before the
	// transport serves (an inbound ReplicaPut must find the manager).
	if err := p.setupReplica(); err != nil {
		p.closeOnInitErr(tp)
		return nil, err
	}
	tp.StartAccepting()
	return p, nil
}

// closeOnInitErr releases partially constructed resources when NewPeer
// fails after acquiring them.
func (p *Peer) closeOnInitErr(tp *transport.Transport) {
	tp.Close()
	if p.st != nil {
		p.st.Close()
	}
	if p.repStore != nil {
		p.repStore.Close()
	}
}

// ID returns the peer's community id.
func (p *Peer) ID() directory.PeerID { return p.id }

// Name returns the peer's label.
func (p *Peer) Name() string { return p.cfg.Name }

// Addr returns the peer's listen address.
func (p *Peer) Addr() string { return p.tp.Addr() }

// Directory exposes the peer's directory replica (read-mostly).
func (p *Peer) Directory() *directory.Directory { return p.dir }

// Node exposes the gossip engine (stats, interval).
func (p *Peer) Node() *gossip.Node { return p.node }

// Metrics returns the peer's metrics registry (never nil): one snapshot
// covers the gossip, transport, broker, and search layers.
func (p *Peer) Metrics() *metrics.Registry { return p.reg }

// Start launches the gossip loop.
func (p *Peer) Start() {
	p.mu.Lock()
	if p.started || p.closed {
		p.mu.Unlock()
		return
	}
	p.started = true
	hoard := p.rep != nil && p.rep.Factor() > 1
	p.hoarding = hoard
	p.mu.Unlock()
	go p.gossipLoop()
	if hoard {
		go p.hoardLoop()
	}
}

// Stop shuts the peer down.
func (p *Peer) Stop() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	started := p.started
	hoarding := p.hoarding
	p.mu.Unlock()
	close(p.stopCh)
	if started {
		<-p.loopDone
	}
	if hoarding {
		<-p.hoardDone
	}
	// Durable peers fold their full state into a final snapshot so the
	// next start replays nothing; the synced WAL covers a failure here.
	p.finalSnapshot()
	p.tp.Close()
}

// gossipLoop drives Tick at the node's (adaptive) interval, with a small
// random initial phase.
func (p *Peer) gossipLoop() {
	defer close(p.loopDone)
	interval := p.node.Interval()
	timer := time.NewTimer(time.Duration(p.cfg.Seed%7+1) * interval / 8)
	defer timer.Stop()
	for {
		select {
		case <-p.stopCh:
			return
		case d := <-p.tp.IntervalCh():
			// Interval changed: re-arm if it shrank.
			if d < interval {
				interval = d
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(d)
			}
		case <-timer.C:
			p.node.Tick()
			interval = p.node.Interval()
			timer.Reset(interval)
		}
	}
}

// Join bootstraps into an existing community via any member's address.
func (p *Peer) Join(seedAddr string) error {
	rec, err := p.tp.FetchRecord(seedAddr)
	if err != nil {
		return fmt.Errorf("core: join via %s: %w", seedAddr, err)
	}
	p.dir.Upsert(rec)
	return nil
}

// resolveAddr maps a peer id to its gossiped address.
func (p *Peer) resolveAddr(id directory.PeerID) (string, bool) {
	rec, ok := p.dir.Get(id)
	if !ok || rec.Addr == "" {
		return "", false
	}
	return rec.Addr, true
}

// onNews reacts to fresh gossip: persistent queries re-evaluate against
// the peer whose filter changed.
func (p *Peer) onNews(rec directory.Record) {
	p.registry.NotifyFilter(rec.ID)
}

// Publish shares an XML document with the community: it is stored
// locally, indexed, summarized into the Bloom filter, and the new filter
// is gossiped. When BrokerTopFrac > 0, the document's most frequent terms
// are also published to the brokerage (the PFS dual publication of
// Section 6). It returns the parsed document.
//
// Publish is the batch-of-one case of PublishBatch; callers ingesting
// many documents should batch them — one WAL commit, one index pass, and
// one gossiped filter diff cover the whole batch.
func (p *Peer) Publish(xml string) (*doc.Document, error) {
	docs, err := p.PublishBatch([]string{xml})
	if err != nil {
		return nil, err
	}
	return docs[0], nil
}

// selfVer reads the peer's current gossip version for stamping WAL
// records. It is read before taking p.mu so the gossip node's internal
// lock is never acquired under the peer mutex; the slight staleness is
// harmless — record versions only floor the restart epoch bump, and the
// bump raises the epoch past any seq within it.
func (p *Peer) selfVer() directory.Version {
	if p.st == nil || p.replaying {
		return directory.Version{}
	}
	return p.node.SelfRecord().Ver
}

// topTerms returns the ceil(frac * |terms|) most frequent terms (at least
// one), ties broken lexicographically for determinism.
func topTerms(freqs map[string]int, frac float64) []string {
	type tf struct {
		t string
		f int
	}
	all := make([]tf, 0, len(freqs))
	for t, f := range freqs {
		all = append(all, tf{t, f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].t < all[j].t
	})
	// Ceil of the exact fraction; the epsilon keeps float noise like
	// 0.2*5 == 1.0000000000000002 from rounding an integral product up.
	n := int(math.Ceil(frac*float64(len(all)) - 1e-9))
	if n < 1 {
		n = 1
	}
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].t
	}
	return out
}

// Remove unpublishes a document: the local store and index forget it.
// The gossiped Bloom filter is not shrunk immediately (plain filters
// cannot delete); stale bits persist — costing only false positives —
// until Compact rebuilds the filter. A counting twin tracks exactly how
// stale the gossiped filter has become (see StaleFraction).
func (p *Peer) Remove(docID string) bool {
	ver := p.selfVer()
	p.mu.Lock()
	if _, err := p.store.Get(docID); err != nil {
		p.mu.Unlock()
		return false
	}
	// Write-ahead, like Publish: a WAL failure means the removal is NOT
	// applied — the document stays, the caller sees false, and memory,
	// disk, and gossip remain consistent (no removal that silently
	// resurrects after a crash). The failure is counted so operators can
	// spot a sick disk.
	if err := p.logOp(store.OpRemove, docID, ver); err != nil {
		p.mu.Unlock()
		p.reg.Counter("store_wal_append_errors_total").Inc()
		return false
	}
	p.store.Delete(docID)
	if id, ok := p.docOf[docID]; ok {
		for _, t := range p.index.DocTerms(id) {
			p.counting.Remove(t)
		}
		p.index.RemoveDocument(id)
		delete(p.docOf, docID)
		p.counting.Remove(docMarker(docID))
	}
	p.mu.Unlock()
	p.maybeCompact()
	// Push death certificates to the replica placement so live holders
	// purge (and tombstone) the content instead of serving it forever.
	p.broadcastPurge(docID)
	return true
}

// StaleFraction reports the fraction of the currently gossiped filter's
// bits that removals have invalidated — 0 immediately after a Publish or
// Compact, approaching 1 as the peer unpublishes content. Callers can use
// a threshold (say 0.25) to decide when a Compact is worth its gossip
// cost.
func (p *Peer) StaleFraction() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	set := p.filter.SetBits()
	if set == 0 {
		return 0
	}
	stale, err := p.counting.StaleBits(p.filter)
	if err != nil {
		return 0
	}
	return float64(stale) / float64(set)
}

// Compact rebuilds the peer's Bloom filter from its live index contents,
// dropping every stale bit left behind by Remove, and gossips the fresh
// filter (a new version superseding the bloated one). It reports how many
// bits were cleaned.
func (p *Peer) Compact() int {
	p.mu.Lock()
	fresh := p.counting.ToFilter()
	cleaned := p.filter.SetBits() - fresh.SetBits()
	p.filter = fresh
	p.summary.Reset(fresh)
	payload := p.summary.Payload()
	p.mu.Unlock()
	// A compacted filter cannot be expressed as an additive diff — the
	// rumor carries the full replacement.
	p.node.Publish(len(payload), len(payload), payload)
	return cleaned
}

// LocalDocs returns the number of locally published documents.
func (p *Peer) LocalDocs() int { return p.store.Len() }

// --- query pipeline ---

// Terms runs the query pipeline over a raw query string, supporting both
// plain words and the structured "tag:word" syntax.
func Terms(query string) []string { return text.ParseQuery(query) }

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// Search runs the ranked TFxIPF search (Section 5.2) for a raw query.
func (p *Peer) Search(query string, k int) ([]search.ScoredDoc, search.Stats) {
	return p.SearchWith(query, search.Options{K: k})
}

// SearchWith runs a ranked search with caller-tuned options (contact
// group size, fan-out concurrency, per-peer timeout, stop-rule
// overrides). The peer's metrics registry and shared IPF/rank cache are
// filled in; the peer's fetcher is safe for concurrent use, so
// Concurrency > 1 overlaps the per-peer network latency within each
// contact group.
func (p *Peer) SearchWith(query string, opt search.Options) ([]search.ScoredDoc, search.Stats) {
	opt.Metrics = p.reg
	opt.Cache = p.searchCache
	return search.Ranked(p.view, fetcher{p}, Terms(query), opt)
}

// SearchVia delegates a ranked search to a better-connected peer, which
// runs the whole peer-contacting pipeline and returns only the top-k
// results — the paper's proxy search for modem-class members (Section
// 7.2's "support some form of proxy search, where modem-connected peers
// can ask peers with better connectivity to help with searches").
func (p *Peer) SearchVia(proxy directory.PeerID, query string, k int) ([]search.ScoredDoc, error) {
	if proxy == p.id {
		docs, _ := p.Search(query, k)
		return docs, nil
	}
	docs, err := p.tp.ProxySearch(proxy, Terms(query), k)
	if err != nil {
		p.dir.MarkOffline(proxy, p.tp.Now())
		return nil, err
	}
	return docs, nil
}

// userRandLocked returns the peer's user-facing random stream, separate
// from the gossip loop's (rand.Rand is not thread-safe and gossip owns
// the transport's). Callers must hold p.mu.
func (p *Peer) userRandLocked() *rand.Rand {
	if p.userRng == nil {
		p.userRng = rand.New(rand.NewSource(p.cfg.Seed ^ 0x5eed))
	}
	return p.userRng
}

// PickProxy chooses a random on-line fast-class peer to delegate searches
// to (None if the directory knows no such peer).
func (p *Peer) PickProxy() (directory.PeerID, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dir.PickOnline(p.userRandLocked(), func(id directory.PeerID, e directory.Entry) bool {
		return id != p.id && e.Class == directory.Fast
	})
}

// SearchAll runs the exhaustive conjunctive search (Section 5.1),
// consulting both the Bloom-filter candidates and the brokerage.
func (p *Peer) SearchAll(query string) []search.DocResult {
	terms := Terms(query)
	docs, _ := search.Exhaustive(p.view, fetcher{p}, terms, search.Options{Metrics: p.reg})
	// Also the appropriate brokers (Section 5.1).
	for _, sn := range p.brokerSearch(terms) {
		found := false
		for _, d := range docs {
			if d.Key == sn.ID {
				found = true
				break
			}
		}
		if !found {
			docs = append(docs, snippetResult(sn, terms))
		}
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].Key < docs[j].Key })
	return docs
}

// snippetResult converts a brokered snippet to a DocResult (term
// frequencies of 1 per advertised key — brokers store keys, not counts).
func snippetResult(sn broker.Snippet, terms []string) search.DocResult {
	freqs := make(map[string]int, len(terms))
	for _, t := range terms {
		if sn.HasKey(t) {
			freqs[t] = 1
		}
	}
	return search.DocResult{
		Peer: directory.PeerID(sn.Owner), Key: sn.ID,
		TermFreqs: freqs, DocLen: len(sn.Keys),
	}
}

// PostPersistentQuery registers a standing query (Section 5.1): fn fires
// for every new matching document, whether discovered via a gossiped
// Bloom filter or a brokered snippet. It returns a cancel function.
func (p *Peer) PostPersistentQuery(query string, fn func(search.DocResult)) func() {
	terms := Terms(query)
	_, cancel := p.registry.Post(terms, fn)
	// Register watches at the brokers for immediate notification of
	// fresh snippets.
	p.brokerWatch(terms)
	return cancel
}

// FetchDocument retrieves a document body from a specific peer (a
// search result names its holder). The local path also answers from the
// replica set — a replica-held hit carries Peer == this peer's id. For
// holder-agnostic fetches with failover, use ResolveDocument.
func (p *Peer) FetchDocument(owner directory.PeerID, key string) (string, error) {
	if owner == p.id {
		if d, err := p.store.Get(key); err == nil {
			p.recordHit(key)
			return d.Raw, nil
		}
		if p.rep != nil {
			if e, ok := p.rep.Get(key); ok {
				p.recordHit(key)
				return e.XML, nil
			}
		}
		return "", fmt.Errorf("%w: %s", doc.ErrNotFound, key)
	}
	return p.tp.GetDoc(owner, key)
}

// localQuery evaluates a query against the local index (both semantics).
func (p *Peer) localQuery(terms []string, all bool) []search.DocResult {
	p.mu.Lock()
	defer p.mu.Unlock()
	var ids []index.DocID
	if all {
		ids = p.index.SearchAll(terms)
	} else {
		ids = p.index.SearchAny(terms)
	}
	// Reverse-map index ids to doc keys.
	keyOf := make(map[index.DocID]string, len(p.docOf))
	for key, id := range p.docOf {
		keyOf[id] = key
	}
	out := make([]search.DocResult, 0, len(ids))
	for _, id := range ids {
		freqs := make(map[string]int, len(terms))
		for _, t := range terms {
			if f := p.index.Freq(id, t); f > 0 {
				freqs[t] = f
			}
		}
		out = append(out, search.DocResult{
			Peer: p.id, Key: keyOf[id], TermFreqs: freqs, DocLen: p.index.DocLen(id),
		})
	}
	return out
}
