package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"planetp/internal/metrics"
)

// slowSyncFS delays every file Sync, widening the window in which
// concurrent committers pile up behind the group-commit leader.
type slowSyncFS struct {
	FS
	delay time.Duration
}

func (s *slowSyncFS) Create(name string) (File, error) {
	f, err := s.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &slowSyncFile{File: f, delay: s.delay}, nil
}

func (s *slowSyncFS) OpenAppend(name string) (File, error) {
	f, err := s.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &slowSyncFile{File: f, delay: s.delay}, nil
}

type slowSyncFile struct {
	File
	delay time.Duration
}

func (f *slowSyncFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

// Concurrent appenders at SyncEvery=1 must share fsyncs through the
// commit barrier: every append is individually acknowledged durable, yet
// the number of flushes stays well below the number of appends, and
// every acknowledged record survives a crash that drops unsynced data.
func TestGroupCommitSharesFsyncs(t *testing.T) {
	mem := NewMemFS()
	reg := metrics.NewRegistry()
	st, _ := openMem(t, &slowSyncFS{FS: mem, delay: 200 * time.Microsecond}, Options{Metrics: reg})
	const workers, each = 8, 25
	var wg sync.WaitGroup
	var failed atomic.Int64
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := st.Append(Op{Kind: OpPublish, Data: fmt.Sprintf("w%d-%d", w, i), Epoch: 1, Seq: 1}); err != nil {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d concurrent appends failed", n)
	}
	fsyncs := reg.Counter("store_fsyncs_total").Value()
	if fsyncs >= workers*each {
		t.Errorf("group commit shared nothing: %d fsyncs for %d appends", fsyncs, workers*each)
	}
	if reg.Counter("store_group_commit_waiters").Value() == 0 {
		t.Error("no committer ever waited on a leader's flush")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Every append was acknowledged, so every record must be durable.
	mem.Crash(1)
	st2, rec := openMem(t, mem, Options{})
	defer st2.Close()
	if len(rec.Ops) != workers*each {
		t.Fatalf("recovered %d ops, want %d (acked records lost)", len(rec.Ops), workers*each)
	}
	seen := map[string]bool{}
	for i, op := range rec.Ops {
		if op.LSN != uint64(i+1) {
			t.Fatalf("op %d has LSN %d, want dense LSNs", i, op.LSN)
		}
		if seen[op.Data] {
			t.Fatalf("duplicate record %q", op.Data)
		}
		seen[op.Data] = true
	}
}

// AppendBatch writes the whole batch with one buffered write and commits
// it with exactly one fsync; the records carry dense LSNs and replay in
// order.
func TestAppendBatchSingleFsync(t *testing.T) {
	mem := NewMemFS()
	reg := metrics.NewRegistry()
	st, _ := openMem(t, mem, Options{Metrics: reg})
	base := reg.Counter("store_fsyncs_total").Value()
	ops := make([]Op, 10)
	for i := range ops {
		ops[i] = Op{Kind: OpPublish, Data: fmt.Sprintf("d%d", i), Epoch: 1, Seq: uint32(i + 1)}
	}
	last, err := st.AppendBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if last != 10 {
		t.Fatalf("last LSN = %d, want 10", last)
	}
	if got := reg.Counter("store_fsyncs_total").Value() - base; got != 1 {
		t.Fatalf("batch of 10 did %d fsyncs, want 1", got)
	}
	if got := reg.Counter("store_batch_appends_total").Value(); got != 1 {
		t.Fatalf("batch appends counter = %d, want 1", got)
	}
	if got := reg.Counter("store_wal_appends_total").Value(); got != 10 {
		t.Fatalf("append counter = %d, want 10", got)
	}
	if e, q := st.LastVersion(); e != 1 || q != 10 {
		t.Fatalf("version floor = %d.%d, want 1.10", e, q)
	}

	// Empty batch: no-op.
	if lsn, err := st.AppendBatch(nil); err != nil || lsn != 0 {
		t.Fatalf("empty batch: lsn=%d err=%v", lsn, err)
	}

	st.Close()
	st2, rec := openMem(t, mem, Options{})
	defer st2.Close()
	if len(rec.Ops) != 10 {
		t.Fatalf("recovered %d ops, want 10", len(rec.Ops))
	}
	for i, op := range rec.Ops {
		if want := fmt.Sprintf("d%d", i); op.Data != want || op.LSN != uint64(i+1) {
			t.Fatalf("op %d = %q/LSN %d, want %q/LSN %d", i, op.Data, op.LSN, want, i+1)
		}
	}
}

// Snapshots racing concurrent appends and in-flight leader fsyncs must
// neither deadlock nor lose an acknowledged record.
func TestGroupCommitSnapshotRace(t *testing.T) {
	mem := NewMemFS()
	st, _ := openMem(t, &slowSyncFS{FS: mem, delay: 100 * time.Microsecond}, Options{})
	const workers, each = 4, 15
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := st.Append(Op{Kind: OpPublish, Data: fmt.Sprintf("w%d-%d", w, i), Epoch: 1, Seq: 1}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	// Snapshots fire while appends (and their leader fsyncs) are live.
	// The payload is captured while appends continue, so it pairs with
	// the fold LSN only loosely — use an empty payload folding through
	// nothing (FoldLSN 0) plus the full replay to keep it consistent.
	for i := 0; i < 5; i++ {
		time.Sleep(200 * time.Microsecond)
		if err := st.SaveSnapshot(SnapshotData{Payload: nil, Epoch: 1, Seq: 1, FoldLSN: 0}); err != nil {
			t.Errorf("snapshot: %v", err)
		}
	}
	wg.Wait()
	st.Close()

	mem.Crash(3)
	st2, rec := openMem(t, mem, Options{})
	defer st2.Close()
	if len(rec.Ops) != workers*each {
		t.Fatalf("recovered %d ops, want %d", len(rec.Ops), workers*each)
	}
}

// The batched crash-point suite: a workload of AppendBatch calls crashed
// at every filesystem operation index under every mode. Recovery must
// always land on an op-prefix of the batch sequence that includes every
// acknowledged batch — a crash may split the in-flight batch (its tail
// truncates like any torn tail) but can never lose an acked one or
// reorder records.
func TestCrashPointBatchedAppends(t *testing.T) {
	batches := [][]string{
		{"b0-0", "b0-1", "b0-2"},
		{"b1-0"},
		{"b2-0", "b2-1", "b2-2", "b2-3"},
		{"b3-0", "b3-1"},
		{"b4-0", "b4-1", "b4-2", "b4-3", "b4-4"},
	}
	var flat []string
	for _, b := range batches {
		flat = append(flat, b...)
	}

	// run drives the batches, returning how many ops were in batches
	// that were acknowledged (AppendBatch returned nil) before a crash.
	run := func(fs FS) (acked int, err error) {
		st, _, err := Open(Options{Dir: "p", FS: fs})
		if err != nil {
			return 0, err
		}
		defer st.Close()
		seq := uint32(0)
		for _, b := range batches {
			ops := make([]Op, len(b))
			for i, d := range b {
				seq++
				ops[i] = Op{Kind: OpPublish, Data: d, Epoch: 1, Seq: seq}
			}
			if _, err := st.AppendBatch(ops); err != nil {
				return acked, err
			}
			acked += len(b)
		}
		return acked, st.Close()
	}

	dry := NewFaultFS(NewMemFS(), 0)
	if _, err := run(dry); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	totalOps := dry.Ops()

	for _, mode := range []CrashMode{CrashStop, CrashTorn, CrashShort, CrashFsyncFail} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			for at := int64(0); at < totalOps; at++ {
				mem := NewMemFS()
				ffs := NewFaultFS(mem, 0xBA7C4+at)
				ffs.CrashAt(at, mode)
				acked, err := run(ffs)
				if err != nil && !errors.Is(err, ErrCrashed) {
					t.Fatalf("crash at %d: unexpected error: %v", at, err)
				}
				mem.Crash(at * 13)

				_, rec := recoveredState(t, mem)
				if len(rec.Ops) < acked {
					t.Fatalf("crash at %d (%s): %d acked ops but only %d recovered",
						at, mode, acked, len(rec.Ops))
				}
				for i, op := range rec.Ops {
					if i >= len(flat) || op.Data != flat[i] {
						t.Fatalf("crash at %d (%s): recovered op %d = %q, not an op-prefix of the batch sequence",
							at, mode, i, op.Data)
					}
				}
			}
		})
	}
}
