package store

import "sync"

// FaultFS wraps any FS with deterministic disk-fault injection — the
// filesystem counterpart of internal/faultnet. Every mutating operation
// (write, sync, create, rename, truncate) consumes one operation index;
// CrashAt schedules a crash at a chosen index with a chosen failure
// mode. After the crash point every operation fails with ErrCrashed and
// has no effect, modeling a process that died mid-protocol. Combine with
// MemFS.Crash to additionally lose unsynced data, then reopen the store
// on the bare inner FS to exercise recovery.
//
// Enumerating every operation index of a workload (see Ops) and crashing
// at each one in turn is the crash-point suite: recovery must restore a
// consistent pre- or post-operation state from every possible crash.
type FaultFS struct {
	inner FS
	seed  int64

	mu      sync.Mutex
	ops     int64
	crashAt int64
	mode    CrashMode
	crashed bool
}

// CrashMode selects how the scheduled operation fails.
type CrashMode uint8

const (
	// CrashStop fails the operation before it does anything.
	CrashStop CrashMode = iota
	// CrashTorn applies to a write: a seeded-length prefix of the buffer
	// reaches the file, then the process dies.
	CrashTorn
	// CrashShort applies to a write: all but the final byte reaches the
	// file — the classic one-byte-short torn tail.
	CrashShort
	// CrashFsyncFail applies to a sync: the data stays volatile and the
	// sync call errors, then the process dies.
	CrashFsyncFail
)

// String names the mode for test output.
func (m CrashMode) String() string {
	switch m {
	case CrashStop:
		return "stop"
	case CrashTorn:
		return "torn"
	case CrashShort:
		return "short"
	case CrashFsyncFail:
		return "fsync-fail"
	}
	return "unknown"
}

// errCrashed is the sentinel every post-crash operation returns.
type errCrashedT struct{}

func (errCrashedT) Error() string { return "store: injected crash" }

// ErrCrashed is returned by every FaultFS operation at and after the
// injected crash point.
var ErrCrashed error = errCrashedT{}

// NewFaultFS wraps inner. seed drives torn-write cut lengths.
func NewFaultFS(inner FS, seed int64) *FaultFS {
	return &FaultFS{inner: inner, seed: seed, crashAt: -1}
}

// CrashAt schedules a crash at operation index op (0-based over all
// counted operations) with the given mode. Pass op < 0 to disarm.
func (f *FaultFS) CrashAt(op int64, mode CrashMode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = op
	f.mode = mode
}

// Ops returns how many operations have been counted so far (run a
// workload once with no crash scheduled to learn its operation count).
func (f *FaultFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the scheduled crash has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step consumes one operation index and returns the mode to inject for
// this operation (ok=false means proceed normally).
func (f *FaultFS) step() (CrashMode, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return CrashStop, true
	}
	op := f.ops
	f.ops++
	if f.crashAt >= 0 && op == f.crashAt {
		f.crashed = true
		return f.mode, true
	}
	return 0, false
}

// tornCut picks the seeded prefix length for a torn write.
func (f *FaultFS) tornCut(n int) int {
	if n <= 0 {
		return 0
	}
	f.mu.Lock()
	op := f.ops
	f.mu.Unlock()
	return int(mix64(uint64(f.seed)^mix64(uint64(op))) % uint64(n))
}

// MkdirAll implements FS (not counted: metadata-only, crash-irrelevant).
func (f *FaultFS) MkdirAll(path string) error {
	if f.Crashed() {
		return ErrCrashed
	}
	return f.inner.MkdirAll(path)
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if _, inject := f.step(); inject {
		return nil, ErrCrashed
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// OpenAppend implements FS.
func (f *FaultFS) OpenAppend(name string) (File, error) {
	if _, inject := f.step(); inject {
		return nil, ErrCrashed
	}
	file, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// ReadFile implements FS (reads are not counted; a crashed process
// cannot read at all).
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.inner.ReadFile(name)
}

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	if _, inject := f.step(); inject {
		return ErrCrashed
	}
	return f.inner.Rename(oldname, newname)
}

// Truncate implements FS.
func (f *FaultFS) Truncate(name string, size int64) error {
	if _, inject := f.step(); inject {
		return ErrCrashed
	}
	return f.inner.Truncate(name, size)
}

// Size implements FS (not counted).
func (f *FaultFS) Size(name string) (int64, error) {
	if f.Crashed() {
		return 0, ErrCrashed
	}
	return f.inner.Size(name)
}

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	if _, inject := f.step(); inject {
		return ErrCrashed
	}
	return f.inner.SyncDir(dir)
}

// faultFile wraps a File, injecting per-operation faults.
type faultFile struct {
	fs    *FaultFS
	inner File
}

// Write implements File.
func (ff *faultFile) Write(p []byte) (int, error) {
	mode, inject := ff.fs.step()
	if !inject {
		return ff.inner.Write(p)
	}
	switch mode {
	case CrashTorn:
		cut := ff.fs.tornCut(len(p))
		if cut > 0 {
			ff.inner.Write(p[:cut])
		}
	case CrashShort:
		if len(p) > 1 {
			ff.inner.Write(p[:len(p)-1])
		}
	}
	return 0, ErrCrashed
}

// Sync implements File.
func (ff *faultFile) Sync() error {
	mode, inject := ff.fs.step()
	if !inject {
		return ff.inner.Sync()
	}
	// CrashFsyncFail and every other mode at a sync point: the data
	// stays volatile and the process dies.
	_ = mode
	return ErrCrashed
}

// Close implements File (not counted; closing is crash-equivalent).
func (ff *faultFile) Close() error { return ff.inner.Close() }
