package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Snapshot on-disk format:
//
//	magic   4 bytes  "PPS1"
//	epoch   uint32 LE — gossip version at snapshot time
//	seq     uint32 LE
//	lsn     uint64 LE — WAL position the snapshot folds through
//	length  uint64 LE — payload length
//	crc     uint32 LE — CRC32C of header[0:28] ++ payload
//	payload bytes     — opaque to the store (core's gob-encoded Snapshot)
//
// The CRC covers the header fields as well as the payload, so a bit flip
// in the version counters is as detectable as one in the data. Snapshots
// are written to a temp file, fsynced, and renamed into place; the
// displaced previous snapshot is kept as a fallback (snapshot.pps.prev)
// TOGETHER WITH the WAL generation it pairs with (wal.ppl.prev, rotated
// aside rather than discarded), so a corrupt current snapshot degrades
// to the prior snapshot plus a longer, gapless WAL replay across both
// generations instead of to data loss. Only if both snapshot
// generations are unreadable can state older than the previous fold be
// lost — and then the quarantined files still hold the bytes.

var snapMagic = []byte("PPS1")

const snapHeaderSize = 4 + 4 + 4 + 8 + 8 + 4

// Header describes a snapshot file's version counters: the durable
// record of the highest gossip version the writing incarnation could
// have announced as of the snapshot, and the WAL position it folds
// through. Recovery adopts the payload only if the decoded snapshot's
// counters match (see core's monotonicity validation).
type Header struct {
	Epoch, Seq uint32
	LSN        uint64
}

// encodeSnapshot frames a payload into a snapshot file image.
func encodeSnapshot(hdr Header, payload []byte) []byte {
	buf := make([]byte, snapHeaderSize+len(payload))
	copy(buf[0:4], snapMagic)
	binary.LittleEndian.PutUint32(buf[4:8], hdr.Epoch)
	binary.LittleEndian.PutUint32(buf[8:12], hdr.Seq)
	binary.LittleEndian.PutUint64(buf[12:20], hdr.LSN)
	binary.LittleEndian.PutUint64(buf[20:28], uint64(len(payload)))
	copy(buf[snapHeaderSize:], payload)
	crc := crc32.Checksum(buf[0:28], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(buf[28:32], crc)
	return buf
}

// errBadSnapshot marks an unreadable snapshot file (quarantined, never
// deleted).
var errBadSnapshot = errors.New("store: corrupt snapshot file")

// decodeSnapshot validates a snapshot file image and returns its header
// and payload.
func decodeSnapshot(buf []byte, maxPayload int64) (Header, []byte, error) {
	if len(buf) < snapHeaderSize || string(buf[0:4]) != string(snapMagic) {
		return Header{}, nil, errBadSnapshot
	}
	length := binary.LittleEndian.Uint64(buf[20:28])
	if length > uint64(maxPayload) || uint64(len(buf)-snapHeaderSize) < length {
		return Header{}, nil, errBadSnapshot
	}
	payload := buf[snapHeaderSize : snapHeaderSize+int(length)]
	crc := crc32.Checksum(buf[0:28], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != binary.LittleEndian.Uint32(buf[28:32]) {
		return Header{}, nil, errBadSnapshot
	}
	hdr := Header{
		Epoch: binary.LittleEndian.Uint32(buf[4:8]),
		Seq:   binary.LittleEndian.Uint32(buf[8:12]),
		LSN:   binary.LittleEndian.Uint64(buf[12:20]),
	}
	return hdr, payload, nil
}
