// Package store is PlanetP's crash-safe persistence subsystem: an
// append-only write-ahead log of publish/remove operations plus atomic
// checksummed snapshots, folded together by size-triggered compaction.
// A peer that crashes — mid-write, mid-fsync, mid-rename — recovers to a
// consistent pre- or post-operation state, never a corrupt one, and
// learns the version counters it must supersede when it rejoins the
// community (the paper's epoch-supersession requirement, §2/§6).
//
// Durability protocol:
//
//   - Every publish/remove appends one length-prefixed, CRC32C-checksummed
//     record to wal.ppl and fsyncs (batchable via Options.SyncEvery).
//   - Snapshots are written to a temp file, fsynced, and renamed into
//     place; the previous snapshot AND the WAL generation it pairs with
//     are kept as a fallback (snapshot.pps.prev + wal.ppl.prev) until
//     the next compaction replaces them, so falling back to the prior
//     snapshot replays a gapless operation history.
//   - Rotation stamps the snapshot with the fold LSN captured atomically
//     with its payload and carries any later records into the fresh log,
//     so an append racing a compaction is never rotated away.
//   - Recovery replays snapshot + the merged WAL generations, truncates
//     the log at the first torn or corrupt record, and quarantines
//     unreadable files aside — nothing is ever deleted.
//
// All file I/O goes through the FS seam so tests inject deterministic
// disk faults (see FaultFS and MemFS) in the same spirit as
// internal/faultnet injects network faults.
package store

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// FS abstracts the handful of filesystem operations the store performs,
// so deterministic fault injection can sit between the store and the
// disk. The production implementation is OSFS; tests use MemFS (pure
// in-memory, with fsync-aware crash simulation) and FaultFS (seeded torn
// writes, short writes, fsync failures, and crash points over any FS).
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string) error
	// Create opens a file for writing, truncating it if it exists.
	Create(name string) (File, error)
	// OpenAppend opens a file for appending, creating it if missing.
	OpenAppend(name string) (File, error)
	// ReadFile returns a file's full contents.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Truncate cuts a file to size bytes.
	Truncate(name string, size int64) error
	// Size returns a file's length, or an error wrapping fs.ErrNotExist.
	Size(name string) (int64, error)
	// SyncDir fsyncs a directory so renames within it are durable.
	SyncDir(dir string) error
}

// File is a writable file handle.
type File interface {
	io.Writer
	// Sync commits buffered data to stable storage.
	Sync() error
	// Close releases the handle (without syncing).
	Close() error
}

// OSFS is the production FS backed by the operating system.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// OpenAppend implements FS.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// Size implements FS.
func (OSFS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// SyncDir implements FS. Platforms whose directory handles reject fsync
// report success — the rename itself is the best available barrier there.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !isSyncUnsupported(err) {
		return err
	}
	return nil
}

func isSyncUnsupported(err error) bool {
	var pe *fs.PathError
	if !errors.As(err, &pe) {
		return false
	}
	return pe.Op == "sync" || pe.Op == "fsync"
}

// join builds paths within the store directory.
func join(dir, name string) string { return filepath.Join(dir, name) }
