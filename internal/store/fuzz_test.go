package store

import (
	"bytes"
	"testing"
)

// FuzzWALRecord feeds arbitrary bytes to the WAL record decoder (the
// exact code path recovery runs over a torn log): it must return a
// record or reject, never panic, never over-read, and anything it
// accepts must re-encode byte-identically.
func FuzzWALRecord(f *testing.F) {
	f.Add(encodeRecord(Op{Kind: OpPublish, Data: "<d>hello</d>", Epoch: 1, Seq: 2, LSN: 3}))
	f.Add(encodeRecord(Op{Kind: OpRemove, Data: "key-1", Epoch: 7, Seq: 0, LSN: 99}))
	f.Add(encodeRecord(Op{Kind: OpPublish, Data: "", Epoch: 0, Seq: 0, LSN: 1}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // hostile length prefix
	f.Add(append(encodeRecord(Op{Kind: OpPublish, Data: "torn", LSN: 5}), 0xde, 0xad))
	f.Fuzz(func(t *testing.T, buf []byte) {
		const maxRecord = 1 << 20
		op, n, err := decodeRecord(buf, maxRecord)
		if err != nil {
			return
		}
		if n < walRecordOverhead || n > len(buf) {
			t.Fatalf("consumed %d of %d bytes", n, len(buf))
		}
		if op.Kind != OpPublish && op.Kind != OpRemove {
			t.Fatalf("accepted unknown kind %d", op.Kind)
		}
		if len(op.Data) > maxRecord {
			t.Fatalf("accepted %d-byte payload past the %d limit", len(op.Data), maxRecord)
		}
		// Round-trip: re-encoding what decoded must reproduce the bytes.
		if got := encodeRecord(op); !bytes.Equal(got, buf[:n]) {
			t.Fatalf("re-encode differs:\n got %x\nwant %x", got, buf[:n])
		}
		// The scanner must agree with the single-record decoder.
		ops, validEnd, _ := scanWAL(buf, maxRecord, 0)
		if op.LSN > 0 && (len(ops) == 0 || ops[0] != op) {
			t.Fatalf("scanWAL disagrees with decodeRecord: %v vs %v", ops, op)
		}
		if validEnd > len(buf) {
			t.Fatalf("scanWAL consumed %d of %d bytes", validEnd, len(buf))
		}
	})
}
