package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// WAL on-disk format. The file opens with a 4-byte magic; each record is
//
//	length  uint32 LE  — payload length in bytes
//	crc     uint32 LE  — CRC32C (Castagnoli) of the payload
//	payload:
//	  kind  byte       — OpPublish or OpRemove
//	  lsn   uint64 LE  — globally monotonic log sequence number
//	  epoch uint32 LE  — gossip version after the operation
//	  seq   uint32 LE
//	  data  bytes      — document XML (publish) or document key (remove)
//
// A record is valid only if its length is in bounds, its CRC matches,
// its kind is known, and its LSN strictly exceeds the previous record's.
// Recovery reads records until the first violation and truncates the
// file there: everything before the tear is kept, everything after is
// unreachable anyway (appends are strictly ordered), so dropping it
// restores the longest consistent prefix.

// walMagic opens every WAL file (format version is the trailing digit).
var walMagic = []byte("PPW1")

// walRecordOverhead is the framing + fixed payload header size.
const walRecordOverhead = 4 + 4 + 1 + 8 + 4 + 4

// castagnoli is the CRC32C table (same polynomial storage systems use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// OpKind distinguishes WAL operations.
type OpKind uint8

const (
	// OpPublish records a published document (Data = raw XML).
	OpPublish OpKind = 1
	// OpRemove records an unpublished document (Data = document key).
	OpRemove OpKind = 2
)

// Op is one logged operation. LSN is assigned by Append and populated on
// recovery; Epoch/Seq are the peer's gossip version after the operation,
// so recovery knows the highest version the dead incarnation could have
// announced.
type Op struct {
	Kind       OpKind
	Data       string
	Epoch, Seq uint32
	LSN        uint64
}

// encodeRecord frames one op into a WAL record.
func encodeRecord(op Op) []byte {
	return encodeRecordInto(nil, op)
}

// encodeRecordInto appends op's encoded record to dst (batch appends
// build one contiguous buffer for a single write call).
func encodeRecordInto(dst []byte, op Op) []byte {
	payloadLen := 1 + 8 + 4 + 4 + len(op.Data)
	start := len(dst)
	dst = append(dst, make([]byte, 8+payloadLen)...)
	buf := dst[start:]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(payloadLen))
	payload := buf[8:]
	payload[0] = byte(op.Kind)
	binary.LittleEndian.PutUint64(payload[1:9], op.LSN)
	binary.LittleEndian.PutUint32(payload[9:13], op.Epoch)
	binary.LittleEndian.PutUint32(payload[13:17], op.Seq)
	copy(payload[17:], op.Data)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	return dst
}

// errBadRecord marks a torn/corrupt record (recovery truncates there;
// it is not an I/O failure).
var errBadRecord = errors.New("store: torn or corrupt WAL record")

// decodeRecord parses the record at the head of buf. It returns the op
// and the total bytes consumed, or errBadRecord if the head is not a
// complete, checksummed, well-formed record.
func decodeRecord(buf []byte, maxRecord int) (Op, int, error) {
	if len(buf) < 8 {
		return Op{}, 0, errBadRecord
	}
	payloadLen := int(binary.LittleEndian.Uint32(buf[0:4]))
	if payloadLen < 17 || payloadLen > maxRecord || payloadLen > len(buf)-8 {
		return Op{}, 0, errBadRecord
	}
	payload := buf[8 : 8+payloadLen]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(buf[4:8]) {
		return Op{}, 0, errBadRecord
	}
	op := Op{
		Kind:  OpKind(payload[0]),
		LSN:   binary.LittleEndian.Uint64(payload[1:9]),
		Epoch: binary.LittleEndian.Uint32(payload[9:13]),
		Seq:   binary.LittleEndian.Uint32(payload[13:17]),
		Data:  string(payload[17:]),
	}
	if op.Kind != OpPublish && op.Kind != OpRemove {
		return Op{}, 0, errBadRecord
	}
	return op, 8 + payloadLen, nil
}

// scanWAL parses a WAL file body (after the magic): the valid record
// prefix, the byte offset where the valid prefix ends (relative to the
// start of data), and how many trailing bytes were dropped. lastLSN
// seeds the monotonicity check (0 for a fresh file).
func scanWAL(data []byte, maxRecord int, lastLSN uint64) (ops []Op, validEnd int, droppedBytes int) {
	off := 0
	for off < len(data) {
		op, n, err := decodeRecord(data[off:], maxRecord)
		if err != nil || op.LSN <= lastLSN {
			break
		}
		ops = append(ops, op)
		lastLSN = op.LSN
		off += n
	}
	return ops, off, len(data) - off
}

// String renders an op for logs.
func (op Op) String() string {
	kind := "publish"
	if op.Kind == OpRemove {
		kind = "remove"
	}
	return fmt.Sprintf("%s lsn=%d v%d.%d (%d bytes)", kind, op.LSN, op.Epoch, op.Seq, len(op.Data))
}
