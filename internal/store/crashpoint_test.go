package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// The crash-point suite: run a fixed workload — appends, an explicit
// snapshot, a compaction — and crash it at EVERY filesystem operation
// index, under every failure mode (stop, torn write, short write, fsync
// failure). After each crash the unsynced page cache is lost
// (MemFS.Crash) and the store is reopened on the bare filesystem.
// Recovery must always reconstruct the state after some prefix of the
// logical operations — a consistent pre- or post-operation state, never
// a corrupt or reordered one.

// logicalOp is one step of the crash workload.
type logicalOp struct {
	kind OpKind // 0 = snapshot
	key  string
	seq  uint32
}

// crashWorkload is the scripted operation sequence. d1 is removed after
// a snapshot so replay ordering matters; the final publishes push the
// WAL over the tiny compaction threshold.
var crashWorkload = []logicalOp{
	{OpPublish, "d0", 1},
	{OpPublish, "d1", 2},
	{OpPublish, "d2", 3},
	{0, "", 3}, // snapshot at v1.3
	{OpRemove, "d1", 3},
	{OpPublish, "d3", 4},
	{OpPublish, "d4", 5},
	{OpRemove, "d0", 5},
	{OpPublish, "d5-padding-padding-padding-padding-padding", 6},
	{OpPublish, "d6", 7},
}

// docSet applies the first n logical ops and renders the resulting doc
// set canonically ("d2,d3"). Snapshot steps do not change state.
func docSet(n int) string {
	docs := map[string]bool{}
	for _, op := range crashWorkload[:n] {
		switch op.kind {
		case OpPublish:
			docs[op.key] = true
		case OpRemove:
			delete(docs, op.key)
		}
	}
	keys := make([]string, 0, len(docs))
	for k := range docs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// verAfter returns the workload version after n logical ops.
func verAfter(n int) uint32 {
	if n == 0 {
		return 0
	}
	return crashWorkload[n-1].seq
}

// runWorkload drives the workload against fs until completion or the
// injected crash. The snapshot source is wired so the store's own
// compaction participates in the crash surface.
func runWorkload(fs FS) error {
	st, _, err := Open(Options{Dir: "p", FS: fs, CompactBytes: 300})
	if err != nil {
		return err
	}
	defer st.Close()
	applied := 0
	st.SetSnapshotSource(func() (SnapshotData, error) {
		return SnapshotData{
			Payload: []byte(docSet(applied)),
			Epoch:   1, Seq: verAfter(applied),
			FoldLSN: st.LastLSN(),
		}, nil
	})
	for i, op := range crashWorkload {
		if op.kind == 0 {
			if err := st.SaveSnapshot(SnapshotData{
				Payload: []byte(docSet(i)),
				Epoch:   1, Seq: op.seq,
				FoldLSN: st.LastLSN(),
			}); err != nil {
				return err
			}
		} else {
			if _, err := st.Append(Op{Kind: op.kind, Data: op.key, Epoch: 1, Seq: op.seq}); err != nil {
				return err
			}
			applied = i + 1
			// Compaction runs as a separate step after the append commits
			// (mirroring core.Peer), inside the crash surface. The source
			// reads `applied` and the log tail together — payload and fold
			// LSN are a consistent pair, as core captures them under p.mu.
			if err := st.MaybeCompact(); err != nil {
				return err
			}
		}
		applied = i + 1
	}
	return st.Close()
}

// recoveredState reopens the store and folds snapshot + ops into the
// canonical doc-set rendering.
func recoveredState(t *testing.T, fs FS) (string, Recovery) {
	t.Helper()
	st, rec, err := Open(Options{Dir: "p", FS: fs})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer st.Close()
	docs := map[string]bool{}
	if rec.Snapshot != nil {
		for _, k := range strings.Split(string(rec.Snapshot), ",") {
			if k != "" {
				docs[k] = true
			}
		}
	}
	for _, op := range rec.Ops {
		switch op.Kind {
		case OpPublish:
			docs[op.Data] = true
		case OpRemove:
			delete(docs, op.Data)
		}
	}
	keys := make([]string, 0, len(docs))
	for k := range docs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ","), rec
}

func TestCrashPointRecovery(t *testing.T) {
	// Dry run: count the workload's filesystem operations.
	dry := NewFaultFS(NewMemFS(), 0)
	if err := runWorkload(dry); err != nil {
		t.Fatalf("dry run failed: %v", err)
	}
	totalOps := dry.Ops()
	if totalOps < 20 {
		t.Fatalf("workload too small to be interesting: %d fs ops", totalOps)
	}

	// Every prefix of the logical workload is a consistent state.
	validStates := map[string][]uint32{}
	for n := 0; n <= len(crashWorkload); n++ {
		s := docSet(n)
		validStates[s] = append(validStates[s], verAfter(n))
	}

	modes := []CrashMode{CrashStop, CrashTorn, CrashShort, CrashFsyncFail}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			for at := int64(0); at < totalOps; at++ {
				mem := NewMemFS()
				ffs := NewFaultFS(mem, 0xC0FFEE+at)
				ffs.CrashAt(at, mode)
				err := runWorkload(ffs)
				if err == nil && ffs.Crashed() {
					t.Fatalf("crash at op %d swallowed", at)
				}
				if err != nil && !errors.Is(err, ErrCrashed) {
					t.Fatalf("crash at op %d surfaced unexpected error: %v", at, err)
				}
				// Power loss: unsynced bytes (partially) vanish.
				mem.Crash(at * 7)

				state, rec := recoveredState(t, mem)
				vers, ok := validStates[state]
				if !ok {
					t.Fatalf("crash at op %d (%s): recovered state %q matches no workload prefix",
						at, mode, state)
				}
				verOK := false
				for _, v := range vers {
					if rec.Seq == v {
						verOK = true
						break
					}
				}
				// The recovered version floor may exceed the matched
				// prefix's version when a remove's record survived but
				// its effect equals an earlier state — it must never
				// exceed the final version.
				if !verOK && rec.Seq > verAfter(len(crashWorkload)) {
					t.Fatalf("crash at op %d (%s): recovered version 1.%d beyond workload end",
						at, mode, rec.Seq)
				}
				if rec.Epoch > 1 {
					t.Fatalf("crash at op %d (%s): recovered epoch %d, never written", at, mode, rec.Epoch)
				}
			}
		})
	}
}

// A crashed-and-recovered store must also recover identically when
// reopened twice (recovery is idempotent: the truncation it performs
// leaves a clean log).
func TestCrashRecoveryIdempotent(t *testing.T) {
	for at := int64(0); at < 40; at += 3 {
		mem := NewMemFS()
		ffs := NewFaultFS(mem, 99)
		ffs.CrashAt(at, CrashTorn)
		runWorkload(ffs)
		mem.Crash(at)

		s1, r1 := recoveredState(t, mem)
		s2, r2 := recoveredState(t, mem)
		if s1 != s2 {
			t.Fatalf("crash at %d: recovery not idempotent: %q then %q", at, s1, s2)
		}
		if r2.TruncatedRecords != 0 {
			t.Fatalf("crash at %d: second recovery still truncating (%d records)", at, r2.TruncatedRecords)
		}
		_ = r1
	}
}

// Fsync batching widens the loss window but must never widen it into
// inconsistency: with SyncEvery=4, recovery after a crash at any append
// yields a prefix of the appended ops.
func TestCrashWithBatchedFsync(t *testing.T) {
	for at := int64(0); at < 30; at++ {
		mem := NewMemFS()
		ffs := NewFaultFS(mem, 7)
		ffs.CrashAt(at, CrashStop)
		st, _, err := Open(Options{Dir: "p", FS: ffs, SyncEvery: 4})
		if err != nil {
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("open: %v", err)
			}
			continue
		}
		for i := 0; i < 12; i++ {
			if _, err := st.Append(Op{Kind: OpPublish, Data: fmt.Sprintf("d%02d", i), Epoch: 1, Seq: uint32(i + 1)}); err != nil {
				break
			}
		}
		st.Close()
		mem.Crash(at)

		_, rec := recoveredState(t, mem)
		for i, op := range rec.Ops {
			if want := fmt.Sprintf("d%02d", i); op.Data != want {
				t.Fatalf("crash at %d: op %d = %q, want %q (not a prefix)", at, i, op.Data, want)
			}
		}
	}
}
