package store

import (
	"fmt"
	"strings"
	"testing"

	"planetp/internal/metrics"
)

func openMem(t *testing.T, fs FS, opts Options) (*Store, Recovery) {
	t.Helper()
	opts.Dir = "peer0"
	opts.FS = fs
	st, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st, rec
}

func TestEmptyStoreRecoversEmpty(t *testing.T) {
	mem := NewMemFS()
	st, rec := openMem(t, mem, Options{})
	defer st.Close()
	if rec.Snapshot != nil || len(rec.Ops) != 0 || rec.Epoch != 0 || rec.TruncatedRecords != 0 {
		t.Fatalf("non-empty recovery from empty dir: %+v", rec)
	}
}

func TestWALRoundTrip(t *testing.T) {
	mem := NewMemFS()
	st, _ := openMem(t, mem, Options{})
	for i := 0; i < 5; i++ {
		if _, err := st.Append(Op{Kind: OpPublish, Data: fmt.Sprintf("<d%d>doc</d%d>", i, i), Epoch: 1, Seq: uint32(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Append(Op{Kind: OpRemove, Data: "d2", Epoch: 1, Seq: 5}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, rec := openMem(t, mem, Options{})
	defer st2.Close()
	if len(rec.Ops) != 6 {
		t.Fatalf("recovered %d ops, want 6", len(rec.Ops))
	}
	if rec.Ops[5].Kind != OpRemove || rec.Ops[5].Data != "d2" {
		t.Fatalf("last op = %v", rec.Ops[5])
	}
	if rec.Epoch != 1 || rec.Seq != 5 {
		t.Fatalf("recovered version %d.%d, want 1.5", rec.Epoch, rec.Seq)
	}
	// LSNs strictly increase from 1.
	for i, op := range rec.Ops {
		if op.LSN != uint64(i+1) {
			t.Fatalf("op %d LSN = %d", i, op.LSN)
		}
	}
	// Appends after recovery continue the LSN sequence.
	lsn, err := st2.Append(Op{Kind: OpPublish, Data: "<e>x</e>", Epoch: 1, Seq: 6})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 7 {
		t.Fatalf("post-recovery LSN = %d, want 7", lsn)
	}
}

func TestSnapshotAndWALSuffix(t *testing.T) {
	mem := NewMemFS()
	st, _ := openMem(t, mem, Options{})
	st.Append(Op{Kind: OpPublish, Data: "a", Epoch: 1, Seq: 1})
	st.Append(Op{Kind: OpPublish, Data: "b", Epoch: 1, Seq: 2})
	if err := st.SaveSnapshot([]byte("SNAP-AB"), 1, 2); err != nil {
		t.Fatal(err)
	}
	st.Append(Op{Kind: OpPublish, Data: "c", Epoch: 1, Seq: 3})
	st.Close()

	st2, rec := openMem(t, mem, Options{})
	defer st2.Close()
	if string(rec.Snapshot) != "SNAP-AB" {
		t.Fatalf("snapshot payload = %q", rec.Snapshot)
	}
	if rec.SnapshotHeader.Epoch != 1 || rec.SnapshotHeader.Seq != 2 {
		t.Fatalf("snapshot header = %+v", rec.SnapshotHeader)
	}
	if len(rec.Ops) != 1 || rec.Ops[0].Data != "c" {
		t.Fatalf("WAL suffix = %v, want just op c", rec.Ops)
	}
	if rec.Epoch != 1 || rec.Seq != 3 {
		t.Fatalf("recovered version %d.%d, want 1.3", rec.Epoch, rec.Seq)
	}
}

func TestCompactionFoldsWAL(t *testing.T) {
	mem := NewMemFS()
	reg := metrics.NewRegistry()
	st, _ := openMem(t, mem, Options{CompactBytes: 256, Metrics: reg})
	var snapCalls int
	st.SetSnapshotSource(func() ([]byte, uint32, uint32, error) {
		snapCalls++
		return []byte(fmt.Sprintf("SNAP-%d", snapCalls)), 1, uint32(snapCalls), nil
	})
	for i := 0; i < 50; i++ {
		if _, err := st.Append(Op{Kind: OpPublish, Data: strings.Repeat("x", 40), Epoch: 1, Seq: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if snapCalls == 0 {
		t.Fatal("compaction never triggered")
	}
	if got := st.WALSize(); got >= 256 {
		t.Fatalf("WAL not folded: %d bytes", got)
	}
	if reg.Counter("store_compactions_total").Value() == 0 {
		t.Fatal("store_compactions_total not incremented")
	}
	st.Close()

	// Recovery sees the last snapshot plus only the post-snapshot tail.
	st2, rec := openMem(t, mem, Options{})
	defer st2.Close()
	if rec.Snapshot == nil {
		t.Fatal("no snapshot recovered after compaction")
	}
	if len(rec.Ops) >= 50 {
		t.Fatalf("compaction left %d ops in the WAL", len(rec.Ops))
	}
}

func TestTornTailTruncated(t *testing.T) {
	mem := NewMemFS()
	st, _ := openMem(t, mem, Options{})
	st.Append(Op{Kind: OpPublish, Data: "good-1", Epoch: 1, Seq: 1})
	st.Append(Op{Kind: OpPublish, Data: "good-2", Epoch: 1, Seq: 2})
	st.Close()

	// Corrupt: append garbage bytes (a torn record) to the WAL.
	h, err := mem.OpenAppend("peer0/wal.ppl")
	if err != nil {
		t.Fatal(err)
	}
	h.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01})
	h.Sync()
	h.Close()

	reg := metrics.NewRegistry()
	st2, rec := openMem(t, mem, Options{Metrics: reg})
	if len(rec.Ops) != 2 {
		t.Fatalf("recovered %d ops, want the 2 good ones", len(rec.Ops))
	}
	if rec.TruncatedRecords != 1 || rec.TruncatedBytes != 5 {
		t.Fatalf("truncation stats = %d records / %d bytes", rec.TruncatedRecords, rec.TruncatedBytes)
	}
	if reg.Counter("store_recovery_truncated_records_total").Value() != 1 {
		t.Fatal("truncation not counted in metrics")
	}
	// The tear is physically gone: appends after recovery are readable.
	if _, err := st2.Append(Op{Kind: OpPublish, Data: "good-3", Epoch: 1, Seq: 3}); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, rec3 := openMem(t, mem, Options{})
	defer st3.Close()
	if len(rec3.Ops) != 3 || rec3.TruncatedRecords != 0 {
		t.Fatalf("post-truncation recovery = %d ops, %d truncated", len(rec3.Ops), rec3.TruncatedRecords)
	}
}

func TestCorruptSnapshotQuarantinedFallsBack(t *testing.T) {
	mem := NewMemFS()
	st, _ := openMem(t, mem, Options{})
	st.Append(Op{Kind: OpPublish, Data: "a", Epoch: 1, Seq: 1})
	if err := st.SaveSnapshot([]byte("GEN-1"), 1, 1); err != nil {
		t.Fatal(err)
	}
	st.Append(Op{Kind: OpPublish, Data: "b", Epoch: 1, Seq: 2})
	if err := st.SaveSnapshot([]byte("GEN-2"), 1, 2); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Flip a byte inside the current snapshot's payload.
	data, err := mem.ReadFile("peer0/snapshot.pps")
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	h, _ := mem.Create("peer0/snapshot.pps")
	h.Write(data)
	h.Sync()
	h.Close()

	st2, rec := openMem(t, mem, Options{})
	defer st2.Close()
	if string(rec.Snapshot) != "GEN-1" {
		t.Fatalf("fallback snapshot = %q, want GEN-1", rec.Snapshot)
	}
	if !rec.UsedFallback {
		t.Fatal("UsedFallback not reported")
	}
	if len(rec.Quarantined) != 1 || !strings.HasPrefix(rec.Quarantined[0], "quarantine/") {
		t.Fatalf("quarantined = %v", rec.Quarantined)
	}
	// The corrupt file still exists, moved aside — never deleted.
	if _, err := mem.Size("peer0/" + rec.Quarantined[0]); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	// The recovered version floor still reaches 1.2 via the old WAL's
	// leftover op (LSN-filtered replay keeps it out of Ops only if it
	// was folded; GEN-1's WAL was rotated, so op b is gone — the floor
	// comes from the fallback snapshot header).
	if rec.SnapshotHeader.Epoch != 1 || rec.SnapshotHeader.Seq != 1 {
		t.Fatalf("fallback header = %+v", rec.SnapshotHeader)
	}
}

func TestOversizedRecordIsCorruption(t *testing.T) {
	mem := NewMemFS()
	st, _ := openMem(t, mem, Options{})
	st.Append(Op{Kind: OpPublish, Data: "fine", Epoch: 1, Seq: 1})
	st.Close()
	// Forge a record whose length prefix claims 1 GiB.
	h, _ := mem.OpenAppend("peer0/wal.ppl")
	h.Write([]byte{0x00, 0x00, 0x00, 0x40, 0, 0, 0, 0}) // length = 1<<30
	h.Sync()
	h.Close()

	st2, rec := openMem(t, mem, Options{})
	defer st2.Close()
	if len(rec.Ops) != 1 || rec.TruncatedRecords != 1 {
		t.Fatalf("recovery = %d ops, %d truncated; want 1 op, 1 truncation", len(rec.Ops), rec.TruncatedRecords)
	}
}

func TestSyncEveryBatchesFsyncs(t *testing.T) {
	mem := NewMemFS()
	reg := metrics.NewRegistry()
	st, _ := openMem(t, mem, Options{SyncEvery: 8, Metrics: reg})
	defer st.Close()
	base := reg.Counter("store_fsyncs_total").Value()
	for i := 0; i < 16; i++ {
		st.Append(Op{Kind: OpPublish, Data: "x", Epoch: 1, Seq: uint32(i)})
	}
	if got := reg.Counter("store_fsyncs_total").Value() - base; got != 2 {
		t.Fatalf("16 appends at SyncEvery=8 did %d fsyncs, want 2", got)
	}
	// Sync() is the commit barrier for the partial batch.
	st.Append(Op{Kind: OpPublish, Data: "y", Epoch: 1, Seq: 17})
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("store_fsyncs_total").Value() - base; got != 3 {
		t.Fatalf("explicit Sync did not flush the batch (fsyncs = %d)", got)
	}
}

func TestClosedStoreRejectsAppends(t *testing.T) {
	mem := NewMemFS()
	st, _ := openMem(t, mem, Options{})
	st.Close()
	if _, err := st.Append(Op{Kind: OpPublish, Data: "x"}); err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}
	if err := st.SaveSnapshot(nil, 1, 1); err != ErrClosed {
		t.Fatalf("snapshot after close: %v", err)
	}
}

// A crash that loses the unsynced tail (SyncEvery batching) must recover
// the synced prefix exactly.
func TestUnsyncedTailLostOnCrash(t *testing.T) {
	mem := NewMemFS()
	st, _ := openMem(t, mem, Options{SyncEvery: 100})
	for i := 0; i < 10; i++ {
		st.Append(Op{Kind: OpPublish, Data: fmt.Sprintf("d%d", i), Epoch: 1, Seq: uint32(i)})
	}
	// No Close, no Sync: power fails. MemFS with seed 0 keeps a seeded
	// portion of the unsynced tail; recovery must parse a valid prefix.
	mem.Crash(12345)
	st2, rec := openMem(t, mem, Options{})
	defer st2.Close()
	if len(rec.Ops) > 10 {
		t.Fatalf("recovered %d ops from 10 appends", len(rec.Ops))
	}
	for i, op := range rec.Ops {
		if op.Data != fmt.Sprintf("d%d", i) {
			t.Fatalf("op %d = %q — not a prefix", i, op.Data)
		}
	}
}
