package store

import (
	"fmt"
	"io/fs"
	"strings"
	"testing"
	"time"

	"planetp/internal/metrics"
)

func openMem(t *testing.T, fs FS, opts Options) (*Store, Recovery) {
	t.Helper()
	opts.Dir = "peer0"
	opts.FS = fs
	st, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st, rec
}

func TestEmptyStoreRecoversEmpty(t *testing.T) {
	mem := NewMemFS()
	st, rec := openMem(t, mem, Options{})
	defer st.Close()
	if rec.Snapshot != nil || len(rec.Ops) != 0 || rec.Epoch != 0 || rec.TruncatedRecords != 0 {
		t.Fatalf("non-empty recovery from empty dir: %+v", rec)
	}
}

func TestWALRoundTrip(t *testing.T) {
	mem := NewMemFS()
	st, _ := openMem(t, mem, Options{})
	for i := 0; i < 5; i++ {
		if _, err := st.Append(Op{Kind: OpPublish, Data: fmt.Sprintf("<d%d>doc</d%d>", i, i), Epoch: 1, Seq: uint32(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Append(Op{Kind: OpRemove, Data: "d2", Epoch: 1, Seq: 5}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, rec := openMem(t, mem, Options{})
	defer st2.Close()
	if len(rec.Ops) != 6 {
		t.Fatalf("recovered %d ops, want 6", len(rec.Ops))
	}
	if rec.Ops[5].Kind != OpRemove || rec.Ops[5].Data != "d2" {
		t.Fatalf("last op = %v", rec.Ops[5])
	}
	if rec.Epoch != 1 || rec.Seq != 5 {
		t.Fatalf("recovered version %d.%d, want 1.5", rec.Epoch, rec.Seq)
	}
	// LSNs strictly increase from 1.
	for i, op := range rec.Ops {
		if op.LSN != uint64(i+1) {
			t.Fatalf("op %d LSN = %d", i, op.LSN)
		}
	}
	// Appends after recovery continue the LSN sequence.
	lsn, err := st2.Append(Op{Kind: OpPublish, Data: "<e>x</e>", Epoch: 1, Seq: 6})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 7 {
		t.Fatalf("post-recovery LSN = %d, want 7", lsn)
	}
}

func TestSnapshotAndWALSuffix(t *testing.T) {
	mem := NewMemFS()
	st, _ := openMem(t, mem, Options{})
	st.Append(Op{Kind: OpPublish, Data: "a", Epoch: 1, Seq: 1})
	st.Append(Op{Kind: OpPublish, Data: "b", Epoch: 1, Seq: 2})
	if err := st.SaveSnapshot(SnapshotData{Payload: []byte("SNAP-AB"), Epoch: 1, Seq: 2, FoldLSN: st.LastLSN()}); err != nil {
		t.Fatal(err)
	}
	st.Append(Op{Kind: OpPublish, Data: "c", Epoch: 1, Seq: 3})
	st.Close()

	st2, rec := openMem(t, mem, Options{})
	defer st2.Close()
	if string(rec.Snapshot) != "SNAP-AB" {
		t.Fatalf("snapshot payload = %q", rec.Snapshot)
	}
	if rec.SnapshotHeader.Epoch != 1 || rec.SnapshotHeader.Seq != 2 {
		t.Fatalf("snapshot header = %+v", rec.SnapshotHeader)
	}
	if len(rec.Ops) != 1 || rec.Ops[0].Data != "c" {
		t.Fatalf("WAL suffix = %v, want just op c", rec.Ops)
	}
	if rec.Epoch != 1 || rec.Seq != 3 {
		t.Fatalf("recovered version %d.%d, want 1.3", rec.Epoch, rec.Seq)
	}
}

func TestCompactionFoldsWAL(t *testing.T) {
	mem := NewMemFS()
	reg := metrics.NewRegistry()
	st, _ := openMem(t, mem, Options{CompactBytes: 256, Metrics: reg})
	var snapCalls int
	st.SetSnapshotSource(func() (SnapshotData, error) {
		snapCalls++
		return SnapshotData{
			Payload: []byte(fmt.Sprintf("SNAP-%d", snapCalls)),
			Epoch:   1, Seq: uint32(snapCalls),
			FoldLSN: st.LastLSN(),
		}, nil
	})
	for i := 0; i < 50; i++ {
		if _, err := st.Append(Op{Kind: OpPublish, Data: strings.Repeat("x", 40), Epoch: 1, Seq: uint32(i)}); err != nil {
			t.Fatal(err)
		}
		if err := st.MaybeCompact(); err != nil {
			t.Fatal(err)
		}
	}
	if snapCalls == 0 {
		t.Fatal("compaction never triggered")
	}
	if got := st.WALSize(); got >= 256 {
		t.Fatalf("WAL not folded: %d bytes", got)
	}
	if reg.Counter("store_compactions_total").Value() == 0 {
		t.Fatal("store_compactions_total not incremented")
	}
	st.Close()

	// Recovery sees the last snapshot plus only the post-snapshot tail.
	st2, rec := openMem(t, mem, Options{})
	defer st2.Close()
	if rec.Snapshot == nil {
		t.Fatal("no snapshot recovered after compaction")
	}
	if len(rec.Ops) >= 50 {
		t.Fatalf("compaction left %d ops in the WAL", len(rec.Ops))
	}
}

func TestTornTailTruncated(t *testing.T) {
	mem := NewMemFS()
	st, _ := openMem(t, mem, Options{})
	st.Append(Op{Kind: OpPublish, Data: "good-1", Epoch: 1, Seq: 1})
	st.Append(Op{Kind: OpPublish, Data: "good-2", Epoch: 1, Seq: 2})
	st.Close()

	// Corrupt: append garbage bytes (a torn record) to the WAL.
	h, err := mem.OpenAppend("peer0/wal.ppl")
	if err != nil {
		t.Fatal(err)
	}
	h.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01})
	h.Sync()
	h.Close()

	reg := metrics.NewRegistry()
	st2, rec := openMem(t, mem, Options{Metrics: reg})
	if len(rec.Ops) != 2 {
		t.Fatalf("recovered %d ops, want the 2 good ones", len(rec.Ops))
	}
	if rec.TruncatedRecords != 1 || rec.TruncatedBytes != 5 {
		t.Fatalf("truncation stats = %d records / %d bytes", rec.TruncatedRecords, rec.TruncatedBytes)
	}
	if reg.Counter("store_recovery_truncated_records_total").Value() != 1 {
		t.Fatal("truncation not counted in metrics")
	}
	// The tear is physically gone: appends after recovery are readable.
	if _, err := st2.Append(Op{Kind: OpPublish, Data: "good-3", Epoch: 1, Seq: 3}); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, rec3 := openMem(t, mem, Options{})
	defer st3.Close()
	if len(rec3.Ops) != 3 || rec3.TruncatedRecords != 0 {
		t.Fatalf("post-truncation recovery = %d ops, %d truncated", len(rec3.Ops), rec3.TruncatedRecords)
	}
}

func TestCorruptSnapshotQuarantinedFallsBack(t *testing.T) {
	mem := NewMemFS()
	st, _ := openMem(t, mem, Options{})
	st.Append(Op{Kind: OpPublish, Data: "a", Epoch: 1, Seq: 1})
	if err := st.SaveSnapshot(SnapshotData{Payload: []byte("GEN-1"), Epoch: 1, Seq: 1, FoldLSN: st.LastLSN()}); err != nil {
		t.Fatal(err)
	}
	st.Append(Op{Kind: OpPublish, Data: "b", Epoch: 1, Seq: 2})
	if err := st.SaveSnapshot(SnapshotData{Payload: []byte("GEN-2"), Epoch: 1, Seq: 2, FoldLSN: st.LastLSN()}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Flip a byte inside the current snapshot's payload.
	data, err := mem.ReadFile("peer0/snapshot.pps")
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	h, _ := mem.Create("peer0/snapshot.pps")
	h.Write(data)
	h.Sync()
	h.Close()

	st2, rec := openMem(t, mem, Options{})
	defer st2.Close()
	if string(rec.Snapshot) != "GEN-1" {
		t.Fatalf("fallback snapshot = %q, want GEN-1", rec.Snapshot)
	}
	if !rec.UsedFallback {
		t.Fatal("UsedFallback not reported")
	}
	if len(rec.Quarantined) != 1 || !strings.HasPrefix(rec.Quarantined[0], "quarantine/") {
		t.Fatalf("quarantined = %v", rec.Quarantined)
	}
	// The corrupt file still exists, moved aside — never deleted.
	if _, err := mem.Size("peer0/" + rec.Quarantined[0]); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if rec.SnapshotHeader.Epoch != 1 || rec.SnapshotHeader.Seq != 1 {
		t.Fatalf("fallback header = %+v", rec.SnapshotHeader)
	}
	// The fallback is GAPLESS: op b (folded into the corrupt GEN-2 and
	// past GEN-1's fold LSN) survives in the retained previous WAL
	// generation and replays on top of GEN-1 — the prior snapshot plus a
	// longer WAL replay, not a silent hole in the middle.
	if len(rec.Ops) != 1 || rec.Ops[0].Data != "b" {
		t.Fatalf("fallback replay ops = %v, want op b from wal.ppl.prev", rec.Ops)
	}
	if rec.Epoch != 1 || rec.Seq != 2 {
		t.Fatalf("recovered version floor %d.%d, want 1.2", rec.Epoch, rec.Seq)
	}
}

func TestOversizedRecordIsCorruption(t *testing.T) {
	mem := NewMemFS()
	st, _ := openMem(t, mem, Options{})
	st.Append(Op{Kind: OpPublish, Data: "fine", Epoch: 1, Seq: 1})
	st.Close()
	// Forge a record whose length prefix claims 1 GiB.
	h, _ := mem.OpenAppend("peer0/wal.ppl")
	h.Write([]byte{0x00, 0x00, 0x00, 0x40, 0, 0, 0, 0}) // length = 1<<30
	h.Sync()
	h.Close()

	st2, rec := openMem(t, mem, Options{})
	defer st2.Close()
	if len(rec.Ops) != 1 || rec.TruncatedRecords != 1 {
		t.Fatalf("recovery = %d ops, %d truncated; want 1 op, 1 truncation", len(rec.Ops), rec.TruncatedRecords)
	}
}

func TestSyncEveryBatchesFsyncs(t *testing.T) {
	mem := NewMemFS()
	reg := metrics.NewRegistry()
	st, _ := openMem(t, mem, Options{SyncEvery: 8, Metrics: reg})
	defer st.Close()
	base := reg.Counter("store_fsyncs_total").Value()
	for i := 0; i < 16; i++ {
		st.Append(Op{Kind: OpPublish, Data: "x", Epoch: 1, Seq: uint32(i)})
	}
	if got := reg.Counter("store_fsyncs_total").Value() - base; got != 2 {
		t.Fatalf("16 appends at SyncEvery=8 did %d fsyncs, want 2", got)
	}
	// Sync() is the commit barrier for the partial batch.
	st.Append(Op{Kind: OpPublish, Data: "y", Epoch: 1, Seq: 17})
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("store_fsyncs_total").Value() - base; got != 3 {
		t.Fatalf("explicit Sync did not flush the batch (fsyncs = %d)", got)
	}
}

func TestClosedStoreRejectsAppends(t *testing.T) {
	mem := NewMemFS()
	st, _ := openMem(t, mem, Options{})
	st.Close()
	if _, err := st.Append(Op{Kind: OpPublish, Data: "x"}); err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}
	if err := st.SaveSnapshot(SnapshotData{Epoch: 1, Seq: 1}); err != ErrClosed {
		t.Fatalf("snapshot after close: %v", err)
	}
}

// Regression: a publish that lands between a snapshot source capturing
// its payload and SaveSnapshot installing it must survive the rotation.
// The snapshot folds through the fold LSN captured with the payload, and
// records past it are carried into the fresh WAL generation — they must
// not be stamped as folded in and rotated away.
func TestSnapshotDoesNotLoseRacingAppend(t *testing.T) {
	mem := NewMemFS()
	st, _ := openMem(t, mem, Options{})
	st.Append(Op{Kind: OpPublish, Data: "a", Epoch: 1, Seq: 1})
	st.Append(Op{Kind: OpPublish, Data: "b", Epoch: 1, Seq: 2})
	// The source captures state {a,b} and its fold LSN...
	payload, fold := []byte("SNAP-AB"), st.LastLSN()
	// ...then a concurrent, durably-acknowledged publish lands...
	if _, err := st.Append(Op{Kind: OpPublish, Data: "c", Epoch: 1, Seq: 3}); err != nil {
		t.Fatal(err)
	}
	// ...and only now does the snapshot install.
	if err := st.SaveSnapshot(SnapshotData{Payload: payload, Epoch: 1, Seq: 2, FoldLSN: fold}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, rec := openMem(t, mem, Options{})
	defer st2.Close()
	if string(rec.Snapshot) != "SNAP-AB" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if len(rec.Ops) != 1 || rec.Ops[0].Data != "c" {
		t.Fatalf("racing publish lost by rotation: replay ops = %v, want op c", rec.Ops)
	}
	// LSNs keep advancing past the carried record.
	if lsn, err := st2.Append(Op{Kind: OpPublish, Data: "d", Epoch: 1, Seq: 4}); err != nil || lsn != 4 {
		t.Fatalf("post-recovery append lsn=%d err=%v, want 4", lsn, err)
	}
}

// A snapshot claiming to fold through an LSN never appended is rejected;
// one folding through less than the installed snapshot is skipped (it
// would regress coverage and orphan the records in between).
func TestSaveSnapshotFoldBounds(t *testing.T) {
	mem := NewMemFS()
	st, _ := openMem(t, mem, Options{})
	defer st.Close()
	st.Append(Op{Kind: OpPublish, Data: "a", Epoch: 1, Seq: 1})
	if err := st.SaveSnapshot(SnapshotData{Payload: []byte("X"), Epoch: 1, Seq: 1, FoldLSN: 99}); err == nil {
		t.Fatal("fold LSN beyond last append accepted")
	}
	st.Append(Op{Kind: OpPublish, Data: "b", Epoch: 1, Seq: 2})
	if err := st.SaveSnapshot(SnapshotData{Payload: []byte("AB"), Epoch: 1, Seq: 2, FoldLSN: 2}); err != nil {
		t.Fatal(err)
	}
	// A stale capture folding through LSN 1 must not displace it.
	if err := st.SaveSnapshot(SnapshotData{Payload: []byte("A"), Epoch: 1, Seq: 1, FoldLSN: 1}); err != nil {
		t.Fatal(err)
	}
	data, err := mem.ReadFile("peer0/snapshot.pps")
	if err != nil {
		t.Fatal(err)
	}
	if hdr, payload, err := decodeSnapshot(data, 1<<20); err != nil || string(payload) != "AB" || hdr.LSN != 2 {
		t.Fatalf("stale snapshot displaced the newer one: hdr=%+v payload=%q err=%v", hdr, payload, err)
	}
}

// errSizeFS makes every Size probe fail with a non-NotExist error, as a
// permission-denied quarantine directory would.
type errSizeFS struct{ FS }

func (e errSizeFS) Size(name string) (int64, error) {
	return 0, fmt.Errorf("size %s: %w", name, fs.ErrPermission)
}

// Regression: a quarantine-slot probe that fails with anything other
// than ErrNotExist must surface the error, not spin forever.
func TestQuarantineProbeErrorIsFatal(t *testing.T) {
	mem := NewMemFS()
	st, _ := openMem(t, mem, Options{})
	st.Append(Op{Kind: OpPublish, Data: "a", Epoch: 1, Seq: 1})
	st.Close()
	// Corrupt the WAL magic so recovery must quarantine the file.
	data, _ := mem.ReadFile("peer0/wal.ppl")
	data[0] ^= 0xff
	h, _ := mem.Create("peer0/wal.ppl")
	h.Write(data)
	h.Sync()
	h.Close()

	done := make(chan error, 1)
	go func() {
		_, _, err := Open(Options{Dir: "peer0", FS: errSizeFS{mem}})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Open succeeded despite unprobeable quarantine dir")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Open spinning on quarantine probe")
	}
}

// A crash that loses the unsynced tail (SyncEvery batching) must recover
// the synced prefix exactly.
func TestUnsyncedTailLostOnCrash(t *testing.T) {
	mem := NewMemFS()
	st, _ := openMem(t, mem, Options{SyncEvery: 100})
	for i := 0; i < 10; i++ {
		st.Append(Op{Kind: OpPublish, Data: fmt.Sprintf("d%d", i), Epoch: 1, Seq: uint32(i)})
	}
	// No Close, no Sync: power fails. MemFS with seed 0 keeps a seeded
	// portion of the unsynced tail; recovery must parse a valid prefix.
	mem.Crash(12345)
	st2, rec := openMem(t, mem, Options{})
	defer st2.Close()
	if len(rec.Ops) > 10 {
		t.Fatalf("recovered %d ops from 10 appends", len(rec.Ops))
	}
	for i, op := range rec.Ops {
		if op.Data != fmt.Sprintf("d%d", i) {
			t.Fatalf("op %d = %q — not a prefix", i, op.Data)
		}
	}
}
