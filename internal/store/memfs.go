package store

import (
	"fmt"
	"io/fs"
	"sync"
)

// MemFS is a pure in-memory FS that models fsync semantics: each file
// tracks how many of its bytes have been committed by Sync, and Crash
// discards a seeded-random portion of the unsynced tail — exactly what a
// power failure does to a page cache. Tests and the gossipsim restart
// experiment run the full durability protocol against it without
// touching the real disk.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

type memFile struct {
	data    []byte
	durable int // bytes guaranteed to survive Crash
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

// memHandle is an open append/write handle onto a memFile.
type memHandle struct {
	fs     *MemFS
	f      *memFile
	closed bool
}

// MkdirAll implements FS (directories are implicit in MemFS).
func (m *MemFS) MkdirAll(path string) error { return nil }

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[name] = f
	return &memHandle{fs: m, f: f}, nil
}

// OpenAppend implements FS.
func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		f = &memFile{}
		m.files[name] = f
	}
	return &memHandle{fs: m, f: f}, nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

// Rename implements FS. Renames are modeled as atomic and durable (the
// store fsyncs the parent directory after every rename on a real disk).
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	m.files[newname] = f
	delete(m.files, oldname)
	return nil
}

// Truncate implements FS.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("memfs: truncate %s to %d (len %d)", name, size, len(f.data))
	}
	f.data = f.data[:size]
	if f.durable > int(size) {
		f.durable = int(size)
	}
	return nil
}

// Size implements FS.
func (m *MemFS) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return 0, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
	}
	return int64(len(f.data)), nil
}

// SyncDir implements FS (directory metadata is always durable in MemFS).
func (m *MemFS) SyncDir(dir string) error { return nil }

// Crash simulates a power failure: every file keeps its synced prefix
// plus a seeded-random portion of whatever was written but never fsynced
// — the torn tail a real disk leaves behind. The same seed reproduces
// the same tail lengths, so crash outcomes are deterministic.
func (m *MemFS) Crash(seed int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, f := range m.files {
		unsynced := len(f.data) - f.durable
		if unsynced <= 0 {
			continue
		}
		h := mix64(uint64(seed) ^ hashName(name))
		keep := f.durable + int(h%uint64(unsynced+1))
		f.data = f.data[:keep]
		f.durable = keep
	}
}

// Files lists the current file names (for quarantine assertions in tests).
func (m *MemFS) Files() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for name := range m.files {
		out = append(out, name)
	}
	return out
}

// Write implements File.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

// Sync implements File: everything written so far becomes durable.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.f.durable = len(h.f.data)
	return nil
}

// Close implements File.
func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

// mix64 is the splitmix64 finalizer (same core as internal/faultnet).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashName FNV-1a hashes a file name.
func hashName(name string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
