package store

import (
	"errors"
	"fmt"
	"io/fs"
	"path"
	"sync"

	"planetp/internal/metrics"
)

// File names within the store directory.
const (
	walName      = "wal.ppl"
	walPrevName  = "wal.ppl.prev"
	walTmpName   = "wal.ppl.tmp"
	snapName     = "snapshot.pps"
	snapPrevName = "snapshot.pps.prev"
	snapTmpName  = "snapshot.pps.tmp"
	quarDir      = "quarantine"
)

// Options parameterizes a Store.
type Options struct {
	// Dir is the store directory (created if missing).
	Dir string
	// FS is the filesystem seam (nil = the operating system). Tests
	// mount MemFS/FaultFS here for deterministic disk-fault injection.
	FS FS
	// CompactBytes is the WAL size that triggers folding the log into a
	// fresh snapshot (default 1 MiB; requires a snapshot source).
	CompactBytes int64
	// SyncEvery batches fsyncs: 1 (default) syncs every append —
	// fsync-on-commit; N > 1 syncs every Nth append, trading the tail of
	// unsynced operations on crash for fewer disk flushes.
	SyncEvery int
	// MaxRecordBytes bounds a WAL record's payload (default 16 MiB);
	// larger length prefixes are treated as corruption.
	MaxRecordBytes int
	// MaxSnapshotBytes bounds a snapshot payload read at recovery
	// (default 256 MiB); anything larger is treated as corruption.
	MaxSnapshotBytes int64
	// Metrics receives the store_* counters (nil = none).
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.CompactBytes <= 0 {
		o.CompactBytes = 1 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 1
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 16 << 20
	}
	if o.MaxSnapshotBytes <= 0 {
		o.MaxSnapshotBytes = 256 << 20
	}
	return o
}

// Recovery is what Open reconstructed from disk. The caller replays
// Snapshot (decode + restore) and then Ops, in order, to rebuild its
// state, and must announce itself with an epoch strictly greater than
// Epoch — the recovered counters are the highest the dead incarnation
// could have gossiped.
type Recovery struct {
	// Snapshot is the latest readable snapshot payload (nil if none).
	Snapshot []byte
	// SnapshotHeader holds the snapshot's durable version counters
	// (zero if Snapshot is nil).
	SnapshotHeader Header
	// Ops is the WAL suffix after the snapshot (LSN > SnapshotHeader.LSN),
	// in append order.
	Ops []Op
	// Epoch and Seq are the highest version counters found anywhere in
	// the store — the floor for the restarted incarnation's epoch bump.
	Epoch, Seq uint32
	// TruncatedRecords counts torn/corrupt WAL tails dropped (one per
	// truncation: framing past the first bad record is unreliable).
	TruncatedRecords int
	// TruncatedBytes counts the bytes those truncations discarded.
	TruncatedBytes int64
	// Quarantined lists files moved aside as unreadable (never deleted),
	// relative to the store directory.
	Quarantined []string
	// UsedFallback reports that the previous snapshot was used because
	// the current one was missing or corrupt.
	UsedFallback bool
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// SnapshotData is what a snapshot source captures: the serialized full
// state, the gossip version it reflects, and the LSN of the last WAL
// operation whose effect is included in the payload. FoldLSN must be
// read atomically with the payload (under whatever lock serializes the
// caller's appends — core reads it under the peer mutex); otherwise an
// operation appended between the capture and SaveSnapshot could be
// stamped as folded in without actually being in the payload.
type SnapshotData struct {
	Payload    []byte
	Epoch, Seq uint32
	FoldLSN    uint64
}

// Store is a live crash-safe persistence handle: an open WAL plus the
// snapshot protocol. Safe for concurrent use.
type Store struct {
	opts Options
	fsys FS

	mu          sync.Mutex
	wal         File
	walBytes    int64
	nextLSN     uint64
	snapLSN     uint64 // WAL position the current snapshot folds through
	unsynced    int    // appends since the last fsync (== writtenLSN - syncedLSN)
	lastVer     [2]uint32
	closed      bool
	compacting  bool
	snapshotSrc func() (SnapshotData, error)

	// Group commit state: records are written to the log under s.mu, but
	// the fsync that commits them runs with s.mu RELEASED, so concurrent
	// appenders keep writing while the disk flushes. The first committer
	// to arrive becomes the leader (syncing = true) and fsyncs the whole
	// written frontier; later arrivals wait on syncDone and usually find
	// their record covered when the leader broadcasts — one flush
	// commits many appends.
	writtenLSN uint64     // highest LSN written to the log file
	syncedLSN  uint64     // highest LSN known durably fsynced
	syncing    bool       // a leader's fsync is in flight
	syncDone   *sync.Cond // on s.mu; broadcast after each leader fsync

	m storeMetrics
}

type storeMetrics struct {
	appends, fsyncs, snapshots, compactions *metrics.Counter
	truncRecords, truncBytes, quarantined   *metrics.Counter
	batchAppends, groupWaiters              *metrics.Counter
}

// Open mounts (or initializes) the store under opts.Dir and performs
// recovery: it reads the newest readable snapshot (falling back to the
// previous one, quarantining corrupt files aside), replays the WAL up to
// the first torn or corrupt record, truncates the tear, and returns
// everything the caller needs to rebuild its state and supersede its
// previous incarnation.
func Open(opts Options) (*Store, Recovery, error) {
	opts = opts.withDefaults()
	s := &Store{
		opts: opts,
		fsys: opts.FS,
		m: storeMetrics{
			appends:      opts.Metrics.Counter("store_wal_appends_total"),
			fsyncs:       opts.Metrics.Counter("store_fsyncs_total"),
			snapshots:    opts.Metrics.Counter("store_snapshots_total"),
			compactions:  opts.Metrics.Counter("store_compactions_total"),
			truncRecords: opts.Metrics.Counter("store_recovery_truncated_records_total"),
			truncBytes:   opts.Metrics.Counter("store_recovery_truncated_bytes_total"),
			quarantined:  opts.Metrics.Counter("store_quarantined_files_total"),
			batchAppends: opts.Metrics.Counter("store_batch_appends_total"),
			groupWaiters: opts.Metrics.Counter("store_group_commit_waiters"),
		},
	}
	s.syncDone = sync.NewCond(&s.mu)
	if err := s.fsys.MkdirAll(opts.Dir); err != nil {
		return nil, Recovery{}, fmt.Errorf("store: mkdir %s: %w", opts.Dir, err)
	}
	var rec Recovery
	if err := s.recoverSnapshot(&rec); err != nil {
		return nil, Recovery{}, err
	}
	if err := s.recoverWAL(&rec); err != nil {
		return nil, Recovery{}, err
	}
	// The recovered version floor: snapshot counters, then any newer op.
	rec.Epoch, rec.Seq = rec.SnapshotHeader.Epoch, rec.SnapshotHeader.Seq
	for _, op := range rec.Ops {
		if verLess(rec.Epoch, rec.Seq, op.Epoch, op.Seq) {
			rec.Epoch, rec.Seq = op.Epoch, op.Seq
		}
	}
	s.lastVer = [2]uint32{rec.Epoch, rec.Seq}
	// Everything recovery left in the log is durable (tears were
	// truncated): the written and synced frontiers start together.
	s.writtenLSN = s.nextLSN - 1
	s.syncedLSN = s.writtenLSN
	s.m.truncRecords.Add(int64(rec.TruncatedRecords))
	s.m.truncBytes.Add(rec.TruncatedBytes)
	s.m.quarantined.Add(int64(len(rec.Quarantined)))
	return s, rec, nil
}

// verLess orders (epoch, seq) pairs like directory.Version.
func verLess(e1, s1, e2, s2 uint32) bool {
	if e1 != e2 {
		return e1 < e2
	}
	return s1 < s2
}

// recoverSnapshot loads the newest readable snapshot into rec,
// quarantining corrupt files and falling back to the previous snapshot.
func (s *Store) recoverSnapshot(rec *Recovery) error {
	for i, name := range []string{snapName, snapPrevName} {
		data, err := s.fsys.ReadFile(join(s.opts.Dir, name))
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return fmt.Errorf("store: reading %s: %w", name, err)
		}
		hdr, payload, derr := decodeSnapshot(data, s.opts.MaxSnapshotBytes)
		if derr != nil {
			q, qerr := s.quarantine(name)
			if qerr != nil {
				return qerr
			}
			rec.Quarantined = append(rec.Quarantined, q)
			continue
		}
		rec.Snapshot = payload
		rec.SnapshotHeader = hdr
		rec.UsedFallback = i > 0 || len(rec.Quarantined) > 0
		s.snapLSN = hdr.LSN
		return nil
	}
	// Also quarantine a leftover temp snapshot? No: a stale temp file is
	// a normal artifact of a crash mid-snapshot; the next snapshot
	// overwrites it. Leaving it costs nothing and deletes nothing.
	return nil
}

// recoverWAL replays the log, truncates at the first tear, filters ops
// already folded into the snapshot, and leaves the store ready to append.
// Both WAL generations are scanned — wal.ppl.prev (the generation
// displaced by the last rotation) and wal.ppl — and merged by LSN, so a
// fallback to the previous snapshot replays a gapless prefix: the prev
// WAL holds exactly the operations after the prev snapshot's fold LSN.
func (s *Store) recoverWAL(rec *Recovery) error {
	prevOps := s.scanPrevWAL()

	walPath := join(s.opts.Dir, walName)
	data, err := s.fsys.ReadFile(walPath)
	var ops []Op
	validEnd := 0
	haveWAL := false
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// A crash between the two rotation renames leaves no wal.ppl; the
		// displaced generation (wal.ppl.prev) carries its records.
	case err != nil:
		return fmt.Errorf("store: reading %s: %w", walName, err)
	case len(data) < len(walMagic) || string(data[:len(walMagic)]) != string(walMagic):
		// The whole file is unreadable (lost or foreign header):
		// quarantine it and start a fresh log. Its bytes count as
		// truncated — they carried an unknown number of records.
		if len(data) > 0 {
			q, qerr := s.quarantine(walName)
			if qerr != nil {
				return qerr
			}
			rec.Quarantined = append(rec.Quarantined, q)
			rec.TruncatedRecords++
			rec.TruncatedBytes += int64(len(data))
		}
	default:
		haveWAL = true
		var dropped int
		ops, validEnd, dropped = scanWAL(data[len(walMagic):], s.opts.MaxRecordBytes, 0)
		if dropped > 0 {
			rec.TruncatedRecords++
			rec.TruncatedBytes += int64(dropped)
			if err := s.fsys.Truncate(walPath, int64(len(walMagic)+validEnd)); err != nil {
				return fmt.Errorf("store: truncating torn WAL: %w", err)
			}
		}
	}
	// Ops already folded into the snapshot replay as no-ops — skip them
	// by LSN. Ops present in both generations (the rotation carries the
	// unfolded suffix forward) dedup in the merge.
	for _, op := range mergeOps(prevOps, ops) {
		if op.LSN > s.snapLSN {
			rec.Ops = append(rec.Ops, op)
		}
		if op.LSN >= s.nextLSN {
			s.nextLSN = op.LSN + 1
		}
	}
	if s.snapLSN >= s.nextLSN {
		s.nextLSN = s.snapLSN + 1
	}
	if !haveWAL {
		return s.freshWAL()
	}
	wal, err := s.fsys.OpenAppend(walPath)
	if err != nil {
		return fmt.Errorf("store: opening WAL: %w", err)
	}
	s.wal = wal
	s.walBytes = int64(len(walMagic) + validEnd)
	return nil
}

// scanPrevWAL reads the displaced WAL generation (best-effort: the file
// is redundancy for snapshot fallback, so an absent or unreadable prev
// WAL contributes nothing rather than failing recovery). It is never
// truncated or mutated — the next rotation supersedes it.
func (s *Store) scanPrevWAL() []Op {
	data, err := s.fsys.ReadFile(join(s.opts.Dir, walPrevName))
	if err != nil || len(data) < len(walMagic) || string(data[:len(walMagic)]) != string(walMagic) {
		return nil
	}
	ops, _, _ := scanWAL(data[len(walMagic):], s.opts.MaxRecordBytes, 0)
	return ops
}

// mergeOps merges two LSN-ascending op lists into one, dropping
// duplicate LSNs (the same record can live in both WAL generations when
// a rotation carried it forward).
func mergeOps(a, b []Op) []Op {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]Op, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].LSN < b[j].LSN:
			out = append(out, a[i])
			i++
		case b[j].LSN < a[i].LSN:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// freshWAL creates an empty log (magic only) and syncs it.
func (s *Store) freshWAL() error {
	wal, err := s.fsys.Create(join(s.opts.Dir, walName))
	if err != nil {
		return fmt.Errorf("store: creating WAL: %w", err)
	}
	if _, err := wal.Write(walMagic); err != nil {
		wal.Close()
		return fmt.Errorf("store: writing WAL header: %w", err)
	}
	if err := wal.Sync(); err != nil {
		wal.Close()
		return fmt.Errorf("store: syncing WAL header: %w", err)
	}
	s.wal = wal
	s.walBytes = int64(len(walMagic))
	if s.nextLSN <= s.snapLSN {
		s.nextLSN = s.snapLSN + 1
	}
	if s.nextLSN == 0 {
		s.nextLSN = 1
	}
	return nil
}

// quarantine moves an unreadable file aside (never deletes it) and
// returns its new name relative to the store directory.
func (s *Store) quarantine(name string) (string, error) {
	if err := s.fsys.MkdirAll(join(s.opts.Dir, quarDir)); err != nil {
		return "", fmt.Errorf("store: mkdir quarantine: %w", err)
	}
	const maxProbes = 10000
	for i := 0; i < maxProbes; i++ {
		q := path.Join(quarDir, fmt.Sprintf("%s.%d", name, i))
		_, err := s.fsys.Size(join(s.opts.Dir, q))
		switch {
		case errors.Is(err, fs.ErrNotExist):
			if err := s.fsys.Rename(join(s.opts.Dir, name), join(s.opts.Dir, q)); err != nil {
				return "", fmt.Errorf("store: quarantining %s: %w", name, err)
			}
			return q, nil
		case err != nil:
			// Anything but "free slot" is a real filesystem problem —
			// surface it instead of probing forever.
			return "", fmt.Errorf("store: probing quarantine slot %s: %w", q, err)
		}
	}
	return "", fmt.Errorf("store: %d quarantined generations of %s — refusing to add more", maxProbes, name)
}

// SetSnapshotSource installs the callback compaction uses to produce a
// fresh full-state snapshot. Without a source the WAL grows unboundedly
// but the store still works.
func (s *Store) SetSnapshotSource(fn func() (SnapshotData, error)) {
	s.mu.Lock()
	s.snapshotSrc = fn
	s.mu.Unlock()
}

// Append logs one operation and (per SyncEvery) commits it. It assigns
// and returns the operation's LSN. An error means the record is not
// durably committed; Append never has side effects beyond the log, so
// callers can treat a failure as "operation did not happen". Concurrent
// Appends share fsyncs through the group-commit barrier. Compaction is
// a separate step — see MaybeCompact.
func (s *Store) Append(op Op) (uint64, error) {
	s.mu.Lock()
	lsn, err := s.writeLocked(op)
	if err == nil && s.unsynced >= s.opts.SyncEvery {
		err = s.commitLocked(lsn)
	}
	s.mu.Unlock()
	if err != nil {
		return 0, err
	}
	s.m.appends.Inc()
	return lsn, nil
}

// AppendBatch logs ops as one contiguous record run — a single buffered
// write and at most one fsync for the whole batch — and returns the LSN
// of the last record. On error none of the records is durably committed
// (the same "operation did not happen" contract as Append: a torn batch
// tail is truncated at recovery exactly like a torn single record). An
// empty batch is a no-op returning (0, nil).
func (s *Store) AppendBatch(ops []Op) (uint64, error) {
	if len(ops) == 0 {
		return 0, nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	var buf []byte
	lsn := s.nextLSN
	hi := s.lastVer
	for i := range ops {
		op := ops[i]
		op.LSN = lsn
		lsn++
		buf = encodeRecordInto(buf, op)
		if verLess(hi[0], hi[1], op.Epoch, op.Seq) {
			hi = [2]uint32{op.Epoch, op.Seq}
		}
	}
	if _, err := s.wal.Write(buf); err != nil {
		s.mu.Unlock()
		return 0, fmt.Errorf("store: wal append: %w", err)
	}
	s.nextLSN = lsn
	s.writtenLSN = lsn - 1
	s.walBytes += int64(len(buf))
	s.unsynced += len(ops)
	s.lastVer = hi
	var err error
	if s.unsynced >= s.opts.SyncEvery {
		err = s.commitLocked(s.writtenLSN)
	}
	last := s.writtenLSN
	s.mu.Unlock()
	if err != nil {
		return 0, err
	}
	s.m.appends.Add(int64(len(ops)))
	s.m.batchAppends.Inc()
	return last, nil
}

// writeLocked encodes and writes one record at the next LSN, advancing
// the written frontier. Caller holds s.mu. A write error leaves the LSN
// counters unadvanced: whatever partial bytes reached the file are a
// tear for recovery to truncate.
func (s *Store) writeLocked(op Op) (uint64, error) {
	if s.closed {
		return 0, ErrClosed
	}
	op.LSN = s.nextLSN
	buf := encodeRecord(op)
	if _, err := s.wal.Write(buf); err != nil {
		return 0, fmt.Errorf("store: wal append: %w", err)
	}
	s.nextLSN++
	s.writtenLSN = op.LSN
	s.walBytes += int64(len(buf))
	s.unsynced++
	if verLess(s.lastVer[0], s.lastVer[1], op.Epoch, op.Seq) {
		s.lastVer = [2]uint32{op.Epoch, op.Seq}
	}
	return op.LSN, nil
}

// commitLocked blocks until every record up to lsn is durably synced.
// Caller holds s.mu; the lock is released while the disk flushes. The
// first committer to find no flush in flight becomes the leader: it
// captures the written frontier, fsyncs with s.mu released (appenders
// keep writing meanwhile), then publishes the new synced frontier and
// broadcasts. Followers wake either satisfied — their record rode the
// leader's flush — or become the next leader. A failed fsync commits
// nothing; each waiter retries as leader and reports its own error.
func (s *Store) commitLocked(lsn uint64) error {
	for s.syncedLSN < lsn {
		if s.closed {
			return ErrClosed
		}
		if s.syncing {
			s.m.groupWaiters.Inc()
			s.syncDone.Wait()
			continue
		}
		s.syncing = true
		target := s.writtenLSN
		wal := s.wal
		s.mu.Unlock()
		err := wal.Sync()
		s.mu.Lock()
		s.syncing = false
		if err == nil {
			s.syncedLSN = target
			s.unsynced = int(s.writtenLSN - target)
			s.m.fsyncs.Inc()
		}
		s.syncDone.Broadcast()
		if err != nil {
			return fmt.Errorf("store: wal fsync: %w", err)
		}
	}
	return nil
}

// waitNoLeaderLocked blocks until no leader fsync is in flight. Callers
// that rotate or close the WAL file must call this first (holding s.mu
// throughout afterwards, so no new leader can start) — a leader syncs
// the File it captured, which must still be the live log.
func (s *Store) waitNoLeaderLocked() {
	for s.syncing {
		s.syncDone.Wait()
	}
}

// MaybeCompact folds the WAL into a fresh snapshot when it has passed
// the compaction threshold and a snapshot source is installed; otherwise
// it is a cheap no-op. It must be called OUTSIDE any lock the snapshot
// source takes (core calls it after releasing the peer mutex — the
// source re-acquires it to capture payload and fold LSN atomically).
// A compaction failure never invalidates the appends that triggered it:
// they are already durable, the WAL just keeps growing until a later
// compaction succeeds.
func (s *Store) MaybeCompact() error {
	s.mu.Lock()
	if s.closed || s.compacting || s.snapshotSrc == nil || s.walBytes < s.opts.CompactBytes {
		s.mu.Unlock()
		return nil
	}
	src := s.snapshotSrc
	s.compacting = true
	s.mu.Unlock()

	data, err := src()
	if err == nil {
		err = s.SaveSnapshot(data)
	}
	s.mu.Lock()
	s.compacting = false
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("store: compaction: %w", err)
	}
	s.m.compactions.Inc()
	return nil
}

// Sync forces any batched appends to disk (a commit barrier for callers
// using SyncEvery > 1). It participates in group commit: a flush already
// in flight that covers the written frontier satisfies it.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.commitLocked(s.writtenLSN)
}

// SaveSnapshot atomically replaces the on-disk snapshot with the
// captured payload (temp file + fsync + rename, previous snapshot kept
// as fallback) and rotates the WAL. The snapshot header is stamped with
// data.FoldLSN — the LSN the payload actually folds through, captured by
// the source atomically with the payload — NOT the log's current tail:
// operations appended after the capture are not in the payload, so they
// are carried forward into the rotated log (and the displaced log is
// kept as wal.ppl.prev) instead of being rotated away. A snapshot that
// would fold through less than the installed one is skipped: it could
// only regress coverage and orphan the records in between.
func (s *Store) SaveSnapshot(data SnapshotData) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Drain any in-flight leader fsync: from here to the end of rotation
	// s.mu is held continuously, so no new leader can start and the File
	// handles below cannot be yanked out from under a flush.
	s.waitNoLeaderLocked()
	if s.closed {
		return ErrClosed
	}
	if data.FoldLSN >= s.nextLSN {
		return fmt.Errorf("store: snapshot folds through LSN %d beyond last append %d", data.FoldLSN, s.nextLSN-1)
	}
	if data.FoldLSN < s.snapLSN {
		return nil
	}
	// Catch up any batched appends first: records at or below the fold
	// LSN must be durable before the snapshot can supersede them, and
	// the carried suffix is read back from the file below.
	if s.unsynced > 0 {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: wal fsync: %w", err)
		}
		s.syncedLSN = s.writtenLSN
		s.unsynced = 0
		s.m.fsyncs.Inc()
	}
	hdr := Header{Epoch: data.Epoch, Seq: data.Seq, LSN: data.FoldLSN}
	img := encodeSnapshot(hdr, data.Payload)

	dir := s.opts.Dir
	tmp, err := s.fsys.Create(join(dir, snapTmpName))
	if err != nil {
		return fmt.Errorf("store: creating snapshot temp: %w", err)
	}
	if _, err := tmp.Write(img); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	tmp.Close()
	// Keep the displaced snapshot as the fallback generation.
	if _, err := s.fsys.Size(join(dir, snapName)); err == nil {
		if err := s.fsys.Rename(join(dir, snapName), join(dir, snapPrevName)); err != nil {
			return fmt.Errorf("store: rotating previous snapshot: %w", err)
		}
	}
	if err := s.fsys.Rename(join(dir, snapTmpName), join(dir, snapName)); err != nil {
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	if err := s.fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("store: syncing dir: %w", err)
	}
	s.snapLSN = hdr.LSN
	s.m.snapshots.Inc()

	// Rotate the WAL: build the next generation aside — magic plus the
	// byte-for-byte suffix of records the snapshot does NOT fold through
	// (LSN > FoldLSN) — sync it, rename the displaced generation to
	// wal.ppl.prev (it backs the fallback snapshot), and rename the new
	// one into place. A crash at any point leaves recovery a complete
	// record set: the old log under one name or the other, with the
	// snapshot + merged-generation replay reconstructing a consistent
	// prefix.
	suffix, err := s.walSuffixAfter(data.FoldLSN)
	if err != nil {
		return err
	}
	nw, err := s.fsys.Create(join(dir, walTmpName))
	if err != nil {
		return fmt.Errorf("store: creating fresh WAL: %w", err)
	}
	if _, err := nw.Write(append(append([]byte{}, walMagic...), suffix...)); err != nil {
		nw.Close()
		return fmt.Errorf("store: writing fresh WAL: %w", err)
	}
	if err := nw.Sync(); err != nil {
		nw.Close()
		return fmt.Errorf("store: syncing fresh WAL: %w", err)
	}
	if err := s.fsys.Rename(join(dir, walName), join(dir, walPrevName)); err != nil {
		nw.Close()
		return fmt.Errorf("store: rotating previous WAL: %w", err)
	}
	if err := s.fsys.Rename(join(dir, walTmpName), join(dir, walName)); err != nil {
		nw.Close()
		return fmt.Errorf("store: installing fresh WAL: %w", err)
	}
	if err := s.fsys.SyncDir(dir); err != nil {
		nw.Close()
		return fmt.Errorf("store: syncing dir: %w", err)
	}
	s.wal.Close()
	s.wal = nw
	s.walBytes = int64(len(walMagic) + len(suffix))
	// The displaced generation was fsynced above and the new one at
	// creation: everything written is durable.
	s.syncedLSN = s.writtenLSN
	s.unsynced = 0
	return nil
}

// walSuffixAfter returns the raw bytes of the current log's records with
// LSN > foldLSN (the records a snapshot folding through foldLSN must
// carry into the next WAL generation). Caller holds s.mu with the log
// fsynced.
func (s *Store) walSuffixAfter(foldLSN uint64) ([]byte, error) {
	data, err := s.fsys.ReadFile(join(s.opts.Dir, walName))
	if err != nil {
		return nil, fmt.Errorf("store: reading WAL for rotation: %w", err)
	}
	body := data[len(walMagic):]
	off := 0
	for off < len(body) {
		op, n, err := decodeRecord(body[off:], s.opts.MaxRecordBytes)
		if err != nil {
			break // we wrote these records; a tear here ends the file
		}
		if op.LSN > foldLSN {
			break
		}
		off += n
	}
	return body[off:], nil
}

// LastLSN returns the LSN of the most recent append (0 if none yet).
// Snapshot sources read it while holding whatever lock serializes their
// appends, so the returned LSN is exactly the state the payload captures.
func (s *Store) LastLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextLSN - 1
}

// WALSize returns the current log size in bytes.
func (s *Store) WALSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walBytes
}

// LastVersion returns the highest (epoch, seq) the store has durably
// recorded — the version floor a restarted incarnation must exceed.
func (s *Store) LastVersion() (epoch, seq uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastVer[0], s.lastVer[1]
}

// Close flushes batched appends and releases the log. It does not write
// a final snapshot — callers wanting one call SaveSnapshot first (see
// core.Peer.Stop).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	// Drain any in-flight leader before closing the file it captured.
	s.waitNoLeaderLocked()
	s.closed = true
	var err error
	if s.unsynced > 0 {
		err = s.wal.Sync()
		if err == nil {
			s.syncedLSN = s.writtenLSN
			s.unsynced = 0
			s.m.fsyncs.Inc()
		}
	}
	// Wake committers parked in commitLocked: their records either just
	// became durable (syncedLSN covers them) or they observe closed.
	s.syncDone.Broadcast()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	return err
}
