package gossipsim

import (
	"testing"
)

// TestRestartUnderFaults is the crash/restart acceptance suite: a victim
// peer dies mid-gossip with a torn WAL record, recovers from the
// surviving bytes, and restarts at a superseding epoch — the community
// must converge on the new incarnation with zero stale records, even
// through message loss.
func TestRestartUnderFaults(t *testing.T) {
	cases := []struct {
		name string
		n    int
		spec FaultSpec
	}{
		{"clean-network", 16, FaultSpec{Seed: 201}},
		{"drop-25pct", 16, FaultSpec{Drop: 0.25, Seed: 202}},
		{"dup-and-reorder", 16, FaultSpec{Dup: 0.20, Delay: 0.20, Seed: 203}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := RestartUnderFaults(LAN, tc.n, tc.spec, 7)
			if !res.Converged {
				t.Fatalf("restart did not converge; faults = %+v", res.Faults)
			}
			if res.StaleRecords != 0 {
				t.Fatalf("%d peers still hold the dead incarnation's record", res.StaleRecords)
			}
			if !res.OldVer.Less(res.NewVer) {
				t.Fatalf("new incarnation %v does not supersede %v", res.NewVer, res.OldVer)
			}
			// Every fully committed pre-crash update survived the crash;
			// the torn sixth one is at most partially on disk, never
			// replayed as a full record.
			if res.RecoveredOps != restartUpdates {
				t.Fatalf("recovered %d WAL ops, want %d", res.RecoveredOps, restartUpdates)
			}
			if tc.spec.Drop > 0 && res.Faults.Drops == 0 {
				t.Fatal("no drops injected despite Drop > 0")
			}
		})
	}
}

// TestRestartDeterministic runs the same crash/restart twice and demands
// identical outcomes: the network fault schedule, the disk tear, and the
// page-cache loss are all seeded.
func TestRestartDeterministic(t *testing.T) {
	spec := FaultSpec{Drop: 0.20, Seed: 77}
	a := RestartUnderFaults(LAN, 16, spec, 13)
	b := RestartUnderFaults(LAN, 16, spec, 13)
	if a.ScheduleHash != b.ScheduleHash {
		t.Fatalf("schedule hashes differ: %x vs %x", a.ScheduleHash, b.ScheduleHash)
	}
	if a.Time != b.Time || a.Converged != b.Converged ||
		a.RecoveredOps != b.RecoveredOps || a.TruncatedRecords != b.TruncatedRecords ||
		a.NewVer != b.NewVer {
		t.Fatalf("outcomes differ:\n a=%+v\n b=%+v", a, b)
	}
}
