package gossipsim

import (
	"math"
	"math/rand"
	"time"

	"planetp/internal/directory"
	"planetp/internal/simnet"
)

// expRand draws exponential durations (Poisson process gaps)
// deterministically.
type expRand struct{ rng *rand.Rand }

func newExpRand(seed int64) *expRand {
	return &expRand{rng: rand.New(rand.NewSource(seed))}
}

// exp returns an exponentially distributed duration with the given mean.
func (e *expRand) exp(mean time.Duration) time.Duration {
	u := e.rng.Float64()
	for u == 0 {
		u = e.rng.Float64()
	}
	return time.Duration(-math.Log(u) * float64(mean))
}

// ChurnConfig parameterizes the dynamic-community experiment (Figure 4b/c
// and Figure 5).
type ChurnConfig struct {
	// N is the total membership.
	N int
	// StableFrac is the fraction of members on-line all the time (paper:
	// 40%).
	StableFrac float64
	// MeanOnline and MeanOffline are the Poisson on/off dwell times
	// (paper: 60 and 140 minutes).
	MeanOnline  time.Duration
	MeanOffline time.Duration
	// NewKeysProb is the probability a rejoining peer carries 1000 new
	// keys (paper: 5%).
	NewKeysProb float64
	// Warmup runs the churn before measurement starts.
	Warmup time.Duration
	// Measure is the measurement window.
	Measure time.Duration
	// FastOnly restricts the convergence set to fast peers (the MIX-F /
	// MIX-S condition of Figure 5).
	FastOnly bool
}

// DefaultChurn returns the paper's Figure 4b parameters for n members.
func DefaultChurn(n int) ChurnConfig {
	return ChurnConfig{
		N: n, StableFrac: 0.40,
		MeanOnline: 60 * time.Minute, MeanOffline: 140 * time.Minute,
		NewKeysProb: 0.05,
		Warmup:      30 * time.Minute, Measure: 2 * time.Hour,
	}
}

// ChurnResult is the outcome of a dynamic-community run.
type ChurnResult struct {
	Scenario string
	// All is the convergence CDF over all measured events.
	All CDF
	// Fast and Slow split events by source class (Figure 5 MIX-F /
	// MIX-S).
	Fast CDF
	Slow CDF
	// Timeline is aggregate bytes per simulated second over the whole
	// run (Figure 4c).
	Timeline []int64
	// MeasureStart/End index the measurement window into Timeline.
	MeasureStart, MeasureEnd int
	// Events is the number of measured rejoin events.
	Events int
}

// Churn runs the Figure 4b/4c/5 experiment: a community of cfg.N peers,
// 40% always on-line, the rest cycling on/off with Poisson dwell times;
// occasionally a rejoiner carries new keys. Convergence times of rejoin
// events inside the measurement window form the CDF.
func Churn(sc Scenario, cfg ChurnConfig, seed int64) ChurnResult {
	s := sc.newSim(cfg.N, cfg.N, seed)
	s.Run(2 * time.Second)
	tr := newTracker(s)
	er := newExpRand(seed + 101)

	inSet := func(p *simnet.Peer) bool { return true }
	if cfg.FastOnly {
		inSet = func(p *simnet.Peer) bool { return simnet.Class(p.Speed) == directory.Fast }
	}

	measureStart := s.Now() + cfg.Warmup
	measureEnd := measureStart + cfg.Measure

	nStable := int(cfg.StableFrac * float64(cfg.N))
	// The churning subset: peers [nStable, N). Schedule each peer's
	// on/off life cycle recursively.
	var schedule func(p *simnet.Peer, online bool)
	schedule = func(p *simnet.Peer, online bool) {
		if online {
			// Currently online: go offline after Exp(MeanOnline).
			s.After(er.exp(cfg.MeanOnline), func() {
				p.GoOffline()
				schedule(p, false)
			})
		} else {
			s.After(er.exp(cfg.MeanOffline), func() {
				diff := 0
				label := "rejoin"
				if er.rng.Float64() < cfg.NewKeysProb {
					diff = Diff1000Keys
					label = "join" // paper's "Join": back online with 1000 new keys
				}
				p.GoOnline(diff)
				if s.Now() >= measureStart && s.Now() < measureEnd {
					tr.Watch(p.ID, p.Node.SelfRecord().Ver, label, simnet.Class(p.Speed), inSet)
				}
				schedule(p, true)
			})
		}
	}
	for _, p := range s.Peers()[nStable:] {
		schedule(p, true)
	}

	// Run warmup + measurement + drain tail for convergence of the last
	// events.
	s.Run(measureEnd + time.Hour)
	tr.AbandonOutstanding()

	res := ChurnResult{
		Scenario:     sc.Name,
		All:          cdfOf(tr.Results, nil),
		Fast:         cdfOf(tr.Results, func(r EventResult) bool { return r.SourceClass == directory.Fast }),
		Slow:         cdfOf(tr.Results, func(r EventResult) bool { return r.SourceClass == directory.Slow }),
		Timeline:     s.BandwidthTimeline(),
		MeasureStart: int(measureStart / time.Second),
		MeasureEnd:   int(measureEnd / time.Second),
	}
	res.Events = len(tr.Results)
	return res
}

// AggregateBandwidth averages the timeline (bytes/second) over the
// measurement window.
func (r ChurnResult) AggregateBandwidth() float64 {
	lo, hi := r.MeasureStart, r.MeasureEnd
	if hi > len(r.Timeline) {
		hi = len(r.Timeline)
	}
	if lo >= hi {
		return 0
	}
	var sum int64
	for _, b := range r.Timeline[lo:hi] {
		sum += b
	}
	return float64(sum) / float64(hi-lo)
}
