package gossipsim

import (
	"time"

	"planetp/internal/faultnet"
	"planetp/internal/simnet"
)

// FaultSpec parameterizes a convergence-under-faults run: which faults
// the injected update must propagate through.
type FaultSpec struct {
	// Drop, Dup, Delay are per-message fault probabilities (see
	// faultnet.Config).
	Drop, Dup, Delay float64
	// DelayMin and DelayMax bound injected extra latency (defaults
	// 100 ms .. 2 s).
	DelayMin, DelayMax time.Duration
	// Partition, when set, splits the community into two halves from
	// PartitionAt to HealAt (both relative to the update's publish
	// time). HealAt <= PartitionAt never heals within the run.
	Partition           bool
	PartitionAt, HealAt time.Duration
	// Seed determines the fault schedule (independent of the sim seed).
	Seed int64
}

// FaultResult is the outcome of one convergence-under-faults run.
type FaultResult struct {
	// Converged reports whether every peer learned the update within
	// the horizon.
	Converged bool
	// Time is time-to-convergence (meaningful when Converged).
	Time time.Duration
	// ScheduleHash fingerprints the exact fault schedule that was
	// injected; equal hashes across runs mean byte-identical faults.
	ScheduleHash uint64
	// Digests holds every peer's final directory digest, indexed by
	// peer id; DigestsEqual reports they all match (identical replicas).
	Digests      []uint64
	DigestsEqual bool
	// Faults are the injected-fault totals.
	Faults faultnet.Counts
}

// ConvergenceUnderFaults runs the fault-tolerance experiment: a converged
// community of n peers, one peer publishes a 1000-key update, and the
// update must reach every replica through the spec's faults. Both seeds
// fully determine the run, so equal (sc, n, spec, seed) inputs reproduce
// byte-identical fault schedules and convergence times.
func ConvergenceUnderFaults(sc Scenario, n int, spec FaultSpec, seed int64) FaultResult {
	s := sc.newSim(n, n, seed)
	// Let timers take their random phases before injecting anything.
	s.Run(2 * time.Second)

	var parts []faultnet.Partition
	if spec.Partition {
		parts = append(parts, faultnet.Partition{
			Name: "halves",
			At:   s.Now() + spec.PartitionAt,
			Heal: s.Now() + spec.HealAt,
			Side: faultnet.SplitHalves(n),
		})
	}
	plan := faultnet.New(faultnet.Config{
		Seed: spec.Seed, Drop: spec.Drop, Dup: spec.Dup, Delay: spec.Delay,
		DelayMin: spec.DelayMin, DelayMax: spec.DelayMax,
		Partitions: parts,
	}, sc.Metrics)
	s.SetFaults(plan)

	tr := newTracker(s)
	src := s.Peers()[0]
	src.Node.Publish(Diff1000Keys, Full20000Keys+Diff1000Keys, nil)
	start := s.Now()
	tr.Watch(src.ID, src.Node.SelfRecord().Ver, "update", simnet.Class(src.Speed), nil)

	horizon := start + 6*time.Hour
	converged := s.RunUntil(horizon, func() bool { return tr.Outstanding() == 0 })
	tr.AbandonOutstanding()

	res := FaultResult{
		Converged:    converged,
		Time:         -1,
		ScheduleHash: plan.ScheduleHash(),
		Faults:       plan.Counts(),
		DigestsEqual: true,
	}
	if converged {
		res.Time = s.Now() - start
	}
	res.Digests = make([]uint64, n)
	for i, p := range s.Peers() {
		res.Digests[i] = p.Node.Directory().Digest()
		if res.Digests[i] != res.Digests[0] {
			res.DigestsEqual = false
		}
	}
	return res
}
