package gossipsim

import (
	"time"

	"planetp/internal/directory"
	"planetp/internal/faultnet"
	"planetp/internal/simnet"
)

// StormSpec scripts one churn-storm scenario on top of a converged
// community: a flash crowd (FlashJoin peers joining within one gossip
// round), a mass departure (DepartFrac of the membership leaving forever
// at once), and/or a partition whose heal triggers a mass rejoin with
// fresh incarnations. Event offsets are relative to the storm's start.
type StormSpec struct {
	Name string
	// N is the initial (converged) community size.
	N int
	// TDead is the directory GC horizon; every storm runs with GC on so
	// the T_Dead invariants are exercised, not just convergence.
	TDead time.Duration
	// DiscoverMin enables bootstrap discovery on every node (joiners are
	// the ones below the threshold, so established members pay nothing).
	DiscoverMin int
	// Drop is a per-message drop probability (0 = clean network);
	// FaultSeed fixes the fault schedule.
	Drop      float64
	FaultSeed int64

	// FlashJoin peers join at FlashAt, all within one gossip round, each
	// bootstrapping from a single existing member.
	FlashJoin int
	FlashAt   time.Duration
	// DepartFrac of the initial members (never peer 0) leave permanently
	// at DepartAt.
	DepartFrac float64
	DepartAt   time.Duration
	// Partition splits the community in half from PartitionAt to HealAt;
	// at heal every second-half member rejoins with a fresh incarnation.
	// Keep HealAt-PartitionAt well under TDead or cross-partition
	// suspicion legitimately garbage-collects live peers.
	Partition           bool
	PartitionAt, HealAt time.Duration

	// Horizon is how long to run after the last scripted event;
	// SampleEvery is the measurement cadence (default one interval).
	Horizon     time.Duration
	SampleEvery time.Duration
	// GCSlack is the allowed clearance slack for a departed record beyond
	// departure + TDead, covering failure detection and the 16-round GC
	// sweep period. Detection needs each observer to pick the dead target
	// twice among ~N candidates, so its tail scales with N intervals —
	// and once gossip goes quiet the adaptive interval stretches to
	// MaxInterval (2× base), doubling the wall-clock cost of a round.
	// Default (16N+32) intervals.
	GCSlack time.Duration
}

// StormSample is one measurement instant of a storm run.
type StormSample struct {
	// T is seconds since the storm's start.
	T float64 `json:"t"`
	// Online is the ground-truth on-line population.
	Online int `json:"online"`
	// Staleness is the mean (over on-line observers) fraction of held
	// records that are wrong vs ground truth: a departed member's record,
	// or a live member's record at an outdated version.
	Staleness float64 `json:"staleness"`
	// Coverage is the mean fraction of the live population each on-line
	// observer knows (self included).
	Coverage float64 `json:"coverage"`
	// DeadRecords counts (observer, departed member) pairs still held.
	DeadRecords int `json:"dead_records"`
	// BytesPerSec is the community-aggregate gossip bandwidth since the
	// previous sample.
	BytesPerSec float64 `json:"bytes_per_sec"`
}

// StormResult is one storm scenario's outcome.
type StormResult struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	Seed int64  `json:"seed"`
	// LiveDrops counts T_Dead violations of the first kind: a GC sweep
	// collected a member that was on-line (and had been for at least a
	// propagation grace period, so its presence was knowable).
	LiveDrops int `json:"live_drops"`
	// DeadViolations counts violations of the second kind: a departed
	// member's record still held past departure + TDead + GCSlack
	// (summed over samples; any nonzero value is a failure).
	DeadViolations int `json:"dead_violations"`
	// DeadClearedS is when (seconds since start) the last dead record
	// disappeared community-wide; -1 if none ever existed or they never
	// cleared within the run.
	DeadClearedS float64 `json:"dead_cleared_s"`
	// StaleIncarnations counts, at the end of the run, records of live
	// members held at an epoch older than the member's current one.
	StaleIncarnations int `json:"stale_incarnations"`
	// FinalStaleness/FinalCoverage are the last sample's values.
	FinalStaleness float64 `json:"final_staleness"`
	FinalCoverage  float64 `json:"final_coverage"`
	// TotalBytes is the aggregate gossip volume over the run;
	// BytesPerRound normalizes it to one gossip interval.
	TotalBytes    int64   `json:"total_bytes"`
	BytesPerRound float64 `json:"bytes_per_round"`
	// Converged reports full recovery: zero staleness, full coverage, no
	// dead records, no stale incarnations at the end of the run.
	Converged bool          `json:"converged"`
	Samples   []StormSample `json:"samples"`
}

// Storm runs one scripted churn storm. Both seeds (sim and fault) fully
// determine the run: equal (sc, spec, seed) inputs reproduce identical
// sample curves and summary counters.
func Storm(sc Scenario, spec StormSpec, seed int64) StormResult {
	if spec.SampleEvery <= 0 {
		spec.SampleEvery = sc.Interval
	}
	if spec.GCSlack <= 0 {
		spec.GCSlack = time.Duration(16*spec.N+32) * sc.Interval
	}
	sc.TDead = spec.TDead
	sc.DiscoverMin = spec.DiscoverMin
	capacity := spec.N + spec.FlashJoin

	res := StormResult{Name: spec.Name, N: spec.N, Seed: seed}
	departedAt := make(map[directory.PeerID]time.Duration)

	// Live-drop audit: a collected record is a violation when its member
	// is on-line and has been for long enough that news of it must have
	// propagated (a freshly rejoined member may legitimately be collected
	// by an observer its announcement has not reached yet).
	var s *simnet.Sim
	grace := 10 * sc.Interval
	cfg := sc.config()
	cfg.OnDrop = func(dropped []directory.PeerID, now time.Duration) {
		for _, id := range dropped {
			if int(id) >= len(s.Peers()) {
				continue
			}
			if _, gone := departedAt[id]; gone {
				continue
			}
			q := s.Peers()[id]
			if q.Online() && now-q.OnlineSince >= grace {
				res.LiveDrops++
			}
		}
	}
	s = simnet.New(capacity, cfg, simnet.DefaultParams(), seed)
	simnet.BuildCommunity(s, spec.N, sc.Profile, Diff1000Keys, Full20000Keys)
	s.Run(2 * time.Second) // settle the random tick phases
	start := s.Now()

	side := faultnet.SplitHalves(capacity)
	if spec.Drop > 0 || spec.Partition {
		var parts []faultnet.Partition
		if spec.Partition {
			parts = append(parts, faultnet.Partition{
				Name: "storm",
				At:   start + spec.PartitionAt,
				Heal: start + spec.HealAt,
				Side: side,
			})
		}
		s.SetFaults(faultnet.New(faultnet.Config{
			Seed: spec.FaultSeed, Drop: spec.Drop, Partitions: parts,
		}, sc.Metrics))
	}

	er := newExpRand(seed + 211)
	lastEvent := time.Duration(0)

	if spec.FlashJoin > 0 {
		s.At(start+spec.FlashAt, func() {
			for i := 0; i < spec.FlashJoin; i++ {
				// Every joiner knows exactly one existing member; the
				// rest of its view must come from discovery + gossip.
				s.AddPeer(speedFor(sc, i), Full20000Keys, Full20000Keys,
					directory.PeerID(i%spec.N))
			}
		})
		if spec.FlashAt > lastEvent {
			lastEvent = spec.FlashAt
		}
	}
	if spec.DepartFrac > 0 {
		s.At(start+spec.DepartAt, func() {
			n := int(spec.DepartFrac * float64(spec.N))
			// Never peer 0: the flash-crowd bootstrap target and the
			// conventional anchor stays up.
			perm := er.rng.Perm(spec.N - 1)
			for _, v := range perm[:n] {
				p := s.Peers()[v+1]
				if !p.Online() {
					continue
				}
				p.GoOffline()
				departedAt[p.ID] = s.Now()
			}
		})
		if spec.DepartAt > lastEvent {
			lastEvent = spec.DepartAt
		}
	}
	if spec.Partition {
		// Fractionally after the heal instant, so the partition is down
		// when the rejoin announcements start flowing.
		s.At(start+spec.HealAt+time.Millisecond, func() {
			for _, p := range s.Peers() {
				if p.Online() && side(p.ID) == 1 {
					p.Node.Rejoin(0, int(p.Node.SelfRecord().PayloadSize), nil)
				}
			}
		})
		if spec.HealAt > lastEvent {
			lastEvent = spec.HealAt
		}
	}

	end := start + lastEvent + spec.Horizon
	prevBytes := s.TotalBytes
	startBytes := s.TotalBytes
	for t := start + spec.SampleEvery; t <= end; t += spec.SampleEvery {
		t := t
		s.At(t, func() {
			sm := stormMeasure(s, departedAt)
			sm.T = (t - start).Seconds()
			sm.BytesPerSec = float64(s.TotalBytes-prevBytes) / spec.SampleEvery.Seconds()
			prevBytes = s.TotalBytes
			// Second T_Dead invariant: a departed record must be gone
			// within departure + TDead + slack. Counted per held pair so
			// a single laggard observer is visible in the total.
			for _, p := range s.Peers() {
				if !p.Online() {
					continue
				}
				for id, at := range departedAt {
					if t > at+spec.TDead+spec.GCSlack &&
						!p.Node.Directory().VersionOf(id).IsZero() {
						res.DeadViolations++
					}
				}
			}
			res.Samples = append(res.Samples, sm)
		})
	}
	s.Run(end)

	res.TotalBytes = s.TotalBytes - startBytes
	if rounds := float64(end-start) / float64(sc.Interval); rounds > 0 {
		res.BytesPerRound = float64(res.TotalBytes) / rounds
	}
	res.DeadClearedS = -1
	lastDead := -1
	for i, sm := range res.Samples {
		if sm.DeadRecords > 0 {
			lastDead = i
		}
	}
	if len(departedAt) > 0 && lastDead+1 < len(res.Samples) {
		res.DeadClearedS = res.Samples[lastDead+1].T
	}
	if n := len(res.Samples); n > 0 {
		res.FinalStaleness = res.Samples[n-1].Staleness
		res.FinalCoverage = res.Samples[n-1].Coverage
	}
	res.StaleIncarnations = staleIncarnations(s, departedAt)
	res.Converged = res.FinalStaleness == 0 && res.FinalCoverage == 1 &&
		res.StaleIncarnations == 0 &&
		(len(res.Samples) == 0 || res.Samples[len(res.Samples)-1].DeadRecords == 0)
	return res
}

// stormMeasure computes one sample against ground truth. Iteration is
// over the peers slice (never a map) so identical runs produce identical
// floating-point sums.
func stormMeasure(s *simnet.Sim, departedAt map[directory.PeerID]time.Duration) StormSample {
	peers := s.Peers()
	live := 0
	for _, p := range peers {
		if p.Online() {
			live++
		}
	}
	var sm StormSample
	sm.Online = live
	var stSum, covSum float64
	observers := 0
	for _, p := range peers {
		if !p.Online() {
			continue
		}
		observers++
		dir := p.Node.Directory()
		wrong, knownLive, total := 0, 0, 0
		for _, id := range dir.KnownIDs() {
			if id == p.ID {
				continue
			}
			total++
			if _, gone := departedAt[id]; gone {
				sm.DeadRecords++
				wrong++
				continue
			}
			knownLive++
			if dir.VersionOf(id).Less(peers[id].Node.SelfRecord().Ver) {
				wrong++
			}
		}
		if total > 0 {
			stSum += float64(wrong) / float64(total)
		}
		if live > 0 {
			covSum += float64(knownLive+1) / float64(live)
		}
	}
	if observers > 0 {
		sm.Staleness = stSum / float64(observers)
		sm.Coverage = covSum / float64(observers)
	}
	return sm
}

// staleIncarnations counts end-of-run records of live members held at an
// epoch older than the member's current incarnation.
func staleIncarnations(s *simnet.Sim, departedAt map[directory.PeerID]time.Duration) int {
	peers := s.Peers()
	stale := 0
	for _, p := range peers {
		if !p.Online() {
			continue
		}
		dir := p.Node.Directory()
		for _, id := range dir.KnownIDs() {
			if id == p.ID {
				continue
			}
			if _, gone := departedAt[id]; gone {
				continue
			}
			if dir.VersionOf(id).Epoch < peers[id].Node.SelfRecord().Ver.Epoch {
				stale++
			}
		}
	}
	return stale
}

// StormScenarios returns the acceptance trio for an initial community of
// n peers on the STORM scenario: a flash crowd of n/2 joiners with
// bootstrap discovery, a 25% mass departure under 25% message drop, and a
// partition-heal mass rejoin. Durations are in units of the STORM
// interval (10 s), with TDead chosen so a partition suspicion never
// reaches the GC horizon while the storm is in force.
func StormScenarios(n int) []StormSpec {
	iv := STORM.Interval
	tDead := 40 * iv
	return []StormSpec{
		{
			Name: "flash-crowd", N: n, TDead: tDead,
			FlashJoin: n / 2, FlashAt: 0, DiscoverMin: 8,
			Horizon: 60 * iv,
		},
		{
			Name: "mass-departure", N: n, TDead: tDead,
			DepartFrac: 0.25, DepartAt: 0,
			Drop: 0.25, FaultSeed: 42,
			// The horizon must reach past departure + TDead + the default
			// GCSlack, otherwise the dead-record deadline is never put to
			// the test; the extra margin keeps a few samples after it.
			Horizon: tDead + time.Duration(16*n+32)*iv + 60*iv,
		},
		{
			Name: "heal-rejoin", N: n, TDead: tDead,
			Partition: true, PartitionAt: 0, HealAt: 20 * iv,
			Horizon: 80 * iv,
		},
	}
}

// RatePoint is one x-value of the staleness-vs-churn-rate sweep.
type RatePoint struct {
	// Rate scales the Poisson on/off dwell rates (1 = baseline: 20 min
	// mean on-line, 10 min mean off-line).
	Rate float64 `json:"rate"`
	// Events is the number of rejoin events inside the window.
	Events int `json:"events"`
	// MeanStaleness averages the sampled directory staleness.
	MeanStaleness float64 `json:"mean_staleness"`
	// MeanOnline averages the sampled on-line population.
	MeanOnline float64 `json:"mean_online"`
	// BytesPerSec and BytesPerRound are the window's aggregate gossip
	// bandwidth.
	BytesPerSec   float64 `json:"bytes_per_sec"`
	BytesPerRound float64 `json:"bytes_per_round"`
}

// ChurnRateSweep measures directory staleness and gossip bandwidth as the
// churn rate scales: a community of n peers, 40% stable, the rest cycling
// with Poisson dwell times divided by each rate. Deterministic for equal
// (sc, n, rates, seed).
func ChurnRateSweep(sc Scenario, n int, rates []float64, seed int64) []RatePoint {
	out := make([]RatePoint, 0, len(rates))
	for ri, rate := range rates {
		sc := sc
		sc.TDead = 0 // isolate churn bandwidth from GC effects
		s := sc.newSim(n, n, seed+int64(ri))
		s.Run(2 * time.Second)
		er := newExpRand(seed + 307 + int64(ri))
		meanOn := time.Duration(float64(20*time.Minute) / rate)
		meanOff := time.Duration(float64(10*time.Minute) / rate)

		pt := RatePoint{Rate: rate}
		var schedule func(p *simnet.Peer, online bool)
		schedule = func(p *simnet.Peer, online bool) {
			if online {
				s.After(er.exp(meanOn), func() {
					p.GoOffline()
					schedule(p, false)
				})
			} else {
				s.After(er.exp(meanOff), func() {
					p.GoOnline(0)
					pt.Events++
					schedule(p, true)
				})
			}
		}
		nStable := int(0.4 * float64(n))
		for _, p := range s.Peers()[nStable:] {
			schedule(p, true)
		}

		warmup := 5 * time.Minute
		window := 30 * time.Minute
		s.Run(s.Now() + warmup)
		startBytes := s.TotalBytes
		startEvents := pt.Events
		var stSum, onSum float64
		samples := 0
		none := map[directory.PeerID]time.Duration{}
		for t := s.Now() + sc.Interval; t <= s.Now()+window; t += sc.Interval {
			s.At(t, func() {
				sm := stormMeasure(s, none)
				stSum += sm.Staleness
				onSum += float64(sm.Online)
				samples++
			})
		}
		s.Run(s.Now() + window)
		pt.Events -= startEvents
		if samples > 0 {
			pt.MeanStaleness = stSum / float64(samples)
			pt.MeanOnline = onSum / float64(samples)
		}
		pt.BytesPerSec = float64(s.TotalBytes-startBytes) / window.Seconds()
		pt.BytesPerRound = pt.BytesPerSec * sc.Interval.Seconds()
		out = append(out, pt)
	}
	return out
}
