package gossipsim

import (
	"time"

	"planetp/internal/simnet"
)

// The ingest experiment: how a sustained stream of local publishes loads
// the gossip layer. Documents arrive at one source at a fixed rate;
// publishing each on arrival produces a version bump — and a fresh rumor
// storm through the whole community — per document, while batching B
// arrivals per publish produces one bump per batch carrying the same
// aggregate filter diff. The interesting outputs are the announcement
// count, the aggregate bytes gossiped, and the time until every peer
// holds the source's final version.

// TermsPerDoc is the assumed count of new filter keys per ingested
// document (Table 3's collections average 100-500 distinct terms per
// document; 100 keeps diffs in Table 2's ~3 B/key regime).
const TermsPerDoc = 100

// diffBytesPerKey follows Table 2: a Golomb-coded Bloom diff costs about
// 3 bytes per key.
const diffBytesPerKey = 3

// IngestResult records one ingest-burst run.
type IngestResult struct {
	Scenario string
	N        int
	// Docs is the burst size; Batch the documents per publish.
	Docs, Batch int
	// Publishes is the number of version bumps the burst produced.
	Publishes int
	// Time is until every peer holds the source's final version.
	Time time.Duration
	// Bytes is the aggregate gossip volume during convergence.
	Bytes int64
	// Converged reports whether the horizon was met.
	Converged bool
}

// Ingest runs one ingest stream: a converged community of n peers, docs
// documents arriving at one source every interarrival (<= 0 takes the
// scenario's gossip interval — one arrival per round, the regime where
// per-document publishing keeps the community perpetually re-converging).
// The source publishes every batch arrivals; batch <= 1 models the
// per-document Publish loop. Time and bytes cover the whole stream, from
// the first arrival until every peer holds the final version.
func Ingest(sc Scenario, n, docs, batch int, interarrival time.Duration, seed int64) IngestResult {
	if batch < 1 {
		batch = 1
	}
	if interarrival <= 0 {
		interarrival = sc.Interval
	}
	s := sc.newSim(n, n, seed)
	s.Run(2 * time.Second)
	startBytes := s.TotalBytes
	tr := newTracker(s)

	src := s.Peers()[0]
	start := s.Now()
	publishes := 0
	pending := 0
	for i := 0; i < docs; i++ {
		i := i
		s.At(start+time.Duration(i)*interarrival, func() {
			pending++
			if pending < batch && i != docs-1 {
				return
			}
			diff := diffBytesPerKey * TermsPerDoc * pending
			src.Node.Publish(diff, Full20000Keys+diff, nil)
			publishes++
			pending = 0
			if i == docs-1 {
				// Only the final version needs tracking: earlier bumps
				// are superseded the moment a peer learns a later one.
				tr.Watch(src.ID, src.Node.SelfRecord().Ver, "ingest", simnet.Class(src.Speed), nil)
			}
		})
	}
	lastAt := start + time.Duration(docs-1)*interarrival
	horizon := lastAt + 6*time.Hour
	conv := s.RunUntil(horizon, func() bool {
		return s.Now() > lastAt && tr.Outstanding() == 0
	})
	tr.AbandonOutstanding()
	return IngestResult{
		Scenario: sc.Name, N: n, Docs: docs, Batch: batch,
		Publishes: publishes, Time: s.Now() - start,
		Bytes: s.TotalBytes - startBytes, Converged: conv,
	}
}

// IngestSweep runs Ingest across batch sizes for a fixed stream.
func IngestSweep(sc Scenario, n, docs int, batches []int, seed int64) []IngestResult {
	out := make([]IngestResult, 0, len(batches))
	for _, b := range batches {
		out = append(out, Ingest(sc, n, docs, b, 0, seed))
	}
	return out
}
