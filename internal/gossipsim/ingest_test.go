package gossipsim

import "testing"

// A batched ingest stream must converge with far fewer announcements and
// less gossip traffic than the per-document stream carrying the same
// content.
func TestIngestBatchedCheaperThanPerDoc(t *testing.T) {
	const n, docs = 60, 64
	perDoc := Ingest(LAN, n, docs, 1, 0, 7)
	batched := Ingest(LAN, n, docs, docs, 0, 7)
	if !perDoc.Converged || !batched.Converged {
		t.Fatalf("unconverged: per-doc %v batched %v", perDoc.Converged, batched.Converged)
	}
	if perDoc.Publishes != docs || batched.Publishes != 1 {
		t.Fatalf("publish counts: per-doc %d (want %d), batched %d (want 1)",
			perDoc.Publishes, docs, batched.Publishes)
	}
	if batched.Bytes >= perDoc.Bytes {
		t.Fatalf("batched burst gossiped %d bytes, per-doc %d — batching saved nothing",
			batched.Bytes, perDoc.Bytes)
	}
	if batched.Time <= 0 || perDoc.Time <= 0 {
		t.Fatalf("non-positive convergence times: %v %v", batched.Time, perDoc.Time)
	}
}

// Partial batches: a stream not divisible by the batch size still
// publishes every document.
func TestIngestPartialBatch(t *testing.T) {
	r := Ingest(LAN, 20, 10, 4, 0, 3)
	if r.Publishes != 3 { // 4+4+2
		t.Fatalf("publishes = %d, want 3", r.Publishes)
	}
	if !r.Converged {
		t.Fatal("burst did not converge")
	}
}
