package gossipsim

import (
	"fmt"
	"runtime"
	"time"

	"planetp/internal/bloom"
	"planetp/internal/directory"
	"planetp/internal/filtercache"
)

// ScaleSpec parameterizes the directory-scale experiment: how much memory
// does one replica of the community directory cost at n peers, and what
// does the compressed-resident design (columnar directory + compact
// probing + budgeted hot LRU) save over keeping every peer's Bloom filter
// decompressed, the pre-diet dirView behavior.
type ScaleSpec struct {
	// N is the community size (directory capacity and member count).
	N int
	// TermsPerFilter is the per-peer key count inserted into each Bloom
	// filter (default 1000 — the paper's update unit).
	TermsPerFilter int
	// CacheBudget bounds the probe cache (0 = filtercache default).
	CacheBudget int64
	// QueryTerms is how many digests each fan-out probe ANDs together
	// (default 3, a typical multi-term query).
	QueryTerms int
	// ConvergeMax gates the in-simulator convergence probe: it runs only
	// when N <= ConvergeMax (the full-community simulation is O(n²); at
	// 100k only the single-replica memory measurement is feasible).
	// 0 means never.
	ConvergeMax int
	// Seed drives the convergence simulation.
	Seed int64
}

// WithDefaults fills zero fields.
func (sp ScaleSpec) WithDefaults() ScaleSpec {
	if sp.TermsPerFilter <= 0 {
		sp.TermsPerFilter = 1000
	}
	if sp.QueryTerms <= 0 {
		sp.QueryTerms = 3
	}
	return sp
}

// ScalePoint is one row of BENCH_directory.json.
type ScalePoint struct {
	N              int `json:"n"`
	TermsPerFilter int `json:"terms_per_filter"`
	// PayloadBytes is the compressed wire size of one peer's filter.
	PayloadBytes int `json:"payload_bytes"`
	// DirectoryBytes is the measured heap cost of one fully populated
	// replica (columns + interned addresses + compressed payloads).
	DirectoryBytes int64   `json:"directory_bytes"`
	BytesPerPeer   float64 `json:"bytes_per_peer"`
	// BaselineBytesPerPeer is the per-peer heap cost of the decompressed
	// baseline: every filter materialized as a full bitset, the pre-diet
	// dirView steady state (measured on a sample, it is constant per
	// peer).
	BaselineBytesPerPeer float64 `json:"baseline_bytes_per_peer"`
	// Ratio = BytesPerPeer / BaselineBytesPerPeer (directory only vs
	// resident filters; the acceptance bar is <= ~1/5).
	Ratio float64 `json:"ratio"`
	// ColdProbeNS / WarmProbeNS are per-peer fan-out probe latencies: a
	// QueryTerms-digest ContainsAllDigests sweep over every peer, first
	// pass (decode misses) vs second pass (cache-resident).
	ColdProbeNS float64 `json:"cold_probe_ns"`
	WarmProbeNS float64 `json:"warm_probe_ns"`
	// CacheResidentBytes is the probe cache's post-sweep residency
	// (bounded by the budget regardless of N).
	CacheResidentBytes int64 `json:"cache_resident_bytes"`
	// HeapAllocBytes is runtime.MemStats.HeapAlloc at steady state
	// (directory + cache resident, after the warm sweep and a GC).
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// ConvergeS is the simulated time for one 1000-key update to reach
	// all N peers (LAN scenario); -1 when the probe was skipped.
	ConvergeS float64 `json:"converge_s"`
	// BuildS is the wall time to populate the replica.
	BuildS float64 `json:"build_s"`
}

// payloadSource adapts a Directory to filtercache.Source.
type payloadSource struct{ d *directory.Directory }

func (s payloadSource) Payload(id directory.PeerID) ([]byte, directory.Version, bool) {
	return s.d.Payload(id)
}

// heapAlloc returns post-GC live heap bytes. Two collections settle
// finalizer-reachable garbage so deltas measure retained state, not
// allocation traffic.
func heapAlloc() uint64 {
	runtime.GC()
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// scalePool builds a pool of distinct compressed filters; peers cycle
// through the pool but every peer gets a private copy of the bytes, so
// per-peer heap cost is honest while filter construction stays O(pool).
func scalePool(terms int) [][]byte {
	const poolSize = 64
	pool := make([][]byte, poolSize)
	for i := range pool {
		f := bloom.Default()
		for t := 0; t < terms; t++ {
			f.Insert(fmt.Sprintf("w%03d-%05d", i, t))
		}
		pool[i] = f.Compress()
	}
	return pool
}

// DirectoryScale measures one replica of an n-peer community directory:
// build it record by record with realistic compressed payloads and unique
// addresses, weigh it against the decompressed-filter baseline, then
// sweep a multi-term query fan-out through the probe cache cold and warm.
// For N <= ConvergeMax it also runs the Figure-2 propagation probe at the
// same size so the memory diet is tied to a live convergence number.
func DirectoryScale(sc Scenario, spec ScaleSpec) ScalePoint {
	spec = spec.WithDefaults()
	n := spec.N
	pool := scalePool(spec.TermsPerFilter)
	pt := ScalePoint{N: n, TermsPerFilter: spec.TermsPerFilter, PayloadBytes: len(pool[0]), ConvergeS: -1}

	// --- replica build + weigh ---
	buildStart := time.Now()
	before := heapAlloc()
	d := directory.New(0, n)
	for id := 1; id < n; id++ {
		src := pool[id%len(pool)]
		pay := append([]byte(nil), src...)
		d.Upsert(directory.Record{
			ID:  directory.PeerID(id),
			Ver: directory.Version{Epoch: 1, Seq: 1},
			Addr: fmt.Sprintf("10.%d.%d.%d:4000",
				(id>>16)&255, (id>>8)&255, id&255),
			PayloadSize: int32(len(pay)),
			DiffSize:    Diff1000Keys,
			Payload:     pay,
		})
	}
	pt.BuildS = time.Since(buildStart).Seconds()
	after := heapAlloc()
	if after > before {
		pt.DirectoryBytes = int64(after - before)
	}
	pt.BytesPerPeer = float64(pt.DirectoryBytes) / float64(n-1)

	// --- decompressed baseline (sampled: constant per peer) ---
	sample := n - 1
	if sample > 10000 {
		sample = 10000
	}
	baseBefore := heapAlloc()
	filters := make([]*bloom.Filter, 0, sample)
	for id := 1; id <= sample; id++ {
		pay, _, ok := d.Payload(directory.PeerID(id))
		if !ok {
			continue
		}
		f, err := bloom.Decompress(pay)
		if err == nil {
			filters = append(filters, f)
		}
	}
	baseAfter := heapAlloc()
	// KeepAlive: without it only len(filters) is live below and the GC
	// inside heapAlloc is free to collect the filters before the "after"
	// reading.
	runtime.KeepAlive(filters)
	if baseAfter > baseBefore && len(filters) > 0 {
		pt.BaselineBytesPerPeer = float64(baseAfter-baseBefore) / float64(len(filters))
	}
	filters = nil
	if pt.BaselineBytesPerPeer > 0 {
		pt.Ratio = pt.BytesPerPeer / pt.BaselineBytesPerPeer
	}

	// --- query fan-out, cold then warm ---
	cache := filtercache.New(payloadSource{d}, filtercache.Config{Budget: spec.CacheBudget})
	digests := make([]bloom.Digest, spec.QueryTerms)
	for t := range digests {
		digests[t] = bloom.MakeDigest(fmt.Sprintf("w000-%05d", t))
	}
	sweep := func() time.Duration {
		start := time.Now()
		hits := 0
		for id := 1; id < n; id++ {
			if cache.ContainsAllDigests(directory.PeerID(id), digests) {
				hits++
			}
		}
		_ = hits
		return time.Since(start)
	}
	pt.ColdProbeNS = float64(sweep().Nanoseconds()) / float64(n-1)
	pt.WarmProbeNS = float64(sweep().Nanoseconds()) / float64(n-1)
	pt.CacheResidentBytes = cache.ResidentBytes()
	pt.HeapAllocBytes = heapAlloc()
	runtime.KeepAlive(d)
	runtime.KeepAlive(cache)

	// --- convergence probe (full simulation, gated by size) ---
	if spec.ConvergeMax > 0 && n <= spec.ConvergeMax {
		pt.ConvergeS = Propagation(sc, n, spec.Seed).Time.Seconds()
	}
	return pt
}

// DirectoryScaleSweep runs DirectoryScale over several community sizes.
func DirectoryScaleSweep(sc Scenario, sizes []int, spec ScaleSpec) []ScalePoint {
	out := make([]ScalePoint, 0, len(sizes))
	for _, n := range sizes {
		sp := spec
		sp.N = n
		out = append(out, DirectoryScale(sc, sp))
	}
	return out
}
