package gossipsim

import (
	"fmt"
	"sort"
	"time"

	"planetp/internal/chash"
	"planetp/internal/directory"
	"planetp/internal/faultnet"
	"planetp/internal/simnet"
)

// Replication availability experiment: how many fetch hits survive a
// membership storm as a function of the replication factor k.
//
// The simnet community gossips real directories but carries no real
// documents, so the content layer is modeled on top of it with the same
// rules internal/core uses:
//
//   - M documents with Zipf popularity (rank r has weight 1/(r+1));
//     owners are striped round-robin over the initial membership, and
//     the "hot decile" is the top M/10 ranks — for M = 10N every peer
//     owns exactly one hot-decile document, so a departure storm's
//     effect on the hot set is exact, not sampled.
//   - Placement mirrors core.replicaHolders: a document's replica set is
//     its owner plus the first extra(r) successors of chash.Hash(key) on
//     the brokerage ring (ids from chash.IDForPeer), skipping the owner.
//     extra(r) scales with popularity — the full k-1 through the hot
//     ranks, decaying toward zero with the Zipf tail — exactly the
//     TargetReplicas = score/HotScore shape of internal/replica.
//   - Hoarding repair runs once per gossip interval: every live holder
//     recomputes the desired replica set on the ring of ITS OWN
//     directory's on-line view and pushes missing copies. A push lands
//     only if the target is truly on-line and reachable (partition
//     sides), so repair speed is gated by how fast the gossiped
//     directory detects the storm — the coupling the experiment exists
//     to measure. Message drops slow that detection (they fault the
//     gossip layer); the model's own fetch/push RPCs retry within an
//     interval and are not dropped.
//   - Availability is judged from observer peer 0 (the anchor that never
//     departs): a document is available when at least one holder is
//     on-line and on the observer's side of any active partition —
//     core.ResolveDocument's failover tries every announced holder, so
//     one live replica suffices.
//
// Departed peers keep their disks (a rejoin serves again) but serve
// nothing while off-line; replicas are never garbage-collected during
// the run (the storm keeps hot documents hot).

// ReplicationSample is one measurement instant of a replication run.
type ReplicationSample struct {
	// T is seconds since the storm's start.
	T float64 `json:"t"`
	// Online is the ground-truth on-line population.
	Online int `json:"online"`
	// Availability is the unweighted fraction of documents with a live
	// reachable holder; HitAvailability weights by Zipf popularity (the
	// fraction of fetch attempts that would succeed); HotAvailability
	// restricts to the hot decile.
	Availability    float64 `json:"availability"`
	HitAvailability float64 `json:"hit_availability"`
	HotAvailability float64 `json:"hot_availability"`
	// Repairs is the cumulative count of successful repair pushes.
	Repairs int `json:"repairs"`
}

// ReplicationResult is one (storm, k) run's outcome.
type ReplicationResult struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	K    int    `json:"k"`
	Docs int    `json:"docs"`
	// HotDocs is the hot-decile size (Docs/10).
	HotDocs int   `json:"hot_docs"`
	Seed    int64 `json:"seed"`
	// MinHotAvailability is the worst sampled hot-decile availability
	// (the storm's deepest dip); FinalHotAvailability is the last
	// sample's — what survives once repair has run its course.
	MinHotAvailability   float64 `json:"min_hot_availability"`
	FinalHotAvailability float64 `json:"final_hot_availability"`
	// FinalHitAvailability / FinalAvailability are the last sample's
	// popularity-weighted and unweighted fractions; MeanHitAvailability
	// averages the weighted fraction over all samples (the run-long
	// fetch success rate).
	FinalHitAvailability float64 `json:"final_hit_availability"`
	FinalAvailability    float64 `json:"final_availability"`
	MeanHitAvailability  float64 `json:"mean_hit_availability"`
	// LostDocs / LostHotDocs count documents whose every holder departed
	// — unrecoverable without a rejoin.
	LostDocs    int `json:"lost_docs"`
	LostHotDocs int `json:"lost_hot_docs"`
	// Repairs is the total number of successful repair pushes.
	Repairs int                 `json:"repairs"`
	Samples []ReplicationSample `json:"samples"`
}

// replicaModel is the analytic content layer: keys, owners, popularity
// ranks, per-document replica targets, and the evolving holder sets.
type replicaModel struct {
	n, k    int
	keys    []string
	owners  []directory.PeerID
	weights []float64
	// extra[i] is how many replicas beyond the owner document i wants.
	extra   []int
	holders []map[directory.PeerID]bool
	hotDocs int
	wSum    float64
}

// newReplicaModel builds the document population and its pre-storm
// placement on the converged full-membership ring.
func newReplicaModel(n, docs, k int) *replicaModel {
	m := &replicaModel{
		n: n, k: k,
		keys:    make([]string, docs),
		owners:  make([]directory.PeerID, docs),
		weights: make([]float64, docs),
		extra:   make([]int, docs),
		holders: make([]map[directory.PeerID]bool, docs),
		hotDocs: docs / 10,
	}
	all := make([]directory.PeerID, n)
	for i := range all {
		all[i] = directory.PeerID(i)
	}
	ring := replicaRing(all)
	// extra(r) follows internal/replica's TargetReplicas shape: the
	// decile-boundary rank still earns the full k-1 extras, and the Zipf
	// tail decays below it (score ∝ weight, HotScore = the boundary
	// weight divided by k-1).
	boundary := 1.0 / float64(m.hotDocs)
	for i := 0; i < docs; i++ {
		m.keys[i] = fmt.Sprintf("doc-%05d", i)
		m.owners[i] = directory.PeerID(i % n)
		m.weights[i] = 1.0 / float64(i+1)
		m.wSum += m.weights[i]
		if k > 1 {
			score := m.weights[i] / boundary * float64(k-1)
			e := int(score)
			if e > k-1 {
				e = k - 1
			}
			m.extra[i] = e
		}
		m.holders[i] = map[directory.PeerID]bool{m.owners[i]: true}
		for _, h := range ringReplicas(ring, m.keys[i], m.owners[i], m.extra[i]) {
			m.holders[i][h] = true
		}
	}
	return m
}

// replicaRing builds the brokerage ring over a membership list with the
// same id derivation and collision walk as core.brokerRing.
func replicaRing(ids []directory.PeerID) *chash.Ring[directory.PeerID] {
	ring := chash.NewRing[directory.PeerID]()
	for _, id := range ids {
		bid := chash.IDForPeer(int32(id))
		for !ring.Join(bid, id) {
			bid = (bid + 1) % chash.MaxID
		}
	}
	return ring
}

// ringReplicas mirrors core.replicaHolders: the first n ring successors
// of the key's hash, skipping the origin.
func ringReplicas(ring *chash.Ring[directory.PeerID], key string, origin directory.PeerID, n int) []directory.PeerID {
	if n <= 0 || ring.Len() == 0 {
		return nil
	}
	cands := ring.Successors(chash.Hash(key), n+1)
	out := make([]directory.PeerID, 0, n)
	for _, c := range cands {
		if c == origin {
			continue
		}
		out = append(out, c)
		if len(out) == n {
			break
		}
	}
	return out
}

// sortedHolders returns a document's holder set in id order so repair
// and measurement iterate deterministically.
func (m *replicaModel) sortedHolders(i int) []directory.PeerID {
	out := make([]directory.PeerID, 0, len(m.holders[i]))
	for h := range m.holders[i] {
		out = append(out, h)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// repair runs one hoarding tick: every live holder pushes copies toward
// the replica set it computes from its own directory view. Returns the
// number of successful pushes.
func (m *replicaModel) repair(s *simnet.Sim, reachable func(a, b directory.PeerID) bool) int {
	peers := s.Peers()
	pushed := 0
	for i := range m.keys {
		if m.extra[i] == 0 {
			continue
		}
		for _, h := range m.sortedHolders(i) {
			if !peers[h].Online() {
				continue
			}
			// The holder's ring is its own (possibly stale) view: pushes
			// aimed at peers it has not yet detected as departed simply
			// fail, so repair converges at directory speed.
			view := peers[h].Node.Directory().OnlineIDs()
			ring := replicaRing(view)
			for _, d := range ringReplicas(ring, m.keys[i], m.owners[i], m.extra[i]) {
				if m.holders[i][d] || int(d) >= len(peers) {
					continue
				}
				if !peers[d].Online() || !reachable(h, d) {
					continue
				}
				m.holders[i][d] = true
				pushed++
			}
		}
	}
	return pushed
}

// measure computes one availability sample from the observer.
func (m *replicaModel) measure(s *simnet.Sim, observer directory.PeerID, reachable func(a, b directory.PeerID) bool) ReplicationSample {
	peers := s.Peers()
	var sm ReplicationSample
	for _, p := range peers {
		if p.Online() {
			sm.Online++
		}
	}
	availSum, hitSum, hot := 0, 0.0, 0
	for i := range m.keys {
		avail := false
		for _, h := range m.sortedHolders(i) {
			if peers[h].Online() && reachable(observer, h) {
				avail = true
				break
			}
		}
		if !avail {
			continue
		}
		availSum++
		hitSum += m.weights[i]
		if i < m.hotDocs {
			hot++
		}
	}
	sm.Availability = float64(availSum) / float64(len(m.keys))
	sm.HitAvailability = hitSum / m.wSum
	sm.HotAvailability = float64(hot) / float64(m.hotDocs)
	return sm
}

// Replication runs one storm at one replication factor. Deterministic
// for equal (sc, spec, docs, k, seed): departures reuse the churn-storm
// permutation stream, so the same peers leave as in Storm with the same
// seed.
func Replication(sc Scenario, spec StormSpec, docs, k int, seed int64) ReplicationResult {
	if spec.SampleEvery <= 0 {
		spec.SampleEvery = sc.Interval
	}
	sc.TDead = spec.TDead
	sc.DiscoverMin = spec.DiscoverMin
	capacity := spec.N

	res := ReplicationResult{
		Name: spec.Name, N: spec.N, K: k, Docs: docs, HotDocs: docs / 10, Seed: seed,
	}
	s := simnet.New(capacity, sc.config(), simnet.DefaultParams(), seed)
	simnet.BuildCommunity(s, spec.N, sc.Profile, Diff1000Keys, Full20000Keys)
	s.Run(2 * time.Second) // settle the random tick phases
	start := s.Now()

	side := faultnet.SplitHalves(capacity)
	if spec.Drop > 0 || spec.Partition {
		var parts []faultnet.Partition
		if spec.Partition {
			parts = append(parts, faultnet.Partition{
				Name: "storm",
				At:   start + spec.PartitionAt,
				Heal: start + spec.HealAt,
				Side: side,
			})
		}
		s.SetFaults(faultnet.New(faultnet.Config{
			Seed: spec.FaultSeed, Drop: spec.Drop, Partitions: parts,
		}, sc.Metrics))
	}
	// reachable models the partition for the content RPCs (fetch and
	// repair pushes): while the split is in force only same-side pairs
	// connect. Probabilistic drops are left to the gossip layer — a
	// fetch retries within the user's patience, a push within the next
	// hoard tick.
	reachable := func(a, b directory.PeerID) bool {
		if !spec.Partition {
			return true
		}
		now := s.Now()
		if now < start+spec.PartitionAt || now >= start+spec.HealAt {
			return true
		}
		return side(a) == side(b)
	}

	m := newReplicaModel(spec.N, docs, k)

	er := newExpRand(seed + 211)
	lastEvent := time.Duration(0)
	if spec.DepartFrac > 0 {
		s.At(start+spec.DepartAt, func() {
			n := int(spec.DepartFrac * float64(spec.N))
			// Never peer 0: the observer anchor stays up (same rule and
			// permutation stream as the churn storms).
			perm := er.rng.Perm(spec.N - 1)
			for _, v := range perm[:n] {
				p := s.Peers()[v+1]
				if p.Online() {
					p.GoOffline()
				}
			}
		})
		if spec.DepartAt > lastEvent {
			lastEvent = spec.DepartAt
		}
	}
	if spec.Partition {
		s.At(start+spec.HealAt+time.Millisecond, func() {
			for _, p := range s.Peers() {
				if p.Online() && side(p.ID) == 1 {
					p.Node.Rejoin(0, int(p.Node.SelfRecord().PayloadSize), nil)
				}
			}
		})
		if spec.HealAt > lastEvent {
			lastEvent = spec.HealAt
		}
	}

	end := start + lastEvent + spec.Horizon
	repairs := 0
	for t := start + spec.SampleEvery; t <= end; t += spec.SampleEvery {
		t := t
		s.At(t, func() {
			repairs += m.repair(s, reachable)
			sm := m.measure(s, 0, reachable)
			sm.T = (t - start).Seconds()
			sm.Repairs = repairs
			res.Samples = append(res.Samples, sm)
		})
	}
	s.Run(end)

	res.Repairs = repairs
	res.MinHotAvailability = 1
	var hitSum float64
	for _, sm := range res.Samples {
		if sm.HotAvailability < res.MinHotAvailability {
			res.MinHotAvailability = sm.HotAvailability
		}
		hitSum += sm.HitAvailability
	}
	if n := len(res.Samples); n > 0 {
		last := res.Samples[n-1]
		res.FinalHotAvailability = last.HotAvailability
		res.FinalHitAvailability = last.HitAvailability
		res.FinalAvailability = last.Availability
		res.MeanHitAvailability = hitSum / float64(n)
	}
	peers := s.Peers()
	for i := range m.keys {
		lost := true
		for h := range m.holders[i] {
			if peers[h].Online() {
				lost = false
				break
			}
		}
		if lost {
			res.LostDocs++
			if i < m.hotDocs {
				res.LostHotDocs++
			}
		}
	}
	return res
}

// ReplicationScenarios returns the two acceptance storms for a community
// of n peers on the STORM scenario: the 25%-departure / 25%-drop mass
// departure (does content die with its owners?) and the partition-heal
// split (does availability dip and fully recover?). Horizons cover
// failure detection plus several repair rounds; GC horizons are the
// churn storms' business, not this experiment's.
func ReplicationScenarios(n int) []StormSpec {
	iv := STORM.Interval
	tDead := 40 * iv
	return []StormSpec{
		{
			Name: "mass-departure", N: n, TDead: tDead,
			DepartFrac: 0.25, DepartAt: 0,
			Drop: 0.25, FaultSeed: 42,
			Horizon: 60 * iv,
		},
		{
			Name: "partition-heal", N: n, TDead: tDead,
			Partition: true, PartitionAt: 0, HealAt: 20 * iv,
			Horizon: 60 * iv,
		},
	}
}
