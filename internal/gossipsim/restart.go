package gossipsim

import (
	"fmt"
	"time"

	"planetp/internal/directory"
	"planetp/internal/faultnet"
	"planetp/internal/simnet"
	"planetp/internal/store"
)

// RestartResult is the outcome of one crash/restart-under-faults run.
type RestartResult struct {
	// Converged reports whether every surviving peer learned the
	// restarted incarnation's record within the horizon.
	Converged bool
	// Time is restart-to-convergence (meaningful when Converged).
	Time time.Duration
	// OldVer is the version the victim gossiped before the crash; NewVer
	// is what the restarted incarnation announced. NewVer must supersede
	// OldVer or the community ignores the restart.
	OldVer, NewVer directory.Version
	// RecoveredOps is how many WAL operations survived the crash and were
	// replayed; TruncatedRecords counts torn tails recovery dropped.
	RecoveredOps     int
	TruncatedRecords int
	// StaleRecords counts peers still holding a pre-restart version of
	// the victim's record at the end of the run (must be zero when
	// Converged — epoch supersession worked community-wide).
	StaleRecords int
	// ScheduleHash fingerprints the injected network-fault schedule;
	// Faults are the injected-fault totals.
	ScheduleHash uint64
	Faults       faultnet.Counts
}

// restartUpdates is how many durable updates the victim publishes before
// the crash; one more is published whose WAL append tears mid-write.
const restartUpdates = 5

// RestartUnderFaults runs the crash/restart experiment: a converged
// community of n peers under the spec's network faults; peer 1 (the
// victim) publishes a series of updates, each appended to a write-ahead
// log on a fault-injected in-memory disk. Mid-gossip the victim's disk
// tears a record and the process dies (off-line + unsynced page cache
// lost). After the community has gossiped around the corpse for a while,
// the victim recovers from the surviving bytes, restarts with a fresh
// node at an epoch strictly past everything the dead incarnation could
// have announced, and rejoins through one bootstrap contact. The run
// converges when every surviving peer holds the new incarnation's record
// — and zero stale pre-crash records remain anywhere.
//
// Both seeds fully determine the run (network schedule, disk tear
// lengths, page-cache loss), so equal inputs reproduce it exactly.
func RestartUnderFaults(sc Scenario, n int, spec FaultSpec, seed int64) RestartResult {
	s := sc.newSim(n, n, seed)
	s.Run(2 * time.Second)

	var parts []faultnet.Partition
	if spec.Partition {
		parts = append(parts, faultnet.Partition{
			Name: "halves",
			At:   s.Now() + spec.PartitionAt,
			Heal: s.Now() + spec.HealAt,
			Side: faultnet.SplitHalves(n),
		})
	}
	plan := faultnet.New(faultnet.Config{
		Seed: spec.Seed, Drop: spec.Drop, Dup: spec.Dup, Delay: spec.Delay,
		DelayMin: spec.DelayMin, DelayMax: spec.DelayMax,
		Partitions: parts,
	}, sc.Metrics)
	s.SetFaults(plan)

	// The victim's durable store: a WAL on a fault-injected in-memory
	// disk, fsync-on-commit.
	mem := store.NewMemFS()
	ffs := store.NewFaultFS(mem, seed)
	st, _, err := store.Open(store.Options{Dir: "data", FS: ffs})
	if err != nil {
		panic(fmt.Sprintf("gossipsim: opening victim store: %v", err))
	}

	victim := s.Peers()[1]
	logUpdate := func(i int) error {
		victim.Node.Publish(Diff1000Keys, Full20000Keys+Diff1000Keys, nil)
		ver := victim.Node.SelfRecord().Ver
		_, err := st.Append(store.Op{
			Kind: store.OpPublish, Data: fmt.Sprintf("doc-%d", i),
			Epoch: ver.Epoch, Seq: ver.Seq,
		})
		return err
	}
	for i := 0; i < restartUpdates; i++ {
		i := i
		s.At(s.Now()+time.Duration(i+1)*sc.Interval, func() {
			if err := logUpdate(i); err != nil {
				panic(fmt.Sprintf("gossipsim: pre-crash append: %v", err))
			}
		})
	}

	// The crash: mid-gossip, one more update's WAL append tears partway
	// through the record and the process dies. Unsynced page-cache bytes
	// are (partially, seeded) lost.
	var oldVer directory.Version
	crashAt := s.Now() + time.Duration(restartUpdates+1)*sc.Interval + sc.Interval/2
	s.At(crashAt, func() {
		ffs.CrashAt(ffs.Ops(), store.CrashTorn)
		if err := logUpdate(restartUpdates); err == nil {
			panic("gossipsim: torn append reported success")
		}
		oldVer = victim.Node.SelfRecord().Ver
		victim.GoOffline()
		mem.Crash(seed ^ 0x1db3)
	})

	// Let the community gossip around the corpse for a while (failed
	// contacts mark the victim off-line; suspicion does its work).
	s.Run(crashAt + 10*sc.Interval)

	// Recovery: reopen the surviving bytes on the bare disk, exactly as a
	// restarted process would.
	st2, rec, err := store.Open(store.Options{Dir: "data", FS: mem})
	if err != nil {
		panic(fmt.Sprintf("gossipsim: recovery: %v", err))
	}
	st2.Close()
	newEpoch := rec.Epoch + 1

	// Restart: fresh node, fresh directory, epoch past the dead
	// incarnation, one bootstrap contact. The whole recovered filter is
	// news to the community.
	victim.Restart(newEpoch, Full20000Keys, Full20000Keys, 0)
	tr := newTracker(s)
	start := s.Now()
	newVer := victim.Node.SelfRecord().Ver
	tr.Watch(victim.ID, newVer, "restart", simnet.Class(victim.Speed), nil)

	horizon := start + 6*time.Hour
	converged := s.RunUntil(horizon, func() bool { return tr.Outstanding() == 0 })
	tr.AbandonOutstanding()

	res := RestartResult{
		Converged:        converged,
		Time:             -1,
		OldVer:           oldVer,
		NewVer:           newVer,
		RecoveredOps:     len(rec.Ops),
		TruncatedRecords: rec.TruncatedRecords,
		ScheduleHash:     plan.ScheduleHash(),
		Faults:           plan.Counts(),
	}
	if converged {
		res.Time = s.Now() - start
	}
	for _, p := range s.Peers() {
		if p.ID == victim.ID || !p.Online() {
			continue
		}
		if p.Node.Directory().VersionOf(victim.ID).Epoch < newEpoch {
			res.StaleRecords++
		}
	}
	return res
}
