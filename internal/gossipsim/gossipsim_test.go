package gossipsim

import (
	"testing"
	"time"

	"planetp/internal/directory"
	"planetp/internal/simnet"
)

// Keep test community sizes modest; the full paper-scale sweeps live in
// the benchmark harness.

func TestPropagationLAN(t *testing.T) {
	p := Propagation(LAN, 100, 1)
	if p.Time <= 0 || p.Time > 10*time.Minute {
		t.Fatalf("LAN propagation over 100 peers = %v; want minutes-scale", p.Time)
	}
	if p.Bytes <= 0 || p.PerPeerBW <= 0 {
		t.Fatalf("accounting: %+v", p)
	}
}

func TestPropagationScalesLogarithmically(t *testing.T) {
	small := Propagation(DSL30, 50, 2)
	big := Propagation(DSL30, 400, 2)
	if big.Time <= 0 || small.Time <= 0 {
		t.Fatalf("non-convergence: %v %v", small.Time, big.Time)
	}
	// Paper, Figure 2a: propagation time is a log function of community
	// size — an 8x community should take nowhere near 8x the time.
	if big.Time > 3*small.Time {
		t.Fatalf("propagation not log-like: 50 peers %v, 400 peers %v", small.Time, big.Time)
	}
}

func TestAntiEntropyBaselineCostsMore(t *testing.T) {
	n := 150
	planetp := Propagation(LAN, n, 3)
	ae := Propagation(LANAE, n, 3)
	if ae.Bytes <= planetp.Bytes {
		t.Fatalf("Figure 2b shape violated: AE-only volume %d <= PlanetP %d",
			ae.Bytes, planetp.Bytes)
	}
}

func TestPropagationSweep(t *testing.T) {
	pts := PropagationSweep(LAN, []int{30, 60}, 4)
	if len(pts) != 2 || pts[0].N != 30 || pts[1].N != 60 {
		t.Fatalf("sweep = %+v", pts)
	}
}

func TestJoinConverges(t *testing.T) {
	r := Join(LAN, 60, 15, 5)
	if !r.Converged {
		t.Fatalf("join did not converge: %+v", r)
	}
	if r.Time <= 0 || r.Bytes <= 0 {
		t.Fatalf("join result: %+v", r)
	}
	// Joins are bandwidth-intensive: moving 15 full 16KB filters around
	// 75 peers must cost at least 15*16000 bytes total.
	if r.Bytes < int64(15*Full20000Keys) {
		t.Fatalf("join volume %d implausibly small", r.Bytes)
	}
}

func TestArrivalCDF(t *testing.T) {
	cdf := ArrivalCDF(LAN, 50, 8, 20*time.Second, 6)
	if len(cdf.Times)+cdf.Unconverged != 8 {
		t.Fatalf("CDF covers %d+%d events, want 8", len(cdf.Times), cdf.Unconverged)
	}
	if cdf.Unconverged > 0 {
		t.Fatalf("%d arrivals never converged on a LAN", cdf.Unconverged)
	}
	if cdf.Percentile(50) <= 0 || cdf.Percentile(100) < cdf.Percentile(50) {
		t.Fatalf("percentiles inconsistent: %v", cdf)
	}
	if cdf.Mean() <= 0 {
		t.Fatalf("mean = %v", cdf.Mean())
	}
}

func TestPartialAETightensTail(t *testing.T) {
	// Figure 4a's claim: without partial anti-entropy, overlapping
	// rumors interfere and the convergence tail grows. Compare p99-ish
	// behaviour on a small arrival storm.
	with := ArrivalCDF(LAN, 40, 10, 15*time.Second, 7)
	without := ArrivalCDF(LANNPA, 40, 10, 15*time.Second, 7)
	if len(with.Times) == 0 || len(without.Times) == 0 {
		t.Fatalf("missing results: %v / %v", with, without)
	}
	// The no-partial-AE variant must not beat the full algorithm's tail
	// by any meaningful margin (it should typically be worse).
	if without.Percentile(100) < with.Percentile(100)/2 {
		t.Fatalf("ablation unexpectedly better: with=%v without=%v",
			with.Percentile(100), without.Percentile(100))
	}
}

func TestChurnSmall(t *testing.T) {
	cfg := ChurnConfig{
		N: 60, StableFrac: 0.4,
		MeanOnline: 4 * time.Minute, MeanOffline: 6 * time.Minute,
		NewKeysProb: 0.2,
		Warmup:      5 * time.Minute, Measure: 20 * time.Minute,
	}
	r := Churn(LAN, cfg, 8)
	if r.Events == 0 {
		t.Fatal("no churn events measured")
	}
	if len(r.Timeline) == 0 {
		t.Fatal("no bandwidth timeline")
	}
	if r.AggregateBandwidth() <= 0 {
		t.Fatal("no aggregate bandwidth in measurement window")
	}
	conv := len(r.All.Times)
	if conv == 0 {
		t.Fatal("no events converged under churn")
	}
}

func TestChurnFastOnlyCondition(t *testing.T) {
	cfg := ChurnConfig{
		N: 50, StableFrac: 0.4,
		MeanOnline: 4 * time.Minute, MeanOffline: 6 * time.Minute,
		NewKeysProb: 0.2,
		Warmup:      5 * time.Minute, Measure: 15 * time.Minute,
		FastOnly: true,
	}
	r := Churn(MIX, cfg, 9)
	if r.Events == 0 {
		t.Fatal("no events")
	}
	// Fast + Slow partitions cover all events.
	if len(r.Fast.Times)+r.Fast.Unconverged+len(r.Slow.Times)+r.Slow.Unconverged != r.Events {
		t.Fatalf("class split inconsistent: %+v", r)
	}
}

func TestCDFPercentileEdges(t *testing.T) {
	empty := CDF{}
	if empty.Percentile(50) != -1 || empty.Mean() != -1 {
		t.Fatal("empty CDF should report -1")
	}
	c := CDF{Times: []time.Duration{1, 2, 3, 4}}
	if c.Percentile(0) != 1 || c.Percentile(100) != 4 {
		t.Fatalf("edges: %v %v", c.Percentile(0), c.Percentile(100))
	}
	if c.String() == "" {
		t.Fatal("String empty")
	}
}

func TestExpRandMean(t *testing.T) {
	er := newExpRand(3)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += er.exp(time.Minute)
	}
	mean := sum / n
	if mean < 55*time.Second || mean > 65*time.Second {
		t.Fatalf("exp mean = %v, want ≈1m", mean)
	}
}

func TestScenarioConfigs(t *testing.T) {
	if LANAE.config().Mode != 1 {
		t.Fatal("LAN-AE mode")
	}
	if !MIX.config().BandwidthAware {
		t.Fatal("MIX must be bandwidth aware")
	}
	if LANNPA.config().PiggybackCount != -1 {
		t.Fatal("LAN-NPA piggyback")
	}
	if DSL10.config().BaseInterval != 10*time.Second || DSL10.config().MaxInterval != 20*time.Second {
		t.Fatal("DSL-10 intervals")
	}
}

func TestSpeedForMatchesProfile(t *testing.T) {
	counts := map[directory.Class]int{}
	for i := 0; i < 100; i++ {
		counts[simnet.Class(speedFor(MIX, i))]++
	}
	if counts[directory.Slow] != 9 {
		t.Fatalf("slow fraction = %d, want 9", counts[directory.Slow])
	}
}
