package gossipsim

import "testing"

// TestDirectoryScaleSmall runs the memory experiment at a small size: the
// compressed-resident replica must weigh in far under the decompressed
// baseline (acceptance bar is 1/5; typical is ~1/20 for paper-scale term
// counts), the probe sweeps must answer, and the convergence probe must
// complete.
func TestDirectoryScaleSmall(t *testing.T) {
	pt := DirectoryScale(LAN, ScaleSpec{
		N: 300, TermsPerFilter: 300, ConvergeMax: 300, Seed: 5,
	})
	if pt.DirectoryBytes <= 0 {
		t.Fatal("directory heap delta not measured")
	}
	if pt.PayloadBytes <= 0 {
		t.Fatal("payload size not recorded")
	}
	if pt.BaselineBytesPerPeer <= 0 {
		t.Fatal("baseline not measured")
	}
	if pt.Ratio <= 0 || pt.Ratio > 0.2 {
		t.Fatalf("compressed-resident ratio %.3f, want <= 0.2 (1/5 acceptance bar)", pt.Ratio)
	}
	if pt.ColdProbeNS <= 0 || pt.WarmProbeNS <= 0 {
		t.Fatalf("probe sweeps not timed: cold %.0f warm %.0f", pt.ColdProbeNS, pt.WarmProbeNS)
	}
	if pt.CacheResidentBytes <= 0 {
		t.Fatal("probe cache holds nothing after sweeps")
	}
	if pt.ConvergeS <= 0 {
		t.Fatalf("convergence probe did not run: %v", pt.ConvergeS)
	}
}

// TestDirectoryScaleSkipsConvergence: above ConvergeMax only the memory
// measurement runs.
func TestDirectoryScaleSkipsConvergence(t *testing.T) {
	pt := DirectoryScale(LAN, ScaleSpec{
		N: 400, TermsPerFilter: 100, ConvergeMax: 300, Seed: 5,
	})
	if pt.ConvergeS != -1 {
		t.Fatalf("convergence ran above ConvergeMax: %v", pt.ConvergeS)
	}
	if pt.DirectoryBytes <= 0 {
		t.Fatal("memory measurement missing")
	}
}
