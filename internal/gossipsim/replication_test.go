package gossipsim

import (
	"reflect"
	"testing"

	"planetp/internal/directory"
)

// The model's pre-storm placement: every document holds at its owner,
// hot documents add ring successors, and placement is identical to what
// any converged peer would compute (same ring derivation).
func TestReplicaModelPlacement(t *testing.T) {
	m := newReplicaModel(16, 160, 3)
	if m.hotDocs != 16 {
		t.Fatalf("hot decile = %d, want 16", m.hotDocs)
	}
	for i := range m.keys {
		if !m.holders[i][m.owners[i]] {
			t.Fatalf("doc %d not held by its owner %d", i, m.owners[i])
		}
		want := 1 + m.extra[i]
		if got := len(m.holders[i]); got != want {
			t.Fatalf("doc %d has %d holders, want %d", i, got, want)
		}
		if i < m.hotDocs && m.extra[i] != 2 {
			t.Fatalf("hot doc %d has %d extras, want full k-1=2", i, m.extra[i])
		}
	}
	// The Zipf tail decays to owner-only copies.
	last := len(m.keys) - 1
	if m.extra[last] != 0 {
		t.Fatalf("coldest doc has %d extras, want 0", m.extra[last])
	}
}

func TestReplicationMassDepartureFavorsReplicas(t *testing.T) {
	spec := ReplicationScenarios(16)[0]
	if spec.Name != "mass-departure" {
		t.Fatalf("scenario order changed: %s", spec.Name)
	}
	r1 := Replication(STORM, spec, 160, 1, 7)
	r3 := Replication(STORM, spec, 160, 3, 7)

	if r1.FinalHotAvailability >= 1 {
		t.Fatalf("k=1 hot availability %.4f survived a 25%% departure unscathed", r1.FinalHotAvailability)
	}
	if r3.FinalHotAvailability <= r1.FinalHotAvailability {
		t.Fatalf("k=3 hot availability %.4f not better than k=1's %.4f",
			r3.FinalHotAvailability, r1.FinalHotAvailability)
	}
	if r1.Repairs != 0 {
		t.Fatalf("k=1 ran %d repairs; nothing is replicated at k=1", r1.Repairs)
	}
	if r1.LostDocs == 0 {
		t.Fatalf("k=1 lost no docs under a 25%% departure")
	}
	if r3.LostDocs >= r1.LostDocs {
		t.Fatalf("k=3 lost %d docs, k=1 lost %d — replication did not help", r3.LostDocs, r1.LostDocs)
	}
}

// A partition dips availability for the cut-off half and heals back to
// exactly 1: no holder departs, so nothing is ever lost.
func TestReplicationPartitionHealsCompletely(t *testing.T) {
	spec := ReplicationScenarios(16)[1]
	if spec.Name != "partition-heal" {
		t.Fatalf("scenario order changed: %s", spec.Name)
	}
	r := Replication(STORM, spec, 160, 3, 7)
	// Owner-only (cold) documents whose owner landed on the far side must
	// go dark while the split is in force.
	dipped := false
	for _, sm := range r.Samples {
		if sm.Availability < 1 {
			dipped = true
			break
		}
	}
	if !dipped {
		t.Fatalf("partition never dipped availability")
	}
	if r.FinalHotAvailability != 1 || r.FinalAvailability != 1 {
		t.Fatalf("heal did not restore availability: hot %.4f all %.4f",
			r.FinalHotAvailability, r.FinalAvailability)
	}
	if r.LostDocs != 0 {
		t.Fatalf("partition lost %d docs; no holder ever departed", r.LostDocs)
	}
}

// Equal inputs reproduce every sample: a curve change is a model change.
func TestReplicationDeterministic(t *testing.T) {
	spec := ReplicationScenarios(16)[0]
	a := Replication(STORM, spec, 160, 3, 7)
	b := Replication(STORM, spec, 160, 3, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged")
	}
}

// The repair ring derivation matches the core's: owner excluded,
// distinct successors, bounded count.
func TestRingReplicasExcludesOrigin(t *testing.T) {
	ids := make([]directory.PeerID, 8)
	for i := range ids {
		ids[i] = directory.PeerID(i)
	}
	ring := replicaRing(ids)
	for i := 0; i < 32; i++ {
		key := "doc-key-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		for origin := directory.PeerID(0); origin < 8; origin++ {
			got := ringReplicas(ring, key, origin, 3)
			if len(got) != 3 {
				t.Fatalf("key %q origin %d: %d replicas, want 3", key, origin, len(got))
			}
			seen := map[directory.PeerID]bool{origin: true}
			for _, h := range got {
				if seen[h] {
					t.Fatalf("key %q origin %d: duplicate or origin holder %d", key, origin, h)
				}
				seen[h] = true
			}
		}
	}
}
