package gossipsim

import (
	"testing"
	"time"

	"planetp/internal/directory"
	"planetp/internal/simnet"
)

// trackerFixture builds a quiet 8-peer LAN community with a tracker.
func trackerFixture(t *testing.T) (*simnet.Sim, *tracker) {
	t.Helper()
	s := LAN.newSim(8, 8, 5)
	s.Run(time.Second)
	return s, newTracker(s)
}

func TestTrackerConvergesOnPropagation(t *testing.T) {
	s, tr := trackerFixture(t)
	src := s.Peers()[0]
	src.Node.Publish(100, 1000, nil)
	tr.Watch(src.ID, src.Node.SelfRecord().Ver, "update", directory.Fast, nil)
	if tr.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d", tr.Outstanding())
	}
	if !s.RunUntil(time.Hour, func() bool { return tr.Outstanding() == 0 }) {
		t.Fatal("event never converged")
	}
	if len(tr.Results) != 1 || tr.Results[0].Elapsed <= 0 {
		t.Fatalf("results = %+v", tr.Results)
	}
	if tr.Results[0].Label != "update" {
		t.Fatalf("label = %q", tr.Results[0].Label)
	}
}

func TestTrackerImmediateConvergence(t *testing.T) {
	s, tr := trackerFixture(t)
	// Watching an already-known version converges instantly.
	tr.Watch(0, directory.Version{Epoch: 1, Seq: 0}, "noop", directory.Fast, nil)
	if tr.Outstanding() != 0 {
		t.Fatal("already-known event should converge immediately")
	}
	if len(tr.Results) != 1 || tr.Results[0].Elapsed != 0 {
		t.Fatalf("results = %+v", tr.Results)
	}
	_ = s
}

func TestTrackerFixedSetExcludesOfflinePeers(t *testing.T) {
	s, tr := trackerFixture(t)
	// Peer 7 is off-line at event time: not part of the set.
	s.Peers()[7].GoOffline()
	src := s.Peers()[0]
	src.Node.Publish(100, 1000, nil)
	tr.Watch(src.ID, src.Node.SelfRecord().Ver, "update", directory.Fast, nil)
	if !s.RunUntil(time.Hour, func() bool { return tr.Outstanding() == 0 }) {
		t.Fatal("event should converge without the offline peer")
	}
	// Peer 7 must still be ignorant (it was off the whole time).
	if !s.Peers()[7].Node.Directory().VersionOf(src.ID).Less(src.Node.SelfRecord().Ver) {
		t.Fatal("offline peer learned the rumor")
	}
}

func TestTrackerDepartureCompletesEvent(t *testing.T) {
	s, tr := trackerFixture(t)
	src := s.Peers()[0]
	src.Node.Publish(100, 1000, nil)
	tr.Watch(src.ID, src.Node.SelfRecord().Ver, "update", directory.Fast, nil)
	// Everyone except the source immediately leaves: the set shrinks to
	// peers that already know, so the event completes.
	for _, p := range s.Peers()[1:] {
		p.GoOffline()
	}
	if tr.Outstanding() != 0 {
		t.Fatalf("event should complete when all ignorant members left: %d", tr.Outstanding())
	}
}

func TestTrackerAbandonOutstanding(t *testing.T) {
	s, tr := trackerFixture(t)
	src := s.Peers()[0]
	src.Node.Publish(100, 1000, nil)
	tr.Watch(src.ID, src.Node.SelfRecord().Ver, "update", directory.Fast, nil)
	tr.AbandonOutstanding()
	if tr.Outstanding() != 0 {
		t.Fatal("abandon left events outstanding")
	}
	if len(tr.Results) != 1 || tr.Results[0].Elapsed != -1 {
		t.Fatalf("abandoned result = %+v", tr.Results)
	}
	_ = s
}

func TestTrackerInSetFilter(t *testing.T) {
	s := MIX.newSim(40, 40, 9)
	s.Run(time.Second)
	tr := newTracker(s)
	fastOnly := func(p *simnet.Peer) bool {
		return simnet.Class(p.Speed) == directory.Fast
	}
	src := s.Peers()[0]
	src.Node.Publish(100, 1000, nil)
	tr.Watch(src.ID, src.Node.SelfRecord().Ver, "update", simnet.Class(src.Speed), fastOnly)
	if !s.RunUntil(2*time.Hour, func() bool { return tr.Outstanding() == 0 }) {
		t.Fatal("fast-only event never converged")
	}
	// Convergence required only fast peers; a slow peer may or may not
	// know — but every fast peer must.
	for _, p := range s.Peers() {
		if fastOnly(p) && p.Node.Directory().VersionOf(src.ID).Less(src.Node.SelfRecord().Ver) {
			t.Fatalf("fast peer %d ignorant after fast-only convergence", p.ID)
		}
	}
}
