// Package gossipsim builds and runs the paper's gossiping experiments
// (Section 7.2, Figures 2-5) on top of internal/simnet. Each experiment
// constructs a community, injects events (a Bloom-filter update, a mass
// join, Poisson arrivals, churn), and measures propagation/convergence
// times and bandwidth with a per-event tracker.
package gossipsim

import (
	"fmt"
	"sort"
	"time"

	"planetp/internal/directory"
	"planetp/internal/gossip"
	"planetp/internal/metrics"
	"planetp/internal/simnet"
)

// Table 2 Bloom filter wire sizes.
const (
	// Diff1000Keys is the compressed size of a 1000-key Bloom filter
	// diff (Table 2: 3000 bytes).
	Diff1000Keys = 3000
	// Full20000Keys is the compressed size of a 20000-key Bloom filter
	// (Table 2: 16000 bytes).
	Full20000Keys = 16000
)

// Scenario names a community/protocol configuration from the paper.
type Scenario struct {
	Name string
	// Profile assigns link speeds.
	Profile []simnet.MixFraction
	// Interval is the base gossip interval (T_g).
	Interval time.Duration
	// Mode selects rumoring vs the anti-entropy-only baseline.
	Mode gossip.Mode
	// BandwidthAware enables two-class target selection.
	BandwidthAware bool
	// Piggyback overrides the partial-anti-entropy count (0 = default
	// 10, -1 = disabled).
	Piggyback int
	// PullBatch caps anti-entropy pulls (0 = unlimited): the paper's
	// proposed accommodation for slow peers joining large communities.
	PullBatch int
	// TDead enables directory garbage collection: records continuously
	// off-line this long are dropped (0 = never).
	TDead time.Duration
	// DiscoverMin enables bootstrap discovery below this on-line count
	// (see gossip.Config.DiscoverMin).
	DiscoverMin int
	// Metrics, if non-nil, aggregates the run's protocol and wire
	// counters (gossip_* from every node, simnet_* from the simulator).
	// Use a fresh registry per run for per-run summaries.
	Metrics *metrics.Registry
}

// The paper's named scenarios.
var (
	// LAN: 45 Mb/s links, full PlanetP algorithm.
	LAN = Scenario{Name: "LAN", Profile: simnet.UniformProfile(simnet.LAN), Interval: 30 * time.Second}
	// LANAE: 45 Mb/s links, push anti-entropy only (Name Dropper/Bayou
	// style baseline).
	LANAE = Scenario{Name: "LAN-AE", Profile: simnet.UniformProfile(simnet.LAN), Interval: 30 * time.Second, Mode: gossip.ModeAEOnly}
	// LANNPA: LAN without the partial anti-entropy (Figure 4a ablation).
	LANNPA = Scenario{Name: "LAN-NPA", Profile: simnet.UniformProfile(simnet.LAN), Interval: 30 * time.Second, Piggyback: -1}
	// DSL10/30/60: 512 Kb/s links with 10/30/60 s gossip intervals.
	DSL10 = Scenario{Name: "DSL-10", Profile: simnet.UniformProfile(simnet.DSL), Interval: 10 * time.Second}
	DSL30 = Scenario{Name: "DSL-30", Profile: simnet.UniformProfile(simnet.DSL), Interval: 30 * time.Second}
	DSL60 = Scenario{Name: "DSL-60", Profile: simnet.UniformProfile(simnet.DSL), Interval: 60 * time.Second}
	// MIX: the Saroiu et al. Gnutella/Napster mixture with the
	// bandwidth-aware algorithm.
	MIX = Scenario{Name: "MIX", Profile: simnet.MixProfile(), Interval: 30 * time.Second, BandwidthAware: true}
	// STORM: the churn-storm acceptance configuration — LAN links with a
	// compressed 10 s gossip interval so a T_Dead GC sweep (every 16
	// rounds) lands every few simulated minutes instead of every few
	// hours. Storm specs layer TDead/DiscoverMin on top per scenario.
	STORM = Scenario{Name: "STORM", Profile: simnet.UniformProfile(simnet.LAN), Interval: 10 * time.Second}
)

// config builds the gossip.Config for a scenario.
func (sc Scenario) config() gossip.Config {
	return gossip.Config{
		BaseInterval:   sc.Interval,
		MaxInterval:    2 * sc.Interval,
		Mode:           sc.Mode,
		BandwidthAware: sc.BandwidthAware,
		PiggybackCount: sc.Piggyback,
		MaxPullBatch:   sc.PullBatch,
		TDead:          sc.TDead,
		DiscoverMin:    sc.DiscoverMin,
		Metrics:        sc.Metrics,
	}
}

// newSim builds a converged community of n peers for a scenario. Every
// peer starts with a 20000-key filter (the paper's standing state).
func (sc Scenario) newSim(capacity, n int, seed int64) *simnet.Sim {
	s := simnet.New(capacity, sc.config(), simnet.DefaultParams(), seed)
	simnet.BuildCommunity(s, n, sc.Profile, Diff1000Keys, Full20000Keys)
	return s
}

// tracker measures per-event convergence: when has every on-line peer in
// the convergence set learned about a (peer, version) pair.
type tracker struct {
	sim    *simnet.Sim
	next   int
	events map[int]*trackedEvent
	// Results holds completed events.
	Results []EventResult
}

// EventResult records one tracked event's outcome.
type EventResult struct {
	// Start is when the event was injected.
	Start time.Duration
	// Elapsed is time-to-convergence; <0 if never converged within the
	// run.
	Elapsed time.Duration
	// Label tags the event (e.g. "join", "rejoin", "update").
	Label string
	// SourceClass is the class of the originating peer.
	SourceClass directory.Class
}

type trackedEvent struct {
	id        int
	peer      directory.PeerID
	ver       directory.Version
	start     time.Duration
	label     string
	srcClass  directory.Class
	inSet     func(p *simnet.Peer) bool
	known     []bool
	remaining int
}

// newTracker wires a tracker into the simulation's hooks.
func newTracker(s *simnet.Sim) *tracker {
	t := &tracker{sim: s, events: make(map[int]*trackedEvent)}
	s.AfterDeliver = func(to *simnet.Peer, _ directory.PeerID, _ *gossip.Message) {
		t.onDeliver(to)
	}
	s.OnOnlineChange = func(p *simnet.Peer, online bool) {
		t.onOnlineChange(p, online)
	}
	return t
}

// Watch starts tracking an event: the peer's record reaching version ver.
// inSet restricts the convergence set (nil = all peers).
func (t *tracker) Watch(peer directory.PeerID, ver directory.Version, label string, srcClass directory.Class, inSet func(p *simnet.Peer) bool) {
	ev := &trackedEvent{
		id: t.next, peer: peer, ver: ver,
		start: t.sim.Now(), label: label, srcClass: srcClass, inSet: inSet,
		known: make([]bool, len(t.sim.Peers())),
	}
	t.next++
	for _, p := range t.sim.Peers() {
		if ev.inSet != nil && !ev.inSet(p) {
			continue
		}
		if t.knows(p, ev) {
			ev.known[p.ID] = true
			continue
		}
		if p.Online() {
			ev.remaining++
		} else {
			// Off-line at event time: outside the convergence set;
			// tombstone so a post-rejoin delivery cannot decrement.
			ev.known[p.ID] = true
		}
	}
	if ev.remaining == 0 {
		t.Results = append(t.Results, EventResult{Start: ev.start, Elapsed: 0, Label: label, SourceClass: srcClass})
		return
	}
	t.events[ev.id] = ev
}

// knows reports whether p's directory holds ver (or newer) for the
// event's peer.
func (t *tracker) knows(p *simnet.Peer, ev *trackedEvent) bool {
	return !p.Node.Directory().VersionOf(ev.peer).Less(ev.ver)
}

func (t *tracker) onDeliver(to *simnet.Peer) {
	for id, ev := range t.events {
		if int(to.ID) < len(ev.known) && !ev.known[to.ID] &&
			(ev.inSet == nil || ev.inSet(to)) && t.knows(to, ev) {
			ev.known[to.ID] = true
			if to.Online() {
				ev.remaining--
				if ev.remaining == 0 {
					t.finish(id, ev)
				}
			}
		}
	}
}

func (t *tracker) onOnlineChange(p *simnet.Peer, online bool) {
	if online {
		// The convergence set is fixed at event time ("known to
		// everyone in the community", Section 7.2): a peer that was
		// off-line when the event fired catches up through its own
		// rejoin and is not part of this event's condition.
		return
	}
	for id, ev := range t.events {
		if ev.inSet != nil && !ev.inSet(p) {
			continue
		}
		if int(p.ID) >= len(ev.known) || ev.known[p.ID] {
			continue
		}
		// Left the community before learning: permanently out of this
		// event's set (tombstone so a later delivery cannot decrement
		// twice).
		ev.known[p.ID] = true
		ev.remaining--
		if ev.remaining == 0 {
			t.finish(id, ev)
		}
	}
}

func (t *tracker) finish(id int, ev *trackedEvent) {
	t.Results = append(t.Results, EventResult{
		Start:       ev.start,
		Elapsed:     t.sim.Now() - ev.start,
		Label:       ev.label,
		SourceClass: ev.srcClass,
	})
	delete(t.events, id)
}

// Outstanding returns how many watched events have not converged.
func (t *tracker) Outstanding() int { return len(t.events) }

// AbandonOutstanding records all unconverged events with Elapsed -1.
func (t *tracker) AbandonOutstanding() {
	for id, ev := range t.events {
		t.Results = append(t.Results, EventResult{
			Start: ev.start, Elapsed: -1, Label: ev.label, SourceClass: ev.srcClass,
		})
		delete(t.events, id)
	}
}

// PropagationPoint is one x-value of Figure 2: propagating a single
// 1000-key Bloom filter through a stable community of N peers.
type PropagationPoint struct {
	Scenario string
	N        int
	// Time is the propagation time (Figure 2a).
	Time time.Duration
	// Bytes is the aggregate network volume (Figure 2b).
	Bytes int64
	// PerPeerBW is the average per-peer bandwidth during propagation in
	// bytes/second (Figure 2c).
	PerPeerBW float64
}

// Propagation runs the Figure 2 experiment for one scenario and community
// size: a converged community, one peer publishes 1000 new keys, measure
// time/volume/bandwidth until everyone knows.
func Propagation(sc Scenario, n int, seed int64) PropagationPoint {
	s := sc.newSim(n, n, seed)
	// Let timers take their random phases, then settle accounting.
	s.Run(2 * time.Second)
	startBytes := s.TotalBytes
	tr := newTracker(s)

	src := s.Peers()[0]
	src.Node.Publish(Diff1000Keys, Full20000Keys+Diff1000Keys, nil)
	ver := src.Node.SelfRecord().Ver
	start := s.Now()
	tr.Watch(src.ID, ver, "update", simnet.Class(src.Speed), nil)

	horizon := start + 6*time.Hour
	s.RunUntil(horizon, func() bool { return tr.Outstanding() == 0 })
	tr.AbandonOutstanding()
	res := tr.Results[len(tr.Results)-1]
	elapsed := res.Elapsed
	if elapsed < 0 {
		elapsed = horizon - start
	}
	bytes := s.TotalBytes - startBytes
	perPeer := 0.0
	if elapsed > 0 {
		perPeer = float64(bytes) / float64(n) / elapsed.Seconds()
	}
	return PropagationPoint{Scenario: sc.Name, N: n, Time: elapsed, Bytes: bytes, PerPeerBW: perPeer}
}

// PropagationSweep runs Propagation over several community sizes.
func PropagationSweep(sc Scenario, sizes []int, seed int64) []PropagationPoint {
	out := make([]PropagationPoint, 0, len(sizes))
	for _, n := range sizes {
		out = append(out, Propagation(sc, n, seed+int64(n)))
	}
	return out
}

// JoinResult is one x-value of Figure 3: m peers joining a stable
// community of nBase peers, each sharing 20000 keys.
type JoinResult struct {
	Scenario string
	NBase    int
	Joiners  int
	// Time is until every member (old and new) has a consistent view:
	// all joins known everywhere and all joiners hold the full
	// directory.
	Time time.Duration
	// Bytes is the aggregate volume during the join storm.
	Bytes int64
	// Converged reports whether consistency was reached within the
	// horizon.
	Converged bool
}

// Join runs the Figure 3 experiment.
func Join(sc Scenario, nBase, joiners int, seed int64) JoinResult {
	total := nBase + joiners
	s := sc.newSim(total, nBase, seed)
	s.Run(2 * time.Second)
	startBytes := s.TotalBytes
	tr := newTracker(s)
	start := s.Now()

	rng := s.Peers()[0] // deterministic seeds come from the sim's own rng via AddPeer order
	_ = rng
	joined := make([]*simnet.Peer, 0, joiners)
	for i := 0; i < joiners; i++ {
		// Each joiner bootstraps from one existing member, round-robin
		// for determinism.
		seedPeer := directory.PeerID(i % nBase)
		// A joiner's entire 20000-key filter is new to the community.
		p := s.AddPeer(speedFor(sc, i), Full20000Keys, Full20000Keys, seedPeer)
		joined = append(joined, p)
		tr.Watch(p.ID, p.Node.SelfRecord().Ver, "join", simnet.Class(p.Speed), nil)
	}

	fullView := func() bool {
		for _, p := range joined {
			if p.Node.Directory().NumKnown() != total {
				return false
			}
		}
		return true
	}
	horizon := start + 6*time.Hour
	done := s.RunUntil(horizon, func() bool {
		return tr.Outstanding() == 0 && fullView()
	})
	return JoinResult{
		Scenario: sc.Name, NBase: nBase, Joiners: joiners,
		Time: s.Now() - start, Bytes: s.TotalBytes - startBytes, Converged: done,
	}
}

// speedFor deterministically assigns a joiner's link speed from the
// scenario profile.
func speedFor(sc Scenario, i int) simnet.LinkSpeed {
	// Largest-remainder style striping across the profile.
	x := float64(i%100) / 100.0
	acc := 0.0
	for _, mf := range sc.Profile {
		acc += mf.Frac
		if x < acc {
			return mf.Speed
		}
	}
	return sc.Profile[len(sc.Profile)-1].Speed
}

// CDF summarizes a set of convergence times.
type CDF struct {
	// Times are the sorted converged elapsed times.
	Times []time.Duration
	// Unconverged counts events that never converged.
	Unconverged int
}

// Percentile returns the p-th percentile (0..100) of converged times.
func (c CDF) Percentile(p float64) time.Duration {
	if len(c.Times) == 0 {
		return -1
	}
	idx := int(p / 100 * float64(len(c.Times)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.Times) {
		idx = len(c.Times) - 1
	}
	return c.Times[idx]
}

// Mean returns the mean of converged times.
func (c CDF) Mean() time.Duration {
	if len(c.Times) == 0 {
		return -1
	}
	var sum time.Duration
	for _, t := range c.Times {
		sum += t
	}
	return sum / time.Duration(len(c.Times))
}

// String renders the key percentiles.
func (c CDF) String() string {
	return fmt.Sprintf("n=%d p50=%v p90=%v p99=%v max=%v unconverged=%d",
		len(c.Times), c.Percentile(50), c.Percentile(90), c.Percentile(99),
		c.Percentile(100), c.Unconverged)
}

// cdfOf collects EventResults into a CDF, optionally filtered.
func cdfOf(results []EventResult, keep func(EventResult) bool) CDF {
	var c CDF
	for _, r := range results {
		if keep != nil && !keep(r) {
			continue
		}
		if r.Elapsed < 0 {
			c.Unconverged++
		} else {
			c.Times = append(c.Times, r.Elapsed)
		}
	}
	sort.Slice(c.Times, func(i, j int) bool { return c.Times[i] < c.Times[j] })
	return c
}

// ArrivalCDF runs the Figure 4a experiment: a stable community of nBase
// peers; arrivals new peers join one by one via a Poisson process with the
// given mean inter-arrival time; returns the convergence-time CDF of the
// join events.
func ArrivalCDF(sc Scenario, nBase, arrivals int, interarrival time.Duration, seed int64) CDF {
	total := nBase + arrivals
	s := sc.newSim(total, nBase, seed)
	s.Run(2 * time.Second)
	tr := newTracker(s)

	// Poisson arrivals: exponential gaps, generated from the sim seed.
	rng := newExpRand(seed + 17)
	at := s.Now()
	for i := 0; i < arrivals; i++ {
		at += rng.exp(interarrival)
		i := i
		s.At(at, func() {
			seedPeer := directory.PeerID(int(seed+int64(i)) % nBase)
			if seedPeer < 0 {
				seedPeer = -seedPeer
			}
			p := s.AddPeer(speedFor(sc, i), Diff1000Keys, Full20000Keys, seedPeer)
			tr.Watch(p.ID, p.Node.SelfRecord().Ver, "join", simnet.Class(p.Speed), nil)
		})
	}
	horizon := at + 2*time.Hour
	s.RunUntil(horizon, func() bool {
		return s.Now() > at && tr.Outstanding() == 0
	})
	tr.AbandonOutstanding()
	return cdfOf(tr.Results, nil)
}
