package gossipsim

import (
	"reflect"
	"testing"
	"time"

	"planetp/internal/directory"
	"planetp/internal/faultnet"
	"planetp/internal/simnet"
)

// The acceptance trio: every storm scenario must fully recover — zero
// staleness, full coverage, no dead records, no stale incarnations — and
// must never violate either T_Dead invariant along the way (no live peer
// collected, no departed record outliving TDead + GCSlack).

func checkStorm(t *testing.T, res StormResult) {
	t.Helper()
	if res.LiveDrops != 0 {
		t.Errorf("%s: %d live peers garbage-collected", res.Name, res.LiveDrops)
	}
	if res.DeadViolations != 0 {
		t.Errorf("%s: %d dead-record sightings past TDead+GCSlack", res.Name, res.DeadViolations)
	}
	if res.StaleIncarnations != 0 {
		t.Errorf("%s: %d stale incarnation records at end", res.Name, res.StaleIncarnations)
	}
	if !res.Converged {
		t.Errorf("%s: did not converge: staleness=%.4f coverage=%.4f",
			res.Name, res.FinalStaleness, res.FinalCoverage)
	}
}

func TestStormFlashCrowd(t *testing.T) {
	res := Storm(STORM, StormScenarios(16)[0], 1)
	checkStorm(t, res)
	if res.FinalCoverage != 1 {
		t.Errorf("joiners not fully discovered: coverage=%.4f", res.FinalCoverage)
	}
}

func TestStormMassDeparture(t *testing.T) {
	spec := StormScenarios(16)[1]
	res := Storm(STORM, spec, 1)
	checkStorm(t, res)
	if res.DeadClearedS < 0 {
		t.Fatalf("departed records never cleared community-wide")
	}
	slack := time.Duration(16*spec.N+32) * STORM.Interval // the default GCSlack
	if limit := (spec.TDead + slack).Seconds(); res.DeadClearedS > limit {
		t.Errorf("departed records cleared at %.0fs, limit %.0fs", res.DeadClearedS, limit)
	}
}

func TestStormHealRejoin(t *testing.T) {
	res := Storm(STORM, StormScenarios(16)[2], 1)
	checkStorm(t, res)
}

// TestStormDeterministicReplay: equal (scenario, spec, seed) inputs must
// reproduce byte-identical staleness/bandwidth curves and summary
// counters — the property that makes a storm failure a pinnable
// regression rather than flake.
func TestStormDeterministicReplay(t *testing.T) {
	for _, spec := range StormScenarios(12) {
		a := Storm(STORM, spec, 3)
		b := Storm(STORM, spec, 3)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two runs with seed 3 diverged", spec.Name)
		}
	}
	sa := ChurnRateSweep(STORM, 12, []float64{1, 2}, 9)
	sb := ChurnRateSweep(STORM, 12, []float64{1, 2}, 9)
	if !reflect.DeepEqual(sa, sb) {
		t.Errorf("churn-rate sweep with seed 9 diverged")
	}
}

// TestTDeadRejoinNotDropped: a peer that goes off-line but rejoins with a
// fresh incarnation halfway through the T_Dead window must never be
// garbage-collected by any observer, even under 25% message loss — the
// rejoin announcement resets every off-line clock well before it reaches
// TDead (observers start their clocks only after two failed sends, so the
// earliest possible drop is at detection + TDead > rejoin + TDead/2).
func TestTDeadRejoinNotDropped(t *testing.T) {
	sc := STORM
	sc.TDead = 40 * sc.Interval
	var drops []directory.PeerID
	cfg := sc.config()
	cfg.OnDrop = func(ids []directory.PeerID, now time.Duration) {
		drops = append(drops, ids...)
	}
	s := simnet.New(8, cfg, simnet.DefaultParams(), 17)
	simnet.BuildCommunity(s, 8, sc.Profile, Diff1000Keys, Full20000Keys)
	s.Run(2 * time.Second)
	s.SetFaults(faultnet.New(faultnet.Config{Seed: 42, Drop: 0.25}, nil))

	victim := s.Peers()[3]
	start := s.Now()
	s.At(start, func() { victim.GoOffline() })
	s.At(start+sc.TDead/2, func() { victim.GoOnline(0) })
	s.Run(start + 3*sc.TDead)

	if len(drops) != 0 {
		t.Fatalf("rejoining peer was garbage-collected: drops=%v", drops)
	}
	want := victim.Node.SelfRecord().Ver.Epoch
	for _, p := range s.Peers() {
		if got := p.Node.Directory().VersionOf(victim.ID).Epoch; got != want {
			t.Errorf("peer %d holds victim at epoch %d, want %d", p.ID, got, want)
		}
	}
}

// TestTDeadDepartedCleared: a permanently-departed record must be gone
// from every replica within TDead plus the convergence slack, under 25%
// message loss. The slack covers randomized failure detection (two failed
// picks per observer among ~N candidates, at up to MaxInterval per round
// once gossip quiets down) plus the 16-round GC sweep period; the bound
// is pinned by the seeds, so a slower protocol shows up as a hard fail.
func TestTDeadDepartedCleared(t *testing.T) {
	iv := STORM.Interval
	slack := time.Duration(16*8+32) * iv // the default GCSlack at N=8
	spec := StormSpec{
		Name: "departed-clearance", N: 8, TDead: 40 * iv,
		DepartFrac: 0.125, Drop: 0.25, FaultSeed: 42,
		Horizon: 40*iv + slack + 60*iv,
	}
	res := Storm(STORM, spec, 17)
	checkStorm(t, res)
	if res.DeadClearedS < 0 {
		t.Fatalf("departed record never cleared community-wide")
	}
	if limit := (spec.TDead + slack).Seconds(); res.DeadClearedS > limit {
		t.Errorf("departed record cleared at %.0fs, limit %.0fs", res.DeadClearedS, limit)
	}
}
