package gossipsim

import (
	"testing"
	"time"
)

// TestConvergenceUnderFaults is the fault-tolerance suite: an update
// must reach every replica — and leave all directories identical —
// through message loss, duplication, reordering delays, and a partition
// that heals. Every case is fully seeded and deterministic.
func TestConvergenceUnderFaults(t *testing.T) {
	cases := []struct {
		name string
		n    int
		spec FaultSpec
	}{
		{"drop-10pct", 20, FaultSpec{Drop: 0.10, Seed: 101}},
		{"drop-25pct", 20, FaultSpec{Drop: 0.25, Seed: 102}},
		{"drop-40pct", 20, FaultSpec{Drop: 0.40, Seed: 103}},
		{"dup-and-reorder", 20, FaultSpec{Dup: 0.30, Delay: 0.30, Seed: 104}},
		{"partition-heals", 16, FaultSpec{
			Partition: true, PartitionAt: 0, HealAt: 10 * time.Minute, Seed: 105,
		}},
		{"drop-under-partition", 16, FaultSpec{
			Drop: 0.15, Partition: true, PartitionAt: 0, HealAt: 10 * time.Minute, Seed: 106,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := ConvergenceUnderFaults(LAN, tc.n, tc.spec, 7)
			if !res.Converged {
				t.Fatalf("did not converge; faults = %+v", res.Faults)
			}
			if !res.DigestsEqual {
				t.Fatalf("directories diverged: %v", res.Digests)
			}
			if tc.spec.Drop > 0 && res.Faults.Drops == 0 {
				t.Fatal("no drops injected despite Drop > 0")
			}
			if tc.spec.Dup > 0 && res.Faults.Dups == 0 {
				t.Fatal("no dups injected despite Dup > 0")
			}
			if tc.spec.Partition && res.Faults.PartitionBlocks == 0 {
				t.Fatal("no sends blocked despite a partition")
			}
			if tc.spec.Partition && res.Time >= 0 && res.Time < tc.spec.HealAt {
				t.Fatalf("converged at %v, before the partition healed at %v",
					res.Time, tc.spec.HealAt)
			}
		})
	}
}

// TestPermanentPartitionPreventsConvergence is the negative control: with
// a partition that never heals, the update must not cross the cut.
func TestPermanentPartitionPreventsConvergence(t *testing.T) {
	res := ConvergenceUnderFaults(LAN, 16, FaultSpec{
		Partition: true, PartitionAt: 0, HealAt: 0, Seed: 9,
	}, 7)
	if res.Converged {
		t.Fatal("converged across a permanent partition")
	}
	if res.DigestsEqual {
		t.Fatal("digests equal across a permanent partition")
	}
}

// TestFaultScheduleDeterministic runs the same faulty experiment twice
// and demands byte-identical fault schedules and identical outcomes.
func TestFaultScheduleDeterministic(t *testing.T) {
	spec := FaultSpec{Drop: 0.25, Dup: 0.10, Delay: 0.20, Seed: 55}
	a := ConvergenceUnderFaults(LAN, 20, spec, 11)
	b := ConvergenceUnderFaults(LAN, 20, spec, 11)
	if a.ScheduleHash != b.ScheduleHash {
		t.Fatalf("schedule hashes differ: %x vs %x", a.ScheduleHash, b.ScheduleHash)
	}
	if a.Time != b.Time || a.Converged != b.Converged {
		t.Fatalf("outcomes differ: %+v vs %+v", a, b)
	}
	if a.Faults != b.Faults {
		t.Fatalf("fault counts differ: %+v vs %+v", a.Faults, b.Faults)
	}
	// A different fault seed must yield a different schedule.
	spec.Seed = 56
	c := ConvergenceUnderFaults(LAN, 20, spec, 11)
	if c.ScheduleHash == a.ScheduleHash {
		t.Fatal("different fault seeds produced identical schedules")
	}
}

// TestFiftyPeerQuarterDropConverges is the acceptance run: 50 peers,
// 25% message loss, fixed seeds — every replica must end identical.
func TestFiftyPeerQuarterDropConverges(t *testing.T) {
	res := ConvergenceUnderFaults(LAN, 50, FaultSpec{Drop: 0.25, Seed: 42}, 7)
	if !res.Converged {
		t.Fatalf("50-peer 25%%-drop run did not converge; faults = %+v", res.Faults)
	}
	if !res.DigestsEqual {
		t.Fatalf("directories diverged: %v", res.Digests)
	}
	if res.Faults.Drops == 0 {
		t.Fatal("no drops injected")
	}
}
