package broker

import (
	"fmt"
	"testing"
	"time"
)

// vclock is a controllable test clock.
type vclock struct{ now time.Duration }

func (c *vclock) fn() func() time.Duration { return func() time.Duration { return c.now } }

func snip(id string, keys ...string) Snippet {
	return Snippet{ID: id, XML: "<s>" + id + "</s>", Keys: keys}
}

func TestSnippetKeys(t *testing.T) {
	s := snip("a", "x", "y")
	if !s.HasKey("x") || s.HasKey("z") {
		t.Fatal("HasKey broken")
	}
	if !s.HasAllKeys([]string{"x", "y"}) || s.HasAllKeys([]string{"x", "z"}) {
		t.Fatal("HasAllKeys broken")
	}
	if !s.HasAllKeys(nil) {
		t.Fatal("empty conjunction is vacuously true")
	}
}

func TestBrokerPutGetExpiry(t *testing.T) {
	c := &vclock{}
	b := NewBroker(c.fn())
	b.Put("k", snip("s1", "k"), 10*time.Minute)
	if got := b.Get("k"); len(got) != 1 || got[0].ID != "s1" {
		t.Fatalf("Get = %v", got)
	}
	c.now = 9 * time.Minute
	if got := b.Get("k"); len(got) != 1 {
		t.Fatal("expired too early")
	}
	c.now = 10 * time.Minute
	if got := b.Get("k"); len(got) != 0 {
		t.Fatal("snippet outlived its discard time")
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after expiry", b.Len())
	}
}

func TestBrokerSweep(t *testing.T) {
	c := &vclock{}
	b := NewBroker(c.fn())
	b.Put("k1", snip("s1", "k1"), time.Minute)
	b.Put("k2", snip("s2", "k2"), time.Hour)
	c.now = 2 * time.Minute
	if n := b.Sweep(); n != 1 {
		t.Fatalf("Sweep = %d, want 1", n)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestBrokerWatch(t *testing.T) {
	c := &vclock{}
	b := NewBroker(c.fn())
	var fired []string
	w := &Watch{Keys: []string{"x", "y"}, Fn: func(s Snippet) { fired = append(fired, s.ID) }}
	b.AddWatch(w)
	b.Put("x", snip("s1", "x"), time.Minute) // missing y: no fire
	b.Put("x", snip("s2", "x", "y"), time.Minute)
	if len(fired) != 1 || fired[0] != "s2" {
		t.Fatalf("fired = %v", fired)
	}
	b.RemoveWatch(w)
	b.Put("x", snip("s3", "x", "y"), time.Minute)
	if len(fired) != 1 {
		t.Fatal("watch fired after removal")
	}
	b.RemoveWatch(w) // idempotent
}

func TestServicePublishSearch(t *testing.T) {
	c := &vclock{}
	s := NewService()
	for i := 0; i < 8; i++ {
		s.Join(fmt.Sprintf("peer-%d", i), NewBroker(c.fn()))
	}
	if s.Members() != 8 {
		t.Fatalf("Members = %d", s.Members())
	}
	s.Publish(snip("doc1", "gossip", "bloom"), 10*time.Minute)
	s.Publish(snip("doc2", "gossip"), 10*time.Minute)

	got := s.Search([]string{"gossip"})
	if len(got) != 2 {
		t.Fatalf("Search(gossip) = %v", got)
	}
	if got[0].ID > got[1].ID {
		t.Fatal("results not sorted")
	}
	got = s.Search([]string{"gossip", "bloom"})
	if len(got) != 1 || got[0].ID != "doc1" {
		t.Fatalf("conjunctive Search = %v", got)
	}
	if s.Search(nil) != nil {
		t.Fatal("empty query should return nothing")
	}
	if got := s.Search([]string{"absent"}); len(got) != 0 {
		t.Fatalf("Search(absent) = %v", got)
	}

	// Expiry applies through the service too.
	c.now = 11 * time.Minute
	if got := s.Search([]string{"gossip"}); len(got) != 0 {
		t.Fatalf("expired snippets returned: %v", got)
	}
}

func TestServiceSubscribe(t *testing.T) {
	c := &vclock{}
	s := NewService()
	for i := 0; i < 4; i++ {
		s.Join(fmt.Sprintf("peer-%d", i), NewBroker(c.fn()))
	}
	var got []string
	cancel := s.Subscribe([]string{"news", "sports"}, func(sn Snippet) {
		got = append(got, sn.ID)
	})
	s.Publish(snip("a", "news"), time.Minute) // not a full match
	s.Publish(snip("b", "news", "sports"), time.Minute)
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("subscription fired = %v", got)
	}
	cancel()
	s.Publish(snip("c", "news", "sports"), time.Minute)
	if len(got) != 1 {
		t.Fatal("fired after cancel")
	}
	// Degenerate subscriptions are no-ops.
	s.Subscribe(nil, func(Snippet) { t.Fatal("must never fire") })()
}

func TestServiceLeaveLosesData(t *testing.T) {
	c := &vclock{}
	s := NewService()
	ids := make([]uint32, 0, 3)
	for i := 0; i < 3; i++ {
		ids = append(ids, s.Join(fmt.Sprintf("peer-%d", i), NewBroker(c.fn())))
	}
	s.Publish(snip("d", "somekey"), time.Hour)
	// Remove whichever broker owns "somekey": the snippet is gone — the
	// paper's explicit no-safety semantics.
	for _, id := range ids {
		s.Leave(id)
	}
	for i := 0; i < 3; i++ {
		s.Join(fmt.Sprintf("new-%d", i), NewBroker(c.fn()))
	}
	if got := s.Search([]string{"somekey"}); len(got) != 0 {
		t.Fatalf("data survived total broker turnover: %v", got)
	}
}

func TestExportAndPutUntil(t *testing.T) {
	c := &vclock{}
	b := NewBroker(c.fn())
	b.Put("k1", snip("s1", "k1"), time.Hour)
	b.Put("k2", snip("s2", "k2"), time.Minute)
	c.now = 2 * time.Minute // s2 expired
	exported := b.Export()
	if len(exported) != 1 || exported[0].Sn.ID != "s1" {
		t.Fatalf("exported = %+v", exported)
	}
	if b.Len() != 0 {
		t.Fatal("export did not drain")
	}
	// Import preserves the absolute expiry.
	b2 := NewBroker(c.fn())
	b2.PutUntil(exported[0].Key, exported[0].Sn, exported[0].Expires)
	if got := b2.Get("k1"); len(got) != 1 {
		t.Fatalf("imported = %v", got)
	}
	c.now = time.Hour + time.Minute
	if got := b2.Get("k1"); len(got) != 0 {
		t.Fatal("imported entry outlived original expiry")
	}
	// Importing an already-expired entry is a no-op.
	b2.PutUntil("k2", snip("s2", "k2"), time.Minute)
	if b2.Len() != 0 {
		t.Fatal("expired import stored")
	}
}

func TestLeaveGracefulHandsOff(t *testing.T) {
	c := &vclock{}
	s := NewService()
	brokers := map[uint32]*Broker{}
	for i := 0; i < 4; i++ {
		b := NewBroker(c.fn())
		id := s.Join(fmt.Sprintf("peer-%d", i), b)
		brokers[id] = b
	}
	s.Publish(snip("doc", "handoffkey"), time.Hour)
	// Find the owner and retire it gracefully.
	var ownerID uint32
	for id, b := range brokers {
		if b.Len() > 0 {
			ownerID = id
		}
	}
	if !s.LeaveGraceful(ownerID, brokers[ownerID]) {
		t.Fatal("graceful leave failed")
	}
	// The snippet survives at the new owner, unlike an abrupt Leave.
	if got := s.Search([]string{"handoffkey"}); len(got) != 1 {
		t.Fatalf("snippet lost despite graceful departure: %v", got)
	}
	// And still expires on schedule.
	c.now = 2 * time.Hour
	if got := s.Search([]string{"handoffkey"}); len(got) != 0 {
		t.Fatal("handed-off snippet outlived its discard time")
	}
	// Graceful leave of a non-member reports false.
	if s.LeaveGraceful(999999, NewBroker(c.fn())) {
		t.Fatal("leave of non-member succeeded")
	}
}

func TestJoinCollisionRehash(t *testing.T) {
	c := &vclock{}
	s := NewService()
	// Same name twice forces an id collision and linear rehash.
	id1 := s.Join("same", NewBroker(c.fn()))
	id2 := s.Join("same", NewBroker(c.fn()))
	if id1 == id2 {
		t.Fatal("collision not rehashed")
	}
	if s.Members() != 2 {
		t.Fatalf("Members = %d", s.Members())
	}
}

func BenchmarkPublish(b *testing.B) {
	c := &vclock{}
	s := NewService()
	for i := 0; i < 100; i++ {
		s.Join(fmt.Sprintf("p%d", i), NewBroker(c.fn()))
	}
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Publish(Snippet{ID: fmt.Sprint(i), Keys: keys}, time.Minute)
	}
}

func BenchmarkSearch(b *testing.B) {
	c := &vclock{}
	s := NewService()
	for i := 0; i < 100; i++ {
		s.Join(fmt.Sprintf("p%d", i), NewBroker(c.fn()))
	}
	for i := 0; i < 1000; i++ {
		s.Publish(Snippet{ID: fmt.Sprint(i), Keys: []string{fmt.Sprintf("k%d", i%50), "common"}}, time.Hour)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Search([]string{fmt.Sprintf("k%d", i%50), "common"})
	}
}
