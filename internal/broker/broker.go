// Package broker implements PlanetP's information brokerage service
// (Section 4): an optional, best-effort publish/locate layer used to make
// brand-new content findable before Bloom-filter gossip catches up.
// Information is published as an XML snippet with a set of associated keys
// and a discard time; the network of brokers partitions the key space with
// consistent hashing; snippets are discarded when their time expires. The
// service makes no durability guarantee — if a broker leaves abruptly, its
// snippets are lost (the paper's explicit design point).
package broker

import (
	"sort"
	"sync"
	"time"

	"planetp/internal/chash"
	"planetp/internal/metrics"
)

// Snippet is a published unit: an XML fragment advertised under keys.
type Snippet struct {
	// ID identifies the snippet (typically the content hash of XML).
	ID string
	// Owner is the publishing peer (so a consumer can fetch the full
	// document from its holder).
	Owner int32
	// XML is the published fragment.
	XML string
	// Keys are the terms the snippet is advertised under.
	Keys []string
}

// HasKey reports whether the snippet was advertised under key.
func (s Snippet) HasKey(key string) bool {
	for _, k := range s.Keys {
		if k == key {
			return true
		}
	}
	return false
}

// HasAllKeys reports whether the snippet covers every key (conjunctive
// query semantics).
func (s Snippet) HasAllKeys(keys []string) bool {
	for _, k := range keys {
		if !s.HasKey(k) {
			return false
		}
	}
	return true
}

// entry is a stored snippet with its expiry.
type entry struct {
	sn      Snippet
	expires time.Duration
}

// Watch is a persistent-query registration at a broker: fn fires when a
// newly published snippet contains all keys.
type Watch struct {
	Keys []string
	Fn   func(Snippet)
}

// Broker is one member's brokerage store: the snippets whose keys hash
// into the arcs this member owns. Thread-safe.
type Broker struct {
	mu      sync.Mutex
	clock   func() time.Duration
	byKey   map[string][]entry
	watches []*Watch
	// Stored counts live entries for diagnostics.
	puts, expired int

	m brokerMetrics
}

// brokerMetrics holds the broker's registry instruments (all nil — a
// no-op — until SetMetrics is called).
type brokerMetrics struct {
	puts     *metrics.Counter
	gets     *metrics.Counter
	returned *metrics.Counter
	expired  *metrics.Counter
	notifies *metrics.Counter
}

// NewBroker returns a broker using clock for expiry decisions (virtual
// time in simulation, monotonic elapsed time live).
func NewBroker(clock func() time.Duration) *Broker {
	return &Broker{clock: clock, byKey: make(map[string][]entry)}
}

// SetMetrics points the broker's counters (broker_* names) at reg. Call
// before the broker sees traffic; nil leaves instrumentation off.
func (b *Broker) SetMetrics(reg *metrics.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m = brokerMetrics{
		puts:     reg.Counter("broker_puts_total"),
		gets:     reg.Counter("broker_gets_total"),
		returned: reg.Counter("broker_snippets_returned_total"),
		expired:  reg.Counter("broker_expired_total"),
		notifies: reg.Counter("broker_watch_notifies_total"),
	}
}

// Put stores sn under key until the discard time elapses.
func (b *Broker) Put(key string, sn Snippet, discard time.Duration) {
	now := b.clock()
	b.mu.Lock()
	b.byKey[key] = append(b.byKey[key], entry{sn: sn, expires: now + discard})
	b.puts++
	b.m.puts.Inc()
	var fire []*Watch
	for _, w := range b.watches {
		if sn.HasAllKeys(w.Keys) {
			fire = append(fire, w)
		}
	}
	b.m.notifies.Add(int64(len(fire)))
	b.mu.Unlock()
	for _, w := range fire {
		w.Fn(sn)
	}
}

// Get returns the live snippets stored under key.
func (b *Broker) Get(key string) []Snippet {
	now := b.clock()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m.gets.Inc()
	entries := b.byKey[key]
	out := make([]Snippet, 0, len(entries))
	live := entries[:0]
	for _, e := range entries {
		if e.expires > now {
			out = append(out, e.sn)
			live = append(live, e)
		} else {
			b.expired++
			b.m.expired.Inc()
		}
	}
	if len(live) == 0 {
		delete(b.byKey, key)
	} else {
		b.byKey[key] = live
	}
	b.m.returned.Add(int64(len(out)))
	return out
}

// Sweep drops every expired entry, returning how many were discarded.
func (b *Broker) Sweep() int {
	now := b.clock()
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for key, entries := range b.byKey {
		live := entries[:0]
		for _, e := range entries {
			if e.expires > now {
				live = append(live, e)
			} else {
				n++
			}
		}
		if len(live) == 0 {
			delete(b.byKey, key)
		} else {
			b.byKey[key] = live
		}
	}
	b.expired += n
	b.m.expired.Add(int64(n))
	return n
}

// Stored is one exported broker entry (for handoff on graceful leave).
type Stored struct {
	Key     string
	Sn      Snippet
	Expires time.Duration
}

// Export drains the broker's live entries, returning them for handoff.
// The broker is left empty. Watches are not exported (watchers re-register
// through their own maintenance; the service is best-effort).
func (b *Broker) Export() []Stored {
	now := b.clock()
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Stored
	for key, entries := range b.byKey {
		for _, e := range entries {
			if e.expires > now {
				out = append(out, Stored{Key: key, Sn: e.sn, Expires: e.expires})
			}
		}
		delete(b.byKey, key)
	}
	return out
}

// PutUntil stores sn under key with an absolute expiry (handoff import).
func (b *Broker) PutUntil(key string, sn Snippet, expires time.Duration) {
	if expires <= b.clock() {
		return
	}
	b.mu.Lock()
	b.byKey[key] = append(b.byKey[key], entry{sn: sn, expires: expires})
	b.puts++
	b.m.puts.Inc()
	b.mu.Unlock()
}

// Len returns the number of live (unswept) entries.
func (b *Broker) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, entries := range b.byKey {
		n += len(entries)
	}
	return n
}

// AddWatch registers a persistent query at this broker.
func (b *Broker) AddWatch(w *Watch) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.watches = append(b.watches, w)
}

// RemoveWatch unregisters w.
func (b *Broker) RemoveWatch(w *Watch) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, x := range b.watches {
		if x == w {
			b.watches = append(b.watches[:i], b.watches[i+1:]...)
			return
		}
	}
}

// Service is the community-wide brokerage: a consistent-hashing ring of
// Brokers plus the client operations (publish, search, subscribe). In a
// live deployment each Broker sits on a different peer and calls travel
// over the transport; the Service abstraction is the same either way.
type Service struct {
	ring *chash.Ring[*Broker]
}

// NewService returns an empty brokerage.
func NewService() *Service {
	return &Service{ring: chash.NewRing[*Broker]()}
}

// Join adds a member's broker under its ring id, rehashing on collision.
func (s *Service) Join(name string, b *Broker) uint32 {
	id := chash.IDForMember(name)
	for !s.ring.Join(id, b) {
		id = (id + 1) % chash.MaxID
	}
	return id
}

// Leave removes a member's broker; its snippets are lost (the paper's
// no-safety property for abrupt departures).
func (s *Service) Leave(id uint32) bool { return s.ring.Leave(id) }

// LeaveGraceful removes a member's broker after handing its live snippets
// to their new owners — the cooperative-departure protocol of the
// companion technical report (DCS-TR-465): a member that signs off
// cleanly passes on its portion of the published data, so only abrupt
// departures lose information.
func (s *Service) LeaveGraceful(id uint32, b *Broker) bool {
	entries := b.Export()
	if !s.ring.Leave(id) {
		return false
	}
	for _, st := range entries {
		if _, owner, ok := s.ring.Lookup(st.Key); ok {
			owner.PutUntil(st.Key, st.Sn, st.Expires)
		}
	}
	return true
}

// Members returns the current broker count.
func (s *Service) Members() int { return s.ring.Len() }

// Publish stores sn under each of its keys at the owning brokers.
func (s *Service) Publish(sn Snippet, discard time.Duration) int {
	stored := 0
	for _, key := range sn.Keys {
		if _, b, ok := s.ring.Lookup(key); ok {
			b.Put(key, sn, discard)
			stored++
		}
	}
	return stored
}

// Search returns the live snippets containing all keys, deduplicated by
// snippet ID and sorted by ID for determinism.
func (s *Service) Search(keys []string) []Snippet {
	if len(keys) == 0 {
		return nil
	}
	seen := make(map[string]Snippet)
	for _, key := range keys {
		_, b, ok := s.ring.Lookup(key)
		if !ok {
			continue
		}
		for _, sn := range b.Get(key) {
			if sn.HasAllKeys(keys) {
				seen[sn.ID] = sn
			}
		}
	}
	out := make([]Snippet, 0, len(seen))
	for _, sn := range seen {
		out = append(out, sn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Subscribe registers a persistent query: fn fires whenever a snippet
// containing all keys is published. The watch lives at the broker owning
// the first key (best-effort, like the service itself). It returns a
// cancel function.
func (s *Service) Subscribe(keys []string, fn func(Snippet)) (cancel func()) {
	if len(keys) == 0 {
		return func() {}
	}
	_, b, ok := s.ring.Lookup(keys[0])
	if !ok {
		return func() {}
	}
	w := &Watch{Keys: keys, Fn: fn}
	b.AddWatch(w)
	return func() { b.RemoveWatch(w) }
}
