// Package bloom implements the Bloom filters PlanetP uses to summarize each
// peer's inverted index (Section 2 of the paper). A filter supports
// insertion and membership tests over terms, merging (a peer may combine
// several peers' filters to trade accuracy for storage), diffing (PlanetP
// gossips Bloom-filter diffs rather than whole filters), and a compact
// Golomb-coded wire encoding (Section 7.1: run-length compression using
// Golomb codes, which outperformed gzip on sparse filters).
//
// Hashing uses 64-bit FNV-1a split into two 32-bit halves combined with the
// standard Kirsch–Mitzenmacher double-hashing construction, giving any
// number of index functions from a single pass over the key.
package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"

	"planetp/internal/golomb"
)

// Paper defaults (Section 7.1): constant-size 50 KB filters summarizing up
// to 50,000 terms with < 5% false-positive rate using two hash functions.
const (
	// DefaultBits is the paper's 50 KB filter size in bits.
	DefaultBits = 50 * 1024 * 8
	// DefaultHashes is the paper's hash-function count.
	DefaultHashes = 2
)

// Errors returned by the decoding paths.
var (
	ErrCorrupt      = errors.New("bloom: corrupt encoding")
	ErrIncompatible = errors.New("bloom: filters have different geometry")
)

// Filter is a Bloom filter over string keys. The zero value is not usable;
// construct with New or Default.
type Filter struct {
	bits   []uint64
	nbits  uint64
	nhash  uint32
	nkeys  uint64 // number of Insert calls that set at least one new bit pattern
	ngen   uint64 // total Insert calls (including duplicates)
	setcnt uint64 // number of set bits, maintained incrementally
}

// New returns a filter with nbits bits and nhash hash functions.
func New(nbits int, nhash int) *Filter {
	if nbits <= 0 {
		panic(fmt.Sprintf("bloom: invalid bit count %d", nbits))
	}
	if nhash <= 0 {
		panic(fmt.Sprintf("bloom: invalid hash count %d", nhash))
	}
	return &Filter{
		bits:  make([]uint64, (nbits+63)/64),
		nbits: uint64(nbits),
		nhash: uint32(nhash),
	}
}

// Default returns a filter with the paper's default geometry (50 KB, 2
// hash functions).
func Default() *Filter { return New(DefaultBits, DefaultHashes) }

// NumBits returns the filter's size in bits.
func (f *Filter) NumBits() int { return int(f.nbits) }

// NumHashes returns the number of hash functions.
func (f *Filter) NumHashes() int { return int(f.nhash) }

// Keys returns the number of distinct-pattern insertions observed. It is an
// approximation of the number of distinct keys inserted (two distinct keys
// can collide on every bit, though with the default geometry this is rare).
func (f *Filter) Keys() int { return int(f.nkeys) }

// SetBits returns the number of one bits.
func (f *Filter) SetBits() int { return int(f.setcnt) }

// FNV-1a 64-bit parameters (FNV offset basis and prime).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Digest is the hash-once summary of one key: the two base hashes the
// Kirsch–Mitzenmacher construction combines into any number of index
// functions. Computing a Digest walks the key exactly once; probing a
// filter with it costs only arithmetic. The query engine hashes each
// query term once and sweeps every peer's filter with the digests,
// instead of re-hashing per (peer, term).
type Digest struct {
	// H1 is FNV-1a over the key.
	H1 uint64
	// H2 continues the same FNV-1a state over a suffix byte, forced odd
	// so strides cover the whole bit table.
	H2 uint64
}

// MakeDigest hashes key once. The construction is bit-identical to the
// original two-pass form (FNV-1a of the key, and FNV-1a of the key plus
// the suffix byte 0x9e): FNV-1a is a running state, so the second hash is
// the first continued over one more byte.
func MakeDigest(key string) Digest {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return Digest{H1: h, H2: ((h ^ 0x9e) * fnvPrime64) | 1}
}

// MakeDigests hashes every key once.
func MakeDigests(keys []string) []Digest {
	out := make([]Digest, len(keys))
	for i, k := range keys {
		out[i] = MakeDigest(k)
	}
	return out
}

// hashPair derives the two base hashes for a key.
func hashPair(key string) (uint64, uint64) {
	d := MakeDigest(key)
	return d.H1, d.H2
}

// indexes computes the nhash bit positions for key, appending to dst.
func (f *Filter) indexes(key string, dst []uint64) []uint64 {
	return f.IndexesDigest(MakeDigest(key), dst)
}

// IndexesDigest computes the nhash bit positions for a precomputed
// digest, appending to dst.
func (f *Filter) IndexesDigest(d Digest, dst []uint64) []uint64 {
	h := d.H1
	for i := uint32(0); i < f.nhash; i++ {
		dst = append(dst, h%f.nbits)
		h += d.H2
	}
	return dst
}

// setBit sets bit p, returning true if it was previously clear.
func (f *Filter) setBit(p uint64) bool {
	word, mask := p>>6, uint64(1)<<(p&63)
	if f.bits[word]&mask != 0 {
		return false
	}
	f.bits[word] |= mask
	f.setcnt++
	return true
}

// getBit reports whether bit p is set.
func (f *Filter) getBit(p uint64) bool {
	return f.bits[p>>6]&(uint64(1)<<(p&63)) != 0
}

// Insert adds key to the filter, returning true if the insertion changed
// the filter (i.e. at least one bit flipped — a proxy for "new key").
func (f *Filter) Insert(key string) bool {
	var buf [16]uint64
	idx := f.indexes(key, buf[:0])
	changed := false
	for _, p := range idx {
		if f.setBit(p) {
			changed = true
		}
	}
	f.ngen++
	if changed {
		f.nkeys++
	}
	return changed
}

// InsertAll adds every key, returning the number whose insertion changed
// the filter.
func (f *Filter) InsertAll(keys []string) int {
	n := 0
	for _, k := range keys {
		if f.Insert(k) {
			n++
		}
	}
	return n
}

// Contains reports whether key may be in the filter. False positives are
// possible; false negatives are not.
func (f *Filter) Contains(key string) bool {
	var buf [16]uint64
	for _, p := range f.indexes(key, buf[:0]) {
		if !f.getBit(p) {
			return false
		}
	}
	return true
}

// ContainsAll reports whether every key may be present (used for
// conjunctive queries against candidate peers).
func (f *Filter) ContainsAll(keys []string) bool {
	for _, k := range keys {
		if !f.Contains(k) {
			return false
		}
	}
	return true
}

// ContainsDigest reports whether the key summarized by d may be in the
// filter, without re-hashing it.
func (f *Filter) ContainsDigest(d Digest) bool {
	h := d.H1
	for i := uint32(0); i < f.nhash; i++ {
		if !f.getBit(h % f.nbits) {
			return false
		}
		h += d.H2
	}
	return true
}

// ContainsAllDigests reports whether every digested key may be present,
// stopping at the first miss (conjunctive probing).
func (f *Filter) ContainsAllDigests(ds []Digest) bool {
	for i := range ds {
		if !f.ContainsDigest(ds[i]) {
			return false
		}
	}
	return true
}

// FillRatio returns the fraction of bits set.
func (f *Filter) FillRatio() float64 {
	return float64(f.setcnt) / float64(f.nbits)
}

// FalsePositiveRate estimates the probability that a random absent key
// tests positive, (fill)^k.
func (f *Filter) FalsePositiveRate() float64 {
	return math.Pow(f.FillRatio(), float64(f.nhash))
}

// EstimateCardinality estimates how many distinct keys produced the current
// fill using the standard inversion n ≈ -(m/k) ln(1 - X/m).
func (f *Filter) EstimateCardinality() int {
	x := f.FillRatio()
	if x >= 1 {
		return int(f.nbits) // saturated; no information
	}
	n := -(float64(f.nbits) / float64(f.nhash)) * math.Log(1-x)
	return int(math.Round(n))
}

// ExpectedFPRate predicts the false-positive rate after inserting n keys
// into a fresh filter with this geometry: (1 - e^{-kn/m})^k.
func ExpectedFPRate(nbits, nhash, nkeys int) float64 {
	return math.Pow(1-math.Exp(-float64(nhash)*float64(nkeys)/float64(nbits)), float64(nhash))
}

// Clone returns a deep copy.
func (f *Filter) Clone() *Filter {
	c := &Filter{
		bits:  make([]uint64, len(f.bits)),
		nbits: f.nbits, nhash: f.nhash,
		nkeys: f.nkeys, ngen: f.ngen, setcnt: f.setcnt,
	}
	copy(c.bits, f.bits)
	return c
}

// Equal reports whether two filters have identical geometry and contents.
func (f *Filter) Equal(g *Filter) bool {
	if f.nbits != g.nbits || f.nhash != g.nhash {
		return false
	}
	for i := range f.bits {
		if f.bits[i] != g.bits[i] {
			return false
		}
	}
	return true
}

// Merge ORs other into f. A peer may merge several peers' filters to save
// space at the cost of contacting the whole set on a hit (Section 2).
func (f *Filter) Merge(other *Filter) error {
	if f.nbits != other.nbits || f.nhash != other.nhash {
		return ErrIncompatible
	}
	var set uint64
	for i := range f.bits {
		merged := f.bits[i] | other.bits[i]
		set += uint64(bits.OnesCount64(merged))
		f.bits[i] = merged
	}
	f.setcnt = set
	f.nkeys += other.nkeys // upper bound; duplicates cannot be distinguished
	f.ngen += other.ngen
	return nil
}

// Positions returns the sorted positions of all set bits.
func (f *Filter) Positions() []uint64 {
	out := make([]uint64, 0, f.setcnt)
	for w, word := range f.bits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, uint64(w*64+b))
			word &= word - 1
		}
	}
	return out
}

// Diff returns the positions set in f but not in old — the wire payload
// PlanetP gossips when a peer's index grows ("PlanetP sends diffs of the
// Bloom filters to save bandwidth", Section 7.2). old may be nil, in which
// case all set positions are returned.
func (f *Filter) Diff(old *Filter) ([]uint64, error) {
	if old == nil {
		return f.Positions(), nil
	}
	if f.nbits != old.nbits || f.nhash != old.nhash {
		return nil, ErrIncompatible
	}
	var out []uint64
	for w := range f.bits {
		word := f.bits[w] &^ old.bits[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, uint64(w*64+b))
			word &= word - 1
		}
	}
	return out, nil
}

// ApplyDiff sets the given bit positions (received from a gossiped diff).
// It returns the number of bits newly set.
func (f *Filter) ApplyDiff(positions []uint64) (int, error) {
	n := 0
	for _, p := range positions {
		if p >= f.nbits {
			return n, ErrCorrupt
		}
		if f.setBit(p) {
			n++
		}
	}
	return n, nil
}

// wire format version for Compress/Decompress and diff encoding.
const wireVersion = 1

// Decode-side sanity bounds: a filter larger than 32 MB (2^28 bits) or a
// Golomb parameter beyond OptimalM's ceiling (2^30, the empty-filter
// value) cannot come from our encoder, and rejecting them up front keeps
// hostile headers from forcing huge allocations or degenerate decoders.
const (
	maxWireBits = 1 << 28
	maxWireM    = 1 << 30
)

// Compress returns the Golomb-coded wire encoding of the filter:
//
//	[version u8][nbits uvarint][nhash uvarint][nkeys uvarint]
//	[nset uvarint][M uvarint][payload]
func (f *Filter) Compress() []byte {
	positions := f.Positions()
	p := f.FillRatio()
	m := golomb.OptimalM(p)
	payload, err := golomb.EncodeGaps(positions, m)
	if err != nil {
		// Positions from a bitmap are always strictly increasing.
		panic("bloom: internal error: " + err.Error())
	}
	hdr := make([]byte, 0, 32)
	hdr = append(hdr, wireVersion)
	hdr = binary.AppendUvarint(hdr, f.nbits)
	hdr = binary.AppendUvarint(hdr, uint64(f.nhash))
	hdr = binary.AppendUvarint(hdr, f.nkeys)
	hdr = binary.AppendUvarint(hdr, uint64(len(positions)))
	hdr = binary.AppendUvarint(hdr, m)
	return append(hdr, payload...)
}

// wireHeader is the parsed fixed part of a Compress encoding, shared by
// Decompress and DecodeCompact so the two accept and reject identical
// inputs.
type wireHeader struct {
	nbits uint64
	nhash uint64
	nkeys uint64
	nset  uint64
	m     uint64
}

// decodeWireHeader parses and validates the Compress header, returning
// the remaining Golomb payload.
func decodeWireHeader(buf []byte) (wireHeader, []byte, error) {
	var hdr wireHeader
	if len(buf) < 1 || buf[0] != wireVersion {
		return hdr, nil, ErrCorrupt
	}
	rest := buf[1:]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, ErrCorrupt
		}
		rest = rest[n:]
		return v, nil
	}
	var err error
	if hdr.nbits, err = next(); err != nil {
		return hdr, nil, err
	}
	if hdr.nhash, err = next(); err != nil {
		return hdr, nil, err
	}
	if hdr.nkeys, err = next(); err != nil {
		return hdr, nil, err
	}
	if hdr.nset, err = next(); err != nil {
		return hdr, nil, err
	}
	if hdr.m, err = next(); err != nil {
		return hdr, nil, err
	}
	if hdr.nbits == 0 || hdr.nbits > maxWireBits || hdr.nhash == 0 || hdr.nhash > 64 || hdr.nset > hdr.nbits {
		return hdr, nil, ErrCorrupt
	}
	if hdr.m == 0 || hdr.m > maxWireM {
		return hdr, nil, ErrCorrupt
	}
	return hdr, rest, nil
}

// Decompress reconstructs a filter from its Compress encoding.
func Decompress(buf []byte) (*Filter, error) {
	hdr, rest, err := decodeWireHeader(buf)
	if err != nil {
		return nil, err
	}
	// Decode the positions before allocating the filter, so a corrupt
	// header cannot cost a large allocation for garbage payload.
	positions, err := golomb.DecodeGaps(rest, hdr.m, int(hdr.nset))
	if err != nil {
		return nil, fmt.Errorf("bloom: %w", err)
	}
	f := New(int(hdr.nbits), int(hdr.nhash))
	f.nkeys = hdr.nkeys
	if _, err := f.ApplyDiff(positions); err != nil {
		return nil, err
	}
	return f, nil
}

// EncodeDiff serializes a diff (bit positions) with the same Golomb scheme:
//
//	[version u8][count uvarint][M uvarint][payload]
func EncodeDiff(positions []uint64, totalBits int) ([]byte, error) {
	density := float64(len(positions)) / float64(totalBits)
	m := golomb.OptimalM(density)
	payload, err := golomb.EncodeGaps(positions, m)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 0, 16)
	hdr = append(hdr, wireVersion)
	hdr = binary.AppendUvarint(hdr, uint64(len(positions)))
	hdr = binary.AppendUvarint(hdr, m)
	return append(hdr, payload...), nil
}

// DecodeDiff reverses EncodeDiff.
func DecodeDiff(buf []byte) ([]uint64, error) {
	if len(buf) < 1 || buf[0] != wireVersion {
		return nil, ErrCorrupt
	}
	rest := buf[1:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	rest = rest[n:]
	m, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	rest = rest[n:]
	if count > maxWireBits || m == 0 || m > maxWireM {
		return nil, ErrCorrupt
	}
	positions, err := golomb.DecodeGaps(rest, m, int(count))
	if err != nil {
		return nil, fmt.Errorf("bloom: %w", err)
	}
	return positions, nil
}
