// Package bloom implements the Bloom filters PlanetP uses to summarize each
// peer's inverted index (Section 2 of the paper). A filter supports
// insertion and membership tests over terms, merging (a peer may combine
// several peers' filters to trade accuracy for storage), diffing (PlanetP
// gossips Bloom-filter diffs rather than whole filters), and a compact
// Golomb-coded wire encoding (Section 7.1: run-length compression using
// Golomb codes, which outperformed gzip on sparse filters).
//
// Hashing uses 64-bit FNV-1a split into two 32-bit halves combined with the
// standard Kirsch–Mitzenmacher double-hashing construction, giving any
// number of index functions from a single pass over the key.
package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"

	"planetp/internal/golomb"
)

// Paper defaults (Section 7.1): constant-size 50 KB filters summarizing up
// to 50,000 terms with < 5% false-positive rate using two hash functions.
const (
	// DefaultBits is the paper's 50 KB filter size in bits.
	DefaultBits = 50 * 1024 * 8
	// DefaultHashes is the paper's hash-function count.
	DefaultHashes = 2
)

// Errors returned by the decoding paths.
var (
	ErrCorrupt      = errors.New("bloom: corrupt encoding")
	ErrIncompatible = errors.New("bloom: filters have different geometry")
)

// Filter is a Bloom filter over string keys. The zero value is not usable;
// construct with New or Default.
type Filter struct {
	bits   []uint64
	nbits  uint64
	nhash  uint32
	nkeys  uint64 // number of Insert calls that set at least one new bit pattern
	ngen   uint64 // total Insert calls (including duplicates)
	setcnt uint64 // number of set bits, maintained incrementally
}

// New returns a filter with nbits bits and nhash hash functions.
func New(nbits int, nhash int) *Filter {
	if nbits <= 0 {
		panic(fmt.Sprintf("bloom: invalid bit count %d", nbits))
	}
	if nhash <= 0 {
		panic(fmt.Sprintf("bloom: invalid hash count %d", nhash))
	}
	return &Filter{
		bits:  make([]uint64, (nbits+63)/64),
		nbits: uint64(nbits),
		nhash: uint32(nhash),
	}
}

// Default returns a filter with the paper's default geometry (50 KB, 2
// hash functions).
func Default() *Filter { return New(DefaultBits, DefaultHashes) }

// NumBits returns the filter's size in bits.
func (f *Filter) NumBits() int { return int(f.nbits) }

// NumHashes returns the number of hash functions.
func (f *Filter) NumHashes() int { return int(f.nhash) }

// Keys returns the number of distinct-pattern insertions observed. It is an
// approximation of the number of distinct keys inserted (two distinct keys
// can collide on every bit, though with the default geometry this is rare).
func (f *Filter) Keys() int { return int(f.nkeys) }

// SetBits returns the number of one bits.
func (f *Filter) SetBits() int { return int(f.setcnt) }

// hashPair derives the two base hashes for a key.
func hashPair(key string) (uint64, uint64) {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key)) // fnv never errors
	sum := h.Sum64()
	h1 := sum
	// Second independent-ish hash: FNV over the key with a suffix byte.
	h2 := fnv.New64a()
	_, _ = h2.Write([]byte(key))
	_, _ = h2.Write([]byte{0x9e})
	return h1, h2.Sum64() | 1 // force odd so strides cover the table
}

// indexes computes the nhash bit positions for key, appending to dst.
func (f *Filter) indexes(key string, dst []uint64) []uint64 {
	h1, h2 := hashPair(key)
	for i := uint32(0); i < f.nhash; i++ {
		dst = append(dst, (h1+uint64(i)*h2)%f.nbits)
	}
	return dst
}

// setBit sets bit p, returning true if it was previously clear.
func (f *Filter) setBit(p uint64) bool {
	word, mask := p>>6, uint64(1)<<(p&63)
	if f.bits[word]&mask != 0 {
		return false
	}
	f.bits[word] |= mask
	f.setcnt++
	return true
}

// getBit reports whether bit p is set.
func (f *Filter) getBit(p uint64) bool {
	return f.bits[p>>6]&(uint64(1)<<(p&63)) != 0
}

// Insert adds key to the filter, returning true if the insertion changed
// the filter (i.e. at least one bit flipped — a proxy for "new key").
func (f *Filter) Insert(key string) bool {
	var buf [16]uint64
	idx := f.indexes(key, buf[:0])
	changed := false
	for _, p := range idx {
		if f.setBit(p) {
			changed = true
		}
	}
	f.ngen++
	if changed {
		f.nkeys++
	}
	return changed
}

// InsertAll adds every key, returning the number whose insertion changed
// the filter.
func (f *Filter) InsertAll(keys []string) int {
	n := 0
	for _, k := range keys {
		if f.Insert(k) {
			n++
		}
	}
	return n
}

// Contains reports whether key may be in the filter. False positives are
// possible; false negatives are not.
func (f *Filter) Contains(key string) bool {
	var buf [16]uint64
	for _, p := range f.indexes(key, buf[:0]) {
		if !f.getBit(p) {
			return false
		}
	}
	return true
}

// ContainsAll reports whether every key may be present (used for
// conjunctive queries against candidate peers).
func (f *Filter) ContainsAll(keys []string) bool {
	for _, k := range keys {
		if !f.Contains(k) {
			return false
		}
	}
	return true
}

// FillRatio returns the fraction of bits set.
func (f *Filter) FillRatio() float64 {
	return float64(f.setcnt) / float64(f.nbits)
}

// FalsePositiveRate estimates the probability that a random absent key
// tests positive, (fill)^k.
func (f *Filter) FalsePositiveRate() float64 {
	return math.Pow(f.FillRatio(), float64(f.nhash))
}

// EstimateCardinality estimates how many distinct keys produced the current
// fill using the standard inversion n ≈ -(m/k) ln(1 - X/m).
func (f *Filter) EstimateCardinality() int {
	x := f.FillRatio()
	if x >= 1 {
		return int(f.nbits) // saturated; no information
	}
	n := -(float64(f.nbits) / float64(f.nhash)) * math.Log(1-x)
	return int(math.Round(n))
}

// ExpectedFPRate predicts the false-positive rate after inserting n keys
// into a fresh filter with this geometry: (1 - e^{-kn/m})^k.
func ExpectedFPRate(nbits, nhash, nkeys int) float64 {
	return math.Pow(1-math.Exp(-float64(nhash)*float64(nkeys)/float64(nbits)), float64(nhash))
}

// Clone returns a deep copy.
func (f *Filter) Clone() *Filter {
	c := &Filter{
		bits:  make([]uint64, len(f.bits)),
		nbits: f.nbits, nhash: f.nhash,
		nkeys: f.nkeys, ngen: f.ngen, setcnt: f.setcnt,
	}
	copy(c.bits, f.bits)
	return c
}

// Equal reports whether two filters have identical geometry and contents.
func (f *Filter) Equal(g *Filter) bool {
	if f.nbits != g.nbits || f.nhash != g.nhash {
		return false
	}
	for i := range f.bits {
		if f.bits[i] != g.bits[i] {
			return false
		}
	}
	return true
}

// Merge ORs other into f. A peer may merge several peers' filters to save
// space at the cost of contacting the whole set on a hit (Section 2).
func (f *Filter) Merge(other *Filter) error {
	if f.nbits != other.nbits || f.nhash != other.nhash {
		return ErrIncompatible
	}
	var set uint64
	for i := range f.bits {
		merged := f.bits[i] | other.bits[i]
		set += uint64(bits.OnesCount64(merged))
		f.bits[i] = merged
	}
	f.setcnt = set
	f.nkeys += other.nkeys // upper bound; duplicates cannot be distinguished
	f.ngen += other.ngen
	return nil
}

// Positions returns the sorted positions of all set bits.
func (f *Filter) Positions() []uint64 {
	out := make([]uint64, 0, f.setcnt)
	for w, word := range f.bits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, uint64(w*64+b))
			word &= word - 1
		}
	}
	return out
}

// Diff returns the positions set in f but not in old — the wire payload
// PlanetP gossips when a peer's index grows ("PlanetP sends diffs of the
// Bloom filters to save bandwidth", Section 7.2). old may be nil, in which
// case all set positions are returned.
func (f *Filter) Diff(old *Filter) ([]uint64, error) {
	if old == nil {
		return f.Positions(), nil
	}
	if f.nbits != old.nbits || f.nhash != old.nhash {
		return nil, ErrIncompatible
	}
	var out []uint64
	for w := range f.bits {
		word := f.bits[w] &^ old.bits[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, uint64(w*64+b))
			word &= word - 1
		}
	}
	return out, nil
}

// ApplyDiff sets the given bit positions (received from a gossiped diff).
// It returns the number of bits newly set.
func (f *Filter) ApplyDiff(positions []uint64) (int, error) {
	n := 0
	for _, p := range positions {
		if p >= f.nbits {
			return n, ErrCorrupt
		}
		if f.setBit(p) {
			n++
		}
	}
	return n, nil
}

// wire format version for Compress/Decompress and diff encoding.
const wireVersion = 1

// Decode-side sanity bounds: a filter larger than 32 MB (2^28 bits) or a
// Golomb parameter beyond OptimalM's ceiling (2^30, the empty-filter
// value) cannot come from our encoder, and rejecting them up front keeps
// hostile headers from forcing huge allocations or degenerate decoders.
const (
	maxWireBits = 1 << 28
	maxWireM    = 1 << 30
)

// Compress returns the Golomb-coded wire encoding of the filter:
//
//	[version u8][nbits uvarint][nhash uvarint][nkeys uvarint]
//	[nset uvarint][M uvarint][payload]
func (f *Filter) Compress() []byte {
	positions := f.Positions()
	p := f.FillRatio()
	m := golomb.OptimalM(p)
	payload, err := golomb.EncodeGaps(positions, m)
	if err != nil {
		// Positions from a bitmap are always strictly increasing.
		panic("bloom: internal error: " + err.Error())
	}
	hdr := make([]byte, 0, 32)
	hdr = append(hdr, wireVersion)
	hdr = binary.AppendUvarint(hdr, f.nbits)
	hdr = binary.AppendUvarint(hdr, uint64(f.nhash))
	hdr = binary.AppendUvarint(hdr, f.nkeys)
	hdr = binary.AppendUvarint(hdr, uint64(len(positions)))
	hdr = binary.AppendUvarint(hdr, m)
	return append(hdr, payload...)
}

// Decompress reconstructs a filter from its Compress encoding.
func Decompress(buf []byte) (*Filter, error) {
	if len(buf) < 1 || buf[0] != wireVersion {
		return nil, ErrCorrupt
	}
	rest := buf[1:]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, ErrCorrupt
		}
		rest = rest[n:]
		return v, nil
	}
	nbits, err := next()
	if err != nil {
		return nil, err
	}
	nhash, err := next()
	if err != nil {
		return nil, err
	}
	nkeys, err := next()
	if err != nil {
		return nil, err
	}
	nset, err := next()
	if err != nil {
		return nil, err
	}
	m, err := next()
	if err != nil {
		return nil, err
	}
	if nbits == 0 || nbits > maxWireBits || nhash == 0 || nhash > 64 || nset > nbits {
		return nil, ErrCorrupt
	}
	if m == 0 || m > maxWireM {
		return nil, ErrCorrupt
	}
	// Decode the positions before allocating the filter, so a corrupt
	// header cannot cost a large allocation for garbage payload.
	positions, err := golomb.DecodeGaps(rest, m, int(nset))
	if err != nil {
		return nil, fmt.Errorf("bloom: %w", err)
	}
	f := New(int(nbits), int(nhash))
	f.nkeys = nkeys
	if _, err := f.ApplyDiff(positions); err != nil {
		return nil, err
	}
	return f, nil
}

// EncodeDiff serializes a diff (bit positions) with the same Golomb scheme:
//
//	[version u8][count uvarint][M uvarint][payload]
func EncodeDiff(positions []uint64, totalBits int) ([]byte, error) {
	density := float64(len(positions)) / float64(totalBits)
	m := golomb.OptimalM(density)
	payload, err := golomb.EncodeGaps(positions, m)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 0, 16)
	hdr = append(hdr, wireVersion)
	hdr = binary.AppendUvarint(hdr, uint64(len(positions)))
	hdr = binary.AppendUvarint(hdr, m)
	return append(hdr, payload...), nil
}

// DecodeDiff reverses EncodeDiff.
func DecodeDiff(buf []byte) ([]uint64, error) {
	if len(buf) < 1 || buf[0] != wireVersion {
		return nil, ErrCorrupt
	}
	rest := buf[1:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	rest = rest[n:]
	m, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	rest = rest[n:]
	if count > maxWireBits || m == 0 || m > maxWireM {
		return nil, ErrCorrupt
	}
	positions, err := golomb.DecodeGaps(rest, m, int(count))
	if err != nil {
		return nil, fmt.Errorf("bloom: %w", err)
	}
	return positions, nil
}
