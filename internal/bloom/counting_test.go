package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestCountingAddRemoveContains(t *testing.T) {
	c := NewCounting(1<<14, 3)
	c.Add("alpha")
	c.Add("beta")
	if !c.Contains("alpha") || !c.Contains("beta") {
		t.Fatal("false negative")
	}
	if !c.Remove("alpha") {
		t.Fatal("remove failed")
	}
	if c.Contains("alpha") {
		t.Fatal("removed key still present (and no colliding keys exist)")
	}
	if !c.Contains("beta") {
		t.Fatal("removal corrupted sibling key")
	}
	if c.Keys() != 1 {
		t.Fatalf("Keys = %d", c.Keys())
	}
}

func TestCountingRemoveAbsent(t *testing.T) {
	c := NewCounting(1<<12, 2)
	if c.Remove("never-added") {
		t.Fatal("removing absent key succeeded")
	}
	c.Add("x")
	if c.Remove("definitely-absent-key-zzz") {
		// Could be a false positive of the filter, but at this fill
		// level it is effectively impossible.
		t.Fatal("removing absent key succeeded at near-zero fill")
	}
}

func TestCountingMultiset(t *testing.T) {
	c := NewCounting(1<<12, 2)
	c.Add("dup")
	c.Add("dup")
	c.Remove("dup")
	if !c.Contains("dup") {
		t.Fatal("one occurrence should remain")
	}
	c.Remove("dup")
	if c.Contains("dup") {
		t.Fatal("all occurrences removed; key should be gone")
	}
}

func TestCountingToFilter(t *testing.T) {
	c := DefaultCounting()
	keys := keys(500, "cf")
	for _, k := range keys {
		c.Add(k)
	}
	f := c.ToFilter()
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("rendered filter missing %q", k)
		}
	}
	// Remove half; re-render; removed keys gone, survivors intact.
	for i, k := range keys {
		if i%2 == 0 {
			c.Remove(k)
		}
	}
	f2 := c.ToFilter()
	for i, k := range keys {
		if i%2 == 1 && !f2.Contains(k) {
			t.Fatalf("survivor %q lost", k)
		}
	}
	if f2.SetBits() >= f.SetBits() {
		t.Fatal("rebuild did not shrink the filter")
	}
}

func TestCountingStaleBits(t *testing.T) {
	c := DefaultCounting()
	ks := keys(400, "sb")
	for _, k := range ks {
		c.Add(k)
	}
	gossiped := c.ToFilter() // what the community currently has
	// No removals yet: nothing stale.
	if n, err := c.StaleBits(gossiped); err != nil || n != 0 {
		t.Fatalf("stale = %d, %v", n, err)
	}
	for i, k := range ks {
		if i < 200 {
			c.Remove(k)
		}
	}
	n, err := c.StaleBits(gossiped)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("removals produced no stale bits")
	}
	if n > gossiped.SetBits()/2+50 {
		t.Fatalf("stale bits %d exceed plausible bound", n)
	}
	// Geometry mismatch is rejected.
	if _, err := c.StaleBits(New(64, 2)); err != ErrIncompatible {
		t.Fatalf("want ErrIncompatible, got %v", err)
	}
}

func TestCountingSaturation(t *testing.T) {
	c := NewCounting(8, 1) // tiny: forced collisions
	for i := 0; i < 300; i++ {
		c.Add(fmt.Sprintf("k%d", i))
	}
	// All counters saturated or near; removals must not underflow or
	// create false negatives for keys never removed.
	c.Remove("k0")
	for i := 1; i < 300; i++ {
		if !c.Contains(fmt.Sprintf("k%d", i)) {
			t.Fatalf("saturated filter produced false negative for k%d", i)
		}
	}
}

// Property: under the counting-filter contract (only remove keys you
// added), present keys never produce a false negative.
func TestQuickCountingNoFalseNegatives(t *testing.T) {
	f := func(ops []struct {
		Key uint8
		Del bool
	}) bool {
		c := NewCounting(1<<12, 2)
		net := map[string]int{}
		for _, op := range ops {
			k := fmt.Sprintf("key-%d", op.Key)
			if op.Del {
				if net[k] > 0 { // honor the contract
					if !c.Remove(k) {
						return false // present key must be removable
					}
					net[k]--
				}
			} else {
				c.Add(k)
				net[k]++
			}
		}
		for k, n := range net {
			if n > 0 && !c.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
