package bloom

import (
	"fmt"
	"sort"

	"planetp/internal/golomb"
)

// Compact is a succinct, probe-only representation of a Bloom filter: the
// sorted set-bit positions, decoded once from the Golomb wire payload and
// probed by binary search, without ever materializing the full bitset.
//
// For the sparse filters PlanetP gossips (a few thousand terms against the
// paper's 50 KB geometry) the position list is roughly an order of
// magnitude smaller resident than the decompressed bitset, which is what
// lets a directory replica keep every peer probeable while holding only
// hot peers' filters fully decompressed (see internal/filtercache).
//
// Probing is bit-identical to Filter probing: both derive the same
// Kirsch–Mitzenmacher index sequence from a Digest, and a position is
// "set" in the Compact exactly when the corresponding bit is set in the
// decompressed Filter. The pinned-vector tests in compact_test.go enforce
// this equivalence, including the empty and single-bit edge cases.
type Compact struct {
	// positions are the sorted set-bit positions. uint32 suffices: the
	// wire format rejects filters beyond maxWireBits (2^28) bits.
	positions []uint32
	nbits     uint64
	nhash     uint32
	nkeys     uint64
}

// DecodeCompact parses a Compress encoding into a Compact without
// materializing the bitset. It validates exactly what Decompress validates
// — the two must accept and reject the same inputs.
func DecodeCompact(buf []byte) (*Compact, error) {
	hdr, rest, err := decodeWireHeader(buf)
	if err != nil {
		return nil, err
	}
	positions, err := golomb.DecodeGaps(rest, hdr.m, int(hdr.nset))
	if err != nil {
		return nil, fmt.Errorf("bloom: %w", err)
	}
	c := &Compact{
		positions: make([]uint32, len(positions)),
		nbits:     hdr.nbits,
		nhash:     uint32(hdr.nhash),
		nkeys:     hdr.nkeys,
	}
	for i, p := range positions {
		if p >= hdr.nbits {
			return nil, ErrCorrupt
		}
		c.positions[i] = uint32(p)
	}
	return c, nil
}

// CompactOf builds the succinct representation directly from a filter
// (equivalent to DecodeCompact(f.Compress()), without the wire round
// trip). Used by tests and by callers that already hold the filter.
func CompactOf(f *Filter) *Compact {
	positions := f.Positions()
	c := &Compact{
		positions: make([]uint32, len(positions)),
		nbits:     f.nbits,
		nhash:     f.nhash,
		nkeys:     f.nkeys,
	}
	for i, p := range positions {
		c.positions[i] = uint32(p)
	}
	return c
}

// NumBits returns the filter geometry's size in bits.
func (c *Compact) NumBits() int { return int(c.nbits) }

// NumHashes returns the number of hash functions.
func (c *Compact) NumHashes() int { return int(c.nhash) }

// Keys returns the encoded distinct-pattern insertion count.
func (c *Compact) Keys() int { return int(c.nkeys) }

// SetBits returns the number of one bits.
func (c *Compact) SetBits() int { return len(c.positions) }

// SizeBytes returns the resident footprint of the position list plus the
// struct header — what a byte-budgeted cache should charge for keeping
// this Compact in memory.
func (c *Compact) SizeBytes() int {
	const structOverhead = 48 // struct + slice header, rounded up
	return 4*len(c.positions) + structOverhead
}

// hasBit reports whether position p is set, by binary search over the
// sorted position list.
func (c *Compact) hasBit(p uint64) bool {
	v := uint32(p)
	i := sort.Search(len(c.positions), func(i int) bool { return c.positions[i] >= v })
	return i < len(c.positions) && c.positions[i] == v
}

// ContainsDigest reports whether the key summarized by d may be in the
// filter. The index sequence is identical to Filter.ContainsDigest.
func (c *Compact) ContainsDigest(d Digest) bool {
	h := d.H1
	for i := uint32(0); i < c.nhash; i++ {
		if !c.hasBit(h % c.nbits) {
			return false
		}
		h += d.H2
	}
	return true
}

// ContainsAllDigests reports whether every digested key may be present,
// stopping at the first miss (conjunctive probing).
func (c *Compact) ContainsAllDigests(ds []Digest) bool {
	for i := range ds {
		if !c.ContainsDigest(ds[i]) {
			return false
		}
	}
	return true
}

// Contains reports whether key may be in the filter.
func (c *Compact) Contains(key string) bool {
	return c.ContainsDigest(MakeDigest(key))
}

// Filter materializes the full bitset — the hot-tier promotion path: a
// peer probed often enough earns its decompressed filter back.
func (c *Compact) Filter() *Filter {
	f := New(int(c.nbits), int(c.nhash))
	f.nkeys = c.nkeys
	for _, p := range c.positions {
		f.setBit(uint64(p))
	}
	return f
}
