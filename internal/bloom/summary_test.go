package bloom

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// The incremental summary must be indistinguishable from the pattern it
// replaces: clone the filter at every gossip, diff against the clone on
// the next. Run a randomized insert/flush schedule and compare both the
// encoded diff and the payload at every flush.
func TestSummaryMatchesCloneAndDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := New(1<<12, 4)
	s := NewSummary(f)
	shadow := f.Clone() // the "lastGossip" clone of the old pattern

	for round := 0; round < 50; round++ {
		n := rng.Intn(20)
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("term-%d", rng.Intn(500))
			s.Insert(key)
		}
		diff, payload, err := s.Flush()
		if err != nil {
			t.Fatalf("round %d: flush: %v", round, err)
		}

		wantPos, err := s.Filter().Diff(shadow)
		if err != nil {
			t.Fatalf("round %d: diff: %v", round, err)
		}
		wantDiff, err := EncodeDiff(wantPos, f.NumBits())
		if err != nil {
			t.Fatalf("round %d: encode: %v", round, err)
		}
		if !bytes.Equal(diff, wantDiff) {
			t.Fatalf("round %d: incremental diff differs from clone-and-rediff", round)
		}
		if want := s.Filter().Compress(); !bytes.Equal(payload, want) {
			t.Fatalf("round %d: cached payload differs from fresh Compress", round)
		}
		shadow = s.Filter().Clone()
	}
}

// A flush with no intervening inserts must reuse the cached payload (the
// whole point of the dirty flag: idle republish costs nothing).
func TestSummaryPayloadCache(t *testing.T) {
	s := NewSummary(Default())
	s.Insert("alpha")
	s.Insert("beta")
	_, p1, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	diff, p2, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if &p1[0] != &p2[0] {
		t.Fatal("idle flush recomputed the payload instead of reusing the cache")
	}
	pos, err := DecodeDiff(diff)
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 0 {
		t.Fatalf("idle flush produced a non-empty diff: %v", pos)
	}

	// A duplicate insert flips no bits and must not invalidate the cache.
	if s.Insert("alpha") {
		t.Fatal("duplicate insert reported a filter change")
	}
	if _, p3, _ := s.Flush(); &p3[0] != &p1[0] {
		t.Fatal("no-op insert invalidated the payload cache")
	}

	// A new term does invalidate it.
	if !s.Insert("gamma") {
		t.Fatal("fresh insert reported no change")
	}
	_, p4, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if &p4[0] == &p1[0] {
		t.Fatal("stale payload served after the filter changed")
	}
}

// Reset models compaction: a rebuilt filter replaces the old one and the
// pending diff is discarded.
func TestSummaryReset(t *testing.T) {
	s := NewSummary(Default())
	s.Insert("will-be-discarded")
	fresh := Default()
	fresh.Insert("kept")
	s.Reset(fresh)
	if s.Pending() != 0 {
		t.Fatalf("pending survived reset: %d", s.Pending())
	}
	if s.Filter() != fresh {
		t.Fatal("filter not replaced")
	}
	diff, payload, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	pos, _ := DecodeDiff(diff)
	if len(pos) != 0 {
		t.Fatalf("reset summary flushed stale positions: %v", pos)
	}
	if !bytes.Equal(payload, fresh.Compress()) {
		t.Fatal("payload does not reflect the replacement filter")
	}
}

// InsertTrack must report exactly the bits that flipped, once each.
func TestInsertTrack(t *testing.T) {
	f := New(1<<10, 3)
	var track []uint64
	track = f.InsertTrack("x", track)
	first := len(track)
	if first == 0 || first > 3 {
		t.Fatalf("tracked %d bits for a fresh key with 3 hashes", first)
	}
	track = f.InsertTrack("x", track) // duplicate: no new bits
	if len(track) != first {
		t.Fatalf("duplicate insert tracked new bits: %d -> %d", first, len(track))
	}
	g := New(1<<10, 3)
	g.Insert("x")
	if !f.Equal(g) {
		t.Fatal("InsertTrack and Insert diverged on filter content")
	}
	if f.Keys() != 1 {
		t.Fatalf("nkeys = %d after one distinct key", f.Keys())
	}
}
