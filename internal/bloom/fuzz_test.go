package bloom

import (
	"fmt"
	"testing"
)

// FuzzDecompress feeds arbitrary bytes to the filter decoder: it must
// return a filter or an error, never panic or allocate unboundedly.
func FuzzDecompress(f *testing.F) {
	small := New(1024, 2)
	small.Insert("alpha")
	small.Insert("beta")
	f.Add(small.Compress())
	f.Add(Default().Compress())
	f.Add([]byte{})
	f.Add([]byte{wireVersion})
	// Version byte then hostile varints (huge nbits / m / nset).
	f.Add([]byte{wireVersion, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{wireVersion, 0x00, 0x01, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, buf []byte) {
		g, err := Decompress(buf)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode to an equal filter.
		h, err := Decompress(g.Compress())
		if err != nil {
			t.Fatalf("re-decode of valid filter: %v", err)
		}
		if !g.Equal(h) {
			t.Fatal("re-encoded filter differs")
		}
	})
}

// FuzzDecodeDiff feeds arbitrary bytes to the diff decoder.
func FuzzDecodeDiff(f *testing.F) {
	diff, _ := EncodeDiff([]uint64{1, 5, 900}, 1024)
	f.Add(diff)
	f.Add([]byte{})
	f.Add([]byte{wireVersion, 0x05, 0x00})
	f.Add([]byte{wireVersion, 0xff, 0xff, 0xff, 0xff, 0x0f, 0x01})
	f.Fuzz(func(t *testing.T, buf []byte) {
		positions, err := DecodeDiff(buf)
		if err != nil {
			return
		}
		for i := 1; i < len(positions); i++ {
			if positions[i] <= positions[i-1] {
				t.Fatalf("diff positions not strictly increasing: %d then %d",
					positions[i-1], positions[i])
			}
		}
	})
}

// FuzzCompressRoundTrip inserts fuzz-derived keys and demands that the
// Golomb wire encoding round-trips to an identical filter.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte("the quick brown fox"), uint16(1024), uint8(2))
	f.Add([]byte{}, uint16(64), uint8(1))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint16(8192), uint8(4))
	f.Fuzz(func(t *testing.T, keys []byte, nbits uint16, nhash uint8) {
		if nbits == 0 {
			nbits = 1
		}
		if nhash == 0 || nhash > 16 {
			nhash = 2
		}
		g := New(int(nbits), int(nhash))
		for i := 0; i+2 <= len(keys); i += 2 {
			g.Insert(fmt.Sprintf("k-%x", keys[i:i+2]))
		}
		h, err := Decompress(g.Compress())
		if err != nil {
			t.Fatalf("decompress own encoding: %v", err)
		}
		if !g.Equal(h) {
			t.Fatal("round trip changed the filter")
		}
		if g.Keys() != h.Keys() || g.SetBits() != h.SetBits() {
			t.Fatalf("round trip changed counters: keys %d/%d setbits %d/%d",
				g.Keys(), h.Keys(), g.SetBits(), h.SetBits())
		}
	})
}
