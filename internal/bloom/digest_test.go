package bloom

import (
	"hash/fnv"
	"math/rand"
	"testing"
)

// referencePair is the seed's original two-pass hashPair: FNV-1a over the
// key, and a second full FNV-1a over the key plus the suffix byte 0x9e.
// MakeDigest must reproduce it bit for bit — gossiped filters built by
// older nodes stay probe-compatible with the hash-once fast path.
func referencePair(key string) (uint64, uint64) {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	h2 := fnv.New64a()
	_, _ = h2.Write([]byte(key))
	_, _ = h2.Write([]byte{0x9e})
	return h.Sum64(), h2.Sum64() | 1
}

func TestMakeDigestMatchesReference(t *testing.T) {
	cases := []string{"", "a", "term-0", "gossip", "планета", "\x00\xff", "planetp-bloom-filter-key"}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		b := make([]byte, rng.Intn(40))
		rng.Read(b)
		cases = append(cases, string(b))
	}
	for _, key := range cases {
		w1, w2 := referencePair(key)
		d := MakeDigest(key)
		if d.H1 != w1 || d.H2 != w2 {
			t.Fatalf("MakeDigest(%q) = {%#x %#x}, reference {%#x %#x}", key, d.H1, d.H2, w1, w2)
		}
	}
}

// TestDigestPinnedVectors pins the exact hash values of known keys so any
// future change to the construction fails loudly (the values are baked
// into every gossiped filter in the wild).
func TestDigestPinnedVectors(t *testing.T) {
	cases := []struct {
		key    string
		h1, h2 uint64
	}{
		{"", 0xcbf29ce484222325, 0xaf64534c8602b6c1},
		{"a", 0xaf63dc4c8601ec8c, 0x89b6807b5442297},
		{"gossip", 0x126a801979f5b038, 0x40a8514a3c7b2a13},
		{"planetp", 0x1e4ecf1be117d139, 0x97bb935f7b793ec5},
		{"term-0", 0xefcd69d5e38cadfa, 0x6b83a71a80aa0ed},
	}
	for _, c := range cases {
		d := MakeDigest(c.key)
		if d.H1 != c.h1 || d.H2 != c.h2 {
			t.Fatalf("MakeDigest(%q) = {%#x %#x}, pinned {%#x %#x}", c.key, d.H1, d.H2, c.h1, c.h2)
		}
	}
}

// TestDigestBitPositions pins the bit positions of the digest path to the
// reference construction over the default geometry.
func TestDigestBitPositions(t *testing.T) {
	f := Default()
	for _, key := range keys(100, "pin") {
		w1, w2 := referencePair(key)
		want := make([]uint64, 0, f.NumHashes())
		for i := uint64(0); i < uint64(f.NumHashes()); i++ {
			want = append(want, (w1+i*w2)%uint64(f.NumBits()))
		}
		got := f.IndexesDigest(MakeDigest(key), nil)
		if len(got) != len(want) {
			t.Fatalf("IndexesDigest(%q) len = %d, want %d", key, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("IndexesDigest(%q)[%d] = %d, want %d", key, i, got[i], want[i])
			}
		}
	}
}

func TestContainsDigestEquivalence(t *testing.T) {
	f := New(1<<12, 4)
	present := keys(500, "in")
	f.InsertAll(present)
	probe := append(append([]string{}, present...), keys(500, "out")...)
	for _, key := range probe {
		if f.Contains(key) != f.ContainsDigest(MakeDigest(key)) {
			t.Fatalf("Contains(%q) != ContainsDigest", key)
		}
	}
}

func TestContainsAllDigests(t *testing.T) {
	f := Default()
	in := keys(100, "conj")
	f.InsertAll(in)
	if !f.ContainsAllDigests(MakeDigests(in)) {
		t.Fatal("all inserted keys must probe positive")
	}
	mixed := append(append([]string{}, in[:3]...), "definitely-absent-key")
	if f.ContainsAllDigests(MakeDigests(mixed)) != f.ContainsAll(mixed) {
		t.Fatal("ContainsAllDigests disagrees with ContainsAll")
	}
	if f.ContainsAllDigests(nil) != true {
		t.Fatal("empty digest set is vacuously contained")
	}
}

func TestMakeDigestsOrder(t *testing.T) {
	terms := []string{"alpha", "beta", "gamma"}
	ds := MakeDigests(terms)
	if len(ds) != len(terms) {
		t.Fatalf("len = %d", len(ds))
	}
	for i, term := range terms {
		if ds[i] != MakeDigest(term) {
			t.Fatalf("digest %d mismatch", i)
		}
	}
}

// The fast path must not allocate: one digest, any number of probes.
func TestDigestProbeAllocs(t *testing.T) {
	f := Default()
	f.InsertAll(keys(1000, "alloc"))
	d := MakeDigest("alloc-key-1")
	allocs := testing.AllocsPerRun(100, func() {
		if !f.ContainsDigest(d) {
			t.Fatal("false negative")
		}
	})
	if allocs != 0 {
		t.Fatalf("ContainsDigest allocates %.1f/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		MakeDigest("alloc-key-999")
	})
	if allocs != 0 {
		t.Fatalf("MakeDigest allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkMakeDigest(b *testing.B) {
	key := "benchmark-term-key"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MakeDigest(key)
	}
}

func BenchmarkContainsDigest(b *testing.B) {
	f := Default()
	f.InsertAll(keys(1000, "bench"))
	d := MakeDigest("bench-key-500")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.ContainsDigest(d)
	}
}
