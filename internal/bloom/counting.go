package bloom

import (
	"math"
)

// Counting is a counting Bloom filter: each position holds a small
// counter instead of a bit, so keys can be removed. PlanetP peers use one
// locally to track their own index contents under document removal — the
// gossiped filter remains a plain Filter (4-bit counters would quadruple
// the wire size for no query benefit), but the counting twin makes it
// cheap to know exactly which bits a rebuild would clear and when a
// rebuild is worthwhile.
//
// Counters are 8-bit with saturation: a counter that reaches 255 sticks
// there (removals of saturated positions are ignored), trading exactness
// in pathological cases for never under-counting — the filter stays a
// superset of the true set, preserving no-false-negatives.
type Counting struct {
	counts []uint8
	nbits  uint64
	nhash  uint32
	nkeys  int
}

// NewCounting returns a counting filter with the given geometry.
func NewCounting(nbits, nhash int) *Counting {
	if nbits <= 0 || nhash <= 0 {
		panic("bloom: invalid counting-filter geometry")
	}
	return &Counting{
		counts: make([]uint8, nbits),
		nbits:  uint64(nbits),
		nhash:  uint32(nhash),
	}
}

// DefaultCounting returns a counting filter with the paper's default
// geometry.
func DefaultCounting() *Counting { return NewCounting(DefaultBits, DefaultHashes) }

// NumBits returns the filter's position count.
func (c *Counting) NumBits() int { return int(c.nbits) }

// Keys returns the net number of Add calls minus successful Remove calls.
func (c *Counting) Keys() int { return c.nkeys }

// indexes computes the hash positions for key.
func (c *Counting) indexes(key string, dst []uint64) []uint64 {
	h1, h2 := hashPair(key)
	for i := uint32(0); i < c.nhash; i++ {
		dst = append(dst, (h1+uint64(i)*h2)%c.nbits)
	}
	return dst
}

// Add inserts one occurrence of key.
func (c *Counting) Add(key string) {
	var buf [16]uint64
	for _, p := range c.indexes(key, buf[:0]) {
		if c.counts[p] < math.MaxUint8 {
			c.counts[p]++
		}
	}
	c.nkeys++
}

// Remove deletes one occurrence of key. Callers must only remove keys
// they previously Added (the standard counting-filter contract): removing
// a never-added key that happens to test positive would decrement
// counters belonging to other keys. As a best-effort guard, Remove
// reports false (and does nothing) when key tests absent.
func (c *Counting) Remove(key string) bool {
	var buf [16]uint64
	idx := c.indexes(key, buf[:0])
	for _, p := range idx {
		if c.counts[p] == 0 {
			return false
		}
	}
	for _, p := range idx {
		if c.counts[p] < math.MaxUint8 {
			c.counts[p]--
		}
	}
	c.nkeys--
	return true
}

// Contains reports whether key may be present.
func (c *Counting) Contains(key string) bool {
	var buf [16]uint64
	for _, p := range c.indexes(key, buf[:0]) {
		if c.counts[p] == 0 {
			return false
		}
	}
	return true
}

// ToFilter renders the current occupancy as a plain gossipable Filter
// with the same geometry.
func (c *Counting) ToFilter() *Filter {
	f := New(int(c.nbits), int(c.nhash))
	for p, cnt := range c.counts {
		if cnt > 0 {
			f.setBit(uint64(p))
		}
	}
	if c.nkeys > 0 {
		f.nkeys = uint64(c.nkeys)
	}
	return f
}

// StaleBits reports how many positions are set in stale (a previously
// gossiped plain filter) but clear here — i.e. how many bits a rebuild
// would clean. The fraction StaleBits/SetBits is the natural trigger for
// republishing a compacted filter.
func (c *Counting) StaleBits(stale *Filter) (int, error) {
	if uint64(stale.NumBits()) != c.nbits || uint32(stale.NumHashes()) != c.nhash {
		return 0, ErrIncompatible
	}
	n := 0
	for _, p := range stale.Positions() {
		if c.counts[p] == 0 {
			n++
		}
	}
	return n, nil
}
