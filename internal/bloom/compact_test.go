package bloom

import (
	"encoding/hex"
	"math/rand"
	"testing"
)

// mustDecodeCompact decodes or fails the test.
func mustDecodeCompact(t *testing.T, buf []byte) *Compact {
	t.Helper()
	c, err := DecodeCompact(buf)
	if err != nil {
		t.Fatalf("DecodeCompact: %v", err)
	}
	return c
}

// checkEquivalent probes f and c with the same digests and fails on any
// disagreement — the bit-identical contract.
func checkEquivalent(t *testing.T, f *Filter, c *Compact, keys []string) {
	t.Helper()
	for _, k := range keys {
		d := MakeDigest(k)
		if got, want := c.ContainsDigest(d), f.ContainsDigest(d); got != want {
			t.Fatalf("ContainsDigest(%q): compact=%v filter=%v", k, got, want)
		}
		if got, want := c.Contains(k), f.Contains(k); got != want {
			t.Fatalf("Contains(%q): compact=%v filter=%v", k, got, want)
		}
	}
	ds := MakeDigests(keys)
	if got, want := c.ContainsAllDigests(ds), f.ContainsAllDigests(ds); got != want {
		t.Fatalf("ContainsAllDigests: compact=%v filter=%v", got, want)
	}
}

// TestCompactPinnedVectors pins the exact wire bytes, set positions, and
// probe outcomes for a small fixed filter, so any drift in hashing, the
// Golomb payload, or Compact's binary-search probing is caught against
// constants rather than against a co-evolving reference.
func TestCompactPinnedVectors(t *testing.T) {
	f := New(256, 3)
	for _, k := range []string{"alpha", "bravo", "charlie"} {
		f.Insert(k)
	}
	const wantWire = "01800203030913b6970e53fbab70"
	wire := f.Compress()
	if got := hex.EncodeToString(wire); got != wantWire {
		t.Fatalf("wire = %s, want %s", got, wantWire)
	}
	c := mustDecodeCompact(t, wire)
	wantPositions := []uint32{33, 43, 59, 67, 73, 81, 174, 186, 202}
	if len(c.positions) != len(wantPositions) {
		t.Fatalf("positions = %v, want %v", c.positions, wantPositions)
	}
	for i, p := range wantPositions {
		if c.positions[i] != p {
			t.Fatalf("positions = %v, want %v", c.positions, wantPositions)
		}
	}
	if c.NumBits() != 256 || c.NumHashes() != 3 || c.Keys() != 3 || c.SetBits() != 9 {
		t.Fatalf("geometry = (%d,%d,%d,%d), want (256,3,3,9)",
			c.NumBits(), c.NumHashes(), c.Keys(), c.SetBits())
	}
	// Pinned digests and probe outcomes (inserted keys positive, the
	// absent ones negative at this fill).
	vectors := []struct {
		key      string
		h1, h2   uint64
		contains bool
	}{
		{"alpha", 0x8ac625bb85ed202b, 0xbbd2d2a491ee938f, true},
		{"bravo", 0xb469211dfdbe6043, 0x4d0422f62a7e9787, true},
		{"charlie", 0xa3683978114e2021, 0xf83a660567c1a48d, true},
		{"delta", 0x52076675ec13a0c1, 0x763379602559816d, false},
		{"echo", 0x3000e56026044164, 0x95c7bc60993c1bcf, false},
		{"foxtrot", 0xe9d5f383e02ade2f, 0x816b7a15e8d866c3, false},
		{"golf", 0x9cefca720ea68439, 0x51f9a6cee4f367c5, false},
		{"hotel", 0x42aaef7b47cd3d5d, 0x15b2b17b01bff259, false},
	}
	for _, v := range vectors {
		d := MakeDigest(v.key)
		if d.H1 != v.h1 || d.H2 != v.h2 {
			t.Fatalf("MakeDigest(%q) = {%#x, %#x}, want {%#x, %#x}",
				v.key, d.H1, d.H2, v.h1, v.h2)
		}
		if got := c.ContainsDigest(d); got != v.contains {
			t.Errorf("compact.ContainsDigest(%q) = %v, want %v", v.key, got, v.contains)
		}
		if got := f.ContainsDigest(d); got != v.contains {
			t.Errorf("filter.ContainsDigest(%q) = %v, want %v", v.key, got, v.contains)
		}
	}
}

// TestCompactEmptyFilter pins the empty-filter encoding and checks that an
// empty Compact rejects everything, exactly like the empty Filter.
func TestCompactEmptyFilter(t *testing.T) {
	f := New(128, 2)
	wire := f.Compress()
	if got, want := hex.EncodeToString(wire), "0180010200008080808004"; got != want {
		t.Fatalf("empty wire = %s, want %s", got, want)
	}
	c := mustDecodeCompact(t, wire)
	if c.SetBits() != 0 {
		t.Fatalf("SetBits = %d, want 0", c.SetBits())
	}
	checkEquivalent(t, f, c, []string{"", "a", "b", "anything at all"})
	if c.ContainsDigest(MakeDigest("x")) {
		t.Fatal("empty compact claims membership")
	}
	if !c.ContainsAllDigests(nil) {
		t.Fatal("vacuous conjunction should hold")
	}
}

// TestCompactSingleBit probes a filter with exactly one set bit: the
// binary-search edge cases (first/last/only element) all collapse here.
func TestCompactSingleBit(t *testing.T) {
	f := New(64, 1)
	if _, err := f.ApplyDiff([]uint64{5}); err != nil {
		t.Fatal(err)
	}
	c := mustDecodeCompact(t, f.Compress())
	if c.SetBits() != 1 || c.positions[0] != 5 {
		t.Fatalf("positions = %v, want [5]", c.positions)
	}
	// Sweep digests whose single probe index covers every bit position.
	for h1 := uint64(0); h1 < 64; h1++ {
		d := Digest{H1: h1, H2: 1}
		if got, want := c.ContainsDigest(d), f.ContainsDigest(d); got != want {
			t.Fatalf("position %d: compact=%v filter=%v", h1, got, want)
		}
		if c.ContainsDigest(d) != (h1 == 5) {
			t.Fatalf("position %d: want hit only at 5", h1)
		}
	}
}

// TestCompactEquivalenceRandom cross-checks Compact against Filter on
// random corpora across several geometries, via both construction paths
// (wire decode and CompactOf).
func TestCompactEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	geoms := []struct{ nbits, nhash, nkeys int }{
		{512, 2, 20},
		{4096, 4, 200},
		{DefaultBits, DefaultHashes, 2000}, // paper geometry
		{1 << 16, 8, 1000},
	}
	for _, g := range geoms {
		f := New(g.nbits, g.nhash)
		keys := make([]string, 0, 2*g.nkeys)
		for i := 0; i < g.nkeys; i++ {
			k := randKey(rng)
			f.Insert(k)
			keys = append(keys, k)
		}
		for i := 0; i < g.nkeys; i++ {
			keys = append(keys, randKey(rng)) // mostly-absent probes
		}
		wire := f.Compress()
		c := mustDecodeCompact(t, wire)
		checkEquivalent(t, f, c, keys)
		checkEquivalent(t, f, CompactOf(f), keys)
		// Positive probes must all hit (no false negatives through the
		// succinct path).
		for _, k := range keys[:g.nkeys] {
			if !c.Contains(k) {
				t.Fatalf("geometry %+v: inserted key %q missing from compact", g, k)
			}
		}
	}
}

// TestCompactFilterRoundTrip materializes a Filter back from a Compact and
// requires exact bitset equality with the original.
func TestCompactFilterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := New(8192, 3)
	for i := 0; i < 300; i++ {
		f.Insert(randKey(rng))
	}
	got := CompactOf(f).Filter()
	if !f.Equal(got) {
		t.Fatal("Compact.Filter() does not round-trip the bitset")
	}
	if got.Keys() != f.Keys() || got.SetBits() != f.SetBits() {
		t.Fatalf("metadata mismatch: keys %d/%d setbits %d/%d",
			got.Keys(), f.Keys(), got.SetBits(), f.SetBits())
	}
	g2 := mustDecodeCompact(t, f.Compress()).Filter()
	if !f.Equal(g2) {
		t.Fatal("wire-decoded Compact.Filter() does not round-trip the bitset")
	}
}

// TestCompactRejectsCorrupt requires DecodeCompact to reject exactly what
// Decompress rejects.
func TestCompactRejectsCorrupt(t *testing.T) {
	f := New(1024, 2)
	f.Insert("x")
	wire := f.Compress()
	bad := [][]byte{
		nil,
		{},
		{0xff},             // wrong version
		wire[:1],           // truncated header
		wire[:len(wire)/2], // truncated payload
	}
	for i, buf := range bad {
		if _, err := DecodeCompact(buf); err == nil {
			t.Errorf("case %d: DecodeCompact accepted corrupt input", i)
		}
		if _, err := Decompress(buf); err == nil {
			t.Errorf("case %d: Decompress accepted corrupt input", i)
		}
	}
}

// TestCompactSizeBytes sanity-checks the residency claim driving the
// two-tier cache: for a paper-geometry filter with a few thousand terms
// the position list is at least 5x smaller than the decompressed bitset.
func TestCompactSizeBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := Default()
	for i := 0; i < 1000; i++ {
		f.Insert(randKey(rng))
	}
	c := CompactOf(f)
	bitset := DefaultBits / 8
	if c.SizeBytes()*5 > bitset {
		t.Fatalf("compact %d bytes vs bitset %d bytes: less than 5x smaller", c.SizeBytes(), bitset)
	}
}

func randKey(rng *rand.Rand) string {
	b := make([]byte, 8+rng.Intn(12))
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}
