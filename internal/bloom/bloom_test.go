package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func keys(n int, prefix string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-key-%d", prefix, i)
	}
	return out
}

func TestNoFalseNegatives(t *testing.T) {
	f := Default()
	ks := keys(5000, "present")
	f.InsertAll(ks)
	for _, k := range ks {
		if !f.Contains(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestContainsAll(t *testing.T) {
	f := Default()
	f.InsertAll([]string{"alpha", "beta", "gamma"})
	if !f.ContainsAll([]string{"alpha", "gamma"}) {
		t.Fatal("ContainsAll should hold for inserted keys")
	}
	if f.ContainsAll([]string{"alpha", "zeta-definitely-not-there-4712"}) {
		// This could be a false positive, but at this fill level it is
		// astronomically unlikely with a 50KB filter.
		t.Fatal("ContainsAll hit on absent key at near-zero fill")
	}
}

func TestFalsePositiveRateNearPrediction(t *testing.T) {
	const n = 50000
	f := Default()
	f.InsertAll(keys(n, "in"))
	predicted := ExpectedFPRate(DefaultBits, DefaultHashes, n)
	// Paper: <5% at 50k terms in a 50KB filter with 2 hashes.
	if predicted >= 0.05 {
		t.Fatalf("predicted FP rate %.4f, paper promises < 0.05", predicted)
	}
	probe := keys(20000, "out")
	fp := 0
	for _, k := range probe {
		if f.Contains(k) {
			fp++
		}
	}
	got := float64(fp) / float64(len(probe))
	if got > 2.5*predicted+0.01 {
		t.Fatalf("measured FP rate %.4f far above predicted %.4f", got, predicted)
	}
}

func TestInsertReportsChange(t *testing.T) {
	f := Default()
	if !f.Insert("x") {
		t.Fatal("first insert should change filter")
	}
	if f.Insert("x") {
		t.Fatal("duplicate insert should not change filter")
	}
	if f.Keys() != 1 {
		t.Fatalf("Keys() = %d, want 1", f.Keys())
	}
}

func TestFillRatioAndSetBits(t *testing.T) {
	f := New(1024, 2)
	if f.FillRatio() != 0 {
		t.Fatal("fresh filter should be empty")
	}
	f.Insert("a")
	if f.SetBits() == 0 || f.SetBits() > 2 {
		t.Fatalf("SetBits = %d, want 1..2", f.SetBits())
	}
	if f.FillRatio() != float64(f.SetBits())/1024 {
		t.Fatal("FillRatio inconsistent with SetBits")
	}
}

func TestEstimateCardinality(t *testing.T) {
	f := Default()
	const n = 10000
	f.InsertAll(keys(n, "card"))
	est := f.EstimateCardinality()
	if est < n*95/100 || est > n*105/100 {
		t.Fatalf("cardinality estimate %d, want within 5%% of %d", est, n)
	}
}

func TestMerge(t *testing.T) {
	a, b := Default(), Default()
	a.InsertAll(keys(100, "a"))
	b.InsertAll(keys(100, "b"))
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for _, k := range append(keys(100, "a"), keys(100, "b")...) {
		if !a.Contains(k) {
			t.Fatalf("merged filter missing %q", k)
		}
	}
}

func TestMergeIncompatible(t *testing.T) {
	a := New(1024, 2)
	b := New(2048, 2)
	if err := a.Merge(b); err != ErrIncompatible {
		t.Fatalf("want ErrIncompatible, got %v", err)
	}
	c := New(1024, 3)
	if err := a.Merge(c); err != ErrIncompatible {
		t.Fatalf("want ErrIncompatible for hash mismatch, got %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Default()
	a.Insert("one")
	c := a.Clone()
	if !c.Equal(a) {
		t.Fatal("clone should equal original")
	}
	c.Insert("two")
	if a.Contains("two") && a.Equal(c) {
		t.Fatal("mutating clone affected original")
	}
}

func TestPositionsSortedAndComplete(t *testing.T) {
	f := New(4096, 3)
	f.InsertAll(keys(50, "p"))
	pos := f.Positions()
	if len(pos) != f.SetBits() {
		t.Fatalf("Positions len %d != SetBits %d", len(pos), f.SetBits())
	}
	for i := 1; i < len(pos); i++ {
		if pos[i] <= pos[i-1] {
			t.Fatal("positions not strictly increasing")
		}
	}
	for _, p := range pos {
		if !f.getBit(p) {
			t.Fatalf("position %d reported but bit clear", p)
		}
	}
}

func TestDiffAndApplyDiff(t *testing.T) {
	old := Default()
	old.InsertAll(keys(500, "base"))
	cur := old.Clone()
	cur.InsertAll(keys(300, "new"))
	diff, err := cur.Diff(old)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) == 0 {
		t.Fatal("expected non-empty diff")
	}
	// Applying the diff to a copy of old must reproduce cur's bitmap.
	recon := old.Clone()
	if _, err := recon.ApplyDiff(diff); err != nil {
		t.Fatal(err)
	}
	if !recon.Equal(cur) {
		t.Fatal("old + diff != current")
	}
}

func TestDiffNilMeansFull(t *testing.T) {
	f := Default()
	f.InsertAll(keys(10, "d"))
	diff, err := f.Diff(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != f.SetBits() {
		t.Fatalf("nil diff length %d != SetBits %d", len(diff), f.SetBits())
	}
}

func TestApplyDiffOutOfRange(t *testing.T) {
	f := New(64, 2)
	if _, err := f.ApplyDiff([]uint64{64}); err != ErrCorrupt {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestCompressRoundTrip(t *testing.T) {
	f := Default()
	f.InsertAll(keys(2000, "c"))
	buf := f.Compress()
	g, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(f) {
		t.Fatal("decompressed filter differs")
	}
	if g.Keys() != f.Keys() {
		t.Fatalf("keys not preserved: %d vs %d", g.Keys(), f.Keys())
	}
}

func TestCompressSizeMatchesPaper(t *testing.T) {
	// Table 2: a 1000-key BF compresses to ~3000 bytes; 20000 keys to
	// ~16000 bytes. Our Golomb scheme should land in the same regime
	// (within 2x), since it is the same idea over the same geometry.
	f := Default()
	f.InsertAll(keys(1000, "k"))
	if n := len(f.Compress()); n > 6000 {
		t.Fatalf("1000-key filter compressed to %d bytes; want < 6000", n)
	}
	g := Default()
	g.InsertAll(keys(20000, "k"))
	if n := len(g.Compress()); n > 32000 {
		t.Fatalf("20000-key filter compressed to %d bytes; want < 32000", n)
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	f := Default()
	f.InsertAll(keys(100, "x"))
	buf := f.Compress()
	cases := [][]byte{nil, {}, {99}, buf[:1]}
	for i, c := range cases {
		if _, err := Decompress(c); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// Truncated payload: must not panic; error or garbage are both fine.
	_, _ = Decompress(buf[:len(buf)/2])
}

func TestDiffEncodeDecode(t *testing.T) {
	f := Default()
	f.InsertAll(keys(700, "diff"))
	pos := f.Positions()
	buf, err := EncodeDiff(pos, f.NumBits())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDiff(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pos) {
		t.Fatalf("decoded %d positions, want %d", len(got), len(pos))
	}
	for i := range got {
		if got[i] != pos[i] {
			t.Fatalf("position %d: got %d want %d", i, got[i], pos[i])
		}
	}
}

// Property: a filter never forgets — any inserted key set always tests
// positive, through clone, merge, and compress round trips.
func TestQuickNeverForgets(t *testing.T) {
	f := func(ks []string) bool {
		fl := New(1<<14, 3)
		for _, k := range ks {
			fl.Insert(k)
		}
		rt, err := Decompress(fl.Compress())
		if err != nil {
			return false
		}
		for _, k := range ks {
			if !fl.Contains(k) || !rt.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: merge is commutative on bit contents.
func TestQuickMergeCommutative(t *testing.T) {
	f := func(a, b []string) bool {
		fa, fb := New(1<<12, 2), New(1<<12, 2)
		for _, k := range a {
			fa.Insert(k)
		}
		for _, k := range b {
			fb.Insert(k)
		}
		ab := fa.Clone()
		if ab.Merge(fb) != nil {
			return false
		}
		ba := fb.Clone()
		if ba.Merge(fa) != nil {
			return false
		}
		return ab.Equal(ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHashPairOddStride(t *testing.T) {
	for _, k := range []string{"", "a", "hello world", "\x00\x01"} {
		_, h2 := hashPair(k)
		if h2%2 == 0 {
			t.Fatalf("stride for %q is even", k)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	f := Default()
	ks := keys(b.N, "bench")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Insert(ks[i])
	}
}

func BenchmarkContains1000Filters(b *testing.B) {
	// The paper's micro-benchmark: a 5-term query across 1000 filters.
	rng := rand.New(rand.NewSource(3))
	filters := make([]*Filter, 1000)
	for i := range filters {
		filters[i] = Default()
		for j := 0; j < 1000; j++ {
			filters[i].Insert(fmt.Sprintf("f%d-t%d", i, rng.Intn(5000)))
		}
	}
	query := []string{"f1-t1", "f2-t2", "f3-t3", "f500-t4", "f999-t5"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range filters {
			f.ContainsAll(query)
		}
	}
}

func BenchmarkCompress20000Keys(b *testing.B) {
	f := Default()
	f.InsertAll(keys(20000, "z"))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Compress()
	}
}

func BenchmarkDecompress20000Keys(b *testing.B) {
	f := Default()
	f.InsertAll(keys(20000, "z"))
	buf := f.Compress()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(buf); err != nil {
			b.Fatal(err)
		}
	}
}
