package bloom

import "slices"

// InsertTrack adds key to the filter like Insert, additionally appending
// every newly set bit position to track, and returns the (possibly
// grown) track slice. Because bits are only ever set, a given position
// can be appended at most once over a filter's lifetime — tracked
// positions are unique even across calls.
func (f *Filter) InsertTrack(key string, track []uint64) []uint64 {
	var buf [16]uint64
	idx := f.indexes(key, buf[:0])
	n := len(track)
	for _, p := range idx {
		if f.setBit(p) {
			track = append(track, p)
		}
	}
	f.ngen++
	if len(track) > n {
		f.nkeys++
	}
	return track
}

// Summary maintains a filter's gossip summarization incrementally. It
// replaces the clone-and-rediff pattern (snapshot the filter after every
// publish, recompute the full O(filter) diff and compressed payload on
// the next) with bookkeeping proportional to what actually changed:
//
//   - the bit positions newly set since the last Flush — exactly the
//     diff PlanetP gossips — accumulate as inserts happen;
//   - the compressed payload is cached and invalidated only when a bit
//     flips, so republishing an unchanged filter costs nothing.
//
// A Summary owns its filter's mutations: insert through it (or Reset it
// after rebuilding the filter wholesale) or the tracked diff diverges
// from reality. It is not safe for concurrent use; core guards it with
// the peer mutex.
type Summary struct {
	f       *Filter
	pending []uint64 // positions set since the last Flush (unsorted, unique)
	payload []byte   // cached f.Compress(); nil when stale
}

// NewSummary wraps f, which must not be mutated except through the
// summary from here on. Bits already set in f are treated as flushed.
func NewSummary(f *Filter) *Summary { return &Summary{f: f} }

// Filter returns the underlying filter for read-side use (membership
// probes, fill ratio). Callers must not mutate it directly.
func (s *Summary) Filter() *Filter { return s.f }

// Insert adds key to the filter, recording newly set bits for the next
// Flush. It reports whether the filter changed.
func (s *Summary) Insert(key string) bool {
	n := len(s.pending)
	s.pending = s.f.InsertTrack(key, s.pending)
	if len(s.pending) > n {
		s.payload = nil
		return true
	}
	return false
}

// Pending returns the number of bit positions set since the last Flush.
func (s *Summary) Pending() int { return len(s.pending) }

// Flush encodes the diff of everything inserted since the last Flush and
// returns it with the full compressed payload, clearing the pending set.
// The diff is identical to Filter.Diff against a clone taken at the last
// Flush; the payload is shared with the cache and must not be modified.
func (s *Summary) Flush() (diff, payload []byte, err error) {
	slices.Sort(s.pending)
	diff, err = EncodeDiff(s.pending, s.f.NumBits())
	if err != nil {
		return nil, nil, err
	}
	s.pending = s.pending[:0]
	return diff, s.Payload(), nil
}

// Payload returns the compressed filter, recomputing it only if the
// filter changed since the last call. The returned slice is shared with
// the cache and must not be modified.
func (s *Summary) Payload() []byte {
	if s.payload == nil {
		s.payload = s.f.Compress()
	}
	return s.payload
}

// Reset replaces the underlying filter wholesale — the compaction path,
// where the filter is rebuilt from the counting filter and the full
// payload gossips as a replacement rather than a diff. The pending set
// and payload cache start fresh.
func (s *Summary) Reset(f *Filter) {
	s.f = f
	s.pending = s.pending[:0]
	s.payload = nil
}
