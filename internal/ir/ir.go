// Package ir is the information-retrieval evaluation harness for the
// paper's search experiments (Section 7.3, Figure 6 and Table 3): it
// distributes a benchmark collection across virtual peers (Weibull or
// uniform, as in the paper), builds each peer's Bloom filter, runs
// PlanetP's TFxIPF ranked search against the optimistic centralized
// TFxIDF baseline, and scores both with recall and precision (equations
// 5-6).
package ir

import (
	"math"
	"math/rand"
	"sort"
	"strconv"

	"planetp/internal/bloom"
	"planetp/internal/collection"
	"planetp/internal/directory"
	"planetp/internal/metrics"
	"planetp/internal/search"
)

// Distribution selects how documents are spread across peers.
type Distribution int

// Document-to-peer distributions (Section 7.3: the paper's main results
// use Weibull, motivated by observed P2P sharing skew; uniform appears in
// the companion report).
const (
	Weibull Distribution = iota
	Uniform
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	if d == Weibull {
		return "weibull"
	}
	return "uniform"
}

// Community is a collection distributed over virtual peers. It implements
// search.FilterView and search.Fetcher, so PlanetP's real search code runs
// unmodified against it.
type Community struct {
	Col      *collection.Collection
	NumPeers int
	// PeerOf maps doc index -> owning peer.
	PeerOf []directory.PeerID
	// DocsOf maps peer -> its doc indices.
	DocsOf [][]int
	// Filters are the peers' real Bloom filters (false positives
	// included, exactly as deployed PlanetP would gossip them).
	Filters []*bloom.Filter
	// Metrics, if non-nil, receives per-query search counters from
	// experiment runs over this community.
	Metrics *metrics.Registry
	// SearchOpts seeds the search options of every experiment query
	// (group size, fan-out concurrency, IPF cache); K and Metrics are
	// filled per run.
	SearchOpts search.Options
}

// weibullWeight draws a Weibull(shape, 1) variate.
func weibullWeight(rng *rand.Rand, shape float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return math.Pow(-math.Log(u), 1/shape)
}

// Distribute spreads col over numPeers peers and builds their Bloom
// filters. The Weibull shape 0.7 gives the heavy skew observed in P2P
// file-sharing communities.
func Distribute(col *collection.Collection, numPeers int, dist Distribution, seed int64) *Community {
	rng := rand.New(rand.NewSource(seed))
	weights := make([]float64, numPeers)
	switch dist {
	case Weibull:
		for i := range weights {
			weights[i] = weibullWeight(rng, 0.7)
		}
	case Uniform:
		for i := range weights {
			weights[i] = 1
		}
	}
	// Cumulative for proportional sampling.
	cum := make([]float64, numPeers)
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}
	c := &Community{
		Col: col, NumPeers: numPeers,
		PeerOf: make([]directory.PeerID, len(col.Docs)),
		DocsOf: make([][]int, numPeers),
	}
	for d := range col.Docs {
		u := rng.Float64() * acc
		p := sort.SearchFloat64s(cum, u)
		if p >= numPeers {
			p = numPeers - 1
		}
		c.PeerOf[d] = directory.PeerID(p)
		c.DocsOf[p] = append(c.DocsOf[p], d)
	}
	c.Filters = make([]*bloom.Filter, numPeers)
	for p := 0; p < numPeers; p++ {
		f := bloom.Default()
		for _, d := range c.DocsOf[p] {
			for t := range col.Docs[d].Freqs {
				f.Insert(t)
			}
		}
		c.Filters[p] = f
	}
	return c
}

// DocKey renders a stable document key.
func DocKey(idx int) string { return "d" + strconv.Itoa(idx) }

// ParseDocKey reverses DocKey.
func ParseDocKey(key string) (int, bool) {
	if len(key) < 2 || key[0] != 'd' {
		return 0, false
	}
	n, err := strconv.Atoi(key[1:])
	if err != nil {
		return 0, false
	}
	return n, true
}

// Peers implements search.FilterView.
func (c *Community) Peers() []directory.PeerID {
	out := make([]directory.PeerID, c.NumPeers)
	for i := range out {
		out[i] = directory.PeerID(i)
	}
	return out
}

// Contains implements search.FilterView using the peer's real Bloom
// filter.
func (c *Community) Contains(id directory.PeerID, term string) bool {
	return c.Filters[id].Contains(term)
}

// ContainsDigest implements search.DigestView: probe the peer's filter
// with a precomputed digest (no per-peer re-hashing).
func (c *Community) ContainsDigest(id directory.PeerID, d bloom.Digest) bool {
	return c.Filters[id].ContainsDigest(d)
}

// ViewVersion implements search.VersionedView: a distributed community is
// immutable once built, so one constant version keeps IPF caches warm for
// the whole experiment.
func (c *Community) ViewVersion() (uint64, bool) { return 1, true }

// QueryPeer implements search.Fetcher: the peer's documents containing at
// least one query term, with the stats equation 2 needs.
func (c *Community) QueryPeer(id directory.PeerID, terms []string) ([]search.DocResult, error) {
	var out []search.DocResult
	for _, d := range c.DocsOf[id] {
		doc := &c.Col.Docs[d]
		var freqs map[string]int
		for _, t := range terms {
			if f := doc.Freqs[t]; f > 0 {
				if freqs == nil {
					freqs = make(map[string]int, len(terms))
				}
				freqs[t] = f
			}
		}
		if freqs != nil {
			out = append(out, search.DocResult{
				Peer: id, Key: DocKey(d), TermFreqs: freqs, DocLen: doc.Len,
			})
		}
	}
	return out, nil
}

// QueryPeerAll implements search.Fetcher (conjunctive semantics).
func (c *Community) QueryPeerAll(id directory.PeerID, terms []string) ([]search.DocResult, error) {
	var out []search.DocResult
	for _, d := range c.DocsOf[id] {
		doc := &c.Col.Docs[d]
		freqs := make(map[string]int, len(terms))
		all := true
		for _, t := range terms {
			f := doc.Freqs[t]
			if f <= 0 {
				all = false
				break
			}
			freqs[t] = f
		}
		if all {
			out = append(out, search.DocResult{
				Peer: id, Key: DocKey(d), TermFreqs: freqs, DocLen: doc.Len,
			})
		}
	}
	return out, nil
}

// GlobalIndex is the optimistic TFxIDF baseline of Section 7.3: a full
// collection-wide inverted index with global term statistics, as if every
// peer had the entire community's index locally.
type GlobalIndex struct {
	col *collection.Collection
	// postings maps term -> doc indices containing it.
	postings map[string][]int
	// collFreq is f_t, total occurrences of t in the collection (the
	// statistic the paper's IDF formula uses).
	collFreq map[string]int
}

// BuildGlobal indexes the whole collection.
func BuildGlobal(col *collection.Collection) *GlobalIndex {
	g := &GlobalIndex{
		col:      col,
		postings: make(map[string][]int),
		collFreq: make(map[string]int),
	}
	for d := range col.Docs {
		for t, f := range col.Docs[d].Freqs {
			g.postings[t] = append(g.postings[t], d)
			g.collFreq[t] += f
		}
	}
	return g
}

// IDF returns IDF_t = log(1 + N/f_t) (the paper's Witten et al. variant,
// with N the document count and f_t the collection frequency).
func (g *GlobalIndex) IDF(term string) float64 {
	ft := g.collFreq[term]
	if ft == 0 {
		return 0
	}
	return math.Log(1 + float64(len(g.col.Docs))/float64(ft))
}

// scoredInt pairs a doc index with a score.
type scoredInt struct {
	doc   int
	score float64
}

// TopK ranks the collection for the query by equation 2 and returns the
// top k doc indices.
func (g *GlobalIndex) TopK(terms []string, k int) []int {
	scores := make(map[int]float64)
	for _, t := range terms {
		idf := g.IDF(t)
		if idf == 0 {
			continue
		}
		for _, d := range g.postings[t] {
			f := g.col.Docs[d].Freqs[t]
			scores[d] += (1 + math.Log(float64(f))) * idf
		}
	}
	ranked := make([]scoredInt, 0, len(scores))
	for d, s := range scores {
		ranked = append(ranked, scoredInt{doc: d, score: s / math.Sqrt(float64(g.col.Docs[d].Len))})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].doc < ranked[j].doc
	})
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ranked[i].doc
	}
	return out
}

// RecallPrecision computes equations 5 and 6 for a retrieved set.
func RecallPrecision(retrieved []int, relevant map[int]bool) (recall, precision float64) {
	if len(relevant) == 0 || len(retrieved) == 0 {
		return 0, 0
	}
	hits := 0
	for _, d := range retrieved {
		if relevant[d] {
			hits++
		}
	}
	return float64(hits) / float64(len(relevant)), float64(hits) / float64(len(retrieved))
}

// BestPeers is Figure 6c's oracle: the (greedy) minimum number of peers
// that must be contacted to retrieve k relevant documents, computed from
// the relevance judgments.
func BestPeers(c *Community, relevant map[int]bool, k int) int {
	// Count relevant docs per peer.
	perPeer := make(map[directory.PeerID]int)
	totalRel := 0
	for d := range relevant {
		perPeer[c.PeerOf[d]]++
		totalRel++
	}
	if k > totalRel {
		k = totalRel
	}
	type pc struct {
		peer directory.PeerID
		n    int
	}
	list := make([]pc, 0, len(perPeer))
	for p, n := range perPeer {
		list = append(list, pc{p, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].peer < list[j].peer
	})
	got, peers := 0, 0
	for _, e := range list {
		if got >= k {
			break
		}
		got += e.n
		peers++
	}
	return peers
}
