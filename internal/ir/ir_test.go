package ir

import (
	"math"
	"testing"

	"planetp/internal/collection"
	"planetp/internal/doc"
	"planetp/internal/search"
)

func testCollection(t *testing.T) *collection.Collection {
	t.Helper()
	return collection.Generate(collection.ScaledSpec("CACM", 8), 42)
}

func TestDistributeCoversAllDocs(t *testing.T) {
	col := testCollection(t)
	c := Distribute(col, 40, Weibull, 1)
	if c.NumPeers != 40 || len(c.Filters) != 40 {
		t.Fatalf("community shape: %d peers", c.NumPeers)
	}
	total := 0
	for p, docs := range c.DocsOf {
		total += len(docs)
		for _, d := range docs {
			if int(c.PeerOf[d]) != p {
				t.Fatalf("PeerOf/DocsOf inconsistent for doc %d", d)
			}
		}
	}
	if total != len(col.Docs) {
		t.Fatalf("assigned %d docs, want %d", total, len(col.Docs))
	}
}

func TestWeibullSkewedUniformFlat(t *testing.T) {
	col := testCollection(t)
	wb := Distribute(col, 40, Weibull, 2)
	un := Distribute(col, 40, Uniform, 2)
	maxShare := func(c *Community) float64 {
		max := 0
		for _, docs := range c.DocsOf {
			if len(docs) > max {
				max = len(docs)
			}
		}
		return float64(max) / float64(len(col.Docs))
	}
	if maxShare(wb) <= maxShare(un) {
		t.Fatalf("Weibull max share %.3f should exceed uniform %.3f",
			maxShare(wb), maxShare(un))
	}
	if Weibull.String() != "weibull" || Uniform.String() != "uniform" {
		t.Fatal("Distribution.String")
	}
}

func TestFiltersReflectContent(t *testing.T) {
	col := testCollection(t)
	c := Distribute(col, 20, Weibull, 3)
	// Every term of every doc must hit its peer's filter (no false
	// negatives).
	for d := range col.Docs {
		p := c.PeerOf[d]
		for term := range col.Docs[d].Freqs {
			if !c.Contains(p, term) {
				t.Fatalf("peer %d filter missing term %q of its own doc", p, term)
			}
		}
	}
}

func TestQueryPeerSemantics(t *testing.T) {
	col := testCollection(t)
	c := Distribute(col, 20, Uniform, 4)
	q := col.Queries[0]
	for _, id := range c.Peers() {
		any, err := c.QueryPeer(id, q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range any {
			found := false
			for _, term := range q.Terms {
				if d.TermFreqs[term] > 0 {
					found = true
				}
			}
			if !found {
				t.Fatalf("QueryPeer returned doc with no query terms: %+v", d)
			}
			if d.DocLen <= 0 {
				t.Fatal("missing DocLen")
			}
		}
		all, err := c.QueryPeerAll(id, q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range all {
			for _, term := range q.Terms {
				if d.TermFreqs[term] <= 0 {
					t.Fatalf("QueryPeerAll returned doc missing %q", term)
				}
			}
		}
		if len(all) > len(any) {
			t.Fatal("conjunctive results exceed disjunctive")
		}
	}
}

func TestDocKeyRoundTrip(t *testing.T) {
	for _, i := range []int{0, 7, 123456} {
		idx, ok := ParseDocKey(DocKey(i))
		if !ok || idx != i {
			t.Fatalf("round trip %d -> %v %v", i, idx, ok)
		}
	}
	if _, ok := ParseDocKey("x7"); ok {
		t.Fatal("bad prefix accepted")
	}
	if _, ok := ParseDocKey("d"); ok {
		t.Fatal("empty index accepted")
	}
	if _, ok := ParseDocKey("dxyz"); ok {
		t.Fatal("non-numeric accepted")
	}
}

func TestGlobalIndexIDF(t *testing.T) {
	col := testCollection(t)
	g := BuildGlobal(col)
	if g.IDF("never-seen-term") != 0 {
		t.Fatal("IDF of absent term should be 0")
	}
	// A topic term (rare) must out-IDF the background head term.
	q := col.Queries[0]
	rare := g.IDF(q.Terms[0])
	common := g.IDF("w0") // Zipf head
	if rare <= common {
		t.Fatalf("IDF(rare)=%.3f <= IDF(common)=%.3f", rare, common)
	}
}

func TestGlobalTopKFindsRelevant(t *testing.T) {
	col := testCollection(t)
	g := BuildGlobal(col)
	// The centralized baseline should achieve solid precision at
	// moderate k on this synthetic collection.
	var totalP float64
	for qi := range col.Queries {
		q := &col.Queries[qi]
		top := g.TopK(q.Terms, 20)
		_, p := RecallPrecision(top, q.Relevant)
		totalP += p
	}
	avgP := totalP / float64(len(col.Queries))
	if avgP < 0.5 {
		t.Fatalf("TFxIDF precision@20 = %.3f; collection has no signal", avgP)
	}
}

func TestRecallPrecision(t *testing.T) {
	rel := map[int]bool{1: true, 2: true, 3: true, 4: true}
	r, p := RecallPrecision([]int{1, 2, 9}, rel)
	if math.Abs(r-0.5) > 1e-12 || math.Abs(p-2.0/3) > 1e-12 {
		t.Fatalf("r=%v p=%v", r, p)
	}
	r, p = RecallPrecision(nil, rel)
	if r != 0 || p != 0 {
		t.Fatal("empty retrieval should be 0,0")
	}
	r, p = RecallPrecision([]int{1}, map[int]bool{})
	if r != 0 || p != 0 {
		t.Fatal("empty relevance should be 0,0")
	}
}

func TestBestPeers(t *testing.T) {
	col := testCollection(t)
	c := Distribute(col, 30, Weibull, 5)
	q := col.Queries[0]
	b1 := BestPeers(c, q.Relevant, 1)
	bAll := BestPeers(c, q.Relevant, len(q.Relevant))
	if b1 < 1 || bAll < b1 {
		t.Fatalf("BestPeers monotonicity: k=1 -> %d, k=all -> %d", b1, bAll)
	}
	// Greedy never needs more peers than hold relevant docs.
	holders := map[int]bool{}
	for d := range q.Relevant {
		holders[int(c.PeerOf[d])] = true
	}
	if bAll > len(holders) {
		t.Fatalf("BestPeers %d > holders %d", bAll, len(holders))
	}
}

// The Figure 6a headline: TFxIPF with adaptive stopping tracks the
// centralized TFxIDF baseline.
func TestIPFTracksIDF(t *testing.T) {
	col := testCollection(t)
	c := Distribute(col, 40, Weibull, 6)
	pts := Evaluate(c, []int{10, 20, 40})
	for _, pt := range pts {
		if pt.RecallIDF <= 0 {
			t.Fatalf("baseline broken at k=%d: %+v", pt.K, pt)
		}
		// PlanetP must achieve at least ~70% of the baseline's recall
		// (the paper shows near-parity; we allow slack for the small
		// scaled collection).
		if pt.RecallIPF < 0.7*pt.RecallIDF {
			t.Fatalf("k=%d: IPF recall %.3f far below IDF %.3f",
				pt.K, pt.RecallIPF, pt.RecallIDF)
		}
		if pt.PeersIPF <= 0 || pt.PeersBest <= 0 {
			t.Fatalf("peer accounting: %+v", pt)
		}
		// The oracle contacts no more peers than PlanetP.
		if pt.PeersBest > pt.PeersIPF+1e-9 {
			t.Fatalf("k=%d: Best %.1f > IPF %.1f", pt.K, pt.PeersBest, pt.PeersIPF)
		}
	}
	// Peers contacted must grow with k (Figure 6c shape).
	if pts[len(pts)-1].PeersIPF < pts[0].PeersIPF {
		t.Fatalf("peers contacted should grow with k: %+v", pts)
	}
	if pts[0].String() == "" {
		t.Fatal("empty row")
	}
}

func TestRecallVsSizeStaysFlat(t *testing.T) {
	col := testCollection(t)
	pts := RecallVsSize(col, []int{20, 60, 120}, 20, Weibull, 7, nil)
	if len(pts) != 3 {
		t.Fatalf("points = %v", pts)
	}
	for _, pt := range pts {
		if pt.RecallIPF <= 0 {
			t.Fatalf("zero recall at %d peers", pt.Peers)
		}
	}
	// Figure 6b: recall roughly constant with community size. Allow a
	// generous band on the small test collection.
	first, last := pts[0].RecallIPF, pts[len(pts)-1].RecallIPF
	if last < first*0.6 {
		t.Fatalf("recall collapsed with community size: %.3f -> %.3f", first, last)
	}
}

// Sanity: running PlanetP's search stack end-to-end over the community
// returns only docs that actually contain query terms.
func TestEndToEndSoundness(t *testing.T) {
	col := testCollection(t)
	c := Distribute(col, 25, Weibull, 8)
	q := col.Queries[1]
	docs, _ := search.Ranked(c, c, q.Terms, search.Options{K: 15})
	for _, d := range docs {
		idx, ok := ParseDocKey(d.Key)
		if !ok {
			t.Fatalf("bad key %q", d.Key)
		}
		found := false
		for _, term := range q.Terms {
			if col.Docs[idx].Freqs[term] > 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("retrieved doc %d has no query terms", idx)
		}
	}
}

// DocXML must round-trip through the real document pipeline: parsing a
// rendered snippet recovers exactly the generated term frequencies (plus
// the element tag and id attribute, which index as ordinary terms), and
// distinct documents render to distinct content hashes even when their
// frequency maps collide.
func TestDocXMLRoundTrip(t *testing.T) {
	col := collection.Generate(collection.ScaledSpec("CACM", 64), 7)
	n := 20
	if n > len(col.Docs) {
		n = len(col.Docs)
	}
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		xml := DocXML(col, i)
		d := doc.Parse(xml)
		if seen[d.ID] {
			t.Fatalf("doc %d: duplicate content hash", i)
		}
		seen[d.ID] = true
		freqs := d.TermFreqs(nil)
		for term, want := range col.Docs[i].Freqs {
			if got := freqs[term]; got != want {
				t.Fatalf("doc %d term %q: parsed freq %d, want %d", i, term, got, want)
			}
		}
	}
	if got := len(XMLDocs(col, 5)); got != 5 {
		t.Fatalf("XMLDocs(5) returned %d", got)
	}
	if got := len(XMLDocs(col, 0)); got != len(col.Docs) {
		t.Fatalf("XMLDocs(0) returned %d, want all %d", got, len(col.Docs))
	}
}
