package ir

import (
	"fmt"

	"planetp/internal/collection"
	"planetp/internal/directory"
	"planetp/internal/metrics"
	"planetp/internal/search"
)

// RPPoint is one k-value of Figure 6a/6c: recall, precision, and peers
// contacted for the TFxIDF baseline, PlanetP's TFxIPF with the adaptive
// stop, and the Best oracle, averaged over all queries.
type RPPoint struct {
	K int
	// TFxIDF baseline (centralized global index).
	RecallIDF, PrecisionIDF float64
	// PlanetP TFxIPF + adaptive stopping.
	RecallIPF, PrecisionIPF float64
	// Peers contacted.
	PeersIDF, PeersIPF, PeersBest float64
}

// Evaluate runs every query in the community's collection at each k,
// averaging recall/precision/peers-contacted across queries (Figure 6a
// and 6c for one community).
func Evaluate(c *Community, ks []int) []RPPoint {
	g := BuildGlobal(c.Col)
	out := make([]RPPoint, 0, len(ks))
	for _, k := range ks {
		var pt RPPoint
		pt.K = k
		for qi := range c.Col.Queries {
			q := &c.Col.Queries[qi]

			// TFxIDF: global top-k, contacting exactly the owners.
			idfDocs := g.TopK(q.Terms, k)
			r, p := RecallPrecision(idfDocs, q.Relevant)
			pt.RecallIDF += r
			pt.PrecisionIDF += p
			owners := make(map[directory.PeerID]bool)
			for _, d := range idfDocs {
				owners[c.PeerOf[d]] = true
			}
			pt.PeersIDF += float64(len(owners))

			// PlanetP TFxIPF with adaptive stopping.
			opt := c.SearchOpts
			opt.K = k
			opt.Metrics = c.Metrics
			docs, st := search.Ranked(c, c, q.Terms, opt)
			retrieved := make([]int, 0, len(docs))
			for _, d := range docs {
				if idx, ok := ParseDocKey(d.Key); ok {
					retrieved = append(retrieved, idx)
				}
			}
			r, p = RecallPrecision(retrieved, q.Relevant)
			pt.RecallIPF += r
			pt.PrecisionIPF += p
			pt.PeersIPF += float64(st.PeersContacted)

			// Oracle.
			pt.PeersBest += float64(BestPeers(c, q.Relevant, k))
		}
		nq := float64(len(c.Col.Queries))
		pt.RecallIDF /= nq
		pt.PrecisionIDF /= nq
		pt.RecallIPF /= nq
		pt.PrecisionIPF /= nq
		pt.PeersIDF /= nq
		pt.PeersIPF /= nq
		pt.PeersBest /= nq
		out = append(out, pt)
	}
	return out
}

// String renders the point as a report row.
func (p RPPoint) String() string {
	return fmt.Sprintf("k=%-4d R(IDF)=%.3f P(IDF)=%.3f | R(IPF)=%.3f P(IPF)=%.3f | peers IDF=%.1f IPF=%.1f best=%.1f",
		p.K, p.RecallIDF, p.PrecisionIDF, p.RecallIPF, p.PrecisionIPF,
		p.PeersIDF, p.PeersIPF, p.PeersBest)
}

// SizePoint is one x-value of Figure 6b: PlanetP's recall at fixed k as
// the community grows.
type SizePoint struct {
	Peers     int
	RecallIPF float64
	RecallIDF float64
}

// RecallVsSize distributes the collection over increasing community sizes
// and measures recall at fixed k (Figure 6b). reg, if non-nil, aggregates
// search counters across every community size.
func RecallVsSize(col *collection.Collection, sizes []int, k int, dist Distribution, seed int64, reg *metrics.Registry) []SizePoint {
	out := make([]SizePoint, 0, len(sizes))
	g := BuildGlobal(col)
	for _, n := range sizes {
		c := Distribute(col, n, dist, seed+int64(n))
		c.Metrics = reg
		var pt SizePoint
		pt.Peers = n
		for qi := range col.Queries {
			q := &col.Queries[qi]
			opt := c.SearchOpts
			opt.K = k
			opt.Metrics = c.Metrics
			docs, _ := search.Ranked(c, c, q.Terms, opt)
			retrieved := make([]int, 0, len(docs))
			for _, d := range docs {
				if idx, ok := ParseDocKey(d.Key); ok {
					retrieved = append(retrieved, idx)
				}
			}
			r, _ := RecallPrecision(retrieved, q.Relevant)
			pt.RecallIPF += r
			idfDocs := g.TopK(q.Terms, k)
			ri, _ := RecallPrecision(idfDocs, q.Relevant)
			pt.RecallIDF += ri
		}
		nq := float64(len(col.Queries))
		pt.RecallIPF /= nq
		pt.RecallIDF /= nq
		out = append(out, pt)
	}
	return out
}
