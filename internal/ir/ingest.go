package ir

import (
	"fmt"
	"sort"
	"strings"

	"planetp/internal/collection"
)

// Collection-to-XML rendering: live peers and the ingest benchmarks
// publish generated benchmark documents through the real Publish /
// PublishBatch path, so the full pipeline — XML parsing, tokenization,
// WAL commit, indexing, filter summarization — is exercised with
// realistic term statistics.

// DocXML renders collection document idx as the XML snippet a live peer
// publishes: every term repeated to its frequency, sorted for a
// deterministic body, with the document key as an id attribute so
// identical frequency maps still publish as distinct documents. The
// element tag and id index as ordinary terms (doc.Parse's footnote 2
// behaviour); collection terms ("w<N>") pass the text pipeline
// unchanged.
func DocXML(col *collection.Collection, idx int) string {
	d := &col.Docs[idx]
	terms := make([]string, 0, len(d.Freqs))
	for t := range d.Freqs {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	var sb strings.Builder
	sb.Grow(d.Len * 6)
	fmt.Fprintf(&sb, `<doc id=%q>`, DocKey(idx))
	for _, t := range terms {
		for i := 0; i < d.Freqs[t]; i++ {
			sb.WriteString(t)
			sb.WriteByte(' ')
		}
	}
	sb.WriteString("</doc>")
	return sb.String()
}

// XMLDocs renders the first limit documents of col (all of them when
// limit <= 0 or exceeds the collection).
func XMLDocs(col *collection.Collection, limit int) []string {
	if limit <= 0 || limit > len(col.Docs) {
		limit = len(col.Docs)
	}
	out := make([]string, limit)
	for i := range out {
		out[i] = DocXML(col, i)
	}
	return out
}
