// Package faultnet is a deterministic, seeded fault-injection layer for
// PlanetP's network paths. A Plan decides, per message, whether to drop,
// delay, or duplicate it, whether the connection attempt itself fails,
// and whether a scripted network partition separates the two endpoints.
//
// Every decision is a pure function of (seed, fault kind, sender,
// receiver, per-pair message sequence number), so a single seed fully
// determines the fault schedule: two runs that send the same messages in
// the same per-pair order are hit by byte-identical faults, regardless of
// how sends interleave across different peer pairs. Under a
// single-threaded driver (internal/simnet) the whole schedule is
// bit-for-bit reproducible; ScheduleHash fingerprints it so tests can
// assert exactly that.
//
// The same Plan serves both stacks: internal/simnet consults Fate inside
// its virtual-time Send, and internal/transport mounts the Plan as a
// net.Conn-level dial shim (see Dialer in conn.go). Injected faults are
// instrumented through internal/metrics (faultnet_* counters).
package faultnet

import (
	"sync"
	"time"

	"planetp/internal/directory"
	"planetp/internal/metrics"
)

// Partition is one scripted split: between At (inclusive) and Heal
// (exclusive), peers on different sides cannot exchange messages — sends
// across the cut fail like refused connections. Heal <= At means the
// partition never heals within the run.
type Partition struct {
	// Name labels the partition in logs and metrics.
	Name string
	// At is when the split happens (driver time: virtual in simnet,
	// time-since-start in live transport).
	At time.Duration
	// Heal is when connectivity is restored.
	Heal time.Duration
	// Side maps a peer to its side of the cut. Peers mapping to
	// different values cannot communicate while the partition is active.
	Side func(id directory.PeerID) int
}

// active reports whether the partition is in force at now.
func (pt *Partition) active(now time.Duration) bool {
	return now >= pt.At && (pt.Heal <= pt.At || now < pt.Heal)
}

// SplitHalves returns a Side function cutting the id space [0, n) into
// two halves: ids below n/2 versus the rest (ids outside [0, n) join the
// upper side).
func SplitHalves(n int) func(id directory.PeerID) int {
	half := directory.PeerID(n / 2)
	return func(id directory.PeerID) int {
		if id >= 0 && id < half {
			return 0
		}
		return 1
	}
}

// Config parameterizes a Plan. All probabilities are in [0, 1]; zero
// disables that fault kind.
type Config struct {
	// Seed determines the entire fault schedule.
	Seed int64
	// Drop is the probability a message is silently lost after being
	// sent (the sender sees success; nothing arrives).
	Drop float64
	// Dup is the probability a message is delivered twice, the copy
	// arriving DelayMin..DelayMax after the original.
	Dup float64
	// Delay is the probability a message is held back an extra
	// DelayMin..DelayMax before delivery. Because only some messages
	// are delayed, later traffic overtakes them — this is also the
	// reordering knob.
	Delay float64
	// DelayMin and DelayMax bound the injected extra latency (both for
	// Delay and for a duplicate's offset). Zero values default to
	// 100 ms .. 2 s.
	DelayMin, DelayMax time.Duration
	// DialFail is the probability a connection attempt fails outright
	// (the sender sees an error, as from a refused or timed-out dial).
	DialFail float64
	// ConnKill is the probability the connection carrying a message dies
	// as the message crosses it. Meaningful for pooled transports, where
	// a long-lived stream can fail under an RPC long after its dial
	// succeeded: the sender sees the conn tear mid-exchange and (for a
	// reused conn) recovers with one transparent re-dial.
	ConnKill float64
	// Partitions are the scripted splits.
	Partitions []Partition
}

// withDefaults fills the delay window.
func (c Config) withDefaults() Config {
	if c.DelayMin == 0 && c.DelayMax == 0 {
		c.DelayMin, c.DelayMax = 100*time.Millisecond, 2*time.Second
	}
	if c.DelayMax < c.DelayMin {
		c.DelayMax = c.DelayMin
	}
	return c
}

// Fate is the Plan's verdict for one message.
type Fate struct {
	// DialFail: the connection attempt fails; nothing is transmitted.
	DialFail bool
	// Partitioned: endpoints are on opposite sides of an active
	// partition; the attempt fails like a dead peer.
	Partitioned bool
	// Drop: the message transmits but is lost; the sender sees success.
	Drop bool
	// Dup: deliver a second copy DupDelay after the first.
	Dup bool
	// Delay is extra latency on the (first) delivery; zero when the
	// message was not selected for delaying.
	Delay time.Duration
	// DupDelay is the duplicate's extra offset (meaningful when Dup).
	DupDelay time.Duration
	// ConnKill: the connection carrying this message dies under it. A
	// pooled transport sees the stream tear mid-exchange; a dial-per-RPC
	// transport sees the fresh conn die, failing the send outright.
	ConnKill bool
}

// Failed reports whether the send attempt errors at the sender.
func (f Fate) Failed() bool { return f.DialFail || f.Partitioned }

// Counts are the cumulative injected-fault totals, by kind.
type Counts struct {
	Drops, Dups, Delays, DialFails, ConnKills, PartitionBlocks, Messages int64
}

// fault-kind salts for the decision hash. Each kind draws an independent
// stream so, e.g., enabling Dup does not perturb which messages Drop.
const (
	saltDrop     uint64 = 0x9e3779b97f4a7c15
	saltDup      uint64 = 0xc2b2ae3d27d4eb4f
	saltDelay    uint64 = 0x165667b19e3779f9
	saltDelayAmt uint64 = 0x27d4eb2f165667c5
	saltDupAmt   uint64 = 0x85ebca6b2ae35d63
	saltDialFail uint64 = 0x2545f4914f6cdd1d
	saltConnKill uint64 = 0x9e6c63d0762607a5
)

// Plan is a live fault schedule. Safe for concurrent use; fully
// deterministic when each (from, to) pair's sends are ordered (always
// true under simnet's single-threaded event loop).
type Plan struct {
	cfg Config

	mu  sync.Mutex
	seq map[uint64]uint64 // per ordered (from,to) pair message counter

	// schedHash is an FNV-1a fold of every injected fault
	// (kind, from, to, seq, amount); equal hashes mean byte-identical
	// schedules.
	schedHash uint64

	drops, dups, delays, dialFails, connKills, partBlocks, messages int64

	m planMetrics
}

type planMetrics struct {
	drops, dups, delays, dialFails, connKills, partitioned *metrics.Counter
}

// New builds a Plan from cfg. reg, when non-nil, receives the injected
// fault counters (faultnet_* names).
func New(cfg Config, reg *metrics.Registry) *Plan {
	return &Plan{
		cfg: cfg.withDefaults(),
		seq: make(map[uint64]uint64),
		m: planMetrics{
			drops:       reg.Counter("faultnet_drops_total"),
			dups:        reg.Counter("faultnet_dups_total"),
			delays:      reg.Counter("faultnet_delays_total"),
			dialFails:   reg.Counter("faultnet_dial_failures_total"),
			connKills:   reg.Counter("faultnet_conn_kills_total"),
			partitioned: reg.Counter("faultnet_partitioned_sends_total"),
		},
		schedHash: 1469598103934665603, // FNV-1a offset basis
	}
}

// mix is the splitmix64 finalizer — the per-decision hash core.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func pairKey(from, to directory.PeerID) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// roll returns a uniform [0,1) draw for one (kind, message) decision.
func (p *Plan) roll(salt uint64, pair, seq uint64) float64 {
	h := mix(mix(uint64(p.cfg.Seed)^salt) + mix(pair^0xa5a5a5a5a5a5a5a5) + mix(seq))
	return float64(h>>11) / float64(uint64(1)<<53)
}

// amount maps a draw into the configured delay window.
func (p *Plan) amount(salt uint64, pair, seq uint64) time.Duration {
	span := p.cfg.DelayMax - p.cfg.DelayMin
	if span <= 0 {
		return p.cfg.DelayMin
	}
	return p.cfg.DelayMin + time.Duration(p.roll(salt, pair, seq)*float64(span))
}

// foldLocked mixes one injected fault into the schedule fingerprint.
func (p *Plan) foldLocked(salt uint64, pair, seq uint64, amount time.Duration) {
	for _, w := range [4]uint64{salt, pair, seq, uint64(amount)} {
		for i := 0; i < 8; i++ {
			p.schedHash ^= (w >> (8 * i)) & 0xff
			p.schedHash *= 1099511628211 // FNV-1a prime
		}
	}
}

// Partitioned reports whether an active partition separates a and b at
// now, and which one.
func (p *Plan) Partitioned(now time.Duration, a, b directory.PeerID) (string, bool) {
	for i := range p.cfg.Partitions {
		pt := &p.cfg.Partitions[i]
		if pt.active(now) && pt.Side != nil && pt.Side(a) != pt.Side(b) {
			return pt.Name, true
		}
	}
	return "", false
}

// Fate decides every fault for the next message from -> to at time now.
// One call consumes one per-pair sequence number; callers must invoke it
// exactly once per send attempt.
func (p *Plan) Fate(now time.Duration, from, to directory.PeerID) Fate {
	pair := pairKey(from, to)
	p.mu.Lock()
	seq := p.seq[pair]
	p.seq[pair] = seq + 1
	p.messages++

	var f Fate
	if _, cut := p.Partitioned(now, from, to); cut {
		f.Partitioned = true
		p.partBlocks++
		p.foldLocked(0, pair, seq, 0)
		p.mu.Unlock()
		p.m.partitioned.Inc()
		return f
	}
	if p.cfg.DialFail > 0 && p.roll(saltDialFail, pair, seq) < p.cfg.DialFail {
		f.DialFail = true
		p.dialFails++
		p.foldLocked(saltDialFail, pair, seq, 0)
		p.mu.Unlock()
		p.m.dialFails.Inc()
		return f
	}
	if p.cfg.Drop > 0 && p.roll(saltDrop, pair, seq) < p.cfg.Drop {
		f.Drop = true
		p.drops++
		p.foldLocked(saltDrop, pair, seq, 0)
	}
	if p.cfg.Delay > 0 && p.roll(saltDelay, pair, seq) < p.cfg.Delay {
		f.Delay = p.amount(saltDelayAmt, pair, seq)
		p.delays++
		p.foldLocked(saltDelay, pair, seq, f.Delay)
	}
	if p.cfg.Dup > 0 && p.roll(saltDup, pair, seq) < p.cfg.Dup {
		f.Dup = true
		f.DupDelay = p.amount(saltDupAmt, pair, seq)
		p.dups++
		p.foldLocked(saltDup, pair, seq, f.DupDelay)
	}
	if p.cfg.ConnKill > 0 && p.roll(saltConnKill, pair, seq) < p.cfg.ConnKill {
		f.ConnKill = true
		p.connKills++
		p.foldLocked(saltConnKill, pair, seq, 0)
	}
	p.mu.Unlock()

	if f.Drop {
		p.m.drops.Inc()
	}
	if f.Delay > 0 {
		p.m.delays.Inc()
	}
	if f.Dup {
		p.m.dups.Inc()
	}
	if f.ConnKill {
		p.m.connKills.Inc()
	}
	return f
}

// ScheduleHash fingerprints every fault injected so far. Two runs with
// the same seed, traffic, and per-pair send order produce equal hashes.
func (p *Plan) ScheduleHash() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.schedHash
}

// Counts returns the cumulative injected-fault totals.
func (p *Plan) Counts() Counts {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Counts{
		Drops: p.drops, Dups: p.dups, Delays: p.delays,
		DialFails: p.dialFails, ConnKills: p.connKills,
		PartitionBlocks: p.partBlocks, Messages: p.messages,
	}
}
